(* Transferability (the Table 1 scenario in miniature): synthesize
   programs against one classifier, then attack a different classifier
   with them.

     dune exec examples/transfer_attack.exe

   Because every instantiation of the sketch explores the same candidate
   space, success rates are identical; transfer only costs extra
   queries. *)

module Workbench = Evalharness.Workbench

let () =
  let config =
    { Workbench.default_config with log = (fun m -> print_endline m) }
  in
  let source = Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny" in
  let target =
    Workbench.load_classifier config Dataset.synth_cifar "resnet_tiny"
  in
  let params = { Workbench.default_synth_params with iters = 25 } in
  let programs = Workbench.synthesize_programs ~params config source in

  let attack_with name (classifier : Workbench.classifier) programs =
    let batch =
      Array.sub classifier.test 0 (min 50 (Array.length classifier.test))
    in
    let successes = ref 0 and queries = ref 0 in
    Array.iter
      (fun (image, true_class) ->
        let r =
          Oppsla.Sketch.attack
            (Workbench.oracle_factory classifier ())
            programs.(true_class) ~image ~true_class
        in
        if r.Oppsla.Sketch.adversarial <> None then begin
          incr successes;
          queries := !queries + r.Oppsla.Sketch.queries
        end)
      batch;
    Printf.printf "%-28s %d/%d successes, avg %.1f queries\n" name !successes
      (Array.length batch)
      (if !successes = 0 then nan
       else float_of_int !queries /. float_of_int !successes)
  in
  print_newline ();
  attack_with "vgg programs on vgg:" source programs;
  attack_with "vgg programs on resnet:" target programs;
  (* Reference: resnet's own programs on resnet. *)
  let native = Workbench.synthesize_programs ~params config target in
  attack_with "resnet programs on resnet:" target native

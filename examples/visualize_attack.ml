(* Visualize a one-pixel attack: writes before/after/highlighted PPM
   panels for a handful of successful attacks, plus a query-trace
   summary showing how the prioritization moves through the image.

     dune exec examples/visualize_attack.exe

   Output lands in _artifacts/attack_<n>.ppm (viewable with any image
   tool; PPM is plain RGB). *)

module Workbench = Evalharness.Workbench

let () =
  let config = Workbench.default_config in
  let classifier =
    Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny"
  in
  let spec = classifier.spec in
  let written = ref 0 in
  let candidates = Array.to_list classifier.test in
  List.iteri
    (fun i (image, true_class) ->
      if !written < 4 then begin
        let oracle = Workbench.oracle_factory classifier () in
        let result, steps =
          Oppsla.Analysis.traced_attack oracle
            Oppsla.Condition.const_false_program ~image ~true_class
        in
        match result.Oppsla.Sketch.adversarial with
        | None -> ()
        | Some (pair, adversarial) ->
            let new_class = Oracle.unmetered_classify oracle adversarial in
            let panel =
              Image.side_by_side
                [
                  Image.upscale ~factor:8 image;
                  Image.upscale ~factor:8 adversarial;
                  Image.upscale ~factor:8
                    (Image.highlight_diff image adversarial);
                ]
            in
            let path = Printf.sprintf "_artifacts/attack_%d.ppm" i in
            Image.write_ppm path panel;
            incr written;
            Printf.printf
              "%s: %s -> %s via pixel %s after %d queries (probed %d \
               locations)\n"
              path spec.class_names.(true_class) spec.class_names.(new_class)
              (Oppsla.Pair.to_string pair)
              result.Oppsla.Sketch.queries
              (Oppsla.Analysis.unique_locations steps)
      end)
    candidates;
  if !written = 0 then
    print_endline "no successful attacks among the test images"
  else
    Printf.printf
      "wrote %d panels (original | adversarial | highlighted diff)\n" !written

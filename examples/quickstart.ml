(* Quickstart: train a classifier, synthesize a one-pixel adversarial
   program for one class, and use it to attack a test image.

     dune exec examples/quickstart.exe

   The first run trains the classifier (a few seconds) and synthesizes
   the program (about a minute); both are cached under _artifacts, so
   re-runs are instant. *)

module Workbench = Evalharness.Workbench

let () =
  let spec = Dataset.synth_cifar in
  let config =
    { Workbench.default_config with log = (fun m -> print_endline m) }
  in
  (* Step 1: a trained classifier with a filtered test set. *)
  let classifier = Workbench.load_classifier config spec "vgg_tiny" in
  Printf.printf "classifier: %s\n\n" (Nn.Network.describe classifier.net);

  (* Step 2: synthesize adversarial programs (one per class). *)
  let params = { Workbench.default_synth_params with iters = 25 } in
  let programs = Workbench.synthesize_programs ~params config classifier in
  let class_id = 0 in
  Printf.printf "\nprogram for class %S:\n  %s\n\n"
    spec.class_names.(class_id)
    (Oppsla.Dsl.print_program programs.(class_id));

  (* Step 3: attack the first correctly classified test image of that
     class. *)
  match
    Array.find_opt (fun (_, c) -> c = class_id) classifier.test
  with
  | None -> print_endline "no correctly classified image of that class"
  | Some (image, true_class) ->
      let oracle = Workbench.oracle_factory classifier () in
      let result =
        Oppsla.Sketch.attack oracle programs.(class_id) ~image ~true_class
      in
      (match result.adversarial with
      | Some (pair, adversarial) ->
          let new_class = Oracle.unmetered_classify oracle adversarial in
          Printf.printf
            "success: flipping pixel %s changed the prediction %s -> %s \
             after %d queries\n"
            (Oppsla.Pair.to_string pair) spec.class_names.(true_class)
            spec.class_names.(new_class) result.queries
      | None ->
          Printf.printf
            "this image admits no one-pixel corner attack (%d queries spent)\n"
            result.queries);
      (* Compare against the unsynthesized baseline on the same image. *)
      let baseline =
        Baselines.Fixed.attack (Workbench.oracle_factory classifier ()) ~image
          ~true_class
      in
      Printf.printf "Sketch+False on the same image: %s after %d queries\n"
        (if baseline.adversarial <> None then "success" else "failure")
        baseline.queries

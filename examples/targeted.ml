(* Targeted one-pixel attacks (an extension of the paper's untargeted
   setting): force the classifier toward a chosen class, not just away
   from the true one.

     dune exec examples/targeted.exe

   Since the targeted success set is a subset of the untargeted one,
   success rates per target class sum to at most the untargeted rate;
   the example prints the per-target breakdown for one classifier. *)

module Workbench = Evalharness.Workbench

let () =
  let config = Workbench.default_config in
  let classifier =
    Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny"
  in
  let spec = classifier.spec in
  let batch =
    Array.sub classifier.test 0 (min 30 (Array.length classifier.test))
  in
  Printf.printf "attacking %d images of %s\n\n" (Array.length batch)
    classifier.arch;

  (* Untargeted reference. *)
  let untargeted_successes = ref 0 in
  Array.iter
    (fun (image, true_class) ->
      let r =
        Oppsla.Sketch.attack
          (Workbench.oracle_factory classifier ())
          Oppsla.Condition.const_false_program ~image ~true_class
      in
      if r.Oppsla.Sketch.adversarial <> None then incr untargeted_successes)
    batch;
  Printf.printf "untargeted: %d/%d successes\n\n" !untargeted_successes
    (Array.length batch);

  (* Targeted, per target class. *)
  print_endline "targeted (success / attempts, avg queries on success):";
  for target = 0 to spec.num_classes - 1 do
    let successes = ref 0 and queries = ref 0 and attempts = ref 0 in
    Array.iter
      (fun (image, true_class) ->
        if true_class <> target then begin
          incr attempts;
          let r =
            Oppsla.Sketch.attack ~goal:(Oppsla.Sketch.Targeted target)
              (Workbench.oracle_factory classifier ())
              Oppsla.Condition.const_false_program ~image ~true_class
          in
          if r.Oppsla.Sketch.adversarial <> None then begin
            incr successes;
            queries := !queries + r.Oppsla.Sketch.queries
          end
        end)
      batch;
    Printf.printf "  -> %-12s %2d/%2d%s\n"
      spec.class_names.(target) !successes !attempts
      (if !successes > 0 then
         Printf.sprintf ", avg %.0f queries"
           (float_of_int !queries /. float_of_int !successes)
       else "")
  done

(* Targeted one-pixel attacks (an extension of the paper's untargeted
   setting): force the classifier toward a chosen class, not just away
   from the true one.

     dune exec examples/targeted.exe

   Targeted attacks are a first-class experiment ({!Experiments.targeted}
   rides the same Runner/cache/batcher stack as Figure 3); this example
   runs it at quick scale and prints the report table.  Since the
   targeted success set is a subset of the untargeted one, success rates
   per target class sum to at most the untargeted rate. *)

module Experiments = Evalharness.Experiments
module Report = Evalharness.Report
module Workbench = Evalharness.Workbench

let () =
  let config =
    { Workbench.default_config with log = (fun m -> print_endline m) }
  in
  let rows = Experiments.targeted ~scale:Experiments.quick_scale config in
  print_newline ();
  print_endline (Report.render_targeted rows)

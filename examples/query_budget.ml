(* Success rate as a function of the query budget (the Figure 3 scenario
   in miniature): OPPSLA's synthesized programs vs. the Sparse-RS and
   SuOPA baselines on one classifier.

     dune exec examples/query_budget.exe *)

module Workbench = Evalharness.Workbench
module Attackers = Evalharness.Attackers
module Runner = Evalharness.Runner

let () =
  let config =
    { Workbench.default_config with log = (fun m -> print_endline m) }
  in
  let classifier =
    Workbench.load_classifier config Dataset.synth_cifar "googlenet_tiny"
  in
  let params = { Workbench.default_synth_params with iters = 25 } in
  let programs = Workbench.synthesize_programs ~params config classifier in
  let batch =
    Array.sub classifier.test 0 (min 40 (Array.length classifier.test))
  in
  let max_queries = 8 * 16 * 16 in
  let budgets = [ 25; 50; 100; 200; 500; max_queries ] in
  Printf.printf "\nattacking %d images of %s (full allowance %d queries)\n\n"
    (Array.length batch) classifier.arch max_queries;
  Printf.printf "%-12s" "attack";
  List.iter (fun b -> Printf.printf " <=%-6d" b) budgets;
  print_newline ();
  List.iter
    (fun attacker ->
      let records =
        Runner.run ~seed:7 ~max_queries attacker
          ~oracle_factory:(Workbench.oracle_factory classifier)
          batch
      in
      Printf.printf "%-12s" attacker.Attackers.name;
      List.iter
        (fun b ->
          Printf.printf " %-7s"
            (Printf.sprintf "%.0f%%" (100. *. Runner.success_rate_at records b)))
        budgets;
      print_newline ())
    [
      Attackers.oppsla ~programs;
      Attackers.sketch_false;
      Attackers.sparse_rs;
      Attackers.su_opa ();
    ]

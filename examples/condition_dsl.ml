(* The condition DSL: parsing, printing, errors, and what a hand-written
   program does to attack cost.

     dune exec examples/condition_dsl.exe

   This example needs no synthesis: it parses the program from Section
   3.2 of the paper, shows the parser's error reporting, and compares the
   hand-written program against the fixed prioritization on a batch of
   test images. *)

module Workbench = Evalharness.Workbench

(* The example program of Section 3.2, with the center radius scaled to
   our 16x16 images (the paper's 8 was for 32x32 CIFAR). *)
let paper_example =
  "B1: score_diff < 0.21; B2: max(orig) > 0.19;\n\
   B3: score_diff > 0.25; B4: center < 4"

let () =
  (* Round-trip: parse, print, re-parse. *)
  let program = Oppsla.Dsl.parse_program_exn paper_example in
  let printed = Oppsla.Dsl.print_program program in
  Printf.printf "parsed : %s\n" printed;
  assert (
    Oppsla.Condition.equal_program program (Oppsla.Dsl.parse_program_exn printed));
  print_endline "round-trip: ok\n";

  (* Parse errors carry positions and a caret. *)
  let bad = "B1: score_diff < 0.21; B2: mox(orig) > 0.19; B3: true; B4: true" in
  (match Oppsla.Dsl.parse_program bad with
  | Ok _ -> assert false
  | Error e -> Printf.printf "%s\n\n" (Oppsla.Dsl.describe_error bad e));

  (* Attack cost comparison on real test images. *)
  let config = Workbench.default_config in
  let classifier =
    Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny"
  in
  let batch = Array.sub classifier.test 0 (min 40 (Array.length classifier.test)) in
  let evaluate name program =
    let e = Workbench.parallel_evaluator classifier program batch in
    Printf.printf "%-13s %d/%d successes, avg %.1f queries\n" name
      e.Oppsla.Score.successes e.attempts e.avg_queries
  in
  Printf.printf "attacking %d test images:\n" (Array.length batch);
  evaluate "hand-written" program;
  evaluate "Sketch+False" Oppsla.Condition.const_false_program

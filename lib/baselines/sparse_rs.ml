type config = { max_queries : int; min_explore : float }

let default_config ~max_queries = { max_queries; min_explore = 0.1 }

let margin scores true_class =
  let best_other = ref neg_infinity in
  for c = 0 to Tensor.numel scores - 1 do
    if c <> true_class then
      best_other := Float.max !best_other (Tensor.get_flat scores c)
  done;
  Tensor.get_flat scores true_class -. !best_other

(* The published schedule decays the fraction of the pixel set that is
   resampled as the query budget is consumed. *)
let explore_probability config spent =
  let frac = float_of_int spent /. float_of_int (max 1 config.max_queries) in
  let schedule =
    if frac < 0.02 then 1.0
    else if frac < 0.05 then 0.8
    else if frac < 0.1 then 0.6
    else if frac < 0.2 then 0.4
    else if frac < 0.5 then 0.2
    else config.min_explore
  in
  Float.max schedule config.min_explore

type multi_result = {
  adversarial : (Oppsla.Pair.t list * Tensor.t) option;
  queries : int;
}

exception Done of multi_result

(* Stall-watchdog heartbeat, one beat per metered query (observation
   only — no RNG draw, no metering). *)
let wd = Telemetry.Watchdog.loop "baseline.sparse_rs"

let perturb_set image pairs =
  List.fold_left
    (fun acc pair -> Oppsla.Sketch.perturb acc pair)
    image pairs

let attack_multi ?config ?(batch = Oppsla.Sketch.default_batch) ~k g oracle
    ~image ~true_class =
  let d1 = Tensor.dim image 1 and d2 = Tensor.dim image 2 in
  if k < 1 || k > d1 * d2 then
    invalid_arg
      (Printf.sprintf "Sparse_rs.attack_multi: k = %d outside [1, %d]" k
         (d1 * d2));
  let config =
    match config with
    | Some c -> c
    | None -> default_config ~max_queries:(Oppsla.Pair.count ~d1 ~d2)
  in
  (* A singleton set is exactly a sketch perturbation, so it shares the
     sketch's corner key space (cross-attacker hits on the same image);
     larger sets get an order-independent id-list key. *)
  let cache_key pairs =
    match pairs with
    | [ p ] -> Oppsla.Sketch.cache_key p
    | _ ->
        let ids = List.map (Oppsla.Pair.id ~d2) pairs |> List.sort compare in
        Score_cache.Custom
          ("pairs:" ^ String.concat "," (List.map string_of_int ids))
  in
  let spent = ref 0 in
  let batcher = Batcher.create ~width:batch oracle in
  let candidate_of pairs =
    { Batcher.key = cache_key pairs; input = (fun () -> perturb_set image pairs) }
  in
  let query ?speculate pairs =
    if !spent >= config.max_queries then
      raise (Done { adversarial = None; queries = !spent });
    let scores =
      try Batcher.query batcher ?speculate (candidate_of pairs)
      with Oracle.Budget_exhausted _ ->
        raise (Done { adversarial = None; queries = !spent })
    in
    incr spent;
    Telemetry.Watchdog.beat ~queries:!spent wd;
    if Tensor.argmax scores <> true_class then
      raise
        (Done
           {
             adversarial = Some (pairs, perturb_set image pairs);
             queries = !spent;
           });
    margin scores true_class
  in
  (* Proposal generation is a pure function of an explicit PRNG and an
     explicit query index, so the batcher can speculate future proposals
     from a {!Prng.copy} clone without advancing the real stream: the
     real state only moves when a proposal is actually generated, which
     keeps the draw sequence — hence everything downstream — bit-identical
     to the sequential path at every batch width. *)
  let random_loc_excluding ~g excluded =
    let rec draw () =
      let loc = Oppsla.Location.make ~row:(Prng.int g d1) ~col:(Prng.int g d2) in
      if List.exists (Oppsla.Location.equal loc) excluded then draw () else loc
    in
    draw ()
  in
  let random_set () =
    let rec build acc n =
      if n = 0 then acc
      else begin
        let loc =
          random_loc_excluding ~g
            (List.map (fun (p : Oppsla.Pair.t) -> p.loc) acc)
        in
        build (Oppsla.Pair.make ~loc ~corner:(Prng.int g 8) :: acc) (n - 1)
      end
    in
    build [] k
  in
  (* Resample [count] of the pixels: each selected slot gets either a
     fresh location (exploration) or only a fresh color. *)
  let propose ~g ~spent current =
    let explore = explore_probability config spent in
    let count = max 1 (int_of_float (Float.round (explore *. float_of_int k))) in
    let selected = Prng.sample_without_replacement g count (Array.init k Fun.id) in
    let next = Array.of_list current in
    Array.iter
      (fun i ->
        let keep_location = Prng.uniform g >= explore in
        let current_pair = next.(i) in
        if keep_location then begin
          let corner =
            let c = Prng.int g 7 in
            if c >= current_pair.Oppsla.Pair.corner then c + 1 else c
          in
          next.(i) <- Oppsla.Pair.make ~loc:current_pair.Oppsla.Pair.loc ~corner
        end
        else begin
          let others =
            Array.to_list next |> List.filteri (fun j _ -> j <> i)
            |> List.map (fun (p : Oppsla.Pair.t) -> p.loc)
          in
          next.(i) <-
            Oppsla.Pair.make
              ~loc:(random_loc_excluding ~g others)
              ~corner:(Prng.int g 8)
        end)
      selected;
    Array.to_list next
  in
  (* Speculate assuming every pending proposal is rejected: [base] stays
     current, the PRNG clone advances exactly as the real stream will on
     rejection, and the [i]-th future proposal is generated at the query
     index the sequential path would use.  An acceptance diverges the
     key stream and the batcher rebuilds — never a correctness event. *)
  let query_speculating base pairs =
    let spec_g = ref None in
    let speculate i =
      if i >= config.max_queries - !spent - 1 then None
      else begin
        let g' =
          match !spec_g with
          | Some g' -> g'
          | None ->
              let g' = Prng.copy g in
              spec_g := Some g';
              g'
        in
        Some (candidate_of (propose ~g:g' ~spent:(!spent + 1 + i) base))
      end
    in
    query ~speculate pairs
  in
  Telemetry.Watchdog.with_loop wd @@ fun () ->
  try
    let current = ref (random_set ()) in
    let current_margin = ref (query_speculating !current !current) in
    while true do
      let proposal = propose ~g ~spent:!spent !current in
      let m = query_speculating !current proposal in
      if m <= !current_margin then begin
        current := proposal;
        current_margin := m
      end
    done;
    assert false
  with Done r -> r

let attack ?config ?batch g oracle ~image ~true_class =
  let r = attack_multi ?config ?batch ~k:1 g oracle ~image ~true_class in
  {
    Oppsla.Sketch.adversarial =
      Option.map
        (fun (pairs, candidate) -> (List.hd pairs, candidate))
        r.adversarial;
    queries = r.queries;
  }

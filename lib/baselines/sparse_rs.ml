type config = { max_queries : int; min_explore : float }

let default_config ~max_queries = { max_queries; min_explore = 0.1 }

let margin scores true_class =
  let best_other = ref neg_infinity in
  for c = 0 to Tensor.numel scores - 1 do
    if c <> true_class then
      best_other := Float.max !best_other (Tensor.get_flat scores c)
  done;
  Tensor.get_flat scores true_class -. !best_other

(* The margin loss the random search minimizes, generalized to targeted
   goals: untargeted success is [margin < 0] at the true class, targeted
   success is [margin > 0] at the target class, so the targeted loss is
   the negated target margin.  Under a label-only oracle the observed
   vectors are one-hot and the loss degenerates to the flip indicator
   (constant on failures), so acceptance never prunes — the search
   degrades to pure random sampling, which is the honest decision-based
   variant of the framework. *)
let loss goal scores ~true_class =
  match (goal : Oppsla.Sketch.goal) with
  | Untargeted -> margin scores true_class
  | Targeted target -> -.margin scores target

(* The published schedule decays the fraction of the pixel set that is
   resampled as the query budget is consumed. *)
let explore_probability config spent =
  let frac = float_of_int spent /. float_of_int (max 1 config.max_queries) in
  let schedule =
    if frac < 0.02 then 1.0
    else if frac < 0.05 then 0.8
    else if frac < 0.1 then 0.6
    else if frac < 0.2 then 0.4
    else if frac < 0.5 then 0.2
    else config.min_explore
  in
  Float.max schedule config.min_explore

type multi_result = {
  adversarial : (Oppsla.Pair.t list * Tensor.t) option;
  queries : int;
}

exception Done of multi_result

(* Stall-watchdog heartbeat, one beat per metered query (observation
   only — no RNG draw, no metering). *)
let wd = Telemetry.Watchdog.loop "baseline.sparse_rs"

let perturb_set image pairs =
  List.fold_left
    (fun acc pair -> Oppsla.Sketch.perturb acc pair)
    image pairs

(* The shared random-search engine: a state type with a cache key, a
   materializer, an initial sample and a proposal kernel.  Both the
   k-pixel and the patch instantiations run the same accept-iff-loss-
   does-not-increase loop with the same speculative batching. *)
let search (type s) ~config ~batch ~goal ~(key : s -> Score_cache.key)
    ~(materialize : s -> Tensor.t) ~(pairs_of : s -> Oppsla.Pair.t list)
    ~(initial : Prng.t -> s) ~(propose : g:Prng.t -> spent:int -> s -> s) g
    oracle ~true_class =
  let spent = ref 0 in
  let batcher = Batcher.create ~width:batch oracle in
  let candidate_of state =
    { Batcher.key = key state; input = (fun () -> materialize state) }
  in
  let query ?speculate state =
    if !spent >= config.max_queries then
      raise (Done { adversarial = None; queries = !spent });
    let scores =
      try
        Oracle.observe oracle (Batcher.query batcher ?speculate (candidate_of state))
      with Oracle.Budget_exhausted _ ->
        raise (Done { adversarial = None; queries = !spent })
    in
    incr spent;
    Telemetry.Watchdog.beat ~queries:!spent wd;
    if Oppsla.Sketch.goal_reached goal ~true_class (Tensor.argmax scores) then
      raise
        (Done
           {
             adversarial = Some (pairs_of state, materialize state);
             queries = !spent;
           });
    loss goal scores ~true_class
  in
  (* Speculate assuming every pending proposal is rejected: [base] stays
     current, the PRNG clone advances exactly as the real stream will on
     rejection, and the [i]-th future proposal is generated at the query
     index the sequential path would use.  An acceptance diverges the
     key stream and the batcher rebuilds — never a correctness event. *)
  let query_speculating base state =
    let spec_g = ref None in
    let speculate i =
      if i >= config.max_queries - !spent - 1 then None
      else begin
        let g' =
          match !spec_g with
          | Some g' -> g'
          | None ->
              let g' = Prng.copy g in
              spec_g := Some g';
              g'
        in
        Some (candidate_of (propose ~g:g' ~spent:(!spent + 1 + i) base))
      end
    in
    query ~speculate state
  in
  Telemetry.Journal.with_default_site "baseline/sparse_rs" @@ fun () ->
  Telemetry.Watchdog.with_loop wd @@ fun () ->
  try
    let current = ref (initial g) in
    let current_loss = ref (query_speculating !current !current) in
    while true do
      let proposal = propose ~g ~spent:!spent !current in
      let l = query_speculating !current proposal in
      if l <= !current_loss then begin
        current := proposal;
        current_loss := l
      end
    done;
    assert false
  with Done r -> r

let attack_multi ?config ?(batch = Oppsla.Sketch.default_batch)
    ?(goal = Oppsla.Sketch.Untargeted) ~k g oracle ~image ~true_class =
  let d1 = Tensor.dim image 1 and d2 = Tensor.dim image 2 in
  if k < 1 || k > d1 * d2 then
    invalid_arg
      (Printf.sprintf "Sparse_rs.attack_multi: k = %d outside [1, %d]" k
         (d1 * d2));
  let gen = { Oppsla.Gen.d1; d2 } in
  let config =
    match config with
    | Some c -> c
    | None -> default_config ~max_queries:(Oppsla.Pair.count ~d1 ~d2)
  in
  (* Proposal generation is a pure function of an explicit PRNG and an
     explicit query index, so the batcher can speculate future proposals
     from a {!Prng.copy} clone without advancing the real stream: the
     real state only moves when a proposal is actually generated, which
     keeps the draw sequence — hence everything downstream — bit-identical
     to the sequential path at every batch width. *)
  (* Resample [count] of the pixels: each selected slot gets either a
     fresh location (exploration) or only a fresh color. *)
  let propose ~g ~spent current =
    let explore = explore_probability config spent in
    let count = max 1 (int_of_float (Float.round (explore *. float_of_int k))) in
    let selected = Prng.sample_without_replacement g count (Array.init k Fun.id) in
    let next = Array.of_list current in
    Array.iter
      (fun i ->
        let keep_location = Prng.uniform g >= explore in
        let current_pair = next.(i) in
        if keep_location then begin
          let corner =
            let c = Prng.int g 7 in
            if c >= current_pair.Oppsla.Pair.corner then c + 1 else c
          in
          next.(i) <- Oppsla.Pair.make ~loc:current_pair.Oppsla.Pair.loc ~corner
        end
        else begin
          let others =
            Array.to_list next |> List.filteri (fun j _ -> j <> i)
            |> List.map (fun (p : Oppsla.Pair.t) -> p.loc)
          in
          next.(i) <-
            Oppsla.Pair.make
              ~loc:(Oppsla.Gen.random_loc_excluding gen g ~excluded:others)
              ~corner:(Prng.int g 8)
        end)
      selected;
    Array.to_list next
  in
  search ~config ~batch ~goal
    ~key:(Oppsla.Space.set_key ~d2)
    ~materialize:(perturb_set image)
    ~pairs_of:Fun.id
    ~initial:(fun g -> Oppsla.Gen.random_pixel_set gen g ~k)
    ~propose g oracle ~true_class

let attack_patch ?config ?(batch = Oppsla.Sketch.default_batch)
    ?(goal = Oppsla.Sketch.Untargeted) ~h ~w g oracle ~image ~true_class =
  let d1 = Tensor.dim image 1 and d2 = Tensor.dim image 2 in
  if h < 1 || w < 1 || h > d1 || w > d2 then
    invalid_arg
      (Printf.sprintf "Sparse_rs.attack_patch: %dx%d patch in a %dx%d image" h
         w d1 d2);
  let gen = { Oppsla.Gen.d1; d2 } in
  let anchors = (d1 - h + 1) * (d2 - w + 1) in
  let config =
    match config with
    | Some c -> c
    | None -> default_config ~max_queries:(8 * anchors)
  in
  (* Patch state is (anchor, fill corner).  Exploration re-anchors the
     patch globally; exploitation keeps the anchor and resamples only
     the corner (skipping the current one, as in the pixel kernel). *)
  let propose ~g ~spent (anchor, corner) =
    let explore = explore_probability config spent in
    if Prng.uniform g < explore then Oppsla.Gen.random_patch gen g ~h ~w
    else begin
      let c = Prng.int g 7 in
      (anchor, if c >= corner then c + 1 else c)
    end
  in
  search ~config ~batch ~goal
    ~key:(fun (anchor, corner) -> Oppsla.Space.patch_key ~anchor ~h ~w ~corner)
    ~materialize:(fun (anchor, corner) ->
      Oppsla.Space.perturb_patch image ~anchor ~h ~w ~corner)
    ~pairs_of:(fun (anchor, corner) ->
      List.map
        (fun loc -> Oppsla.Pair.make ~loc ~corner)
        (Oppsla.Location.patch_cells ~anchor ~h ~w))
    ~initial:(fun g -> Oppsla.Gen.random_patch gen g ~h ~w)
    ~propose g oracle ~true_class

let attack_space ?config ?batch ?goal ~space g oracle ~image ~true_class =
  (* One dimensional series per search space — cardinality is bounded by
     the space grammar (pixel, kpixel:k, patch:hxw actually used). *)
  Telemetry.Counter.incr
    (Telemetry.Metrics.counter
       ~labels:[ ("space", Oppsla.Space.to_string space) ]
       "baseline.sparse_rs.attacks");
  match (space : Oppsla.Space.t) with
  | Pixel -> attack_multi ?config ?batch ?goal ~k:1 g oracle ~image ~true_class
  | Kpixel k -> attack_multi ?config ?batch ?goal ~k g oracle ~image ~true_class
  | Patch { h; w } ->
      attack_patch ?config ?batch ?goal ~h ~w g oracle ~image ~true_class

let attack ?config ?batch ?goal g oracle ~image ~true_class =
  let r = attack_multi ?config ?batch ?goal ~k:1 g oracle ~image ~true_class in
  {
    Oppsla.Sketch.adversarial =
      Option.map
        (fun (pairs, candidate) -> (List.hd pairs, candidate))
        r.adversarial;
    queries = r.queries;
  }

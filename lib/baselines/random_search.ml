type outcome = {
  best : Oppsla.Condition.program;
  best_avg_queries : float;
  synth_queries : int;
}

let synthesize ?(samples = 210) ?max_queries_per_image ?caches ?batch
    ?evaluator g oracle ~training =
  if Array.length training = 0 then
    invalid_arg "Random_search.synthesize: empty training set";
  if samples <= 0 then invalid_arg "Random_search.synthesize: samples <= 0";
  let gen_config = Oppsla.Gen.config_for_image (fst training.(0)) in
  let evaluate =
    match evaluator with
    | Some f -> f
    | None ->
        fun program samples ->
          Oppsla.Score.evaluate ?max_queries:max_queries_per_image ?caches
            ?batch oracle program samples
  in
  let spent = ref 0 in
  let best = ref None in
  (* One heartbeat per sampled program: each draw evaluates the whole
     training set, so this is the coarse outer-progress signal (the
     per-query beats in Sketch.attack cover the inner loop). *)
  let wd = Telemetry.Watchdog.loop "baseline.random_search" in
  Telemetry.Journal.with_site "baseline/random_search" @@ fun () ->
  Telemetry.Watchdog.with_loop wd @@ fun () ->
  for i = 1 to samples do
    let program = Oppsla.Gen.random_program gen_config g in
    let e = evaluate program training in
    spent := !spent + e.Oppsla.Score.total_queries;
    Telemetry.Watchdog.beat ~iteration:i ~queries:!spent wd;
    match !best with
    | Some (_, avg) when avg <= e.Oppsla.Score.avg_queries -> ()
    | _ -> best := Some (program, e.Oppsla.Score.avg_queries)
  done;
  match !best with
  | None -> assert false (* samples >= 1 *)
  | Some (best, best_avg_queries) ->
      { best; best_avg_queries; synth_queries = !spent }

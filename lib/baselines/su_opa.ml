type config = { population : int; f : float; max_queries : int }

let default_config ~max_queries = { population = 400; f = 0.5; max_queries }

(* A candidate is [| row; col; r; g; b |] with row/col as floats in
   [0, d1) / [0, d2) and colors in [0, 1]. *)

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let pixel_of image cand =
  let d1 = Tensor.dim image 1 and d2 = Tensor.dim image 2 in
  let row = clamp 0 (d1 - 1) (int_of_float cand.(0)) in
  let col = clamp 0 (d2 - 1) (int_of_float cand.(1)) in
  (row, col)

let build image ~row ~col cand =
  let x' = Tensor.copy image in
  Oppsla.Rgb.write_to_image x' ~row ~col
    { Oppsla.Rgb.r = cand.(2); g = cand.(3); b = cand.(4) };
  x'

(* Continuous colors don't fit the corner key space, so memoize under an
   exact-bits custom key: two candidates hit the same entry iff they
   perturb the same pixel with float-identical colors. *)
let cache_key ~row ~col cand =
  Score_cache.Custom
    (Printf.sprintf "rgb:%d,%d,%Lx,%Lx,%Lx" row col
       (Int64.bits_of_float cand.(2))
       (Int64.bits_of_float cand.(3))
       (Int64.bits_of_float cand.(4)))

exception Done of Oppsla.Sketch.result

(* Stall-watchdog heartbeat, one beat per metered query. *)
let wd = Telemetry.Watchdog.loop "baseline.su_opa"

let nearest_corner_pair ~row ~col cand =
  let bit v = if v >= 0.5 then 1 else 0 in
  let corner = (bit cand.(2) * 4) + (bit cand.(3) * 2) + bit cand.(4) in
  Oppsla.Pair.make ~loc:(Oppsla.Location.make ~row ~col) ~corner

let attack ?config ?(batch = Oppsla.Sketch.default_batch)
    ?(goal = Oppsla.Sketch.Untargeted) g oracle ~image ~true_class =
  let d1 = Tensor.dim image 1 and d2 = Tensor.dim image 2 in
  let config =
    match config with
    | Some c -> c
    | None -> default_config ~max_queries:(Oppsla.Pair.count ~d1 ~d2)
  in
  if config.population < 4 then
    invalid_arg "Su_opa.attack: population must be at least 4 for DE/rand/1";
  let spent = ref 0 in
  let batcher = Batcher.create ~width:batch oracle in
  let candidate_of cand =
    let row, col = pixel_of image cand in
    {
      Batcher.key = cache_key ~row ~col cand;
      input = (fun () -> build image ~row ~col cand);
    }
  in
  (* Candidates are evaluated in batches (the whole initial population,
     then one generation at a time), and success is only declared after a
     batch completes — matching the published implementation, whose
     minimum query count is the population size. *)
  let found = ref None in
  let finish () = raise (Done { adversarial = !found; queries = !spent }) in
  let check_batch () = if !found <> None then finish () in
  (* Fitness = true-class score of the perturbed image (minimized);
     targeted goals minimize the negated target-class score instead.
     Scores pass through the oracle's observation point, so under a
     label-only oracle the fitness degenerates to the flip indicator and
     DE selection stops discriminating — the honest decision-based
     degradation (success detection is argmax-based, hence unchanged). *)
  let fitness ?speculate cand =
    if !spent >= config.max_queries then finish ();
    let scores =
      try Oracle.observe oracle (Batcher.query batcher ?speculate (candidate_of cand))
      with Oracle.Budget_exhausted _ -> finish ()
    in
    incr spent;
    Telemetry.Watchdog.beat ~queries:!spent wd;
    if
      !found = None
      && Oppsla.Sketch.goal_reached goal ~true_class (Tensor.argmax scores)
    then begin
      let row, col = pixel_of image cand in
      found :=
        Some (nearest_corner_pair ~row ~col cand, build image ~row ~col cand)
    end;
    match goal with
    | Oppsla.Sketch.Untargeted -> Tensor.get_flat scores true_class
    | Oppsla.Sketch.Targeted target -> -.Tensor.get_flat scores target
  in
  (* Cap speculation at the local query budget: the [i]-th future
     candidate is only consumable while [spent + 1 + i < max_queries]. *)
  let within_budget i k =
    if i >= config.max_queries - !spent - 1 then None else k ()
  in
  let random_candidate () =
    [|
      Prng.float g (float_of_int d1);
      Prng.float g (float_of_int d2);
      clamp 0. 1. (Prng.normal g ~mu:0.5 ~sigma:0.3 ());
      clamp 0. 1. (Prng.normal g ~mu:0.5 ~sigma:0.3 ());
      clamp 0. 1. (Prng.normal g ~mu:0.5 ~sigma:0.3 ());
    |]
  in
  (* DE/rand/1 mutation for slot [i], drawing from an explicit PRNG so
     speculation can run it on a {!Prng.copy} clone without advancing the
     real stream. *)
  let gen_mutant ~g i =
    let pick () =
      let rec draw () =
        let j = Prng.int g config.population in
        if j = i then draw () else j
      in
      draw ()
    in
    let r1 = pick () in
    let r2 =
      let rec draw () =
        let j = pick () in
        if j = r1 then draw () else j
      in
      draw ()
    in
    let r3 =
      let rec draw () =
        let j = pick () in
        if j = r1 || j = r2 then draw () else j
      in
      draw ()
    in
    r1, r2, r3
  in
  Telemetry.Journal.with_default_site "baseline/su_opa" @@ fun () ->
  Telemetry.Watchdog.with_loop wd @@ fun () ->
  try
    (* The initial population is drawn before any query, so its fitness
       sweep is fully speculable: while evaluating member [i] the batcher
       may prepare members [i+1 ...] directly from the array. *)
    let pop = Array.init config.population (fun _ -> random_candidate ()) in
    let fit =
      Array.mapi
        (fun i cand ->
          let speculate j =
            within_budget j (fun () ->
                if i + 1 + j < config.population then
                  Some (candidate_of pop.(i + 1 + j))
                else None)
          in
          fitness ~speculate cand)
        pop
    in
    check_batch ();
    let build_mutant (r1, r2, r3) =
      let mutant =
        Array.init 5 (fun k ->
            pop.(r1).(k) +. (config.f *. (pop.(r2).(k) -. pop.(r3).(k))))
      in
      mutant.(0) <- clamp 0. (float_of_int d1 -. 1e-6) mutant.(0);
      mutant.(1) <- clamp 0. (float_of_int d2 -. 1e-6) mutant.(1);
      for k = 2 to 4 do
        mutant.(k) <- clamp 0. 1. mutant.(k)
      done;
      mutant
    in
    while true do
      for i = 0 to config.population - 1 do
        let mutant = build_mutant (gen_mutant ~g i) in
        (* Speculate the rest of the generation assuming every pending
           mutant is rejected (population unchanged): draws come from a
           PRNG clone, so the real stream only advances when the real
           mutant is generated.  An acceptance diverges the key stream
           and the batcher rebuilds from true state. *)
        let spec_g = ref None in
        let speculate j =
          within_budget j (fun () ->
              if i + 1 + j < config.population then begin
                let g' =
                  match !spec_g with
                  | Some g' -> g'
                  | None ->
                      let g' = Prng.copy g in
                      spec_g := Some g';
                      g'
                in
                Some (candidate_of (build_mutant (gen_mutant ~g:g' (i + 1 + j))))
              end
              else None)
        in
        let mf = fitness ~speculate mutant in
        if mf <= fit.(i) then begin
          pop.(i) <- mutant;
          fit.(i) <- mf
        end
      done;
      check_batch ()
    done;
    assert false
  with Done r -> r

(** Sketch+False (Appendix C): the constant program.

    All four conditions are [false], so no reordering ever happens and the
    attack follows the sketch's initial prioritization exactly — farthest
    corner colors first, center-out.  It poses zero synthesis queries.
    Its gap to OPPSLA measures the value of the synthesized conditions. *)

val program : Oppsla.Condition.program
(** [Oppsla.Condition.const_false_program]. *)

val attack :
  ?max_queries:int ->
  ?goal:Oppsla.Sketch.goal ->
  ?cache:Score_cache.t ->
  ?batch:int ->
  Oracle.t ->
  image:Tensor.t ->
  true_class:int ->
  Oppsla.Sketch.result
(** The sketch run with {!program}.  [cache] and [batch] are forwarded to
    {!Oppsla.Sketch.attack} (defaulting to the oracle's attached cache
    and {!Oppsla.Sketch.default_batch} respectively). *)

(** Sketch+Random (Appendix C): random program sampling.

    Samples [samples] independent random instantiations of the sketch
    (210 by default — the number of stochastic-search iterations OPPSLA
    runs in the ablation), evaluates each on the training set, and
    returns the one with the lowest average query count.  Its gap to
    OPPSLA measures the value of the Metropolis-Hastings search over
    blind sampling. *)

type outcome = {
  best : Oppsla.Condition.program;
  best_avg_queries : float;
  synth_queries : int;  (** oracle queries spent selecting the program *)
}

val synthesize :
  ?samples:int ->
  ?max_queries_per_image:int ->
  ?caches:Score_cache.store ->
  ?batch:int ->
  ?evaluator:
    (Oppsla.Condition.program ->
    (Tensor.t * int) array ->
    Oppsla.Score.evaluation) ->
  Prng.t ->
  Oracle.t ->
  training:(Tensor.t * int) array ->
  outcome
(** [evaluator] substitutes {!Oppsla.Score.evaluate} (e.g. with a parallel
    runner), exactly as in {!Oppsla.Synthesizer.config}.  [caches] (one
    slot per training image, shared across all sampled programs) is
    forwarded to the default evaluator and ignored when [evaluator] is
    given — a custom evaluator owns its own caching.  [batch] (default
    {!Oppsla.Sketch.default_batch}) is the speculative chunk width
    forwarded the same way; outcomes are bit-identical at every width. *)

(** SuOPA: the original One Pixel Attack (Su et al., 2017), based on
    differential evolution.

    A candidate is an (row, col, r, g, b) vector; colors range over the
    whole cube [[0,1]^3] (not only its corners).  DE/rand/1 evolution: for
    each population member, a mutant [v = x_r1 + F (x_r2 - x_r3)] is
    built from three distinct random members, clipped to bounds, and
    replaces the member iff its fitness — the true class's softmax score,
    to be minimized — is not worse.

    Candidates are evaluated in batches (the initial population, then one
    generation at a time) and success is declared only when a batch
    completes, as in the published implementation; the minimum query
    count therefore equals [population] (the paper notes SuOPA's minimum
    of 400 queries: its population size).  The attack fails when the
    query budget runs out. *)

type config = {
  population : int;  (** default 400, as in the original attack *)
  f : float;  (** DE differential weight, default 0.5 *)
  max_queries : int;
}

val default_config : max_queries:int -> config

val attack :
  ?config:config ->
  ?batch:int ->
  ?goal:Oppsla.Sketch.goal ->
  Prng.t ->
  Oracle.t ->
  image:Tensor.t ->
  true_class:int ->
  Oppsla.Sketch.result
(** [goal] (default [Untargeted]) selects the fitness: the true class's
    score minimized, or the target class's score maximized (negated
    minimization), with success via {!Oppsla.Sketch.goal_reached}.

    The adversarial pair reported on success is the best-effort corner
    description of the continuous perturbation (for reporting only; the
    adversarial image itself carries the exact continuous pixel).

    When the oracle carries an attached cache ({!Oracle.set_cache}),
    perturbation scores are memoized under exact-float-bits
    ["rgb:row,col,..."] keys — DE revisits candidates often enough (elites
    survive generations unchanged) for this to pay off, and metering stays
    above the cache so queries and the outcome are bit-identical either
    way.

    [batch] (default {!Oppsla.Sketch.default_batch}) is the speculative
    chunk width ({!Batcher}).  The initial population's fitness sweep is
    fully batchable (the candidates exist before any query); generation
    mutants are speculated from a {!Prng.copy} clone assuming rejection,
    so the real draw stream — and every count and outcome — stays
    bit-identical at every width. *)

(** Sparse-RS (Croce et al., AAAI 2022), specialized to one-pixel attacks.

    Sparse-RS is a random-search framework for sparse black-box attacks:
    it keeps a current set of k perturbed pixels with corner-valued
    colors, proposes random modifications, and accepts a proposal iff it
    does not increase the margin loss

    [margin(x') = f_cx(x') - max_{c<>cx} f_c(x')],

    declaring success as soon as the margin is negative.  For k = 1 the
    framework degenerates to a stochastic hill-climb over
    (location, corner) pairs; following the published schedule, early
    iterations resample the location globally and later iterations
    mostly keep the location and resample the color, with an
    exploration probability that decays with the query count.

    {b Goals.}  Every attack takes an optional [goal]
    ({!Oppsla.Sketch.goal}, default [Untargeted]): targeted goals
    minimize the negated margin at the target class and succeed when the
    predicted label becomes the target.

    {b Decision-based variant.}  Run the attack against an oracle in
    {!Oracle.Decision} mode: observed vectors collapse to one-hot labels,
    the margin loss degenerates to the label-flip indicator (constant on
    failures), acceptance never prunes, and the search honestly degrades
    to label-only random sampling over the space — the decision-based
    member of the Sparse-RS framework.  Query accounting is identical in
    both modes. *)

type config = {
  max_queries : int;
  (* Probability floor for global location resampling; the published
     piecewise schedule decays toward this. *)
  min_explore : float;
}

val default_config : max_queries:int -> config

val attack :
  ?config:config ->
  ?batch:int ->
  ?goal:Oppsla.Sketch.goal ->
  Prng.t ->
  Oracle.t ->
  image:Tensor.t ->
  true_class:int ->
  Oppsla.Sketch.result
(** The one-pixel attack (k = 1), as evaluated in the paper.  [config]
    defaults to [default_config ~max_queries:(8 * d1 * d2)].  The clean
    margin is computed from an unmetered query (same convention as
    {!Oppsla.Sketch.attack}).

    When the oracle carries an attached cache ({!Oracle.set_cache}),
    perturbation scores are memoized: k = 1 proposals share the sketch's
    corner key space ({!Oppsla.Sketch.cache_key}), so hits carry across
    attackers on the same image; k > 1 sets key on the sorted pair-id
    list.  Metering stays above the cache — queries and outcomes are
    bit-identical either way.

    [batch] (default {!Oppsla.Sketch.default_batch}) is the speculative
    chunk width: future proposals are pre-generated from a {!Prng.copy}
    clone of the PRNG under the assumption that pending proposals are
    rejected, and evaluated in one batched forward pass ({!Batcher}).
    The real PRNG stream only advances when a proposal is actually
    generated, so draws, query counts and outcomes are bit-identical at
    every width. *)

(** {1 Few-pixel attacks}

    The published Sparse-RS framework is parameterized by the number of
    perturbed pixels [k]; the paper's evaluation uses k = 1, but the
    general form is provided for completeness.  Each step resamples a
    schedule-decaying fraction of the pixel set (locations and corner
    colors) and keeps the proposal iff the margin loss does not
    increase. *)

type multi_result = {
  adversarial : (Oppsla.Pair.t list * Tensor.t) option;
      (** the perturbed pixel set and the adversarial image *)
  queries : int;
}

val attack_multi :
  ?config:config ->
  ?batch:int ->
  ?goal:Oppsla.Sketch.goal ->
  k:int ->
  Prng.t ->
  Oracle.t ->
  image:Tensor.t ->
  true_class:int ->
  multi_result
(** [attack_multi ~k] perturbs exactly [k] distinct pixels.  Raises
    [Invalid_argument] if [k < 1] or [k > d1 * d2]. *)

val attack_patch :
  ?config:config ->
  ?batch:int ->
  ?goal:Oppsla.Sketch.goal ->
  h:int ->
  w:int ->
  Prng.t ->
  Oracle.t ->
  image:Tensor.t ->
  true_class:int ->
  multi_result
(** Random search over anchored [h x w] rectangles filled with one
    corner color ({!Oppsla.Space.Patch}).  The state is (anchor, fill
    corner): exploration re-anchors the patch globally, exploitation
    keeps the anchor and resamples the corner, under the same decaying
    schedule.  [config] defaults to [max_queries = 8 * #anchors].  The
    result's pair list is the patch expanded cell-by-cell (every cell
    carries the fill corner).  Cache keys live in the ["patch:"]
    namespace ({!Oppsla.Space.patch_key}).  Raises [Invalid_argument]
    when the patch does not fit the image. *)

val attack_space :
  ?config:config ->
  ?batch:int ->
  ?goal:Oppsla.Sketch.goal ->
  space:Oppsla.Space.t ->
  Prng.t ->
  Oracle.t ->
  image:Tensor.t ->
  true_class:int ->
  multi_result
(** Dispatch on the perturbation space: [Pixel] is {!attack_multi}
    [~k:1], [Kpixel k] is {!attack_multi} [~k], [Patch] is
    {!attack_patch}. *)

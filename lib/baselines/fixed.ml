let program = Oppsla.Condition.const_false_program

let attack ?max_queries ?goal ?cache ?batch oracle ~image ~true_class =
  Oppsla.Sketch.attack ?max_queries ?goal ?cache ?batch oracle program ~image
    ~true_class

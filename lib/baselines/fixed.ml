let program = Oppsla.Condition.const_false_program

let attack ?max_queries ?cache oracle ~image ~true_class =
  Oppsla.Sketch.attack ?max_queries ?cache oracle program ~image ~true_class

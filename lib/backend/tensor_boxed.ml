(* The reference backend: activations are ordinary float64 [Tensor.t]s
   and every kernel delegates to the exact [Tensor] function the layer
   engine calls, in the same order.  A plan compiled against this
   backend is therefore bit-identical to [Nn.Network.scores_batch] — the
   property the backend differential tests pin. *)

type t = Tensor.t

let name = "boxed"
let exact = true
let fuse = false
let stats = Tensor_sig.Stats.make name
let of_tensor t = t
let to_tensor t = t
let shape = Tensor.shape
let reshape = Tensor.reshape
let relu = Tensor.relu
let add = Tensor.add

let channel_norm_batch ~gamma ~beta ~eps x =
  Tensor.channel_norm_batch ~gamma ~beta ~eps x

let conv2d_batch ?pool ~stride ~pad ~weight ~bias ?norm ?(relu = false) x =
  ignore pool;
  let t0 = Unix.gettimeofday () in
  let y = Tensor.conv2d_gemm_batch ~stride ~pad x ~weight ~bias:(Some bias) in
  let s = Tensor.shape y and ws = Tensor.shape weight in
  let n = s.(0) and cols = s.(2) * s.(3) in
  let kk = ws.(1) * ws.(2) * ws.(3) in
  Telemetry.Counter.add stats.Tensor_sig.Stats.flops (2 * n * ws.(0) * kk * cols);
  Telemetry.Counter.add stats.Tensor_sig.Stats.panels n;
  Telemetry.Histogram.observe stats.Tensor_sig.Stats.seconds
    (Unix.gettimeofday () -. t0);
  (* [fuse = false]: the plan compiler never requests the fused epilogue
     from this backend, but honor it anyway as the unfused composition
     so the signature stays total. *)
  let y =
    match norm with
    | None -> y
    | Some (gamma, beta, eps) -> channel_norm_batch ~gamma ~beta ~eps y
  in
  if relu then Tensor.relu y else y

let dense_batch ~weight ~bias x =
  let t0 = Unix.gettimeofday () in
  let y = Tensor.dense_batch x ~weight ~bias in
  let ws = Tensor.shape weight in
  Telemetry.Counter.add stats.Tensor_sig.Stats.flops
    (2 * Tensor.dim x 0 * ws.(0) * ws.(1));
  Telemetry.Histogram.observe stats.Tensor_sig.Stats.seconds
    (Unix.gettimeofday () -. t0);
  y

let max_pool2d_batch ~stride ~size x = Tensor.max_pool2d_batch ~stride ~size x
let avg_pool2d_batch ~stride ~size x = Tensor.avg_pool2d_batch ~stride ~size x
let global_avg_pool_batch = Tensor.global_avg_pool_batch
let concat_channels_batch = Tensor.concat_channels_batch
let softmax_rows = Tensor.softmax_rows

(* The TENSOR signature the nn plan compiler is functorized over.

   A backend supplies batched (NCHW) inference kernels over an abstract
   activation type.  Two implementations exist: [Tensor_boxed] (the
   reference — delegates to the [Tensor] kernels the layer engine runs
   on, so a compiled boxed plan is bit-identical to the layer engine by
   construction) and [Tensor_f32] (flat [Bigarray] float32 storage with
   an explicit shape descriptor — the Manticore flat-data-plus-shape
   idiom — a blocked register-tiled GEMM, and fused conv→norm→relu).

   Weights enter a plan as ordinary float64 [Tensor.t]s and are
   converted once at compile time via [of_tensor]; activations cross the
   boundary the same way, so callers above the plan never see backend
   storage. *)

module type S = sig
  type t
  (** A batched activation (or converted weight): flat backend storage
      plus a shape descriptor.  Never nested. *)

  val name : string
  (** Short backend id, also the metric-name segment ("boxed", "f32"). *)

  val exact : bool
  (** True when the backend's kernels are bit-identical to the boxed
      reference path; false relaxes the differential contract to the
      tolerance policy (argmax/success/query identity + |Δ| ≤ tol). *)

  val fuse : bool
  (** True when the plan compiler may fuse conv→norm→relu into the
      [conv2d_batch] call.  Backends where fusion is off still accept
      the [?norm]/[?relu] arguments (they compose the unfused kernels),
      so the signature stays total. *)

  val of_tensor : Tensor.t -> t
  val to_tensor : t -> Tensor.t
  val shape : t -> int array
  val reshape : t -> int array -> t

  val relu : t -> t
  val add : t -> t -> t

  val conv2d_batch :
    ?pool:Domain_pool.Pool.t ->
    stride:int ->
    pad:int ->
    weight:t ->
    bias:t ->
    ?norm:t * t * float ->
    ?relu:bool ->
    t ->
    t
  (** Batched convolution over NCHW input; [weight] is
      [|out_c; in_c; kh; kw|], [bias] is [|out_c|].  [?norm:(gamma,
      beta, eps)] and [?relu:true] request the fused
      conv→channel-norm→relu epilogue; the result must equal the unfused
      composition [relu (channel_norm_batch (conv ...))] exactly (the
      fusion saves passes and intermediates, never changes rounding).
      [?pool] lets the backend dispatch GEMM row panels as work items on
      an idle domain pool ({!Domain_pool.Pool.try_map}); backends fall
      back to the single-domain kernel when the pool is absent, busy or
      width 1. *)

  val dense_batch : weight:t -> bias:t -> t -> t
  val max_pool2d_batch : stride:int -> size:int -> t -> t
  val avg_pool2d_batch : stride:int -> size:int -> t -> t
  val global_avg_pool_batch : t -> t
  val channel_norm_batch : gamma:t -> beta:t -> eps:float -> t -> t
  val concat_channels_batch : t list -> t
  val softmax_rows : t -> t
end

(* Per-backend GEMM instrumentation, shared by every implementation:
   the Report "backend" section renders one row per backend that ran.
   MFLOP/s = gemm_flops / gemm_seconds.sum. *)
module Stats = struct
  type t = {
    flops : Telemetry.Counter.t;  (* nominal 2*m*k*n multiply-adds *)
    panels : Telemetry.Counter.t;  (* im2col panel fills (one per image) *)
    fusion_hits : Telemetry.Counter.t;  (* fused conv epilogues executed *)
    seconds : Telemetry.Histogram.t;  (* wall seconds per conv/dense call *)
  }

  let make backend =
    {
      flops = Telemetry.Metrics.counter ("backend." ^ backend ^ ".gemm_flops");
      panels = Telemetry.Metrics.counter ("backend." ^ backend ^ ".panels");
      fusion_hits =
        Telemetry.Metrics.counter ("backend." ^ backend ^ ".fusion_hits");
      seconds =
        Telemetry.Metrics.histogram ~buckets:Telemetry.Metrics.time_buckets
          ("backend." ^ backend ^ ".gemm_seconds");
    }
end

(** Float32 [Bigarray] backend: flat unboxed storage + shape descriptor,
    blocked register-tiled GEMM (float64 accumulation, float32 rounding
    only at the store), im2col into a reused per-domain panel buffer,
    fused conv→norm→relu, and opportunistic row-panel dispatch on a
    domain pool.  Not bit-identical to the boxed reference ([exact =
    false]); differentials use the tolerance policy instead. *)

include Tensor_sig.S

val matmul : t -> t -> t
(** [matmul a b] with [a : (m, k)] and [b : (k, n)] runs the blocked
    GEMM kernel on fresh operands — the property-test surface for
    comparing against a naive float64 reference. *)

val im2col :
  stride:int -> pad:int -> kh:int -> kw:int -> t -> t
(** Single-image im2col of a CHW tensor to a fresh
    [(in_c*kh*kw, oh*ow)] panel — the property-test surface for the
    block layout (padding positions must read back as explicit 0s). *)

val get_flat : t -> int -> float
(** Row-major flat read, for tests. *)

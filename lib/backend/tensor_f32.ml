(* Float32 Bigarray backend: flat unboxed storage plus an explicit shape
   descriptor (the Manticore flattened-array idiom — data is never
   nested; shape is metadata on the side).

   Storage is float32 ([Bigarray.Array1], C layout) — half the memory
   traffic of the boxed float64 path, and off the OCaml heap entirely,
   so attack workloads stop churning the major heap with per-layer
   activation arrays.  All arithmetic still happens in float64: with the
   element kind statically known, [Array1.unsafe_get] compiles to an
   inline load+convert, and accumulators live in unboxed float64
   registers.  Only the final store rounds to float32 — which is why the
   differential contract for this backend is the tolerance policy
   (argmax/success/query identity, per-logit |Δ| ≤ tol) rather than
   bit-equality.

   The GEMM keeps the boxed kernel's proven shape — 4x4 register
   tiling, ascending-k accumulation, L2 column blocking — but packs the
   active operand panels into float64 scratch first and unrolls the
   k-loop by four, so the widening conversion runs once per element
   instead of once per use and the inner loop is pure float64 ALU work.
   The row range is a first-class parameter so row panels can be
   dispatched as work items on an idle domain pool
   ([Domain_pool.Pool.try_map]; inline fallback when the pool is absent,
   busy or width 1).  Per-element accumulation order is identical on
   every path, so pooled and inline results are bit-identical to each
   other. *)

type ba = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { shape : int array; data : ba }

let name = "f32"
let exact = false
let fuse = true
let stats = Tensor_sig.Stats.make name

let product shape = Array.fold_left ( * ) 1 shape

let alloc len : ba = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout len

let create shape =
  let data = alloc (product shape) in
  { shape = Array.copy shape; data }

let shape t = Array.copy t.shape
let numel t = product t.shape

let reshape t shape =
  if product shape <> numel t then
    invalid_arg "Tensor_f32.reshape: element count mismatch";
  { shape = Array.copy shape; data = t.data }

let of_tensor (src : Tensor.t) =
  let t = create (Tensor.shape src) in
  let d = t.data and s = src.Tensor.data in
  for i = 0 to Array.length s - 1 do
    Bigarray.Array1.unsafe_set d i (Array.unsafe_get s i)
  done;
  t

let to_tensor t =
  let d = t.data in
  Tensor.init t.shape (fun i -> Bigarray.Array1.unsafe_get d i)

let get_flat t i = Bigarray.Array1.get t.data i

(* Elementwise *)

let relu t =
  let n = numel t in
  let out = create t.shape in
  let s = t.data and d = out.data in
  for i = 0 to n - 1 do
    let v = Bigarray.Array1.unsafe_get s i in
    Bigarray.Array1.unsafe_set d i (if v > 0. then v else 0.)
  done;
  out

let add a b =
  if a.shape <> b.shape then invalid_arg "Tensor_f32.add: shape mismatch";
  let n = numel a in
  let out = create a.shape in
  let ad = a.data and bd = b.data and od = out.data in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set od i
      (Bigarray.Array1.unsafe_get ad i +. Bigarray.Array1.unsafe_get bd i)
  done;
  out

(* GEMM: [od](ooff + i*n + j) += Σ_p ad(i*k + p) * bd(p*n + j) for rows
   i in [i0, i1).  Float32 operands, float64 accumulation in sixteen
   register-resident refs, ascending-p order per output element — the
   same per-element order whatever the row panelling, so pooled and
   inline runs agree bitwise.

   The float32→float64 widening is hoisted out of the inner loop: the
   active rows of [ad] and the current column panel of [bd] are packed
   once into per-domain float64 scratch (the conversion is exact, so
   packing never changes a bit of the result), because on x86 the
   convert instruction shares ports with the multiply/add units — left
   inline it caps the kernel well below the scalar FP peak.  Each packed
   B element is then reused by every row block, and the inner loop runs
   pure float64 with the k-loop unrolled by four. *)

let panel_scratch : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let f64_scratch key len =
  let r = Domain.DLS.get key in
  if Array.length !r < len then r := Array.make len 0.;
  !r

let arow_scratch : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let gemm_rows ?(ooff = 0) ~i0 ~i1 ~k ~n (ad : ba) (bd : ba) (od : ba) =
  (* Column blocking: a [k * jb] float64 panel of [bd] targets ~1.5 MB
     so it stays L2-resident while every row block passes over it.
     Multiple of 4 so only the final block leaves a column remainder. *)
  let jb = max 16 (196608 / max 1 k land lnot 3) in
  let rows = i1 - i0 in
  if rows <= 0 then ()
  else begin
    let a64 = f64_scratch arow_scratch (rows * k) in
    for i = 0 to (rows * k) - 1 do
      Array.unsafe_set a64 i (Bigarray.Array1.unsafe_get ad ((i0 * k) + i))
    done;
    let b64 = f64_scratch panel_scratch (k * min jb n) in
    let k4 = k / 4 * 4 in
    let jlo = ref 0 in
    while !jlo < n do
      let jhi = min n (!jlo + jb) in
      let jw = jhi - !jlo in
      let jbase = !jlo in
      for p = 0 to k - 1 do
        let src = (p * n) + jbase and dst = p * jw in
        for jj = 0 to jw - 1 do
          Array.unsafe_set b64 (dst + jj)
            (Bigarray.Array1.unsafe_get bd (src + jj))
        done
      done;
      let i = ref i0 in
      while !i + 4 <= i1 do
        let r0 = !i in
        let a0 = (r0 - i0) * k and a1 = (r0 - i0 + 1) * k
        and a2 = (r0 - i0 + 2) * k and a3 = (r0 - i0 + 3) * k in
        let o0 = ooff + (r0 * n)
        and o1 = ooff + ((r0 + 1) * n)
        and o2 = ooff + ((r0 + 2) * n)
        and o3 = ooff + ((r0 + 3) * n) in
        let j = ref !jlo in
        while !j + 4 <= jhi do
          let j0 = !j in
          let jp = j0 - jbase in
          let c00 = ref (Bigarray.Array1.unsafe_get od (o0 + j0))
          and c01 = ref (Bigarray.Array1.unsafe_get od (o0 + j0 + 1))
          and c02 = ref (Bigarray.Array1.unsafe_get od (o0 + j0 + 2))
          and c03 = ref (Bigarray.Array1.unsafe_get od (o0 + j0 + 3))
          and c10 = ref (Bigarray.Array1.unsafe_get od (o1 + j0))
          and c11 = ref (Bigarray.Array1.unsafe_get od (o1 + j0 + 1))
          and c12 = ref (Bigarray.Array1.unsafe_get od (o1 + j0 + 2))
          and c13 = ref (Bigarray.Array1.unsafe_get od (o1 + j0 + 3))
          and c20 = ref (Bigarray.Array1.unsafe_get od (o2 + j0))
          and c21 = ref (Bigarray.Array1.unsafe_get od (o2 + j0 + 1))
          and c22 = ref (Bigarray.Array1.unsafe_get od (o2 + j0 + 2))
          and c23 = ref (Bigarray.Array1.unsafe_get od (o2 + j0 + 3))
          and c30 = ref (Bigarray.Array1.unsafe_get od (o3 + j0))
          and c31 = ref (Bigarray.Array1.unsafe_get od (o3 + j0 + 1))
          and c32 = ref (Bigarray.Array1.unsafe_get od (o3 + j0 + 2))
          and c33 = ref (Bigarray.Array1.unsafe_get od (o3 + j0 + 3)) in
          let p = ref 0 in
          while !p < k4 do
            let pp = !p in
            let v0 = Array.unsafe_get a64 (a0 + pp)
            and v1 = Array.unsafe_get a64 (a1 + pp)
            and v2 = Array.unsafe_get a64 (a2 + pp)
            and v3 = Array.unsafe_get a64 (a3 + pp)
            and boff = (pp * jw) + jp in
            let b0 = Array.unsafe_get b64 boff
            and b1 = Array.unsafe_get b64 (boff + 1)
            and b2 = Array.unsafe_get b64 (boff + 2)
            and b3 = Array.unsafe_get b64 (boff + 3) in
            let w0 = Array.unsafe_get a64 (a0 + pp + 1)
            and w1 = Array.unsafe_get a64 (a1 + pp + 1)
            and w2 = Array.unsafe_get a64 (a2 + pp + 1)
            and w3 = Array.unsafe_get a64 (a3 + pp + 1)
            and coff = boff + jw in
            let d0 = Array.unsafe_get b64 coff
            and d1 = Array.unsafe_get b64 (coff + 1)
            and d2 = Array.unsafe_get b64 (coff + 2)
            and d3 = Array.unsafe_get b64 (coff + 3) in
            c00 := !c00 +. (v0 *. b0) +. (w0 *. d0);
            c01 := !c01 +. (v0 *. b1) +. (w0 *. d1);
            c02 := !c02 +. (v0 *. b2) +. (w0 *. d2);
            c03 := !c03 +. (v0 *. b3) +. (w0 *. d3);
            c10 := !c10 +. (v1 *. b0) +. (w1 *. d0);
            c11 := !c11 +. (v1 *. b1) +. (w1 *. d1);
            c12 := !c12 +. (v1 *. b2) +. (w1 *. d2);
            c13 := !c13 +. (v1 *. b3) +. (w1 *. d3);
            c20 := !c20 +. (v2 *. b0) +. (w2 *. d0);
            c21 := !c21 +. (v2 *. b1) +. (w2 *. d1);
            c22 := !c22 +. (v2 *. b2) +. (w2 *. d2);
            c23 := !c23 +. (v2 *. b3) +. (w2 *. d3);
            c30 := !c30 +. (v3 *. b0) +. (w3 *. d0);
            c31 := !c31 +. (v3 *. b1) +. (w3 *. d1);
            c32 := !c32 +. (v3 *. b2) +. (w3 *. d2);
            c33 := !c33 +. (v3 *. b3) +. (w3 *. d3);
            let pq = pp + 2 in
            let v0 = Array.unsafe_get a64 (a0 + pq)
            and v1 = Array.unsafe_get a64 (a1 + pq)
            and v2 = Array.unsafe_get a64 (a2 + pq)
            and v3 = Array.unsafe_get a64 (a3 + pq)
            and boff = (pq * jw) + jp in
            let b0 = Array.unsafe_get b64 boff
            and b1 = Array.unsafe_get b64 (boff + 1)
            and b2 = Array.unsafe_get b64 (boff + 2)
            and b3 = Array.unsafe_get b64 (boff + 3) in
            let w0 = Array.unsafe_get a64 (a0 + pq + 1)
            and w1 = Array.unsafe_get a64 (a1 + pq + 1)
            and w2 = Array.unsafe_get a64 (a2 + pq + 1)
            and w3 = Array.unsafe_get a64 (a3 + pq + 1)
            and coff = boff + jw in
            let d0 = Array.unsafe_get b64 coff
            and d1 = Array.unsafe_get b64 (coff + 1)
            and d2 = Array.unsafe_get b64 (coff + 2)
            and d3 = Array.unsafe_get b64 (coff + 3) in
            c00 := !c00 +. (v0 *. b0) +. (w0 *. d0);
            c01 := !c01 +. (v0 *. b1) +. (w0 *. d1);
            c02 := !c02 +. (v0 *. b2) +. (w0 *. d2);
            c03 := !c03 +. (v0 *. b3) +. (w0 *. d3);
            c10 := !c10 +. (v1 *. b0) +. (w1 *. d0);
            c11 := !c11 +. (v1 *. b1) +. (w1 *. d1);
            c12 := !c12 +. (v1 *. b2) +. (w1 *. d2);
            c13 := !c13 +. (v1 *. b3) +. (w1 *. d3);
            c20 := !c20 +. (v2 *. b0) +. (w2 *. d0);
            c21 := !c21 +. (v2 *. b1) +. (w2 *. d1);
            c22 := !c22 +. (v2 *. b2) +. (w2 *. d2);
            c23 := !c23 +. (v2 *. b3) +. (w2 *. d3);
            c30 := !c30 +. (v3 *. b0) +. (w3 *. d0);
            c31 := !c31 +. (v3 *. b1) +. (w3 *. d1);
            c32 := !c32 +. (v3 *. b2) +. (w3 *. d2);
            c33 := !c33 +. (v3 *. b3) +. (w3 *. d3);
            p := pp + 4
          done;
          while !p < k do
            let pp = !p in
            let v0 = Array.unsafe_get a64 (a0 + pp)
            and v1 = Array.unsafe_get a64 (a1 + pp)
            and v2 = Array.unsafe_get a64 (a2 + pp)
            and v3 = Array.unsafe_get a64 (a3 + pp)
            and boff = (pp * jw) + jp in
            let b0 = Array.unsafe_get b64 boff
            and b1 = Array.unsafe_get b64 (boff + 1)
            and b2 = Array.unsafe_get b64 (boff + 2)
            and b3 = Array.unsafe_get b64 (boff + 3) in
            c00 := !c00 +. (v0 *. b0);
            c01 := !c01 +. (v0 *. b1);
            c02 := !c02 +. (v0 *. b2);
            c03 := !c03 +. (v0 *. b3);
            c10 := !c10 +. (v1 *. b0);
            c11 := !c11 +. (v1 *. b1);
            c12 := !c12 +. (v1 *. b2);
            c13 := !c13 +. (v1 *. b3);
            c20 := !c20 +. (v2 *. b0);
            c21 := !c21 +. (v2 *. b1);
            c22 := !c22 +. (v2 *. b2);
            c23 := !c23 +. (v2 *. b3);
            c30 := !c30 +. (v3 *. b0);
            c31 := !c31 +. (v3 *. b1);
            c32 := !c32 +. (v3 *. b2);
            c33 := !c33 +. (v3 *. b3);
            p := pp + 1
          done;
          Bigarray.Array1.unsafe_set od (o0 + j0) !c00;
          Bigarray.Array1.unsafe_set od (o0 + j0 + 1) !c01;
          Bigarray.Array1.unsafe_set od (o0 + j0 + 2) !c02;
          Bigarray.Array1.unsafe_set od (o0 + j0 + 3) !c03;
          Bigarray.Array1.unsafe_set od (o1 + j0) !c10;
          Bigarray.Array1.unsafe_set od (o1 + j0 + 1) !c11;
          Bigarray.Array1.unsafe_set od (o1 + j0 + 2) !c12;
          Bigarray.Array1.unsafe_set od (o1 + j0 + 3) !c13;
          Bigarray.Array1.unsafe_set od (o2 + j0) !c20;
          Bigarray.Array1.unsafe_set od (o2 + j0 + 1) !c21;
          Bigarray.Array1.unsafe_set od (o2 + j0 + 2) !c22;
          Bigarray.Array1.unsafe_set od (o2 + j0 + 3) !c23;
          Bigarray.Array1.unsafe_set od (o3 + j0) !c30;
          Bigarray.Array1.unsafe_set od (o3 + j0 + 1) !c31;
          Bigarray.Array1.unsafe_set od (o3 + j0 + 2) !c32;
          Bigarray.Array1.unsafe_set od (o3 + j0 + 3) !c33;
          j := j0 + 4
        done;
        while !j < jhi do
          let j0 = !j in
          let jp = j0 - jbase in
          let c0 = ref (Bigarray.Array1.unsafe_get od (o0 + j0))
          and c1 = ref (Bigarray.Array1.unsafe_get od (o1 + j0))
          and c2 = ref (Bigarray.Array1.unsafe_get od (o2 + j0))
          and c3 = ref (Bigarray.Array1.unsafe_get od (o3 + j0)) in
          for p = 0 to k - 1 do
            let bv = Array.unsafe_get b64 ((p * jw) + jp) in
            c0 := !c0 +. (Array.unsafe_get a64 (a0 + p) *. bv);
            c1 := !c1 +. (Array.unsafe_get a64 (a1 + p) *. bv);
            c2 := !c2 +. (Array.unsafe_get a64 (a2 + p) *. bv);
            c3 := !c3 +. (Array.unsafe_get a64 (a3 + p) *. bv)
          done;
          Bigarray.Array1.unsafe_set od (o0 + j0) !c0;
          Bigarray.Array1.unsafe_set od (o1 + j0) !c1;
          Bigarray.Array1.unsafe_set od (o2 + j0) !c2;
          Bigarray.Array1.unsafe_set od (o3 + j0) !c3;
          incr j
        done;
        i := r0 + 4
      done;
      for r = !i to i1 - 1 do
        let aoff = (r - i0) * k and orow = ooff + (r * n) in
        for j = !jlo to jhi - 1 do
          let jp = j - jbase in
          let acc = ref (Bigarray.Array1.unsafe_get od (orow + j)) in
          for p = 0 to k - 1 do
            acc :=
              !acc
              +. (Array.unsafe_get a64 (aoff + p)
                 *. Array.unsafe_get b64 ((p * jw) + jp))
          done;
          Bigarray.Array1.unsafe_set od (orow + j) !acc
        done
      done;
      jlo := jhi
    done
  end

(* Dispatch a GEMM's row panels onto an idle pool; inline otherwise.
   Work items write disjoint output row ranges, and per-element
   accumulation order does not depend on the panelling, so both paths
   produce bit-identical output. *)
let gemm_dispatch ?pool ~ooff ~m ~k ~n (ad : ba) (bd : ba) (od : ba) =
  let inline () = gemm_rows ~ooff ~i0:0 ~i1:m ~k ~n ad bd od in
  match pool with
  | Some p when Domain_pool.Pool.size p > 1 && m >= 8 ->
      let width = Domain_pool.Pool.size p in
      (* ~2 panels per participant, rows a multiple of 4 so only the
         last panel leaves a row remainder for the tile loop. *)
      let rows =
        max 4 ((((m + (2 * width) - 1) / (2 * width)) + 3) land lnot 3)
      in
      let npanels = (m + rows - 1) / rows in
      let panels =
        Array.init npanels (fun i -> (i * rows, min m ((i + 1) * rows)))
      in
      (match
         Domain_pool.Pool.try_map p
           (fun (i0, i1) -> gemm_rows ~ooff ~i0 ~i1 ~k ~n ad bd od)
           panels
       with
      | Some _ -> ()
      | None -> inline ())
  | _ -> inline ()

(* Matmul on f32 tensors — the qcheck reference surface for the GEMM
   kernel ([a : (m, k)], [b : (k, n)]). *)
let matmul a b =
  if Array.length a.shape <> 2 || Array.length b.shape <> 2 then
    invalid_arg "Tensor_f32.matmul: expected rank-2 operands";
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then invalid_arg "Tensor_f32.matmul: inner dimension mismatch";
  let out = create [| m; n |] in
  Bigarray.Array1.fill out.data 0.;
  gemm_rows ~i0:0 ~i1:m ~k ~n a.data b.data out.data;
  out

(* im2col writing straight into the (reused) panel buffer: same
   per-tap precomputed in-bounds ranges as the boxed kernel, padding
   stored as explicit zeros so the panel never needs a re-zeroing
   pass. *)

let conv_out_dim size k stride pad = ((size + (2 * pad) - k) / stride) + 1
let div_floor a b = if a >= 0 then a / b else -((-a + b - 1) / b)
let div_ceil a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

let fill_range (od : ba) pos len =
  for i = pos to pos + len - 1 do
    Bigarray.Array1.unsafe_set od i 0.
  done

let im2col_into ~stride ~pad ~kh ~kw ~in_c ~h ~w ~oh ~ow ~xoff (xd : ba)
    (od : ba) =
  for ic = 0 to in_c - 1 do
    for ky = 0 to kh - 1 do
      let oy_lo = max 0 (div_ceil (pad - ky) stride)
      and oy_hi = min (oh - 1) (div_floor (h - 1 + pad - ky) stride) in
      for kx = 0 to kw - 1 do
        let row = (((ic * kh) + ky) * kw) + kx in
        let ox_lo = max 0 (div_ceil (pad - kx) stride)
        and ox_hi = min (ow - 1) (div_floor (w - 1 + pad - kx) stride) in
        let rbase = row * (oh * ow) in
        if oy_lo > oy_hi || ox_lo > ox_hi then
          fill_range od rbase (oh * ow)
        else begin
          for oy = 0 to oy_lo - 1 do
            fill_range od (rbase + (oy * ow)) ow
          done;
          for oy = oy_hi + 1 to oh - 1 do
            fill_range od (rbase + (oy * ow)) ow
          done;
          for oy = oy_lo to oy_hi do
            let iy = (oy * stride) - pad + ky in
            let orow = rbase + (oy * ow)
            and xrow = xoff + (((ic * h) + iy) * w) - pad + kx in
            fill_range od orow ox_lo;
            fill_range od (orow + ox_hi + 1) (ow - ox_hi - 1);
            if stride = 1 then
              for ox = ox_lo to ox_hi do
                Bigarray.Array1.unsafe_set od (orow + ox)
                  (Bigarray.Array1.unsafe_get xd (xrow + ox))
              done
            else
              for ox = ox_lo to ox_hi do
                Bigarray.Array1.unsafe_set od (orow + ox)
                  (Bigarray.Array1.unsafe_get xd (xrow + (ox * stride)))
              done
          done
        end
      done
    done
  done

(* Single-image im2col to a fresh panel — the qcheck layout-test
   surface. *)
let im2col ~stride ~pad ~kh ~kw x =
  if Array.length x.shape <> 3 then
    invalid_arg "Tensor_f32.im2col: expected a CHW tensor";
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor_f32.im2col: kernel larger than padded input";
  let out = create [| in_c * kh * kw; oh * ow |] in
  im2col_into ~stride ~pad ~kh ~kw ~in_c ~h ~w ~oh ~ow ~xoff:0 x.data out.data;
  out

(* Per-domain reusable panel scratch, mirroring the boxed engine's. *)
let col_scratch : ba ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (alloc 0))

let scratch len =
  let r = Domain.DLS.get col_scratch in
  if Bigarray.Array1.dim !r < len then r := alloc len;
  !r

(* The shared normalization kernel: per-(image, channel)-plane mean and
   1/sqrt(var + eps) in float64, then scale/shift (and optionally the
   relu clamp) on the store.  Reading [src] and writing [dst] plane by
   plane makes in-place use ([src == dst], the fused conv epilogue)
   produce exactly the bits of the out-of-place unfused call: rounding
   happens at the same single store either way, and
   [round(max 0 v) = max 0 (round v)] for round-to-nearest, so folding
   the clamp before the store changes nothing either. *)
let norm_planes ~relu ~c ~plane (gd : ba) (bd : ba) ~eps ~nplanes (src : ba)
    (dst : ba) =
  let m = float_of_int plane in
  for p = 0 to nplanes - 1 do
    let off = p * plane and ch = p mod c in
    let acc = ref 0. in
    for i = 0 to plane - 1 do
      acc := !acc +. Bigarray.Array1.unsafe_get src (off + i)
    done;
    let mean = !acc /. m in
    let vacc = ref 0. in
    for i = 0 to plane - 1 do
      let d = Bigarray.Array1.unsafe_get src (off + i) -. mean in
      vacc := !vacc +. (d *. d)
    done;
    let istd = 1. /. sqrt ((!vacc /. m) +. eps) in
    let gam = Bigarray.Array1.unsafe_get gd ch
    and bet = Bigarray.Array1.unsafe_get bd ch in
    for i = 0 to plane - 1 do
      let xhat = (Bigarray.Array1.unsafe_get src (off + i) -. mean) *. istd in
      let v = (gam *. xhat) +. bet in
      Bigarray.Array1.unsafe_set dst (off + i)
        (if relu && v <= 0. then 0. else v)
    done
  done

let channel_norm_batch ~gamma ~beta ~eps x =
  if Array.length x.shape <> 4 then
    invalid_arg "Tensor_f32.channel_norm_batch: expected an NCHW tensor";
  let nb = x.shape.(0) and c = x.shape.(1) in
  let plane = x.shape.(2) * x.shape.(3) in
  if gamma.shape.(0) <> c || beta.shape.(0) <> c then
    invalid_arg "Tensor_f32.channel_norm_batch: gamma/beta arity mismatch";
  let out = create x.shape in
  norm_planes ~relu:false ~c ~plane gamma.data beta.data ~eps
    ~nplanes:(nb * c) x.data out.data;
  out

let relu_inplace (d : ba) n =
  for i = 0 to n - 1 do
    let v = Bigarray.Array1.unsafe_get d i in
    if v <= 0. then Bigarray.Array1.unsafe_set d i 0.
  done

let conv2d_batch ?pool ~stride ~pad ~weight ~bias ?norm ?(relu = false) x =
  if Array.length x.shape <> 4 || Array.length weight.shape <> 4 then
    invalid_arg "Tensor_f32.conv2d_batch: expected NCHW input and OIHW weight";
  let n = x.shape.(0)
  and in_c = x.shape.(1)
  and h = x.shape.(2)
  and w = x.shape.(3) in
  let out_c = weight.shape.(0)
  and win_c = weight.shape.(1)
  and kh = weight.shape.(2)
  and kw = weight.shape.(3) in
  if in_c <> win_c then
    invalid_arg "Tensor_f32.conv2d_batch: channel mismatch";
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor_f32.conv2d_batch: kernel larger than padded input";
  let kk = in_c * kh * kw and cols = oh * ow in
  let image = in_c * h * w in
  let t0 = Unix.gettimeofday () in
  let patches = scratch (kk * cols) in
  let out = create [| n; out_c; oh; ow |] in
  let od = out.data and bd = bias.data and wd = weight.data in
  let ostride = out_c * cols in
  for img = 0 to n - 1 do
    im2col_into ~stride ~pad ~kh ~kw ~in_c ~h ~w ~oh ~ow ~xoff:(img * image)
      x.data patches;
    let obase = img * ostride in
    (* Seed output rows with the bias so the GEMM accumulates on top —
       one store per element instead of a zero pass plus an add pass. *)
    for oc = 0 to out_c - 1 do
      let b = Bigarray.Array1.unsafe_get bd oc in
      fill_range od (obase + (oc * cols)) cols |> ignore;
      if b <> 0. then
        for i = obase + (oc * cols) to obase + (oc * cols) + cols - 1 do
          Bigarray.Array1.unsafe_set od i b
        done
    done;
    gemm_dispatch ?pool ~ooff:obase ~m:out_c ~k:kk ~n:cols wd patches od
  done;
  Telemetry.Counter.add stats.Tensor_sig.Stats.panels n;
  Telemetry.Counter.add stats.Tensor_sig.Stats.flops (2 * n * out_c * kk * cols);
  (* Fused epilogue: normalize and clamp in place on the cache-hot conv
     output — no intermediate tensors, one pass instead of three. *)
  (match norm with
  | Some (gamma, beta, eps) ->
      Telemetry.Counter.incr stats.Tensor_sig.Stats.fusion_hits;
      norm_planes ~relu ~c:out_c ~plane:cols gamma.data beta.data ~eps
        ~nplanes:(n * out_c) od od
  | None ->
      if relu then begin
        Telemetry.Counter.incr stats.Tensor_sig.Stats.fusion_hits;
        relu_inplace od (n * ostride)
      end);
  Telemetry.Histogram.observe stats.Tensor_sig.Stats.seconds
    (Unix.gettimeofday () -. t0);
  out

let dense_batch ~weight ~bias x =
  if Array.length x.shape <> 2 || Array.length weight.shape <> 2 then
    invalid_arg "Tensor_f32.dense_batch: expected rank-2 input and weight";
  let n = x.shape.(0) and k = x.shape.(1) in
  let out_dim = weight.shape.(0) in
  if weight.shape.(1) <> k || bias.shape.(0) <> out_dim then
    invalid_arg "Tensor_f32.dense_batch: dimension mismatch";
  let t0 = Unix.gettimeofday () in
  let out = create [| n; out_dim |] in
  let xd = x.data and wd = weight.data and bd = bias.data and od = out.data in
  for img = 0 to n - 1 do
    let xoff = img * k and ooff = img * out_dim in
    for j = 0 to out_dim - 1 do
      let woff = j * k in
      let acc = ref 0. in
      for p = 0 to k - 1 do
        acc :=
          !acc
          +. (Bigarray.Array1.unsafe_get wd (woff + p)
             *. Bigarray.Array1.unsafe_get xd (xoff + p))
      done;
      Bigarray.Array1.unsafe_set od (ooff + j)
        (!acc +. Bigarray.Array1.unsafe_get bd j)
    done
  done;
  Telemetry.Counter.add stats.Tensor_sig.Stats.flops (2 * n * out_dim * k);
  Telemetry.Histogram.observe stats.Tensor_sig.Stats.seconds
    (Unix.gettimeofday () -. t0);
  out

(* Pooling over NCHW: plane-by-plane scans (the plane of index [p]
   belongs to image [p / c]); windows are fully in-bounds by the
   [conv_out_dim] contract. *)

let pool_dims name ~stride ~size x =
  if Array.length x.shape <> 4 then
    invalid_arg ("Tensor_f32." ^ name ^ ": expected an NCHW tensor");
  let h = x.shape.(2) and w = x.shape.(3) in
  let oh = conv_out_dim h size stride 0 and ow = conv_out_dim w size stride 0 in
  if oh <= 0 || ow <= 0 then
    invalid_arg ("Tensor_f32." ^ name ^ ": window too large");
  (x.shape.(0), x.shape.(1), h, w, oh, ow)

let max_pool2d_batch ~stride ~size x =
  let n, c, h, w, oh, ow = pool_dims "max_pool2d_batch" ~stride ~size x in
  let out = create [| n; c; oh; ow |] in
  let xd = x.data and od = out.data in
  for p = 0 to (n * c) - 1 do
    let xbase = p * h * w and obase = p * oh * ow in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let best = ref neg_infinity in
        let base = xbase + ((oy * stride) * w) + (ox * stride) in
        for ky = 0 to size - 1 do
          let rowb = base + (ky * w) in
          for kx = 0 to size - 1 do
            let v = Bigarray.Array1.unsafe_get xd (rowb + kx) in
            if v > !best then best := v
          done
        done;
        Bigarray.Array1.unsafe_set od (obase + (oy * ow) + ox) !best
      done
    done
  done;
  out

let avg_pool2d_batch ~stride ~size x =
  let n, c, h, w, oh, ow = pool_dims "avg_pool2d_batch" ~stride ~size x in
  let out = create [| n; c; oh; ow |] in
  let inv = 1. /. float_of_int (size * size) in
  let xd = x.data and od = out.data in
  for p = 0 to (n * c) - 1 do
    let xbase = p * h * w and obase = p * oh * ow in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref 0. in
        let base = xbase + ((oy * stride) * w) + (ox * stride) in
        for ky = 0 to size - 1 do
          let rowb = base + (ky * w) in
          for kx = 0 to size - 1 do
            acc := !acc +. Bigarray.Array1.unsafe_get xd (rowb + kx)
          done
        done;
        Bigarray.Array1.unsafe_set od (obase + (oy * ow) + ox) (!acc *. inv)
      done
    done
  done;
  out

let global_avg_pool_batch x =
  if Array.length x.shape <> 4 then
    invalid_arg "Tensor_f32.global_avg_pool_batch: expected an NCHW tensor";
  let n = x.shape.(0) and c = x.shape.(1) in
  let plane = x.shape.(2) * x.shape.(3) in
  let inv = 1. /. float_of_int plane in
  let out = create [| n; c |] in
  let xd = x.data and od = out.data in
  for p = 0 to (n * c) - 1 do
    let off = p * plane in
    let acc = ref 0. in
    for i = 0 to plane - 1 do
      acc := !acc +. Bigarray.Array1.unsafe_get xd (off + i)
    done;
    Bigarray.Array1.unsafe_set od p (!acc *. inv)
  done;
  out

let concat_channels_batch ts =
  match ts with
  | [] -> invalid_arg "Tensor_f32.concat_channels_batch: empty list"
  | first :: _ ->
      List.iter
        (fun t ->
          if Array.length t.shape <> 4 then
            invalid_arg "Tensor_f32.concat_channels_batch: expected NCHW")
        ts;
      let n = first.shape.(0)
      and h = first.shape.(2)
      and w = first.shape.(3) in
      List.iter
        (fun t ->
          if t.shape.(0) <> n || t.shape.(2) <> h || t.shape.(3) <> w then
            invalid_arg "Tensor_f32.concat_channels_batch: shape mismatch")
        ts;
      let total_c = List.fold_left (fun acc t -> acc + t.shape.(1)) 0 ts in
      let plane = h * w in
      let out = create [| n; total_c; h; w |] in
      for img = 0 to n - 1 do
        let base = img * total_c * plane in
        let off = ref 0 in
        List.iter
          (fun t ->
            let len = t.shape.(1) * plane in
            Bigarray.Array1.blit
              (Bigarray.Array1.sub t.data (img * len) len)
              (Bigarray.Array1.sub out.data (base + !off) len);
            off := !off + len)
          ts
      done;
      out

let softmax_rows l =
  if Array.length l.shape <> 2 then
    invalid_arg "Tensor_f32.softmax_rows: expected an (n, classes) matrix";
  let n = l.shape.(0) and classes = l.shape.(1) in
  let out = create [| n; classes |] in
  let ld = l.data and od = out.data in
  for img = 0 to n - 1 do
    let off = img * classes in
    let m = ref (Bigarray.Array1.unsafe_get ld off) in
    for j = 1 to classes - 1 do
      let v = Bigarray.Array1.unsafe_get ld (off + j) in
      if v > !m then m := v
    done;
    let z = ref 0. in
    for j = 0 to classes - 1 do
      let e = exp (Bigarray.Array1.unsafe_get ld (off + j) -. !m) in
      Bigarray.Array1.unsafe_set od (off + j) e;
      z := !z +. e
    done;
    let inv = 1. /. !z in
    for j = 0 to classes - 1 do
      Bigarray.Array1.unsafe_set od (off + j)
        (inv *. Bigarray.Array1.unsafe_get od (off + j))
    done
  done;
  out

(** The reference tensor backend: float64 [Tensor.t] activations
    delegating to the layer engine's own kernels, so compiled plans are
    bit-identical to [Nn.Network.scores_batch].  [fuse] is off — every
    step runs the exact kernel sequence the layer engine runs. *)

include Tensor_sig.S with type t = Tensor.t

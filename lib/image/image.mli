(** Image input/output and composition for CHW tensors in [0, 1].

    Used by the examples and the CLI to dump adversarial examples as
    binary PPM (P6) files — the one raster format writable without any
    dependency — and to build side-by-side before/after panels. *)

exception Format_error of string

val to_ppm : Tensor.t -> string
(** Binary P6 encoding.  Values are clamped to [0, 1] and quantized to
    8 bits.  Raises [Invalid_argument] unless the tensor is CHW with 3
    channels. *)

val of_ppm : string -> Tensor.t
(** Parse a binary P6 string (maxval 255) back to a CHW tensor.  Raises
    {!Format_error} on malformed input. *)

val write_ppm : string -> Tensor.t -> unit
(** [write_ppm path img]. *)

val read_ppm : string -> Tensor.t

val upscale : factor:int -> Tensor.t -> Tensor.t
(** Nearest-neighbour upscaling (tiny attack images are illegible at
    native resolution).  Raises [Invalid_argument] if [factor < 1]. *)

val side_by_side : ?gap:int -> ?gap_value:float -> Tensor.t list -> Tensor.t
(** Horizontal panel of equal-height images separated by [gap] columns
    (default 2) of [gap_value] gray (default 1.0). *)

val highlight_diff : ?color:float * float * float -> Tensor.t -> Tensor.t -> Tensor.t
(** [highlight_diff original modified] returns a copy of [modified] with
    a one-pixel ring drawn (in [color], default pure red) around every
    pixel whose value differs — makes one-pixel perturbations visible.
    Raises [Tensor.Shape_mismatch] if shapes differ. *)

exception Format_error of string

let check_chw name t =
  if Tensor.ndim t <> 3 || Tensor.dim t 0 <> 3 then
    invalid_arg ("Image." ^ name ^ ": expected a 3xHxW tensor")

let clamp01 v = if v < 0. then 0. else if v > 1. then 1. else v

let to_ppm img =
  check_chw "to_ppm" img;
  let h = Tensor.dim img 1 and w = Tensor.dim img 2 in
  let buf = Buffer.create ((3 * h * w) + 32) in
  Buffer.add_string buf (Printf.sprintf "P6\n%d %d\n255\n" w h);
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      for ch = 0 to 2 do
        let v = clamp01 (Tensor.get img [| ch; y; x |]) in
        Buffer.add_char buf (Char.chr (int_of_float ((v *. 255.) +. 0.5)))
      done
    done
  done;
  Buffer.contents buf

let of_ppm data =
  (* Parse the three header fields (magic, dimensions, maxval), skipping
     whitespace and '#' comments, then read the raw pixel block. *)
  let n = String.length data in
  let pos = ref 0 in
  let skip_space () =
    let continue = ref true in
    while !continue && !pos < n do
      match data.[!pos] with
      | ' ' | '\t' | '\n' | '\r' -> incr pos
      | '#' ->
          while !pos < n && data.[!pos] <> '\n' do
            incr pos
          done
      | _ -> continue := false
    done
  in
  let token () =
    skip_space ();
    let start = !pos in
    while
      !pos < n
      && not (List.mem data.[!pos] [ ' '; '\t'; '\n'; '\r' ])
    do
      incr pos
    done;
    if start = !pos then raise (Format_error "unexpected end of header");
    String.sub data start (!pos - start)
  in
  let magic = token () in
  if magic <> "P6" then raise (Format_error ("bad magic " ^ magic));
  let int_token what =
    let t = token () in
    match int_of_string_opt t with
    | Some v when v > 0 -> v
    | Some _ | None -> raise (Format_error ("bad " ^ what ^ ": " ^ t))
  in
  let w = int_token "width" in
  let h = int_token "height" in
  let maxval = int_token "maxval" in
  if maxval <> 255 then raise (Format_error "only maxval 255 is supported");
  (* Exactly one whitespace byte separates the header from the pixels. *)
  if !pos >= n then raise (Format_error "missing pixel data");
  incr pos;
  if n - !pos < 3 * w * h then raise (Format_error "truncated pixel data");
  let img = Tensor.zeros [| 3; h; w |] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      for ch = 0 to 2 do
        let byte = Char.code data.[!pos + (((y * w) + x) * 3) + ch] in
        Tensor.set img [| ch; y; x |] (float_of_int byte /. 255.)
      done
    done
  done;
  img

let write_ppm path img =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_ppm img))

let read_ppm path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_ppm (In_channel.input_all ic))

let upscale ~factor img =
  check_chw "upscale" img;
  if factor < 1 then invalid_arg "Image.upscale: factor < 1";
  let h = Tensor.dim img 1 and w = Tensor.dim img 2 in
  Tensor.init [| 3; h * factor; w * factor |] (fun i ->
      let per_ch = h * factor * w * factor in
      let ch = i / per_ch in
      let rest = i mod per_ch in
      let y = rest / (w * factor) / factor
      and x = rest mod (w * factor) / factor in
      Tensor.get img [| ch; y; x |])

let side_by_side ?(gap = 2) ?(gap_value = 1.0) imgs =
  if imgs = [] then invalid_arg "Image.side_by_side: no images";
  List.iter (check_chw "side_by_side") imgs;
  let h = Tensor.dim (List.hd imgs) 1 in
  List.iter
    (fun img ->
      if Tensor.dim img 1 <> h then
        invalid_arg "Image.side_by_side: heights differ")
    imgs;
  let total_w =
    List.fold_left (fun acc img -> acc + Tensor.dim img 2) 0 imgs
    + (gap * (List.length imgs - 1))
  in
  let out = Tensor.create [| 3; h; total_w |] gap_value in
  let x_off = ref 0 in
  List.iter
    (fun img ->
      let w = Tensor.dim img 2 in
      for ch = 0 to 2 do
        for y = 0 to h - 1 do
          for x = 0 to w - 1 do
            Tensor.set out [| ch; y; !x_off + x |] (Tensor.get img [| ch; y; x |])
          done
        done
      done;
      x_off := !x_off + w + gap)
    imgs;
  out

let highlight_diff ?(color = (1., 0., 0.)) original modified =
  check_chw "highlight_diff" original;
  if Tensor.shape original <> Tensor.shape modified then
    raise
      (Tensor.Shape_mismatch "Image.highlight_diff: images differ in shape");
  let h = Tensor.dim original 1 and w = Tensor.dim original 2 in
  let out = Tensor.copy modified in
  let cr, cg, cb = color in
  let differs y x =
    Tensor.get original [| 0; y; x |] <> Tensor.get modified [| 0; y; x |]
    || Tensor.get original [| 1; y; x |] <> Tensor.get modified [| 1; y; x |]
    || Tensor.get original [| 2; y; x |] <> Tensor.get modified [| 2; y; x |]
  in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if differs y x then
        (* Paint the ring of neighbours, leaving the pixel itself as the
           adversarial value. *)
        for dy = -1 to 1 do
          for dx = -1 to 1 do
            let ny = y + dy and nx = x + dx in
            if
              (dy <> 0 || dx <> 0)
              && ny >= 0 && ny < h && nx >= 0 && nx < w
              && not (differs ny nx)
            then begin
              Tensor.set out [| 0; ny; nx |] cr;
              Tensor.set out [| 1; ny; nx |] cg;
              Tensor.set out [| 2; ny; nx |] cb
            end
          done
        done
    done
  done;
  out

(** Concrete syntax for adversarial programs.

    Programs print and parse in a small textual format so they can be
    saved, inspected and re-loaded (e.g. the transferability experiment
    runs programs synthesized in an earlier session):

    {v
    B1: score_diff < 0.21; B2: max(orig) > 0.19;
    B3: score_diff > 0.25; B4: center < 8
    v}

    Grammar (labels are optional; conditions are separated by [;] or
    newlines):

    {v
    program   ::= labeled labeled labeled labeled
    labeled   ::= ("B" digit ":")? condition
    condition ::= "true" | "false" | func ("<" | ">") number
    func      ::= ("max" | "min" | "avg") "(" ("orig" | "pert") ")"
                | "score_diff" | "center"
    v}

    The parser is a hand-rolled lexer + recursive descent with
    position-carrying errors. *)

type error = { position : int; message : string }
(** [position] is a 0-based character offset into the input. *)

val describe_error : string -> error -> string
(** Human-readable error with a caret line pointing into the source. *)

val parse_program : string -> (Condition.program, error) result

val parse_program_exn : string -> Condition.program
(** Raises [Invalid_argument] with the output of {!describe_error}. *)

val parse_condition : string -> (Condition.t, error) result
(** Parse a single condition (no label). *)

val print_program : Condition.program -> string
(** Round-trips: [parse_program (print_program p)] yields a program equal
    to [p]. *)

let func_label : Condition.t -> string = function
  | Condition.Const _ -> "const"
  | Condition.Cmp { func; _ } -> (
      match func with
      | Max Orig -> "max(orig)"
      | Max Pert -> "max(pert)"
      | Min Orig -> "min(orig)"
      | Min Pert -> "min(pert)"
      | Avg Orig -> "avg(orig)"
      | Avg Pert -> "avg(pert)"
      | Score_diff -> "score_diff"
      | Center -> "center")

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, va) (kb, vb) ->
         match compare vb va with 0 -> compare ka kb | c -> c)

let count_into tbl cond =
  let label = func_label cond in
  Hashtbl.replace tbl label (1 + Option.value ~default:0 (Hashtbl.find_opt tbl label))

let func_histogram programs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p -> Array.iter (count_into tbl) (Condition.program_to_array p))
    programs;
  sorted_counts tbl

let slot_histogram programs =
  Array.init 4 (fun slot ->
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun p -> count_into tbl (Condition.program_to_array p).(slot))
        programs;
      sorted_counts tbl)

let describe_portfolio programs =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf "class %d: %s\n" i (Condition.program_to_string p)))
    programs;
  Buffer.add_string buf "function usage:";
  List.iter
    (fun (label, count) ->
      Buffer.add_string buf (Printf.sprintf " %s x%d" label count))
    (func_histogram (Array.to_list programs));
  Buffer.contents buf

type step = { index : int; pair : Pair.t; true_class_score : float }

let traced_attack ?max_queries ?goal oracle program ~image ~true_class =
  let steps = ref [] in
  let on_query index pair scores =
    steps :=
      { index; pair; true_class_score = Tensor.get_flat scores true_class }
      :: !steps
  in
  let result =
    Sketch.attack ?max_queries ?goal ~on_query oracle program ~image
      ~true_class
  in
  (result, List.rev !steps)

let center_distance_profile ~d1 ~d2 steps =
  Array.of_list
    (List.map
       (fun s -> Location.center_distance ~d1 ~d2 s.pair.Pair.loc)
       steps)

let unique_locations steps =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace tbl (s.pair.Pair.loc.Location.row, s.pair.Pair.loc.Location.col) ())
    steps;
  Hashtbl.length tbl

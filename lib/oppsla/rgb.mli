(** RGB pixel values and the corner perturbation space.

    Following Sparse-RS (Croce et al. 2022), the paper restricts
    perturbations to the eight corners of the RGB color cube: every
    channel is 0 or 1.  Pixel distance is the L1 metric of Section 3.1. *)

type t = { r : float; g : float; b : float }

val corners : t array
(** The eight cube corners.  Index [k] has bit 2 = red, bit 1 = green,
    bit 0 = blue (so corner 0 is black, corner 7 is white).  The array is
    the canonical corner numbering used by pair ids everywhere. *)

val corner : int -> t
(** [corner k] for [k] in [0, 8).  Raises [Invalid_argument] otherwise. *)

val corner_index : t -> int option
(** Inverse of {!corner} for exact corner values. *)

val l1_distance : t -> t -> float
(** [|r1-r2| + |g1-g2| + |b1-b2|] — the paper's pixel distance. *)

val of_image : Tensor.t -> row:int -> col:int -> t
(** Read the pixel at (row, col) of a CHW image. *)

val write_to_image : Tensor.t -> row:int -> col:int -> t -> unit
(** Overwrite the pixel at (row, col) of a CHW image in place. *)

val corners_by_distance : t -> int array
(** Corner indices sorted by L1 distance from the given pixel, farthest
    first; ties broken by corner index so the order is deterministic.
    [corners_by_distance p].(0) is the paper's "farthest pixel",
    [.(1)] the "second farthest", and so on. *)

val max_val : t -> float
val min_val : t -> float
val avg_val : t -> float
(** Channel max / min / mean — the DSL's [max(p)], [min(p)], [avg(p)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

(** Random generation and mutation of well-typed programs.

    A program is represented by its abstract syntax tree (Figure 2): a
    root with four condition children, each condition owning a function
    node and a constant node.  Mutation follows Section 4: pick a node
    uniformly at random among the 13 (1 root + 4 conditions + 4 functions
    + 4 constants) and regenerate its entire subtree from the grammar, so
    the result is always well-typed.

    Thresholds are drawn from each function's natural range: [[0, 1]] for
    pixel functions, [[-1, 1]] for [score_diff], and [[0, max(d1,d2)/2]]
    for [center]. *)

type config = { d1 : int; d2 : int }
(** Image dimensions; they bound the [center] threshold range. *)

val config_for_image : Tensor.t -> config
(** Read [d1]/[d2] off a CHW image tensor. *)

val random_func : Prng.t -> Condition.func
val random_threshold : config -> Prng.t -> Condition.func -> float
val random_condition : config -> Prng.t -> Condition.t
val random_program : config -> Prng.t -> Condition.program

(** {1 Perturbation-space samplers}

    Canonical uniform samplers over the {!Space} candidate sets, with a
    fixed draw order (location row-then-col, then corner) so every
    consumer of a named PRNG stream advances it identically. *)

val random_loc : config -> Prng.t -> Location.t

val random_loc_excluding :
  config -> Prng.t -> excluded:Location.t list -> Location.t
(** Rejection-samples until the location is outside [excluded]. *)

val random_pair : config -> Prng.t -> Pair.t
(** A uniform one-pixel candidate: location, then one of the 8 corners. *)

val random_pixel_set : config -> Prng.t -> k:int -> Pair.t list
(** [k] pairs with distinct locations (corners drawn independently).
    Raises [Invalid_argument] when [k] is outside [[1, d1 * d2]]. *)

val random_patch : config -> Prng.t -> h:int -> w:int -> Location.t * int
(** A uniform in-bounds patch candidate: anchor (row, then col, over the
    valid anchor grid), then the fill corner.  Raises
    [Invalid_argument] when the patch does not fit. *)

val mutate : config -> Prng.t -> Condition.program -> Condition.program
(** One uniform node mutation.  Mutating a function node keeps the
    condition's comparison and threshold; mutating a constant node
    resamples the threshold from the function's range; mutating a
    condition or the root regenerates the whole subtree.  A [Const]
    baseline condition has no function/constant children, so selecting
    either slot regenerates the whole condition.

    Equivalent to drawing [slot] uniformly from [0, 12] and calling
    {!mutate_slot} — the RNG draw order is identical, so callers that
    need the chosen slot (e.g. to label the proposal kind in telemetry)
    can perform the draw themselves without perturbing the stream. *)

val mutate_slot :
  config -> Prng.t -> Condition.program -> slot:int -> Condition.program
(** {!mutate} with the node choice made by the caller.  [slot] must lie
    in [0, 12] (see the addressing comment on {!mutate}); raises
    [Invalid_argument] otherwise. *)

val slot_kind : int -> string
(** The node class a mutation slot addresses: ["root"], ["condition"],
    ["function"] or ["constant"].  Raises [Invalid_argument] outside
    [0, 12]. *)

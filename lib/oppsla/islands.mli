(** Island-model distributed synthesis (ROADMAP item 3).

    Runs [K] Metropolis-Hastings chains ({!Synthesizer}-style, Algorithm
    2) in lockstep rounds at a ladder of temperatures
    [beta_k = beta * temperature_ratio^k] — island 0 is the coldest
    (most selective), hotter islands explore — and migrates elite
    programs around a ring on a fixed schedule: every
    [migration_period] rounds, island [k] adopts island [(k+1) mod K]'s
    best program as its chain position iff it beats its incumbent.
    Migration is a deterministic comparison; it draws no randomness.

    {b Determinism contract.}  Island [k] draws only from the named
    streams ["islands/<k>"] (chain) and ["islands/<k>/early-stop"]
    (PAC visiting permutations) of the caller's generator root, so for a
    fixed seed and (K, migration-period, early-stop) configuration the
    elite trace and every query count replay bit-identically: across
    domain-pool widths (the pool only fans one evaluation's per-image
    attacks, merged in image order), with or without a shared score
    cache, at any speculative batch width, and across kill/resume.

    {b Checkpointing.}  With [checkpoint = Some file], the complete
    synthesis state — both PRNG streams, chain position, best program,
    counters and the trace so far, for every island — is written every
    [checkpoint_every] rounds (and at the final round) to a versioned,
    self-describing, FNV-1a-checksummed text file, atomically
    (tmp+rename).  [synthesize ~resume:true] restores it and replays the
    remaining rounds to exactly the trace an uninterrupted run produces.
    Corrupted, truncated or version-mismatched files, and checkpoints
    written under a different seed or configuration, raise
    {!Checkpoint_error} with a descriptive message.  Checkpoints are
    only written at round boundaries, never with partial-round state. *)

exception Checkpoint_error of string

type entry = {
  round : int;  (** 0 is the island's seed program *)
  island : int;
  program : Condition.program;
  avg_queries : float;
      (** training average; for pruned proposals, the early-stop lower
          bound that killed the candidate *)
  accepted : bool;
  pruned : bool;
  queries_total : int;
      (** cumulative synthesis queries across {e all} islands when this
          entry was recorded *)
}

type island_report = {
  island : int;
  beta : float;  (** this island's effective temperature *)
  final : Condition.program;  (** chain position after the last round *)
  final_avg_queries : float;
  best : Condition.program;
  best_avg_queries : float;
  proposals : int;
  accepted : int;
  pruned : int;
  migrations_in : int;  (** times it adopted a neighbour's elite *)
  queries : int;  (** queries spent by this island's evaluations *)
}

type outcome = {
  best : Condition.program;  (** best program across all islands *)
  best_avg_queries : float;
  islands : island_report array;  (** indexed by island *)
  trace : entry list;
      (** chronological; within a round, islands in index order *)
  synth_queries : int;
  rounds_completed : int;
  migrations : int;  (** elite adoptions that actually happened *)
  resumed_at : int option;
      (** the checkpoint's round, when this run was resumed *)
}

type config = {
  islands : int;  (** K; default 4 *)
  beta : float;  (** island 0's temperature; default 0.02 *)
  temperature_ratio : float;
      (** [beta_k = beta * ratio^k]; default 0.5 — each hotter island
          halves the selectivity *)
  rounds : int;  (** MH iterations per chain; default 210 *)
  migration_period : int;
      (** rounds between ring migrations; [<= 0] disables; default 10 *)
  goal : Sketch.goal;
  max_queries_per_image : int option;
  max_synth_queries : int option;
      (** stop (mid-round, without checkpointing partial state) once the
          cross-island query total reaches this *)
  batch : int;  (** speculative batch width for every attack *)
  early_stop : Score.pac option;
      (** PAC candidate pruning per island, against that island's own
          incumbent average; same contract as
          {!Synthesizer.config.early_stop} *)
  checkpoint : string option;  (** checkpoint file path *)
  checkpoint_every : int;  (** rounds between writes; default 10 *)
  on_round : int -> unit;
      (** called after each completed round (post-migration, after the
          checkpoint write, with the 1-based round index) *)
}

val default_config : config

val synthesize :
  ?config:config ->
  ?pool:Domain_pool.Pool.t ->
  ?caches:Score_cache.store ->
  ?resume:bool ->
  Prng.t ->
  Oracle.t ->
  training:(Tensor.t * int) array ->
  outcome
(** [synthesize g oracle ~training] runs the island model.  [g] is never
    drawn from directly — only its root identity is used to derive the
    per-island streams — so the caller's generator position does not
    affect the run.

    Islands are stepped sequentially within a round; [pool] parallelizes
    each evaluation's per-image attacks (bit-identical at any width, see
    {!Score.evaluate_parallel}).  [caches] is one shared per-image score
    cache store for the whole archipelago: islands evaluate one at a
    time, so each image's slot is only ever touched by one attack at any
    instant, and cross-island cache hits are free wall-clock wins.

    [resume:true] (default false) restores [config.checkpoint] and
    continues; raises {!Checkpoint_error} if the file is missing,
    damaged, from another format version, or from a run with a different
    seed/configuration, and [Invalid_argument] if [config.checkpoint] is
    [None]. *)

(** {2 Checkpoint inspection} *)

type info = {
  info_islands : int;
  info_training : int;
  info_rounds_done : int;
  info_synth_queries : int;
  info_trace_length : int;
}

val checkpoint_info : string -> info
(** Parse and fully verify (version, checksum, structure) a checkpoint
    file without resuming it.  Raises {!Checkpoint_error} as
    {!synthesize} does. *)

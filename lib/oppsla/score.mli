(** The synthesizer's score function (Section 4).

    [S(P) = exp (-beta * avgQ(P))] where [avgQ(P)] averages the number of
    queries [P] spends on the training inputs for which it finds an
    adversarial example; inputs with no successful example are ignored
    (their query count is program-independent). *)

type evaluation = {
  avg_queries : float;
      (** mean queries over successful inputs; [no_success_penalty] when
          no input succeeded *)
  successes : int;
  attempts : int;
  total_queries : int;  (** all queries posed, successful or not *)
}

val no_success_penalty : float
(** Stand-in average when a program succeeds on no training input (never
    happens once the training set contains at least one attackable image,
    because success is program-independent). *)

val evaluate :
  ?max_queries:int ->
  ?goal:Sketch.goal ->
  Oracle.t ->
  Condition.program ->
  (Tensor.t * int) array ->
  evaluation
(** Run the program on every (image, true class) pair.  [max_queries]
    bounds each individual attack (default: the full perturbation
    space); [goal] defaults to untargeted. *)

val score : beta:float -> float -> float
(** [score ~beta avg_queries = exp (-. beta *. avg_queries)]. *)

val acceptance_ratio : beta:float -> current:float -> proposal:float -> float
(** [S(P') / S(P) = exp (beta * (current - proposal))] — the
    Metropolis-Hastings acceptance ratio expressed directly on average
    query counts, immune to underflow of the individual scores. *)

(** The synthesizer's score function (Section 4).

    [S(P) = exp (-beta * avgQ(P))] where [avgQ(P)] averages the number of
    queries [P] spends on the training inputs for which it finds an
    adversarial example; inputs with no successful example are ignored
    (their query count is program-independent). *)

type image_eval = {
  queries : int;  (** oracle queries this image's attack posed *)
  success : bool;
}

type evaluation = {
  avg_queries : float;
      (** mean queries over successful inputs; [no_success_penalty] when
          no input succeeded *)
  successes : int;
  attempts : int;
  total_queries : int;  (** all queries posed, successful or not *)
  per_image : image_eval array;
      (** one entry per training input, in input order — the ground truth
          the differential test suite compares across evaluators *)
}

val no_success_penalty : float
(** Stand-in average when a program succeeds on no training input (never
    happens once the training set contains at least one attackable image,
    because success is program-independent). *)

val of_results : Sketch.result array -> evaluation
(** Merge per-image attack results (in input order) into an evaluation.
    Shared by the sequential and parallel evaluators so both aggregate
    with the identical integer sums and float division. *)

val evaluate :
  ?max_queries:int ->
  ?goal:Sketch.goal ->
  ?caches:Score_cache.store ->
  ?batch:int ->
  Oracle.t ->
  Condition.program ->
  (Tensor.t * int) array ->
  evaluation
(** Run the program on every (image, true class) pair, sequentially,
    against the one given oracle.  [max_queries] bounds each individual
    attack (default: the full perturbation space); [goal] defaults to
    untargeted.

    [caches] memoizes perturbation scores per image: slot [i] of the
    store backs sample [i], and the same store handed to every call over
    the same samples (as the synthesizer does across MH proposals) makes
    repeated evaluation cost one forward pass per distinct perturbation
    instead of one per query.  Metering stays above the cache, so the
    returned evaluation is bit-identical with and without [caches].
    Raises [Invalid_argument] if the store size differs from the sample
    count, or if [oracle] carries an {e attached} per-image cache (which
    cannot be correct for a multi-image batch).

    [batch] (default {!Sketch.default_batch}) is the speculative chunk
    width forwarded to every per-image {!Sketch.attack}; the evaluation
    is bit-identical at every width (see {!Batcher}). *)

val evaluate_parallel :
  ?max_queries:int ->
  ?goal:Sketch.goal ->
  ?caches:Score_cache.store ->
  ?batch:int ->
  pool:Domain_pool.Pool.t ->
  Oracle.t ->
  Condition.program ->
  (Tensor.t * int) array ->
  evaluation
(** [evaluate] fanned out over a domain pool.  Each image is attacked
    against its own {!Oracle.clone} of [oracle], so query metering is
    race-free, and results are merged in image order — the paper's cost
    model is oracle queries, so this is {e bit-identical} to {!evaluate}
    (same [avg_queries], [per_image], flags) whenever the oracle is
    unbudgeted, for any pool size.  (With an oracle-level budget the
    sequential evaluator shares one budget across images while clones
    meter independently; synthesis uses unbudgeted oracles and caps per
    image via [max_queries].)

    [caches] follows the same per-image contract as {!evaluate}, and is
    safe under parallelism by ownership rather than locking: clones drop
    any attached cache ({!Oracle.clone}), each image's slot is re-attached
    explicitly to that image's clone, and at any instant an image — hence
    its cache — is held by exactly one domain; the pool's map barrier
    orders hand-offs between evaluations.  [batch] is forwarded to each
    image's attack exactly as in {!evaluate}. *)

(** {2 PAC early stopping}

    Statistical candidate pruning for the synthesizer (ROADMAP item 3,
    motivated by Bastani-style statistical sketching): a candidate is
    evaluated on a caller-permuted prefix of the training set, and
    abandoned once a lower bound on its final average query count
    provably (or with probability [1 - delta]) exceeds a threshold —
    typically the incumbent program's average.  Bad candidates die after
    [min_images] images instead of the full set. *)

type pac = {
  delta : float;
      (** Hoeffding confidence parameter: the statistical part of the
          bound wrongly prunes a candidate with probability at most
          [delta] per check; default 0.05 *)
  min_images : int;
      (** never prune before this many images were evaluated; default 10 *)
  stage : int;
      (** evaluate this many images between bound checks; default 10 *)
  range : float option;
      (** assumed per-image query range for the Hoeffding bound; [None]
          uses [max_queries] (the per-attack cap), which is the widest
          sound choice.  A tighter, workload-informed range prunes
          earlier at the same [delta]. *)
}

val default_pac : pac

type pruned_stats = {
  lower_bound : float;
      (** the bound that fired: a certified optimistic-completion bound
          or the Hoeffding lower confidence bound, whichever is larger *)
  images_seen : int;  (** images evaluated before pruning *)
  queries_spent : int;  (** oracle queries those images cost *)
}

type staged = Complete of evaluation | Pruned of pruned_stats

val evaluate_pac :
  ?max_queries:int ->
  ?goal:Sketch.goal ->
  ?caches:Score_cache.store ->
  ?batch:int ->
  ?pool:Domain_pool.Pool.t ->
  pac:pac ->
  threshold:float ->
  order:int array ->
  Oracle.t ->
  Condition.program ->
  (Tensor.t * int) array ->
  staged
(** [evaluate_pac ~pac ~threshold ~order oracle program samples] evaluates
    [samples] in the order given by the permutation [order] (the caller
    draws it from a dedicated PRNG stream so replay is deterministic), in
    stages of [pac.stage] images; after each stage with at least
    [pac.min_images] images done, it prunes iff the combined lower bound
    exceeds [threshold].

    [Complete e] is {e bit-identical} to {!evaluate} (and, given [pool],
    to {!evaluate_parallel}) on the same arguments: every image is
    evaluated exactly once, per-image results are merged in input order,
    and with an unbudgeted oracle the visiting order cannot affect any
    per-image result.  [Pruned] reports the bound and the partial spend;
    the caller treats the candidate as rejected.

    Raises [Invalid_argument] if [order] is not a permutation of the
    sample indices, if [pac.stage <= 0], or if neither [pac.range] nor
    [max_queries] is given (the Hoeffding bound needs a range). *)

val score : beta:float -> float -> float
(** [score ~beta avg_queries = exp (-. beta *. avg_queries)]. *)

val acceptance_ratio : beta:float -> current:float -> proposal:float -> float
(** [S(P') / S(P) = exp (beta * (current - proposal))] — the
    Metropolis-Hastings acceptance ratio expressed directly on average
    query counts, immune to underflow of the individual scores. *)

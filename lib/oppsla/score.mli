(** The synthesizer's score function (Section 4).

    [S(P) = exp (-beta * avgQ(P))] where [avgQ(P)] averages the number of
    queries [P] spends on the training inputs for which it finds an
    adversarial example; inputs with no successful example are ignored
    (their query count is program-independent). *)

type image_eval = {
  queries : int;  (** oracle queries this image's attack posed *)
  success : bool;
}

type evaluation = {
  avg_queries : float;
      (** mean queries over successful inputs; [no_success_penalty] when
          no input succeeded *)
  successes : int;
  attempts : int;
  total_queries : int;  (** all queries posed, successful or not *)
  per_image : image_eval array;
      (** one entry per training input, in input order — the ground truth
          the differential test suite compares across evaluators *)
}

val no_success_penalty : float
(** Stand-in average when a program succeeds on no training input (never
    happens once the training set contains at least one attackable image,
    because success is program-independent). *)

val of_results : Sketch.result array -> evaluation
(** Merge per-image attack results (in input order) into an evaluation.
    Shared by the sequential and parallel evaluators so both aggregate
    with the identical integer sums and float division. *)

val evaluate :
  ?max_queries:int ->
  ?goal:Sketch.goal ->
  ?caches:Score_cache.store ->
  ?batch:int ->
  Oracle.t ->
  Condition.program ->
  (Tensor.t * int) array ->
  evaluation
(** Run the program on every (image, true class) pair, sequentially,
    against the one given oracle.  [max_queries] bounds each individual
    attack (default: the full perturbation space); [goal] defaults to
    untargeted.

    [caches] memoizes perturbation scores per image: slot [i] of the
    store backs sample [i], and the same store handed to every call over
    the same samples (as the synthesizer does across MH proposals) makes
    repeated evaluation cost one forward pass per distinct perturbation
    instead of one per query.  Metering stays above the cache, so the
    returned evaluation is bit-identical with and without [caches].
    Raises [Invalid_argument] if the store size differs from the sample
    count, or if [oracle] carries an {e attached} per-image cache (which
    cannot be correct for a multi-image batch).

    [batch] (default {!Sketch.default_batch}) is the speculative chunk
    width forwarded to every per-image {!Sketch.attack}; the evaluation
    is bit-identical at every width (see {!Batcher}). *)

val evaluate_parallel :
  ?max_queries:int ->
  ?goal:Sketch.goal ->
  ?caches:Score_cache.store ->
  ?batch:int ->
  pool:Domain_pool.Pool.t ->
  Oracle.t ->
  Condition.program ->
  (Tensor.t * int) array ->
  evaluation
(** [evaluate] fanned out over a domain pool.  Each image is attacked
    against its own {!Oracle.clone} of [oracle], so query metering is
    race-free, and results are merged in image order — the paper's cost
    model is oracle queries, so this is {e bit-identical} to {!evaluate}
    (same [avg_queries], [per_image], flags) whenever the oracle is
    unbudgeted, for any pool size.  (With an oracle-level budget the
    sequential evaluator shares one budget across images while clones
    meter independently; synthesis uses unbudgeted oracles and caps per
    image via [max_queries].)

    [caches] follows the same per-image contract as {!evaluate}, and is
    safe under parallelism by ownership rather than locking: clones drop
    any attached cache ({!Oracle.clone}), each image's slot is re-attached
    explicitly to that image's clone, and at any instant an image — hence
    its cache — is held by exactly one domain; the pool's map barrier
    orders hand-offs between evaluations.  [batch] is forwarded to each
    image's attack exactly as in {!evaluate}. *)

val score : beta:float -> float -> float
(** [score ~beta avg_queries = exp (-. beta *. avg_queries)]. *)

val acceptance_ratio : beta:float -> current:float -> proposal:float -> float
(** [S(P') / S(P) = exp (beta * (current - proposal))] — the
    Metropolis-Hastings acceptance ratio expressed directly on average
    query counts, immune to underflow of the individual scores. *)

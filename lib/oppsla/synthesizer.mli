(** OPPSLA: the Metropolis-Hastings program synthesizer (Algorithm 2).

    Starting from a random instantiation of the sketch, each iteration
    mutates the current program's AST ({!Gen.mutate}), evaluates the
    proposal's average query count on the training set, and accepts it
    with probability [min 1 (S(P') / S(P))].  The chain position after the
    last iteration is returned, together with the best program seen and a
    full trace (used by the Figure 4 experiment, which plots the quality
    of intermediate accepted programs against cumulative synthesis
    queries). *)

type iteration = {
  index : int;  (** 0 is the initial random program *)
  program : Condition.program;
  avg_queries : float;
      (** training-set average of the proposal; for a pruned proposal,
          the early-stop lower bound that killed it *)
  accepted : bool;
  pruned : bool;
      (** the proposal was abandoned by PAC early stopping before the
          full training set was evaluated (implies [not accepted]) *)
  synth_queries_total : int;
      (** cumulative oracle queries spent by the synthesis so far *)
}

type outcome = {
  final : Condition.program;  (** the chain position — Algorithm 2's output *)
  final_avg_queries : float;
  best : Condition.program;  (** lowest training average seen *)
  best_avg_queries : float;
  trace : iteration list;  (** chronological *)
  synth_queries : int;
}

type config = {
  beta : float;  (** score temperature; default 0.02 *)
  max_iters : int;  (** MH iterations; default 210, as in Appendix C *)
  goal : Sketch.goal;
      (** attack goal the programs are optimized for; default untargeted *)
  max_queries_per_image : int option;
      (** per-attack cap during evaluation; [None] = full space *)
  max_synth_queries : int option;
      (** stop early once this many synthesis queries were spent *)
  batch : int;
      (** speculative candidate batch width forwarded to every attack
          during evaluation; default {!Sketch.default_batch}.  Traces and
          query accounting are bit-identical at every width (see
          {!Batcher}); only wall-clock changes.  Ignored when [evaluator]
          is set (a custom evaluator owns its own batching). *)
  on_iteration : iteration -> unit;  (** progress hook *)
  evaluator :
    (Condition.program -> (Tensor.t * int) array -> Score.evaluation) option;
      (** custom program evaluator (e.g. a parallel one); when [None], a
          sequential {!Score.evaluate} against the given oracle is used.
          Synthesis query accounting always comes from the returned
          evaluations' [total_queries]. *)
  early_stop : Score.pac option;
      (** when set (and [evaluator] is [None]), proposals are scored with
          {!Score.evaluate_pac}: each candidate is evaluated in a
          per-iteration permuted order drawn from a dedicated
          [named_stream] of the chain seed, and abandoned once its
          early-stop lower bound exceeds the incumbent's average.  Pruned
          proposals are rejected without an acceptance draw, so the chain
          stream [g] sees one fewer draw on those iterations — early
          stopping trades exact MH semantics for queries, which is why
          [None] (the default, and the [--no-early-stop] CLI hatch)
          restores bit-exact scoring.  Given the same seed, early-stopped
          synthesis is itself fully deterministic. *)
}

val default_config : config

val synthesize :
  ?config:config ->
  ?pool:Domain_pool.Pool.t ->
  ?caches:Score_cache.store ->
  Prng.t ->
  Oracle.t ->
  training:(Tensor.t * int) array ->
  outcome
(** [synthesize g oracle ~training].  The image dimensions (for threshold
    ranges) are read from the first training image.  Raises
    [Invalid_argument] on an empty training set.

    When [pool] is given (and no [config.evaluator] overrides it), every
    Metropolis-Hastings proposal is evaluated with
    {!Score.evaluate_parallel} over the pool — per-image {!Oracle.clone}s
    of [oracle], results merged in image order — which leaves the
    accepted-program trace and all query accounting bit-identical to the
    sequential default for any pool size.  An explicit [config.evaluator]
    always wins over [pool].

    [caches] (one {!Score_cache.t} per training image, shared across
    every candidate program of the run) memoizes the perturbation forward
    passes that successive MH proposals re-pose; because metering stays
    above the cache, the trace, query spend and outcome are bit-identical
    with and without it — this is the synthesis wall-clock lever, not a
    semantics knob.  Ignored when [config.evaluator] is set (a custom
    evaluator owns its own caching). *)

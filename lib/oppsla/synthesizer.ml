type iteration = {
  index : int;
  program : Condition.program;
  avg_queries : float;
  accepted : bool;
  synth_queries_total : int;
}

type outcome = {
  final : Condition.program;
  final_avg_queries : float;
  best : Condition.program;
  best_avg_queries : float;
  trace : iteration list;
  synth_queries : int;
}

type config = {
  beta : float;
  max_iters : int;
  goal : Sketch.goal;
  max_queries_per_image : int option;
  max_synth_queries : int option;
  batch : int;
  on_iteration : iteration -> unit;
  evaluator :
    (Condition.program -> (Tensor.t * int) array -> Score.evaluation) option;
}

let default_config =
  {
    beta = 0.02;
    max_iters = 210;
    goal = Sketch.Untargeted;
    max_queries_per_image = None;
    max_synth_queries = None;
    batch = Sketch.default_batch;
    on_iteration = (fun _ -> ());
    evaluator = None;
  }

let synthesize ?(config = default_config) ?pool ?caches g oracle ~training =
  if Array.length training = 0 then
    invalid_arg "Synthesizer.synthesize: empty training set";
  let gen_config = Gen.config_for_image (fst training.(0)) in
  let evaluate =
    match (config.evaluator, pool) with
    | Some f, _ -> f
    | None, Some pool ->
        fun program samples ->
          Score.evaluate_parallel ?max_queries:config.max_queries_per_image
            ~goal:config.goal ?caches ~batch:config.batch ~pool oracle program
            samples
    | None, None ->
        fun program samples ->
          Score.evaluate ?max_queries:config.max_queries_per_image
            ~goal:config.goal ?caches ~batch:config.batch oracle program
            samples
  in
  let synth_queries = ref 0 in
  let eval_counted program =
    let e = evaluate program training in
    synth_queries := !synth_queries + e.Score.total_queries;
    e.Score.avg_queries
  in
  let current = ref (Gen.random_program gen_config g) in
  let current_avg = ref (eval_counted !current) in
  let best = ref !current and best_avg = ref !current_avg in
  let trace = ref [] in
  let record index program avg_queries accepted =
    let it =
      {
        index;
        program;
        avg_queries;
        accepted;
        synth_queries_total = !synth_queries;
      }
    in
    config.on_iteration it;
    trace := it :: !trace
  in
  record 0 !current !current_avg true;
  let budget_left () =
    match config.max_synth_queries with
    | None -> true
    | Some b -> !synth_queries < b
  in
  let iter = ref 1 in
  while !iter <= config.max_iters && budget_left () do
    let proposal = Gen.mutate gen_config g !current in
    let proposal_avg = eval_counted proposal in
    let ratio =
      Score.acceptance_ratio ~beta:config.beta ~current:!current_avg
        ~proposal:proposal_avg
    in
    let accepted = Prng.uniform g < ratio in
    if accepted then begin
      current := proposal;
      current_avg := proposal_avg
    end;
    if proposal_avg < !best_avg then begin
      best := proposal;
      best_avg := proposal_avg
    end;
    record !iter proposal proposal_avg accepted;
    incr iter
  done;
  {
    final = !current;
    final_avg_queries = !current_avg;
    best = !best;
    best_avg_queries = !best_avg;
    trace = List.rev !trace;
    synth_queries = !synth_queries;
  }

type iteration = {
  index : int;
  program : Condition.program;
  avg_queries : float;
  accepted : bool;
  pruned : bool;
  synth_queries_total : int;
}

type outcome = {
  final : Condition.program;
  final_avg_queries : float;
  best : Condition.program;
  best_avg_queries : float;
  trace : iteration list;
  synth_queries : int;
}

type config = {
  beta : float;
  max_iters : int;
  goal : Sketch.goal;
  max_queries_per_image : int option;
  max_synth_queries : int option;
  batch : int;
  on_iteration : iteration -> unit;
  evaluator :
    (Condition.program -> (Tensor.t * int) array -> Score.evaluation) option;
  early_stop : Score.pac option;
}

(* MH-loop telemetry: iteration/acceptance counters, per-node-class
   proposal counters, and one instant trace event per iteration carrying
   the score trajectory.  Observation only — the proposal slot is drawn
   exactly where [Gen.mutate] would draw it, so the RNG stream (and
   therefore the synthesizer trace) is bit-identical with telemetry on
   or off. *)
let m_iterations = Telemetry.Metrics.counter "synth.iterations"
let m_accepted = Telemetry.Metrics.counter "synth.accepted"
let m_pruned = Telemetry.Metrics.counter "synth.pruned"
let m_prop_root = Telemetry.Metrics.counter "synth.proposals.root"
let m_prop_condition = Telemetry.Metrics.counter "synth.proposals.condition"
let m_prop_function = Telemetry.Metrics.counter "synth.proposals.function"
let m_prop_constant = Telemetry.Metrics.counter "synth.proposals.constant"

let proposal_counter = function
  | "root" -> m_prop_root
  | "condition" -> m_prop_condition
  | "function" -> m_prop_function
  | _ -> m_prop_constant

(* Heartbeat: one beat per recorded MH iteration.  A full-scale
   iteration evaluates hundreds of training images, so the stall
   threshold for this loop is effectively per-evaluation — the
   per-query beats inside Sketch.attack cover the inner progress. *)
let wd_synth = Telemetry.Watchdog.loop "synth.mh"

let default_config =
  {
    beta = 0.02;
    max_iters = 210;
    goal = Sketch.Untargeted;
    max_queries_per_image = None;
    max_synth_queries = None;
    batch = Sketch.default_batch;
    on_iteration = (fun _ -> ());
    evaluator = None;
    early_stop = None;
  }

let synthesize ?(config = default_config) ?pool ?caches g oracle ~training =
  if Array.length training = 0 then
    invalid_arg "Synthesizer.synthesize: empty training set";
  let gen_config = Gen.config_for_image (fst training.(0)) in
  let evaluate =
    match (config.evaluator, pool) with
    | Some f, _ -> f
    | None, Some pool ->
        fun program samples ->
          Score.evaluate_parallel ?max_queries:config.max_queries_per_image
            ~goal:config.goal ?caches ~batch:config.batch ~pool oracle program
            samples
    | None, None ->
        fun program samples ->
          Score.evaluate ?max_queries:config.max_queries_per_image
            ~goal:config.goal ?caches ~batch:config.batch oracle program
            samples
  in
  let synth_queries = ref 0 in
  let eval_counted program =
    let avg = ref nan in
    let queries = ref 0 in
    Telemetry.Trace.span "synth.evaluate" ~cat:"synth"
      ~args:(fun () ->
        [
          ("samples", Telemetry.Trace.Int (Array.length training));
          ("avg_queries", Telemetry.Trace.Float !avg);
          ("queries", Telemetry.Trace.Int !queries);
        ])
    @@ fun () ->
    let e = evaluate program training in
    synth_queries := !synth_queries + e.Score.total_queries;
    avg := e.Score.avg_queries;
    queries := e.Score.total_queries;
    e.Score.avg_queries
  in
  (* PAC early stopping: active only when no custom evaluator owns the
     scoring.  The visiting permutation comes from a named stream of [g]'s
     root, so it depends only on the seed — not on how far the MH chain
     has advanced — and the chain stream [g] itself is never perturbed by
     the early-stop machinery. *)
  let early_stop =
    match (config.early_stop, config.evaluator) with
    | Some pac, None -> Some (pac, Prng.named_stream g "synth/early-stop")
    | _ -> None
  in
  let staged_counted ~threshold proposal =
    match early_stop with
    | None -> `Avg (eval_counted proposal)
    | Some (pac, es_g) ->
        let order = Prng.permutation es_g (Array.length training) in
        let avg = ref nan and queries = ref 0 and pruned = ref false in
        Telemetry.Trace.span "synth.evaluate" ~cat:"synth"
          ~args:(fun () ->
            [
              ("samples", Telemetry.Trace.Int (Array.length training));
              ("avg_queries", Telemetry.Trace.Float !avg);
              ("queries", Telemetry.Trace.Int !queries);
              ("pruned", Telemetry.Trace.Bool !pruned);
            ])
        @@ fun () ->
        match
          Score.evaluate_pac ?max_queries:config.max_queries_per_image
            ~goal:config.goal ?caches ~batch:config.batch ?pool ~pac ~threshold
            ~order oracle proposal training
        with
        | Score.Complete e ->
            synth_queries := !synth_queries + e.Score.total_queries;
            avg := e.Score.avg_queries;
            queries := e.Score.total_queries;
            `Avg e.Score.avg_queries
        | Score.Pruned p ->
            synth_queries := !synth_queries + p.Score.queries_spent;
            avg := p.Score.lower_bound;
            queries := p.Score.queries_spent;
            pruned := true;
            `Cut p.Score.lower_bound
  in
  Telemetry.Journal.with_default_site "synth" @@ fun () ->
  Telemetry.Watchdog.with_loop wd_synth @@ fun () ->
  let current = ref (Gen.random_program gen_config g) in
  let current_avg = ref (eval_counted !current) in
  let best = ref !current and best_avg = ref !current_avg in
  let trace = ref [] in
  let record ~kind ?(pruned = false) index program avg_queries accepted =
    let it =
      {
        index;
        program;
        avg_queries;
        accepted;
        pruned;
        synth_queries_total = !synth_queries;
      }
    in
    Telemetry.Counter.incr m_iterations;
    if accepted then Telemetry.Counter.incr m_accepted;
    if pruned then Telemetry.Counter.incr m_pruned;
    Telemetry.Watchdog.beat ~iteration:index ~queries:!synth_queries wd_synth;
    Telemetry.Trace.instant "synth.iteration" ~cat:"synth"
      ~args:(fun () ->
        [
          ("index", Telemetry.Trace.Int index);
          ("kind", Telemetry.Trace.Str kind);
          ("avg_queries", Telemetry.Trace.Float avg_queries);
          ("accepted", Telemetry.Trace.Bool accepted);
          ("pruned", Telemetry.Trace.Bool pruned);
          ("synth_queries_total", Telemetry.Trace.Int !synth_queries);
        ]);
    config.on_iteration it;
    trace := it :: !trace
  in
  record ~kind:"seed" 0 !current !current_avg true;
  let budget_left () =
    match config.max_synth_queries with
    | None -> true
    | Some b -> !synth_queries < b
  in
  let iter = ref 1 in
  while !iter <= config.max_iters && budget_left () do
    (* Same draw [Gen.mutate] performs, pulled up so the proposal's node
       class can be counted without a second RNG draw. *)
    let slot = Prng.int g 13 in
    let kind = Gen.slot_kind slot in
    Telemetry.Counter.incr (proposal_counter kind);
    let proposal = Gen.mutate_slot gen_config g !current ~slot in
    (match staged_counted ~threshold:!current_avg proposal with
    | `Avg proposal_avg ->
        let ratio =
          Score.acceptance_ratio ~beta:config.beta ~current:!current_avg
            ~proposal:proposal_avg
        in
        let accepted = Prng.uniform g < ratio in
        if accepted then begin
          current := proposal;
          current_avg := proposal_avg
        end;
        if proposal_avg < !best_avg then begin
          best := proposal;
          best_avg := proposal_avg
        end;
        record ~kind !iter proposal proposal_avg accepted
    | `Cut lower_bound ->
        (* A pruned proposal is rejected outright: no acceptance draw is
           spent on it, it can never displace the incumbent or the best,
           and the recorded average is the lower bound that killed it. *)
        record ~kind ~pruned:true !iter proposal lower_bound false);
    incr iter
  done;
  {
    final = !current;
    final_avg_queries = !current_avg;
    best = !best;
    best_avg_queries = !best_avg;
    trace = List.rev !trace;
    synth_queries = !synth_queries;
  }

(** The sketch's priority queue [L] of location-perturbation pairs.

    Operations used by Algorithm 1: initialize with a fixed order, pop the
    front, push *member* pairs to the back, remove arbitrary members, and
    find the first member with a given location ([closest_pert]).  All are
    O(1) except [first_with_location], which is O(8).

    Implementation: an intrusive doubly-linked list over dense pair ids,
    plus a per-location bitmask of the corners still enqueued and a
    monotone insertion sequence number per node.  Because the queue is only
    ever mutated by pop-front, remove, and move-to-back (which assigns a
    fresh maximal sequence number), the list order always coincides with
    ascending sequence order; "first member at location l" is therefore
    the member corner with minimal sequence number. *)

type t

val init : d1:int -> d2:int -> Pair.t list -> t
(** [init ~d1 ~d2 order] builds the queue containing exactly the pairs of
    [order], front first.  Raises [Invalid_argument] on duplicates or
    out-of-bounds locations. *)

val full_space : d1:int -> d2:int -> image:Tensor.t -> t
(** The paper's initial prioritization (Appendix A): all [8*d1*d2] pairs;
    primary order by L1 pixel distance between the corner and the image's
    pixel at that location, farthest first (block k holds every location's
    k-th farthest corner); secondary order by distance to the image
    center, ascending. *)

val pop : t -> Pair.t option
(** Remove and return the front pair. *)

val push_back : t -> Pair.t -> unit
(** Move a member pair to the back.  Raises [Invalid_argument] if the pair
    is not currently in the queue. *)

val remove : t -> Pair.t -> unit
(** Remove a member pair.  Raises [Invalid_argument] if absent. *)

val mem : t -> Pair.t -> bool

val first_with_location : t -> Location.t -> Pair.t option
(** The member pair with this location that is closest to the front —
    the paper's "closest pair with respect to the perturbation". *)

val front_nth : t -> int -> Pair.t option
(** [front_nth q n] is the [n]-th pair from the front without removing
    it ([front_nth q 0] is what {!pop} would return).  O(n) walk; used
    by the sketch to speculate its next candidates for batched
    evaluation. *)

val length : t -> int
val is_empty : t -> bool

val to_list : t -> Pair.t list
(** Front-to-back contents (O(n); for tests and debugging). *)

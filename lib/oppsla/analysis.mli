(** Post-hoc analysis of adversarial programs and attack runs.

    The paper's qualitative discussion (Section 3.2) reads the
    synthesized conditions back: which functions the search selects, how
    close to the center the successful pixels are, how the prioritization
    moves through the image.  This module computes those summaries. *)

(** {1 Program portfolios} *)

val func_histogram : Condition.program list -> (string * int) list
(** Occurrence counts of each condition function (["max(orig)"],
    ["score_diff"], ["center"], ..., and ["const"] for baseline
    conditions) across all condition slots, sorted by decreasing count. *)

val slot_histogram : Condition.program list -> (string * int) list array
(** Same, but per condition slot: index 0 summarizes every B1, etc. *)

val describe_portfolio : Condition.program array -> string
(** Printable multi-line summary of a per-class program array: one line
    per class plus the function histogram. *)

(** {1 Attack traces} *)

type step = {
  index : int;  (** 1-based query number *)
  pair : Pair.t;
  true_class_score : float;  (** the true class's score for this candidate *)
}

val traced_attack :
  ?max_queries:int ->
  ?goal:Sketch.goal ->
  Oracle.t ->
  Condition.program ->
  image:Tensor.t ->
  true_class:int ->
  Sketch.result * step list
(** Run {!Sketch.attack} recording every query, in order. *)

val center_distance_profile : d1:int -> d2:int -> step list -> float array
(** The queried locations' distances to the image center, in query
    order — shows whether the prioritization stays central. *)

val unique_locations : step list -> int
(** Number of distinct pixel locations probed. *)

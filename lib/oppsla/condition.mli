(** The condition language of Figure 1 and its evaluation.

    A program instantiates the sketch's four holes [B1..B4] with
    conditions.  A condition compares a function [F] against a constant:
    [F] is [max]/[min]/[avg] of a pixel (either the image's original pixel
    at the failed pair's location, or the pair's perturbation),
    [score_diff] (the drop in the true class's score caused by the
    perturbation), or [center] (the location's distance to the image
    center).

    [Const] conditions are outside the synthesizable grammar; they exist
    for the paper's Sketch+False ablation baseline (Appendix C). *)

type pixel_expr =
  | Orig  (** the original image pixel [x_l] at the pair's location *)
  | Pert  (** the pair's perturbation [p] *)

type func =
  | Max of pixel_expr
  | Min of pixel_expr
  | Avg of pixel_expr
  | Score_diff
      (** [score_diff (N x) (N x[l<-p]) c_x]: clean true-class score minus
          perturbed true-class score. *)
  | Center  (** [center l]: L-infinity distance to the image center *)

type cmp = Lt | Gt

type t =
  | Const of bool
  | Cmp of { func : func; cmp : cmp; threshold : float }

type program = { b1 : t; b2 : t; b3 : t; b4 : t }

val const_false_program : program
(** The Sketch+False baseline: a fixed prioritization, no reordering. *)

(** Everything a condition may observe about a failed pair, per the
    black-box setting: the image, its true class, the clean score vector,
    the pair, and the score vector of the (already queried) perturbed
    image.  [d1]/[d2] are the image dimensions (for [center]). *)
type ctx = {
  d1 : int;
  d2 : int;
  image : Tensor.t;
  true_class : int;
  clean_scores : Tensor.t;
  pair : Pair.t;
  perturbed_scores : Tensor.t;
}

val eval_func : func -> ctx -> float
val eval : t -> ctx -> bool

val conditions : program -> t * t * t * t
(** [(b1, b2, b3, b4)]. *)

val program_of_array : t array -> program
(** Raises [Invalid_argument] unless the array has exactly 4 elements. *)

val program_to_array : program -> t array

val equal : t -> t -> bool
val equal_program : program -> program -> bool

val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit
val to_string : t -> string
val program_to_string : program -> string
(** Renders in the concrete syntax parsed by {!Dsl.parse_program}. *)

type config = { d1 : int; d2 : int }

let config_for_image image =
  if Tensor.ndim image <> 3 || Tensor.dim image 0 <> 3 then
    invalid_arg "Gen.config_for_image: expected a CHW color image";
  { d1 = Tensor.dim image 1; d2 = Tensor.dim image 2 }

let funcs : Condition.func array =
  [|
    Max Orig; Max Pert; Min Orig; Min Pert; Avg Orig; Avg Pert; Score_diff;
    Center;
  |]

let random_func g = Prng.choice g funcs

let center_max config = float_of_int (max config.d1 config.d2) /. 2.

let random_threshold config g (func : Condition.func) =
  match func with
  | Max _ | Min _ | Avg _ -> Prng.uniform g
  | Score_diff -> Prng.float_in g (-1.) 1.
  | Center -> Prng.float g (center_max config)

let random_cmp g : Condition.cmp = if Prng.bool g then Lt else Gt

let random_condition config g =
  let func = random_func g in
  Condition.Cmp
    { func; cmp = random_cmp g; threshold = random_threshold config g func }

let random_program config g =
  Condition.program_of_array (Array.init 4 (fun _ -> random_condition config g))

(* Uniform samplers over the perturbation spaces (Space.t).  These are
   the canonical draw orders: location row-then-col, then the corner.
   Attackers delegate here so every consumer of a named PRNG stream
   advances it identically. *)
let random_loc config g =
  Location.make ~row:(Prng.int g config.d1) ~col:(Prng.int g config.d2)

let random_loc_excluding config g ~excluded =
  let rec draw () =
    let loc = random_loc config g in
    if List.exists (Location.equal loc) excluded then draw () else loc
  in
  draw ()

let random_pair config g =
  Pair.make ~loc:(random_loc config g) ~corner:(Prng.int g 8)

let random_pixel_set config g ~k =
  if k < 1 || k > config.d1 * config.d2 then
    invalid_arg
      (Printf.sprintf "Gen.random_pixel_set: k = %d outside [1, %d]" k
         (config.d1 * config.d2));
  let rec build acc n =
    if n = 0 then acc
    else begin
      let loc =
        random_loc_excluding config g
          ~excluded:(List.map (fun (p : Pair.t) -> p.loc) acc)
      in
      build (Pair.make ~loc ~corner:(Prng.int g 8) :: acc) (n - 1)
    end
  in
  build [] k

let random_patch config g ~h ~w =
  if h < 1 || w < 1 || h > config.d1 || w > config.d2 then
    invalid_arg
      (Printf.sprintf "Gen.random_patch: %dx%d patch in a %dx%d image" h w
         config.d1 config.d2);
  let anchor =
    Location.make
      ~row:(Prng.int g (config.d1 - h + 1))
      ~col:(Prng.int g (config.d2 - w + 1))
  in
  (anchor, Prng.int g 8)

(* Node addressing for mutation: slot 0 is the root; slots 1-4 are the
   conditions; 5-8 the function nodes; 9-12 the constant nodes. *)
let slot_kind slot =
  if slot < 0 || slot > 12 then invalid_arg "Gen.slot_kind: slot out of range"
  else if slot = 0 then "root"
  else
    match (slot - 1) / 4 with
    | 0 -> "condition"
    | 1 -> "function"
    | _ -> "constant"

let mutate_slot config g program ~slot =
  if slot < 0 || slot > 12 then invalid_arg "Gen.mutate_slot: slot out of range"
  else if slot = 0 then random_program config g
  else begin
    let conds = Condition.program_to_array program in
    let k = (slot - 1) mod 4 in
    let new_cond =
      match (slot - 1) / 4 with
      | 0 -> random_condition config g
      | kind -> (
          match conds.(k) with
          | Condition.Const _ ->
              (* No function/constant child to mutate: regenerate. *)
              random_condition config g
          | Condition.Cmp { func; cmp; threshold } ->
              if kind = 1 then
                Condition.Cmp { func = random_func g; cmp; threshold }
              else
                Condition.Cmp
                  { func; cmp; threshold = random_threshold config g func })
    in
    conds.(k) <- new_cond;
    Condition.program_of_array conds
  end

let mutate config g program = mutate_slot config g program ~slot:(Prng.int g 13)

type image_eval = { queries : int; success : bool }

type evaluation = {
  avg_queries : float;
  successes : int;
  attempts : int;
  total_queries : int;
  per_image : image_eval array;
}

let no_success_penalty = 1e9

(* Merging attack results into an evaluation always walks the results in
   image (index) order, so the parallel evaluator is bit-identical to the
   sequential one: same integer sums, same float division, same flags. *)
let of_results results =
  let per_image =
    Array.map
      (fun (r : Sketch.result) ->
        { queries = r.Sketch.queries; success = r.Sketch.adversarial <> None })
      results
  in
  let successes = ref 0 and success_queries = ref 0 and total = ref 0 in
  Array.iter
    (fun r ->
      total := !total + r.queries;
      if r.success then begin
        incr successes;
        success_queries := !success_queries + r.queries
      end)
    per_image;
  let avg_queries =
    if !successes = 0 then no_success_penalty
    else float_of_int !success_queries /. float_of_int !successes
  in
  {
    avg_queries;
    successes = !successes;
    attempts = Array.length results;
    total_queries = !total;
    per_image;
  }

(* Cache plumbing shared by both evaluators: a store is strictly
   per-image (slot i memoizes sample i), and an oracle handle carrying an
   *attached* per-image cache must not be fanned over a batch — that
   would alias one image's table across every sample.  Fail loudly
   instead of silently returning wrong scores. *)
let check_caches name caches oracle samples =
  (match caches with
  | Some store when Score_cache.store_size store <> Array.length samples ->
      invalid_arg
        (Printf.sprintf "%s: cache store has %d slots for %d samples" name
           (Score_cache.store_size store)
           (Array.length samples))
  | _ -> ());
  if Oracle.cache oracle <> None then
    invalid_arg
      (name
     ^ ": oracle has an attached per-image cache (Oracle.set_cache); pass \
        ~caches so each sample gets its own slot")

let slot caches i = Option.map (fun s -> Score_cache.image_cache s i) caches

(* Same heartbeat slot Sketch.attack beats per query; the evaluators
   stamp the image index onto it so /healthz shows which sample a
   wedged evaluation was working on (last-writer-wins across domains). *)
let wd_attack = Telemetry.Watchdog.loop "sketch.attack"

let evaluate ?max_queries ?goal ?caches ?batch oracle program samples =
  check_caches "Score.evaluate" caches oracle samples;
  of_results
    (Array.mapi
       (fun i (image, true_class) ->
         Telemetry.Watchdog.beat ~image:i wd_attack;
         Telemetry.Journal.with_image i @@ fun () ->
         Sketch.attack ?max_queries ?goal ?cache:(slot caches i) ?batch oracle
           program ~image ~true_class)
       samples)

let evaluate_parallel ?max_queries ?goal ?caches ?batch ~pool oracle program
    samples =
  check_caches "Score.evaluate_parallel" caches oracle samples;
  (* Journal context is domain-local; a pool worker starts with an empty
     one.  Capture the caller's charge-site tag here and re-apply it in
     the worker so parallel charges attribute identically to sequential
     ones. *)
  let site = Telemetry.Journal.site () in
  of_results
    (Domain_pool.Pool.map pool
       (fun (i, (image, true_class)) ->
         (* The clone has no attached cache by construction; the image's
            own slot is re-attached explicitly, so a cache is only ever
            touched by the one domain attacking its image. *)
         Telemetry.Watchdog.beat ~image:i wd_attack;
         Telemetry.Journal.with_site site @@ fun () ->
         Telemetry.Journal.with_image i @@ fun () ->
         Sketch.attack ?max_queries ?goal ?cache:(slot caches i) ?batch
           (Oracle.clone oracle) program ~image ~true_class)
       (Array.mapi (fun i s -> (i, s)) samples))

(* PAC early stopping (ROADMAP item 3): evaluate a candidate on a
   permuted prefix of the training set and abandon it as soon as a lower
   bound on its final average exceeds the incumbent's.  Two bounds are
   combined; whichever is larger prunes:

   - a *certified* optimistic-completion bound: every unevaluated image
     could still succeed in one query, so the final average over
     successes is at least (sq + n_rem) / (succ + n_rem) — monotone
     algebra, no probability involved;
   - a Hoeffding bound on the mean over successes: with [succ] success
     samples in [0, range], the empirical mean overestimates the true
     mean by more than range * sqrt(ln(1/delta) / (2 succ)) with
     probability at most delta.

   A candidate that is never pruned completes on every image, and the
   integer per-image results are merged in input order by [of_results],
   so [Complete] is bit-identical to the exact evaluators regardless of
   the visiting order. *)

type pac = { delta : float; min_images : int; stage : int; range : float option }

let default_pac = { delta = 0.05; min_images = 10; stage = 10; range = None }

type pruned_stats = {
  lower_bound : float;
  images_seen : int;
  queries_spent : int;
}

type staged = Complete of evaluation | Pruned of pruned_stats

let evaluate_pac ?max_queries ?goal ?caches ?batch ?pool ~pac ~threshold ~order
    oracle program samples =
  check_caches "Score.evaluate_pac" caches oracle samples;
  let n = Array.length samples in
  if Array.length order <> n then
    invalid_arg
      (Printf.sprintf "Score.evaluate_pac: order has %d entries for %d samples"
         (Array.length order) n);
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Score.evaluate_pac: order is not a permutation";
      seen.(i) <- true)
    order;
  let range =
    match (pac.range, max_queries) with
    | Some r, _ -> r
    | None, Some cap -> float_of_int cap
    | None, None ->
        invalid_arg
          "Score.evaluate_pac: the Hoeffding bound needs pac.range or \
           max_queries"
  in
  if pac.stage <= 0 then invalid_arg "Score.evaluate_pac: stage must be positive";
  let results = Array.make n None in
  (* Same capture as [evaluate_parallel]: [fill] may run in a pool
     worker whose journal context is empty. *)
  let site = Telemetry.Journal.site () in
  let fill k =
    let i = order.(k) in
    let image, true_class = samples.(i) in
    Telemetry.Watchdog.beat ~image:i wd_attack;
    let o = match pool with None -> oracle | Some _ -> Oracle.clone oracle in
    ( i,
      Telemetry.Journal.with_site site @@ fun () ->
      Telemetry.Journal.with_image i @@ fun () ->
      Sketch.attack ?max_queries ?goal ?cache:(slot caches i) ?batch o program
        ~image ~true_class )
  in
  let run_stage lo hi =
    match pool with
    | None ->
        for k = lo to hi - 1 do
          let i, r = fill k in
          results.(i) <- Some r
        done
    | Some pool ->
        Array.iter
          (fun (i, r) -> results.(i) <- Some r)
          (Domain_pool.Pool.map pool fill
             (Array.init (hi - lo) (fun j -> lo + j)))
  in
  let evaluated = ref 0 in
  let verdict = ref None in
  while !verdict = None && !evaluated < n do
    let hi = min n (!evaluated + pac.stage) in
    run_stage !evaluated hi;
    evaluated := hi;
    if !evaluated < n && !evaluated >= pac.min_images then begin
      let succ = ref 0 and sq = ref 0 and spent = ref 0 in
      for k = 0 to !evaluated - 1 do
        match results.(order.(k)) with
        | Some (r : Sketch.result) ->
            spent := !spent + r.Sketch.queries;
            if r.Sketch.adversarial <> None then begin
              incr succ;
              sq := !sq + r.Sketch.queries
            end
        | None -> assert false
      done;
      let n_rem = n - !evaluated in
      let certified =
        (* succ + n_rem > 0 here because n_rem >= 1. *)
        float_of_int (!sq + n_rem) /. float_of_int (!succ + n_rem)
      in
      let statistical =
        if !succ = 0 then neg_infinity
        else
          (float_of_int !sq /. float_of_int !succ)
          -. (range
             *. sqrt (log (1. /. pac.delta) /. (2. *. float_of_int !succ)))
      in
      let lower_bound = Float.max certified statistical in
      if lower_bound > threshold then
        verdict :=
          Some
            (Pruned
               {
                 lower_bound;
                 images_seen = !evaluated;
                 queries_spent = !spent;
               })
    end
  done;
  match !verdict with
  | Some v -> v
  | None ->
      Complete
        (of_results
           (Array.map
              (function Some r -> r | None -> assert false)
              results))

let score ~beta avg_queries = exp (-.beta *. avg_queries)

let acceptance_ratio ~beta ~current ~proposal =
  exp (beta *. (current -. proposal))

type evaluation = {
  avg_queries : float;
  successes : int;
  attempts : int;
  total_queries : int;
}

let no_success_penalty = 1e9

let evaluate ?max_queries ?goal oracle program samples =
  let successes = ref 0 and success_queries = ref 0 and total = ref 0 in
  Array.iter
    (fun (image, true_class) ->
      let r =
        Sketch.attack ?max_queries ?goal oracle program ~image ~true_class
      in
      total := !total + r.Sketch.queries;
      match r.Sketch.adversarial with
      | Some _ ->
          incr successes;
          success_queries := !success_queries + r.Sketch.queries
      | None -> ())
    samples;
  let avg_queries =
    if !successes = 0 then no_success_penalty
    else float_of_int !success_queries /. float_of_int !successes
  in
  {
    avg_queries;
    successes = !successes;
    attempts = Array.length samples;
    total_queries = !total;
  }

let score ~beta avg_queries = exp (-.beta *. avg_queries)

let acceptance_ratio ~beta ~current ~proposal =
  exp (beta *. (current -. proposal))

type image_eval = { queries : int; success : bool }

type evaluation = {
  avg_queries : float;
  successes : int;
  attempts : int;
  total_queries : int;
  per_image : image_eval array;
}

let no_success_penalty = 1e9

(* Merging attack results into an evaluation always walks the results in
   image (index) order, so the parallel evaluator is bit-identical to the
   sequential one: same integer sums, same float division, same flags. *)
let of_results results =
  let per_image =
    Array.map
      (fun (r : Sketch.result) ->
        { queries = r.Sketch.queries; success = r.Sketch.adversarial <> None })
      results
  in
  let successes = ref 0 and success_queries = ref 0 and total = ref 0 in
  Array.iter
    (fun r ->
      total := !total + r.queries;
      if r.success then begin
        incr successes;
        success_queries := !success_queries + r.queries
      end)
    per_image;
  let avg_queries =
    if !successes = 0 then no_success_penalty
    else float_of_int !success_queries /. float_of_int !successes
  in
  {
    avg_queries;
    successes = !successes;
    attempts = Array.length results;
    total_queries = !total;
    per_image;
  }

let evaluate ?max_queries ?goal oracle program samples =
  of_results
    (Array.map
       (fun (image, true_class) ->
         Sketch.attack ?max_queries ?goal oracle program ~image ~true_class)
       samples)

let evaluate_parallel ?max_queries ?goal ~pool oracle program samples =
  of_results
    (Domain_pool.Pool.map pool
       (fun (image, true_class) ->
         Sketch.attack ?max_queries ?goal (Oracle.clone oracle) program ~image
           ~true_class)
       samples)

let score ~beta avg_queries = exp (-.beta *. avg_queries)

let acceptance_ratio ~beta ~current ~proposal =
  exp (beta *. (current -. proposal))

type image_eval = { queries : int; success : bool }

type evaluation = {
  avg_queries : float;
  successes : int;
  attempts : int;
  total_queries : int;
  per_image : image_eval array;
}

let no_success_penalty = 1e9

(* Merging attack results into an evaluation always walks the results in
   image (index) order, so the parallel evaluator is bit-identical to the
   sequential one: same integer sums, same float division, same flags. *)
let of_results results =
  let per_image =
    Array.map
      (fun (r : Sketch.result) ->
        { queries = r.Sketch.queries; success = r.Sketch.adversarial <> None })
      results
  in
  let successes = ref 0 and success_queries = ref 0 and total = ref 0 in
  Array.iter
    (fun r ->
      total := !total + r.queries;
      if r.success then begin
        incr successes;
        success_queries := !success_queries + r.queries
      end)
    per_image;
  let avg_queries =
    if !successes = 0 then no_success_penalty
    else float_of_int !success_queries /. float_of_int !successes
  in
  {
    avg_queries;
    successes = !successes;
    attempts = Array.length results;
    total_queries = !total;
    per_image;
  }

(* Cache plumbing shared by both evaluators: a store is strictly
   per-image (slot i memoizes sample i), and an oracle handle carrying an
   *attached* per-image cache must not be fanned over a batch — that
   would alias one image's table across every sample.  Fail loudly
   instead of silently returning wrong scores. *)
let check_caches name caches oracle samples =
  (match caches with
  | Some store when Score_cache.store_size store <> Array.length samples ->
      invalid_arg
        (Printf.sprintf "%s: cache store has %d slots for %d samples" name
           (Score_cache.store_size store)
           (Array.length samples))
  | _ -> ());
  if Oracle.cache oracle <> None then
    invalid_arg
      (name
     ^ ": oracle has an attached per-image cache (Oracle.set_cache); pass \
        ~caches so each sample gets its own slot")

let slot caches i = Option.map (fun s -> Score_cache.image_cache s i) caches

(* Same heartbeat slot Sketch.attack beats per query; the evaluators
   stamp the image index onto it so /healthz shows which sample a
   wedged evaluation was working on (last-writer-wins across domains). *)
let wd_attack = Telemetry.Watchdog.loop "sketch.attack"

let evaluate ?max_queries ?goal ?caches ?batch oracle program samples =
  check_caches "Score.evaluate" caches oracle samples;
  of_results
    (Array.mapi
       (fun i (image, true_class) ->
         Telemetry.Watchdog.beat ~image:i wd_attack;
         Sketch.attack ?max_queries ?goal ?cache:(slot caches i) ?batch oracle
           program ~image ~true_class)
       samples)

let evaluate_parallel ?max_queries ?goal ?caches ?batch ~pool oracle program
    samples =
  check_caches "Score.evaluate_parallel" caches oracle samples;
  of_results
    (Domain_pool.Pool.map pool
       (fun (i, (image, true_class)) ->
         (* The clone has no attached cache by construction; the image's
            own slot is re-attached explicitly, so a cache is only ever
            touched by the one domain attacking its image. *)
         Telemetry.Watchdog.beat ~image:i wd_attack;
         Sketch.attack ?max_queries ?goal ?cache:(slot caches i) ?batch
           (Oracle.clone oracle) program ~image ~true_class)
       (Array.mapi (fun i s -> (i, s)) samples))

let score ~beta avg_queries = exp (-.beta *. avg_queries)

let acceptance_ratio ~beta ~current ~proposal =
  exp (beta *. (current -. proposal))

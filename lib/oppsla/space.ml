type t = Pixel | Kpixel of int | Patch of { h : int; w : int }

let to_string = function
  | Pixel -> "pixel"
  | Kpixel k -> Printf.sprintf "kpixel:%d" k
  | Patch { h; w } -> Printf.sprintf "patch:%dx%d" h w

let of_string s =
  match String.split_on_char ':' s with
  | [ "pixel" ] -> Some Pixel
  | [ "kpixel" ] -> Some (Kpixel 2)
  | [ "kpixel"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Some (Kpixel k)
      | _ -> None)
  | [ "patch" ] -> Some (Patch { h = 2; w = 2 })
  | [ "patch"; dims ] -> (
      match String.split_on_char 'x' dims with
      | [ h; w ] -> (
          match (int_of_string_opt h, int_of_string_opt w) with
          | Some h, Some w when h >= 1 && w >= 1 -> Some (Patch { h; w })
          | _ -> None)
      | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf
           "Space.of_string_exn: %S (expected pixel | kpixel[:K] | patch[:HxW])"
           s)

let pixels = function
  | Pixel -> 1
  | Kpixel k -> k
  | Patch { h; w } -> h * w

let validate ~d1 ~d2 = function
  | Pixel -> ()
  | Kpixel k ->
      if k < 1 || k > d1 * d2 then
        invalid_arg
          (Printf.sprintf "Space: kpixel k = %d outside [1, %d]" k (d1 * d2))
  | Patch { h; w } ->
      if h < 1 || w < 1 || h > d1 || w > d2 then
        invalid_arg
          (Printf.sprintf "Space: patch %dx%d does not fit a %dx%d image" h w
             d1 d2)

(* A singleton pixel set is exactly a sketch perturbation, so it shares
   the sketch's corner key space (cross-attacker cache hits on the same
   image); larger sets key on the sorted pair-id list, which makes the
   key a pure function of the SET — element order never leaks into the
   cache. *)
let pair_key (pair : Pair.t) =
  Score_cache.Corner
    {
      row = pair.loc.Location.row;
      col = pair.loc.Location.col;
      corner = pair.corner;
    }

let set_key ~d2 = function
  | [ pair ] -> pair_key pair
  | pairs ->
      let ids = List.map (Pair.id ~d2) pairs |> List.sort compare in
      Score_cache.Custom
        ("pairs:" ^ String.concat "," (List.map string_of_int ids))

(* Patch keys live in their own ["patch:"] namespace: a 1x1 patch at a
   location is pixel-equivalent but still keyed separately, because the
   key format is part of the cache contract and patches are anchored
   rectangles, not sets. *)
let patch_key ~(anchor : Location.t) ~h ~w ~corner =
  Score_cache.Custom
    (Printf.sprintf "patch:%d,%d,%dx%d,%d" anchor.Location.row
       anchor.Location.col h w corner)

let perturb_patch image ~(anchor : Location.t) ~h ~w ~corner =
  let d1 = Tensor.dim image 1 and d2 = Tensor.dim image 2 in
  if
    anchor.Location.row < 0 || anchor.Location.col < 0
    || anchor.Location.row + h > d1
    || anchor.Location.col + w > d2
  then
    invalid_arg
      (Printf.sprintf "Space.perturb_patch: %dx%d patch at (%d, %d) leaves %dx%d"
         h w anchor.Location.row anchor.Location.col d1 d2);
  let rgb = Rgb.corner corner in
  let x' = Tensor.copy image in
  List.iter
    (fun (cell : Location.t) ->
      Rgb.write_to_image x' ~row:cell.Location.row ~col:cell.Location.col rgb)
    (Location.patch_cells ~anchor ~h ~w);
  x'

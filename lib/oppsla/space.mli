(** First-class perturbation spaces.

    The paper's attack space is the 8-corner one-pixel space ({!Pixel}:
    one location, one saturated RGB corner).  The harness additionally
    supports the natural sparse generalizations from the Sparse-RS
    literature: {!Kpixel} perturbs [k] distinct pixels (each with its
    own corner color) and {!Patch} fills an anchored [h x w] rectangle
    with one corner color.  A space only widens {e what} a candidate
    perturbation is — metering, caching and batching are space-blind, so
    query accounting stays bit-identical across domain widths, cache
    on/off and batch widths for every space.

    {b Cache-key discipline.}  Every space keys perturbations in a
    namespace that cannot collide with the others: singleton pixel sets
    share the sketch's [Corner] key space (cross-attacker hits on the
    same image), k-pixel sets use [Custom "pairs:<sorted ids>"] — a pure
    function of the set, insensitive to element order — and patches use
    [Custom "patch:<row>,<col>,<h>x<w>,<corner>"]. *)

type t =
  | Pixel  (** the paper's one-pixel, 8-corner space *)
  | Kpixel of int  (** [k] distinct pixels, each with a corner color *)
  | Patch of { h : int; w : int }
      (** an [h x w] rectangle, anchored top-left, filled with one
          corner color *)

val to_string : t -> string
(** ["pixel"], ["kpixel:<k>"], ["patch:<h>x<w>"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}.  Bare ["kpixel"] defaults to [k = 2]; bare
    ["patch"] to [2x2]. *)

val of_string_exn : string -> t
(** {!of_string}, raising [Invalid_argument] on parse failure. *)

val pixels : t -> int
(** Number of pixels a candidate perturbs: [1], [k], or [h * w]. *)

val validate : d1:int -> d2:int -> t -> unit
(** Raises [Invalid_argument] when the space does not fit a [d1 x d2]
    image ([k] outside [[1, d1 * d2]], patch larger than the image). *)

val pair_key : Pair.t -> Score_cache.key
(** The sketch's corner key for a single pixel perturbation (same key as
    {!Sketch.cache_key}). *)

val set_key : d2:int -> Pair.t list -> Score_cache.key
(** Cache key for a pixel-set perturbation.  Singletons map to
    {!pair_key}; larger sets to [Custom "pairs:<ids>"] with the pair ids
    sorted ascending, so the key is order-insensitive. *)

val patch_key : anchor:Location.t -> h:int -> w:int -> corner:int -> Score_cache.key
(** [Custom "patch:<row>,<col>,<h>x<w>,<corner>"]. *)

val perturb_patch :
  Tensor.t -> anchor:Location.t -> h:int -> w:int -> corner:int -> Tensor.t
(** Copy of the image with the anchored rectangle filled with
    [Rgb.corner corner].  Raises [Invalid_argument] if the patch leaves
    the image. *)

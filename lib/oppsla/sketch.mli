(** The one-pixel attack sketch (Algorithm 1 / Appendix A).

    [attack] enumerates the finite perturbation space (all RGB-cube
    corners at all locations) through the priority queue of
    {!Pair_queue.full_space}, querying the oracle for each candidate.  A
    failed candidate's {i closest pairs} are reordered according to the
    program's four conditions:

    - [B1] true: the in-queue neighbours with the same corner are pushed
      to the back;
    - [B2] true: the front-most in-queue pair at the same location is
      pushed to the back;
    - [B3] true: the in-queue neighbours with the same corner are removed
      and eagerly checked, recursively;
    - [B4] true: the front-most in-queue pair at the same location is
      removed and eagerly checked, recursively.

    Every instantiation visits the same candidate set, so success is
    program-independent; only the {i order} — hence the query count —
    changes.

    The clean score vector [N(x)] (needed by [score_diff] conditions) is
    obtained without spending a metered query: in the paper's protocol the
    attacker only targets images it already knows are correctly
    classified, so [N(x)] is in hand before the attack starts. *)

type goal =
  | Untargeted  (** succeed when the prediction is anything but the true class *)
  | Targeted of int
      (** succeed only when the prediction becomes this specific class
          (an extension beyond the paper's untargeted setting; the sketch
          and query accounting are unchanged) *)

type result = {
  adversarial : (Pair.t * Tensor.t) option;
      (** the successful pair and perturbed image, or [None] *)
  queries : int;  (** oracle queries posed by this attack *)
}

val goal_reached : goal -> true_class:int -> int -> bool
(** [goal_reached goal ~true_class predicted]: the success predicate all
    attacks share — [predicted <> true_class] untargeted,
    [predicted = target] targeted.  Because the argmax of a one-hot
    vector is the argmax of the raw vector, this predicate is identical
    under {!Oracle.Score} and {!Oracle.Decision} observation. *)

val perturb : Tensor.t -> Pair.t -> Tensor.t
(** [perturb x pair] is [x[l <- p]]: a copy of [x] with the pair's pixel
    overwritten by its corner value. *)

val cache_key : Pair.t -> Score_cache.key
(** The {!Score_cache} key of a pair's perturbation:
    [Corner {row; col; corner}].  Shared with baselines that query the
    same finite space (Sparse-RS at [k = 1]), so their caches interoperate
    with the sketch's. *)

val default_batch : int
(** Default candidate batch width (16). *)

val attack :
  ?max_queries:int ->
  ?goal:goal ->
  ?cache:Score_cache.t ->
  ?batch:int ->
  ?on_query:(int -> Pair.t -> Tensor.t -> unit) ->
  Oracle.t ->
  Condition.program ->
  image:Tensor.t ->
  true_class:int ->
  result
(** Run the sketch.  Stops with [adversarial = None] when the queue is
    exhausted, when [max_queries] attack queries have been spent, or when
    the oracle's own budget runs out.  [max_queries] defaults to the full
    space size [8 * d1 * d2] (the attack never needs more).  [goal]
    defaults to [Untargeted].

    [cache] is this image's perturbation-score memo table (defaulting to
    the oracle's attached cache, {!Oracle.cache}); queries are answered
    through the {!Batcher}, so metering — the query counter, the budget
    exhaustion point, [queries] in the result — is bit-identical with and
    without it, and so are the score vectors every condition sees.  The
    cache must belong to [image] (see {!Score_cache}).

    [batch] (default {!default_batch}) is the speculative chunk width:
    candidates are posed to the oracle in chunks via {!Batcher}, the
    main loop speculating that the queue's front entries come next.
    Results — success, query counts, condition decisions, [on_query]
    order — are bit-identical at every width (see {!Batcher}); only
    wall-clock changes.  [batch:1] is the sequential path.

    [on_query] is an instrumentation hook called after every metered
    query with the 1-based query index, the candidate pair, and the
    returned score vector (used by {!Analysis.traced_attack}); with a
    cache the vector may be shared with the memo table, so hooks must not
    mutate it. *)

val success_exists :
  ?goal:goal -> Oracle.t -> image:Tensor.t -> true_class:int -> bool
(** Ground truth via exhaustive unmetered scan: does any corner one-pixel
    perturbation flip the classification?  For tests and dataset
    diagnostics only. *)

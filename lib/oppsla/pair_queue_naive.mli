(** Reference implementation of the pair queue, backed by a plain list.

    Same contract as {!Pair_queue} with O(n) operations.  It exists for
    two reasons: the property-based tests check the indexed queue against
    it, and the microbenchmark ablates the indexed design against it
    (DESIGN.md §5.1). *)

type t

val init : d1:int -> d2:int -> Pair.t list -> t
val full_space : d1:int -> d2:int -> image:Tensor.t -> t
val pop : t -> Pair.t option
val push_back : t -> Pair.t -> unit
val remove : t -> Pair.t -> unit
val mem : t -> Pair.t -> bool
val first_with_location : t -> Location.t -> Pair.t option
val length : t -> int
val is_empty : t -> bool
val to_list : t -> Pair.t list

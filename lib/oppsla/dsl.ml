type error = { position : int; message : string }

exception Error of error

let fail position fmt =
  Printf.ksprintf (fun message -> raise (Error { position; message })) fmt

(* Lexer *)

type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Lt
  | Gt
  | Colon
  | Semi
  | Eof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let push tok pos = tokens := (tok, pos) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then begin push Lparen pos; incr i end
    else if c = ')' then begin push Rparen pos; incr i end
    else if c = '<' then begin push Lt pos; incr i end
    else if c = '>' then begin push Gt pos; incr i end
    else if c = ':' then begin push Colon pos; incr i end
    else if c = ';' then begin push Semi pos; incr i end
    else if is_digit c || c = '-' || c = '+' || c = '.' then begin
      let j = ref !i in
      if src.[!j] = '-' || src.[!j] = '+' then incr j;
      let start_digits = !j in
      while
        !j < n
        && (is_digit src.[!j] || src.[!j] = '.' || src.[!j] = 'e'
           || src.[!j] = 'E'
           || ((src.[!j] = '-' || src.[!j] = '+')
              && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E')))
      do
        incr j
      done;
      if !j = start_digits then fail pos "expected a number after '%c'" c;
      let text = String.sub src pos (!j - pos) in
      (match float_of_string_opt text with
      | Some v -> push (Number v) pos
      | None -> fail pos "malformed number %S" text);
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      push (Ident (String.sub src pos (!j - pos))) pos;
      i := !j
    end
    else fail pos "unexpected character %C" c
  done;
  push Eof n;
  Array.of_list (List.rev !tokens)

(* Parser *)

type state = { tokens : (token * int) array; mutable cursor : int }

let peek st = st.tokens.(st.cursor)
let advance st = st.cursor <- st.cursor + 1

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number v -> Printf.sprintf "number %g" v
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lt -> "'<'"
  | Gt -> "'>'"
  | Colon -> "':'"
  | Semi -> "';'"
  | Eof -> "end of input"

let expect st tok what =
  let t, pos = peek st in
  if t = tok then advance st
  else fail pos "expected %s, found %s" what (token_name t)

let parse_pixel st =
  let t, pos = peek st in
  match t with
  | Ident "orig" -> advance st; Condition.Orig
  | Ident "pert" -> advance st; Condition.Pert
  | t -> fail pos "expected 'orig' or 'pert', found %s" (token_name t)

let parse_func st =
  let t, pos = peek st in
  match t with
  | Ident (("max" | "min" | "avg") as name) ->
      advance st;
      expect st Lparen "'(' after pixel function";
      let p = parse_pixel st in
      expect st Rparen "')' closing pixel function";
      (match name with
      | "max" -> Condition.Max p
      | "min" -> Condition.Min p
      | _ -> Condition.Avg p)
  | Ident "score_diff" -> advance st; Condition.Score_diff
  | Ident "center" -> advance st; Condition.Center
  | t ->
      fail pos
        "expected a function (max, min, avg, score_diff, center), found %s"
        (token_name t)

let parse_cond st =
  let t, _ = peek st in
  match t with
  | Ident "true" -> advance st; Condition.Const true
  | Ident "false" -> advance st; Condition.Const false
  | _ ->
      let func = parse_func st in
      let cmp =
        let t, pos = peek st in
        match t with
        | Lt -> advance st; Condition.Lt
        | Gt -> advance st; Condition.Gt
        | t -> fail pos "expected '<' or '>', found %s" (token_name t)
      in
      let threshold =
        let t, pos = peek st in
        match t with
        | Number v -> advance st; v
        | t -> fail pos "expected a numeric threshold, found %s" (token_name t)
      in
      Condition.Cmp { func; cmp; threshold }

(* An optional "B<k>:" label; if present, [k] must match [expected]. *)
let parse_label st expected =
  match peek st with
  | Ident name, pos
    when String.length name = 2 && name.[0] = 'B' && is_digit name.[1] -> (
      match st.tokens.(st.cursor + 1) with
      | Colon, _ ->
          if name <> Printf.sprintf "B%d" expected then
            fail pos "expected label B%d, found %s" expected name;
          advance st;
          advance st
      | _ -> ())
  | _ -> ()

let parse_program_state st =
  let conds =
    Array.init 4 (fun k ->
        if k > 0 then begin
          (* Separator between conditions is optional when labels are
             present, but a stray one is always accepted. *)
          match peek st with
          | Semi, _ -> advance st
          | _ -> ()
        end;
        parse_label st (k + 1);
        parse_cond st)
  in
  (match peek st with Semi, _ -> advance st | _ -> ());
  let t, pos = peek st in
  if t <> Eof then fail pos "trailing input: %s" (token_name t);
  Condition.program_of_array conds

let parse_program src =
  try Ok (parse_program_state { tokens = tokenize src; cursor = 0 })
  with Error e -> Result.Error e

let parse_condition src =
  try
    let st = { tokens = tokenize src; cursor = 0 } in
    let c = parse_cond st in
    let t, pos = peek st in
    if t <> Eof then fail pos "trailing input: %s" (token_name t);
    Ok c
  with Error e -> Result.Error e

let describe_error src { position; message } =
  (* Locate the line containing [position] and draw a caret under it. *)
  let pos = max 0 (min position (String.length src)) in
  let line_start =
    if pos = 0 then 0
    else
      match String.rindex_from_opt src (pos - 1) '\n' with
      | Some i -> i + 1
      | None -> 0
  in
  let line_end =
    match String.index_from_opt src line_start '\n' with
    | Some i -> i
    | None -> String.length src
  in
  let line = String.sub src line_start (line_end - line_start) in
  let caret = String.make (max 0 (position - line_start)) ' ' ^ "^" in
  Printf.sprintf "parse error at offset %d: %s\n  %s\n  %s" position message
    line caret

let parse_program_exn src =
  match parse_program src with
  | Ok p -> p
  | Result.Error e -> invalid_arg (describe_error src e)

let print_program = Condition.program_to_string

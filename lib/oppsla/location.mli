(** Pixel locations and the paper's location metric.

    Locations index a [d1 x d2] image grid ([row] in [0, d1), [col] in
    [0, d2)).  The distance between locations is the L-infinity metric
    (Section 3.1); [center_distance] is the DSL's [center(l)]. *)

type t = { row : int; col : int }

val make : row:int -> col:int -> t

val linf_distance : t -> t -> int
(** [max |r1 - r2| |c1 - c2|]. *)

val center_distance : d1:int -> d2:int -> t -> float
(** L-infinity distance to the continuous image center
    [((d1-1)/2, (d2-1)/2)]; half-integral for even dimensions. *)

val neighbors : d1:int -> d2:int -> t -> t list
(** The (up to 8) locations at L-infinity distance exactly 1, in row-major
    scan order — the location component of the paper's "closest pairs with
    respect to the location". *)

val all : d1:int -> d2:int -> t list
(** All locations in row-major order. *)

val by_center_distance : d1:int -> d2:int -> t array
(** All locations sorted by {!center_distance} ascending (center of the
    image first), ties broken row-major — the sketch's secondary
    initialization order. *)

val patch_cells : anchor:t -> h:int -> w:int -> t list
(** The [h * w] locations of the rectangle whose top-left corner is
    [anchor], in row-major order.  Purely arithmetic — bounds are the
    caller's concern (see {!patch_anchors}). *)

val patch_anchors : d1:int -> d2:int -> h:int -> w:int -> t list
(** All anchors for which an [h x w] patch lies entirely inside a
    [d1 x d2] image, in row-major order; empty when the patch does not
    fit. *)

val index : d2:int -> t -> int
(** Row-major flat index. *)

val of_index : d2:int -> int -> t

val in_bounds : d1:int -> d2:int -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

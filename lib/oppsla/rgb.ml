type t = { r : float; g : float; b : float }

let corners =
  Array.init 8 (fun k ->
      {
        r = (if k land 4 <> 0 then 1. else 0.);
        g = (if k land 2 <> 0 then 1. else 0.);
        b = (if k land 1 <> 0 then 1. else 0.);
      })

let corner k =
  if k < 0 || k >= 8 then invalid_arg "Rgb.corner: index out of [0, 8)";
  corners.(k)

let equal a b = a.r = b.r && a.g = b.g && a.b = b.b

let corner_index p =
  let rec find k = if k >= 8 then None else if equal corners.(k) p then Some k else find (k + 1) in
  find 0

let l1_distance a b =
  Float.abs (a.r -. b.r) +. Float.abs (a.g -. b.g) +. Float.abs (a.b -. b.b)

let of_image img ~row ~col =
  {
    r = Tensor.get img [| 0; row; col |];
    g = Tensor.get img [| 1; row; col |];
    b = Tensor.get img [| 2; row; col |];
  }

let write_to_image img ~row ~col p =
  Tensor.set img [| 0; row; col |] p.r;
  Tensor.set img [| 1; row; col |] p.g;
  Tensor.set img [| 2; row; col |] p.b

let corners_by_distance p =
  let idx = Array.init 8 (fun k -> k) in
  let dist = Array.map (fun c -> l1_distance p c) corners in
  (* Farthest first; stable tie-break on the corner index. *)
  Array.sort
    (fun a b ->
      match compare dist.(b) dist.(a) with 0 -> compare a b | c -> c)
    idx;
  idx

let max_val p = Float.max p.r (Float.max p.g p.b)
let min_val p = Float.min p.r (Float.min p.g p.b)
let avg_val p = (p.r +. p.g +. p.b) /. 3.

let pp fmt p = Format.fprintf fmt "(%.3f, %.3f, %.3f)" p.r p.g p.b
let to_string p = Format.asprintf "%a" pp p

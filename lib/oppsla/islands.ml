(* Island-model distributed synthesis (ROADMAP item 3).

   K Metropolis-Hastings chains run in lockstep rounds at different
   temperatures (beta_k = beta * ratio^k; island 0 is the coldest and
   most selective, the hotter chains explore).  Every migration_period
   rounds each island looks at its ring neighbour's best program and
   adopts it as its chain position if it beats its own incumbent —
   migration is a deterministic comparison on a fixed schedule, so it
   consumes no randomness.

   Determinism model: island k draws exclusively from two named streams
   of the caller's root seed ("islands/<k>" for the chain,
   "islands/<k>/early-stop" for the PAC visiting permutations).  Named
   streams depend only on (root, name), never on draw order, so a
   (K, domain-width, migration-period) configuration replays
   bit-identically from the same seed: the domain pool only fans the
   per-image attacks of one evaluation, whose merge is order-preserving
   (see Score.evaluate_parallel).  Islands are stepped sequentially
   within a round, which also makes one shared Score_cache store safe —
   at any instant an image's cache slot is touched by one evaluation.

   Checkpointing: every checkpoint_every rounds the full synthesis state
   — both PRNG streams, chain position, best, counters and the trace so
   far, per island — is serialized to a versioned, self-describing,
   checksummed text file (atomic tmp+rename).  A killed run resumed from
   that file replays the remaining rounds on the restored streams and
   converges to the same trace as an uninterrupted run.  Checkpoints are
   only ever written at round boundaries; a run stopped mid-round (query
   budget) never persists partial-round state. *)

module C = Condition

exception Checkpoint_error of string

let version_line = "oppsla-islands-checkpoint v1"

type entry = {
  round : int;
  island : int;
  program : C.program;
  avg_queries : float;
  accepted : bool;
  pruned : bool;
  queries_total : int;
}

type island_report = {
  island : int;
  beta : float;
  final : C.program;
  final_avg_queries : float;
  best : C.program;
  best_avg_queries : float;
  proposals : int;
  accepted : int;
  pruned : int;
  migrations_in : int;
  queries : int;
}

type outcome = {
  best : C.program;
  best_avg_queries : float;
  islands : island_report array;
  trace : entry list;
  synth_queries : int;
  rounds_completed : int;
  migrations : int;
  resumed_at : int option;
}

type config = {
  islands : int;
  beta : float;
  temperature_ratio : float;
  rounds : int;
  migration_period : int;
  goal : Sketch.goal;
  max_queries_per_image : int option;
  max_synth_queries : int option;
  batch : int;
  early_stop : Score.pac option;
  checkpoint : string option;
  checkpoint_every : int;
  on_round : int -> unit;
}

let default_config =
  {
    islands = 4;
    beta = 0.02;
    temperature_ratio = 0.5;
    rounds = 210;
    migration_period = 10;
    goal = Sketch.Untargeted;
    max_queries_per_image = None;
    max_synth_queries = None;
    batch = Sketch.default_batch;
    early_stop = None;
    checkpoint = None;
    checkpoint_every = 10;
    on_round = (fun _ -> ());
  }

(* Mutable per-island chain state; exactly what a checkpoint round-trips. *)
type island_state = {
  k : int;
  beta_k : float;
  mutable rng : Prng.t;
  mutable es : Prng.t;
  mutable current : C.program;
  mutable current_avg : float;
  mutable best : C.program;
  mutable best_avg : float;
  mutable proposals : int;
  mutable accepted : int;
  mutable pruned : int;
  mutable migrations_in : int;
  mutable queries : int;
}

let m_rounds = Telemetry.Metrics.counter "islands.rounds"
let m_steps = Telemetry.Metrics.counter "islands.steps"
let m_accepted = Telemetry.Metrics.counter "islands.accepted"
let m_pruned = Telemetry.Metrics.counter "islands.pruned"
let m_migrations = Telemetry.Metrics.counter "islands.migrations"
let m_checkpoints = Telemetry.Metrics.counter "islands.checkpoints"
let wd_run = Telemetry.Watchdog.loop "islands.run"

(* Watchdog.loop is get-or-create, so fetching a chain's slot by name is
   idempotent across resumes and repeated runs in one process. *)
let wd_chain k = Telemetry.Watchdog.loop (Printf.sprintf "islands.chain%d" k)

(* Dimensional step counter: one series per island, so the Prometheus
   exporter can show per-chain progress.  Low cardinality by
   construction — one label value per configured island. *)
let m_steps_by k =
  Telemetry.Metrics.counter
    ~labels:[ ("island", string_of_int k) ]
    "islands.steps.by"

(* Journal charge-site tag for island [k]'s chain: charges incurred by
   chain evaluations are attributed to "islands/<k>" regardless of which
   inner machinery (sketch, score evaluators) spends them. *)
let chain_site k f = Telemetry.Journal.with_site (Printf.sprintf "islands/%d" k) f

(* ----- checkpoint serialization ----- *)

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let ck_error fmt =
  Printf.ksprintf (fun m -> raise (Checkpoint_error ("checkpoint: " ^ m))) fmt

let goal_to_string = function
  | Sketch.Untargeted -> "untargeted"
  | Sketch.Targeted c -> Printf.sprintf "targeted %d" c

let goal_of_string s =
  match String.split_on_char ' ' s with
  | [ "untargeted" ] -> Sketch.Untargeted
  | [ "targeted"; c ] -> (
      match int_of_string_opt c with
      | Some c -> Sketch.Targeted c
      | None -> ck_error "bad goal %S" s)
  | _ -> ck_error "bad goal %S" s

let render_body ~config ~root_id ~training_n ~rounds_done ~synth_queries
    ~migrations ~states ~trace =
  let b = Buffer.create 4096 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  add "%s" version_line;
  add "islands %d" config.islands;
  add "training %d" training_n;
  add "beta %h" config.beta;
  add "temperature_ratio %h" config.temperature_ratio;
  add "migration_period %d" config.migration_period;
  add "goal %s" (goal_to_string config.goal);
  (match config.max_queries_per_image with
  | None -> add "max_queries_per_image none"
  | Some c -> add "max_queries_per_image %d" c);
  (match config.early_stop with
  | None -> add "early_stop none"
  | Some p ->
      add "early_stop %h %d %d %s" p.Score.delta p.Score.min_images
        p.Score.stage
        (match p.Score.range with
        | None -> "cap"
        | Some r -> Printf.sprintf "%h" r));
  add "root_id %s" root_id;
  add "rounds_done %d" rounds_done;
  add "synth_queries %d" synth_queries;
  add "migrations %d" migrations;
  Array.iter
    (fun st ->
      add "island %d" st.k;
      add "rng %s" (Prng.save st.rng);
      add "es %s" (Prng.save st.es);
      add "current_avg %h" st.current_avg;
      add "current %s" (Dsl.print_program st.current);
      add "best_avg %h" st.best_avg;
      add "best %s" (Dsl.print_program st.best);
      add "proposals %d" st.proposals;
      add "accepted %d" st.accepted;
      add "pruned %d" st.pruned;
      add "migrations_in %d" st.migrations_in;
      add "queries %d" st.queries)
    states;
  add "trace %d" (List.length trace);
  List.iter
    (fun e ->
      add "e %d %d %d %d %h %d %s" e.round e.island
        (if e.accepted then 1 else 0)
        (if e.pruned then 1 else 0)
        e.avg_queries e.queries_total
        (Dsl.print_program e.program))
    trace;
  Buffer.contents b

let write_checkpoint ~config ~root_id ~training_n ~rounds_done ~synth_queries
    ~migrations ~states ~trace file =
  Telemetry.Trace.span "islands.checkpoint" ~cat:"islands"
    ~args:(fun () ->
      [
        ("file", Telemetry.Trace.Str file);
        ("rounds_done", Telemetry.Trace.Int rounds_done);
      ])
  @@ fun () ->
  let body =
    render_body ~config ~root_id ~training_n ~rounds_done ~synth_queries
      ~migrations ~states ~trace
  in
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc body;
  Printf.fprintf oc "checksum %016Lx\n" (fnv1a64 body);
  close_out oc;
  Sys.rename tmp file;
  Telemetry.Postmortem.note_checkpoint
    (Printf.sprintf "%s (rounds_done %d)" file rounds_done);
  Telemetry.Counter.incr m_checkpoints

type loaded = {
  l_islands : int;
  l_training : int;
  l_beta : float;
  l_ratio : float;
  l_migration_period : int;
  l_goal : Sketch.goal;
  l_cap : int option;
  l_early_stop : Score.pac option;
  l_root_id : string;
  l_rounds_done : int;
  l_synth_queries : int;
  l_migrations : int;
  l_states : island_state array;
  l_trace : entry list;
}

let parse_program_ck s =
  match Dsl.parse_program s with
  | Ok p -> p
  | Error _ -> ck_error "unparseable program %S" s

let restore_rng s =
  try Prng.restore s
  with Invalid_argument m -> ck_error "bad generator state (%s)" m

let float_ck s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> ck_error "bad float %S" s

let int_ck s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> ck_error "bad integer %S" s

(* Split off the first [n] space-separated fields; the remainder (which
   may itself contain spaces, e.g. a program in concrete syntax) is
   returned verbatim. *)
let split_fields s n =
  let rec go start n acc =
    if n = 0 then (List.rev acc, String.sub s start (String.length s - start))
    else
      match String.index_from_opt s start ' ' with
      | Some i ->
          go (i + 1) (n - 1) (String.sub s start (i - start) :: acc)
      | None -> ck_error "truncated record %S" s
  in
  go 0 n []

let parse_body lines =
  let rem = ref lines in
  let next () =
    match !rem with
    | [] -> ck_error "truncated file"
    | l :: tl ->
        rem := tl;
        l
  in
  let expect key =
    let l = next () in
    let klen = String.length key in
    if
      String.length l > klen
      && String.sub l 0 klen = key
      && l.[klen] = ' '
    then String.sub l (klen + 1) (String.length l - klen - 1)
    else ck_error "expected %S record, found %S" key l
  in
  let expect_int key = int_ck (expect key) in
  let expect_float key = float_ck (expect key) in
  let l_islands = expect_int "islands" in
  let l_training = expect_int "training" in
  let l_beta = expect_float "beta" in
  let l_ratio = expect_float "temperature_ratio" in
  let l_migration_period = expect_int "migration_period" in
  let l_goal = goal_of_string (expect "goal") in
  let l_cap =
    match expect "max_queries_per_image" with
    | "none" -> None
    | s -> Some (int_ck s)
  in
  let l_early_stop =
    match expect "early_stop" with
    | "none" -> None
    | s -> (
        match String.split_on_char ' ' s with
        | [ delta; min_images; stage; range ] ->
            Some
              {
                Score.delta = float_ck delta;
                min_images = int_ck min_images;
                stage = int_ck stage;
                range =
                  (if range = "cap" then None else Some (float_ck range));
              }
        | _ -> ck_error "bad early_stop record %S" s)
  in
  let l_root_id = expect "root_id" in
  let l_rounds_done = expect_int "rounds_done" in
  let l_synth_queries = expect_int "synth_queries" in
  let l_migrations = expect_int "migrations" in
  if l_islands <= 0 then ck_error "non-positive island count %d" l_islands;
  let l_states =
    Array.init l_islands (fun k ->
        let k' = expect_int "island" in
        if k' <> k then ck_error "island %d out of order (found %d)" k k';
        let rng = restore_rng (expect "rng") in
        let es = restore_rng (expect "es") in
        let current_avg = expect_float "current_avg" in
        let current = parse_program_ck (expect "current") in
        let best_avg = expect_float "best_avg" in
        let best = parse_program_ck (expect "best") in
        let proposals = expect_int "proposals" in
        let accepted = expect_int "accepted" in
        let pruned = expect_int "pruned" in
        let migrations_in = expect_int "migrations_in" in
        let queries = expect_int "queries" in
        {
          k;
          beta_k = l_beta *. (l_ratio ** float_of_int k);
          rng;
          es;
          current;
          current_avg;
          best;
          best_avg;
          proposals;
          accepted;
          pruned;
          migrations_in;
          queries;
        })
  in
  let n_entries = expect_int "trace" in
  let l_trace =
    List.init n_entries (fun _ ->
        let fields, program = split_fields (next ()) 7 in
        match fields with
        | [ "e"; round; island; accepted; pruned; avg; queries_total ] ->
            {
              round = int_ck round;
              island = int_ck island;
              program = parse_program_ck program;
              avg_queries = float_ck avg;
              accepted = int_ck accepted <> 0;
              pruned = int_ck pruned <> 0;
              queries_total = int_ck queries_total;
            }
        | _ -> ck_error "bad trace record")
  in
  if !rem <> [] then ck_error "trailing data after trace";
  {
    l_islands;
    l_training;
    l_beta;
    l_ratio;
    l_migration_period;
    l_goal;
    l_cap;
    l_early_stop;
    l_root_id;
    l_rounds_done;
    l_synth_queries;
    l_migrations;
    l_states;
    l_trace;
  }

let load_checkpoint file =
  if not (Sys.file_exists file) then
    raise (Checkpoint_error (Printf.sprintf "checkpoint: %s does not exist" file));
  let ic = open_in_bin file in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines =
    match List.rev (String.split_on_char '\n' s) with
    | "" :: rev -> List.rev rev
    | _ -> ck_error "missing final newline (truncated file?)"
  in
  (* Version is judged before the checksum so a future format bumps to a
     clear "unsupported version" instead of "corrupted". *)
  (match lines with
  | first :: _ when first = version_line -> ()
  | first :: _
    when String.length first >= 26
         && String.sub first 0 26 = "oppsla-islands-checkpoint " ->
      ck_error "unsupported version %S (this build reads %S)" first
        version_line
  | _ -> ck_error "%s is not an islands checkpoint" file);
  match List.rev lines with
  | checksum_line :: body_rev ->
      let body_lines = List.rev body_rev in
      let body = String.concat "\n" body_lines ^ "\n" in
      (match String.split_on_char ' ' checksum_line with
      | [ "checksum"; hex ] ->
          let expected = Printf.sprintf "%016Lx" (fnv1a64 body) in
          if hex <> expected then
            ck_error "checksum mismatch (file is corrupted or truncated)"
      | _ -> ck_error "missing checksum line (truncated file?)");
      parse_body (List.tl body_lines)
  | [] -> ck_error "empty file"

type info = {
  info_islands : int;
  info_training : int;
  info_rounds_done : int;
  info_synth_queries : int;
  info_trace_length : int;
}

let checkpoint_info file =
  let l = load_checkpoint file in
  {
    info_islands = l.l_islands;
    info_training = l.l_training;
    info_rounds_done = l.l_rounds_done;
    info_synth_queries = l.l_synth_queries;
    info_trace_length = List.length l.l_trace;
  }

let validate_loaded ~config ~root_id ~training_n l =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        raise
          (Checkpoint_error
             ("checkpoint does not match this configuration: " ^ m)))
      fmt
  in
  if l.l_islands <> config.islands then
    fail "islands %d (file) vs %d (run)" l.l_islands config.islands;
  if l.l_training <> training_n then
    fail "training size %d (file) vs %d (run)" l.l_training training_n;
  if l.l_beta <> config.beta then
    fail "beta %h (file) vs %h (run)" l.l_beta config.beta;
  if l.l_ratio <> config.temperature_ratio then
    fail "temperature_ratio %h (file) vs %h (run)" l.l_ratio
      config.temperature_ratio;
  if l.l_migration_period <> config.migration_period then
    fail "migration_period %d (file) vs %d (run)" l.l_migration_period
      config.migration_period;
  if l.l_goal <> config.goal then
    fail "goal %s (file) vs %s (run)" (goal_to_string l.l_goal)
      (goal_to_string config.goal);
  if l.l_cap <> config.max_queries_per_image then
    fail "max_queries_per_image differs";
  if l.l_early_stop <> config.early_stop then fail "early_stop differs";
  if l.l_root_id <> root_id then
    fail "seed differs (root fingerprint %s vs %s)" l.l_root_id root_id

(* ----- the synthesis loop ----- *)

let synthesize ?(config = default_config) ?pool ?caches ?(resume = false) g
    oracle ~training =
  if Array.length training = 0 then
    invalid_arg "Islands.synthesize: empty training set";
  if config.islands <= 0 then
    invalid_arg "Islands.synthesize: islands must be positive";
  if config.checkpoint_every <= 0 then
    invalid_arg "Islands.synthesize: checkpoint_every must be positive";
  let n = Array.length training in
  let gen_config = Gen.config_for_image (fst training.(0)) in
  let root_id = Prng.save (Prng.named_stream g "islands/root-id") in
  let synth_queries = ref 0 and migrations = ref 0 in
  let trace_rev = ref [] in
  let record ~round st program avg accepted pruned =
    let e =
      {
        round;
        island = st.k;
        program;
        avg_queries = avg;
        accepted;
        pruned;
        queries_total = !synth_queries;
      }
    in
    trace_rev := e :: !trace_rev;
    Telemetry.Counter.incr m_steps;
    Telemetry.Counter.incr (m_steps_by st.k);
    if accepted then Telemetry.Counter.incr m_accepted;
    if pruned then Telemetry.Counter.incr m_pruned;
    Telemetry.Watchdog.beat ~iteration:round ~queries:!synth_queries
      (wd_chain st.k);
    Telemetry.Watchdog.beat ~iteration:round ~queries:!synth_queries wd_run;
    Telemetry.Trace.instant "islands.step" ~cat:"islands"
      ~args:(fun () ->
        [
          ("round", Telemetry.Trace.Int round);
          ("island", Telemetry.Trace.Int st.k);
          ("avg_queries", Telemetry.Trace.Float avg);
          ("accepted", Telemetry.Trace.Bool accepted);
          ("pruned", Telemetry.Trace.Bool pruned);
          ("synth_queries_total", Telemetry.Trace.Int !synth_queries);
        ])
  in
  let evaluate_full program =
    match pool with
    | Some pool ->
        Score.evaluate_parallel ?max_queries:config.max_queries_per_image
          ~goal:config.goal ?caches ~batch:config.batch ~pool oracle program
          training
    | None ->
        Score.evaluate ?max_queries:config.max_queries_per_image
          ~goal:config.goal ?caches ~batch:config.batch oracle program
          training
  in
  let fresh_island k =
    {
      k;
      beta_k = config.beta *. (config.temperature_ratio ** float_of_int k);
      rng = Prng.named_stream g (Printf.sprintf "islands/%d" k);
      es = Prng.named_stream g (Printf.sprintf "islands/%d/early-stop" k);
      current = C.const_false_program;
      current_avg = infinity;
      best = C.const_false_program;
      best_avg = infinity;
      proposals = 0;
      accepted = 0;
      pruned = 0;
      migrations_in = 0;
      queries = 0;
    }
  in
  let start_round = ref 1 in
  let resumed_at = ref None in
  let states =
    if resume then begin
      let file =
        match config.checkpoint with
        | Some f -> f
        | None ->
            invalid_arg "Islands.synthesize: ~resume requires config.checkpoint"
      in
      let l = load_checkpoint file in
      validate_loaded ~config ~root_id ~training_n:n l;
      synth_queries := l.l_synth_queries;
      migrations := l.l_migrations;
      trace_rev := List.rev l.l_trace;
      start_round := l.l_rounds_done + 1;
      resumed_at := Some l.l_rounds_done;
      l.l_states
    end
    else Array.init config.islands fresh_island
  in
  let budget_left () =
    match config.max_synth_queries with
    | None -> true
    | Some b -> !synth_queries < b
  in
  let seed st =
    chain_site st.k @@ fun () ->
    Telemetry.Watchdog.with_loop (wd_chain st.k) @@ fun () ->
    st.current <- Gen.random_program gen_config st.rng;
    let e = evaluate_full st.current in
    synth_queries := !synth_queries + e.Score.total_queries;
    st.queries <- st.queries + e.Score.total_queries;
    st.current_avg <- e.Score.avg_queries;
    st.best <- st.current;
    st.best_avg <- e.Score.avg_queries;
    record ~round:0 st st.current st.current_avg true false
  in
  let step ~round st =
    chain_site st.k @@ fun () ->
    Telemetry.Watchdog.with_loop (wd_chain st.k) @@ fun () ->
    let slot = Prng.int st.rng 13 in
    let proposal = Gen.mutate_slot gen_config st.rng st.current ~slot in
    st.proposals <- st.proposals + 1;
    let verdict =
      match config.early_stop with
      | None ->
          let e = evaluate_full proposal in
          synth_queries := !synth_queries + e.Score.total_queries;
          st.queries <- st.queries + e.Score.total_queries;
          `Avg e.Score.avg_queries
      | Some pac -> (
          let order = Prng.permutation st.es n in
          match
            Score.evaluate_pac ?max_queries:config.max_queries_per_image
              ~goal:config.goal ?caches ~batch:config.batch ?pool ~pac
              ~threshold:st.current_avg ~order oracle proposal training
          with
          | Score.Complete e ->
              synth_queries := !synth_queries + e.Score.total_queries;
              st.queries <- st.queries + e.Score.total_queries;
              `Avg e.Score.avg_queries
          | Score.Pruned p ->
              synth_queries := !synth_queries + p.Score.queries_spent;
              st.queries <- st.queries + p.Score.queries_spent;
              `Cut p.Score.lower_bound)
    in
    match verdict with
    | `Avg avg ->
        let ratio =
          Score.acceptance_ratio ~beta:st.beta_k ~current:st.current_avg
            ~proposal:avg
        in
        let accepted = Prng.uniform st.rng < ratio in
        if accepted then begin
          st.current <- proposal;
          st.current_avg <- avg;
          st.accepted <- st.accepted + 1
        end;
        if avg < st.best_avg then begin
          st.best <- proposal;
          st.best_avg <- avg
        end;
        record ~round st proposal avg accepted false
    | `Cut lower_bound ->
        (* Pruned proposals are rejected without an acceptance draw —
           see Synthesizer.config.early_stop for the contract. *)
        st.pruned <- st.pruned + 1;
        record ~round st proposal lower_bound false true
  in
  let migrate ~round =
    let incoming = Array.map (fun st -> (st.best, st.best_avg)) states in
    Array.iteri
      (fun k st ->
        let best_in, avg_in = incoming.((k + 1) mod Array.length states) in
        if avg_in < st.current_avg then begin
          st.current <- best_in;
          st.current_avg <- avg_in;
          st.migrations_in <- st.migrations_in + 1;
          incr migrations;
          Telemetry.Counter.incr m_migrations;
          if avg_in < st.best_avg then begin
            st.best <- best_in;
            st.best_avg <- avg_in
          end;
          Telemetry.Trace.instant "islands.migration" ~cat:"islands"
            ~args:(fun () ->
              [
                ("round", Telemetry.Trace.Int round);
                ("island", Telemetry.Trace.Int k);
                ("avg_queries", Telemetry.Trace.Float avg_in);
              ])
        end)
      states
  in
  Telemetry.Watchdog.with_loop wd_run @@ fun () ->
  if not resume then Array.iter seed states;
  let completed = ref (!start_round - 1) in
  let stopped = ref false in
  let round = ref !start_round in
  while !round <= config.rounds && not !stopped do
    let r = !round in
    Telemetry.Trace.span "islands.round" ~cat:"islands"
      ~args:(fun () -> [ ("round", Telemetry.Trace.Int r) ])
      (fun () ->
        Array.iter
          (fun st -> if budget_left () then step ~round:r st else stopped := true)
          states;
        if not !stopped then begin
          if
            config.migration_period > 0
            && r mod config.migration_period = 0
            && Array.length states > 1
          then migrate ~round:r;
          completed := r;
          Telemetry.Counter.incr m_rounds;
          (match config.checkpoint with
          | Some file when r mod config.checkpoint_every = 0 ->
              write_checkpoint ~config ~root_id ~training_n:n ~rounds_done:r
                ~synth_queries:!synth_queries ~migrations:!migrations ~states
                ~trace:(List.rev !trace_rev) file
          | _ -> ());
          config.on_round r
        end);
    incr round
  done;
  (* A final round-boundary checkpoint makes a later --resume a graceful
     no-op; mid-round (budget-stopped) state is never persisted. *)
  (match config.checkpoint with
  | Some file when (not !stopped) && !completed >= 1 ->
      if !completed mod config.checkpoint_every <> 0 then
        write_checkpoint ~config ~root_id ~training_n:n
          ~rounds_done:!completed ~synth_queries:!synth_queries
          ~migrations:!migrations ~states ~trace:(List.rev !trace_rev) file
  | _ -> ());
  let best_state =
    Array.fold_left
      (fun acc st -> if st.best_avg < acc.best_avg then st else acc)
      states.(0) states
  in
  {
    best = best_state.best;
    best_avg_queries = best_state.best_avg;
    islands =
      Array.map
        (fun st ->
          {
            island = st.k;
            beta = st.beta_k;
            final = st.current;
            final_avg_queries = st.current_avg;
            best = st.best;
            best_avg_queries = st.best_avg;
            proposals = st.proposals;
            accepted = st.accepted;
            pruned = st.pruned;
            migrations_in = st.migrations_in;
            queries = st.queries;
          })
        states;
    trace = List.rev !trace_rev;
    synth_queries = !synth_queries;
    rounds_completed = !completed;
    migrations = !migrations;
    resumed_at = !resumed_at;
  }

type t = {
  d1 : int;
  d2 : int;
  next : int array; (* -1 = none *)
  prev : int array;
  present : bool array;
  seq : int array;
  mutable next_seq : int;
  mutable head : int; (* -1 = empty *)
  mutable tail : int;
  mutable size : int;
  loc_corners : int array; (* per-location bitmask of enqueued corners *)
}

let nil = -1

let init ~d1 ~d2 order =
  if d1 <= 0 || d2 <= 0 then invalid_arg "Pair_queue.init: empty image";
  let capacity = Pair.count ~d1 ~d2 in
  let q =
    {
      d1;
      d2;
      next = Array.make capacity nil;
      prev = Array.make capacity nil;
      present = Array.make capacity false;
      seq = Array.make capacity 0;
      next_seq = 0;
      head = nil;
      tail = nil;
      size = 0;
      loc_corners = Array.make (d1 * d2) 0;
    }
  in
  List.iter
    (fun (p : Pair.t) ->
      if not (Location.in_bounds ~d1 ~d2 p.loc) then
        invalid_arg
          (Printf.sprintf "Pair_queue.init: location %s out of bounds"
             (Location.to_string p.loc));
      let id = Pair.id ~d2 p in
      if q.present.(id) then
        invalid_arg
          (Printf.sprintf "Pair_queue.init: duplicate pair %s"
             (Pair.to_string p));
      q.present.(id) <- true;
      q.seq.(id) <- q.next_seq;
      q.next_seq <- q.next_seq + 1;
      q.prev.(id) <- q.tail;
      q.next.(id) <- nil;
      if q.tail = nil then q.head <- id else q.next.(q.tail) <- id;
      q.tail <- id;
      q.size <- q.size + 1;
      let li = Location.index ~d2 p.loc in
      q.loc_corners.(li) <- q.loc_corners.(li) lor (1 lsl p.corner))
    order;
  q

let full_space ~d1 ~d2 ~image =
  let locs_by_center = Location.by_center_distance ~d1 ~d2 in
  (* rank.(loc).(k) = the location's k-th farthest corner from the
     original pixel. *)
  let rank =
    Array.map
      (fun (loc : Location.t) ->
        Rgb.corners_by_distance (Rgb.of_image image ~row:loc.row ~col:loc.col))
      locs_by_center
  in
  let order = ref [] in
  for k = 7 downto 0 do
    for li = Array.length locs_by_center - 1 downto 0 do
      order :=
        Pair.make ~loc:locs_by_center.(li) ~corner:rank.(li).(k) :: !order
    done
  done;
  init ~d1 ~d2 !order

let detach q id =
  let p = q.prev.(id) and n = q.next.(id) in
  if p = nil then q.head <- n else q.next.(p) <- n;
  if n = nil then q.tail <- p else q.prev.(n) <- p;
  q.present.(id) <- false;
  q.size <- q.size - 1;
  let li = id / 8 and corner = id mod 8 in
  q.loc_corners.(li) <- q.loc_corners.(li) land lnot (1 lsl corner)

let attach_back q id =
  q.present.(id) <- true;
  q.seq.(id) <- q.next_seq;
  q.next_seq <- q.next_seq + 1;
  q.prev.(id) <- q.tail;
  q.next.(id) <- nil;
  if q.tail = nil then q.head <- id else q.next.(q.tail) <- id;
  q.tail <- id;
  q.size <- q.size + 1;
  let li = id / 8 and corner = id mod 8 in
  q.loc_corners.(li) <- q.loc_corners.(li) lor (1 lsl corner)

let pop q =
  if q.head = nil then None
  else begin
    let id = q.head in
    detach q id;
    Some (Pair.of_id ~d2:q.d2 id)
  end

let require_member q (p : Pair.t) op =
  let id = Pair.id ~d2:q.d2 p in
  if not q.present.(id) then
    invalid_arg
      (Printf.sprintf "Pair_queue.%s: pair %s not in queue" op
         (Pair.to_string p));
  id

let push_back q p =
  let id = require_member q p "push_back" in
  detach q id;
  attach_back q id

let remove q p =
  let id = require_member q p "remove" in
  detach q id

let mem q p = q.present.(Pair.id ~d2:q.d2 p)

let first_with_location q (loc : Location.t) =
  if not (Location.in_bounds ~d1:q.d1 ~d2:q.d2 loc) then None
  else begin
    let li = Location.index ~d2:q.d2 loc in
    let mask = q.loc_corners.(li) in
    if mask = 0 then None
    else begin
      (* The queue order equals ascending [seq] order (see the interface
         comment), so the front-most member corner minimizes [seq]. *)
      let best = ref nil in
      for corner = 0 to 7 do
        if mask land (1 lsl corner) <> 0 then begin
          let id = (li * 8) + corner in
          if !best = nil || q.seq.(id) < q.seq.(!best) then best := id
        end
      done;
      Some (Pair.of_id ~d2:q.d2 !best)
    end
  end

let front_nth q n =
  if n < 0 then invalid_arg "Pair_queue.front_nth: negative index";
  let rec walk id k =
    if id = nil then None
    else if k = 0 then Some (Pair.of_id ~d2:q.d2 id)
    else walk q.next.(id) (k - 1)
  in
  walk q.head n

let length q = q.size
let is_empty q = q.size = 0

let to_list q =
  let rec walk id acc =
    if id = nil then List.rev acc
    else walk q.next.(id) (Pair.of_id ~d2:q.d2 id :: acc)
  in
  walk q.head []

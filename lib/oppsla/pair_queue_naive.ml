type t = { d1 : int; d2 : int; mutable pairs : Pair.t list }

let init ~d1 ~d2 order =
  if d1 <= 0 || d2 <= 0 then invalid_arg "Pair_queue_naive.init: empty image";
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (p : Pair.t) ->
      if not (Location.in_bounds ~d1 ~d2 p.loc) then
        invalid_arg
          (Printf.sprintf "Pair_queue_naive.init: location %s out of bounds"
             (Location.to_string p.loc));
      let id = Pair.id ~d2 p in
      if Hashtbl.mem seen id then
        invalid_arg
          (Printf.sprintf "Pair_queue_naive.init: duplicate pair %s"
             (Pair.to_string p));
      Hashtbl.add seen id ())
    order;
  { d1; d2; pairs = order }

let full_space ~d1 ~d2 ~image =
  let indexed = Pair_queue.full_space ~d1 ~d2 ~image in
  { d1; d2; pairs = Pair_queue.to_list indexed }

let pop q =
  match q.pairs with
  | [] -> None
  | p :: rest ->
      q.pairs <- rest;
      Some p

let mem q p = List.exists (Pair.equal p) q.pairs

let require_member q p op =
  if not (mem q p) then
    invalid_arg
      (Printf.sprintf "Pair_queue_naive.%s: pair %s not in queue" op
         (Pair.to_string p))

let push_back q p =
  require_member q p "push_back";
  q.pairs <- List.filter (fun x -> not (Pair.equal x p)) q.pairs @ [ p ]

let remove q p =
  require_member q p "remove";
  q.pairs <- List.filter (fun x -> not (Pair.equal x p)) q.pairs

let first_with_location q loc =
  if Location.in_bounds ~d1:q.d1 ~d2:q.d2 loc then
    List.find_opt (fun (p : Pair.t) -> Location.equal p.loc loc) q.pairs
  else None

let length q = List.length q.pairs
let is_empty q = q.pairs = []
let to_list q = q.pairs

type goal = Untargeted | Targeted of int

type result = {
  adversarial : (Pair.t * Tensor.t) option;
  queries : int;
}

let goal_reached goal ~true_class predicted =
  match goal with
  | Untargeted -> predicted <> true_class
  | Targeted target -> predicted = target

let perturb x (pair : Pair.t) =
  let x' = Tensor.copy x in
  Rgb.write_to_image x' ~row:pair.loc.Location.row ~col:pair.loc.Location.col
    (Pair.rgb pair);
  x'

exception Found of Pair.t * Tensor.t
exception Out_of_queries

(* The in-queue neighbours of [pair] with the same corner — the paper's
   "closest pairs with respect to the location". *)
let closest_loc queue ~d1 ~d2 (pair : Pair.t) =
  Location.neighbors ~d1 ~d2 pair.loc
  |> List.filter_map (fun loc ->
         let candidate = Pair.make ~loc ~corner:pair.corner in
         if Pair_queue.mem queue candidate then Some candidate else None)

let cache_key (pair : Pair.t) =
  Score_cache.Corner
    {
      row = pair.loc.Location.row;
      col = pair.loc.Location.col;
      corner = pair.corner;
    }

let default_batch = 16

(* Attack-level telemetry: outcome counters plus the
   queries-to-success/-failure distributions — the histogram form of the
   paper's objective (average queries per successful attack).  All
   observation, no accounting: query counts and success flags stay
   bit-identical with telemetry on or off. *)
let m_attacks = Telemetry.Metrics.counter "attack.attempts"
let m_successes = Telemetry.Metrics.counter "attack.successes"
let m_failures = Telemetry.Metrics.counter "attack.failures"
let h_queries_to_success =
  Telemetry.Metrics.histogram "attack.queries_to_success"
let h_queries_to_failure =
  Telemetry.Metrics.histogram "attack.queries_to_failure"

(* Stall-watchdog heartbeat: every metered query beats, so a sketch
   attack that stops beating has genuinely wedged (or the oracle has). *)
let wd_attack = Telemetry.Watchdog.loop "sketch.attack"

let attack ?max_queries ?(goal = Untargeted) ?cache ?(batch = default_batch)
    ?(on_query = fun _ _ _ -> ()) oracle program ~image ~true_class =
  let run () =
  let cache =
    match cache with Some _ as c -> c | None -> Oracle.cache oracle
  in
  let d1 = Tensor.dim image 1 and d2 = Tensor.dim image 2 in
  let limit =
    match max_queries with Some q -> q | None -> Pair.count ~d1 ~d2
  in
  (* Unmetered by design; see the interface comment.  The clean scores
     share the per-image cache (key [Clean]) so repeated attacks on the
     same image pay the clean forward pass once.  The cache stores the
     raw vector; what the attack sees passes through the oracle's
     observation point, so under a label-only oracle the clean context
     is the one-hot of the clean label. *)
  let clean_scores =
    Oracle.observe oracle
      (match cache with
      | None -> Oracle.unmetered_scores oracle image
      | Some c ->
          Score_cache.find_or_add c Score_cache.Clean ~compute:(fun () ->
              Oracle.unmetered_scores oracle image))
  in
  let spent = ref 0 in
  let batcher = Batcher.create ?cache ~width:batch oracle in
  let candidate_of pair =
    { Batcher.key = cache_key pair; input = (fun () -> perturb image pair) }
  in
  (* Query a candidate pair, possibly served from the batcher's
     speculative buffer.  Raises [Found] on success and [Out_of_queries]
     when either the local cap or the oracle budget is hit.  The
     perturbed tensor is only materialized on a cache/buffer miss (or on
     success, for the result). *)
  let check ?speculate pair =
    if !spent >= limit then raise Out_of_queries;
    (* [observe] is the threat-model boundary: the batcher resolves the
       raw score vector (cache and keys are mode-blind), and everything
       downstream of this point — conditions, [on_query], the success
       test — only sees what the oracle's mode reveals.  The argmax of a
       one-hot is the argmax of the raw vector, so success detection is
       mode-independent; [Score_diff] on one-hot contexts becomes the
       label-flip indicator. *)
    let scores =
      try
        Oracle.observe oracle
          (Batcher.query batcher ?speculate (candidate_of pair))
      with Oracle.Budget_exhausted _ -> raise Out_of_queries
    in
    incr spent;
    Telemetry.Watchdog.beat ~queries:!spent wd_attack;
    on_query !spent pair scores;
    if goal_reached goal ~true_class (Tensor.argmax scores) then
      raise (Found (pair, perturb image pair));
    scores
  in
  let ctx_of pair perturbed_scores : Condition.ctx =
    { d1; d2; image; true_class; clean_scores; pair; perturbed_scores }
  in
  let queue = Pair_queue.full_space ~d1 ~d2 ~image in
  let b1, b2, b3, b4 = Condition.conditions program in
  (* Speculation for the main loop: if no condition fires on this pair
     (the common case — and the only case for the Sketch+False baseline),
     the next candidates are exactly the queue's front entries.  Any
     condition that does fire mutates the queue or detours through the
     eager phase, which changes the next key and makes the batcher
     discard its buffer — accounting stays exact either way.  Filling is
     capped by the local query budget so the tail of an attack never
     over-prepares. *)
  let speculate_from_queue i =
    if i >= limit - !spent - 1 then None
    else Option.map candidate_of (Pair_queue.front_nth queue i)
  in
  try
    let rec main_loop () =
      match Pair_queue.pop queue with
      | None -> { adversarial = None; queries = !spent }
      | Some pair ->
          let ctx = ctx_of pair (check ~speculate:speculate_from_queue pair) in
          if Condition.eval b1 ctx then
            List.iter (Pair_queue.push_back queue)
              (closest_loc queue ~d1 ~d2 pair);
          if Condition.eval b2 ctx then begin
            match Pair_queue.first_with_location queue pair.loc with
            | Some next_pair -> Pair_queue.push_back queue next_pair
            | None -> ()
          end;
          eager_phase ctx;
          main_loop ()
    (* Eager checking (lines 7-24): pairs pulled out of the queue and
       queried immediately, breadth-first through both closeness
       relations. *)
    and eager_phase seed_ctx =
      let loc_q = Queue.create () and pert_q = Queue.create () in
      Queue.add seed_ctx loc_q;
      Queue.add seed_ctx pert_q;
      let expand_into ctx'' =
        Queue.add ctx'' loc_q;
        Queue.add ctx'' pert_q
      in
      while not (Queue.is_empty loc_q && Queue.is_empty pert_q) do
        while not (Queue.is_empty loc_q) do
          let ctx' = Queue.pop loc_q in
          if Condition.eval b3 ctx' then
            List.iter
              (fun pair'' ->
                Pair_queue.remove queue pair'';
                expand_into (ctx_of pair'' (check pair'')))
              (closest_loc queue ~d1 ~d2 ctx'.Condition.pair)
        done;
        while not (Queue.is_empty pert_q) do
          let ctx' = Queue.pop pert_q in
          if Condition.eval b4 ctx' then begin
            match
              Pair_queue.first_with_location queue
                ctx'.Condition.pair.Pair.loc
            with
            | None -> ()
            | Some pair'' ->
                Pair_queue.remove queue pair'';
                expand_into (ctx_of pair'' (check pair''))
          end
        done
      done
    in
    main_loop ()
  with
  | Found (pair, candidate) ->
      { adversarial = Some (pair, candidate); queries = !spent }
  | Out_of_queries -> { adversarial = None; queries = !spent }
  in
  Telemetry.Counter.incr m_attacks;
  let outcome = ref None in
  Telemetry.Trace.span "sketch.attack" ~cat:"attack"
    ~args:(fun () ->
      match !outcome with
      | None -> []
      | Some r ->
          [
            ("queries", Telemetry.Trace.Int r.queries);
            ("success", Telemetry.Trace.Bool (r.adversarial <> None));
            ("true_class", Telemetry.Trace.Int true_class);
            ("batch", Telemetry.Trace.Int batch);
          ])
    (fun () ->
      (* Journal charge site: "sketch" unless an outer tag (synth, an
         island chain) already claimed the charges. *)
      let r =
        Telemetry.Journal.with_default_site "sketch" @@ fun () ->
        Telemetry.Watchdog.with_loop wd_attack run
      in
      outcome := Some r;
      let q = float_of_int r.queries in
      (match r.adversarial with
      | Some _ ->
          Telemetry.Counter.incr m_successes;
          Telemetry.Histogram.observe h_queries_to_success q
      | None ->
          Telemetry.Counter.incr m_failures;
          Telemetry.Histogram.observe h_queries_to_failure q);
      r)

let success_exists ?(goal = Untargeted) oracle ~image ~true_class =
  let d1 = Tensor.dim image 1 and d2 = Tensor.dim image 2 in
  let flips pair =
    goal_reached goal ~true_class
      (Oracle.unmetered_classify oracle (perturb image pair))
  in
  List.exists
    (fun loc ->
      let rec any corner =
        corner < 8 && (flips (Pair.make ~loc ~corner) || any (corner + 1))
      in
      any 0)
    (Location.all ~d1 ~d2)

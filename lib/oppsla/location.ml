type t = { row : int; col : int }

let make ~row ~col = { row; col }

let linf_distance a b =
  max (abs (a.row - b.row)) (abs (a.col - b.col))

let center_distance ~d1 ~d2 l =
  let cr = float_of_int (d1 - 1) /. 2. and cc = float_of_int (d2 - 1) /. 2. in
  Float.max
    (Float.abs (float_of_int l.row -. cr))
    (Float.abs (float_of_int l.col -. cc))

let in_bounds ~d1 ~d2 l = l.row >= 0 && l.row < d1 && l.col >= 0 && l.col < d2

let neighbors ~d1 ~d2 l =
  let out = ref [] in
  for dr = 1 downto -1 do
    for dc = 1 downto -1 do
      if dr <> 0 || dc <> 0 then begin
        let n = { row = l.row + dr; col = l.col + dc } in
        if in_bounds ~d1 ~d2 n then out := n :: !out
      end
    done
  done;
  !out

let all ~d1 ~d2 =
  List.concat
    (List.init d1 (fun row -> List.init d2 (fun col -> { row; col })))

let by_center_distance ~d1 ~d2 =
  let locs = Array.of_list (all ~d1 ~d2) in
  let dist = Array.map (center_distance ~d1 ~d2) locs in
  let idx = Array.init (Array.length locs) (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare dist.(a) dist.(b) with 0 -> compare a b | c -> c)
    idx;
  Array.map (fun i -> locs.(i)) idx

let patch_cells ~anchor ~h ~w =
  List.concat
    (List.init h (fun dr ->
         List.init w (fun dc ->
             { row = anchor.row + dr; col = anchor.col + dc })))

let patch_anchors ~d1 ~d2 ~h ~w =
  if h < 1 || w < 1 || h > d1 || w > d2 then []
  else
    List.concat
      (List.init
         (d1 - h + 1)
         (fun row -> List.init (d2 - w + 1) (fun col -> { row; col })))

let index ~d2 l = (l.row * d2) + l.col
let of_index ~d2 i = { row = i / d2; col = i mod d2 }
let equal a b = a.row = b.row && a.col = b.col
let pp fmt l = Format.fprintf fmt "(%d, %d)" l.row l.col
let to_string l = Format.asprintf "%a" pp l

type pixel_expr = Orig | Pert

type func =
  | Max of pixel_expr
  | Min of pixel_expr
  | Avg of pixel_expr
  | Score_diff
  | Center

type cmp = Lt | Gt

type t =
  | Const of bool
  | Cmp of { func : func; cmp : cmp; threshold : float }

type program = { b1 : t; b2 : t; b3 : t; b4 : t }

let const_false_program =
  { b1 = Const false; b2 = Const false; b3 = Const false; b4 = Const false }

type ctx = {
  d1 : int;
  d2 : int;
  image : Tensor.t;
  true_class : int;
  clean_scores : Tensor.t;
  pair : Pair.t;
  perturbed_scores : Tensor.t;
}

let pixel_of ctx = function
  | Orig ->
      Rgb.of_image ctx.image ~row:ctx.pair.Pair.loc.Location.row
        ~col:ctx.pair.Pair.loc.Location.col
  | Pert -> Pair.rgb ctx.pair

let eval_func f ctx =
  match f with
  | Max p -> Rgb.max_val (pixel_of ctx p)
  | Min p -> Rgb.min_val (pixel_of ctx p)
  | Avg p -> Rgb.avg_val (pixel_of ctx p)
  | Score_diff ->
      Tensor.get_flat ctx.clean_scores ctx.true_class
      -. Tensor.get_flat ctx.perturbed_scores ctx.true_class
  | Center -> Location.center_distance ~d1:ctx.d1 ~d2:ctx.d2 ctx.pair.Pair.loc

let eval c ctx =
  match c with
  | Const b -> b
  | Cmp { func; cmp; threshold } -> (
      let v = eval_func func ctx in
      match cmp with Lt -> v < threshold | Gt -> v > threshold)

let conditions p = (p.b1, p.b2, p.b3, p.b4)

let program_of_array = function
  | [| b1; b2; b3; b4 |] -> { b1; b2; b3; b4 }
  | a ->
      invalid_arg
        (Printf.sprintf "Condition.program_of_array: %d conditions, need 4"
           (Array.length a))

let program_to_array p = [| p.b1; p.b2; p.b3; p.b4 |]

let equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Cmp x, Cmp y -> x.func = y.func && x.cmp = y.cmp && x.threshold = y.threshold
  | Const _, Cmp _ | Cmp _, Const _ -> false

let equal_program p q =
  equal p.b1 q.b1 && equal p.b2 q.b2 && equal p.b3 q.b3 && equal p.b4 q.b4

let pixel_name = function Orig -> "orig" | Pert -> "pert"

let func_name = function
  | Max p -> Printf.sprintf "max(%s)" (pixel_name p)
  | Min p -> Printf.sprintf "min(%s)" (pixel_name p)
  | Avg p -> Printf.sprintf "avg(%s)" (pixel_name p)
  | Score_diff -> "score_diff"
  | Center -> "center"

(* Shortest decimal form that parses back to exactly the same float, so
   the DSL round-trips bit-for-bit (program caches rely on this). *)
let float_repr v =
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let pp fmt = function
  | Const b -> Format.fprintf fmt "%b" b
  | Cmp { func; cmp; threshold } ->
      Format.fprintf fmt "%s %s %s" (func_name func)
        (match cmp with Lt -> "<" | Gt -> ">")
        (float_repr threshold)

let pp_program fmt p =
  Format.fprintf fmt "B1: %a; B2: %a; B3: %a; B4: %a" pp p.b1 pp p.b2 pp p.b3
    pp p.b4

let to_string c = Format.asprintf "%a" pp c
let program_to_string p = Format.asprintf "%a" pp_program p

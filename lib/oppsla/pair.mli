(** Location-perturbation pairs: the atoms of the attack search space.

    A pair is a pixel location together with a corner of the RGB cube
    (identified by its index in {!Rgb.corners}).  For a [d1 x d2] image
    there are [8 * d1 * d2] pairs; each has a dense integer id used by
    {!Pair_queue} for O(1) bookkeeping. *)

type t = { loc : Location.t; corner : int }

val make : loc:Location.t -> corner:int -> t
(** Raises [Invalid_argument] if [corner] is outside [0, 8). *)

val rgb : t -> Rgb.t
(** The perturbation value of the pair's corner. *)

val id : d2:int -> t -> int
(** Dense id: [(row * d2 + col) * 8 + corner]. *)

val of_id : d2:int -> int -> t

val count : d1:int -> d2:int -> int
(** [8 * d1 * d2]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

type t = { loc : Location.t; corner : int }

let make ~loc ~corner =
  if corner < 0 || corner >= 8 then
    invalid_arg "Pair.make: corner index out of [0, 8)";
  { loc; corner }

let rgb t = Rgb.corners.(t.corner)
let id ~d2 t = (Location.index ~d2 t.loc * 8) + t.corner
let of_id ~d2 i = { loc = Location.of_index ~d2 (i / 8); corner = i mod 8 }
let count ~d1 ~d2 = 8 * d1 * d2
let equal a b = Location.equal a.loc b.loc && a.corner = b.corner

let pp fmt t =
  Format.fprintf fmt "%a@%a" Location.pp t.loc Rgb.pp (rgb t)

let to_string t = Format.asprintf "%a" pp t

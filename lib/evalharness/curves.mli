(** Full success-rate-vs-budget curves (the continuous form of Figure 3).

    A curve is derived from per-image attack records: the success rate at
    budget [q] is the fraction of images whose attack succeeded within
    [q] queries.  Curves are monotone step functions; we sample them on a
    log-spaced budget grid and render them as ASCII charts. *)

type point = { budget : int; rate : float }

type t = { label : string; points : point list }

val of_records : label:string -> budgets:int list -> Runner.record array -> t
(** Sample the success-rate step function at the given budgets. *)

val log_budgets : max:int -> int list
(** A deduplicated 1-2-5 log ladder up to and including [max]
    (1, 2, 5, 10, 20, 50, ...). *)

val auc : t -> float
(** Area under the curve with budgets on a log axis, normalized to
    [0, 1] — a single query-efficiency number (higher is better).
    Raises [Invalid_argument] on curves with fewer than two points. *)

val crossover : t -> t -> int option
(** Smallest sampled budget from which the first curve is at least as
    good as the second for every remaining budget, or [None].  Both
    curves must be sampled on the same budget grid. *)

val render : ?width:int -> ?height:int -> t list -> string
(** Multi-curve ASCII chart: budgets on a log x-axis, success rate on
    the y-axis, one glyph per curve plus a legend. *)

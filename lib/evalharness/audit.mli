(** Offline auditor for query-provenance journals.

    Loads the JSONL journals written by {!Telemetry.Journal}, verifies
    the per-record FNV-1a checksums and the header/footer framing, and
    proves two journals charge-sequence *bit-identical*: for every
    image, the ordered sequence of charge identities
    [(key, kind, mode)] must match record for record.

    Provenance metadata — [seq], [site], [hit], [chunk], [backend] —
    is deliberately excluded from the identity: those fields
    legitimately differ across cache/batch/backend configurations and
    domain interleavings, while the charge sequence itself must not.
    Comparison is grouped per image (sorted by [seq] within a group)
    because each image's queries are issued sequentially by the one
    worker attacking it even when images run in parallel. *)

type record = {
  seq : int;
  site : string;
  image : int;
  key : string;
  kind : string;
  mode : string;
  hit : bool;
  chunk : int;
  backend : string;
}

type journal = {
  path : string;
  run_id : string;
  version : int;
  records : record list;  (** in file order *)
  complete : bool;
      (** footer present and its record count matches the body *)
}

exception Invalid of string
(** Raised by {!load} and {!parse_record} on malformed framing, an
    unparseable record, or a checksum mismatch; the message names the
    file/line. *)

val verify_checksum : string -> bool
(** Recompute the FNV-1a checksum over the line body and compare it to
    the embedded ["fnv"] field.  False on mismatch or missing field. *)

val parse_record : string -> record
(** Parse one record line, verifying its checksum first. *)

val load : string -> journal
(** Load and validate a journal file: header framing and version,
    every record line's checksum, footer count (when present — a
    missing footer yields [complete = false] rather than an error, so
    crash-truncated [.tmp] journals remain inspectable). *)

val load_strict : string -> journal
(** {!load}, but a missing/inconsistent footer is an {!Invalid} error. *)

type mismatch = {
  m_image : int;
  m_index : int;  (** position in the image's charge sequence *)
  m_left : string option;  (** rendered identity; [None] = absent *)
  m_right : string option;
}

type comparison = {
  left_total : int;
  right_total : int;
  images : int;  (** distinct image groups seen across both journals *)
  mismatches : mismatch list;  (** first {!max_mismatches} only *)
}

val max_mismatches : int

val compare_journals : journal -> journal -> comparison

val identical : comparison -> bool
(** True iff the charge sequences are bit-identical: same total count
    and no per-image mismatch. *)

val render : left:string -> right:string -> comparison -> string
(** Human-readable verdict block. *)

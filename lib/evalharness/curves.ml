type point = { budget : int; rate : float }
type t = { label : string; points : point list }

let of_records ~label ~budgets records =
  {
    label;
    points =
      List.map
        (fun budget -> { budget; rate = Runner.success_rate_at records budget })
        (List.sort_uniq compare budgets);
  }

let log_budgets ~max =
  if max < 1 then invalid_arg "Curves.log_budgets: max < 1";
  let rec ladder acc decade =
    let step m =
      let v = m * decade in
      if v <= max then Some v else None
    in
    match (step 1, step 2, step 5) with
    | Some a, Some b, Some c -> ladder (c :: b :: a :: acc) (decade * 10)
    | Some a, Some b, None -> b :: a :: acc
    | Some a, None, _ -> a :: acc
    | None, _, _ -> acc
  in
  List.sort_uniq compare (max :: ladder [] 1)

let auc { points; _ } =
  match points with
  | [] | [ _ ] -> invalid_arg "Curves.auc: need at least two points"
  | first :: _ ->
      (* Trapezoid rule on log(budget). *)
      let logb p = log (float_of_int p.budget) in
      let rec area acc = function
        | a :: (b :: _ as rest) ->
            area (acc +. ((logb b -. logb a) *. ((a.rate +. b.rate) /. 2.))) rest
        | [ _ ] | [] -> acc
      in
      let total_width =
        logb (List.nth points (List.length points - 1)) -. logb first
      in
      if total_width <= 0. then first.rate else area 0. points /. total_width

let crossover a b =
  if List.length a.points <> List.length b.points then
    invalid_arg "Curves.crossover: different budget grids";
  List.iter2
    (fun pa pb ->
      if pa.budget <> pb.budget then
        invalid_arg "Curves.crossover: different budget grids")
    a.points b.points;
  let paired = List.combine a.points b.points in
  let rec from = function
    | [] -> None
    | (pa, _) :: _ as rest
      when List.for_all (fun (x, y) -> x.rate >= y.rate) rest ->
        Some pa.budget
    | _ :: rest -> from rest
  in
  from paired

let glyphs = [| 'o'; '+'; 'x'; '*'; '#'; '@' |]

let render ?(width = 60) ?(height = 12) curves =
  if curves = [] then invalid_arg "Curves.render: no curves";
  let all_budgets =
    List.concat_map (fun c -> List.map (fun p -> p.budget) c.points) curves
  in
  let min_b = List.fold_left min max_int all_budgets
  and max_b = List.fold_left max 1 all_budgets in
  let log_min = log (float_of_int (max 1 min_b))
  and log_max = log (float_of_int (max 2 max_b)) in
  let x_of budget =
    if log_max <= log_min then 0
    else
      int_of_float
        (Float.round
           ((log (float_of_int budget) -. log_min)
           /. (log_max -. log_min)
           *. float_of_int (width - 1)))
  in
  let y_of rate =
    height - 1 - int_of_float (Float.round (rate *. float_of_int (height - 1)))
  in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun ci curve ->
      let glyph = glyphs.(ci mod Array.length glyphs) in
      List.iter
        (fun p -> grid.(y_of p.rate).(x_of p.budget) <- glyph)
        curve.points)
    curves;
  let buf = Buffer.create ((height + 4) * (width + 8)) in
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then "100% |"
        else if row = height - 1 then "  0% |"
        else "     |"
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("     +" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "      queries (log scale): %d .. %d\n" min_b max_b);
  List.iteri
    (fun ci curve ->
      Buffer.add_string buf
        (Printf.sprintf "      %c = %s\n"
           glyphs.(ci mod Array.length glyphs)
           curve.label))
    curves;
  Buffer.contents buf

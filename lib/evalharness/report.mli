(** Plain-text rendering of experiment results, shaped like the paper's
    tables and figures. *)

val table : headers:string list -> rows:string list list -> string
(** Box-drawn, column-aligned table. *)

val float_opt : float option -> string
(** ["-"] for [None], two decimals otherwise. *)

val percent : float -> string
(** [0.59 -> "59.0%"]. *)

val render_fig3 : Experiments.fig3_row list -> string
val render_table1 : Experiments.table1 -> string
val render_fig4 : Experiments.fig4 -> string
val render_table2 : Experiments.table2_row list -> string

val render_targeted : Experiments.targeted_row list -> string
(** The targeted-attack table: one row per (attacker, target class),
    success-by-budget cells like Figure 3 plus avg/median queries.  The
    byte-exact format is pinned by the golden file
    [test/report_targeted_golden_v1.txt]. *)

val render_pool_stats : Parallel.Pool.stats -> string
(** One-row table of a domain pool's instrumentation: width, jobs served,
    items processed (and how many were stolen by worker domains), wall
    time inside map calls, and derived throughput. *)

val render_cache_stats : Score_cache.stats -> string
(** One-row table of a score cache's counters: lookups split into hits
    and misses, the hit rate, resident entries, FIFO evictions, and the
    estimated tensor footprint in megabytes.  Works on a single cache's
    {!Score_cache.stats} or a store-wide {!Score_cache.store_stats}
    aggregate. *)

val render_batch_stats : Batcher.stats -> string
(** One-row table of the speculative batcher's counters: metered queries,
    chunks resolved, candidates prepared per chunk, buffer hits vs
    discarded speculations, and the resulting speculation accuracy.
    Rendered next to the cache and pool statistics in run reports. *)

val render_backend : unit -> string option
(** "Tensor backends" table from the registry counters every backend
    engine maintains ([backend.<name>.*]): one row per backend that ran
    a GEMM this process — nominal GEMM MFLOP/s, im2col panel fills,
    fused conv epilogues executed, and kernel wall seconds.  [None]
    until some backend kernel has run.  Included in
    {!render_telemetry}. *)

val render_islands : Oppsla.Islands.outcome -> string
(** Per-island table of an archipelago run — temperature, final and best
    averages, proposal/acceptance/pruning counters, elite adoptions and
    query spend per island — headed by the run totals and followed by
    the overall best program.  Notes the resume round when the run was
    restored from a checkpoint. *)

val render_telemetry :
  ?pool:Parallel.Pool.stats ->
  ?cache:Score_cache.stats ->
  ?batch:Batcher.stats ->
  unit ->
  string
(** One consolidated "Telemetry" section stacking whichever sub-tables
    were passed plus registry-derived summaries, always in pool → cache
    → batch → backend → attack quantiles → watchdog → sampler order so reports
    diff cleanly across runs.  The attack-quantile line
    (bucket-interpolated p50/p90/p99 queries-to-success) appears once
    an attack has succeeded, the watchdog table once an instrumented
    loop has beaten, and the sampler table once a background sampler
    has ticked.  Returns [""] when there is nothing to report, so runs
    without instrumentation print no dangling header.  All floats
    render through {!Telemetry.Fmt}. *)

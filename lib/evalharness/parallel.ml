(* Thin veneer over the shared Domain_pool library, kept so harness code
   (and its history of callers) can keep saying [Parallel.map] /
   [Parallel.Pool] while the scheduler itself stays reusable from
   lower layers (e.g. Oppsla.Score.evaluate_parallel). *)

module Pool = Domain_pool.Pool

let domain_count = Domain_pool.domain_count
let map = Domain_pool.map

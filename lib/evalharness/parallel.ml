let domain_count () = min 8 (Domain.recommended_domain_count ())

let map ?domains f xs =
  let n = Array.length xs in
  let domains = match domains with Some d -> d | None -> domain_count () in
  if domains <= 1 || n < 2 then Array.map f xs
  else begin
    let workers = min domains n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let work () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f xs.(i));
          loop ()
        end
      in
      loop ()
    in
    let handles = Array.init (workers - 1) (fun _ -> Domain.spawn work) in
    Fun.protect
      ~finally:(fun () -> Array.iter Domain.join handles)
      work;
    Array.map
      (function Some v -> v | None -> failwith "Parallel.map: missing result")
      results
  end

(* Offline trace analytics over the Chrome-trace JSONL the telemetry
   layer writes (--trace FILE): parse the event stream back, rebuild
   the span stack per track (tid = domain), and answer "where did the
   wall-clock go" questions from the artifact alone — per-span-name
   self/total time, a critical-path decomposition that follows
   pool.map fan-outs onto the busiest worker track, and folded-stack
   output consumable by flamegraph.pl or speedscope.

   Parsing is deliberately tolerant: the writer emits a JSON array as
   one event object per line, but a crashed run leaves no terminator
   and possibly a half-written final line, so the parser works line by
   line, skips the array framing, counts (rather than fails on)
   undecodable lines, and accepts events in any order — domains
   interleave their emissions arbitrarily.

   Stack reconstruction: complete ("X") events of one track, sorted by
   start time (ties broken longest-first, so a parent precedes the
   children born in the same microsecond), rebuild the nesting with a
   stack — an event starting before the stack top ends is its child.
   Self time is a span's duration minus its children's, with child
   intervals clipped to the parent (GC pause events are emitted on a
   calibrated clock and may protrude past a span boundary by a
   microsecond; clipping keeps self times nonnegative and the track
   total exact). *)

type event = {
  name : string;
  cat : string;
  ph : string;
  ts : float;  (* microseconds *)
  dur : float;  (* microseconds; 0 when absent (instants) *)
  tid : int;
}

type parsed = {
  events : event list;  (* file order *)
  skipped : int;  (* undecodable lines (truncated tail, noise) *)
}

let field obj key = List.assoc_opt key obj

let num = function
  | Some (Regress.Num f) -> Some f
  | _ -> None

let str = function
  | Some (Regress.Str s) -> Some s
  | _ -> None

let event_of_line line =
  match Regress.parse_json line with
  | Regress.Obj fields -> (
      match (str (field fields "name"), str (field fields "ph")) with
      | Some name, Some ph ->
          Some
            {
              name;
              cat = Option.value (str (field fields "cat")) ~default:"";
              ph;
              ts = Option.value (num (field fields "ts")) ~default:0.;
              dur = Option.value (num (field fields "dur")) ~default:0.;
              tid =
                int_of_float
                  (Option.value (num (field fields "tid")) ~default:0.);
            }
      | _ -> None)
  | _ -> None
  | exception Regress.Parse_error _ -> None

(* One line of the sink's framing: "[", a bare "]", or the
   comma-absorbing "{}]" / "{}" terminator.  Not events, not errors. *)
let is_framing line =
  match line with "" | "[" | "]" | "{}]" | "{}" -> true | _ -> false

let parse_string body =
  let events = ref [] in
  let skipped = ref 0 in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         let line = String.trim line in
         (* The sink writes "{...}," per event; strip the separator. *)
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ','
           then String.sub line 0 (String.length line - 1)
           else line
         in
         if not (is_framing line) then
           match event_of_line line with
           | Some e -> events := e :: !events
           | None -> incr skipped);
  { events = List.rev !events; skipped = !skipped }

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      parse_string (really_input_string ic n))

(* ------------------------------------------------------------------ *)
(* Span forest reconstruction *)

type span = {
  sname : string;
  scat : string;
  sts : float;
  sdur : float;
  stid : int;
  children : span list;  (* start-ordered *)
}

let span_end s = s.sts +. s.sdur

type track = {
  tid : int;
  roots : span list;  (* start-ordered *)
  busy_us : float;  (* sum of root durations *)
}

(* Build one track's forest from its complete events.  The stack holds
   (event, end, reversed children built so far). *)
let build_track tid events =
  let arr = Array.of_list events in
  Array.sort
    (fun (a : event) b ->
      match compare a.ts b.ts with 0 -> compare b.dur a.dur | c -> c)
    arr;
  let roots = ref [] in
  let stack : (event * float * span list ref) list ref = ref [] in
  let close (ev, _, kids) =
    let s =
      {
        sname = ev.name;
        scat = ev.cat;
        sts = ev.ts;
        sdur = ev.dur;
        stid = tid;
        children = List.rev !kids;
      }
    in
    match !stack with
    | (_, _, pkids) :: _ -> pkids := s :: !pkids
    | [] -> roots := s :: !roots
  in
  Array.iter
    (fun (ev : event) ->
      let rec pop () =
        match !stack with
        | ((_, e, _) as top) :: rest when ev.ts >= e ->
            stack := rest;
            close top;
            pop ()
        | _ -> ()
      in
      pop ();
      stack := (ev, ev.ts +. ev.dur, ref []) :: !stack)
    arr;
  let rec drain () =
    match !stack with
    | top :: rest ->
        stack := rest;
        close top;
        drain ()
    | [] -> ()
  in
  drain ();
  let roots = List.rev !roots in
  {
    tid;
    roots;
    busy_us = List.fold_left (fun acc s -> acc +. s.sdur) 0. roots;
  }

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type span_stat = {
  stat_name : string;
  count : int;
  total_us : float;  (* durations, recursive re-entries not re-counted *)
  self_us : float;  (* duration minus children (clipped) *)
}

type analysis = {
  tracks : track list;  (* tid-ascending *)
  stats : span_stat list;  (* self-time descending *)
  folded : (string * float) list;  (* stack -> self us, descending *)
  wall_us : float;  (* trace extent: max end - min start over spans *)
  attributed_us : float;  (* busy time of the busiest track *)
  coverage : float;  (* attributed / wall (0 when the trace is empty) *)
  skipped : int;
}

(* A span's self time: duration minus the parts covered by children,
   each child clipped into the parent's interval. *)
let self_of s =
  let covered =
    List.fold_left
      (fun acc c ->
        let c0 = Float.max c.sts s.sts
        and c1 = Float.min (span_end c) (span_end s) in
        acc +. Float.max 0. (c1 -. c0))
      0. s.children
  in
  Float.max 0. (s.sdur -. covered)

let analyze (p : parsed) =
  let complete =
    List.filter (fun e -> e.ph = "X" && e.dur > 0.) p.events
  in
  let by_tid : (int, event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : event) ->
      match Hashtbl.find_opt by_tid e.tid with
      | Some l -> l := e :: !l
      | None -> Hashtbl.add by_tid e.tid (ref [ e ]))
    complete;
  let tracks =
    Hashtbl.fold (fun tid l acc -> build_track tid (List.rev !l) :: acc)
      by_tid []
    |> List.sort (fun a b -> compare a.tid b.tid)
  in
  (* Per-name stats and folded stacks in one walk. *)
  let stats : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let folded : (string, float ref) Hashtbl.t = Hashtbl.create 64 in
  let bump_folded key self =
    if self > 0. then
      match Hashtbl.find_opt folded key with
      | Some r -> r := !r +. self
      | None -> Hashtbl.add folded key (ref self)
  in
  let rec walk path_rev ancestors s =
    let self = self_of s in
    let () =
      let count, total, selfr =
        match Hashtbl.find_opt stats s.sname with
        | Some t -> t
        | None ->
            let t = (ref 0, ref 0., ref 0.) in
            Hashtbl.add stats s.sname t;
            t
      in
      incr count;
      selfr := !selfr +. self;
      (* A recursive re-entry's duration is already inside its
         ancestor's total; counting it again would let one name's
         total exceed wall-clock. *)
      if not (List.mem s.sname ancestors) then total := !total +. s.sdur
    in
    let path_rev = s.sname :: path_rev in
    bump_folded (String.concat ";" (List.rev path_rev)) self;
    List.iter (walk path_rev (s.sname :: ancestors)) s.children
  in
  List.iter
    (fun tr ->
      let base = Printf.sprintf "domain%d" tr.tid in
      List.iter (walk [ base ] []) tr.roots)
    tracks;
  let stats =
    Hashtbl.fold
      (fun name (count, total, self) acc ->
        {
          stat_name = name;
          count = !count;
          total_us = !total;
          self_us = !self;
        }
        :: acc)
      stats []
    |> List.sort (fun a b ->
           match compare b.self_us a.self_us with
           | 0 -> compare a.stat_name b.stat_name
           | c -> c)
  in
  let folded =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) folded []
    |> List.sort (fun (ka, a) (kb, b) ->
           match compare b a with 0 -> compare ka kb | c -> c)
  in
  let wall_us, attributed_us =
    match tracks with
    | [] -> (0., 0.)
    | _ ->
        let lo =
          List.fold_left
            (fun acc tr ->
              List.fold_left (fun acc s -> Float.min acc s.sts) acc tr.roots)
            infinity tracks
        and hi =
          List.fold_left
            (fun acc tr ->
              List.fold_left
                (fun acc s -> Float.max acc (span_end s))
                acc tr.roots)
            neg_infinity tracks
        in
        ( Float.max 0. (hi -. lo),
          List.fold_left (fun acc tr -> Float.max acc tr.busy_us) 0. tracks
        )
  in
  {
    tracks;
    stats;
    folded;
    wall_us;
    attributed_us;
    coverage = (if wall_us > 0. then attributed_us /. wall_us else 0.);
    skipped = p.skipped;
  }

(* ------------------------------------------------------------------ *)
(* Critical path *)

type critical_step = { step : string; us : float; fraction : float }

type critical = {
  root_name : string;
  root_us : float;
  root_tid : int;
  steps : critical_step list;  (* us-descending; sums to root_us *)
}

(* The fan-out spans: their wall-clock is spent on worker tracks, so
   the decomposition jumps to the busiest worker inside the span's
   interval instead of charging the caller's idle wait. *)
let is_fanout name = name = "pool.map" || name = "pool.try_map"

let critical_path (a : analysis) =
  (* Root: the longest top-level span anywhere. *)
  let root =
    List.fold_left
      (fun acc tr ->
        List.fold_left
          (fun acc s ->
            match acc with
            | Some best when best.sdur >= s.sdur -> acc
            | _ -> Some s)
          acc tr.roots)
      None a.tracks
  in
  match root with
  | None -> None
  | Some root ->
      let tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
      let add name us =
        if us > 0. then
          Hashtbl.replace tbl name
            (us +. Option.value ~default:0. (Hashtbl.find_opt tbl name))
      in
      let overlap lo hi s =
        Float.max 0.
          (Float.min hi (span_end s) -. Float.max lo s.sts)
      in
      let track_busy lo hi tr =
        List.fold_left (fun acc s -> acc +. overlap lo hi s) 0. tr.roots
      in
      (* Charge the wall-clock of [s] clipped to [lo, hi]: children
         recurse (fan-outs jump tracks), the uncovered remainder is
         [s]'s own critical time. *)
      let rec decompose tid s lo hi =
        let lo = Float.max lo s.sts and hi = Float.min hi (span_end s) in
        if hi > lo then begin
          let covered = ref 0. in
          List.iter
            (fun c ->
              let c0 = Float.max lo c.sts
              and c1 = Float.min hi (span_end c) in
              if c1 > c0 then begin
                covered := !covered +. (c1 -. c0);
                if is_fanout c.sname then fanout tid c c0 c1
                else decompose tid c c0 c1
              end)
            s.children;
          add s.sname (Float.max 0. (hi -. lo -. !covered))
        end
      and fanout tid c lo hi =
        let workers = List.filter (fun tr -> tr.tid <> tid) a.tracks in
        let best =
          List.fold_left
            (fun acc tr ->
              let busy = track_busy lo hi tr in
              match acc with
              | Some (_, b) when b >= busy -> acc
              | _ when busy > 0. -> Some (tr, busy)
              | _ -> acc)
            None workers
        in
        match best with
        | None -> decompose tid c lo hi  (* no workers: plain span *)
        | Some (tr, _) ->
            let covered = ref 0. in
            List.iter
              (fun r ->
                let r0 = Float.max lo r.sts
                and r1 = Float.min hi (span_end r) in
                if r1 > r0 then begin
                  covered := !covered +. (r1 -. r0);
                  decompose tr.tid r r0 r1
                end)
              tr.roots;
            (* The remainder is fan-out overhead and worker idle,
               charged to the fan-out span itself. *)
            add c.sname (Float.max 0. (hi -. lo -. !covered))
      in
      decompose root.stid root root.sts (span_end root);
      let steps =
        Hashtbl.fold
          (fun step us acc ->
            {
              step;
              us;
              fraction = (if root.sdur > 0. then us /. root.sdur else 0.);
            }
            :: acc)
          tbl []
        |> List.sort (fun a b ->
               match compare b.us a.us with
               | 0 -> compare a.step b.step
               | c -> c)
      in
      Some
        {
          root_name = root.sname;
          root_us = root.sdur;
          root_tid = root.stid;
          steps;
        }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let folded_lines (a : analysis) =
  List.map
    (fun (stack, self) ->
      Printf.sprintf "%s %.0f" stack (Float.round self))
    a.folded

let render_stats ?(top = 20) (a : analysis) =
  let rows =
    a.stats
    |> List.filteri (fun i _ -> i < top)
    |> List.map (fun s ->
           [
             s.stat_name;
             string_of_int s.count;
             Telemetry.Fmt.f2 (s.total_us /. 1e3);
             Telemetry.Fmt.f2 (s.self_us /. 1e3);
             Telemetry.Fmt.percent
               (if a.wall_us > 0. then s.self_us /. a.wall_us else 0.);
           ])
  in
  Report.table
    ~headers:[ "span"; "count"; "total ms"; "self ms"; "self/wall" ]
    ~rows

let render_critical (c : critical) =
  let rows =
    List.map
      (fun s ->
        [
          s.step;
          Telemetry.Fmt.f2 (s.us /. 1e3);
          Telemetry.Fmt.percent s.fraction;
        ])
      c.steps
  in
  Printf.sprintf "critical path of %s (%.2f ms, domain %d)\n%s"
    c.root_name (c.root_us /. 1e3) c.root_tid
    (Report.table ~headers:[ "step"; "ms"; "share" ] ~rows)

let render_summary (a : analysis) =
  Printf.sprintf
    "events: %d spans on %d tracks (%d undecodable lines skipped)\n\
     wall-clock extent: %.2f ms, attributed on busiest track: %.2f ms \
     (%.1f%%)"
    (List.fold_left (fun acc s -> acc + s.count) 0 a.stats)
    (List.length a.tracks) a.skipped (a.wall_us /. 1e3)
    (a.attributed_us /. 1e3)
    (100. *. a.coverage)

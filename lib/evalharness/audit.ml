(* Offline journal auditor.  The journal is the charge sequence made
   durable; this module is the proof procedure over it — checksum every
   record, check the framing, and compare two journals' charge
   identities per image.  Parsing reuses the dependency-free JSON reader
   the bench regression gate already carries (Regress.parse_json): a
   journal line is exactly the JSON subset it handles. *)

type record = {
  seq : int;
  site : string;
  image : int;
  key : string;
  kind : string;
  mode : string;
  hit : bool;
  chunk : int;
  backend : string;
}

type journal = {
  path : string;
  run_id : string;
  version : int;
  records : record list;
  complete : bool;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

(* ----- checksum ----- *)

let fnv_marker = ", \"fnv\": \""

let find_sub s sub =
  let n = String.length s and ls = String.length sub in
  let rec at i =
    if i + ls > n then None
    else if String.sub s i ls = sub then Some i
    else at (i + 1)
  in
  at 0

let verify_checksum line =
  match find_sub line fnv_marker with
  | None -> false
  | Some i ->
      let body = String.sub line 0 i in
      let rest = i + String.length fnv_marker in
      (* 16 hex digits, then the record's closing quote and brace. *)
      String.length line >= rest + 16
      && String.sub line rest 16 = Telemetry.Journal.fnv64_hex body

(* ----- field access over parsed JSON ----- *)

let field obj name =
  match obj with
  | Regress.Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field line obj name =
  match field obj name with
  | Some (Regress.Str s) -> s
  | _ -> invalid "record missing string field %S: %s" name line

let int_field line obj name =
  match field obj name with
  | Some (Regress.Num v) -> int_of_float v
  | _ -> invalid "record missing numeric field %S: %s" name line

let bool_field line obj name =
  match field obj name with
  | Some (Regress.Bool b) -> b
  | _ -> invalid "record missing boolean field %S: %s" name line

let parse_record line =
  if not (verify_checksum line) then
    invalid "checksum mismatch (corrupt record): %s" line;
  let obj =
    try Regress.parse_json line
    with Regress.Parse_error m -> invalid "unparseable record (%s): %s" m line
  in
  {
    seq = int_field line obj "seq";
    site = str_field line obj "site";
    image = int_field line obj "image";
    key = str_field line obj "key";
    kind = str_field line obj "kind";
    mode = str_field line obj "mode";
    hit = bool_field line obj "hit";
    chunk = int_field line obj "chunk";
    backend = str_field line obj "backend";
  }

(* ----- file loading ----- *)

let read_lines path =
  let ic =
    try open_in_bin path with Sys_error m -> invalid "cannot open %s" m
  in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let load path =
  match read_lines path with
  | [] -> invalid "%s: empty journal" path
  | header_line :: rest ->
      let header =
        try Regress.parse_json header_line
        with Regress.Parse_error m ->
          invalid "%s: unparseable header (%s)" path m
      in
      (match field header "journal" with
      | Some (Regress.Str "oppsla-query-journal") -> ()
      | _ -> invalid "%s: not a query journal (bad header)" path);
      let version = int_field header_line header "version" in
      if version <> 1 then invalid "%s: unsupported version %d" path version;
      let run_id = str_field header_line header "run_id" in
      let records = ref [] and footer_count = ref None in
      List.iteri
        (fun lineno line ->
          if line = "" then ()
          else if !footer_count <> None then
            invalid "%s:%d: content after footer" path (lineno + 2)
          else if starts_with ~prefix:"{\"journal_end\"" line then
            footer_count :=
              Some (int_field line (Regress.parse_json line) "records")
          else
            match parse_record line with
            | r -> records := r :: !records
            | exception Invalid m -> invalid "%s:%d: %s" path (lineno + 2) m)
        rest;
      let records = List.rev !records in
      let complete =
        match !footer_count with
        | Some n -> n = List.length records
        | None -> false
      in
      { path; run_id; version; records; complete }

let load_strict path =
  let j = load path in
  if not j.complete then
    invalid "%s: journal incomplete (missing or inconsistent footer)" path;
  j

(* ----- comparison ----- *)

type mismatch = {
  m_image : int;
  m_index : int;
  m_left : string option;
  m_right : string option;
}

type comparison = {
  left_total : int;
  right_total : int;
  images : int;
  mismatches : mismatch list;
}

let max_mismatches = 20

let identity r = Printf.sprintf "(%s, %s, %s)" r.key r.kind r.mode

(* Per-image charge sequences, ordered by seq within each image: the
   writer's global file order can interleave domains, but each image's
   own charges carry strictly increasing seqs from its one worker. *)
let by_image j =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let prev = try Hashtbl.find tbl r.image with Not_found -> [] in
      Hashtbl.replace tbl r.image (r :: prev))
    j.records;
  Hashtbl.fold
    (fun image rev acc ->
      let sorted =
        List.sort (fun a b -> compare a.seq b.seq) (List.rev rev)
      in
      (image, sorted) :: acc)
    tbl []
  |> List.sort compare

let compare_journals left right =
  let lg = by_image left and rg = by_image right in
  let images =
    List.sort_uniq compare (List.map fst lg @ List.map fst rg)
  in
  let mismatches = ref [] and count = ref 0 in
  let note m_image m_index m_left m_right =
    incr count;
    if !count <= max_mismatches then
      mismatches := { m_image; m_index; m_left; m_right } :: !mismatches
  in
  List.iter
    (fun image ->
      let l = try List.assoc image lg with Not_found -> [] in
      let r = try List.assoc image rg with Not_found -> [] in
      let rec walk i l r =
        match (l, r) with
        | [], [] -> ()
        | a :: l', [] ->
            note image i (Some (identity a)) None;
            walk (i + 1) l' []
        | [], b :: r' ->
            note image i None (Some (identity b));
            walk (i + 1) [] r'
        | a :: l', b :: r' ->
            if not (a.key = b.key && a.kind = b.kind && a.mode = b.mode) then
              note image i (Some (identity a)) (Some (identity b));
            walk (i + 1) l' r'
      in
      walk 0 l r)
    images;
  {
    left_total = List.length left.records;
    right_total = List.length right.records;
    images = List.length images;
    mismatches = List.rev !mismatches;
  }

let identical c =
  c.left_total = c.right_total && c.mismatches = []

let render ~left ~right c =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "audit: %s (%d records) vs %s (%d records), %d image%s — %s\n"
       left c.left_total right c.right_total c.images
       (if c.images = 1 then "" else "s")
       (if identical c then "IDENTICAL" else "DIVERGED"));
  List.iter
    (fun m ->
      let show = function Some s -> s | None -> "<absent>" in
      Buffer.add_string b
        (Printf.sprintf "  image %d, charge %d: %s vs %s\n" m.m_image m.m_index
           (show m.m_left) (show m.m_right)))
    c.mismatches;
  Buffer.contents b

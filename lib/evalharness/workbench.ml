type classifier = {
  arch : string;
  net : Nn.Network.t;
  spec : Dataset.spec;
  test : (Tensor.t * int) array;
  test_accuracy : float;
  synth_sets : (Tensor.t * int) array array;
  backend : Nn.Backend.kind;
}

type config = {
  artifacts_dir : string option;
  seed : int;
  train_per_class : int;
  test_per_class : int;
  synth_per_class : int;
  epochs : int;
  log : string -> unit;
  backend : Nn.Backend.kind;
}

let default_config =
  {
    artifacts_dir = Some "_artifacts";
    seed = 42;
    train_per_class = 60;
    test_per_class = 8;
    synth_per_class = 10;
    epochs = 8;
    log = (fun _ -> ());
    backend = Nn.Backend.Boxed;
  }

let cifar_architectures = [ "vgg_tiny"; "resnet_tiny"; "googlenet_tiny" ]
let imagenet_architectures = [ "densenet_tiny"; "resnet50_tiny" ]

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let cache_path config file =
  match config.artifacts_dir with
  | None -> None
  | Some dir ->
      ensure_dir dir;
      Some (Filename.concat dir file)

let weights_key config (spec : Dataset.spec) arch =
  Printf.sprintf "%s_%s_s%d_tr%d_e%d.weights" spec.name arch config.seed
    config.train_per_class config.epochs

let train_classifier config (spec : Dataset.spec) arch =
  let ctor =
    match Nn.Zoo.by_name arch with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Workbench: unknown architecture %S" arch)
  in
  let root = Prng.of_int config.seed in
  let net =
    ctor
      (Prng.named_stream root (Printf.sprintf "init/%s/%s" spec.name arch))
      ~image_size:spec.image_size ~num_classes:spec.num_classes
  in
  let cached = cache_path config (weights_key config spec arch) in
  let hit =
    match cached with
    | Some path when Sys.file_exists path ->
        (try
           Nn.Serialize.load path net;
           config.log (Printf.sprintf "[workbench] loaded %s" path);
           true
         with Nn.Serialize.Format_error msg ->
           config.log
             (Printf.sprintf "[workbench] stale cache %s (%s); retraining" path
                msg);
           false)
    | _ -> false
  in
  if not hit then begin
    let train =
      Dataset.balanced_set spec ~seed:config.seed
        ~per_class:config.train_per_class
    in
    (* Some (architecture, init) combinations diverge at the default
       learning rate; halve it and retrain from a fresh init until the
       network actually learns.  The attack experiments need classifiers
       with real accuracy, so anything below 65% train accuracy counts as
       a failed run. *)
    let rec attempt lr tries =
      config.log
        (Printf.sprintf
           "[workbench] training %s on %s (%d images/class, %d epochs, lr %g)"
           arch spec.name config.train_per_class config.epochs lr);
      let fresh =
        ctor
          (Prng.named_stream root
             (Printf.sprintf "init/%s/%s/try%d" spec.name arch tries))
          ~image_size:spec.image_size ~num_classes:spec.num_classes
      in
      let train_config =
        {
          (Nn.Train.default_config ()) with
          epochs = config.epochs;
          optimizer =
            Nn.Optimizer.sgd ~momentum:0.9 ~weight_decay:1e-4 ~lr ();
        }
      in
      ignore
        (Nn.Train.fit ~config:train_config
           (Prng.named_stream root
              (Printf.sprintf "shuffle/%s/%s/try%d" spec.name arch tries))
           fresh train);
      let train_acc = Nn.Network.accuracy fresh train in
      if train_acc < 0.65 && tries < 3 then begin
        config.log
          (Printf.sprintf
             "[workbench] %s/%s failed to learn (train acc %.3f); retrying"
             spec.name arch train_acc);
        attempt (lr /. 2.) (tries + 1)
      end
      else fresh
    in
    let trained = attempt 0.05 0 in
    (* Copy the learned weights into [net] (same architecture, same
       parameter order). *)
    List.iter2
      (fun (dst : Nn.Param.t) (src : Nn.Param.t) ->
        Array.blit src.value.Tensor.data 0 dst.value.Tensor.data 0
          (Tensor.numel src.value))
      (Nn.Network.params net) (Nn.Network.params trained);
    match cached with
    | Some path ->
        Nn.Serialize.save path net;
        config.log (Printf.sprintf "[workbench] saved %s" path)
    | None -> ()
  end;
  net

let correctly_classified net samples =
  Array.of_list
    (List.filter
       (fun (x, c) -> Nn.Network.classify net x = c)
       (Array.to_list samples))

let load_classifier config spec arch =
  let net = train_classifier config spec arch in
  let test_all =
    (* Offset the seed so test images are disjoint from the classifier's
       training stream (mirrors Dataset.train_test). *)
    Dataset.balanced_set spec ~seed:(config.seed + 1000003)
      ~per_class:config.test_per_class
  in
  let test = correctly_classified net test_all in
  let test_accuracy =
    float_of_int (Array.length test) /. float_of_int (Array.length test_all)
  in
  let synth_sets =
    Array.init spec.num_classes (fun class_id ->
        correctly_classified net
          (Dataset.class_set spec ~seed:(config.seed + 2000003) ~class_id
             ~n:config.synth_per_class))
  in
  config.log
    (Printf.sprintf "[workbench] %s/%s: test acc %.3f (%d/%d attackable)"
       spec.name arch test_accuracy (Array.length test)
       (Array.length test_all));
  { arch; net; spec; test; test_accuracy; synth_sets; backend = config.backend }

let cifar_suite config =
  List.map (load_classifier config Dataset.synth_cifar) cifar_architectures

let imagenet_suite config =
  List.map
    (load_classifier config Dataset.synth_imagenet)
    imagenet_architectures

let oracle_factory (c : classifier) () =
  Oracle.of_network ~backend:c.backend c.net

(* The targeted protocol's sample set: attacking an image already
   classified as the target would succeed in zero queries, so those
   images are excluded up front (the targeted analogue of the untargeted
   protocol's correctly-classified filter). *)
let targeted_samples c ~target =
  if target < 0 || target >= c.spec.Dataset.num_classes then
    invalid_arg
      (Printf.sprintf "Workbench.targeted_samples: class %d outside [0, %d)"
         target c.spec.Dataset.num_classes);
  Array.of_list
    (List.filter (fun (_, cl) -> cl <> target) (Array.to_list c.test))

let parallel_evaluator ?domains ?pool ?caches ?max_queries ?batch c program
    samples =
  match pool with
  | Some pool ->
      Oppsla.Score.evaluate_parallel ?max_queries ?caches ?batch ~pool
        (Oracle.of_network c.net) program samples
  | None ->
      (match caches with
      | Some store when Score_cache.store_size store <> Array.length samples
        ->
          invalid_arg
            (Printf.sprintf
               "Workbench.parallel_evaluator: cache store has %d slots for \
                %d samples"
               (Score_cache.store_size store)
               (Array.length samples))
      | _ -> ());
      Oppsla.Score.of_results
        (Parallel.map ?domains
           (fun (i, (image, true_class)) ->
             let oracle = Oracle.of_network c.net in
             let cache =
               Option.map (fun s -> Score_cache.image_cache s i) caches
             in
             Oppsla.Sketch.attack ?max_queries ?cache ?batch oracle program
               ~image ~true_class)
           (Array.mapi (fun i s -> (i, s)) samples))

type synth_params = {
  iters : int;
  beta : float;
  synth_max_queries_per_image : int;
  domains : int option;
  cache : bool;
  batch : int;
}

let default_synth_params =
  {
    iters = 40;
    beta = 0.02;
    synth_max_queries_per_image = 1024;
    domains = None;
    cache = true;
    batch = Oppsla.Sketch.default_batch;
  }

(* Workbench log lines render floats through [Telemetry.Fmt], the same
   formatters Report uses, so the two outputs can't drift in precision. *)
let log_cache_stats config label = function
  | None -> ()
  | Some store ->
      let s = Score_cache.store_stats store in
      let hit_rate = Option.value ~default:0. (Score_cache.hit_rate s) in
      config.log
        (Printf.sprintf
           "[workbench] %s cache: %d hits / %d misses (%s hit rate), %d \
            entries, %s MB"
           label s.Score_cache.hits s.Score_cache.misses
           (Telemetry.Fmt.percent hit_rate)
           s.Score_cache.entries
           (Telemetry.Fmt.mb s.Score_cache.bytes))

(* The batcher's counters are global, so callers bracket the run:
   [Batcher.reset_global_stats] before, [log_batch_stats] after. *)
let log_batch_stats config label (s : Batcher.stats) =
  if s.Batcher.queries > 0 then begin
    let specs = s.Batcher.buffer_hits + s.Batcher.discarded in
    let hit_rate =
      if specs = 0 then 0.
      else float_of_int s.Batcher.buffer_hits /. float_of_int specs
    in
    config.log
      (Printf.sprintf
         "[workbench] %s batch: %d queries in %d chunks (%d prepared, %d \
          buffer hits, %d discarded, %s speculation accuracy)"
         label s.Batcher.queries s.Batcher.batches s.Batcher.prepared
         s.Batcher.buffer_hits s.Batcher.discarded
         (Telemetry.Fmt.percent hit_rate))
  end

(* Program caches: one line per class, in the DSL concrete syntax. *)

let write_programs path programs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun p -> output_string oc (Oppsla.Dsl.print_program p ^ "\n"))
        programs)

let read_programs path num_classes =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec lines acc =
        match input_line ic with
        | line ->
            if String.trim line = "" then lines acc
            else lines (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let all = lines [] in
      if List.length all <> num_classes then None
      else
        try
          Some
            (Array.of_list (List.map Oppsla.Dsl.parse_program_exn all))
        with Invalid_argument _ -> None)

let with_program_cache config file num_classes compute =
  match cache_path config file with
  | None -> compute ()
  | Some path -> (
      if Sys.file_exists path then
        match read_programs path num_classes with
        | Some programs ->
            config.log (Printf.sprintf "[workbench] loaded %s" path);
            programs
        | None ->
            config.log
              (Printf.sprintf "[workbench] stale cache %s; resynthesizing" path);
            let programs = compute () in
            write_programs path programs;
            programs
      else begin
        let programs = compute () in
        write_programs path programs;
        config.log (Printf.sprintf "[workbench] saved %s" path);
        programs
      end)

(* Run [f] over the given pool, or over a transient one sized by
   [params.domains] when the caller did not thread a persistent pool
   through. *)
let with_synth_pool ?pool (params : synth_params) f =
  match pool with
  | Some pool -> f pool
  | None -> Parallel.Pool.with_pool ?domains:params.domains f

let synthesize_programs ?(params = default_synth_params) ?pool config c =
  let file =
    Printf.sprintf "%s_%s_s%d_oppsla_i%d_b%g_q%d_n%d_v2.programs" c.spec.name
      c.arch config.seed params.iters params.beta
      params.synth_max_queries_per_image config.synth_per_class
  in
  with_program_cache config file c.spec.num_classes (fun () ->
      with_synth_pool ?pool params @@ fun pool ->
      let root = Prng.of_int config.seed in
      Array.init c.spec.num_classes (fun class_id ->
          let training = c.synth_sets.(class_id) in
          if Array.length training = 0 then begin
            config.log
              (Printf.sprintf
                 "[workbench] %s/%s class %d: empty synthesis set, using \
                  Sketch+False"
                 c.spec.name c.arch class_id);
            Oppsla.Condition.const_false_program
          end
          else begin
            let g =
              Prng.named_stream root
                (Printf.sprintf "synth/%s/%s/%d" c.spec.name c.arch class_id)
            in
            let synth_config =
              {
                Oppsla.Synthesizer.default_config with
                beta = params.beta;
                max_iters = params.iters;
                max_queries_per_image =
                  Some params.synth_max_queries_per_image;
                batch = params.batch;
              }
            in
            (* The pool is the synthesizer's default evaluator: every MH
               proposal fans its per-image attacks out over the resident
               domains (per-image oracle clones, image-order merge), so
               query accounting matches the sequential evaluator
               bit-for-bit.  The per-image score cache (shared across all
               proposals of this class's run) removes the repeated forward
               passes without touching that accounting. *)
            let caches =
              if params.cache then
                Some (Score_cache.store (Array.length training))
              else None
            in
            Batcher.reset_global_stats ();
            let out =
              Oppsla.Synthesizer.synthesize ~config:synth_config ~pool
                ?caches g (oracle_factory c ()) ~training
            in
            log_cache_stats config
              (Printf.sprintf "synth %s/%s class %d" c.spec.name c.arch
                 class_id)
              caches;
            log_batch_stats config
              (Printf.sprintf "synth %s/%s class %d" c.spec.name c.arch
                 class_id)
              (Batcher.global_stats ());
            (* No attackable training image within the cap means every
               candidate scored the same penalty and the MH chain is a
               random walk: its final program carries no signal, so fall
               back to the fixed prioritization rather than ship noise. *)
            if
              out.Oppsla.Synthesizer.final_avg_queries
              >= Oppsla.Score.no_success_penalty
            then begin
              config.log
                (Printf.sprintf
                   "[workbench] %s/%s class %d: no attackable synthesis \
                    image, using Sketch+False"
                   c.spec.name c.arch class_id);
              Oppsla.Condition.const_false_program
            end
            else begin
              config.log
                (Printf.sprintf
                   "[workbench] %s/%s class %d: avg %.1f queries after %d \
                    synthesis queries"
                   c.spec.name c.arch class_id
                   out.Oppsla.Synthesizer.final_avg_queries
                   out.Oppsla.Synthesizer.synth_queries);
              out.Oppsla.Synthesizer.final
            end
          end))

let sketch_random_programs ?(samples = 210) ?(max_queries_per_image = 1024)
    ?(cache = true) ?batch ?pool config c =
  let file =
    Printf.sprintf "%s_%s_s%d_random_k%d_q%d_n%d.programs" c.spec.name c.arch
      config.seed samples max_queries_per_image config.synth_per_class
  in
  with_program_cache config file c.spec.num_classes (fun () ->
      with_synth_pool ?pool default_synth_params @@ fun pool ->
      let root = Prng.of_int config.seed in
      Array.init c.spec.num_classes (fun class_id ->
          let training = c.synth_sets.(class_id) in
          if Array.length training = 0 then
            Oppsla.Condition.const_false_program
          else begin
            let g =
              Prng.named_stream root
                (Printf.sprintf "random/%s/%s/%d" c.spec.name c.arch class_id)
            in
            (* Same per-image store across all sampled programs — the
               random baseline revisits the same perturbation space 210
               times, so hit rates run even higher than MH synthesis. *)
            let caches =
              if cache then Some (Score_cache.store (Array.length training))
              else None
            in
            let out =
              Baselines.Random_search.synthesize ~samples
                ~evaluator:
                  (parallel_evaluator ~pool ?caches
                     ~max_queries:max_queries_per_image ?batch c)
                g (oracle_factory c ()) ~training
            in
            log_cache_stats config
              (Printf.sprintf "random %s/%s class %d" c.spec.name c.arch
                 class_id)
              caches;
            out.Baselines.Random_search.best
          end))

let nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty sample")

let mean xs =
  nonempty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  nonempty "stddev" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc v -> acc +. ((v -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let quantile xs q =
  nonempty "quantile" xs;
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = quantile xs 0.5

type interval = { lo : float; hi : float }

let percentile_interval confidence samples =
  Array.sort compare samples;
  let alpha = (1. -. confidence) /. 2. in
  {
    lo = quantile samples alpha;
    hi = quantile samples (1. -. alpha);
  }

let bootstrap_mean_ci ?(replicates = 1000) ?(confidence = 0.95) g xs =
  nonempty "bootstrap_mean_ci" xs;
  if replicates <= 0 then invalid_arg "Stats.bootstrap_mean_ci: replicates";
  let n = Array.length xs in
  let resample () =
    let acc = ref 0. in
    for _ = 1 to n do
      acc := !acc +. xs.(Prng.int g n)
    done;
    !acc /. float_of_int n
  in
  percentile_interval confidence (Array.init replicates (fun _ -> resample ()))

let bootstrap_proportion_ci ?(replicates = 1000) ?(confidence = 0.95) g
    ~successes ~total =
  if total <= 0 then invalid_arg "Stats.bootstrap_proportion_ci: total <= 0";
  if successes < 0 || successes > total then
    invalid_arg "Stats.bootstrap_proportion_ci: successes outside [0, total]";
  let resample () =
    let hits = ref 0 in
    for _ = 1 to total do
      if Prng.int g total < successes then incr hits
    done;
    float_of_int !hits /. float_of_int total
  in
  percentile_interval confidence (Array.init replicates (fun _ -> resample ()))

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: empty range";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun v ->
      let b = int_of_float ((v -. lo) /. width) in
      let b = max 0 (min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts

let pp_interval fmt { lo; hi } = Format.fprintf fmt "[%.2f, %.2f]" lo hi

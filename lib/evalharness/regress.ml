(* Bench regression gate: compare a freshly produced bench JSON against
   a committed BENCH_* baseline and flag metrics that moved past a noise
   tolerance in the bad direction.  The BENCH files are written by
   bench/main.ml itself, so a tiny recursive-descent parser over that
   known-friendly JSON subset (no exponent-less edge cases we do not
   emit, flat-ish objects) keeps the gate dependency-free.

   The direction a metric is allowed to move comes from its leaf name:
   anything measured in seconds (or an overhead fraction) must not grow,
   anything measuring a rate/ratio win (speedup, images_per_sec,
   hit_rate) must not shrink.  Everything else — counts, flags, notes —
   is identity-free context and is not gated. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

(* Parser *)

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  (* Our own writer never emits multi-byte escapes for
                     anything we gate on; decode to '?' markers rather
                     than carrying a UTF-8 table. *)
                  if !pos + 4 > n then fail "truncated \\u escape";
                  pos := !pos + 4;
                  Buffer.add_char b '?'
              | _ -> fail "unknown escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some v -> Num v
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse_json s

(* The baseline registry: every BENCH_*.json the bench suite writes and
   the repo commits.  A bench mode that gains a baseline file must be
   added here — the gates ([bench regress] and [tools/regress --smoke])
   resolve THIS list and fail by name on anything missing, instead of
   silently gating over whatever files happen to exist. *)
let registered_baselines =
  [
    "BENCH_parallel.json";
    "BENCH_cache.json";
    "BENCH_batch.json";
    "BENCH_telemetry.json";
    "BENCH_observe.json";
    "BENCH_synth.json";
    "BENCH_scenarios.json";
    "BENCH_backend.json";
    "BENCH_journal.json";
    "BENCH_profile.json";
  ]

exception Missing_baseline of string list

let locate_baselines () =
  let found, missing =
    List.fold_left
      (fun (found, missing) f ->
        (* Under `dune runtest` bench actions run in _build/default/bench/
           with the committed baselines staged one level up; direct
           invocations run at the repo root. *)
        if Sys.file_exists f then (f :: found, missing)
        else
          let up = Filename.concat Filename.parent_dir_name f in
          if Sys.file_exists up then (up :: found, missing)
          else (found, f :: missing))
      ([], []) registered_baselines
  in
  if missing <> [] then raise (Missing_baseline (List.rev missing));
  List.rev found

(* Flattening: every numeric leaf becomes ("path.to[2].leaf", value). *)

let flatten (j : json) : (string * float) list =
  let acc = ref [] in
  let rec go prefix = function
    | Num v -> acc := (prefix, v) :: !acc
    | Obj fields ->
        List.iter
          (fun (k, v) ->
            go (if prefix = "" then k else prefix ^ "." ^ k) v)
          fields
    | List items ->
        List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" prefix i) v) items
    | Null | Bool _ | Str _ -> ()
  in
  go "" j;
  List.rev !acc

(* Direction policy, keyed on the leaf field name. *)

type direction = Lower_better | Higher_better | Ungated

let leaf_of path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let contains ~sub s =
  let ls = String.length sub and n = String.length s in
  let rec at i = i + ls <= n && (String.sub s i ls = sub || at (i + 1)) in
  ls > 0 && at 0

let direction_of path =
  let leaf = leaf_of path in
  if contains ~sub:"seconds" leaf || contains ~sub:"overhead_fraction" leaf
  then Lower_better
  else if
    contains ~sub:"speedup" leaf
    || contains ~sub:"images_per_sec" leaf
    || contains ~sub:"hit_rate" leaf
    || contains ~sub:"per_s" leaf
  then Higher_better
  else Ungated

(* Comparison *)

type finding = {
  metric : string;
  baseline : float;
  fresh : float;
  change : float;  (* signed fractional change, + = grew *)
}

type report = {
  checked : int;  (* gated metrics present in both files *)
  regressions : finding list;
  improvements : finding list;  (* moved past tolerance the good way *)
  missing : string list;  (* gated in baseline, absent from fresh *)
}

let default_tolerance = 0.10

(* Skip metrics whose baseline magnitude is below this: per-layer
   microsecond timings jitter by whole multiples run to run and would
   make the gate cry wolf. *)
let default_min_magnitude = 0.01

let compare_metrics ?(tolerance = default_tolerance)
    ?(min_magnitude = default_min_magnitude) ~baseline ~fresh () =
  let fresh_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace fresh_tbl k v) fresh;
  let checked = ref 0 in
  let regressions = ref [] and improvements = ref [] and missing = ref [] in
  List.iter
    (fun (metric, b) ->
      match direction_of metric with
      | Ungated -> ()
      | _ when Float.abs b < min_magnitude -> ()
      | dir -> (
          match Hashtbl.find_opt fresh_tbl metric with
          | None -> missing := metric :: !missing
          | Some f ->
              incr checked;
              let change = (f -. b) /. Float.abs b in
              let finding = { metric; baseline = b; fresh = f; change } in
              let bad =
                match dir with
                | Lower_better -> change > tolerance
                | Higher_better -> change < -.tolerance
                | Ungated -> false
              in
              let good =
                match dir with
                | Lower_better -> change < -.tolerance
                | Higher_better -> change > tolerance
                | Ungated -> false
              in
              if bad then regressions := finding :: !regressions
              else if good then improvements := finding :: !improvements))
    baseline;
  {
    checked = !checked;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    missing = List.rev !missing;
  }

let compare_files ?tolerance ?min_magnitude ~baseline ~fresh () =
  compare_metrics ?tolerance ?min_magnitude
    ~baseline:(flatten (parse_file baseline))
    ~fresh:(flatten (parse_file fresh))
    ()

let passed r = r.regressions = [] && r.missing = []

let render_finding f =
  Printf.sprintf "%s: %g -> %g (%+.1f%%)" f.metric f.baseline f.fresh
    (100. *. f.change)

let render ~label r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d gated metric%s checked — %s\n" label r.checked
       (if r.checked = 1 then "" else "s")
       (if passed r then "PASS" else "REGRESSION"));
  List.iter
    (fun f -> Buffer.add_string b ("  regression  " ^ render_finding f ^ "\n"))
    r.regressions;
  List.iter
    (fun m -> Buffer.add_string b ("  missing     " ^ m ^ "\n"))
    r.missing;
  List.iter
    (fun f -> Buffer.add_string b ("  improvement " ^ render_finding f ^ "\n"))
    r.improvements;
  Buffer.contents b

(* Synthetic degradation for the gate's own smoke test: push every
   gated metric [factor] past its baseline in the bad direction. *)
let degrade ?(factor = 1.2) metrics =
  List.map
    (fun (k, v) ->
      match direction_of k with
      | Lower_better -> (k, v *. factor)
      | Higher_better -> (k, v /. factor)
      | Ungated -> (k, v))
    metrics

(** Attack evaluation over a test set, and the statistics the paper
    reports.

    Each image is attacked once with the full query allowance; the
    recorded per-image query count then yields the success rate at
    {e every} smaller budget (an attack that succeeds after [q] queries
    succeeds for any budget [>= q]; one that fails within the full space
    fails for all budgets).  This is exact for the deterministic sketch
    family and standard practice for the randomized baselines. *)

type record = {
  true_class : int;
  success : bool;
  queries : int;  (** queries spent (until success, or until give-up) *)
}

val run :
  ?domains:int ->
  ?pool:Parallel.Pool.t ->
  ?caches:Score_cache.store ->
  ?batch:int ->
  ?goal:Oppsla.Sketch.goal ->
  seed:int ->
  max_queries:int ->
  Attackers.t ->
  oracle_factory:(unit -> Oracle.t) ->
  (Tensor.t * int) array ->
  record array
(** Attack every (image, class) pair — over the persistent [pool] when
    given, else over a transient [domains]-wide pool.  Every image gets a
    fresh oracle from [oracle_factory] (for a network-backed classifier,
    pass {!Workbench.oracle_factory}; tests can hand the runner a toy
    oracle the same way), and randomized attackers get a distinct,
    reproducible RNG per image (derived from [seed] and the image's
    index), so records do not depend on the parallelism.

    [goal] (default [Untargeted]) is forwarded to every attack; targeted
    runs record success against the target class
    ({!Oppsla.Sketch.goal_reached}).

    [caches] (slot [i] backing sample [i]) is attached to each image's
    fresh oracle via {!Oracle.set_cache}; cache-aware attackers then
    memoize perturbation forward passes under the metered query counter,
    so records are bit-identical with and without it.  Handing the {e
    same} store to several [run] calls over the same samples (as the
    experiments do across attackers on one classifier) lets later
    attackers hit scores the earlier ones already computed.  Raises
    [Invalid_argument] on a store/sample size mismatch.

    [batch] (default {!Oppsla.Sketch.default_batch}) is the speculative
    candidate chunk width handed to every attack; records are
    bit-identical at every width, so like [caches] and the pool it only
    moves wall-clock. *)

val success_rate_at : record array -> int -> float
(** Fraction of images whose attack succeeded within the given budget. *)

val success_rate : record array -> float

val avg_queries : record array -> float option
(** Mean queries over successful attacks ([None] without successes). *)

val median_queries : record array -> float option
(** Median queries over successful attacks (mean of middle pair for even
    counts). *)

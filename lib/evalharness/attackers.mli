(** A uniform interface over all attacks, for the experiment runners.

    An attacker takes a fresh per-image RNG and oracle and produces a
    {!Oppsla.Sketch.result}.  Deterministic attacks (the sketch family)
    ignore the RNG.  [batch] is the speculative candidate chunk width
    every attack forwards to its {!Batcher}; results are bit-identical at
    every width (only wall-clock changes), so it is an engine knob, not
    an experiment parameter.  [goal] is the attack goal every attack
    threads through to its success predicate
    ({!Oppsla.Sketch.goal_reached}); untargeted unless the experiment
    says otherwise. *)

type t = {
  name : string;
  run :
    Prng.t ->
    Oracle.t ->
    goal:Oppsla.Sketch.goal ->
    max_queries:int ->
    batch:int ->
    image:Tensor.t ->
    true_class:int ->
    Oppsla.Sketch.result;
}

val oppsla : programs:Oppsla.Condition.program array -> t
(** The paper's protocol: one program per class; the attack on an image
    of class [c] runs program [programs.(c)]. *)

val oppsla_single : Oppsla.Condition.program -> t
(** One program for every class (transferability-style runs). *)

val sketch_false : t
(** Sketch+False: the constant-prioritization baseline. *)

val sparse_rs : t

val sparse_rs_space : Oppsla.Space.t -> t
(** Sparse-RS over an arbitrary perturbation space
    ({!Baselines.Sparse_rs.attack_space}).  Named
    ["Sparse-RS(<space>)"].  On success the reported pair is the first
    element of the perturbed set (the runner only consumes the success
    flag and query count). *)

val su_opa : ?population:int -> unit -> t

val decision : t -> t
(** [decision t] is [t] attacking under the label-only threat model: the
    per-image oracle is flipped to {!Oracle.Decision} mode before the
    attack, so every observed score vector collapses to the one-hot of
    its label.  Named ["<name>/decision"].  Query accounting is
    unchanged by construction — only what the attack can see. *)

val run_one :
  ?batch:int ->
  ?goal:Oppsla.Sketch.goal ->
  t ->
  seed:int ->
  oracle_factory:(unit -> Oracle.t) ->
  max_queries:int ->
  image:Tensor.t ->
  true_class:int ->
  Oppsla.Sketch.result
(** Run an attacker on one image with a seed derived from [seed] (so
    randomized attacks are reproducible image-by-image).  [batch]
    defaults to {!Oppsla.Sketch.default_batch}; [goal] to [Untargeted]. *)

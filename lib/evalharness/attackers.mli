(** A uniform interface over all attacks, for the experiment runners.

    An attacker takes a fresh per-image RNG and oracle and produces a
    {!Oppsla.Sketch.result}.  Deterministic attacks (the sketch family)
    ignore the RNG.  [batch] is the speculative candidate chunk width
    every attack forwards to its {!Batcher}; results are bit-identical at
    every width (only wall-clock changes), so it is an engine knob, not
    an experiment parameter. *)

type t = {
  name : string;
  run :
    Prng.t ->
    Oracle.t ->
    max_queries:int ->
    batch:int ->
    image:Tensor.t ->
    true_class:int ->
    Oppsla.Sketch.result;
}

val oppsla : programs:Oppsla.Condition.program array -> t
(** The paper's protocol: one program per class; the attack on an image
    of class [c] runs program [programs.(c)]. *)

val oppsla_single : Oppsla.Condition.program -> t
(** One program for every class (transferability-style runs). *)

val sketch_false : t
(** Sketch+False: the constant-prioritization baseline. *)

val sparse_rs : t
val su_opa : ?population:int -> unit -> t

val run_one :
  ?batch:int ->
  t ->
  seed:int ->
  oracle_factory:(unit -> Oracle.t) ->
  max_queries:int ->
  image:Tensor.t ->
  true_class:int ->
  Oppsla.Sketch.result
(** Run an attacker on one image with a seed derived from [seed] (so
    randomized attacks are reproducible image-by-image).  [batch]
    defaults to {!Oppsla.Sketch.default_batch}. *)

(** Multicore helpers (OCaml 5 domains).

    Attacks on distinct images are independent and the classifiers'
    inference path is pure, so experiment runners fan image batches out
    across domains.  The mapped function must be thread-safe: in practice
    that means it must build its own {!Oracle.t} (whose query counter is
    mutable) rather than share one. *)

val domain_count : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map.  With [domains <= 1] (or on arrays of
    fewer than 2 elements) runs sequentially.  Exceptions raised by [f]
    are re-raised in the caller. *)

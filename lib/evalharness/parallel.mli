(** Multicore helpers (OCaml 5 domains).

    Attacks on distinct images are independent and the classifiers'
    inference path is pure, so experiment runners fan image batches out
    across domains.  The mapped function must be thread-safe: in practice
    that means it must build its own {!Oracle.t} (whose query counter is
    mutable) rather than share one — see {!Oracle.clone}.

    This module re-exports the shared {!Domain_pool} library so harness
    code keeps its historical [Parallel] name.  Hot paths should create
    one {!Pool.t} per experiment run instead of paying a domain spawn per
    batch. *)

module Pool = Domain_pool.Pool
(** Persistent domain pool with explicit lifecycle and {!Pool.stats}
    instrumentation; see {!Domain_pool.Pool}. *)

val domain_count : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving one-shot parallel map (transient pool per call).
    With [domains <= 1] (or on arrays of fewer than 2 elements) runs
    sequentially.  The {e first} exception raised by [f] is re-raised in
    the caller with its backtrace; later items are abandoned, never
    silently dropped from a returned result. *)

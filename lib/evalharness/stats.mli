(** Descriptive statistics for experiment reporting.

    Success rates and query averages over a few dozen test images carry
    real sampling noise; EXPERIMENTS.md reports them with bootstrap
    confidence intervals computed here. *)

val mean : float array -> float
(** Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val median : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0, 1], linear interpolation between order
    statistics.  Raises [Invalid_argument] on an empty array or [q]
    outside [0, 1]. *)

type interval = { lo : float; hi : float }

val bootstrap_mean_ci :
  ?replicates:int -> ?confidence:float -> Prng.t -> float array -> interval
(** Percentile-bootstrap confidence interval for the mean.  Defaults:
    1000 replicates, 95% confidence. *)

val bootstrap_proportion_ci :
  ?replicates:int -> ?confidence:float -> Prng.t -> successes:int ->
  total:int -> interval
(** Same, for a binomial proportion (success rates). *)

val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
(** Fixed-width histogram; values outside [lo, hi) are clamped into the
    first/last bin.  Raises [Invalid_argument] if [bins <= 0] or
    [hi <= lo]. *)

val pp_interval : Format.formatter -> interval -> unit
(** Renders as ["[lo, hi]"] with two decimals. *)

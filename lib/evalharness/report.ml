let table ~headers ~rows =
  let all = headers :: rows in
  let columns = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> columns then
        invalid_arg "Report.table: ragged rows")
    rows;
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row i)))
      0 all
  in
  let widths = List.init columns width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    "| "
    ^ String.concat " | " (List.map2 pad row widths)
    ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  String.concat "\n"
    ([ rule; render_row headers; rule ]
    @ List.map render_row rows
    @ [ rule ])

(* All float rendering goes through [Telemetry.Fmt] — the one shared
   formatter set — so the report, workbench logs and bench output cannot
   drift apart in precision. *)
let float_opt = function None -> "-" | Some v -> Telemetry.Fmt.f2 v
let percent = Telemetry.Fmt.percent

let render_fig3 (rows : Experiments.fig3_row list) =
  match rows with
  | [] -> "(no data)"
  | first :: _ ->
      let budget_headers =
        List.map
          (fun (c : Experiments.fig3_cell) -> Printf.sprintf "<=%d" c.budget)
          first.Experiments.cells
      in
      let headers =
        [ "dataset"; "classifier"; "attack"; "#images" ]
        @ budget_headers @ [ "avg #queries" ]
      in
      let body =
        List.map
          (fun (r : Experiments.fig3_row) ->
            [ r.dataset; r.classifier; r.attacker;
              string_of_int r.attacked_images ]
            @ List.map
                (fun (c : Experiments.fig3_cell) -> percent c.success_rate)
                r.cells
            @ [ float_opt r.avg_queries ])
          rows
      in
      "Figure 3 - success rate by query budget\n" ^ table ~headers ~rows:body

let render_table1 (t : Experiments.table1) =
  let headers = "target \\ synthesized for" :: t.classifiers in
  let rows =
    List.mapi
      (fun target name ->
        name
        :: List.mapi
             (fun source _ -> float_opt t.avg_queries.(target).(source))
             t.classifiers)
      t.classifiers
  in
  "Table 1 - transferability (avg #queries)\n" ^ table ~headers ~rows

let render_fig4 (f : Experiments.fig4) =
  let headers =
    [ "iteration"; "synth queries"; "avg #queries (held-out)" ]
  in
  let rows =
    List.map
      (fun (p : Experiments.fig4_point) ->
        [
          string_of_int p.iteration;
          string_of_int p.synth_queries;
          Printf.sprintf "%.2f" p.test_avg_queries;
        ])
      f.series
  in
  Printf.sprintf
    "Figure 4 - program quality vs synthesis queries\n%s\nSketch+False \
     reference (0 synthesis queries): %.2f avg #queries"
    (table ~headers ~rows) f.baseline_avg_queries

let render_pool_stats (s : Parallel.Pool.stats) =
  let throughput =
    if s.Parallel.Pool.busy_seconds > 0. then
      Telemetry.Fmt.f1
        (float_of_int s.Parallel.Pool.tasks /. s.Parallel.Pool.busy_seconds)
    else "-"
  in
  "Domain pool\n"
  ^ table
      ~headers:
        [ "domains"; "jobs"; "tasks"; "stolen"; "busy (s)"; "tasks/s" ]
      ~rows:
        [
          [
            string_of_int s.Parallel.Pool.domains;
            string_of_int s.Parallel.Pool.jobs;
            string_of_int s.Parallel.Pool.tasks;
            string_of_int s.Parallel.Pool.steals;
            Telemetry.Fmt.f2 s.Parallel.Pool.busy_seconds;
            throughput;
          ];
        ]

let render_cache_stats (s : Score_cache.stats) =
  let lookups = s.Score_cache.hits + s.Score_cache.misses in
  let hit_rate =
    match Score_cache.hit_rate s with
    | None -> "-"
    | Some r -> percent r
  in
  "Score cache\n"
  ^ table
      ~headers:
        [ "lookups"; "hits"; "misses"; "hit rate"; "entries"; "evicted"; "MB" ]
      ~rows:
        [
          [
            string_of_int lookups;
            string_of_int s.Score_cache.hits;
            string_of_int s.Score_cache.misses;
            hit_rate;
            string_of_int s.Score_cache.entries;
            string_of_int s.Score_cache.evictions;
            Telemetry.Fmt.mb s.Score_cache.bytes;
          ];
        ]

let render_batch_stats (s : Batcher.stats) =
  let specs = s.Batcher.buffer_hits + s.Batcher.discarded in
  let accuracy =
    if specs = 0 then "-"
    else percent (float_of_int s.Batcher.buffer_hits /. float_of_int specs)
  in
  let avg_chunk =
    if s.Batcher.batches = 0 then "-"
    else
      Telemetry.Fmt.f1
        (float_of_int s.Batcher.prepared /. float_of_int s.Batcher.batches)
  in
  "Speculative batching\n"
  ^ table
      ~headers:
        [
          "queries";
          "chunks";
          "prepared";
          "avg chunk";
          "buffer hits";
          "discarded";
          "speculation accuracy";
        ]
      ~rows:
        [
          [
            string_of_int s.Batcher.queries;
            string_of_int s.Batcher.batches;
            string_of_int s.Batcher.prepared;
            avg_chunk;
            string_of_int s.Batcher.buffer_hits;
            string_of_int s.Batcher.discarded;
            accuracy;
          ];
        ]

(* Per-backend tensor-engine summary, from the registry counters every
   backend maintains ({!Tensor_sig.Stats}): one row per backend that
   actually ran a GEMM this process.  MFLOP/s is nominal multiply-add
   work over kernel wall seconds. *)
let render_backend () =
  let row name =
    let c leaf =
      Telemetry.Counter.get
        (Telemetry.Metrics.counter ("backend." ^ name ^ "." ^ leaf))
    in
    let flops = c "gemm_flops" in
    if flops = 0 then None
    else
      let s =
        Telemetry.Histogram.snapshot
          (Telemetry.Metrics.histogram ("backend." ^ name ^ ".gemm_seconds"))
      in
      let seconds = s.Telemetry.Histogram.sum in
      let mflops =
        if seconds > 0. then
          Telemetry.Fmt.f1 (float_of_int flops /. seconds /. 1e6)
        else "-"
      in
      Some
        [
          name;
          mflops;
          string_of_int (c "panels");
          string_of_int (c "fusion_hits");
          Telemetry.Fmt.f2 seconds;
        ]
  in
  let rows =
    List.filter_map row (List.map Nn.Backend.kind_name Nn.Backend.all_kinds)
  in
  if rows = [] then None
  else
    Some
      ("Tensor backends\n"
      ^ table
          ~headers:
            [ "backend"; "GEMM MFLOP/s"; "im2col panels"; "fusion hits";
              "kernel (s)" ]
          ~rows)

(* Attack-outcome quantiles, straight from the registry histograms the
   sketch maintains.  Rendered only when at least one attack succeeded,
   so runs that never attacked print nothing. *)
let render_attack_quantiles () =
  let h = Telemetry.Metrics.histogram "attack.queries_to_success" in
  let s = Telemetry.Histogram.snapshot h in
  if s.Telemetry.Histogram.count = 0 then None
  else
    let q p = Telemetry.Histogram.quantile_of_snapshot s p in
    Some
      (Printf.sprintf
         "Attack outcomes\nqueries to success: p50 %s, p90 %s, p99 %s \
          (bucket-interpolated, %d successes, %d failures)"
         (Telemetry.Fmt.f1 (q 0.5))
         (Telemetry.Fmt.f1 (q 0.9))
         (Telemetry.Fmt.f1 (q 0.99))
         s.Telemetry.Histogram.count
         (Telemetry.Counter.get (Telemetry.Metrics.counter "attack.failures")))

(* Watchdog summary: which instrumented loops ran and where they last
   reported progress.  Rendered only when some loop actually beat. *)
let render_watchdog () =
  let statuses =
    List.filter
      (fun (s : Telemetry.Watchdog.status) -> s.Telemetry.Watchdog.beats > 0)
      (Telemetry.Watchdog.snapshot ())
  in
  if statuses = [] then None
  else
    let opt = function None -> "-" | Some v -> string_of_int v in
    Some
      ("Stall watchdog\n"
      ^ table
          ~headers:
            [ "loop"; "active"; "beats"; "image"; "iteration"; "queries" ]
          ~rows:
            (List.map
               (fun (s : Telemetry.Watchdog.status) ->
                 [
                   s.Telemetry.Watchdog.name;
                   string_of_int s.Telemetry.Watchdog.active;
                   string_of_int s.Telemetry.Watchdog.beats;
                   opt s.Telemetry.Watchdog.image;
                   opt s.Telemetry.Watchdog.iteration;
                   opt s.Telemetry.Watchdog.queries;
                 ])
               statuses))

(* Background-sampler summary: only meaningful when a sampler ran
   (sampler.samples > 0); the gauges hold its last tick. *)
let render_sampler () =
  let samples =
    Telemetry.Counter.get (Telemetry.Metrics.counter "sampler.samples")
  in
  if samples = 0 then None
  else
    let gauge name =
      Telemetry.Gauge.get (Telemetry.Metrics.gauge name)
    in
    Some
      ("Runtime sampler (last tick)\n"
      ^ table
          ~headers:
            [
              "samples";
              "uptime (s)";
              "cpu user (s)";
              "heap (MB)";
              "minor gcs";
              "major gcs";
              "queries/s";
              "stalls";
            ]
          ~rows:
            [
              [
                string_of_int samples;
                Telemetry.Fmt.f1 (gauge "process.uptime_seconds");
                Telemetry.Fmt.f1 (gauge "process.cpu_user_seconds");
                Telemetry.Fmt.f1 (gauge "process.heap_mb");
                Printf.sprintf "%.0f" (gauge "process.minor_collections");
                Printf.sprintf "%.0f" (gauge "process.major_collections");
                Telemetry.Fmt.f1 (gauge "oracle.query_rate_per_s");
                string_of_int
                  (Telemetry.Counter.get
                     (Telemetry.Metrics.counter "watchdog.stalls"));
              ];
            ])

(* GC pause attribution from the runtime profiler (--profile): one row
   per (domain, minor/major) family plus %-of-wall-clock in GC, the
   denominator being the profiler's attached time. *)
let render_profiler () =
  match Telemetry.Profiler.summary () with
  | [] -> None
  | stats ->
      let active = Telemetry.Profiler.active_seconds () in
      let rows =
        List.map
          (fun (s : Telemetry.Profiler.gc_stat) ->
            [
              string_of_int s.Telemetry.Profiler.domain;
              s.Telemetry.Profiler.kind;
              string_of_int s.Telemetry.Profiler.pauses;
              Telemetry.Fmt.f2 (s.Telemetry.Profiler.total_s *. 1e3);
              Telemetry.Fmt.f2 (s.Telemetry.Profiler.p50_s *. 1e6);
              Telemetry.Fmt.f2 (s.Telemetry.Profiler.p99_s *. 1e6);
              (if active > 0. then
                 Telemetry.Fmt.percent (s.Telemetry.Profiler.total_s /. active)
               else "-");
            ])
          stats
      in
      let in_gc =
        List.fold_left
          (fun acc (s : Telemetry.Profiler.gc_stat) ->
            acc +. s.Telemetry.Profiler.total_s)
          0. stats
      in
      Some
        (Printf.sprintf
           "GC pauses (runtime profiler, %.1fs attached, %s of wall in GC)\n"
           active
           (if active > 0. then Telemetry.Fmt.percent (in_gc /. active)
            else "-")
        ^ table
            ~headers:
              [
                "domain"; "gc"; "pauses"; "total (ms)"; "p50 (us)";
                "p99 (us)"; "% wall";
              ]
            ~rows)

(* Consolidated run-telemetry section.  Sub-tables always appear in the
   same order (pool, cache, batch, quantiles, watchdog, sampler,
   profiler) regardless of argument order at the call site, so reports
   from different runs line up when diffed.  Returns "" when there is
   nothing to report — callers print nothing rather than a dangling
   header for runs with no instrumentation active. *)
let render_telemetry ?pool ?cache ?batch () =
  let sections =
    List.filter_map Fun.id
      [
        Option.map render_pool_stats pool;
        Option.map render_cache_stats cache;
        Option.map render_batch_stats batch;
        render_backend ();
        render_attack_quantiles ();
        render_watchdog ();
        render_sampler ();
        render_profiler ();
      ]
  in
  match sections with
  | [] -> ""
  | _ -> "Telemetry\n=========\n" ^ String.concat "\n\n" sections

let render_islands (o : Oppsla.Islands.outcome) =
  let headers =
    [
      "island";
      "beta";
      "final avg";
      "best avg";
      "proposals";
      "accepted";
      "pruned";
      "migrations in";
      "queries";
    ]
  in
  let rows =
    Array.to_list
      (Array.map
         (fun (r : Oppsla.Islands.island_report) ->
           [
             string_of_int r.Oppsla.Islands.island;
             Printf.sprintf "%.4g" r.Oppsla.Islands.beta;
             Telemetry.Fmt.f2 r.Oppsla.Islands.final_avg_queries;
             Telemetry.Fmt.f2 r.Oppsla.Islands.best_avg_queries;
             string_of_int r.Oppsla.Islands.proposals;
             string_of_int r.Oppsla.Islands.accepted;
             string_of_int r.Oppsla.Islands.pruned;
             string_of_int r.Oppsla.Islands.migrations_in;
             string_of_int r.Oppsla.Islands.queries;
           ])
         o.Oppsla.Islands.islands)
  in
  let resumed =
    match o.Oppsla.Islands.resumed_at with
    | None -> ""
    | Some r -> Printf.sprintf ", resumed from round %d" r
  in
  Printf.sprintf
    "Island synthesis (%d rounds, %d migrations, %d queries%s)\n%s\nbest: \
     %s (%s avg #queries)"
    o.Oppsla.Islands.rounds_completed o.Oppsla.Islands.migrations
    o.Oppsla.Islands.synth_queries resumed
    (table ~headers ~rows)
    (Oppsla.Dsl.print_program o.Oppsla.Islands.best)
    (Telemetry.Fmt.f2 o.Oppsla.Islands.best_avg_queries)

let render_targeted (rows : Experiments.targeted_row list) =
  match rows with
  | [] -> "(no data)"
  | first :: _ ->
      let budget_headers =
        List.map
          (fun (c : Experiments.fig3_cell) -> Printf.sprintf "<=%d" c.budget)
          first.Experiments.cells
      in
      let headers =
        [ "classifier"; "attack"; "target"; "#images" ]
        @ budget_headers
        @ [ "avg #queries"; "median #queries" ]
      in
      let body =
        List.map
          (fun (r : Experiments.targeted_row) ->
            [
              r.Experiments.classifier;
              r.Experiments.attacker;
              Printf.sprintf "%d (%s)" r.Experiments.target
                r.Experiments.target_name;
              string_of_int r.Experiments.attacked_images;
            ]
            @ List.map
                (fun (c : Experiments.fig3_cell) -> percent c.success_rate)
                r.Experiments.cells
            @ [
                float_opt r.Experiments.avg_queries;
                float_opt r.Experiments.median_queries;
              ])
          rows
      in
      "Targeted attacks - success rate by query budget, per target class\n"
      ^ table ~headers ~rows:body

let render_table2 (rows : Experiments.table2_row list) =
  let headers =
    [ "classifier"; "approach"; "success"; "avg #queries"; "median #queries" ]
  in
  let body =
    List.map
      (fun (r : Experiments.table2_row) ->
        [
          r.classifier;
          r.approach;
          percent r.success_rate;
          float_opt r.avg_queries;
          float_opt r.median_queries;
        ])
      rows
  in
  "Table 2 - ablation (synthesized conditions & stochastic search)\n"
  ^ table ~headers ~rows:body

type scale = {
  domains : int option;
  cache : bool;
  batch : int;
  budgets : int list;
  max_queries_cifar : int;
  max_queries_imagenet : int;
  su_population : int;
  random_samples : int;
  synth : Workbench.synth_params;
  imagenet_synth : Workbench.synth_params;
  imagenet_test_per_class : int;
  imagenet_synth_per_class : int;
  fig4_iters : int;
  fig4_test_images : int;
  attack_seed : int;
}

let default_scale =
  {
    domains = None;
    cache = true;
    batch = Oppsla.Sketch.default_batch;
    budgets = [ 50; 200 ];
    (* Full corner space for the CIFAR regime: below the full space the
       per-program success sets diverge and "average queries over
       successes" is biased toward attacks that only crack easy images
       (the paper's 10000-query budget also exceeds its full space). *)
    max_queries_cifar = 2048;
    max_queries_imagenet = 2048;
    su_population = 400;
    random_samples = 12;
    synth = { Workbench.default_synth_params with iters = 25 };
    imagenet_synth =
      {
        Workbench.default_synth_params with
        iters = 8;
        synth_max_queries_per_image = 1024;
      };
    imagenet_test_per_class = 3;
    imagenet_synth_per_class = 4;
    fig4_iters = 30;
    fig4_test_images = 15;
    attack_seed = 1234;
  }

let quick_scale =
  {
    domains = None;
    cache = true;
    batch = Oppsla.Sketch.default_batch;
    budgets = [ 25; 50 ];
    max_queries_cifar = 256;
    max_queries_imagenet = 256;
    su_population = 50;
    random_samples = 4;
    synth =
      {
        Workbench.default_synth_params with
        iters = 3;
        synth_max_queries_per_image = 256;
      };
    imagenet_synth =
      {
        Workbench.default_synth_params with
        iters = 2;
        synth_max_queries_per_image = 256;
      };
    imagenet_test_per_class = 2;
    imagenet_synth_per_class = 3;
    fig4_iters = 5;
    fig4_test_images = 6;
    attack_seed = 1234;
  }

(* Figure 3 *)

type fig3_cell = { budget : int; success_rate : float }

type fig3_row = {
  classifier : string;
  dataset : string;
  attacker : string;
  attacked_images : int;
  cells : fig3_cell list;
  avg_queries : float option;
}

(* One persistent pool per experiment run: synthesis proposal evaluation
   and the per-image attack fan-out all reuse the same resident domains
   instead of paying a spawn per batch.  Pool stats go to the config log
   so a run's parallel footprint is visible next to its results. *)
let with_experiment_pool scale (config : Workbench.config) name f =
  Parallel.Pool.with_pool ?domains:scale.domains (fun pool ->
      let result = f pool in
      let s = Parallel.Pool.stats pool in
      config.Workbench.log
        (Printf.sprintf
           "[%s] pool: %d domains, %d jobs, %d tasks (%d stolen), %ss busy"
           name s.Parallel.Pool.domains s.Parallel.Pool.jobs
           s.Parallel.Pool.tasks s.Parallel.Pool.steals
           (Telemetry.Fmt.f1 s.Parallel.Pool.busy_seconds));
      result)

(* [scale.batch] is the run's single batching knob: it overrides the
   synth params' own width so synthesis and attack phases agree. *)
let attackers_for scale synth_params c config pool =
  let synth_params = { synth_params with Workbench.batch = scale.batch } in
  let programs =
    Workbench.synthesize_programs ~params:synth_params ~pool config c
  in
  [
    Attackers.oppsla ~programs;
    Attackers.sparse_rs;
    Attackers.su_opa ~population:scale.su_population ();
  ]

(* The ImageNet regime gets its own (lighter) test / synthesis sizes. *)
let imagenet_config scale (config : Workbench.config) =
  {
    config with
    Workbench.test_per_class = scale.imagenet_test_per_class;
    synth_per_class = scale.imagenet_synth_per_class;
  }

(* One attack-phase store per classifier, shared across every attacker:
   Sparse-RS (k = 1) and the sketch family key the same corner space, so
   later attackers hit scores earlier ones already paid a forward pass
   for. *)
let attack_caches scale (c : Workbench.classifier) =
  if scale.cache then
    Some (Score_cache.store (Array.length c.Workbench.test))
  else None

let fig3_for_classifier scale config synth_params max_queries pool
    (c : Workbench.classifier) =
  let caches = attack_caches scale c in
  let attackers = attackers_for scale synth_params c config pool in
  Batcher.reset_global_stats ();
  let rows =
    List.map
      (fun attacker ->
        config.Workbench.log
          (Printf.sprintf "[fig3] %s vs %s (%d images)"
             attacker.Attackers.name c.Workbench.arch
             (Array.length c.Workbench.test));
        let records =
          Runner.run ~pool ?caches ~batch:scale.batch ~seed:scale.attack_seed
            ~max_queries attacker
            ~oracle_factory:(Workbench.oracle_factory c)
            c.Workbench.test
        in
        let budgets = scale.budgets @ [ max_queries ] in
        {
          classifier = c.Workbench.arch;
          dataset = c.Workbench.spec.Dataset.name;
          attacker = attacker.Attackers.name;
          attacked_images = Array.length c.Workbench.test;
          cells =
            List.map
              (fun budget ->
                {
                  budget;
                  success_rate = Runner.success_rate_at records budget;
                })
              budgets;
          avg_queries = Runner.avg_queries records;
        })
      attackers
  in
  Workbench.log_cache_stats config
    (Printf.sprintf "fig3 %s" c.Workbench.arch)
    caches;
  Workbench.log_batch_stats config
    (Printf.sprintf "fig3 %s" c.Workbench.arch)
    (Batcher.global_stats ());
  rows

let fig3_cifar ?(scale = default_scale) config =
  with_experiment_pool scale config "fig3cifar" (fun pool ->
      List.concat_map
        (fig3_for_classifier scale config scale.synth scale.max_queries_cifar
           pool)
        (Workbench.cifar_suite config))

let fig3_imagenet ?(scale = default_scale) config =
  let iconfig = imagenet_config scale config in
  with_experiment_pool scale iconfig "fig3imagenet" (fun pool ->
      List.concat_map
        (fig3_for_classifier scale iconfig scale.imagenet_synth
           scale.max_queries_imagenet pool)
        (Workbench.imagenet_suite iconfig))

let fig3 ?(scale = default_scale) config =
  fig3_cifar ~scale config @ fig3_imagenet ~scale config

(* Table 1 *)

type table1 = {
  classifiers : string list;
  avg_queries : float option array array;
}

let table1 ?(scale = default_scale) config =
  with_experiment_pool scale config "table1" (fun pool ->
      let suite = Array.of_list (Workbench.cifar_suite config) in
      let synth_params = { scale.synth with Workbench.batch = scale.batch } in
      let programs =
        Array.map
          (Workbench.synthesize_programs ~params:synth_params ~pool config)
          suite
      in
      let n = Array.length suite in
      let avg =
        Array.init n (fun target ->
            (* One store per target classifier, shared across the source
               programs: every OPPSLA run explores the same corner space
               on the same images, so cross-source hit rates are high. *)
            let caches = attack_caches scale suite.(target) in
            Batcher.reset_global_stats ();
            let row =
              Array.init n (fun source ->
                  config.Workbench.log
                    (Printf.sprintf "[table1] programs of %s vs %s"
                       suite.(source).Workbench.arch
                       suite.(target).Workbench.arch);
                  let attacker =
                    Attackers.oppsla ~programs:programs.(source)
                  in
                  let records =
                    Runner.run ~pool ?caches ~batch:scale.batch
                      ~seed:scale.attack_seed
                      ~max_queries:scale.max_queries_cifar attacker
                      ~oracle_factory:(Workbench.oracle_factory suite.(target))
                      suite.(target).Workbench.test
                  in
                  Runner.avg_queries records)
            in
            Workbench.log_cache_stats config
              (Printf.sprintf "table1 target %s" suite.(target).Workbench.arch)
              caches;
            Workbench.log_batch_stats config
              (Printf.sprintf "table1 target %s" suite.(target).Workbench.arch)
              (Batcher.global_stats ());
            row)
      in
      {
        classifiers =
          Array.to_list (Array.map (fun c -> c.Workbench.arch) suite);
        avg_queries = avg;
      })

(* Figure 4 *)

type fig4_point = {
  iteration : int;
  synth_queries : int;
  test_avg_queries : float;
}

type fig4 = { series : fig4_point list; baseline_avg_queries : float }

let fig4 ?(scale = default_scale) config =
  with_experiment_pool scale config "fig4" @@ fun pool ->
  let c = Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny" in
  let class_id = 0 (* airplane *) in
  let training = c.Workbench.synth_sets.(class_id) in
  if Array.length training = 0 then
    failwith "Experiments.fig4: no correctly classified training images";
  (* Held-out airplane images (a stream distinct from both the synthesis
     set and the standard test set). *)
  let heldout =
    Array.of_list
      (List.filter
         (fun (x, cl) -> Nn.Network.classify c.Workbench.net x = cl)
         (Array.to_list
            (Dataset.class_set c.Workbench.spec
               ~seed:(config.Workbench.seed + 3000003) ~class_id
               ~n:scale.fig4_test_images)))
  in
  (* Shared across every held-out evaluation: each accepted program (and
     the Sketch+False reference) re-walks the same corner space on the
     same images. *)
  let heldout_caches =
    if scale.cache then Some (Score_cache.store (Array.length heldout))
    else None
  in
  let evaluate_on_heldout program =
    let e =
      Workbench.parallel_evaluator ~pool ?caches:heldout_caches
        ~max_queries:scale.max_queries_cifar ~batch:scale.batch c program
        heldout
    in
    e.Oppsla.Score.avg_queries
  in
  let synth_config =
    {
      Oppsla.Synthesizer.default_config with
      beta = scale.synth.Workbench.beta;
      max_iters = scale.fig4_iters;
      max_queries_per_image =
        Some scale.synth.Workbench.synth_max_queries_per_image;
      batch = scale.batch;
    }
  in
  let g =
    Prng.named_stream
      (Prng.of_int config.Workbench.seed)
      (Printf.sprintf "fig4/%s/%d" c.Workbench.arch class_id)
  in
  let synth_caches =
    if scale.cache then Some (Score_cache.store (Array.length training))
    else None
  in
  Batcher.reset_global_stats ();
  let out =
    Oppsla.Synthesizer.synthesize ~config:synth_config ~pool ?caches:synth_caches
      g
      (Workbench.oracle_factory c ())
      ~training
  in
  (* Every accepted iteration changes the chain position; evaluate each on
     the held-out set. *)
  let series =
    List.filter_map
      (fun (it : Oppsla.Synthesizer.iteration) ->
        if not it.accepted then None
        else
          Some
            {
              iteration = it.index;
              synth_queries = it.synth_queries_total;
              test_avg_queries = evaluate_on_heldout it.program;
            })
      out.Oppsla.Synthesizer.trace
  in
  let result =
    {
      series;
      baseline_avg_queries =
        evaluate_on_heldout Oppsla.Condition.const_false_program;
    }
  in
  Workbench.log_cache_stats config "fig4 synthesis" synth_caches;
  Workbench.log_cache_stats config "fig4 held-out" heldout_caches;
  Workbench.log_batch_stats config "fig4" (Batcher.global_stats ());
  result

(* Table 2 *)

type table2_row = {
  classifier : string;
  approach : string;
  success_rate : float;
  avg_queries : float option;
  median_queries : float option;
}

let table2 ?(scale = default_scale) config =
  with_experiment_pool scale config "table2" @@ fun pool ->
  let suite = Workbench.cifar_suite config in
  List.concat_map
    (fun (c : Workbench.classifier) ->
      (* Shared across the four approaches: OPPSLA, Sketch+False,
         Sketch+Random and Sparse-RS all key the same corner space. *)
      let caches = attack_caches scale c in
      let run attacker =
        config.Workbench.log
          (Printf.sprintf "[table2] %s vs %s" attacker.Attackers.name
             c.Workbench.arch);
        Runner.run ~pool ?caches ~batch:scale.batch ~seed:scale.attack_seed
          ~max_queries:scale.max_queries_cifar attacker
          ~oracle_factory:(Workbench.oracle_factory c)
          c.Workbench.test
      in
      let row approach records =
        {
          classifier = c.Workbench.arch;
          approach;
          success_rate = Runner.success_rate records;
          avg_queries = Runner.avg_queries records;
          median_queries = Runner.median_queries records;
        }
      in
      let oppsla_programs =
        Workbench.synthesize_programs
          ~params:{ scale.synth with Workbench.batch = scale.batch }
          ~pool config c
      in
      let random_programs =
        Workbench.sketch_random_programs ~samples:scale.random_samples
          ~max_queries_per_image:
            scale.synth.Workbench.synth_max_queries_per_image
          ~cache:scale.synth.Workbench.cache ~batch:scale.batch ~pool config c
      in
      Batcher.reset_global_stats ();
      let rows =
        [
          row "OPPSLA" (run (Attackers.oppsla ~programs:oppsla_programs));
          row "Sketch+False" (run Attackers.sketch_false);
          row "Sketch+Random"
            (run (Attackers.oppsla ~programs:random_programs));
          row "Sparse-RS" (run Attackers.sparse_rs);
        ]
      in
      Workbench.log_cache_stats config
        (Printf.sprintf "table2 %s" c.Workbench.arch)
        caches;
      Workbench.log_batch_stats config
        (Printf.sprintf "table2 %s" c.Workbench.arch)
        (Batcher.global_stats ());
      rows)
    suite

(* Targeted attacks *)

type targeted_row = {
  classifier : string;
  attacker : string;
  target : int;
  target_name : string;
  attacked_images : int;
  cells : fig3_cell list;
  avg_queries : float option;
  median_queries : float option;
}

let targeted ?(scale = default_scale) config =
  with_experiment_pool scale config "targeted" @@ fun pool ->
  let c = Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny" in
  let max_queries = scale.max_queries_cifar in
  let budgets = scale.budgets @ [ max_queries ] in
  let attackers = [ Attackers.sketch_false; Attackers.sparse_rs ] in
  let classes = c.Workbench.spec.Dataset.num_classes in
  List.concat_map
    (fun target ->
      (* Images already classified as the target are trivially "won";
         the targeted protocol attacks only the rest. *)
      let samples = Workbench.targeted_samples c ~target in
      (* One store per target, shared across attackers: the perturbation
         key space is goal-independent, so Sparse-RS hits the scores
         Sketch+False already paid forward passes for. *)
      let caches =
        if scale.cache then Some (Score_cache.store (Array.length samples))
        else None
      in
      Batcher.reset_global_stats ();
      let rows =
        List.map
          (fun attacker ->
            config.Workbench.log
              (Printf.sprintf "[targeted] %s -> class %d (%d images)"
                 attacker.Attackers.name target (Array.length samples));
            let records =
              Runner.run ~pool ?caches ~batch:scale.batch
                ~goal:(Oppsla.Sketch.Targeted target) ~seed:scale.attack_seed
                ~max_queries attacker
                ~oracle_factory:(Workbench.oracle_factory c)
                samples
            in
            {
              classifier = c.Workbench.arch;
              attacker = attacker.Attackers.name;
              target;
              target_name = c.Workbench.spec.Dataset.class_names.(target);
              attacked_images = Array.length samples;
              cells =
                List.map
                  (fun budget ->
                    {
                      budget;
                      success_rate = Runner.success_rate_at records budget;
                    })
                  budgets;
              avg_queries = Runner.avg_queries records;
              median_queries = Runner.median_queries records;
            })
          attackers
      in
      Workbench.log_cache_stats config
        (Printf.sprintf "targeted class %d" target)
        caches;
      Workbench.log_batch_stats config
        (Printf.sprintf "targeted class %d" target)
        (Batcher.global_stats ());
      rows)
    (List.init classes Fun.id)

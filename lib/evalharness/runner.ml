type record = { true_class : int; success : bool; queries : int }

let run ?domains ?pool ?caches ?(batch = Oppsla.Sketch.default_batch)
    ?(goal = Oppsla.Sketch.Untargeted) ~seed ~max_queries
    (attacker : Attackers.t) ~oracle_factory samples =
  (match caches with
  | Some store when Score_cache.store_size store <> Array.length samples ->
      invalid_arg
        (Printf.sprintf "Runner.run: cache store has %d slots for %d samples"
           (Score_cache.store_size store)
           (Array.length samples))
  | _ -> ());
  let indexed = Array.mapi (fun i s -> (i, s)) samples in
  (* Stamp the image index onto the harness heartbeat so /healthz shows
     which sample a wedged run was on (the attackers themselves beat
     per query under their own loop names). *)
  let wd = Telemetry.Watchdog.loop "runner.attack" in
  let attack_one (i, (image, true_class)) =
    Telemetry.Watchdog.beat ~image:i wd;
    Telemetry.Journal.with_image i @@ fun () ->
    let g =
      Prng.named_stream (Prng.of_int seed)
        (Printf.sprintf "run/%s/%d" attacker.Attackers.name i)
    in
    let oracle = oracle_factory () in
    (* Attach the image's own slot to the image's own fresh oracle: the
       attacker signature takes only an oracle, so attachment is how the
       cache travels.  Slot i is only ever touched by the one worker
       attacking image i, so the ownership rule holds under the pool. *)
    (match caches with
    | Some store ->
        Oracle.set_cache oracle (Some (Score_cache.image_cache store i))
    | None -> ());
    let r =
      attacker.Attackers.run g oracle ~goal ~max_queries ~batch ~image
        ~true_class
    in
    {
      true_class;
      success = r.Oppsla.Sketch.adversarial <> None;
      queries = r.Oppsla.Sketch.queries;
    }
  in
  Telemetry.Watchdog.with_loop wd @@ fun () ->
  match pool with
  | Some pool -> Parallel.Pool.map pool attack_one indexed
  | None -> Parallel.map ?domains attack_one indexed

let success_rate_at records budget =
  if Array.length records = 0 then 0.
  else begin
    let hits = ref 0 in
    Array.iter
      (fun r -> if r.success && r.queries <= budget then incr hits)
      records;
    float_of_int !hits /. float_of_int (Array.length records)
  end

let success_rate records = success_rate_at records max_int

let successful_queries records =
  Array.to_list records
  |> List.filter_map (fun r -> if r.success then Some r.queries else None)

let avg_queries records =
  match successful_queries records with
  | [] -> None
  | qs ->
      Some
        (float_of_int (List.fold_left ( + ) 0 qs)
        /. float_of_int (List.length qs))

let median_queries records =
  match List.sort compare (successful_queries records) with
  | [] -> None
  | qs ->
      let n = List.length qs in
      let nth i = float_of_int (List.nth qs i) in
      if n mod 2 = 1 then Some (nth (n / 2))
      else Some ((nth ((n / 2) - 1) +. nth (n / 2)) /. 2.)

(** Offline analytics over the Chrome-trace JSONL that [--trace FILE]
    writes: parse the artifact back, rebuild the span nesting per
    track, and answer "where did the wall-clock go" — per-span-name
    self/total times, a critical-path decomposition that follows
    [pool.map] fan-outs onto the busiest worker track, and
    folded-stack output for flamegraph.pl / speedscope.  Behind
    [tools/traceprof.exe] and the [bench profile] live-attribution
    check. *)

type event = {
  name : string;
  cat : string;
  ph : string;  (** ["X"] complete, ["i"] instant, ... *)
  ts : float;  (** microseconds *)
  dur : float;  (** microseconds; 0 when the event carries none *)
  tid : int;  (** track (domain) id *)
}

type parsed = {
  events : event list;  (** file order *)
  skipped : int;  (** undecodable lines — truncated tail, noise *)
}

val parse_string : string -> parsed
(** Tolerant line-by-line parse of a trace file body: array framing
    and the comma-absorbing terminator are skipped, events may arrive
    in any order (domains interleave), and lines that do not decode
    (a crashed writer's half-written tail) are counted in [skipped]
    rather than failing the parse. *)

val parse_file : string -> parsed

(** {1 Span forests} *)

type span = {
  sname : string;
  scat : string;
  sts : float;  (** start, microseconds *)
  sdur : float;
  stid : int;
  children : span list;  (** start-ordered *)
}

val span_end : span -> float

type track = {
  tid : int;
  roots : span list;  (** start-ordered top-level spans *)
  busy_us : float;  (** sum of root durations *)
}

(** {1 Analysis} *)

type span_stat = {
  stat_name : string;
  count : int;
  total_us : float;
      (** summed durations; recursive re-entries are not re-counted,
          so one name's total cannot exceed wall-clock *)
  self_us : float;  (** durations minus children, clipped *)
}

type analysis = {
  tracks : track list;  (** tid-ascending *)
  stats : span_stat list;  (** self-time descending *)
  folded : (string * float) list;
      (** ["domainK;a;b" -> self us], descending — flamegraph frames *)
  wall_us : float;  (** trace extent over complete events *)
  attributed_us : float;  (** busy time of the busiest track *)
  coverage : float;  (** attributed / wall; 0 for an empty trace *)
  skipped : int;
}

val analyze : parsed -> analysis
(** Rebuild each track's span forest (events sorted by start, ties
    longest-first; an event starting before the stack top ends is its
    child; child contributions are clipped into the parent so
    calibrated GC events protruding a microsecond past a span edge
    cannot produce negative self time) and aggregate. *)

(** {1 Critical path} *)

type critical_step = { step : string; us : float; fraction : float }

type critical = {
  root_name : string;
  root_us : float;
  root_tid : int;
  steps : critical_step list;  (** us-descending; sums to [root_us] *)
}

val critical_path : analysis -> critical option
(** Decompose the longest top-level span's wall-clock into named
    steps: children recurse, [pool.map]/[pool.try_map] intervals jump
    to the busiest worker track inside the interval (the uncovered
    remainder — fan-out overhead plus worker idle — stays charged to
    the fan-out span), and each span's uncovered time is its own.
    [None] when the trace has no complete spans. *)

(** {1 Rendering} *)

val folded_lines : analysis -> string list
(** One ["frame;frame;frame <self-us>"] line per stack, flamegraph.pl
    and speedscope compatible (integer microsecond counts). *)

val render_stats : ?top:int -> analysis -> string
(** Top-N self-time attribution table (default 20 rows). *)

val render_critical : critical -> string
val render_summary : analysis -> string

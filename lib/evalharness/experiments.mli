(** The paper's experiments (Section 5 and Appendix C), scaled to the
    synthetic substrate.

    Every function returns structured data; {!Report} renders it in the
    shape of the paper's tables/figures.  Expensive artifacts (trained
    weights, synthesized programs) are cached through {!Workbench}. *)

type scale = {
  domains : int option;
      (** width of the per-experiment persistent domain pool; [None] =
          auto.  Parallelism never changes results: per-image oracles and
          image-order merging keep query counts bit-identical (see
          {!Oppsla.Score.evaluate_parallel}). *)
  cache : bool;
      (** memoize perturbation scores during the attack phases (one
          {!Score_cache} store per classifier, shared across attackers so
          later attackers hit scores earlier ones computed).  Like
          [domains], this never changes results — metering sits above the
          cache — it only cuts forward passes.  Synthesis-phase caching is
          governed separately by [synth.cache] /
          [imagenet_synth.cache]. *)
  batch : int;
      (** speculative candidate chunk width for every attack (synthesis
          and attack phases alike; overrides [synth.batch]).  Like
          [domains] and [cache] this never changes results — the
          {!Batcher} meters at consumption — it only batches forward
          passes.  Default {!Oppsla.Sketch.default_batch}. *)
  budgets : int list;  (** reporting budgets for Figure 3 *)
  max_queries_cifar : int;  (** attack allowance, CIFAR regime *)
  max_queries_imagenet : int;  (** attack allowance, ImageNet regime *)
  su_population : int;  (** SuOPA population (= its minimum queries) *)
  random_samples : int;  (** Sketch+Random sample count *)
  synth : Workbench.synth_params;  (** CIFAR-regime synthesis *)
  imagenet_synth : Workbench.synth_params;
      (** ImageNet-regime synthesis (lighter: larger search space, slower
          forward passes) *)
  imagenet_test_per_class : int;
  imagenet_synth_per_class : int;
  fig4_iters : int;  (** synthesis iterations traced in Figure 4 *)
  fig4_test_images : int;  (** held-out images for Figure 4's evaluation *)
  attack_seed : int;  (** seed for randomized attackers *)
}

val default_scale : scale
(** Laptop-scale defaults (see EXPERIMENTS.md for the mapping to the
    paper's parameters): budgets 50/200/full-space, SuOPA population 400,
    CIFAR synthesis of 25 iterations on 10 images per class, ImageNet
    synthesis of 15 iterations on 6 images per class. *)

val quick_scale : scale
(** A smoke-test scale that runs every experiment in a couple of minutes
    (tiny budgets and iteration counts; numbers are not meaningful). *)

(** {1 Figure 3: success rate vs. query budget} *)

type fig3_cell = { budget : int; success_rate : float }

type fig3_row = {
  classifier : string;
  dataset : string;
  attacker : string;
  attacked_images : int;
  cells : fig3_cell list;
  avg_queries : float option;  (** over successes at the full allowance *)
}

val fig3 : ?scale:scale -> Workbench.config -> fig3_row list
(** Three CIFAR-regime and two ImageNet-regime classifiers, each attacked
    by OPPSLA (per-class synthesized programs), Sparse-RS and SuOPA. *)

val fig3_cifar : ?scale:scale -> Workbench.config -> fig3_row list
val fig3_imagenet : ?scale:scale -> Workbench.config -> fig3_row list
(** The two halves of {!fig3}, runnable independently (the ImageNet
    regime is by far the more expensive). *)

(** {1 Table 1: transferability} *)

type table1 = {
  classifiers : string list;  (** row/column order *)
  avg_queries : float option array array;
      (** [avg.(target).(source)]: programs synthesized for [source], run
          against [target] *)
}

val table1 : ?scale:scale -> Workbench.config -> table1

(** {1 Figure 4: synthesis queries vs. program quality} *)

type fig4_point = {
  iteration : int;
  synth_queries : int;  (** cumulative synthesis queries when accepted *)
  test_avg_queries : float;  (** average attack queries on held-out images *)
}

type fig4 = {
  series : fig4_point list;  (** one point per newly accepted program *)
  baseline_avg_queries : float;  (** Sketch+False on the same held-out set *)
}

val fig4 : ?scale:scale -> Workbench.config -> fig4
(** Synthesis for vgg_tiny on the airplane class, tracing intermediate
    accepted programs, each evaluated on held-out airplane images. *)

(** {1 Table 2: ablation} *)

type table2_row = {
  classifier : string;
  approach : string;
  success_rate : float;  (** within the full attack allowance *)
  avg_queries : float option;
  median_queries : float option;
}

val table2 : ?scale:scale -> Workbench.config -> table2_row list
(** OPPSLA vs Sketch+False vs Sketch+Random vs Sparse-RS on the three
    CIFAR-regime classifiers. *)

(** {1 Targeted attacks}

    The targeted extension of the paper's untargeted protocol: for every
    class [t], attack every test image whose true class is not [t]
    ({!Workbench.targeted_samples}) with goal [Targeted t], recording
    success-by-budget curves like Figure 3.  One cache store per target,
    shared across attackers (perturbation cache keys are
    goal-independent). *)

type targeted_row = {
  classifier : string;
  attacker : string;
  target : int;
  target_name : string;
  attacked_images : int;
  cells : fig3_cell list;  (** success rate by budget, as in Figure 3 *)
  avg_queries : float option;
  median_queries : float option;
}

val targeted : ?scale:scale -> Workbench.config -> targeted_row list
(** Sketch+False and Sparse-RS against vgg_tiny, one row per
    (attacker, target class). *)

(** Experiment setup: trained classifiers, filtered test sets, per-class
    synthesis training sets, and artifact caching.

    Training a classifier and synthesizing its per-class adversarial
    programs are the expensive, reusable steps of every experiment, so
    both are cached on disk (weights via {!Nn.Serialize}, programs via the
    {!Oppsla.Dsl} concrete syntax).  Cache keys embed every parameter that
    affects the artifact, so changing a knob regenerates instead of
    reusing a stale file.

    Protocol notes mirroring the paper (Section 5): misclassified images
    are discarded from test sets before attacking; synthesis training
    sets are per-class. *)

type classifier = {
  arch : string;
  net : Nn.Network.t;
  spec : Dataset.spec;
  test : (Tensor.t * int) array;  (** correctly classified test images *)
  test_accuracy : float;  (** on the unfiltered test set *)
  synth_sets : (Tensor.t * int) array array;
      (** per-class synthesis training sets (correctly classified only) *)
  backend : Nn.Backend.kind;
      (** tensor engine its oracles score with (from {!config}) *)
}

type config = {
  artifacts_dir : string option;
      (** cache directory; [None] disables caching *)
  seed : int;
  train_per_class : int;  (** classifier training set size per class *)
  test_per_class : int;
  synth_per_class : int;  (** synthesis training images per class *)
  epochs : int;
  log : string -> unit;
  backend : Nn.Backend.kind;
      (** tensor engine for oracle forward passes ([Boxed] reference or
          the [F32] Bigarray plan); affects wall-clock only — query
          accounting and attack outcomes are engine-independent within
          {!Nn.Backend.score_tol} *)
}

val default_config : config
(** artifacts in ["_artifacts"], seed 42, 60/16 train/test per class,
    10 synthesis images per class, 8 epochs, silent log, boxed
    backend. *)

val cifar_architectures : string list
(** [vgg_tiny; resnet_tiny; googlenet_tiny] — the CIFAR-regime trio. *)

val imagenet_architectures : string list
(** [densenet_tiny; resnet50_tiny] — the ImageNet-regime pair. *)

val load_classifier : config -> Dataset.spec -> string -> classifier
(** Train (or load cached weights for) one architecture on one dataset
    and assemble its filtered test and synthesis sets.  Raises
    [Invalid_argument] for unknown architecture names. *)

val cifar_suite : config -> classifier list
val imagenet_suite : config -> classifier list

val oracle_factory : classifier -> unit -> Oracle.t
(** Fresh metered oracle per call (thread-safe usage pattern: one oracle
    per image, see {!Parallel}), scoring through the classifier's
    [backend]. *)

val targeted_samples : classifier -> target:int -> (Tensor.t * int) array
(** The classifier's attackable test images whose true class is not
    [target] — the sample set of a targeted run (images already
    classified as the target would succeed in zero queries).  Raises
    [Invalid_argument] for an out-of-range class. *)

val parallel_evaluator :
  ?domains:int ->
  ?pool:Parallel.Pool.t ->
  ?caches:Score_cache.store ->
  ?max_queries:int ->
  ?batch:int ->
  classifier ->
  Oppsla.Condition.program ->
  (Tensor.t * int) array ->
  Oppsla.Score.evaluation
(** Drop-in for {!Oppsla.Score.evaluate} that fans the per-image attacks
    out across domains: over [pool] when given (the hot path — no spawn
    cost per call), otherwise over a transient [domains]-wide pool.
    Every image gets its own metered oracle, and results merge in image
    order, so query counts are independent of the parallelism.

    [caches] follows the {!Oppsla.Score.evaluate} contract — slot [i]
    memoizes sample [i], safe under parallelism because each image (and
    hence its slot) is held by one domain at a time.  [batch] is the
    speculative chunk width of each per-image attack (default
    {!Oppsla.Sketch.default_batch}); bit-identical at every width. *)

type synth_params = {
  iters : int;
  beta : float;
  synth_max_queries_per_image : int;
  domains : int option;
  cache : bool;
      (** memoize perturbation scores per training image across MH
          proposals; bit-identical results either way (default [true]) *)
  batch : int;
      (** speculative candidate chunk width of every synthesis attack
          (default {!Oppsla.Sketch.default_batch}); bit-identical traces
          at every width *)
}

val default_synth_params : synth_params
(** 40 iterations, beta 0.02, 1024-query cap per synthesis attack,
    cache on, batch {!Oppsla.Sketch.default_batch}. *)

val log_cache_stats : config -> string -> Score_cache.store option -> unit
(** [log_cache_stats config label store] writes the store's aggregated
    hit/miss/footprint line to [config.log] ([None] logs nothing) — the
    one-line form of {!Report.render_cache_stats}, used after each
    synthesis run and attack sweep. *)

val log_batch_stats : config -> string -> Batcher.stats -> unit
(** One-line speculative-batching summary (chunks, buffer hits,
    mis-speculations) to [config.log]; silent when no queries were posed.
    The batcher's counters are global, so callers bracket the measured
    region with {!Batcher.reset_global_stats} and
    {!Batcher.global_stats}. *)

val synthesize_programs :
  ?params:synth_params ->
  ?pool:Parallel.Pool.t ->
  config ->
  classifier ->
  Oppsla.Condition.program array
(** One program per class, via OPPSLA on each class's synthesis set;
    cached under the artifacts directory.  Classes whose synthesis set is
    empty (no correctly classified image) fall back to the Sketch+False
    program.  MH proposal evaluation fans out over [pool] (or a
    transient pool sized by [params.domains]); the accepted-program trace
    is identical at every pool size. *)

val sketch_random_programs :
  ?samples:int ->
  ?max_queries_per_image:int ->
  ?cache:bool ->
  ?batch:int ->
  ?pool:Parallel.Pool.t ->
  config ->
  classifier ->
  Oppsla.Condition.program array
(** Per-class programs chosen by the Sketch+Random ablation baseline;
    cached like {!synthesize_programs}.  [cache] (default [true])
    memoizes perturbation scores per training image across the sampled
    programs, exactly as {!synth_params.cache} does for OPPSLA. *)

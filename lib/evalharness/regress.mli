(** Bench regression gate.

    Compares freshly produced bench JSON against the committed
    [BENCH_*.json] baselines and reports gated metrics that moved past a
    noise tolerance in the bad direction.  Which direction is bad is
    derived from the leaf field name: [*seconds*] and
    [*overhead_fraction*] must not grow; [*speedup*], [*images_per_sec*],
    [*hit_rate*] and [*per_s*] must not shrink; every other field
    (counts, flags, notes) is context and is not gated.  Baselines with
    magnitude under [min_magnitude] are skipped — sub-centisecond
    per-layer timings jitter by whole multiples between runs.

    Used by [bench regress] and the [tools/regress] CLI, both of which
    exit nonzero when {!passed} is false. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse_json : string -> json
(** Parse the JSON subset our bench writer emits.  Raises
    {!Parse_error} with an offset on malformed input. *)

val parse_file : string -> json

val registered_baselines : string list
(** The canonical committed-baseline set, one [BENCH_*.json] per bench
    mode that writes one.  Bench modes register here; the gates resolve
    this list rather than globbing, so a missing committed file is a
    loud named failure instead of a silent skip. *)

exception Missing_baseline of string list
(** Raised by {!locate_baselines} with every registered baseline that
    could not be found. *)

val locate_baselines : unit -> string list
(** Resolve {!registered_baselines} against the current directory, then
    one level up (the [dune runtest] staging layout).  Returns the
    resolved paths in registry order; raises {!Missing_baseline} naming
    the absentees if any registered file is found in neither place. *)

val flatten : json -> (string * float) list
(** Every numeric leaf as a dotted/indexed path:
    [{"runs": [{"s": 1.5}]}] yields [[("runs[0].s", 1.5)]]. *)

type direction = Lower_better | Higher_better | Ungated

val direction_of : string -> direction
(** The gate policy for a flattened metric path (keyed on its leaf). *)

type finding = {
  metric : string;
  baseline : float;
  fresh : float;
  change : float;  (** signed fractional change; positive = grew *)
}

type report = {
  checked : int;  (** gated metrics present in both files *)
  regressions : finding list;
  improvements : finding list;
      (** moved past tolerance in the good direction (informational) *)
  missing : string list;  (** gated in the baseline, absent fresh *)
}

val default_tolerance : float
(** 0.10 — tolerates 10% run-to-run noise while catching a 20% slide. *)

val default_min_magnitude : float

val compare_metrics :
  ?tolerance:float ->
  ?min_magnitude:float ->
  baseline:(string * float) list ->
  fresh:(string * float) list ->
  unit ->
  report

val compare_files :
  ?tolerance:float ->
  ?min_magnitude:float ->
  baseline:string ->
  fresh:string ->
  unit ->
  report

val passed : report -> bool
(** No regressions and no missing gated metrics. *)

val render : label:string -> report -> string
(** Human-readable verdict block (one line per finding). *)

val degrade : ?factor:float -> (string * float) list -> (string * float) list
(** Push every gated metric [factor] (default 1.2) past its baseline in
    the bad direction — the synthetic failure the gate's smoke test must
    catch. *)

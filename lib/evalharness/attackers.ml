type t = {
  name : string;
  run :
    Prng.t ->
    Oracle.t ->
    goal:Oppsla.Sketch.goal ->
    max_queries:int ->
    batch:int ->
    image:Tensor.t ->
    true_class:int ->
    Oppsla.Sketch.result;
}

let oppsla ~programs =
  {
    name = "OPPSLA";
    run =
      (fun _g oracle ~goal ~max_queries ~batch ~image ~true_class ->
        if true_class < 0 || true_class >= Array.length programs then
          invalid_arg
            (Printf.sprintf "Attackers.oppsla: no program for class %d"
               true_class);
        Oppsla.Sketch.attack ~max_queries ~goal ~batch oracle
          programs.(true_class) ~image ~true_class);
  }

let oppsla_single program =
  {
    name = "OPPSLA(single)";
    run =
      (fun _g oracle ~goal ~max_queries ~batch ~image ~true_class ->
        Oppsla.Sketch.attack ~max_queries ~goal ~batch oracle program ~image
          ~true_class);
  }

let sketch_false =
  {
    name = "Sketch+False";
    run =
      (fun _g oracle ~goal ~max_queries ~batch ~image ~true_class ->
        Baselines.Fixed.attack ~max_queries ~goal ~batch oracle ~image
          ~true_class);
  }

let sparse_rs =
  {
    name = "Sparse-RS";
    run =
      (fun g oracle ~goal ~max_queries ~batch ~image ~true_class ->
        let config = Baselines.Sparse_rs.default_config ~max_queries in
        Baselines.Sparse_rs.attack ~config ~batch ~goal g oracle ~image
          ~true_class);
  }

(* Multi-pixel and patch results are reported through the same
   single-pair result type the runner consumes (success flag + query
   count); the reported pair is the set's first element, the full set
   lives only in the baseline's own result type. *)
let sparse_rs_space space =
  {
    name = Printf.sprintf "Sparse-RS(%s)" (Oppsla.Space.to_string space);
    run =
      (fun g oracle ~goal ~max_queries ~batch ~image ~true_class ->
        let config = Baselines.Sparse_rs.default_config ~max_queries in
        let r =
          Baselines.Sparse_rs.attack_space ~config ~batch ~goal ~space g
            oracle ~image ~true_class
        in
        {
          Oppsla.Sketch.adversarial =
            Option.map
              (fun (pairs, candidate) -> (List.hd pairs, candidate))
              r.Baselines.Sparse_rs.adversarial;
          queries = r.Baselines.Sparse_rs.queries;
        });
  }

let su_opa ?(population = 400) () =
  {
    name = "SuOPA";
    run =
      (fun g oracle ~goal ~max_queries ~batch ~image ~true_class ->
        let config =
          { (Baselines.Su_opa.default_config ~max_queries) with population }
        in
        Baselines.Su_opa.attack ~config ~batch ~goal g oracle ~image
          ~true_class);
  }

(* The decision-based variant of any attacker: flip the per-image oracle
   to label-only observation before attacking.  The oracle handle is
   fresh per image (the runner's contract), so the flip never leaks into
   other attacks. *)
let decision t =
  {
    name = t.name ^ "/decision";
    run =
      (fun g oracle ~goal ~max_queries ~batch ~image ~true_class ->
        Oracle.set_mode oracle Oracle.Decision;
        t.run g oracle ~goal ~max_queries ~batch ~image ~true_class);
  }

let run_one ?(batch = Oppsla.Sketch.default_batch)
    ?(goal = Oppsla.Sketch.Untargeted) t ~seed ~oracle_factory ~max_queries
    ~image ~true_class =
  let g = Prng.named_stream (Prng.of_int seed) ("attack/" ^ t.name) in
  t.run g (oracle_factory ()) ~goal ~max_queries ~batch ~image ~true_class

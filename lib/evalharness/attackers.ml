type t = {
  name : string;
  run :
    Prng.t ->
    Oracle.t ->
    max_queries:int ->
    batch:int ->
    image:Tensor.t ->
    true_class:int ->
    Oppsla.Sketch.result;
}

let oppsla ~programs =
  {
    name = "OPPSLA";
    run =
      (fun _g oracle ~max_queries ~batch ~image ~true_class ->
        if true_class < 0 || true_class >= Array.length programs then
          invalid_arg
            (Printf.sprintf "Attackers.oppsla: no program for class %d"
               true_class);
        Oppsla.Sketch.attack ~max_queries ~batch oracle programs.(true_class)
          ~image ~true_class);
  }

let oppsla_single program =
  {
    name = "OPPSLA(single)";
    run =
      (fun _g oracle ~max_queries ~batch ~image ~true_class ->
        Oppsla.Sketch.attack ~max_queries ~batch oracle program ~image
          ~true_class);
  }

let sketch_false =
  {
    name = "Sketch+False";
    run =
      (fun _g oracle ~max_queries ~batch ~image ~true_class ->
        Baselines.Fixed.attack ~max_queries ~batch oracle ~image ~true_class);
  }

let sparse_rs =
  {
    name = "Sparse-RS";
    run =
      (fun g oracle ~max_queries ~batch ~image ~true_class ->
        let config = Baselines.Sparse_rs.default_config ~max_queries in
        Baselines.Sparse_rs.attack ~config ~batch g oracle ~image ~true_class);
  }

let su_opa ?(population = 400) () =
  {
    name = "SuOPA";
    run =
      (fun g oracle ~max_queries ~batch ~image ~true_class ->
        let config =
          { (Baselines.Su_opa.default_config ~max_queries) with population }
        in
        Baselines.Su_opa.attack ~config ~batch g oracle ~image ~true_class);
  }

let run_one ?(batch = Oppsla.Sketch.default_batch) t ~seed ~oracle_factory
    ~max_queries ~image ~true_class =
  let g = Prng.named_stream (Prng.of_int seed) ("attack/" ^ t.name) in
  t.run g (oracle_factory ()) ~max_queries ~batch ~image ~true_class

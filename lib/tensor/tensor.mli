(** Dense float tensors.

    A small, dependency-free tensor library sufficient to implement and
    train the convolutional networks used by the OPPSLA experiments.
    Tensors are immutable in shape but carry a mutable flat [float array]
    payload (OCaml unboxes float arrays, so this is as fast as it gets
    without C stubs).  Layout is row-major; images are stored CHW. *)

type t = private { shape : int array; data : float array }
(** [shape] is the dimension list; [data] has [numel] elements laid out
    row-major.  The record is [private]: use the constructors below so the
    shape/data invariant ([Array.length data = product shape]) always
    holds.  [data] may be mutated in place by the [*_inplace] operations. *)

exception Shape_mismatch of string
(** Raised when operand shapes are incompatible.  The payload describes the
    operation and both shapes. *)

(** {1 Construction} *)

val create : int array -> float -> t
(** [create shape v] is a tensor filled with [v]. *)

val zeros : int array -> t
val ones : int array -> t

val init : int array -> (int -> float) -> t
(** [init shape f] fills position [i] (flat index) with [f i]. *)

val of_array : int array -> float array -> t
(** [of_array shape data] wraps [data] (no copy).  Raises
    {!Shape_mismatch} if sizes disagree. *)

val scalar : float -> t
(** A rank-0 tensor. *)

val copy : t -> t

val randn : Prng.t -> ?mu:float -> ?sigma:float -> int array -> t
(** Gaussian-filled tensor. *)

val rand_uniform : Prng.t -> ?lo:float -> ?hi:float -> int array -> t

(** {1 Shape accessors} *)

val shape : t -> int array
val ndim : t -> int
val numel : t -> int

val dim : t -> int -> int
(** [dim t i] is the size of axis [i].  Raises [Invalid_argument] if out of
    range. *)

val same_shape : t -> t -> bool

val reshape : t -> int array -> t
(** [reshape t shape] shares [t]'s data under a new shape.  Raises
    {!Shape_mismatch} if element counts differ. *)

val flatten : t -> t
(** Rank-1 view sharing the same data. *)

(** {1 Element access} *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val flat_index : t -> int array -> int
(** Row-major flat index of a multi-index; bounds-checked. *)

(** {1 Elementwise operations}

    Binary operations raise {!Shape_mismatch} unless shapes are equal. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val neg : t -> t
val relu : t -> t
val clip : lo:float -> hi:float -> t -> t

val add_inplace : t -> t -> unit
(** [add_inplace dst src] accumulates [src] into [dst]. *)

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] sets [y <- alpha * x + y]. *)

val scale_inplace : float -> t -> unit
val fill : t -> float -> unit

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_val : t -> float
val min_val : t -> float

val argmax : t -> int
(** Flat index of the maximum (first occurrence). *)

val dot : t -> t -> float
(** Inner product of equal-shaped tensors. *)

val sq_norm : t -> float
(** Sum of squares. *)

val l1_norm : t -> float
val linf_norm : t -> float

(** {1 Linear algebra} *)

val matmul : t -> t -> t
(** [matmul a b] for [a : (m, k)] and [b : (k, n)] is [(m, n)].  Shapes
    are validated once up front; the kernel then runs unsafe, 4-way
    row-unrolled loops.  Every output element is accumulated in
    ascending-[k] order independent of the operand widths, so results do
    not depend on how callers batch their columns. *)

val matmul_nt : t -> t -> t
(** [matmul_nt a b] for [a : (m, k)] and [b : (n, k)] is [a bᵀ : (m, n)].
    Row [i] of the result is bit-equal to [matvec b a_i] — used by the
    batched dense layer so batching cannot perturb single-image scores. *)

val dense_batch : t -> weight:t -> bias:t -> t
(** [dense_batch x ~weight ~bias] for [x : (n, in_dim)],
    [weight : (out_dim, in_dim)] and [bias : (out_dim)] is the batched
    dense layer [x weightᵀ + bias : (n, out_dim)].  Row [i] is bit-equal
    to [add (matvec weight x_i) bias]; the single definition is shared by
    the layer engine and every pluggable tensor backend. *)

val matvec : t -> t -> t
(** [matvec a x] for [a : (m, k)] and [x : (k)] is [(m)]. *)

val matvec_t : t -> t -> t
(** [matvec_t a y] for [a : (m, k)] and [y : (m)] is [aᵀ y : (k)]. *)

val outer : t -> t -> t
(** [outer y x] for [y : (m)] and [x : (k)] is [(m, k)]. *)

val transpose : t -> t
(** 2-D transpose. *)

(** {1 Convolution and pooling}

    Images and feature maps are CHW ([|channels; height; width|]).
    Convolution weights are [|out_c; in_c; kh; kw|]. *)

val conv2d : ?stride:int -> ?pad:int -> t -> weight:t -> bias:t option -> t
(** [conv2d x ~weight ~bias] is a direct 2-D cross-correlation. *)

val im2col : ?stride:int -> ?pad:int -> kh:int -> kw:int -> t -> t
(** Patch-matrix expansion of a CHW tensor:
    [(in_c * kh * kw, oh * ow)], column [o] holding the receptive field
    of output position [o] (zero-padded outside the image).  Valid output
    ranges are precomputed per kernel tap, so the copy loops carry no
    per-element bounds branches. *)

val im2col_batch : ?stride:int -> ?pad:int -> kh:int -> kw:int -> t -> t
(** Batched {!im2col} over an NCHW tensor, producing one shared patch
    matrix [(in_c * kh * kw, n * oh * ow)] in which image [i] owns the
    column block [i*oh*ow, (i+1)*oh*ow) (memory cost: [kh*kw] copies of
    the input batch).  {!conv2d_gemm_batch} instead walks the batch with
    a reusable per-image panel to keep its working set cache-sized; this
    whole-batch expansion remains the reference formulation the tests
    check it against. *)

val conv2d_gemm : ?stride:int -> ?pad:int -> t -> weight:t -> bias:t option -> t
(** Convolution via {!im2col} + GEMM.  The output is seeded with the bias
    before the GEMM accumulates taps in ascending ic/ky/kx order — the
    same per-element summation order as {!conv2d}, so the two
    formulations agree bit-for-bit on finite inputs.  Ablated against the
    direct loop in the micro benchmark. *)

val conv2d_gemm_batch :
  ?stride:int -> ?pad:int -> t -> weight:t -> bias:t option -> t
(** Batched {!conv2d_gemm} over NCHW input: per-image GEMMs over a
    per-domain reusable patch panel, each accumulating straight into the
    image's contiguous output block (small working set, no per-call
    patch-matrix allocation).  Image [i] of the result is bit-equal to
    [conv2d_gemm] of image [i] alone (the GEMM accumulation order is
    batch-width independent). *)

val conv2d_backward :
  ?stride:int ->
  ?pad:int ->
  x:t ->
  weight:t ->
  t ->
  t * t * t
(** [conv2d_backward ~x ~weight dout] returns [(dx, dweight, dbias)]. *)

val max_pool2d : ?stride:int -> size:int -> t -> t * int array
(** Returns the pooled map and the flat argmax indices (one per output
    element) needed by the backward pass. *)

val max_pool2d_backward : x_shape:int array -> switches:int array -> t -> t
(** [max_pool2d_backward ~x_shape ~switches dout] scatters [dout] back
    through the recorded switches. *)

val avg_pool2d : ?stride:int -> size:int -> t -> t
val avg_pool2d_backward : ?stride:int -> size:int -> x_shape:int array -> t -> t

val global_avg_pool : t -> t
(** CHW -> C means. *)

val global_avg_pool_backward : x_shape:int array -> t -> t

val max_pool2d_batch : ?stride:int -> size:int -> t -> t
(** Batched (NCHW) {!max_pool2d} without switches: pooling acts per
    channel plane, so the batch folds to [(n*c); h; w], runs the
    single-image kernel and unfolds. *)

val avg_pool2d_batch : ?stride:int -> size:int -> t -> t
(** Batched (NCHW) {!avg_pool2d}. *)

val global_avg_pool_batch : t -> t
(** Batched (NCHW) {!global_avg_pool}, producing [|n; c|]. *)

val channel_norm_batch : gamma:t -> beta:t -> eps:float -> t -> t
(** Per-plane standardization of an NCHW tensor: each (image, channel)
    plane is normalized by its own mean and [1/sqrt(var + eps)], then
    scaled and shifted by the per-channel [gamma]/[beta].  Image [i] of
    the result is bit-equal to normalizing image [i] alone. *)

(** {1 Softmax and losses} *)

val softmax : t -> t
(** Numerically stable softmax over a rank-1 tensor. *)

val softmax_rows : t -> t
(** Row-wise {!softmax} over an [(n, classes)] matrix; each row is
    bit-equal to [softmax row]. *)

val log_softmax : t -> t

val cross_entropy : t -> int -> float
(** [cross_entropy logits label] is the negative log-likelihood of [label]
    under [softmax logits]. *)

val cross_entropy_grad : t -> int -> t
(** Gradient of {!cross_entropy} with respect to the logits
    ([softmax logits - onehot label]). *)

(** {1 Misc} *)

val concat_channels : t list -> t
(** Concatenate CHW tensors with equal H and W along the channel axis. *)

val concat_channels_batch : t list -> t
(** Batched {!concat_channels}: NCHW tensors with equal N, H and W are
    concatenated along the channel axis, image by image. *)

val split_channels : t -> int list -> t list
(** Inverse of {!concat_channels} given the channel counts. *)

val equal : ?eps:float -> t -> t -> bool
(** Shape equality plus elementwise comparison within [eps]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Shape plus (truncated) contents, for debugging. *)

val to_string : t -> string

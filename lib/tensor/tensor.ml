type t = { shape : int array; data : float array }

exception Shape_mismatch of string

let shape_to_string shape =
  "[" ^ String.concat "; " (Array.to_list (Array.map string_of_int shape)) ^ "]"

let product shape = Array.fold_left ( * ) 1 shape

let fail_shape op a b =
  raise
    (Shape_mismatch
       (Printf.sprintf "%s: %s vs %s" op (shape_to_string a) (shape_to_string b)))

(* Construction *)

let create shape v = { shape = Array.copy shape; data = Array.make (product shape) v }
let zeros shape = create shape 0.
let ones shape = create shape 1.

let init shape f =
  { shape = Array.copy shape; data = Array.init (product shape) f }

let of_array shape data =
  if product shape <> Array.length data then
    raise
      (Shape_mismatch
         (Printf.sprintf "of_array: shape %s needs %d elements, got %d"
            (shape_to_string shape) (product shape) (Array.length data)));
  { shape = Array.copy shape; data }

let scalar v = { shape = [||]; data = [| v |] }
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }

let randn g ?(mu = 0.) ?(sigma = 1.) shape =
  init shape (fun _ -> Prng.normal g ~mu ~sigma ())

let rand_uniform g ?(lo = 0.) ?(hi = 1.) shape =
  init shape (fun _ -> Prng.float_in g lo hi)

(* Shape accessors *)

let shape t = Array.copy t.shape
let ndim t = Array.length t.shape
let numel t = Array.length t.data

let dim t i =
  if i < 0 || i >= Array.length t.shape then
    invalid_arg (Printf.sprintf "Tensor.dim: axis %d of rank %d" i (ndim t));
  t.shape.(i)

let same_shape a b = a.shape = b.shape

let reshape t shape =
  if product shape <> numel t then
    raise
      (Shape_mismatch
         (Printf.sprintf "reshape: %s (=%d) to %s (=%d)"
            (shape_to_string t.shape) (numel t) (shape_to_string shape)
            (product shape)));
  { shape = Array.copy shape; data = t.data }

let flatten t = { shape = [| numel t |]; data = t.data }

(* Element access *)

let flat_index t idx =
  let n = Array.length t.shape in
  if Array.length idx <> n then
    invalid_arg
      (Printf.sprintf "Tensor.flat_index: %d indices for rank %d"
         (Array.length idx) n);
  let off = ref 0 in
  for i = 0 to n - 1 do
    let k = idx.(i) in
    if k < 0 || k >= t.shape.(i) then
      invalid_arg
        (Printf.sprintf "Tensor.flat_index: index %d out of bounds on axis %d (size %d)"
           k i t.shape.(i));
    off := (!off * t.shape.(i)) + k
  done;
  !off

let get t idx = t.data.(flat_index t idx)
let set t idx v = t.data.(flat_index t idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

(* Elementwise *)

let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (same_shape a b) then fail_shape "map2" a.shape b.shape;
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let div a b = map2 ( /. ) a b
let scale k t = map (fun v -> k *. v) t
let add_scalar k t = map (fun v -> k +. v) t
let neg t = map (fun v -> -.v) t
let relu t = map (fun v -> if v > 0. then v else 0.) t

let clip ~lo ~hi t =
  map (fun v -> if v < lo then lo else if v > hi then hi else v) t

let add_inplace dst src =
  if not (same_shape dst src) then fail_shape "add_inplace" dst.shape src.shape;
  let d = dst.data and s = src.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- d.(i) +. s.(i)
  done

let axpy ~alpha x y =
  if not (same_shape x y) then fail_shape "axpy" x.shape y.shape;
  let xd = x.data and yd = y.data in
  for i = 0 to Array.length xd - 1 do
    yd.(i) <- yd.(i) +. (alpha *. xd.(i))
  done

let scale_inplace k t =
  let d = t.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- k *. d.(i)
  done

let fill t v = Array.fill t.data 0 (Array.length t.data) v

(* Reductions *)

let sum t = Array.fold_left ( +. ) 0. t.data

let mean t =
  if numel t = 0 then invalid_arg "Tensor.mean: empty tensor";
  sum t /. float_of_int (numel t)

let fold_nonempty name f t =
  if numel t = 0 then invalid_arg ("Tensor." ^ name ^ ": empty tensor");
  let acc = ref t.data.(0) in
  for i = 1 to numel t - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let max_val t = fold_nonempty "max_val" Float.max t
let min_val t = fold_nonempty "min_val" Float.min t

let argmax t =
  if numel t = 0 then invalid_arg "Tensor.argmax: empty tensor";
  let best = ref 0 in
  for i = 1 to numel t - 1 do
    if t.data.(i) > t.data.(!best) then best := i
  done;
  !best

let dot a b =
  if not (same_shape a b) then fail_shape "dot" a.shape b.shape;
  let acc = ref 0. in
  for i = 0 to numel a - 1 do
    acc := !acc +. (a.data.(i) *. b.data.(i))
  done;
  !acc

let sq_norm t = dot t t
let l1_norm t = Array.fold_left (fun acc v -> acc +. Float.abs v) 0. t.data

let linf_norm t =
  Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. t.data

(* Linear algebra *)

let check_rank name t r =
  if ndim t <> r then
    invalid_arg
      (Printf.sprintf "Tensor.%s: expected rank %d, got %s" name r
         (shape_to_string t.shape))

let matmul a b =
  check_rank "matmul" a 2;
  check_rank "matmul" b 2;
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then fail_shape "matmul" a.shape b.shape;
  let out = zeros [| m; n |] in
  let ad = a.data and bd = b.data and od = out.data in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let av = ad.((i * k) + p) in
      if av <> 0. then begin
        let boff = p * n and ooff = i * n in
        for j = 0 to n - 1 do
          od.(ooff + j) <- od.(ooff + j) +. (av *. bd.(boff + j))
        done
      end
    done
  done;
  out

let matvec a x =
  check_rank "matvec" a 2;
  check_rank "matvec" x 1;
  let m = a.shape.(0) and k = a.shape.(1) in
  if k <> x.shape.(0) then fail_shape "matvec" a.shape x.shape;
  let out = zeros [| m |] in
  let ad = a.data and xd = x.data and od = out.data in
  for i = 0 to m - 1 do
    let acc = ref 0. and off = i * k in
    for p = 0 to k - 1 do
      acc := !acc +. (Array.unsafe_get ad (off + p) *. Array.unsafe_get xd p)
    done;
    od.(i) <- !acc
  done;
  out

let matvec_t a y =
  check_rank "matvec_t" a 2;
  check_rank "matvec_t" y 1;
  let m = a.shape.(0) and k = a.shape.(1) in
  if m <> y.shape.(0) then fail_shape "matvec_t" a.shape y.shape;
  let out = zeros [| k |] in
  let ad = a.data and yd = y.data and od = out.data in
  for i = 0 to m - 1 do
    let yv = yd.(i) and off = i * k in
    if yv <> 0. then
      for p = 0 to k - 1 do
        od.(p) <- od.(p) +. (yv *. ad.(off + p))
      done
  done;
  out

let outer y x =
  check_rank "outer" y 1;
  check_rank "outer" x 1;
  let m = y.shape.(0) and k = x.shape.(0) in
  let out = zeros [| m; k |] in
  let od = out.data in
  for i = 0 to m - 1 do
    let yv = y.data.(i) and off = i * k in
    for p = 0 to k - 1 do
      od.(off + p) <- yv *. x.data.(p)
    done
  done;
  out

let transpose a =
  check_rank "transpose" a 2;
  let m = a.shape.(0) and n = a.shape.(1) in
  init [| n; m |] (fun i ->
      let r = i / m and c = i mod m in
      a.data.((c * n) + r))

(* Convolution: direct cross-correlation on CHW tensors. *)

let conv_out_dim size k stride pad = ((size + (2 * pad) - k) / stride) + 1

let conv2d ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  check_rank "conv2d" x 3;
  check_rank "conv2d" weight 4;
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let out_c = weight.shape.(0)
  and win_c = weight.shape.(1)
  and kh = weight.shape.(2)
  and kw = weight.shape.(3) in
  if in_c <> win_c then fail_shape "conv2d" x.shape weight.shape;
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor.conv2d: kernel larger than padded input";
  let out = zeros [| out_c; oh; ow |] in
  let xd = x.data and wd = weight.data and od = out.data in
  (* Hot path: indices below are in bounds by the loop structure (every
     access is guarded by the iy/ix range checks), so unsafe accesses are
     used to keep inference fast — this loop dominates attack runtime. *)
  for oc = 0 to out_c - 1 do
    let b = match bias with None -> 0. | Some bt -> bt.data.(oc) in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref b in
        let iy0 = (oy * stride) - pad and ix0 = (ox * stride) - pad in
        for ic = 0 to in_c - 1 do
          let xoff = ic * h * w
          and woff = (((oc * in_c) + ic) * kh) * kw in
          for ky = 0 to kh - 1 do
            let iy = iy0 + ky in
            if iy >= 0 && iy < h then begin
              let xrow = xoff + (iy * w) and wrow = woff + (ky * kw) in
              let kx0 = if ix0 < 0 then -ix0 else 0 in
              let kx1 = if ix0 + kw > w then w - ix0 - 1 else kw - 1 in
              for kx = kx0 to kx1 do
                acc :=
                  !acc
                  +. (Array.unsafe_get xd (xrow + ix0 + kx)
                     *. Array.unsafe_get wd (wrow + kx))
              done
            end
          done
        done;
        Array.unsafe_set od ((((oc * oh) + oy) * ow) + ox) !acc
      done
    done
  done;
  out

let im2col ?(stride = 1) ?(pad = 0) ~kh ~kw x =
  check_rank "im2col" x 3;
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor.im2col: kernel larger than padded input";
  let rows = in_c * kh * kw and cols = oh * ow in
  let out = zeros [| rows; cols |] in
  let xd = x.data and od = out.data in
  for ic = 0 to in_c - 1 do
    for ky = 0 to kh - 1 do
      for kx = 0 to kw - 1 do
        let row = (((ic * kh) + ky) * kw) + kx in
        for oy = 0 to oh - 1 do
          let iy = (oy * stride) - pad + ky in
          if iy >= 0 && iy < h then begin
            for ox = 0 to ow - 1 do
              let ix = (ox * stride) - pad + kx in
              if ix >= 0 && ix < w then
                od.((row * cols) + (oy * ow) + ox) <-
                  xd.((((ic * h) + iy) * w) + ix)
            done
          end
        done
      done
    done
  done;
  out

let conv2d_gemm ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  check_rank "conv2d_gemm" x 3;
  check_rank "conv2d_gemm" weight 4;
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let out_c = weight.shape.(0)
  and win_c = weight.shape.(1)
  and kh = weight.shape.(2)
  and kw = weight.shape.(3) in
  if in_c <> win_c then fail_shape "conv2d_gemm" x.shape weight.shape;
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  let patches = im2col ~stride ~pad ~kh ~kw x in
  let wmat = reshape weight [| out_c; in_c * kh * kw |] in
  let flat = matmul wmat patches in
  let out = reshape flat [| out_c; oh; ow |] in
  (match bias with
  | None -> ()
  | Some bt ->
      for oc = 0 to out_c - 1 do
        let b = bt.data.(oc) and off = oc * oh * ow in
        for i = 0 to (oh * ow) - 1 do
          out.data.(off + i) <- out.data.(off + i) +. b
        done
      done);
  out

let conv2d_backward ?(stride = 1) ?(pad = 0) ~x ~weight dout =
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let out_c = weight.shape.(0)
  and kh = weight.shape.(2)
  and kw = weight.shape.(3) in
  let oh = dout.shape.(1) and ow = dout.shape.(2) in
  let dx = zeros [| in_c; h; w |] in
  let dw = zeros (Array.copy weight.shape) in
  let db = zeros [| out_c |] in
  let xd = x.data
  and wd = weight.data
  and dod = dout.data
  and dxd = dx.data
  and dwd = dw.data in
  for oc = 0 to out_c - 1 do
    let dbacc = ref 0. in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let g = dod.((((oc * oh) + oy) * ow) + ox) in
        if g <> 0. then begin
          dbacc := !dbacc +. g;
          let iy0 = (oy * stride) - pad and ix0 = (ox * stride) - pad in
          for ic = 0 to in_c - 1 do
            let xoff = ic * h * w
            and woff = (((oc * in_c) + ic) * kh) * kw in
            for ky = 0 to kh - 1 do
              let iy = iy0 + ky in
              if iy >= 0 && iy < h then begin
                let xrow = xoff + (iy * w) and wrow = woff + (ky * kw) in
                for kx = 0 to kw - 1 do
                  let ix = ix0 + kx in
                  if ix >= 0 && ix < w then begin
                    dwd.(wrow + kx) <- dwd.(wrow + kx) +. (g *. xd.(xrow + ix));
                    dxd.(xrow + ix) <- dxd.(xrow + ix) +. (g *. wd.(wrow + kx))
                  end
                done
              end
            done
          done
        end
      done
    done;
    db.data.(oc) <- !dbacc
  done;
  (dx, dw, db)

(* Pooling *)

let max_pool2d ?stride ~size x =
  check_rank "max_pool2d" x 3;
  let stride = match stride with None -> size | Some s -> s in
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = conv_out_dim h size stride 0 and ow = conv_out_dim w size stride 0 in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.max_pool2d: window too large";
  let out = zeros [| c; oh; ow |] in
  let switches = Array.make (c * oh * ow) 0 in
  let xd = x.data and od = out.data in
  for ch = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let best = ref neg_infinity and besti = ref 0 in
        for ky = 0 to size - 1 do
          for kx = 0 to size - 1 do
            let iy = (oy * stride) + ky and ix = (ox * stride) + kx in
            if iy < h && ix < w then begin
              let idx = (((ch * h) + iy) * w) + ix in
              if xd.(idx) > !best then begin
                best := xd.(idx);
                besti := idx
              end
            end
          done
        done;
        let oidx = (((ch * oh) + oy) * ow) + ox in
        od.(oidx) <- !best;
        switches.(oidx) <- !besti
      done
    done
  done;
  (out, switches)

let max_pool2d_backward ~x_shape ~switches dout =
  let dx = zeros x_shape in
  let dod = dout.data and dxd = dx.data in
  for i = 0 to Array.length dod - 1 do
    dxd.(switches.(i)) <- dxd.(switches.(i)) +. dod.(i)
  done;
  dx

let avg_pool2d ?stride ~size x =
  check_rank "avg_pool2d" x 3;
  let stride = match stride with None -> size | Some s -> s in
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = conv_out_dim h size stride 0 and ow = conv_out_dim w size stride 0 in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.avg_pool2d: window too large";
  let out = zeros [| c; oh; ow |] in
  let inv = 1. /. float_of_int (size * size) in
  let xd = x.data and od = out.data in
  for ch = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref 0. in
        for ky = 0 to size - 1 do
          for kx = 0 to size - 1 do
            let iy = (oy * stride) + ky and ix = (ox * stride) + kx in
            if iy < h && ix < w then acc := !acc +. xd.((((ch * h) + iy) * w) + ix)
          done
        done;
        od.((((ch * oh) + oy) * ow) + ox) <- !acc *. inv
      done
    done
  done;
  out

let avg_pool2d_backward ?stride ~size ~x_shape dout =
  let stride = match stride with None -> size | Some s -> s in
  let c = x_shape.(0) and h = x_shape.(1) and w = x_shape.(2) in
  let oh = dout.shape.(1) and ow = dout.shape.(2) in
  let dx = zeros x_shape in
  let inv = 1. /. float_of_int (size * size) in
  let dod = dout.data and dxd = dx.data in
  for ch = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let g = dod.((((ch * oh) + oy) * ow) + ox) *. inv in
        for ky = 0 to size - 1 do
          for kx = 0 to size - 1 do
            let iy = (oy * stride) + ky and ix = (ox * stride) + kx in
            if iy < h && ix < w then begin
              let idx = (((ch * h) + iy) * w) + ix in
              dxd.(idx) <- dxd.(idx) +. g
            end
          done
        done
      done
    done
  done;
  dx

let global_avg_pool x =
  check_rank "global_avg_pool" x 3;
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let inv = 1. /. float_of_int (h * w) in
  init [| c |] (fun ch ->
      let acc = ref 0. and off = ch * h * w in
      for i = 0 to (h * w) - 1 do
        acc := !acc +. x.data.(off + i)
      done;
      !acc *. inv)

let global_avg_pool_backward ~x_shape dout =
  let h = x_shape.(1) and w = x_shape.(2) in
  let inv = 1. /. float_of_int (h * w) in
  init x_shape (fun i -> dout.data.(i / (h * w)) *. inv)

(* Softmax and losses *)

let softmax t =
  check_rank "softmax" t 1;
  let m = max_val t in
  let exps = map (fun v -> exp (v -. m)) t in
  let z = sum exps in
  scale (1. /. z) exps

let log_softmax t =
  check_rank "log_softmax" t 1;
  let m = max_val t in
  let z = Array.fold_left (fun acc v -> acc +. exp (v -. m)) 0. t.data in
  let logz = m +. log z in
  map (fun v -> v -. logz) t

let cross_entropy logits label =
  if label < 0 || label >= numel logits then
    invalid_arg "Tensor.cross_entropy: label out of range";
  -.(log_softmax logits).data.(label)

let cross_entropy_grad logits label =
  if label < 0 || label >= numel logits then
    invalid_arg "Tensor.cross_entropy_grad: label out of range";
  let p = softmax logits in
  p.data.(label) <- p.data.(label) -. 1.;
  p

(* Misc *)

let concat_channels ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat_channels: empty list"
  | first :: _ ->
      List.iter (fun t -> check_rank "concat_channels" t 3) ts;
      let h = first.shape.(1) and w = first.shape.(2) in
      List.iter
        (fun t ->
          if t.shape.(1) <> h || t.shape.(2) <> w then
            fail_shape "concat_channels" first.shape t.shape)
        ts;
      let total_c = List.fold_left (fun acc t -> acc + t.shape.(0)) 0 ts in
      let out = zeros [| total_c; h; w |] in
      let off = ref 0 in
      List.iter
        (fun t ->
          Array.blit t.data 0 out.data !off (numel t);
          off := !off + numel t)
        ts;
      out

let split_channels t counts =
  check_rank "split_channels" t 3;
  let h = t.shape.(1) and w = t.shape.(2) in
  let total = List.fold_left ( + ) 0 counts in
  if total <> t.shape.(0) then
    invalid_arg "Tensor.split_channels: channel counts do not sum to shape";
  let off = ref 0 in
  List.map
    (fun c ->
      let piece = zeros [| c; h; w |] in
      Array.blit t.data !off piece.data 0 (c * h * w);
      off := !off + (c * h * w);
      piece)
    counts

let equal ?(eps = 1e-9) a b =
  same_shape a b
  && (let ok = ref true in
      for i = 0 to numel a - 1 do
        if Float.abs (a.data.(i) -. b.data.(i)) > eps then ok := false
      done;
      !ok)

let pp fmt t =
  let n = numel t in
  let max_show = 16 in
  Format.fprintf fmt "Tensor%s [" (shape_to_string t.shape);
  for i = 0 to min n max_show - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if n > max_show then Format.fprintf fmt "; ...(%d more)" (n - max_show);
  Format.fprintf fmt "]"

let to_string t = Format.asprintf "%a" pp t

type t = { shape : int array; data : float array }

exception Shape_mismatch of string

let shape_to_string shape =
  "[" ^ String.concat "; " (Array.to_list (Array.map string_of_int shape)) ^ "]"

let product shape = Array.fold_left ( * ) 1 shape

let fail_shape op a b =
  raise
    (Shape_mismatch
       (Printf.sprintf "%s: %s vs %s" op (shape_to_string a) (shape_to_string b)))

(* Construction *)

let create shape v = { shape = Array.copy shape; data = Array.make (product shape) v }
let zeros shape = create shape 0.
let ones shape = create shape 1.

let init shape f =
  { shape = Array.copy shape; data = Array.init (product shape) f }

let of_array shape data =
  if product shape <> Array.length data then
    raise
      (Shape_mismatch
         (Printf.sprintf "of_array: shape %s needs %d elements, got %d"
            (shape_to_string shape) (product shape) (Array.length data)));
  { shape = Array.copy shape; data }

let scalar v = { shape = [||]; data = [| v |] }
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }

let randn g ?(mu = 0.) ?(sigma = 1.) shape =
  init shape (fun _ -> Prng.normal g ~mu ~sigma ())

let rand_uniform g ?(lo = 0.) ?(hi = 1.) shape =
  init shape (fun _ -> Prng.float_in g lo hi)

(* Shape accessors *)

let shape t = Array.copy t.shape
let ndim t = Array.length t.shape
let numel t = Array.length t.data

let dim t i =
  if i < 0 || i >= Array.length t.shape then
    invalid_arg (Printf.sprintf "Tensor.dim: axis %d of rank %d" i (ndim t));
  t.shape.(i)

let same_shape a b = a.shape = b.shape

let reshape t shape =
  if product shape <> numel t then
    raise
      (Shape_mismatch
         (Printf.sprintf "reshape: %s (=%d) to %s (=%d)"
            (shape_to_string t.shape) (numel t) (shape_to_string shape)
            (product shape)));
  { shape = Array.copy shape; data = t.data }

let flatten t = { shape = [| numel t |]; data = t.data }

(* Element access *)

let flat_index t idx =
  let n = Array.length t.shape in
  if Array.length idx <> n then
    invalid_arg
      (Printf.sprintf "Tensor.flat_index: %d indices for rank %d"
         (Array.length idx) n);
  let off = ref 0 in
  for i = 0 to n - 1 do
    let k = idx.(i) in
    if k < 0 || k >= t.shape.(i) then
      invalid_arg
        (Printf.sprintf "Tensor.flat_index: index %d out of bounds on axis %d (size %d)"
           k i t.shape.(i));
    off := (!off * t.shape.(i)) + k
  done;
  !off

let get t idx = t.data.(flat_index t idx)
let set t idx v = t.data.(flat_index t idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

(* Elementwise *)

let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (same_shape a b) then fail_shape "map2" a.shape b.shape;
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let div a b = map2 ( /. ) a b
let scale k t = map (fun v -> k *. v) t
let add_scalar k t = map (fun v -> k +. v) t
let neg t = map (fun v -> -.v) t
(* Specialized (not [map]-based): polymorphic [Array.map] boxes every
   float on its way through the closure, which makes relu a measurable
   slice of inference.  [Array.make] zero-fills, so only positive
   entries need a store. *)
let relu t =
  let d = t.data in
  let n = Array.length d in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get d i in
    if v > 0. then Array.unsafe_set out i v
  done;
  { shape = Array.copy t.shape; data = out }

let clip ~lo ~hi t =
  map (fun v -> if v < lo then lo else if v > hi then hi else v) t

let add_inplace dst src =
  if not (same_shape dst src) then fail_shape "add_inplace" dst.shape src.shape;
  let d = dst.data and s = src.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- d.(i) +. s.(i)
  done

let axpy ~alpha x y =
  if not (same_shape x y) then fail_shape "axpy" x.shape y.shape;
  let xd = x.data and yd = y.data in
  for i = 0 to Array.length xd - 1 do
    yd.(i) <- yd.(i) +. (alpha *. xd.(i))
  done

let scale_inplace k t =
  let d = t.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- k *. d.(i)
  done

let fill t v = Array.fill t.data 0 (Array.length t.data) v

(* Reductions *)

let sum t = Array.fold_left ( +. ) 0. t.data

let mean t =
  if numel t = 0 then invalid_arg "Tensor.mean: empty tensor";
  sum t /. float_of_int (numel t)

let fold_nonempty name f t =
  if numel t = 0 then invalid_arg ("Tensor." ^ name ^ ": empty tensor");
  let acc = ref t.data.(0) in
  for i = 1 to numel t - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let max_val t = fold_nonempty "max_val" Float.max t
let min_val t = fold_nonempty "min_val" Float.min t

let argmax t =
  if numel t = 0 then invalid_arg "Tensor.argmax: empty tensor";
  let best = ref 0 in
  for i = 1 to numel t - 1 do
    if t.data.(i) > t.data.(!best) then best := i
  done;
  !best

let dot a b =
  if not (same_shape a b) then fail_shape "dot" a.shape b.shape;
  (* Shapes validated above, so the reduction can use unsafe accesses. *)
  let ad = a.data and bd = b.data in
  let acc = ref 0. in
  for i = 0 to numel a - 1 do
    acc := !acc +. (Array.unsafe_get ad i *. Array.unsafe_get bd i)
  done;
  !acc

let sq_norm t = dot t t
let l1_norm t = Array.fold_left (fun acc v -> acc +. Float.abs v) 0. t.data

let linf_norm t =
  Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. t.data

(* Linear algebra *)

let check_rank name t r =
  if ndim t <> r then
    invalid_arg
      (Printf.sprintf "Tensor.%s: expected rank %d, got %s" name r
         (shape_to_string t.shape))

(* Accumulating GEMM kernel: [od] (pre-initialized by the caller, e.g.
   with zeros or a broadcast bias) gains [a * b].  Shapes must already be
   validated; every index below is in bounds by construction, so the
   kernel runs on [Array.unsafe_get]/[unsafe_set].  4x4 register tiling:
   sixteen accumulators live across the whole [p] loop (the local float
   refs do not escape, so ocamlopt unboxes them), so each output element
   is read and written exactly once instead of once per [p].  Each output
   element is accumulated in ascending-[p] order regardless of [m], [n]
   or the tiling, which keeps results independent of how callers batch
   their columns — the invariant the batched inference engine relies
   on. *)
let gemm_acc ?(ooff = 0) ~m ~k ~n ad bd od =
  (* Column blocking: sweep [jb] columns at a time so the [k * jb] panel
     of [bd] stays resident in cache while every row block passes over
     it — without it, each of the [m/4] row blocks re-streams the whole
     [k * n] matrix from memory (megabytes for batched im2col).  The
     block width targets a ~256 KB panel, is a multiple of 4 so only the
     final block can leave a column remainder, and never shrinks below
     16 columns. *)
  let jb = max 16 (32768 / max 1 k land lnot 3) in
  let jlo = ref 0 in
  while !jlo < n do
    let jhi = min n (!jlo + jb) in
  let i = ref 0 in
  while !i + 4 <= m do
    let i0 = !i in
    let a0 = i0 * k and a1 = (i0 + 1) * k
    and a2 = (i0 + 2) * k and a3 = (i0 + 3) * k in
    let o0 = ooff + (i0 * n)
    and o1 = ooff + ((i0 + 1) * n)
    and o2 = ooff + ((i0 + 2) * n)
    and o3 = ooff + ((i0 + 3) * n) in
    let j = ref !jlo in
    while !j + 4 <= jhi do
      let j0 = !j in
      let c00 = ref (Array.unsafe_get od (o0 + j0))
      and c01 = ref (Array.unsafe_get od (o0 + j0 + 1))
      and c02 = ref (Array.unsafe_get od (o0 + j0 + 2))
      and c03 = ref (Array.unsafe_get od (o0 + j0 + 3))
      and c10 = ref (Array.unsafe_get od (o1 + j0))
      and c11 = ref (Array.unsafe_get od (o1 + j0 + 1))
      and c12 = ref (Array.unsafe_get od (o1 + j0 + 2))
      and c13 = ref (Array.unsafe_get od (o1 + j0 + 3))
      and c20 = ref (Array.unsafe_get od (o2 + j0))
      and c21 = ref (Array.unsafe_get od (o2 + j0 + 1))
      and c22 = ref (Array.unsafe_get od (o2 + j0 + 2))
      and c23 = ref (Array.unsafe_get od (o2 + j0 + 3))
      and c30 = ref (Array.unsafe_get od (o3 + j0))
      and c31 = ref (Array.unsafe_get od (o3 + j0 + 1))
      and c32 = ref (Array.unsafe_get od (o3 + j0 + 2))
      and c33 = ref (Array.unsafe_get od (o3 + j0 + 3)) in
      for p = 0 to k - 1 do
        let v0 = Array.unsafe_get ad (a0 + p)
        and v1 = Array.unsafe_get ad (a1 + p)
        and v2 = Array.unsafe_get ad (a2 + p)
        and v3 = Array.unsafe_get ad (a3 + p)
        and boff = (p * n) + j0 in
        let b0 = Array.unsafe_get bd boff
        and b1 = Array.unsafe_get bd (boff + 1)
        and b2 = Array.unsafe_get bd (boff + 2)
        and b3 = Array.unsafe_get bd (boff + 3) in
        c00 := !c00 +. (v0 *. b0);
        c01 := !c01 +. (v0 *. b1);
        c02 := !c02 +. (v0 *. b2);
        c03 := !c03 +. (v0 *. b3);
        c10 := !c10 +. (v1 *. b0);
        c11 := !c11 +. (v1 *. b1);
        c12 := !c12 +. (v1 *. b2);
        c13 := !c13 +. (v1 *. b3);
        c20 := !c20 +. (v2 *. b0);
        c21 := !c21 +. (v2 *. b1);
        c22 := !c22 +. (v2 *. b2);
        c23 := !c23 +. (v2 *. b3);
        c30 := !c30 +. (v3 *. b0);
        c31 := !c31 +. (v3 *. b1);
        c32 := !c32 +. (v3 *. b2);
        c33 := !c33 +. (v3 *. b3)
      done;
      Array.unsafe_set od (o0 + j0) !c00;
      Array.unsafe_set od (o0 + j0 + 1) !c01;
      Array.unsafe_set od (o0 + j0 + 2) !c02;
      Array.unsafe_set od (o0 + j0 + 3) !c03;
      Array.unsafe_set od (o1 + j0) !c10;
      Array.unsafe_set od (o1 + j0 + 1) !c11;
      Array.unsafe_set od (o1 + j0 + 2) !c12;
      Array.unsafe_set od (o1 + j0 + 3) !c13;
      Array.unsafe_set od (o2 + j0) !c20;
      Array.unsafe_set od (o2 + j0 + 1) !c21;
      Array.unsafe_set od (o2 + j0 + 2) !c22;
      Array.unsafe_set od (o2 + j0 + 3) !c23;
      Array.unsafe_set od (o3 + j0) !c30;
      Array.unsafe_set od (o3 + j0 + 1) !c31;
      Array.unsafe_set od (o3 + j0 + 2) !c32;
      Array.unsafe_set od (o3 + j0 + 3) !c33;
      j := j0 + 4
    done;
    while !j < jhi do
      let j0 = !j in
      let c0 = ref (Array.unsafe_get od (o0 + j0))
      and c1 = ref (Array.unsafe_get od (o1 + j0))
      and c2 = ref (Array.unsafe_get od (o2 + j0))
      and c3 = ref (Array.unsafe_get od (o3 + j0)) in
      for p = 0 to k - 1 do
        let bv = Array.unsafe_get bd ((p * n) + j0) in
        c0 := !c0 +. (Array.unsafe_get ad (a0 + p) *. bv);
        c1 := !c1 +. (Array.unsafe_get ad (a1 + p) *. bv);
        c2 := !c2 +. (Array.unsafe_get ad (a2 + p) *. bv);
        c3 := !c3 +. (Array.unsafe_get ad (a3 + p) *. bv)
      done;
      Array.unsafe_set od (o0 + j0) !c0;
      Array.unsafe_set od (o1 + j0) !c1;
      Array.unsafe_set od (o2 + j0) !c2;
      Array.unsafe_set od (o3 + j0) !c3;
      incr j
    done;
    i := i0 + 4
  done;
  for i = !i to m - 1 do
    let aoff = i * k and orow = ooff + (i * n) in
    for j = !jlo to jhi - 1 do
      let acc = ref (Array.unsafe_get od (orow + j)) in
      for p = 0 to k - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (aoff + p)
             *. Array.unsafe_get bd ((p * n) + j))
      done;
      Array.unsafe_set od (orow + j) !acc
    done
  done;
    jlo := jhi
  done

let matmul a b =
  check_rank "matmul" a 2;
  check_rank "matmul" b 2;
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then fail_shape "matmul" a.shape b.shape;
  let out = zeros [| m; n |] in
  gemm_acc ~m ~k ~n a.data b.data out.data;
  out

let matmul_nt a b =
  check_rank "matmul_nt" a 2;
  check_rank "matmul_nt" b 2;
  let m = a.shape.(0) and k = a.shape.(1) in
  let n = b.shape.(0) and k' = b.shape.(1) in
  if k <> k' then fail_shape "matmul_nt" a.shape b.shape;
  let out = zeros [| m; n |] in
  let ad = a.data and bd = b.data and od = out.data in
  (* Dot-product formulation: out[i, j] = Σ_p b[j, p] * a[i, p], with the
     reduction in ascending-[p] order so a row of the result is bit-equal
     to [matvec b a_row] (multiplication commutes bitwise in IEEE754). *)
  for i = 0 to m - 1 do
    let aoff = i * k and ooff = i * n in
    for j = 0 to n - 1 do
      let boff = j * k in
      let acc = ref 0. in
      for p = 0 to k - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get bd (boff + p) *. Array.unsafe_get ad (aoff + p))
      done;
      Array.unsafe_set od (ooff + j) !acc
    done
  done;
  out

(* Batched dense layer: rows of [x] are images, [weight] is
   [out_dim; in_dim], [bias] is added per output element AFTER the
   matmul_nt reduction.  Hoisted out of the layer engine so every tensor
   backend (boxed and unboxed alike) shares one definition of the
   dense-layer arithmetic; row [i] is bit-equal to
   [add (matvec weight x_i) bias]. *)
let dense_batch x ~weight ~bias =
  let y = matmul_nt x weight in
  let n = y.shape.(0) and out_dim = y.shape.(1) in
  if bias.shape.(0) <> out_dim then fail_shape "dense_batch" weight.shape bias.shape;
  let yd = y.data and bd = bias.data in
  for img = 0 to n - 1 do
    let off = img * out_dim in
    for j = 0 to out_dim - 1 do
      yd.(off + j) <- yd.(off + j) +. bd.(j)
    done
  done;
  y

let matvec a x =
  check_rank "matvec" a 2;
  check_rank "matvec" x 1;
  let m = a.shape.(0) and k = a.shape.(1) in
  if k <> x.shape.(0) then fail_shape "matvec" a.shape x.shape;
  let out = zeros [| m |] in
  let ad = a.data and xd = x.data and od = out.data in
  for i = 0 to m - 1 do
    let acc = ref 0. and off = i * k in
    for p = 0 to k - 1 do
      acc := !acc +. (Array.unsafe_get ad (off + p) *. Array.unsafe_get xd p)
    done;
    od.(i) <- !acc
  done;
  out

let matvec_t a y =
  check_rank "matvec_t" a 2;
  check_rank "matvec_t" y 1;
  let m = a.shape.(0) and k = a.shape.(1) in
  if m <> y.shape.(0) then fail_shape "matvec_t" a.shape y.shape;
  let out = zeros [| k |] in
  let ad = a.data and yd = y.data and od = out.data in
  for i = 0 to m - 1 do
    let yv = yd.(i) and off = i * k in
    if yv <> 0. then
      for p = 0 to k - 1 do
        od.(p) <- od.(p) +. (yv *. ad.(off + p))
      done
  done;
  out

let outer y x =
  check_rank "outer" y 1;
  check_rank "outer" x 1;
  let m = y.shape.(0) and k = x.shape.(0) in
  let out = zeros [| m; k |] in
  let od = out.data in
  for i = 0 to m - 1 do
    let yv = y.data.(i) and off = i * k in
    for p = 0 to k - 1 do
      od.(off + p) <- yv *. x.data.(p)
    done
  done;
  out

let transpose a =
  check_rank "transpose" a 2;
  let m = a.shape.(0) and n = a.shape.(1) in
  init [| n; m |] (fun i ->
      let r = i / m and c = i mod m in
      a.data.((c * n) + r))

(* Convolution: direct cross-correlation on CHW tensors. *)

let conv_out_dim size k stride pad = ((size + (2 * pad) - k) / stride) + 1

let conv2d ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  check_rank "conv2d" x 3;
  check_rank "conv2d" weight 4;
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let out_c = weight.shape.(0)
  and win_c = weight.shape.(1)
  and kh = weight.shape.(2)
  and kw = weight.shape.(3) in
  if in_c <> win_c then fail_shape "conv2d" x.shape weight.shape;
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor.conv2d: kernel larger than padded input";
  let out = zeros [| out_c; oh; ow |] in
  let xd = x.data and wd = weight.data and od = out.data in
  (* Hot path: indices below are in bounds by the loop structure (every
     access is guarded by the iy/ix range checks), so unsafe accesses are
     used to keep inference fast — this loop dominates attack runtime. *)
  for oc = 0 to out_c - 1 do
    let b = match bias with None -> 0. | Some bt -> bt.data.(oc) in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref b in
        let iy0 = (oy * stride) - pad and ix0 = (ox * stride) - pad in
        for ic = 0 to in_c - 1 do
          let xoff = ic * h * w
          and woff = (((oc * in_c) + ic) * kh) * kw in
          for ky = 0 to kh - 1 do
            let iy = iy0 + ky in
            if iy >= 0 && iy < h then begin
              let xrow = xoff + (iy * w) and wrow = woff + (ky * kw) in
              let kx0 = if ix0 < 0 then -ix0 else 0 in
              let kx1 = if ix0 + kw > w then w - ix0 - 1 else kw - 1 in
              for kx = kx0 to kx1 do
                acc :=
                  !acc
                  +. (Array.unsafe_get xd (xrow + ix0 + kx)
                     *. Array.unsafe_get wd (wrow + kx))
              done
            end
          done
        done;
        Array.unsafe_set od ((((oc * oh) + oy) * ow) + ox) !acc
      done
    done
  done;
  out

(* Truncating integer division rounds toward zero; these round toward
   -inf / +inf for the (possibly negative) padded-coordinate algebra. *)
let div_floor a b = if a >= 0 then a / b else -((-a + b - 1) / b)
let div_ceil a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

(* Copy the patch matrix of one CHW image into [od], whose rows are
   [total_cols] wide, starting at column [col_off].  Out-of-image (padded)
   entries are written as explicit zeros — only the pad fringe, so every
   output position is stored exactly once and callers can hand over an
   uninitialized (reused) buffer without a multi-megabyte memset pass.
   The in-bounds ranges are computed per (ky, kx) tap, so the copy loops
   run without per-element branches on [Array.unsafe_*]. *)
let im2col_into ~stride ~pad ~kh ~kw ~in_c ~h ~w ~oh ~ow ~total_cols ~col_off
    ~xoff xd od =
  for ic = 0 to in_c - 1 do
    for ky = 0 to kh - 1 do
      (* iy = oy*stride - pad + ky must lie in [0, h). *)
      let oy_lo = max 0 (div_ceil (pad - ky) stride)
      and oy_hi = min (oh - 1) (div_floor (h - 1 + pad - ky) stride) in
      for kx = 0 to kw - 1 do
        let row = (((ic * kh) + ky) * kw) + kx in
        let ox_lo = max 0 (div_ceil (pad - kx) stride)
        and ox_hi = min (ow - 1) (div_floor (w - 1 + pad - kx) stride) in
        let rbase = (row * total_cols) + col_off in
        if oy_lo > oy_hi || ox_lo > ox_hi then
          (* This tap never lands in-image: the whole row is padding. *)
          for oy = 0 to oh - 1 do
            Array.fill od (rbase + (oy * ow)) ow 0.
          done
        else begin
        for oy = 0 to oy_lo - 1 do
          Array.fill od (rbase + (oy * ow)) ow 0.
        done;
        for oy = oy_hi + 1 to oh - 1 do
          Array.fill od (rbase + (oy * ow)) ow 0.
        done;
        for oy = oy_lo to oy_hi do
          let iy = (oy * stride) - pad + ky in
          let orow = rbase + (oy * ow)
          and xrow = xoff + (((ic * h) + iy) * w) - pad + kx in
          Array.fill od orow ox_lo 0.;
          Array.fill od (orow + ox_hi + 1) (ow - ox_hi - 1) 0.;
          if stride = 1 then
            for ox = ox_lo to ox_hi do
              Array.unsafe_set od (orow + ox) (Array.unsafe_get xd (xrow + ox))
            done
          else
            for ox = ox_lo to ox_hi do
              Array.unsafe_set od (orow + ox)
                (Array.unsafe_get xd (xrow + (ox * stride)))
            done
        done
        end
      done
    done
  done

let im2col ?(stride = 1) ?(pad = 0) ~kh ~kw x =
  check_rank "im2col" x 3;
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor.im2col: kernel larger than padded input";
  let rows = in_c * kh * kw and cols = oh * ow in
  let out = zeros [| rows; cols |] in
  im2col_into ~stride ~pad ~kh ~kw ~in_c ~h ~w ~oh ~ow ~total_cols:cols
    ~col_off:0 ~xoff:0 x.data out.data;
  out

let im2col_batch ?(stride = 1) ?(pad = 0) ~kh ~kw x =
  check_rank "im2col_batch" x 4;
  let n = x.shape.(0)
  and in_c = x.shape.(1)
  and h = x.shape.(2)
  and w = x.shape.(3) in
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor.im2col_batch: kernel larger than padded input";
  let rows = in_c * kh * kw and cols = oh * ow in
  let out = zeros [| rows; n * cols |] in
  (* One shared patch matrix for the whole batch: image [img] owns the
     column block [img*oh*ow, (img+1)*oh*ow). *)
  let image = in_c * h * w in
  for img = 0 to n - 1 do
    im2col_into ~stride ~pad ~kh ~kw ~in_c ~h ~w ~oh ~ow
      ~total_cols:(n * cols) ~col_off:(img * cols) ~xoff:(img * image) x.data
      out.data
  done;
  out

let conv2d_gemm ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  check_rank "conv2d_gemm" x 3;
  check_rank "conv2d_gemm" weight 4;
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let out_c = weight.shape.(0)
  and win_c = weight.shape.(1)
  and kh = weight.shape.(2)
  and kw = weight.shape.(3) in
  if in_c <> win_c then fail_shape "conv2d_gemm" x.shape weight.shape;
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  let patches = im2col ~stride ~pad ~kh ~kw x in
  let kk = in_c * kh * kw and cols = oh * ow in
  let out = zeros [| out_c; oh; ow |] in
  (* Seed each output row with its bias BEFORE the GEMM so the per-element
     accumulation order (bias first, then taps in ascending ic/ky/kx order)
     matches [conv2d] exactly: the two formulations are bit-identical, not
     merely close. *)
  (match bias with
  | None -> ()
  | Some bt ->
      for oc = 0 to out_c - 1 do
        Array.fill out.data (oc * cols) cols bt.data.(oc)
      done);
  gemm_acc ~m:out_c ~k:kk ~n:cols weight.data patches.data out.data;
  out

(* Per-domain scratch for the batched conv GEMM path.  The per-image
   patch matrix is short-lived but sizable (tens of KB per conv call),
   so allocating it fresh per call hammers the major heap — it exceeds
   the minor-heap large-object threshold.  Each domain keeps one
   growable buffer and reuses it across calls; it is dead before
   [conv2d_gemm_batch] returns, so reuse on the next call is safe even
   when layers chain.  Resident cost per domain is bounded by the
   largest conv it evaluates. *)
let col_scratch : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let scratch key len =
  let r = Domain.DLS.get key in
  if Array.length !r < len then r := Array.make len 0.;
  !r

let conv2d_gemm_batch ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  check_rank "conv2d_gemm_batch" x 4;
  check_rank "conv2d_gemm_batch" weight 4;
  let n = x.shape.(0)
  and in_c = x.shape.(1)
  and h = x.shape.(2)
  and w = x.shape.(3) in
  let out_c = weight.shape.(0)
  and win_c = weight.shape.(1)
  and kh = weight.shape.(2)
  and kw = weight.shape.(3) in
  if in_c <> win_c then fail_shape "conv2d_gemm_batch" x.shape weight.shape;
  let oh = conv_out_dim h kh stride pad and ow = conv_out_dim w kw stride pad in
  let kk = in_c * kh * kw and cols = oh * ow in
  let image = in_c * h * w in
  (* Image-by-image GEMMs over a small per-image patch panel, rather
     than one giant [kk; n*cols] GEMM: image [img]'s output block
     [out_c; oh; ow] is contiguous in NCHW, so each GEMM accumulates
     straight into the output tensor (no flat buffer, no scatter pass),
     and the panel plus the weights stay cache-resident across the
     back-to-back per-image GEMMs instead of streaming megabytes per
     chunk.  Per-element accumulation is still bias-seeded then
     ascending-[p], so results are bit-identical to [conv2d] and
     independent of the batch width.  im2col writes every panel position
     (padding as explicit zeros), so the reused scratch needs no
     re-zeroing pass. *)
  let patches = scratch col_scratch (kk * cols) in
  let out = zeros [| n; out_c; oh; ow |] in
  let ostride = out_c * cols in
  for img = 0 to n - 1 do
    im2col_into ~stride ~pad ~kh ~kw ~in_c ~h ~w ~oh ~ow ~total_cols:cols
      ~col_off:0 ~xoff:(img * image) x.data patches;
    let obase = img * ostride in
    (match bias with
    | None -> () (* [out] is zero-initialized *)
    | Some bt ->
        for oc = 0 to out_c - 1 do
          Array.fill out.data (obase + (oc * cols)) cols bt.data.(oc)
        done);
    gemm_acc ~ooff:obase ~m:out_c ~k:kk ~n:cols weight.data patches out.data
  done;
  out

let conv2d_backward ?(stride = 1) ?(pad = 0) ~x ~weight dout =
  let in_c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let out_c = weight.shape.(0)
  and kh = weight.shape.(2)
  and kw = weight.shape.(3) in
  let oh = dout.shape.(1) and ow = dout.shape.(2) in
  let dx = zeros [| in_c; h; w |] in
  let dw = zeros (Array.copy weight.shape) in
  let db = zeros [| out_c |] in
  let xd = x.data
  and wd = weight.data
  and dod = dout.data
  and dxd = dx.data
  and dwd = dw.data in
  for oc = 0 to out_c - 1 do
    let dbacc = ref 0. in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let g = dod.((((oc * oh) + oy) * ow) + ox) in
        if g <> 0. then begin
          dbacc := !dbacc +. g;
          let iy0 = (oy * stride) - pad and ix0 = (ox * stride) - pad in
          for ic = 0 to in_c - 1 do
            let xoff = ic * h * w
            and woff = (((oc * in_c) + ic) * kh) * kw in
            for ky = 0 to kh - 1 do
              let iy = iy0 + ky in
              if iy >= 0 && iy < h then begin
                let xrow = xoff + (iy * w) and wrow = woff + (ky * kw) in
                for kx = 0 to kw - 1 do
                  let ix = ix0 + kx in
                  if ix >= 0 && ix < w then begin
                    dwd.(wrow + kx) <- dwd.(wrow + kx) +. (g *. xd.(xrow + ix));
                    dxd.(xrow + ix) <- dxd.(xrow + ix) +. (g *. wd.(wrow + kx))
                  end
                done
              end
            done
          done
        end
      done
    done;
    db.data.(oc) <- !dbacc
  done;
  (dx, dw, db)

(* Pooling *)

let max_pool2d ?stride ~size x =
  check_rank "max_pool2d" x 3;
  let stride = match stride with None -> size | Some s -> s in
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = conv_out_dim h size stride 0 and ow = conv_out_dim w size stride 0 in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.max_pool2d: window too large";
  let out = zeros [| c; oh; ow |] in
  let switches = Array.make (c * oh * ow) 0 in
  let xd = x.data and od = out.data in
  (* [conv_out_dim] with pad 0 guarantees (oh-1)*stride + size <= h (and
     likewise for width), so every window is fully in-bounds: the scan
     runs branch- and bounds-check-free. *)
  for ch = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let best = ref neg_infinity and besti = ref 0 in
        let base = (((ch * h) + (oy * stride)) * w) + (ox * stride) in
        for ky = 0 to size - 1 do
          let rowb = base + (ky * w) in
          for kx = 0 to size - 1 do
            begin
              let idx = rowb + kx in
              let v = Array.unsafe_get xd idx in
              if v > !best then begin
                best := v;
                besti := idx
              end
            end
          done
        done;
        let oidx = (((ch * oh) + oy) * ow) + ox in
        od.(oidx) <- !best;
        switches.(oidx) <- !besti
      done
    done
  done;
  (out, switches)

let max_pool2d_backward ~x_shape ~switches dout =
  let dx = zeros x_shape in
  let dod = dout.data and dxd = dx.data in
  for i = 0 to Array.length dod - 1 do
    dxd.(switches.(i)) <- dxd.(switches.(i)) +. dod.(i)
  done;
  dx

let avg_pool2d ?stride ~size x =
  check_rank "avg_pool2d" x 3;
  let stride = match stride with None -> size | Some s -> s in
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = conv_out_dim h size stride 0 and ow = conv_out_dim w size stride 0 in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.avg_pool2d: window too large";
  let out = zeros [| c; oh; ow |] in
  let inv = 1. /. float_of_int (size * size) in
  let xd = x.data and od = out.data in
  for ch = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref 0. in
        for ky = 0 to size - 1 do
          for kx = 0 to size - 1 do
            let iy = (oy * stride) + ky and ix = (ox * stride) + kx in
            if iy < h && ix < w then acc := !acc +. xd.((((ch * h) + iy) * w) + ix)
          done
        done;
        od.((((ch * oh) + oy) * ow) + ox) <- !acc *. inv
      done
    done
  done;
  out

let avg_pool2d_backward ?stride ~size ~x_shape dout =
  let stride = match stride with None -> size | Some s -> s in
  let c = x_shape.(0) and h = x_shape.(1) and w = x_shape.(2) in
  let oh = dout.shape.(1) and ow = dout.shape.(2) in
  let dx = zeros x_shape in
  let inv = 1. /. float_of_int (size * size) in
  let dod = dout.data and dxd = dx.data in
  for ch = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let g = dod.((((ch * oh) + oy) * ow) + ox) *. inv in
        for ky = 0 to size - 1 do
          for kx = 0 to size - 1 do
            let iy = (oy * stride) + ky and ix = (ox * stride) + kx in
            if iy < h && ix < w then begin
              let idx = (((ch * h) + iy) * w) + ix in
              dxd.(idx) <- dxd.(idx) +. g
            end
          done
        done
      done
    done
  done;
  dx

let global_avg_pool x =
  check_rank "global_avg_pool" x 3;
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let inv = 1. /. float_of_int (h * w) in
  init [| c |] (fun ch ->
      let acc = ref 0. and off = ch * h * w in
      for i = 0 to (h * w) - 1 do
        acc := !acc +. x.data.(off + i)
      done;
      !acc *. inv)

let global_avg_pool_backward ~x_shape dout =
  let h = x_shape.(1) and w = x_shape.(2) in
  let inv = 1. /. float_of_int (h * w) in
  init x_shape (fun i -> dout.data.(i / (h * w)) *. inv)

(* Batched (NCHW) pooling: pooling acts per channel plane, so an NCHW
   batch folds to [(n*c); h; w], runs the single-image kernel, and
   unfolds.  Hoisted here from the layer engine so alternative tensor
   backends compose the identical kernels. *)

let nchw name x =
  check_rank name x 4;
  (x.shape.(0), x.shape.(1), x.shape.(2), x.shape.(3))

let fold_nc name x =
  let n, c, h, w = nchw name x in
  (n, c, reshape x [| n * c; h; w |])

let max_pool2d_batch ?stride ~size x =
  let n, c, folded = fold_nc "max_pool2d_batch" x in
  let y, _ = max_pool2d ?stride ~size folded in
  reshape y [| n; c; y.shape.(1); y.shape.(2) |]

let avg_pool2d_batch ?stride ~size x =
  let n, c, folded = fold_nc "avg_pool2d_batch" x in
  let y = avg_pool2d ?stride ~size folded in
  reshape y [| n; c; y.shape.(1); y.shape.(2) |]

let global_avg_pool_batch x =
  let n, c, folded = fold_nc "global_avg_pool_batch" x in
  reshape (global_avg_pool folded) [| n; c |]

(* Batched per-channel normalization over an NCHW tensor: each (image,
   channel) plane is standardized by its own mean and variance, then
   scaled/shifted by the per-channel [gamma]/[beta].  The plane of index
   [p] belongs to channel [p mod c].  Reductions run in ascending index
   order, so each image's planes are bit-equal to the single-image
   normalization. *)
let channel_norm_batch ~gamma ~beta ~eps x =
  let nb, c, h, w = nchw "channel_norm_batch" x in
  if gamma.shape.(0) <> c || beta.shape.(0) <> c then
    fail_shape "channel_norm_batch" x.shape gamma.shape;
  let m = float_of_int (h * w) in
  let y = zeros [| nb; c; h; w |] in
  let xd = x.data and yd = y.data in
  for plane = 0 to (nb * c) - 1 do
    let off = plane * h * w and ch = plane mod c in
    let acc = ref 0. in
    for i = 0 to (h * w) - 1 do
      acc := !acc +. Array.unsafe_get xd (off + i)
    done;
    let mean = !acc /. m in
    let vacc = ref 0. in
    for i = 0 to (h * w) - 1 do
      let d = Array.unsafe_get xd (off + i) -. mean in
      vacc := !vacc +. (d *. d)
    done;
    let istd = 1. /. sqrt ((!vacc /. m) +. eps) in
    let gam = gamma.data.(ch) and bet = beta.data.(ch) in
    for i = 0 to (h * w) - 1 do
      let xhat = (Array.unsafe_get xd (off + i) -. mean) *. istd in
      Array.unsafe_set yd (off + i) ((gam *. xhat) +. bet)
    done
  done;
  y

(* Softmax and losses *)

let softmax t =
  check_rank "softmax" t 1;
  let m = max_val t in
  let exps = map (fun v -> exp (v -. m)) t in
  let z = sum exps in
  scale (1. /. z) exps

(* Row-wise softmax over an [n; classes] matrix with the exact operation
   order of [softmax] (max, exp-shift, sum, scale by 1/z) so each row is
   bit-equal to the single-vector score computation. *)
let softmax_rows l =
  check_rank "softmax_rows" l 2;
  let n = l.shape.(0) and classes = l.shape.(1) in
  let out = zeros [| n; classes |] in
  let ld = l.data and od = out.data in
  for img = 0 to n - 1 do
    let off = img * classes in
    let m = ref ld.(off) in
    for j = 1 to classes - 1 do
      if ld.(off + j) > !m then m := ld.(off + j)
    done;
    let z = ref 0. in
    for j = 0 to classes - 1 do
      let e = exp (ld.(off + j) -. !m) in
      od.(off + j) <- e;
      z := !z +. e
    done;
    let inv = 1. /. !z in
    for j = 0 to classes - 1 do
      od.(off + j) <- inv *. od.(off + j)
    done
  done;
  out

let log_softmax t =
  check_rank "log_softmax" t 1;
  let m = max_val t in
  let z = Array.fold_left (fun acc v -> acc +. exp (v -. m)) 0. t.data in
  let logz = m +. log z in
  map (fun v -> v -. logz) t

let cross_entropy logits label =
  if label < 0 || label >= numel logits then
    invalid_arg "Tensor.cross_entropy: label out of range";
  -.(log_softmax logits).data.(label)

let cross_entropy_grad logits label =
  if label < 0 || label >= numel logits then
    invalid_arg "Tensor.cross_entropy_grad: label out of range";
  let p = softmax logits in
  p.data.(label) <- p.data.(label) -. 1.;
  p

(* Misc *)

let concat_channels ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat_channels: empty list"
  | first :: _ ->
      List.iter (fun t -> check_rank "concat_channels" t 3) ts;
      let h = first.shape.(1) and w = first.shape.(2) in
      List.iter
        (fun t ->
          if t.shape.(1) <> h || t.shape.(2) <> w then
            fail_shape "concat_channels" first.shape t.shape)
        ts;
      let total_c = List.fold_left (fun acc t -> acc + t.shape.(0)) 0 ts in
      let out = zeros [| total_c; h; w |] in
      let off = ref 0 in
      List.iter
        (fun t ->
          Array.blit t.data 0 out.data !off (numel t);
          off := !off + numel t)
        ts;
      out

let concat_channels_batch ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat_channels_batch: empty list"
  | first :: _ ->
      List.iter (fun t -> check_rank "concat_channels_batch" t 4) ts;
      let n = first.shape.(0)
      and h = first.shape.(2)
      and w = first.shape.(3) in
      List.iter
        (fun t ->
          if t.shape.(0) <> n || t.shape.(2) <> h || t.shape.(3) <> w then
            fail_shape "concat_channels_batch" first.shape t.shape)
        ts;
      let total_c = List.fold_left (fun acc t -> acc + t.shape.(1)) 0 ts in
      let plane = h * w in
      let out = zeros [| n; total_c; h; w |] in
      for img = 0 to n - 1 do
        let base = img * total_c * plane in
        let off = ref 0 in
        List.iter
          (fun t ->
            let c = t.shape.(1) in
            Array.blit t.data (img * c * plane) out.data (base + !off)
              (c * plane);
            off := !off + (c * plane))
          ts
      done;
      out

let split_channels t counts =
  check_rank "split_channels" t 3;
  let h = t.shape.(1) and w = t.shape.(2) in
  let total = List.fold_left ( + ) 0 counts in
  if total <> t.shape.(0) then
    invalid_arg "Tensor.split_channels: channel counts do not sum to shape";
  let off = ref 0 in
  List.map
    (fun c ->
      let piece = zeros [| c; h; w |] in
      Array.blit t.data !off piece.data 0 (c * h * w);
      off := !off + (c * h * w);
      piece)
    counts

let equal ?(eps = 1e-9) a b =
  same_shape a b
  && (let ok = ref true in
      for i = 0 to numel a - 1 do
        if Float.abs (a.data.(i) -. b.data.(i)) > eps then ok := false
      done;
      !ok)

let pp fmt t =
  let n = numel t in
  let max_show = 16 in
  Format.fprintf fmt "Tensor%s [" (shape_to_string t.shape);
  for i = 0 to min n max_show - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if n > max_show then Format.fprintf fmt "; ...(%d more)" (n - max_show);
  Format.fprintf fmt "]"

let to_string t = Format.asprintf "%a" pp t

(* Live runtime profiler: subscribes to the OCaml 5 [Runtime_events]
   ring from a dedicated systhread and folds GC activity into the
   observability stack — labeled pause histograms and promotion
   counters in the metrics registry, Chrome-trace events in the trace
   stream (so pauses line up under application spans in Perfetto), and
   the flight-recorder ring (so a post-mortem shows whether a stall
   was a GC death-spiral).

   The observer is a systhread of the spawning domain, never a domain
   of its own: OCaml 5 minor collections are stop-the-world across
   domains, so a parked observer domain would drag every minor GC
   through a cross-domain barrier (measured at +100-200% on a 1-core
   host when the sampler was first built).  A thread asleep in select
   joins no barrier.

   Clock calibration: runtime events carry monotonic-clock
   nanoseconds, the trace stream carries [Clock.now_us] wall
   microseconds.  Before every poll the profiler writes a custom user
   event whose payload is the current wall time; when that event comes
   back through the cursor, (wall - mono) gives the exact offset for
   mapping every other event onto the trace timebase.  Pause
   histograms and counters are fed unconditionally; trace events are
   emitted only once the first calibration event has been observed
   (events buffered from before profiling started have no reliable
   wall-clock anchor).

   Observation-only: the consumer never touches RNG, metering or cache
   state, so attack results are bit-identical with the profiler on —
   test/diff_runner --profile and bench profile both assert exactly
   that. *)

module RE = Runtime_events

type RE.User.tag += Calib

(* Registered once per process: registration both names the event and
   makes it decodable on the consumer side. *)
let calib_event = lazy (RE.User.register "oppsla.calib" Calib RE.Type.int)

(* Minor pauses cluster around 0.1-5ms, major slices reach tens of ms;
   the registry's default time buckets are too coarse below 1ms to
   resolve a p50. *)
let pause_buckets =
  [|
    1e-6; 1e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2;
    5e-2; 0.1; 0.25; 1.;
  |]

let pause_metric = "gc.pause_seconds"

let pause_hist ~ring ~kind =
  Core.Metrics.histogram ~buckets:pause_buckets
    ~labels:[ ("domain", string_of_int ring); ("gc", kind) ]
    pause_metric

(* Only the top-level collection phases are folded into pauses: every
   other runtime phase ([minor_clear], [major_sweep], ...) nests
   inside one of these two, and counting nested phases would
   double-charge the same wall time. *)
let phase_kind = function
  | RE.EV_MINOR -> Some "minor"
  | RE.EV_MAJOR -> Some "major"
  | _ -> None

type t = {
  mutex : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable stop_requested : bool;
  mutable thread : Thread.t option;
  cursor : RE.cursor;
  callbacks : RE.Callbacks.t;
  interval_s : float;
  started_us : float;
}

(* One profiler per process: the runtime-events ring is a process-wide
   resource and two concurrent cursors would double-count into the
   same registry families. *)
let running_now = Atomic.make false
let runtime_started = ref false

let running () = Atomic.get running_now

let active_seconds () =
  Core.Gauge.get (Core.Metrics.gauge "profiler.active_seconds")

(* Consumer callbacks.  They only ever run inside [read_poll], which
   the profiler serializes (poll loop on the observer thread, final
   drain after the join), so the tables need no locking. *)
let make_callbacks () =
  (* (ring, kind) -> begin timestamp, monotonic ns.  Ring ids are
     reused after domain termination, so entries are cleared on
     EV_DOMAIN_TERMINATE. *)
  let begins : (int * string, int64) Hashtbl.t = Hashtbl.create 16 in
  let offset_us = ref None in
  (* Handle caches: callbacks fire thousands of times per second on a
     systhread that holds the domain's runtime lock, so a registry
     lookup (label rendering + registry mutex) per event is mutator
     time stolen from the workload.  Resolve each (family, ring)
     handle once. *)
  let hists : (int * string, Core.Histogram.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let pause_hist ~ring ~kind =
    match Hashtbl.find_opt hists (ring, kind) with
    | Some h -> h
    | None ->
        let h = pause_hist ~ring ~kind in
        Hashtbl.add hists (ring, kind) h;
        h
  in
  let counters : (string * int, Core.Counter.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let ring_counter name ring =
    match Hashtbl.find_opt counters (name, ring) with
    | Some c -> c
    | None ->
        let c =
          Core.Metrics.counter
            ~labels:[ ("domain", string_of_int ring) ]
            name
        in
        Hashtbl.add counters (name, ring) c;
        c
  in
  let counter ?labels name = Core.Metrics.counter ?labels name in
  let runtime_begin ring ts phase =
    match phase_kind phase with
    | None -> ()
    | Some kind ->
        Hashtbl.replace begins (ring, kind) (RE.Timestamp.to_int64 ts)
  in
  let runtime_end ring ts phase =
    match phase_kind phase with
    | None -> ()
    | Some kind -> (
        match Hashtbl.find_opt begins (ring, kind) with
        | None -> ()  (* begin predates the cursor: not attributable *)
        | Some t0 ->
            Hashtbl.remove begins (ring, kind);
            let dur_ns =
              Int64.to_float (Int64.sub (RE.Timestamp.to_int64 ts) t0)
            in
            if dur_ns >= 0. then begin
              Core.Histogram.observe (pause_hist ~ring ~kind) (dur_ns /. 1e9);
              match !offset_us with
              | Some off
                when Core.Trace.enabled () || Core.Ring.enabled () ->
                  Core.Trace.emit ~name:("gc." ^ kind) ~cat:"gc" ~ph:"X"
                    ~ts:(off +. (Int64.to_float t0 /. 1e3))
                    ~dur:(dur_ns /. 1e3) ~tid:ring
                    [ ("domain", Core.Trace.Int ring) ]
              | _ -> ()
            end)
  in
  let runtime_counter ring _ts c v =
    match c with
    | RE.EV_C_MINOR_PROMOTED ->
        Core.Counter.add (ring_counter "gc.minor_promoted_words" ring) v
    | RE.EV_C_MINOR_ALLOCATED ->
        Core.Counter.add (ring_counter "gc.minor_allocated_words" ring) v
    | _ -> ()
  in
  let lifecycle ring ts kind _data =
    let instant name =
      match !offset_us with
      | Some off when Core.Trace.enabled () || Core.Ring.enabled () ->
          Core.Trace.emit ~name ~cat:"gc" ~ph:"i"
            ~ts:
              (off
              +. Int64.to_float (RE.Timestamp.to_int64 ts) /. 1e3)
            ~scope:"t" ~tid:ring
            [ ("domain", Core.Trace.Int ring) ]
      | _ -> ()
    in
    match kind with
    | RE.EV_DOMAIN_SPAWN ->
        Core.Counter.incr (counter "gc.domain_spawns.total");
        instant "domain.spawn"
    | RE.EV_DOMAIN_TERMINATE ->
        Core.Counter.incr (counter "gc.domain_terminations.total");
        instant "domain.terminate";
        (* The ring id is reusable from here on; stale begins from the
           dead domain must not pair with the next tenant's ends. *)
        List.iter
          (fun kind -> Hashtbl.remove begins (ring, kind))
          [ "minor"; "major" ]
    | _ -> ()
  in
  let lost_events _ring n =
    Core.Counter.add (counter "profiler.lost_events.total") n
  in
  RE.Callbacks.create ~runtime_begin ~runtime_end ~runtime_counter
    ~lifecycle ~lost_events ()
  |> RE.Callbacks.add_user_event RE.Type.int (fun _ring ts ev wall_us ->
         if RE.User.name ev = "oppsla.calib" then
           offset_us :=
             Some
               (float_of_int wall_us
               -. Int64.to_float (RE.Timestamp.to_int64 ts) /. 1e3))

(* One poll: write a calibration event (payload = wall clock now, so
   the consumer can pair it exactly), then drain the ring. *)
let poll t =
  Core.Gauge.set
    (Core.Metrics.gauge "profiler.active_seconds")
    ((Core.Clock.now_us () -. t.started_us) /. 1e6);
  RE.User.write (Lazy.force calib_event)
    (int_of_float (Core.Clock.now_us ()));
  let n = RE.read_poll t.cursor t.callbacks None in
  Core.Counter.add (Core.Metrics.counter "profiler.events.total") n;
  Core.Counter.incr (Core.Metrics.counter "profiler.polls.total")

let run t =
  (* Same absolute-deadline re-arm as the sampler: EINTR fires far
     more often than the interval elapses, and treating any select
     return as "interval elapsed" would tie the poll rate to the
     signal rate. *)
  let rec wait deadline_us =
    let remaining = (deadline_us -. Core.Clock.now_us ()) /. 1e6 in
    if remaining > 0. then
      match Unix.select [ t.wake_r ] [] [] remaining with
      | [], _, _ -> wait deadline_us
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait deadline_us
  in
  let rec loop () =
    let stop =
      Mutex.lock t.mutex;
      let s = t.stop_requested in
      Mutex.unlock t.mutex;
      s
    in
    if not stop then begin
      wait (Core.Clock.now_us () +. (t.interval_s *. 1e6));
      poll t;
      loop ()
    end
  in
  poll t;
  loop ()

let start ?(interval_s = 0.025) () =
  if not (Atomic.compare_and_set running_now false true) then
    invalid_arg "Telemetry.Profiler.start: profiler already running";
  (* Keep the <pid>.events ring file out of the working directory
     unless the user already chose a location. *)
  if Sys.getenv_opt "OCAML_RUNTIME_EVENTS_DIR" = None then
    Unix.putenv "OCAML_RUNTIME_EVENTS_DIR" (Filename.get_temp_dir_name ());
  if !runtime_started then RE.resume ()
  else begin
    RE.start ();
    runtime_started := true
  end;
  let cursor = RE.create_cursor None in
  (* The ring outlives pause/resume, so a fresh cursor replays whatever
     a previous profiler left behind — pauses that would double-count
     into the histograms and trace events from minutes ago that stretch
     the trace's wall-clock extent.  Drain those into a no-op callback
     set: observation begins now. *)
  let discard = RE.Callbacks.create () in
  while RE.read_poll cursor discard None > 0 do
    ()
  done;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      mutex = Mutex.create ();
      wake_r;
      wake_w;
      stop_requested = false;
      thread = None;
      cursor;
      callbacks = make_callbacks ();
      interval_s;
      started_us = Core.Clock.now_us ();
    }
  in
  t.thread <- Some (Thread.create run t);
  t

let stop t =
  Mutex.lock t.mutex;
  let already = t.stop_requested in
  t.stop_requested <- true;
  Mutex.unlock t.mutex;
  if not already then begin
    (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    (match t.thread with Some th -> Thread.join th | None -> ());
    t.thread <- None;
    (* Final drain so pauses between the last tick and [stop] are
       still attributed. *)
    poll t;
    RE.free_cursor t.cursor;
    (* [start] cannot be undone, but a paused ring writes nothing:
       the bare arm of an A/B bench sees zero residual overhead. *)
    RE.pause ();
    Unix.close t.wake_r;
    Unix.close t.wake_w;
    Atomic.set running_now false
  end

(* ------------------------------------------------------------------ *)
(* Summary: rebuilt from the registry (the profiler keeps no private
   aggregate state), so it works from any thread, after [stop], and
   inside the post-mortem writer. *)

type gc_stat = {
  domain : int;
  kind : string;
  pauses : int;
  total_s : float;
  p50_s : float;
  p99_s : float;
}

(* Parse the label block out of a registry key like
   [gc.pause_seconds{domain="3",gc="minor"}].  Values here are digits
   and ASCII identifiers, so splitting on [,] is safe. *)
let parse_labels key =
  match String.index_opt key '{' with
  | None -> []
  | Some i ->
      let body = String.sub key (i + 1) (String.length key - i - 2) in
      String.split_on_char ',' body
      |> List.filter_map (fun kv ->
             match String.index_opt kv '=' with
             | None -> None
             | Some j ->
                 let k = String.sub kv 0 j in
                 let v = String.sub kv (j + 1) (String.length kv - j - 1) in
                 let v =
                   if String.length v >= 2 && v.[0] = '"' then
                     String.sub v 1 (String.length v - 2)
                   else v
                 in
                 Some (k, v))

let summary () =
  let prefix = pause_metric ^ "{" in
  let starts_with p s =
    String.length s >= String.length p
    && String.sub s 0 (String.length p) = p
  in
  Core.Metrics.sorted_metrics ()
  |> List.filter_map (fun (key, m) ->
         match m with
         | Core.H h when starts_with prefix key ->
             let labels = parse_labels key in
             let get k = Option.value ~default:"" (List.assoc_opt k labels) in
             let s = Core.Histogram.snapshot h in
             if s.Core.Histogram.count = 0 then None
             else
               Some
                 {
                   domain =
                     (try int_of_string (get "domain") with _ -> -1);
                   kind = get "gc";
                   pauses = s.Core.Histogram.count;
                   total_s = s.Core.Histogram.sum;
                   p50_s = Core.Histogram.quantile_of_snapshot s 0.5;
                   p99_s = Core.Histogram.quantile_of_snapshot s 0.99;
                 }
         | _ -> None)

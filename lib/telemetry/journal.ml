(* Query-provenance journal: one JSONL record per *charged* oracle
   query, written at the metering point (Oracle.meter) so the journal is
   exactly the charge sequence — the quantity every optimization layer
   (pool, cache, batcher, islands, f32 backend) must leave bit-identical.

   File format (one JSON object per line):

     header   {"journal": "oppsla-query-journal", "version": 1,
               "run_id": "..."}
     record   {"seq": 17, "site": "sketch", "image": 3,
               "key": "corner:1,2,0", "kind": "corner", "mode": "score",
               "hit": false, "chunk": 2, "backend": "boxed",
               "fnv": "<16 hex digits>"}
     footer   {"journal_end": true, "records": 123}

   Every record carries an FNV-1a (64-bit) checksum of the line body up
   to (excluding) the [, "fnv"] field, so offline audit detects any
   bit-level corruption.  The sink writes [path ^ ".tmp"] and renames on
   [close] — a finalized journal is atomic-or-absent, and a crashed run
   leaves a diagnosable [.tmp] instead of a half-file posing as a
   complete journal.

   Charge identity vs provenance: [seq], [site], [hit], [chunk] and
   [backend] are provenance metadata — they legitimately differ across
   cache/batch/backend configurations and across domain interleavings.
   The comparable identity of a charge is (image, in-image order, key,
   kind, mode); the offline auditor (Evalharness.Audit) compares exactly
   that, per image, because each image's queries are issued sequentially
   by the one worker attacking it even when images run in parallel.

   Hot-path contract: with no sink open, [enabled] is one atomic load
   and nothing else runs.  With a sink open, a record is one
   fetch-and-add plus one buffered, mutex-serialized line write. *)

(* ----- FNV-1a, 64-bit -----

   Computed in two 32-bit halves over native ints: Int64 arithmetic
   boxes every intermediate on the non-flambda compiler, and this runs
   over ~150 bytes per charged query.  With h = hi * 2^32 + lo and the
   FNV prime p = 0x100 * 2^32 + 0x1b3, one step is
     lo' = lo lxor byte
     h * p mod 2^64 = lo' * 0x1b3                          (low part)
                    + 2^32 * (lo' * 0x100 + hi * 0x1b3)    (cross terms)
   and every intermediate stays under 2^42 — comfortably inside a
   native 63-bit int. *)

let fnv_offset_hi = 0xcbf29ce4
let fnv_offset_lo = 0x84222325

let fnv64_parts s =
  let hi = ref fnv_offset_hi and lo = ref fnv_offset_lo in
  for i = 0 to String.length s - 1 do
    let l = !lo lxor Char.code (String.unsafe_get s i) in
    let pl = l * 0x1b3 in
    lo := pl land 0xFFFFFFFF;
    hi := ((l * 0x100) + (!hi * 0x1b3) + (pl lsr 32)) land 0xFFFFFFFF
  done;
  (!hi, !lo)

let hex_digits = "0123456789abcdef"

let add_hex32 b v =
  for i = 7 downto 0 do
    Buffer.add_char b hex_digits.[(v lsr (i * 4)) land 0xf]
  done

let fnv64_hex s =
  let hi, lo = fnv64_parts s in
  let b = Buffer.create 16 in
  add_hex32 b hi;
  add_hex32 b lo;
  Buffer.contents b

(* ----- charge-site / image context (per-domain) -----

   The site tag and image index travel in domain-local storage: the
   attack entry points (sketch, the baselines, the synthesizer, the
   island chains) set the site, the evaluators set the image, and the
   metering point deep below reads both without any parameter threading
   through the oracle API. *)

let unattributed = "unattributed"
let site_key = Domain.DLS.new_key (fun () -> unattributed)
let image_key = Domain.DLS.new_key (fun () -> -1)

let site () = Domain.DLS.get site_key
let image () = Domain.DLS.get image_key

let with_site s f =
  let old = Domain.DLS.get site_key in
  Domain.DLS.set site_key s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set site_key old) f

(* Set the site only when nothing above already claimed it: the sketch
   executor also runs under the synthesizer and the island chains, and
   those outer sites are the ones the provenance record should name. *)
let with_default_site s f =
  if Domain.DLS.get site_key = unattributed then with_site s f else f ()

let with_image i f =
  let old = Domain.DLS.get image_key in
  Domain.DLS.set image_key i;
  Fun.protect ~finally:(fun () -> Domain.DLS.set image_key old) f

(* ----- record rendering ----- *)

(* Buffer-built (Printf interprets its format string on every call,
   which is measurable at one record per charged query); the checksum
   runs over the buffered body before the fnv field is appended. *)
let render_record ~seq ~site ~image ~key ~kind ~mode ~hit ~chunk ~backend =
  let esc = Core.Metrics.json_escape in
  let b = Buffer.create 192 in
  Buffer.add_string b "{\"seq\": ";
  Buffer.add_string b (string_of_int seq);
  Buffer.add_string b ", \"site\": \"";
  Buffer.add_string b (esc site);
  Buffer.add_string b "\", \"image\": ";
  Buffer.add_string b (string_of_int image);
  Buffer.add_string b ", \"key\": \"";
  Buffer.add_string b (esc key);
  Buffer.add_string b "\", \"kind\": \"";
  Buffer.add_string b (esc kind);
  Buffer.add_string b "\", \"mode\": \"";
  Buffer.add_string b (esc mode);
  Buffer.add_string b "\", \"hit\": ";
  Buffer.add_string b (if hit then "true" else "false");
  Buffer.add_string b ", \"chunk\": ";
  Buffer.add_string b (string_of_int chunk);
  Buffer.add_string b ", \"backend\": \"";
  Buffer.add_string b (esc backend);
  Buffer.add_char b '\"';
  let hi, lo = fnv64_parts (Buffer.contents b) in
  Buffer.add_string b ", \"fnv\": \"";
  add_hex32 b hi;
  add_hex32 b lo;
  Buffer.add_string b "\"}";
  Buffer.contents b

(* ----- global sink ----- *)

let format_name = "oppsla-query-journal"
let format_version = 1

let active = Atomic.make false
let seq = Atomic.make 0
let sink : out_channel option ref = ref None
let sink_mutex = Mutex.create ()
let final_path = ref None
let records_written = ref 0 (* under sink_mutex *)
let run_id_ref = ref (Printf.sprintf "run-%d" (Unix.getpid ()))

let enabled () = Atomic.get active
let run_id () = !run_id_ref
let set_run_id id = run_id_ref := id
let tmp_path path = path ^ ".tmp"

(* In-memory tail of the last few record lines, independent of channel
   buffering: the post-mortem bundle dumps this, so a crashed run's
   bundle always carries the most recent charges even if the sink's
   buffer was lost. *)
let tail_cap = 64
let tail_lines = Array.make tail_cap ""
let tail_cursor = ref 0 (* under sink_mutex *)

let tail () =
  Mutex.lock sink_mutex;
  let c = !tail_cursor in
  let out = ref [] in
  for i = c - 1 downto max 0 (c - tail_cap) do
    out := tail_lines.(i mod tail_cap) :: !out
  done;
  Mutex.unlock sink_mutex;
  !out

let header () =
  Printf.sprintf "{\"journal\": \"%s\", \"version\": %d, \"run_id\": \"%s\"}"
    format_name format_version
    (Core.Metrics.json_escape !run_id_ref)

let to_file path =
  Mutex.lock sink_mutex;
  match !sink with
  | Some _ ->
      Mutex.unlock sink_mutex;
      invalid_arg "Telemetry.Journal.to_file: journal already active"
  | None ->
      let oc = open_out (tmp_path path) in
      output_string oc (header ());
      output_char oc '\n';
      sink := Some oc;
      final_path := Some path;
      records_written := 0;
      tail_cursor := 0;
      Array.fill tail_lines 0 tail_cap "";
      Atomic.set seq 0;
      Atomic.set active true;
      Mutex.unlock sink_mutex

let close () =
  Mutex.lock sink_mutex;
  Atomic.set active false;
  (match (!sink, !final_path) with
  | Some oc, Some path ->
      output_string oc
        (Printf.sprintf "{\"journal_end\": true, \"records\": %d}\n"
           !records_written);
      close_out oc;
      sink := None;
      final_path := None;
      Sys.rename (tmp_path path) path
  | _ -> ());
  Mutex.unlock sink_mutex

let flush () =
  Mutex.lock sink_mutex;
  (match !sink with None -> () | Some oc -> Stdlib.flush oc);
  Mutex.unlock sink_mutex

(* The path where journal bytes currently live: the .tmp file while the
   sink is open (post-mortem diagnostics), the final path after close. *)
let current_path () =
  Mutex.lock sink_mutex;
  let p =
    match (!sink, !final_path) with
    | Some _, Some path -> Some (tmp_path path)
    | _ -> None
  in
  Mutex.unlock sink_mutex;
  p

let record ~key ~kind ~mode ~hit ?(chunk = -1) ~backend () =
  if Atomic.get active then begin
    let n = Atomic.fetch_and_add seq 1 in
    let line =
      render_record ~seq:n ~site:(site ()) ~image:(image ()) ~key ~kind ~mode
        ~hit ~chunk ~backend
    in
    Mutex.lock sink_mutex;
    (match !sink with
    | None -> ()
    | Some oc ->
        output_string oc line;
        output_char oc '\n';
        incr records_written;
        tail_lines.(!tail_cursor mod tail_cap) <- line;
        incr tail_cursor);
    Mutex.unlock sink_mutex
  end

(* Background runtime sampler: one dedicated systhread (never a pool
   worker, and deliberately not a separate domain — OCaml 5 minor
   collections are stop-the-world across domains, so even a parked
   observer domain drags every minor GC through a cross-domain wakeup,
   measured at +100-200% on a 1-core host, while a same-domain thread
   asleep in select joins no barrier) that periodically folds
   process-level signals into the metrics registry — GC footprint, CPU
   time, wall clock, oracle query burn-rate — checks the stall
   watchdog, and optionally appends a JSONL snapshot of the whole
   registry per tick.

   Observation-only: every input is an atomic load (registry, watchdog)
   or a process-level syscall (Gc.quick_stat, Unix.times); the sampler
   never touches RNG, metering or cache state.  The attack loops cannot
   tell whether it is running — test/diff_runner asserts exactly that.

   The sleep is a [Unix.select] on a self-pipe so [stop] interrupts it
   immediately instead of waiting out the interval (stdlib [Condition]
   has no timed wait). *)

type config = {
  interval_s : float;
  snapshot_path : string option;  (* append one JSONL line per tick *)
  stall_after_s : float;  (* watchdog threshold *)
  abort_on_stall : bool;  (* exit 3 on a fresh stall *)
}

let default =
  { interval_s = 1.0; snapshot_path = None; stall_after_s = 30.; abort_on_stall = false }

type t = {
  config : config;
  mutex : Mutex.t;  (* serializes [sample] and the mutable fields below *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable stop_requested : bool;
  mutable snapshot_oc : out_channel option;
  mutable stalled_now : string list;  (* loops flagged at the last tick *)
  mutable last_rate_us : float;
  mutable last_rate_queries : int;
  started_us : float;
  mutable thread : Thread.t option;
}

(* The query counter the attack stack already maintains; registering it
   here just fetches the existing handle (or a zero counter when the
   oracle has not run yet — the rate is then a flat 0). *)
let queries_total () = Core.Metrics.counter "oracle.queries.total"

let snapshot_line () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts_us\": %s" (Core.Metrics.json_float (Core.Clock.now_us ())));
  let field kind render =
    let entries =
      Core.Metrics.sorted_metrics ()
      |> List.filter_map (fun (name, m) ->
             Option.map
               (fun v ->
                 Printf.sprintf "\"%s\": %s" (Core.Metrics.json_escape name) v)
               (render m))
    in
    Buffer.add_string b (Printf.sprintf ", \"%s\": {%s}" kind (String.concat ", " entries))
  in
  field "counters" (function
    | Core.C c -> Some (string_of_int (Core.Counter.get c))
    | _ -> None);
  field "gauges" (function
    | Core.G g -> Some (Core.Metrics.json_float (Core.Gauge.get g))
    | _ -> None);
  field "histograms" (function
    | Core.H h ->
        let s = Core.Histogram.snapshot h in
        Some
          (Printf.sprintf "{\"count\": %d, \"sum\": %s}" s.Core.Histogram.count
             (Core.Metrics.json_float s.Core.Histogram.sum))
    | _ -> None);
  Buffer.add_string b "}";
  Buffer.contents b

(* One tick: must be called with [t.mutex] held. *)
let sample_locked t =
  let now = Core.Clock.now_us () in
  let gc = Gc.quick_stat () in
  let tm = Unix.times () in
  Core.Gauge.set (Core.Metrics.gauge "process.uptime_seconds")
    ((now -. t.started_us) /. 1e6);
  Core.Gauge.set (Core.Metrics.gauge "process.cpu_user_seconds") tm.Unix.tms_utime;
  Core.Gauge.set (Core.Metrics.gauge "process.cpu_system_seconds") tm.Unix.tms_stime;
  Core.Gauge.set (Core.Metrics.gauge "process.heap_mb")
    (float_of_int gc.Gc.heap_words *. 8. /. 1048576.);
  Core.Gauge.set (Core.Metrics.gauge "process.minor_collections")
    (float_of_int gc.Gc.minor_collections);
  Core.Gauge.set (Core.Metrics.gauge "process.major_collections")
    (float_of_int gc.Gc.major_collections);
  Core.Gauge.set (Core.Metrics.gauge "process.minor_words") gc.Gc.minor_words;
  (* Oracle burn-rate over the last tick. *)
  let q = Core.Counter.get (queries_total ()) in
  let dt = (now -. t.last_rate_us) /. 1e6 in
  if dt > 0. then
    Core.Gauge.set
      (Core.Metrics.gauge "oracle.query_rate_per_s")
      (float_of_int (q - t.last_rate_queries) /. dt);
  t.last_rate_us <- now;
  t.last_rate_queries <- q;
  (* Watchdog: flag loops with no heartbeat progress. *)
  let statuses = Watchdog.snapshot ~now_us:now () in
  let active = List.filter (fun s -> s.Watchdog.active > 0) statuses in
  let stalled =
    List.filter (fun s -> s.Watchdog.idle_s > t.config.stall_after_s) active
  in
  Core.Gauge.set (Core.Metrics.gauge "watchdog.active_loops")
    (float_of_int (List.length active));
  Core.Gauge.set (Core.Metrics.gauge "watchdog.stalled_loops")
    (float_of_int (List.length stalled));
  let names = List.map (fun s -> s.Watchdog.name) stalled in
  let fresh =
    List.filter (fun s -> not (List.mem s.Watchdog.name t.stalled_now)) stalled
  in
  t.stalled_now <- names;
  List.iter
    (fun (s : Watchdog.status) ->
      Core.Counter.incr (Core.Metrics.counter "watchdog.stalls");
      Core.Trace.instant "watchdog.stall" ~cat:"watchdog" ~args:(fun () ->
          [
            ("loop", Core.Trace.Str s.Watchdog.name);
            ("idle_s", Core.Trace.Float s.Watchdog.idle_s);
            ("beats", Core.Trace.Int s.Watchdog.beats);
          ]);
      Printf.eprintf "[watchdog] loop %s stalled: no heartbeat for %.1fs\n%!"
        s.Watchdog.name s.Watchdog.idle_s)
    fresh;
  Core.Counter.incr (Core.Metrics.counter "sampler.samples");
  (match t.snapshot_oc with
  | None -> ()
  | Some oc ->
      output_string oc (snapshot_line ());
      output_char oc '\n';
      flush oc);
  if fresh <> [] && t.config.abort_on_stall then begin
    Printf.eprintf "[watchdog] aborting: --stall-timeout exceeded by %s\n%!"
      (String.concat ", " (List.map (fun s -> s.Watchdog.name) fresh));
    (* Flush the live sinks and drop the post-mortem bundle BEFORE
       exiting: the stall path must never leave a truncated trace or
       journal behind, and the bundle (ring, registry, journal tail,
       checkpoint info) is the only evidence a wedged run gets. *)
    Core.Trace.flush ();
    Journal.flush ();
    (match Postmortem.dump ~reason:"stall" () with
    | Some dir -> Printf.eprintf "[watchdog] post-mortem bundle: %s\n%!" dir
    | None -> ());
    exit 3
  end

(* Take one sample right now, synchronously.  Used by tests (and the
   final flush in [stop]) for determinism without sleeping. *)
let sample_now t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> sample_locked t)

let run t =
  (* Sleep until [deadline] (a Clock.now_us value) or until [stop]
     writes to the wake pipe.  The select must be re-armed with the
     remaining time on every early return: the runtime's signals (the
     systhread tick, GC coordination) land as EINTR far more often
     than the interval elapses, and treating any return as "interval
     elapsed" would make the tick rate track the signal rate instead
     of the configured one. *)
  let rec wait deadline_us =
    let remaining = (deadline_us -. Core.Clock.now_us ()) /. 1e6 in
    if remaining <= 0. then `Deadline
    else
      match Unix.select [ t.wake_r ] [] [] remaining with
      | [], _, _ -> wait deadline_us  (* timeout or spurious: re-check *)
      | _ -> `Woken  (* woken by [stop]; return and observe the flag *)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait deadline_us
  in
  (* Scheduled-vs-actual tick skew: how late past its deadline each
     timed tick actually fired.  GC pauses and scheduler pressure
     stretch the select sleep, which silently distorts every per-tick
     rate the sampler derives — so the distortion itself is recorded.
     Stop-wakeups are excluded (they fire early by design). *)
  let jitter =
    Core.Metrics.histogram ~buckets:Core.Metrics.time_buckets
      "sampler.tick_jitter_seconds"
  in
  let rec loop () =
    let stop =
      Mutex.lock t.mutex;
      let s = t.stop_requested in
      Mutex.unlock t.mutex;
      s
    in
    if not stop then begin
      let deadline = Core.Clock.now_us () +. (t.config.interval_s *. 1e6) in
      (match wait deadline with
      | `Deadline ->
          Core.Histogram.observe jitter
            (Float.max 0. ((Core.Clock.now_us () -. deadline) /. 1e6))
      | `Woken -> ());
      sample_now t;
      loop ()
    end
  in
  sample_now t;  (* at least one sample even for very short runs *)
  loop ()

let start config =
  let wake_r, wake_w = Unix.pipe () in
  let snapshot_oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      config.snapshot_path
  in
  let now = Core.Clock.now_us () in
  let t =
    {
      config;
      mutex = Mutex.create ();
      wake_r;
      wake_w;
      stop_requested = false;
      snapshot_oc;
      stalled_now = [];
      last_rate_us = now;
      last_rate_queries = Core.Counter.get (queries_total ());
      started_us = now;
      thread = None;
    }
  in
  t.thread <- Some (Thread.create run t);
  t

let stop t =
  Mutex.lock t.mutex;
  let already = t.stop_requested in
  t.stop_requested <- true;
  Mutex.unlock t.mutex;
  if not already then begin
    (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    (match t.thread with Some th -> Thread.join th | None -> ());
    t.thread <- None;
    (* Final tick so the snapshot captures the end-of-run state. *)
    sample_now t;
    Mutex.lock t.mutex;
    (match t.snapshot_oc with Some oc -> close_out oc | None -> ());
    t.snapshot_oc <- None;
    Mutex.unlock t.mutex;
    Unix.close t.wake_r;
    Unix.close t.wake_w
  end

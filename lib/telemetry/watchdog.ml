(* Heartbeat registry for the long-running loops: the attack sketch, the
   baselines' search loops and the synthesizer's Metropolis-Hastings
   chain each own a named slot and bump it as they make progress.  The
   sampler (and the /healthz endpoint) read the slots to flag loops that
   are nominally active but have stopped progressing.

   Observation-only by construction: a beat is a handful of atomic
   stores plus one clock read — no RNG, no metering, no cache state.
   Slots are shared across domains (parallel evaluation runs many
   attacks against one slot); [active] counts concurrent entries and
   the detail fields are last-writer-wins, which is exactly the "what
   is the loop doing right now" semantics a health probe wants. *)

type t = {
  name : string;
  active : int Atomic.t;  (* concurrent entries (enter/leave balance) *)
  beats : int Atomic.t;  (* lifetime progress events *)
  last_beat_us : float Atomic.t;  (* Clock.now_us of the latest beat *)
  image : int Atomic.t;  (* -1 = never reported *)
  iteration : int Atomic.t;
  queries : int Atomic.t;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()

let loop name =
  Mutex.lock registry_mutex;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let t =
          {
            name;
            active = Atomic.make 0;
            beats = Atomic.make 0;
            last_beat_us = Atomic.make 0.;
            image = Atomic.make (-1);
            iteration = Atomic.make (-1);
            queries = Atomic.make (-1);
          }
        in
        Hashtbl.replace registry name t;
        t
  in
  Mutex.unlock registry_mutex;
  t

let beat ?image ?iteration ?queries t =
  (match image with Some i -> Atomic.set t.image i | None -> ());
  (match iteration with Some i -> Atomic.set t.iteration i | None -> ());
  (match queries with Some q -> Atomic.set t.queries q | None -> ());
  Atomic.set t.last_beat_us (Core.Clock.now_us ());
  ignore (Atomic.fetch_and_add t.beats 1);
  (* Feed the flight recorder so a post-mortem ring dump carries the
     last heartbeat's span context (which loop, which image/iteration,
     how many queries).  Gated on the ring being live — the beat stays
     a handful of atomic stores otherwise. *)
  if Core.Ring.enabled () then
    Core.Ring.record
      (Core.Trace.render_event ~name:"watchdog.beat" ~cat:"watchdog" ~ph:"i"
         ~ts:(Core.Clock.now_us ()) ~scope:"t"
         (List.filter_map Fun.id
            [
              Some ("loop", Core.Trace.Str t.name);
              Option.map (fun i -> ("image", Core.Trace.Int i)) image;
              Option.map (fun i -> ("iteration", Core.Trace.Int i)) iteration;
              Option.map (fun q -> ("queries", Core.Trace.Int q)) queries;
            ]))

let enter t =
  ignore (Atomic.fetch_and_add t.active 1);
  Atomic.set t.last_beat_us (Core.Clock.now_us ())

let leave t = ignore (Atomic.fetch_and_add t.active (-1))

let with_loop t f =
  enter t;
  Fun.protect ~finally:(fun () -> leave t) f

type status = {
  name : string;
  active : int;
  beats : int;
  idle_s : float;  (* seconds since the last beat (or entry) *)
  image : int option;
  iteration : int option;
  queries : int option;
}

let opt_field v = if v < 0 then None else Some v

let snapshot ?now_us () =
  let now = match now_us with Some t -> t | None -> Core.Clock.now_us () in
  Mutex.lock registry_mutex;
  let slots = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mutex;
  slots
  |> List.map (fun (w : t) ->
         {
           name = w.name;
           active = Atomic.get w.active;
           beats = Atomic.get w.beats;
           idle_s = Float.max 0. ((now -. Atomic.get w.last_beat_us) /. 1e6);
           image = opt_field (Atomic.get w.image);
           iteration = opt_field (Atomic.get w.iteration);
           queries = opt_field (Atomic.get w.queries);
         })
  |> List.sort (fun a b -> compare a.name b.name)

(* A loop is stalled when someone is inside it but nothing has beaten
   for [stall_after_s] seconds.  Idle (inactive) slots never stall. *)
let stalled ?now_us ~stall_after_s () =
  snapshot ?now_us ()
  |> List.filter (fun s -> s.active > 0 && s.idle_s > stall_after_s)

(* Tests only: forget every slot (handles obtained earlier stay usable
   but are no longer reported). *)
let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex

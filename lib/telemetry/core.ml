(* Zero-dependency metrics + tracing.  See the interface for the design
   contract; the implementation notes here cover only what the types
   cannot say.

   Domain-safety: every metric mutation is a single [Atomic] operation
   (floats via CAS loops), so counters and histograms tolerate arbitrary
   concurrent bumps from pool workers.  The registry hashtable itself is
   mutex-protected, but registration happens at module-init time or in
   tests — never on a hot path.

   The disabled tracing path is one [Atomic.get] + branch; span argument
   closures are only evaluated when a sink is open. *)

module Clock = struct
  let epoch = Unix.gettimeofday ()

  (* Wall clock clamped to a shared high-water mark: consecutive reads
     never decrease, across domains, even if the wall clock steps
     backwards (NTP).  Good enough for trace timestamps; the clamp makes
     a stepped read repeat the last timestamp rather than regress. *)
  let high_water = Atomic.make 0.

  let now_us () =
    let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
    let rec clamp () =
      let last = Atomic.get high_water in
      if t <= last then last
      else if Atomic.compare_and_set high_water last t then t
      else clamp ()
    in
    clamp ()
end

(* Lock-free float accumulator (OCaml [Atomic] has no fetch-and-add for
   floats). *)
let atomic_add_float cell v =
  let rec loop () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. v)) then loop ()
  in
  loop ()

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let make name = { name; v = Atomic.make 0 }
  let incr t = ignore (Atomic.fetch_and_add t.v 1)
  let add t n = ignore (Atomic.fetch_and_add t.v n)
  let get t = Atomic.get t.v
  let reset t = Atomic.set t.v 0
end

module Gauge = struct
  type t = { name : string; v : float Atomic.t }

  let make name = { name; v = Atomic.make 0. }
  let set t v = Atomic.set t.v v
  let get t = Atomic.get t.v
end

module Histogram = struct
  type t = {
    name : string;
    uppers : float array;
    counts : int Atomic.t array;  (* length = length uppers + 1; last = overflow *)
    total : int Atomic.t;
    sum : float Atomic.t;
  }

  type snapshot = {
    uppers : float array;
    counts : int array;
    overflow : int;
    count : int;
    sum : float;
  }

  let make name uppers =
    let n = Array.length uppers in
    if n = 0 then invalid_arg "Telemetry.Histogram: empty bucket array";
    for i = 1 to n - 1 do
      if uppers.(i) <= uppers.(i - 1) then
        invalid_arg "Telemetry.Histogram: bucket bounds must ascend strictly"
    done;
    {
      name;
      uppers = Array.copy uppers;
      counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum = Atomic.make 0.;
    }

  let observe (t : t) v =
    let n = Array.length t.uppers in
    let rec bucket i = if i >= n || v <= t.uppers.(i) then i else bucket (i + 1) in
    ignore (Atomic.fetch_and_add t.counts.(bucket 0) 1);
    ignore (Atomic.fetch_and_add t.total 1);
    atomic_add_float t.sum v

  let snapshot (t : t) =
    let n = Array.length t.uppers in
    {
      uppers = Array.copy t.uppers;
      counts = Array.init n (fun i -> Atomic.get t.counts.(i));
      overflow = Atomic.get t.counts.(n);
      count = Atomic.get t.total;
      sum = Atomic.get t.sum;
    }

  let reset (t : t) =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.total 0;
    Atomic.set t.sum 0.

  (* Bucket-interpolated quantile over a snapshot: find the first
     non-empty bucket whose cumulative count reaches [q * count] and
     interpolate linearly inside it.  The first bucket's lower edge is 0
     (every recorded quantity — queries, seconds — is nonnegative), and
     observations past the last bound clamp to that bound: the registry
     does not keep exact values above it. *)
  let quantile_of_snapshot (s : snapshot) q =
    (* The negated form also rejects nan, which every direct comparison
       would wave through. *)
    if not (q >= 0. && q <= 1.) then
      invalid_arg "Telemetry.Histogram.quantile: q outside [0, 1]";
    if s.count = 0 then Float.nan
    else begin
      let target = q *. float_of_int s.count in
      let n = Array.length s.uppers in
      let rec walk i cum =
        if i >= n then s.uppers.(n - 1)
        else
          let c = s.counts.(i) in
          let cum' = cum + c in
          if c > 0 && float_of_int cum' >= target then begin
            let lower = if i = 0 then 0. else s.uppers.(i - 1) in
            let upper = s.uppers.(i) in
            let within = Float.max 0. (target -. float_of_int cum) in
            lower +. ((upper -. lower) *. within /. float_of_int c)
          end
          else walk (i + 1) cum'
      in
      walk 0 0
    end

  let quantile t q = quantile_of_snapshot (snapshot t) q
end

(* Registry *)

type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name wanted make =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match wanted m with
          | Some h -> h
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Telemetry.Metrics: %S is already registered as a %s" name
                   (kind_name m)))
      | None ->
          let h = make () in
          h)

module Metrics = struct
  (* Prometheus label-value escaping: backslash, double quote and
     newline are the three characters the text exposition format
     escapes inside label values. *)
  let label_escape v =
    let b = Buffer.create (String.length v + 4) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  (* A labeled series' registry key IS its exposition form —
     [name{k="v",k2="v2"}] with keys sorted and values escaped — so the
     same (name, labels) pair always resolves to the same handle and
     the exporter can render the key's label block verbatim. *)
  let labeled_name name labels =
    match labels with
    | [] -> name
    | labels ->
        let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
        let fields =
          List.map
            (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (label_escape v))
            labels
        in
        Printf.sprintf "%s{%s}" name (String.concat "," fields)

  let counter ?(labels = []) name =
    let name = labeled_name name labels in
    register name
      (function C c -> Some c | _ -> None)
      (fun () ->
        let c = Counter.make name in
        Hashtbl.replace registry name (C c);
        c)

  let gauge ?(labels = []) name =
    let name = labeled_name name labels in
    register name
      (function G g -> Some g | _ -> None)
      (fun () ->
        let g = Gauge.make name in
        Hashtbl.replace registry name (G g);
        g)

  let default_buckets =
    Array.init 13 (fun i -> float_of_int (1 lsl i)) (* 1 .. 4096 *)

  let time_buckets =
    [| 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100. |]

  let histogram ?(buckets = default_buckets) ?(labels = []) name =
    let name = labeled_name name labels in
    register name
      (function H h -> Some h | _ -> None)
      (fun () ->
        let h = Histogram.make name buckets in
        Hashtbl.replace registry name (H h);
        h)

  let sorted_metrics () =
    with_registry (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  (* Floats rendered with %.17g survive a JSON round trip bit-exactly;
     integral values still print compactly ("4" not "4.0000..."). *)
  let json_float v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.17g" v

  let json_escape_slow s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Fast path: most escaped strings (metric names, cache keys, charge
     sites) contain nothing to escape — return them unchanged rather
     than copying through a buffer. *)
  let json_escape s =
    let n = String.length s in
    let rec clean i =
      i >= n
      ||
      match String.unsafe_get s i with
      | '"' | '\\' -> false
      | c when Char.code c < 0x20 -> false
      | _ -> clean (i + 1)
    in
    if clean 0 then s else json_escape_slow s

  let dump_json () =
    let metrics = sorted_metrics () in
    let section kind render =
      metrics
      |> List.filter_map (fun (name, m) ->
             Option.map
               (fun body -> Printf.sprintf "    %S: %s" name body)
               (render m))
      |> String.concat ",\n"
      |> fun body ->
      if body = "" then Printf.sprintf "  %S: {}" kind
      else Printf.sprintf "  %S: {\n%s\n  }" kind body
    in
    let counters =
      section "counters" (function
        | C c -> Some (string_of_int (Counter.get c))
        | _ -> None)
    in
    let gauges =
      section "gauges" (function
        | G g -> Some (json_float (Gauge.get g))
        | _ -> None)
    in
    let histograms =
      section "histograms" (function
        | H h ->
            let s = Histogram.snapshot h in
            let buckets =
              Array.to_list
                (Array.mapi
                   (fun i u ->
                     Printf.sprintf "{\"le\": %s, \"count\": %d}"
                       (json_float u) s.Histogram.counts.(i))
                   s.Histogram.uppers)
              @ [ Printf.sprintf "{\"le\": \"+inf\", \"count\": %d}"
                    s.Histogram.overflow ]
            in
            Some
              (Printf.sprintf
                 "{\"count\": %d, \"sum\": %s, \"buckets\": [%s]}"
                 s.Histogram.count (json_float s.Histogram.sum)
                 (String.concat ", " buckets))
        | _ -> None)
    in
    Printf.sprintf "{\n%s,\n%s,\n%s\n}\n" counters gauges histograms

  let write_json path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (dump_json ()))

  let reset () =
    with_registry (fun () ->
        Hashtbl.iter
          (fun _ m ->
            match m with
            | C c -> Counter.reset c
            | G g -> Gauge.set g 0.
            | H h -> Histogram.reset h)
          registry)
end

(* Flight recorder: a bounded in-memory ring of the last N rendered
   span/instant event lines.  Writers claim a slot with one
   fetch-and-add and store the line; a torn read (two writers lapping
   the ring between claim and store) can at worst surface a stale line,
   never corrupt memory — acceptable for a post-mortem artifact.  The
   ring is fed by [Trace] (every emitted event) and [Watchdog.beat]
   (heartbeat context), and dumped by the post-mortem bundle on stall
   or crash. *)
module Ring = struct
  let slots : string array ref = ref [||]
  let cursor = Atomic.make 0
  let active = Atomic.make false

  let enabled () = Atomic.get active

  let configure n =
    if n <= 0 then invalid_arg "Telemetry.Ring.configure: size must be positive";
    slots := Array.make n "";
    Atomic.set cursor 0;
    Atomic.set active true

  let stop () = Atomic.set active false

  let record line =
    if Atomic.get active then begin
      let s = !slots in
      let n = Array.length s in
      if n > 0 then s.(Atomic.fetch_and_add cursor 1 mod n) <- line
    end

  (* Oldest-to-newest snapshot of the resident lines.  Racy against
     concurrent writers by design: a line may be missed or duplicated
     across the wrap boundary, but every returned string is a complete
     event line. *)
  let dump () =
    let s = !slots in
    let n = Array.length s in
    if n = 0 then []
    else begin
      let c = Atomic.get cursor in
      let first = max 0 (c - n) in
      let out = ref [] in
      for i = c - 1 downto first do
        let line = s.(i mod n) in
        if line <> "" then out := line :: !out
      done;
      !out
    end
end

module Trace = struct
  type arg = Int of int | Float of float | Bool of bool | Str of string

  (* [active] is the hot-path flag (one load + branch when disabled);
     [sink] and its mutex serialize event emission across domains. *)
  let active = Atomic.make false
  let sink : out_channel option ref = ref None
  let sink_path : string option ref = ref None
  let sink_mutex = Mutex.create ()
  let pid = Unix.getpid ()

  let enabled () = Atomic.get active

  let to_file path =
    Mutex.lock sink_mutex;
    match !sink with
    | Some _ ->
        Mutex.unlock sink_mutex;
        invalid_arg "Telemetry.Trace.to_file: tracing already active"
    | None ->
        let oc = open_out path in
        output_string oc "[\n";
        sink := Some oc;
        sink_path := Some path;
        Atomic.set active true;
        Mutex.unlock sink_mutex

  (* Path of the open sink, if any: the post-mortem writer reads the
     tail of the live trace file through this. *)
  let current_path () =
    Mutex.lock sink_mutex;
    let p = !sink_path in
    Mutex.unlock sink_mutex;
    p

  let close () =
    Mutex.lock sink_mutex;
    Atomic.set active false;
    (match !sink with
    | None -> ()
    | Some oc ->
        (* The body emits every event as [{...},\n]; the closing empty
           object absorbs the trailing comma so the whole file is one
           valid JSON array (both chrome://tracing and Perfetto also
           accept truncated traces, so a crashed run still loads). *)
        output_string oc "{}]\n";
        close_out oc;
        sink := None;
        sink_path := None);
    Mutex.unlock sink_mutex

  let render_arg = function
    | Int i -> string_of_int i
    | Float f -> Metrics.json_float f
    | Bool b -> if b then "true" else "false"
    | Str s -> Printf.sprintf "\"%s\"" (Metrics.json_escape s)

  let render_args = function
    | [] -> ""
    | args ->
        let fields =
          List.map
            (fun (k, v) ->
              Printf.sprintf "\"%s\": %s" (Metrics.json_escape k)
                (render_arg v))
            args
        in
        Printf.sprintf ", \"args\": {%s}" (String.concat ", " fields)

  (* One event rendered as a complete JSON object (no trailing comma):
     the sink appends [",\n"], the flight-recorder ring stores the line
     as-is. *)
  (* [?tid] overrides the track id: the runtime-events profiler emits GC
     pauses from its observer systhread but must land them on the track
     of the domain that actually paused. *)
  let render_event ~name ~cat ~ph ~ts ?dur ?scope ?tid args =
    let dur =
      match dur with
      | None -> ""
      | Some d -> Printf.sprintf ", \"dur\": %.3f" d
    in
    let scope =
      match scope with
      | None -> ""
      | Some s -> Printf.sprintf ", \"s\": \"%s\"" s
    in
    let tid =
      match tid with Some t -> t | None -> (Domain.self () :> int)
    in
    Printf.sprintf
      "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \"ts\": \
       %.3f%s, \"pid\": %d, \"tid\": %d%s%s}"
      (Metrics.json_escape name) (Metrics.json_escape cat) ph ts dur pid
      tid scope (render_args args)

  let emit ~name ~cat ~ph ~ts ?dur ?scope ?tid args =
    let line = render_event ~name ~cat ~ph ~ts ?dur ?scope ?tid args in
    Ring.record line;
    Mutex.lock sink_mutex;
    (match !sink with
    | None -> ()
    | Some oc ->
        output_string oc line;
        output_string oc ",\n");
    Mutex.unlock sink_mutex

  (* Flush the sink channel without closing it: the stall/crash paths
     call this so a process that dies right after never leaves a
     half-buffered trace behind. *)
  let flush () =
    Mutex.lock sink_mutex;
    (match !sink with None -> () | Some oc -> Stdlib.flush oc);
    Mutex.unlock sink_mutex

  let span ?(cat = "oppsla") ?args name f =
    if not (Atomic.get active || Ring.enabled ()) then f ()
    else begin
      let t0 = Clock.now_us () in
      let finish () =
        let dur = Clock.now_us () -. t0 in
        let args = match args with None -> [] | Some a -> a () in
        emit ~name ~cat ~ph:"X" ~ts:t0 ~dur args
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt
    end

  let instant ?(cat = "oppsla") ?args name =
    if Atomic.get active || Ring.enabled () then
      let args = match args with None -> [] | Some a -> a () in
      emit ~name ~cat ~ph:"i" ~ts:(Clock.now_us ()) ~scope:"t" args

  let without f =
    let was = Atomic.get active in
    Atomic.set active false;
    Fun.protect ~finally:(fun () -> Atomic.set active was) f
end

(* Shared numeric formatting for reports and logs: bin, bench and the
   harness all render throughput/rates/footprints through these, so the
   renderings cannot drift apart. *)
module Fmt = struct
  let f1 v = Printf.sprintf "%.1f" v
  let f2 v = Printf.sprintf "%.2f" v
  let percent v = Printf.sprintf "%.1f%%" (100. *. v)
  let mb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1048576.)
end

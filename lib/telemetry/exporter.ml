(* Prometheus text exposition (format version 0.0.4) over the metrics
   registry.  [render] works on an explicit metric list so golden tests
   can exercise the formatter without touching the global registry;
   [prometheus] snapshots the registry and renders it.

   Read-only: snapshotting a metric is atomic loads, so the exporter can
   run concurrently with the attack loops without perturbing them. *)

type metric =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * Core.Histogram.snapshot

(* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our registry
   uses dotted names ("oracle.queries.total"), so dots (and anything
   else illegal) become underscores. *)
let sanitize_name s =
  let b = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  Buffer.contents b

let float_repr v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Core.Metrics.json_float v

(* Prometheus label-value escaping, re-exported from the registry (the
   registry escapes values when it builds a labeled series' key, so the
   key's label block is already exposition-ready). *)
let escape_label_value = Core.Metrics.label_escape

let of_registry () =
  Core.Metrics.sorted_metrics ()
  |> List.map (fun (name, m) ->
         match m with
         | Core.C c -> Counter (name, Core.Counter.get c)
         | Core.G g -> Gauge (name, Core.Gauge.get g)
         | Core.H h -> Histogram (name, Core.Histogram.snapshot h))

(* A labeled registry key is [name{k="v",...}] with values already
   escaped; split it into the sanitized base name and the literal label
   block so dimensional series render as one family. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (sanitize_name name, "")
  | Some i ->
      ( sanitize_name (String.sub name 0 i),
        String.sub name i (String.length name - i) )

(* Merge an extra [le] label into a (possibly empty) label block for
   histogram bucket lines. *)
let with_le labels le =
  let le_field = Printf.sprintf "le=\"%s\"" le in
  if labels = "" then Printf.sprintf "{%s}" le_field
  else
    Printf.sprintf "%s,%s}"
      (String.sub labels 0 (String.length labels - 1))
      le_field

let render metrics =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  (* One # TYPE comment per family: labeled series of one base name
     share a single comment (they sort adjacently, so the family stays
     contiguous in the exposition). *)
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      line "# TYPE %s %s" name kind
    end
  in
  List.iter
    (fun m ->
      match m with
      | Counter (name, v) ->
          let name, labels = split_labels name in
          type_line name "counter";
          line "%s%s %d" name labels v
      | Gauge (name, v) ->
          let name, labels = split_labels name in
          type_line name "gauge";
          line "%s%s %s" name labels (float_repr v)
      | Histogram (name, s) ->
          let name, labels = split_labels name in
          type_line name "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i upper ->
              cum := !cum + s.Core.Histogram.counts.(i);
              line "%s_bucket%s %d" name
                (with_le labels (float_repr upper))
                !cum)
            s.Core.Histogram.uppers;
          (* +Inf bucket is cumulative over everything, i.e. the count. *)
          line "%s_bucket%s %d" name (with_le labels "+Inf")
            s.Core.Histogram.count;
          line "%s_sum%s %s" name labels (float_repr s.Core.Histogram.sum);
          line "%s_count%s %d" name labels s.Core.Histogram.count)
    metrics;
  Buffer.contents b

let prometheus () = render (of_registry ())

(* Standard-idiom build-info gauge: constant 1 with identifying labels,
   so a scrape can join performance series against the build that
   produced them.  The version string is the CLI's --version; keep the
   two in lock-step. *)
let build_version = "1.0.0"

let set_build_info ?(backend = "boxed") () =
  Core.Gauge.set
    (Core.Metrics.gauge
       ~labels:
         [
           ("version", build_version);
           ("backend", backend);
           ("ocaml", Sys.ocaml_version);
         ]
       "oppsla_build_info")
    1.0

(* Prometheus text exposition (format version 0.0.4) over the metrics
   registry.  [render] works on an explicit metric list so golden tests
   can exercise the formatter without touching the global registry;
   [prometheus] snapshots the registry and renders it.

   Read-only: snapshotting a metric is atomic loads, so the exporter can
   run concurrently with the attack loops without perturbing them. *)

type metric =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * Core.Histogram.snapshot

(* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our registry
   uses dotted names ("oracle.queries.total"), so dots (and anything
   else illegal) become underscores. *)
let sanitize_name s =
  let b = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  Buffer.contents b

let float_repr v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Core.Metrics.json_float v

let of_registry () =
  Core.Metrics.sorted_metrics ()
  |> List.map (fun (name, m) ->
         match m with
         | Core.C c -> Counter (name, Core.Counter.get c)
         | Core.G g -> Gauge (name, Core.Gauge.get g)
         | Core.H h -> Histogram (name, Core.Histogram.snapshot h))

let render metrics =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun m ->
      match m with
      | Counter (name, v) ->
          let name = sanitize_name name in
          line "# TYPE %s counter" name;
          line "%s %d" name v
      | Gauge (name, v) ->
          let name = sanitize_name name in
          line "# TYPE %s gauge" name;
          line "%s %s" name (float_repr v)
      | Histogram (name, s) ->
          let name = sanitize_name name in
          line "# TYPE %s histogram" name;
          let cum = ref 0 in
          Array.iteri
            (fun i upper ->
              cum := !cum + s.Core.Histogram.counts.(i);
              line "%s_bucket{le=\"%s\"} %d" name (float_repr upper) !cum)
            s.Core.Histogram.uppers;
          (* +Inf bucket is cumulative over everything, i.e. the count. *)
          line "%s_bucket{le=\"+Inf\"} %d" name s.Core.Histogram.count;
          line "%s_sum %s" name (float_repr s.Core.Histogram.sum);
          line "%s_count %d" name s.Core.Histogram.count)
    metrics;
  Buffer.contents b

let prometheus () = render (of_registry ())

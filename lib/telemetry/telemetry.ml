(* Public face of the telemetry library.  [Core] holds the registry,
   tracing, clock and formatters (one compilation unit so the siblings
   below can share its internals); this module re-exports it together
   with the observatory layers built on top. *)

include Core
module Watchdog = Watchdog
module Exporter = Exporter
module Sampler = Sampler
module Profiler = Profiler
module Http_server = Http_server
module Journal = Journal
module Postmortem = Postmortem
module Obs = Obs

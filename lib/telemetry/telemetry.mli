(** Zero-dependency metrics and tracing for the attack pipeline.

    OPPSLA's objective is a measured quantity — queries per attack — so
    the pipeline needs visibility into how queries and wall-clock are
    spent, per stage, not just end-of-run averages.  This module is the
    one observability substrate every layer shares:

    - {!Metrics}: a process-wide, domain-safe registry of named
      {!Counter}s, {!Gauge}s and fixed-bucket {!Histogram}s.  All
      mutation is lock-free ([Atomic]); registration (rare) takes a
      mutex.  Metrics are always on — one atomic add per event — and
      dumpable as JSON ([--metrics FILE]).
    - {!Trace}: span tracing against a monotonic clock, emitting Chrome
      trace-event–format JSONL ([--trace FILE]) viewable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  The
      default sink is the null sink: with tracing disabled every span
      costs exactly one atomic load and branch, and instrumented code is
      observably inert — query counts, success flags and synthesizer
      traces are bit-identical with tracing on or off
      ([test/diff_runner.ml --trace on|off] enforces this).

    The library sits below every other layer (it depends only on [unix])
    so tensor kernels, the oracle, the domain pool and the synthesizer
    can all instrument through it without dependency cycles. *)

(** {1 Clock} *)

module Clock : sig
  val now_us : unit -> float
  (** Microseconds since process start.  Monotonic by construction: the
      raw wall clock is clamped so consecutive reads never decrease,
      even across domains (a shared atomic high-water mark). *)
end

(** {1 Metric handles}

    Handles are obtained from the {!Metrics} registry and are safe to
    share across domains. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int

  val reset : t -> unit
  (** Zero the counter (benchmark brackets and tests only). *)
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val get : t -> float
end

module Histogram : sig
  type t

  type snapshot = {
    uppers : float array;  (** inclusive upper bounds, ascending *)
    counts : int array;  (** per-bucket counts, same length as [uppers] *)
    overflow : int;  (** observations above the last bound *)
    count : int;  (** total observations *)
    sum : float;  (** sum of observed values *)
  }

  val observe : t -> float -> unit
  (** Record one observation into the first bucket whose upper bound is
      [>=] the value (the overflow bucket if none is).  Lock-free; the
      invariant [sum of counts + overflow = count] holds at every
      quiescent point and is property-tested. *)

  val snapshot : t -> snapshot
  val reset : t -> unit
end

(** {1 The registry} *)

module Metrics : sig
  val counter : string -> Counter.t
  (** Register (or fetch, if already registered) the counter named
      [name].  Raises [Invalid_argument] if the name is registered as a
      different metric kind. *)

  val gauge : string -> Gauge.t

  val histogram : ?buckets:float array -> string -> Histogram.t
  (** [buckets] are inclusive upper bounds, strictly ascending (default
      {!default_buckets}); ignored when the histogram already exists.
      Raises [Invalid_argument] on an empty or non-ascending array, or
      on a kind clash. *)

  val default_buckets : float array
  (** Powers of two from 1 to 4096 — sized for query counts. *)

  val time_buckets : float array
  (** Decade-spaced seconds from 10us to 100s — sized for span-shaped
      durations observed as histogram values. *)

  val dump_json : unit -> string
  (** All registered metrics as one JSON object, names sorted, shaped
      [{"counters": {...}, "gauges": {...}, "histograms": {...}}].
      Histograms carry their bucket bounds, per-bucket counts, overflow,
      total count and sum. *)

  val write_json : string -> unit
  (** [dump_json] to a file. *)

  val reset : unit -> unit
  (** Zero every registered metric (handles stay valid).  For benchmark
      A/B brackets and tests; never called on production paths. *)
end

(** {1 Tracing} *)

module Trace : sig
  type arg = Int of int | Float of float | Bool of bool | Str of string

  val enabled : unit -> bool
  (** One atomic load.  Instrumentation may use this to skip building
      dynamic span metadata on the disabled path. *)

  val to_file : string -> unit
  (** Open [path] as the trace sink and enable tracing.  The file is a
      Chrome trace-event JSON array written one event per line (JSONL
      body), loadable by [chrome://tracing] and Perfetto.  Raises
      [Invalid_argument] if tracing is already active. *)

  val close : unit -> unit
  (** Terminate the JSON array, close the sink and disable tracing.
      Idempotent; a later {!to_file} may start a fresh trace. *)

  val span : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
  (** [span name f] runs [f] and, when tracing is enabled, emits one
      complete ("ph":"X") event covering [f]'s execution on the calling
      domain's track.  [args] is evaluated {e after} [f] returns (or
      raises), so it may read state the body just updated; it is never
      evaluated on the disabled path, which costs one branch.  Never
      alters [f]'s result or exception. *)

  val instant : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> unit
  (** A zero-duration event ("ph":"i", thread scope) — point-in-time
      markers such as one Metropolis-Hastings iteration's outcome. *)

  val without : (unit -> 'a) -> 'a
  (** Run [f] with tracing temporarily disabled (the differential
      checker computes its untraced reference this way without closing
      the sink). *)
end

(** {1 Shared numeric formatting}

    One formatter for every surface that renders telemetry — [Report]'s
    tables, the workbench log lines, the bench harness — so the
    renderings of the same quantity cannot drift apart. *)

module Fmt : sig
  val f1 : float -> string
  (** One decimal: ["12.3"]. *)

  val f2 : float -> string
  (** Two decimals: ["12.34"]. *)

  val percent : float -> string
  (** [0.59 -> "59.0%"]. *)

  val mb : int -> string
  (** Bytes as one-decimal megabytes: [1048576 -> "1.0"]. *)
end

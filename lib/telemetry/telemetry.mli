(** Zero-dependency metrics and tracing for the attack pipeline.

    OPPSLA's objective is a measured quantity — queries per attack — so
    the pipeline needs visibility into how queries and wall-clock are
    spent, per stage, not just end-of-run averages.  This module is the
    one observability substrate every layer shares:

    - {!Metrics}: a process-wide, domain-safe registry of named
      {!Counter}s, {!Gauge}s and fixed-bucket {!Histogram}s.  All
      mutation is lock-free ([Atomic]); registration (rare) takes a
      mutex.  Metrics are always on — one atomic add per event — and
      dumpable as JSON ([--metrics FILE]).
    - {!Trace}: span tracing against a monotonic clock, emitting Chrome
      trace-event–format JSONL ([--trace FILE]) viewable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  The
      default sink is the null sink: with tracing disabled every span
      costs exactly one atomic load and branch, and instrumented code is
      observably inert — query counts, success flags and synthesizer
      traces are bit-identical with tracing on or off
      ([test/diff_runner.ml --trace on|off] enforces this).

    The library sits below every other layer (it depends only on [unix])
    so tensor kernels, the oracle, the domain pool and the synthesizer
    can all instrument through it without dependency cycles. *)

(** {1 Clock} *)

module Clock : sig
  val now_us : unit -> float
  (** Microseconds since process start.  Monotonic by construction: the
      raw wall clock is clamped so consecutive reads never decrease,
      even across domains (a shared atomic high-water mark). *)
end

(** {1 Metric handles}

    Handles are obtained from the {!Metrics} registry and are safe to
    share across domains. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int

  val reset : t -> unit
  (** Zero the counter (benchmark brackets and tests only). *)
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val get : t -> float
end

module Histogram : sig
  type t

  type snapshot = {
    uppers : float array;  (** inclusive upper bounds, ascending *)
    counts : int array;  (** per-bucket counts, same length as [uppers] *)
    overflow : int;  (** observations above the last bound *)
    count : int;  (** total observations *)
    sum : float;  (** sum of observed values *)
  }

  val observe : t -> float -> unit
  (** Record one observation into the first bucket whose upper bound is
      [>=] the value (the overflow bucket if none is).  Lock-free; the
      invariant [sum of counts + overflow = count] holds at every
      quiescent point and is property-tested. *)

  val snapshot : t -> snapshot
  val reset : t -> unit

  val quantile : t -> float -> float
  (** [quantile t q] is the bucket-interpolated [q]-quantile (q in
      [0, 1]) of the recorded distribution: linear interpolation inside
      the first bucket whose cumulative count reaches [q * count], with
      the first bucket's lower edge taken as 0.  Values recorded above
      the last bound clamp to that bound (the registry keeps no exact
      values past it), and an empty histogram yields [nan].  Raises
      [Invalid_argument] if [q] is outside [0, 1]. *)

  val quantile_of_snapshot : snapshot -> float -> float
  (** Same, over an already-taken {!snapshot}. *)
end

(** {1 The registry} *)

module Metrics : sig
  val counter : ?labels:(string * string) list -> string -> Counter.t
  (** Register (or fetch, if already registered) the counter named
      [name].  Raises [Invalid_argument] if the name is registered as a
      different metric kind.

      [labels] attaches low-cardinality dimensions (backend, oracle
      mode, space, island): the registry key becomes the Prometheus
      series identity [name{k="v",...}] with keys sorted and values
      escaped, so the same (name, labels) pair always resolves to the
      same handle and the exporter renders one dimensional series per
      label combination.  Callers on hot paths must cache the handle —
      registration takes the registry mutex. *)

  val gauge : ?labels:(string * string) list -> string -> Gauge.t

  val histogram :
    ?buckets:float array -> ?labels:(string * string) list -> string ->
    Histogram.t
  (** [buckets] are inclusive upper bounds, strictly ascending (default
      {!default_buckets}); ignored when the histogram already exists.
      Raises [Invalid_argument] on an empty or non-ascending array, or
      on a kind clash. *)

  val default_buckets : float array
  (** Powers of two from 1 to 4096 — sized for query counts. *)

  val time_buckets : float array
  (** Decade-spaced seconds from 10us to 100s — sized for span-shaped
      durations observed as histogram values. *)

  val dump_json : unit -> string
  (** All registered metrics as one JSON object, names sorted, shaped
      [{"counters": {...}, "gauges": {...}, "histograms": {...}}].
      Histograms carry their bucket bounds, per-bucket counts, overflow,
      total count and sum. *)

  val write_json : string -> unit
  (** [dump_json] to a file. *)

  val reset : unit -> unit
  (** Zero every registered metric (handles stay valid).  For benchmark
      A/B brackets and tests; never called on production paths. *)
end

(** {1 Tracing} *)

module Trace : sig
  type arg = Int of int | Float of float | Bool of bool | Str of string

  val enabled : unit -> bool
  (** One atomic load.  Instrumentation may use this to skip building
      dynamic span metadata on the disabled path. *)

  val to_file : string -> unit
  (** Open [path] as the trace sink and enable tracing.  The file is a
      Chrome trace-event JSON array written one event per line (JSONL
      body), loadable by [chrome://tracing] and Perfetto.  Raises
      [Invalid_argument] if tracing is already active. *)

  val close : unit -> unit
  (** Terminate the JSON array, close the sink and disable tracing.
      Idempotent; a later {!to_file} may start a fresh trace. *)

  val span : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
  (** [span name f] runs [f] and, when tracing is enabled, emits one
      complete ("ph":"X") event covering [f]'s execution on the calling
      domain's track.  [args] is evaluated {e after} [f] returns (or
      raises), so it may read state the body just updated; it is never
      evaluated on the disabled path, which costs one branch.  Never
      alters [f]'s result or exception. *)

  val instant : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> unit
  (** A zero-duration event ("ph":"i", thread scope) — point-in-time
      markers such as one Metropolis-Hastings iteration's outcome. *)

  val without : (unit -> 'a) -> 'a
  (** Run [f] with tracing temporarily disabled (the differential
      checker computes its untraced reference this way without closing
      the sink). *)

  val flush : unit -> unit
  (** Flush the open sink without closing it.  The stall/crash paths
      call this so an aborting process never leaves a half-buffered
      trace behind; a no-op when tracing is off. *)

  val current_path : unit -> string option
  (** Path of the open trace sink, [None] when tracing is off.  The
      post-mortem writer copies the tail of the live trace through
      this. *)
end

(** {1 Flight recorder}

    A bounded in-memory ring of the last N rendered span/instant event
    lines (including watchdog heartbeats), enabled by the {!Obs}
    bracket and dumped into the post-mortem bundle on stall or crash.
    Lock-free: a write is one fetch-and-add plus an array store. *)

module Ring : sig
  val enabled : unit -> bool

  val configure : int -> unit
  (** Allocate an [n]-slot ring and start recording.  Raises
      [Invalid_argument] when [n <= 0]. *)

  val stop : unit -> unit

  val record : string -> unit
  (** Store one pre-rendered event line (no-op when disabled). *)

  val dump : unit -> string list
  (** Resident lines, oldest first.  Racy against concurrent writers
      by design (a post-mortem artifact): a line may be missed across
      the wrap boundary, but every returned line is complete. *)
end

(** {1 Shared numeric formatting}

    One formatter for every surface that renders telemetry — [Report]'s
    tables, the workbench log lines, the bench harness — so the
    renderings of the same quantity cannot drift apart. *)

module Fmt : sig
  val f1 : float -> string
  (** One decimal: ["12.3"]. *)

  val f2 : float -> string
  (** Two decimals: ["12.34"]. *)

  val percent : float -> string
  (** [0.59 -> "59.0%"]. *)

  val mb : int -> string
  (** Bytes as one-decimal megabytes: [1048576 -> "1.0"]. *)
end

(** {1 Stall watchdog}

    Long-running loops (the attack sketch, the baselines' searches, the
    synthesizer's MH chain) register a named heartbeat slot and [beat]
    it as they make progress.  The {!Sampler} and the [/healthz]
    endpoint flag loops that are active but have stopped beating.
    Beats are a few atomic stores — observation-only by construction. *)

module Watchdog : sig
  type t
  (** One named loop's heartbeat slot; safe to share across domains
      (parallel evaluation beats one slot from many workers). *)

  val loop : string -> t
  (** Register (or fetch) the slot named [name]. *)

  val enter : t -> unit
  (** Mark one entry into the loop (counts concurrent entries). *)

  val leave : t -> unit

  val with_loop : t -> (unit -> 'a) -> 'a
  (** [enter]/[leave] bracket, exception-safe. *)

  val beat : ?image:int -> ?iteration:int -> ?queries:int -> t -> unit
  (** Record progress: refresh the slot's last-beat time and, when
      given, the loop's current image index / iteration / queries
      spent (last-writer-wins across domains). *)

  type status = {
    name : string;
    active : int;  (** concurrent entries right now *)
    beats : int;  (** lifetime beat count *)
    idle_s : float;  (** seconds since the last beat (or entry) *)
    image : int option;
    iteration : int option;
    queries : int option;
  }

  val snapshot : ?now_us:float -> unit -> status list
  (** All slots, name-sorted.  [now_us] (a {!Clock.now_us} value)
      pins the idle computation for deterministic tests. *)

  val stalled : ?now_us:float -> stall_after_s:float -> unit -> status list
  (** Slots that are active but have not beaten for more than
      [stall_after_s] seconds.  Inactive slots never stall. *)

  val reset : unit -> unit
  (** Forget every slot (tests only). *)
end

(** {1 Prometheus exporter} *)

module Exporter : sig
  type metric =
    | Counter of string * int
    | Gauge of string * float
    | Histogram of string * Histogram.snapshot

  val sanitize_name : string -> string
  (** Map a registry name onto the Prometheus name charset
      ([[a-zA-Z0-9_:]], no leading digit): dots and other illegal
      characters become underscores. *)

  val escape_label_value : string -> string
  (** Prometheus label-value escaping: backslash, double quote and
      newline.  Applied by the registry when a labeled series' key is
      built, so rendered label blocks are already exposition-ready. *)

  val of_registry : unit -> metric list
  (** Snapshot the registry (name-sorted, atomic loads only). *)

  val render : metric list -> string
  (** Prometheus text exposition format 0.0.4: [# TYPE] comment per
      metric; histograms as cumulative [_bucket{le="..."}] lines ending
      with [le="+Inf"] (= total count) plus [_sum] and [_count]. *)

  val prometheus : unit -> string
  (** [render (of_registry ())]. *)

  val build_version : string
  (** The version label {!set_build_info} exposes (kept in lock-step
      with the CLI's [--version]). *)

  val set_build_info : ?backend:string -> unit -> unit
  (** Register the standard-idiom [oppsla_build_info] gauge: constant
      value 1 with [version], [backend] and [ocaml] labels, so scrapes
      can join performance series against the build that produced
      them.  Idempotent per label combination; called by the {!Obs}
      bracket with the active backend. *)
end

(** {1 Runtime-events profiler}

    Live GC profiling over OCaml 5's [Runtime_events] ring, consumed
    from a dedicated systhread of the spawning domain (never a domain
    of its own: a parked observer domain drags every stop-the-world
    minor collection through a cross-domain barrier).  Pauses are
    folded into the registry as labeled families —
    [gc.pause_seconds{domain,gc}] histograms,
    [gc.minor_{promoted,allocated}_words{domain}] counters,
    [gc.domain_{spawns,terminations}.total] — and, when tracing or the
    flight-recorder ring is on, emitted as Chrome-trace complete
    events on the paused domain's track (clock-calibrated against
    {!Clock.now_us} via a user event written before each poll), so GC
    pauses line up under application spans in Perfetto and post-mortem
    bundles show whether a stall was GC.  Observation-only: query
    counts and success flags are bit-identical with the profiler on
    ([test/diff_runner.ml --profile on] and [bench profile] both
    enforce this). *)

module Profiler : sig
  type t

  val start : ?interval_s:float -> unit -> t
  (** Start the runtime-events ring (resuming it if a previous profiler
      paused it), open a self-process cursor and spawn the polling
      systhread ([interval_s] defaults to 25ms; the ring buffers
      between polls, and dropped events on overflow are counted in
      [profiler.lost_events.total]).  Raises [Invalid_argument] if a
      profiler is already running (the ring is process-wide). *)

  val stop : t -> unit
  (** Join the poller, drain the ring one final time, free the cursor
      and pause event collection (so a bare benchmark arm sees zero
      residual overhead).  Idempotent. *)

  val running : unit -> bool

  val active_seconds : unit -> float
  (** Wall seconds the profiler has been attached (the
      [profiler.active_seconds] gauge) — the denominator for
      %-time-in-GC. *)

  type gc_stat = {
    domain : int;  (** runtime-events ring id of the paused domain *)
    kind : string;  (** ["minor"] or ["major"] *)
    pauses : int;
    total_s : float;
    p50_s : float;
    p99_s : float;
  }

  val summary : unit -> gc_stat list
  (** Per-(domain, kind) pause summary rebuilt from the registry's
      [gc.pause_seconds] families (empty when the profiler never ran),
      usable from any thread, after {!stop}, and inside the
      post-mortem writer. *)
end

(** {1 Background sampler} *)

module Sampler : sig
  type config = {
    interval_s : float;
    snapshot_path : string option;
        (** append one JSONL registry snapshot per tick *)
    stall_after_s : float;  (** watchdog threshold *)
    abort_on_stall : bool;  (** exit 3 when a loop first stalls *)
  }

  val default : config
  (** 1s interval, no snapshot file, 30s stall threshold, no abort. *)

  type t

  val start : config -> t
  (** Spawn the sampling thread — a systhread of the calling domain,
      never a pool worker and never a separate domain (a parked
      observer domain would drag every stop-the-world minor collection
      through a cross-domain barrier).  Each tick folds
      process gauges into the registry — [process.uptime_seconds],
      [process.cpu_{user,system}_seconds], [process.heap_mb],
      [process.{minor,major}_collections], [process.minor_words],
      [oracle.query_rate_per_s] — plus [watchdog.active_loops] /
      [watchdog.stalled_loops] gauges, the [sampler.samples] counter,
      and a [watchdog.stalls] counter + trace instant on each fresh
      stall.  Guaranteed to take at least one sample before {!stop}
      returns.  Observation-only: atomic loads and process syscalls;
      never touches RNG, metering or cache state. *)

  val sample_now : t -> unit
  (** Take one tick synchronously (deterministic tests). *)

  val stop : t -> unit
  (** Interrupt the sleep, join the thread, take a final tick and close
      the snapshot file.  Idempotent. *)
end

(** {1 Metrics HTTP endpoint} *)

module Http_server : sig
  type t

  val start : ?stall_after_s:float -> port:int -> unit -> t
  (** Bind 127.0.0.1:[port] ([port = 0] picks an ephemeral port — see
      {!port}) and serve, from one dedicated accept thread (a systhread
      of the calling domain — never a pool worker, never a separate
      domain): [GET /metrics] (Prometheus text, format 0.0.4),
      [GET /healthz] (200 [{"status": "ok"}] or 503
      [{"status": "stalled", "stalled": [...]}] from the watchdog, with
      [stall_after_s] defaulting to 30), and [GET /snapshot.json] (the
      registry as JSON).  Read-only against the registry. *)

  val port : t -> int
  (** The bound port (resolves [port = 0]). *)

  val stop : t -> unit
  (** Close the listener and join the serving thread.  Idempotent. *)

  val fetch : port:int -> string -> int * string
  (** Blocking [GET] of [path] against [127.0.0.1:port]; returns
      (status code, body).  The one HTTP client shared by the tests,
      the observe bench and the differential runner. *)
end

(** {1 Query-provenance journal}

    Records every {e charged} oracle query as one checksummed JSONL
    record at the metering point, so the charge sequence — the
    bit-identity every optimization layer must preserve — persists as
    an offline-auditable artifact ([tools/audit.exe] diffs two
    journals).  See [journal.ml] for the file format. *)

module Journal : sig
  val enabled : unit -> bool
  (** One atomic load; nothing else runs when no sink is open. *)

  val to_file : string -> unit
  (** Open [path ^ ".tmp"] as the journal sink, write the versioned
      header and start recording.  {!close} finalizes atomically by
      renaming onto [path].  Raises [Invalid_argument] if a journal is
      already active. *)

  val close : unit -> unit
  (** Append the footer (record count), close the sink and rename the
      [.tmp] file onto the final path.  Idempotent. *)

  val flush : unit -> unit
  (** Flush the open sink without closing it (stall/crash paths). *)

  val run_id : unit -> string
  val set_run_id : string -> unit

  val current_path : unit -> string option
  (** Where journal bytes currently live: the [.tmp] file while the
      sink is open, [None] otherwise. *)

  val record :
    key:string -> kind:string -> mode:string -> hit:bool -> ?chunk:int ->
    backend:string -> unit -> unit
  (** Emit one charge record (no-op when disabled).  Called by
      [Oracle.meter] — the single funnel every charged query passes
      through.  [chunk] is the batcher slot position (-1 when the
      charge was not batched); site and image come from the
      domain-local context below. *)

  val with_site : string -> (unit -> 'a) -> 'a
  (** Tag charges issued by [f] (on this domain) with a charge site. *)

  val with_default_site : string -> (unit -> 'a) -> 'a
  (** Like {!with_site} but only when no site is currently set: the
      sketch executor also runs under the synthesizer and the island
      chains, whose outer tags take precedence. *)

  val with_image : int -> (unit -> 'a) -> 'a
  (** Tag charges issued by [f] (on this domain) with an image index. *)

  val site : unit -> string
  (** The current domain's charge-site tag ("unattributed" outside any
      {!with_site}); evaluators capture it before fanning work out to
      pool workers, whose domain-local context starts empty. *)

  val image : unit -> int

  val tail : unit -> string list
  (** The last few record lines, oldest first, from memory (post-mortem
      bundles survive lost channel buffers this way). *)

  val render_record :
    seq:int -> site:string -> image:int -> key:string -> kind:string ->
    mode:string -> hit:bool -> chunk:int -> backend:string -> string
  (** Render one record line exactly as the sink writes it (checksummed;
      exposed for the round-trip property tests and the auditor). *)

  val fnv64_hex : string -> string
  (** FNV-1a 64-bit hash as 16 lowercase hex digits — the record
      checksum function, shared with the offline auditor. *)
end

(** {1 Post-mortem bundles} *)

module Postmortem : sig
  val dump : ?dir:string -> reason:string -> unit -> string option
  (** Write the post-mortem bundle
      ([<dir>/postmortem-<runid>/]: [info.json], [ring.jsonl],
      [registry.json], [journal_tail.jsonl]) and return its directory.
      At most one bundle per process (the first fatal event wins —
      [None] thereafter); never raises.  [dir] defaults to
      ["_artifacts"]. *)

  val note_checkpoint : string -> unit
  (** Register the most recent synthesis checkpoint file so the bundle
      names the resume point. *)

  val reset : unit -> unit
  (** Allow a fresh dump in this process (tests only). *)
end

(** {1 CLI observability bracket} *)

module Obs : sig
  type config = {
    trace : string option;  (** [--trace FILE] *)
    metrics : string option;  (** [--metrics FILE] *)
    serve_port : int option;  (** [--serve-metrics PORT] *)
    snapshot : string option;  (** [--snapshot FILE] *)
    snapshot_interval_s : float;  (** [--snapshot-interval SEC] *)
    stall_timeout_s : float option;  (** [--stall-timeout SEC] *)
    journal : string option;  (** [--journal FILE] *)
    run_id : string option;  (** [--run-id ID] *)
    profile : bool;  (** [--profile]: attach the runtime profiler *)
    backend_label : string;  (** [oppsla_build_info]'s backend label *)
  }

  val default : config
  val active : config -> bool

  val find_flag : string list -> flag:string -> string option
  (** Scan an argv list for [--flag VALUE] or [--flag=VALUE] — the
      shared parser behind the bench's hand-rolled flags (cmdliner
      accepts both spellings natively on the bin side). *)

  val strip_flags : string list -> flags:string list -> string list
  (** Remove the given value-taking flags (either spelling) from an
      argv list. *)

  type t

  val start : ?log:(string -> unit) -> config -> t
  (** Set the run id, enable the flight-recorder ring, install the
      crash handler (post-mortem bundle on uncaught exception), open
      the journal and trace sinks, register the build-info gauge,
      start the HTTP server ([serve_port]), the sampler (when a scrape
      endpoint, snapshot file or stall timeout asks for one;
      [stall_timeout_s] makes stalls abort the process with exit 3
      after dumping the bundle), and the runtime profiler
      ([profile]). *)

  val stop : t -> unit
  (** Stop sampler then server then profiler, close the trace and
      journal (atomic finalize), stop the ring, write [--metrics]. *)

  val with_observability : ?log:(string -> unit) -> config -> (unit -> 'a) -> 'a
  (** [start]/[stop] bracket, exception-safe; a no-op (beyond calling
      the function) when {!active} is false. *)
end

(* Post-mortem bundle: when a run dies involuntarily — the watchdog's
   fatal stall (exit 3) or an uncaught exception — the process drops a
   self-contained diagnostic directory before exiting:

     _artifacts/postmortem-<runid>/
       info.json          run id, reason, uptime, stalled loops,
                          journal path, registered checkpoint
       ring.jsonl         the flight-recorder ring (last N span/instant
                          events, including watchdog heartbeats and,
                          under the profiler, GC pause events)
       registry.json      full metrics registry snapshot
       journal_tail.jsonl the last few query-provenance records
       gc.json            Gc.quick_stat at death + the profiler's
                          per-domain pause summary (distinguishes a GC
                          death-spiral from a wedged loop)
       trace_tail.jsonl   the last lines of the live trace file, when
                          tracing was on

   Everything read here is observation-only state (the ring, the
   registry, the journal's in-memory tail, the watchdog slots), so a
   dump can run from any context — the sampler thread, an exception
   handler — without perturbing or deadlocking the attack stack. *)

let checkpoint_ref = ref None
let checkpoint_mutex = Mutex.create ()

(* The island-model synthesizer registers its checkpoint file here so a
   post-mortem names the resume point alongside the wreckage. *)
let note_checkpoint path =
  Mutex.lock checkpoint_mutex;
  checkpoint_ref := Some path;
  Mutex.unlock checkpoint_mutex

let checkpoint () =
  Mutex.lock checkpoint_mutex;
  let p = !checkpoint_ref in
  Mutex.unlock checkpoint_mutex;
  p

let dumped = Atomic.make false

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path body =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc body)

let info_json ~reason =
  let esc = Core.Metrics.json_escape in
  let opt = function
    | None -> "null"
    | Some s -> Printf.sprintf "\"%s\"" (esc s)
  in
  let stalled =
    Watchdog.snapshot ()
    |> List.filter (fun (s : Watchdog.status) -> s.Watchdog.active > 0)
    |> List.map (fun (s : Watchdog.status) ->
           Printf.sprintf
             "{\"loop\": \"%s\", \"idle_s\": %s, \"beats\": %d, \
              \"image\": %d, \"iteration\": %d, \"queries\": %d}"
             (esc s.Watchdog.name)
             (Core.Metrics.json_float s.Watchdog.idle_s)
             s.Watchdog.beats
             (Option.value s.Watchdog.image ~default:(-1))
             (Option.value s.Watchdog.iteration ~default:(-1))
             (Option.value s.Watchdog.queries ~default:(-1)))
  in
  Printf.sprintf
    "{\n  \"run_id\": \"%s\",\n  \"reason\": \"%s\",\n  \"ts_us\": %s,\n\
    \  \"journal\": %s,\n  \"checkpoint\": %s,\n  \"active_loops\": [%s]\n}\n"
    (esc (Journal.run_id ()))
    (esc reason)
    (Core.Metrics.json_float (Core.Clock.now_us ()))
    (opt (Journal.current_path ()))
    (opt (checkpoint ()))
    (String.concat ", " stalled)

let gc_json () =
  let g = Gc.quick_stat () in
  let jf = Core.Metrics.json_float in
  let stats =
    Profiler.summary ()
    |> List.map (fun (s : Profiler.gc_stat) ->
           Printf.sprintf
             "{\"domain\": %d, \"gc\": \"%s\", \"pauses\": %d, \
              \"total_s\": %s, \"p50_s\": %s, \"p99_s\": %s}"
             s.Profiler.domain s.Profiler.kind s.Profiler.pauses
             (jf s.Profiler.total_s) (jf s.Profiler.p50_s)
             (jf s.Profiler.p99_s))
  in
  Printf.sprintf
    "{\n\
    \  \"quick_stat\": {\"minor_words\": %s, \"promoted_words\": %s, \
     \"major_words\": %s, \"minor_collections\": %d, \
     \"major_collections\": %d, \"compactions\": %d, \"heap_words\": \
     %d, \"top_heap_words\": %d},\n\
    \  \"profiler_active_seconds\": %s,\n\
    \  \"pauses\": [%s]\n\
     }\n"
    (jf g.Gc.minor_words) (jf g.Gc.promoted_words) (jf g.Gc.major_words)
    g.Gc.minor_collections g.Gc.major_collections g.Gc.compactions
    g.Gc.heap_words g.Gc.top_heap_words
    (jf (Profiler.active_seconds ()))
    (String.concat ", " stats)

(* The last lines of the live trace file: seek near the end, drop the
   first (possibly partial) line.  Read-only against the sink's path;
   the caller has already flushed. *)
let trace_tail_lines = 256

let trace_tail () =
  match Core.Trace.current_path () with
  | None -> ""
  | Some path -> (
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            let window = min len 262144 in
            seek_in ic (len - window);
            let buf = really_input_string ic window in
            let lines = String.split_on_char '\n' buf in
            let lines =
              if window < len then
                match lines with _ :: rest -> rest | [] -> []
              else lines
            in
            let n = List.length lines in
            let lines =
              if n > trace_tail_lines then
                List.filteri (fun i _ -> i >= n - trace_tail_lines) lines
              else lines
            in
            String.concat "\n" lines ^ "\n")
      with _ -> "")

(* Dump the bundle once per process (the first fatal event wins) and
   return its directory.  Never raises: a failing dump must not mask
   the original fatality. *)
let dump ?(dir = "_artifacts") ~reason () =
  if not (Atomic.compare_and_set dumped false true) then None
  else
    try
      Core.Trace.flush ();
      Journal.flush ();
      let bundle =
        Filename.concat dir ("postmortem-" ^ Journal.run_id ())
      in
      mkdir_p bundle;
      write_file (Filename.concat bundle "info.json") (info_json ~reason);
      write_file
        (Filename.concat bundle "ring.jsonl")
        (String.concat "\n" (Core.Ring.dump ()) ^ "\n");
      write_file
        (Filename.concat bundle "registry.json")
        (Core.Metrics.dump_json ());
      write_file
        (Filename.concat bundle "journal_tail.jsonl")
        (String.concat "\n" (Journal.tail ()) ^ "\n");
      write_file (Filename.concat bundle "gc.json") (gc_json ());
      write_file (Filename.concat bundle "trace_tail.jsonl") (trace_tail ());
      Some bundle
    with _ -> None

(* Tests only: allow a fresh dump in the same process. *)
let reset () = Atomic.set dumped false

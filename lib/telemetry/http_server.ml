(* Minimal metrics endpoint: stdlib+unix+threads only, one dedicated
   accept thread (never a pool worker), serving

     GET /metrics        Prometheus text exposition of the registry
     GET /healthz        200 {"status":"ok"} / 503 {"status":"stalled"}
     GET /snapshot.json  the registry as JSON (same shape as --metrics)

   The accept loop runs on a systhread of the launching domain, NOT a
   dedicated domain: OCaml 5 minor collections are stop-the-world
   across domains, so even a domain parked in select drags every minor
   GC through a cross-domain wakeup — measured at +100-200% on the
   attack workload on a 1-core host — while a same-domain thread
   blocked in select has released the runtime lock and joins no
   barrier (measured at noise level).

   Connections are handled serially in the accept thread — scrapes are
   rare (seconds apart) and responses are small, so a handler pool
   would only add surface.  A broken client connection kills that one
   response, never the loop.  Binds 127.0.0.1 only: this is an
   operator's local scrape target, not a public listener. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  stall_after_s : float;
  stop_requested : bool Atomic.t;
  mutable thread : Thread.t option;
}

let http_date () =
  (* Not load-bearing; some scrapers log it. *)
  let open Unix in
  let t = gmtime (time ()) in
  let day = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |].(t.tm_wday) in
  let mon =
    [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |].(t.tm_mon)
  in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day t.tm_mday mon
    (t.tm_year + 1900) t.tm_hour t.tm_min t.tm_sec

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let respond fd ~status ~content_type body =
  let reason =
    match status with
    | 200 -> "OK"
    | 404 -> "Not Found"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nDate: %s\r\nContent-Type: %s\r\nContent-Length: \
        %d\r\nConnection: close\r\n\r\n%s"
       status reason (http_date ()) content_type (String.length body) body)

let healthz_body stall_after_s =
  let stalled = Watchdog.stalled ~stall_after_s () in
  let entry (s : Watchdog.status) =
    let opt name = function
      | Some v -> Printf.sprintf ", \"%s\": %d" name v
      | None -> ""
    in
    Printf.sprintf "{\"loop\": \"%s\", \"idle_s\": %s, \"beats\": %d%s%s%s}"
      (Core.Metrics.json_escape s.Watchdog.name)
      (Core.Metrics.json_float s.Watchdog.idle_s)
      s.Watchdog.beats
      (opt "image" s.Watchdog.image)
      (opt "iteration" s.Watchdog.iteration)
      (opt "queries" s.Watchdog.queries)
  in
  let status = if stalled = [] then "ok" else "stalled" in
  let body =
    Printf.sprintf "{\"status\": \"%s\", \"stall_after_s\": %s, \"stalled\": [%s]}\n"
      status
      (Core.Metrics.json_float stall_after_s)
      (String.concat ", " (List.map entry stalled))
  in
  ((if stalled = [] then 200 else 503), body)

(* Read the request head (up to the blank line), size-capped; we only
   need the request line. *)
let read_request_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 16384 then None
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then None
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* Head complete once the blank line arrives (or the client
           half-closed after the request line). *)
        let have_head =
          let rec find i =
            i + 3 < String.length s
            && (String.sub s i 4 = "\r\n\r\n" || find (i + 1))
          in
          String.length s >= 4 && find 0
        in
        if have_head then Some s else go ()
      end
  in
  match go () with
  | None -> None
  | Some head -> (
      match String.index_opt head '\r' with
      | None -> None
      | Some eol -> Some (String.sub head 0 eol))

let handle t fd =
  match read_request_line fd with
  | None -> ()
  | Some line -> (
      let path =
        match String.split_on_char ' ' line with
        | _meth :: path :: _ -> path
        | _ -> "/"
      in
      match path with
      | "/metrics" ->
          respond fd ~status:200
            ~content_type:"text/plain; version=0.0.4; charset=utf-8"
            (Exporter.prometheus ())
      | "/healthz" ->
          let status, body = healthz_body t.stall_after_s in
          respond fd ~status ~content_type:"application/json" body
      | "/snapshot.json" ->
          respond fd ~status:200 ~content_type:"application/json"
            (Core.Metrics.dump_json ())
      | _ -> respond fd ~status:404 ~content_type:"text/plain" "not found\n")

(* A thread blocked in [accept] is not reliably woken by another thread
   closing the listen socket, so the loop selects with a short timeout
   and re-checks the stop flag between waits; the socket is non-blocking
   in case a ready connection resets before we accept it. *)
let accept_loop t =
  while not (Atomic.get t.stop_requested) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.sock with
        | fd, _ ->
            (try handle t fd with _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error _ ->
            if not (Atomic.get t.stop_requested) then Unix.sleepf 0.01)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        if not (Atomic.get t.stop_requested) then Unix.sleepf 0.01
  done

let start ?(stall_after_s = 30.) ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 16;
  Unix.set_nonblock sock;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      port;
      stall_after_s;
      stop_requested = Atomic.make false;
      thread = None;
    }
  in
  t.thread <- Some (Thread.create accept_loop t);
  t

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stop_requested true) then begin
    (* The accept loop re-checks the flag at least every 0.2s. *)
    (match t.thread with Some th -> Thread.join th | None -> ());
    t.thread <- None;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* Tiny blocking HTTP/1.1 GET against localhost — the one client used
   by tests, the observe bench and diff_runner, so there is exactly one
   copy.  Returns (status, body). *)
let fetch ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all sock
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n" path);
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> ( try int_of_string code with _ -> 0)
        | _ -> 0
      in
      let body =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        let start = find 0 in
        String.sub raw start (String.length raw - start)
      in
      (status, body))

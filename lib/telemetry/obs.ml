(* Shared observability bracket and flag plumbing for bin/main.ml and
   bench/main.ml: one place that knows how to open the trace sink,
   start the metrics HTTP server and the background sampler, and tear
   everything down (flushing --metrics) even when the wrapped command
   raises.  Keeping it here means the CLI and the bench cannot drift
   apart in flag spelling or shutdown order. *)

type config = {
  trace : string option;  (* --trace FILE: Chrome trace-event JSONL *)
  metrics : string option;  (* --metrics FILE: registry JSON at exit *)
  serve_port : int option;  (* --serve-metrics PORT: /metrics endpoint *)
  snapshot : string option;  (* --snapshot FILE: JSONL registry ticks *)
  snapshot_interval_s : float;  (* --snapshot-interval SEC *)
  stall_timeout_s : float option;  (* --stall-timeout SEC: abort stalls *)
  journal : string option;  (* --journal FILE: query-provenance JSONL *)
  run_id : string option;  (* --run-id ID: journal/post-mortem identity *)
  profile : bool;  (* --profile: attach the runtime-events profiler *)
  backend_label : string;  (* oppsla_build_info's backend label *)
}

let default =
  {
    trace = None;
    metrics = None;
    serve_port = None;
    snapshot = None;
    snapshot_interval_s = 1.0;
    stall_timeout_s = None;
    journal = None;
    run_id = None;
    profile = false;
    backend_label = "boxed";
  }

let active c =
  c.trace <> None || c.metrics <> None || c.serve_port <> None
  || c.snapshot <> None || c.stall_timeout_s <> None || c.journal <> None
  || c.profile

(* Stall threshold for /healthz and the sampler: --stall-timeout when
   given (which also makes a stall fatal), a permissive default
   otherwise. *)
let stall_after_s c = Option.value c.stall_timeout_s ~default:30.

(* The sampler only runs when something consumes its output: a scrape
   endpoint, a snapshot file, or a fatal stall timeout. *)
let wants_sampler c =
  c.serve_port <> None || c.snapshot <> None || c.stall_timeout_s <> None

(* Argv-scanning helpers for the bench's hand-rolled flag parsing
   (cmdliner handles both spellings natively on the bin side).  Both
   "--flag VALUE" and "--flag=VALUE" are accepted. *)
let split_eq flag a =
  let prefix = flag ^ "=" in
  let n = String.length prefix in
  if String.length a > n && String.sub a 0 n = prefix then
    Some (String.sub a n (String.length a - n))
  else None

let find_flag args ~flag =
  let rec go = function
    | a :: v :: _ when a = flag -> Some v
    | a :: rest -> ( match split_eq flag a with Some v -> Some v | None -> go rest)
    | [] -> None
  in
  go args

(* Drop [flags] (value-taking, either spelling) from an argv list. *)
let strip_flags args ~flags =
  let rec go = function
    | a :: _ :: rest when List.mem a flags -> go rest
    | a :: rest when List.exists (fun f -> split_eq f a <> None) flags -> go rest
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go args

type t = {
  server : Http_server.t option;
  sampler : Sampler.t option;
  profiler : Profiler.t option;
  config : config;
}

(* Default run id: wall-clock seconds since the epoch plus the pid —
   unique enough across restarts for journal headers and post-mortem
   directory names, with no state file required. *)
let generate_run_id () =
  Printf.sprintf "%.0f-%d" (Unix.gettimeofday ()) (Unix.getpid ())

(* On any uncaught exception in an observed run, drop the post-mortem
   bundle before the process dies, then report the exception exactly as
   the runtime default would have. *)
let install_crash_handler () =
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      (try
         Core.Trace.flush ();
         Journal.flush ();
         match
           Postmortem.dump ~reason:("uncaught: " ^ Printexc.to_string exn) ()
         with
         | Some dir -> Printf.eprintf "[obs] post-mortem bundle: %s\n%!" dir
         | None -> ()
       with _ -> ());
      Printf.eprintf "Fatal error: exception %s\n%s%!" (Printexc.to_string exn)
        (Printexc.raw_backtrace_to_string bt))

(* Flight-recorder depth: enough to hold the spans and heartbeats of
   the last few attack iterations without measurable footprint. *)
let ring_size = 512

let start ?(log = ignore) config =
  Journal.set_run_id
    (match config.run_id with Some id -> id | None -> generate_run_id ());
  Core.Ring.configure ring_size;
  install_crash_handler ();
  Exporter.set_build_info ~backend:config.backend_label ();
  (match config.journal with Some f -> Journal.to_file f | None -> ());
  (match config.trace with Some f -> Core.Trace.to_file f | None -> ());
  let server =
    Option.map
      (fun port ->
        let s =
          Http_server.start ~stall_after_s:(stall_after_s config) ~port ()
        in
        log
          (Printf.sprintf "serving metrics on http://127.0.0.1:%d/metrics"
             (Http_server.port s));
        s)
      config.serve_port
  in
  let sampler =
    if wants_sampler config then
      Some
        (Sampler.start
           {
             Sampler.interval_s = config.snapshot_interval_s;
             snapshot_path = config.snapshot;
             stall_after_s = stall_after_s config;
             abort_on_stall = config.stall_timeout_s <> None;
           })
    else None
  in
  let profiler = if config.profile then Some (Profiler.start ()) else None in
  { server; sampler; profiler; config }

let stop t =
  (* Sampler first (it reads the registry and watchdog), then the
     server, then the profiler (it emits into the trace stream, which
     must still be open for its final drain), then the file sinks. *)
  (match t.sampler with Some s -> Sampler.stop s | None -> ());
  (match t.server with Some s -> Http_server.stop s | None -> ());
  (match t.profiler with Some p -> Profiler.stop p | None -> ());
  Core.Trace.close ();
  Journal.close ();
  Core.Ring.stop ();
  match t.config.metrics with
  | Some f -> Core.Metrics.write_json f
  | None -> ()

let with_observability ?log config f =
  if not (active config) then f ()
  else begin
    let t = start ?log config in
    Fun.protect ~finally:(fun () -> stop t) f
  end

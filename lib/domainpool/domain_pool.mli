(** Reusable parallel execution over OCaml 5 domains.

    Two entry points share one scheduler:

    - {!Pool}: a {e persistent} pool of worker domains with explicit
      [create] / [shutdown].  Spawning a domain costs far more than an
      oracle query, so hot paths (Metropolis-Hastings evaluation, the
      experiment runners) create one pool per run and push every batch
      through it.
    - {!map}: the one-shot convenience wrapper (pool per call) kept for
      cold paths and tests.

    Scheduling is chunked self-scheduling over an atomic cursor: every
    participant — the caller domain included — repeatedly steals the next
    chunk of indices until the input is exhausted, so uneven per-item cost
    balances automatically.  Results always land at their input index;
    parallelism never reorders outputs.

    Exception contract (both entry points): if [f] raises, the {e first}
    exception raised (in claim order) is re-raised in the caller with its
    original backtrace, after every in-flight item has drained.  Items
    after the failure are abandoned, never silently reported as results:
    a map either returns a fully materialized array or raises. *)

val domain_count : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

module Pool : sig
  type t
  (** A persistent pool.  A pool is owned by the domain that created it:
      only that domain may call {!map} / {!shutdown}, and {!map} must not
      be re-entered from inside a mapped function (workers block waiting
      for the outer map's cursor). *)

  type stats = {
    domains : int;  (** participants per map call, caller included *)
    jobs : int;  (** map calls served *)
    tasks : int;  (** items processed across all jobs *)
    steals : int;  (** items processed by worker domains (not the caller) *)
    busy_seconds : float;  (** wall time spent inside map calls *)
  }

  val create : ?domains:int -> unit -> t
  (** [create ~domains ()] spawns [domains - 1] worker domains (the
      caller is the remaining participant).  [domains] defaults to
      {!domain_count}; values [<= 1] yield a poolless pool whose [map]
      runs inline in the caller. *)

  val size : t -> int
  (** Participants per map call ([domains] at creation, caller
      included). *)

  val map : t -> ('a -> 'b) -> 'a array -> 'b array
  (** Order-preserving parallel map over the pool's domains.  Raises
      [Invalid_argument] if the pool was shut down (rejecting new work
      beats hanging on dead workers), or if a parallel job is already in
      flight (re-entering [map] from a mapped function would deadlock;
      that misuse now fails loudly instead). *)

  val try_map : t -> ('a -> 'b) -> 'a array -> 'b array option
  (** Opportunistic {!map}: claims the pool atomically and runs the job
      if — and only if — no parallel job is currently in flight.
      Returns [None] (and does nothing) when the pool is busy, shut
      down, poolless ([size t = 1]) or the input has fewer than 2
      elements; callers are expected to fall back to an inline loop.
      This is the entry point for nested data parallelism (e.g. the f32
      GEMM's row panels): inner work items ride an idle pool but never
      block on one that is already mapping above them. *)

  val stats : t -> stats
  (** Cumulative instrumentation since [create]. *)

  val shutdown : t -> unit
  (** Join the worker domains.  Idempotent.  After shutdown, {!map}
      rejects new work with [Invalid_argument]. *)

  val with_pool : ?domains:int -> (t -> 'a) -> 'a
  (** [with_pool f] is [f (create ())] with a guaranteed shutdown,
      whether [f] returns or raises. *)
end

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** One-shot parallel map: a transient {!Pool} per call.  With
    [domains <= 1] (or on arrays of fewer than 2 elements) runs
    sequentially in the caller.  The mapped function must be thread-safe:
    in practice that means it must build its own query-metered oracle
    (e.g. [Oracle.clone]) rather than share one mutable counter. *)

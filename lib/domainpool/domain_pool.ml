let domain_count () = min 8 (Domain.recommended_domain_count ())

(* Registry mirrors of the per-pool counters: the consolidated telemetry
   view ([--metrics FILE], Report's Telemetry section) sums scheduling
   activity across every pool the process created. *)
let m_jobs = Telemetry.Metrics.counter "pool.jobs"
let m_tasks = Telemetry.Metrics.counter "pool.tasks"
let m_steals = Telemetry.Metrics.counter "pool.steals"
let g_domains = Telemetry.Metrics.gauge "pool.domains"

let h_job_seconds =
  Telemetry.Metrics.histogram ~buckets:Telemetry.Metrics.time_buckets
    "pool.job_seconds"

let h_job_tasks = Telemetry.Metrics.histogram "pool.job_tasks"

(* Tasks submitted by the job currently running (0 when the pool is
   idle) — the queue-depth signal the background sampler snapshots. *)
let g_job_inflight = Telemetry.Metrics.gauge "pool.job_inflight"

module Pool = struct
  type stats = {
    domains : int;
    jobs : int;
    tasks : int;
    steals : int;
    busy_seconds : float;
  }

  (* A job is published type-erased: [participate] owns the job's atomic
     cursor, so any participant (worker or caller) can run it to
     completion.  [gen] distinguishes jobs so a worker that just finished
     one does not re-enter it while waiting for the next. *)
  type job = { gen : int; participate : unit -> unit }

  type t = {
    total : int;  (* participants per map call, caller included *)
    mutable workers : unit Domain.t array;
    m : Mutex.t;
    work : Condition.t;
    mutable current : job option;
    mutable next_gen : int;
    mutable stop : bool;
    tasks : int Atomic.t;
    steals : int Atomic.t;
    mutable jobs_served : int;
    mutable busy : float;
    in_flight : bool Atomic.t;
        (* true while a parallel job is published; the opportunistic
           [try_map] entry point bails out (instead of deadlocking or
           clobbering [current]) when the pool is already busy. *)
  }

  let rec worker_loop t last_gen =
    Mutex.lock t.m;
    let rec await () =
      if t.stop then None
      else
        match t.current with
        | Some j when j.gen <> last_gen -> Some j
        | _ ->
            Condition.wait t.work t.m;
            await ()
    in
    let j = await () in
    Mutex.unlock t.m;
    match j with
    | None -> ()
    | Some j ->
        j.participate ();
        worker_loop t j.gen

  let create ?domains () =
    let total =
      match domains with Some d -> max 1 d | None -> domain_count ()
    in
    let t =
      {
        total;
        workers = [||];
        m = Mutex.create ();
        work = Condition.create ();
        current = None;
        next_gen = 0;
        stop = false;
        tasks = Atomic.make 0;
        steals = Atomic.make 0;
        jobs_served = 0;
        busy = 0.;
        in_flight = Atomic.make false;
      }
    in
    t.workers <-
      Array.init (total - 1) (fun _ ->
          Domain.spawn (fun () -> worker_loop t (-1)));
    Telemetry.Gauge.set g_domains (float_of_int total);
    t

  let size t = t.total

  let shutdown t =
    Mutex.lock t.m;
    if t.stop then Mutex.unlock t.m
    else begin
      t.stop <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      Array.iter Domain.join t.workers;
      t.workers <- [||]
    end

  let with_pool ?domains f =
    let t = create ?domains () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let stats t =
    Mutex.lock t.m;
    let s =
      {
        domains = t.total;
        jobs = t.jobs_served;
        tasks = Atomic.get t.tasks;
        steals = Atomic.get t.steals;
        busy_seconds = t.busy;
      }
    in
    Mutex.unlock t.m;
    s

  let finish_job t t0 n =
    let dt = Unix.gettimeofday () -. t0 in
    Mutex.lock t.m;
    t.current <- None;
    t.jobs_served <- t.jobs_served + 1;
    t.busy <- t.busy +. dt;
    Atomic.set t.tasks (Atomic.get t.tasks + n);
    Mutex.unlock t.m;
    Telemetry.Counter.incr m_jobs;
    Telemetry.Counter.add m_tasks n;
    Telemetry.Gauge.set g_job_inflight 0.;
    Telemetry.Histogram.observe h_job_seconds dt;
    Telemetry.Histogram.observe h_job_tasks (float_of_int n)

  (* The parallel job body, shared by [map] (which treats a busy pool as
     a caller bug) and [try_map] (which declines).  The caller has
     already claimed [t.in_flight]. *)
  let run_parallel t f xs n =
    begin
      let t0 = Unix.gettimeofday () in
      Telemetry.Gauge.set g_job_inflight (float_of_int n);
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let failure = Atomic.make None in
      let fin_m = Mutex.create () and fin_c = Condition.create () in
      let caller = Domain.self () in
      (* Chunked self-scheduling: small enough chunks that stragglers
         balance, large enough to amortize the atomic claim. *)
      let chunk = max 1 (n / (t.total * 8)) in
      let participate () =
        let stealing = Domain.self () <> caller in
        let rec loop () =
          let start = Atomic.fetch_and_add next chunk in
          if start < n then begin
            let stop_ = min n (start + chunk) in
            for i = start to stop_ - 1 do
              if Atomic.get failure = None then (
                match f xs.(i) with
                | v ->
                    results.(i) <- Some v;
                    if stealing then begin
                      Atomic.incr t.steals;
                      Telemetry.Counter.incr m_steals
                    end
                | exception e ->
                    let bt = Printexc.get_raw_backtrace () in
                    ignore (Atomic.compare_and_set failure None (Some (e, bt))))
            done;
            (* Count claimed indices even when a failure abandoned them:
               completion means "no item is still running", which is what
               the caller must wait for before re-raising. *)
            let c = stop_ - start + Atomic.fetch_and_add completed (stop_ - start) in
            if c >= n then begin
              Mutex.lock fin_m;
              Condition.broadcast fin_c;
              Mutex.unlock fin_m
            end;
            loop ()
          end
        in
        loop ()
      in
      Mutex.lock t.m;
      let gen = t.next_gen in
      t.next_gen <- gen + 1;
      t.current <- Some { gen; participate };
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      participate ();
      Mutex.lock fin_m;
      while Atomic.get completed < n do
        Condition.wait fin_c fin_m
      done;
      Mutex.unlock fin_m;
      finish_job t t0 n;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.map
            (function
              | Some v -> v
              | None ->
                  (* Unreachable: every index was claimed and either ran
                     (Some) or was abandoned after a failure, in which
                     case we re-raised above. *)
                  assert false)
            results
    end

  let map t f xs =
    if t.stop then invalid_arg "Domain_pool.Pool.map: pool is shut down";
    Telemetry.Trace.span "pool.map" ~cat:"pool"
      ~args:(fun () ->
        [
          ("tasks", Telemetry.Trace.Int (Array.length xs));
          ("domains", Telemetry.Trace.Int t.total);
        ])
    @@ fun () ->
    let n = Array.length xs in
    if n = 0 then [||]
    else if t.total = 1 || n = 1 then begin
      let t0 = Unix.gettimeofday () in
      Telemetry.Gauge.set g_job_inflight (float_of_int n);
      (* Inline fast path: exceptions from [f] propagate directly, and a
         raise on item [i] abandons items after [i] just like the
         parallel path does.  No [in_flight] claim: the inline path is
         trivially re-entrant. *)
      let r = Array.map f xs in
      finish_job t t0 n;
      r
    end
    else if not (Atomic.compare_and_set t.in_flight false true) then
      invalid_arg
        "Domain_pool.Pool.map: pool is already running a job (map is not \
         re-entrant; use try_map for opportunistic work)"
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set t.in_flight false)
        (fun () -> run_parallel t f xs n)

  let try_map t f xs =
    let n = Array.length xs in
    if t.stop || t.total = 1 || n < 2 then None
    else if not (Atomic.compare_and_set t.in_flight false true) then None
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set t.in_flight false)
        (fun () ->
          Telemetry.Trace.span "pool.try_map" ~cat:"pool"
            ~args:(fun () ->
              [
                ("tasks", Telemetry.Trace.Int n);
                ("domains", Telemetry.Trace.Int t.total);
              ])
            (fun () -> Some (run_parallel t f xs n)))
end

let map ?domains f xs =
  let domains =
    match domains with Some d -> d | None -> domain_count ()
  in
  let n = Array.length xs in
  if domains <= 1 || n < 2 then Array.map f xs
  else Pool.with_pool ~domains:(min domains n) (fun p -> Pool.map p f xs)

(* Speculative candidate batching over a metered oracle.

   Attackers are sequential decision processes: candidate [j+1] may
   depend on the answer to candidate [j].  Posing candidates one by one
   keeps accounting trivial but wastes the batched forward pass.  The
   batcher closes the gap speculatively: when the attacker asks for a
   candidate, it also asks the attacker (via [speculate]) which
   candidates it WOULD pose next if nothing interesting happens, resolves
   the whole chunk in one unmetered batched forward pass, and buffers the
   results.  Subsequent queries are served from the buffer as long as the
   requested key matches the buffered head; any deviation (the attacker
   reacted to an answer) discards the buffer and rebuilds it from the
   attacker's true state.

   Accounting is exact by construction, not by rollback: the forward
   passes are speculative and unmetered ({!Oracle.eval_batch}), while the
   query counter is charged at consumption time only, one query per
   served candidate, in the exact order the attacker poses them.  Query
   counts, budget-exhaustion indices, success flags and synthesizer
   traces are therefore bit-identical to the sequential path at every
   batch width — mis-speculation costs wall-clock, never queries. *)

type candidate = { key : Score_cache.key; input : unit -> Tensor.t }

(* One buffered answer: the key it was prepared under, the resolved
   score vector, whether the cache already held it, and its slot
   position inside the speculative chunk (journal provenance). *)
type slot = {
  skey : Score_cache.key;
  score : Tensor.t;
  shit : bool;
  spos : int;
}

type t = {
  oracle : Oracle.t;
  cache : Score_cache.t option;
  width : int;
  mutable buf : slot list; (* head = next expected *)
}

type stats = {
  queries : int;
  batches : int;
  prepared : int;
  buffer_hits : int;
  discarded : int;
}

(* Global counters, aggregated across every batcher (and every domain —
   attacks under the pool run concurrently, hence atomics).  They live
   in the process-wide telemetry registry: [global_stats] is now a view
   over the registry, so `--metrics FILE` and the consolidated report
   section read the same numbers the legacy stats API returns. *)
let g_queries = Telemetry.Metrics.counter "batcher.queries"
let g_batches = Telemetry.Metrics.counter "batcher.chunks"
let g_prepared = Telemetry.Metrics.counter "batcher.prepared"
let g_buffer_hits = Telemetry.Metrics.counter "batcher.buffer_hits"
let g_discarded = Telemetry.Metrics.counter "batcher.discarded"

(* Chunk-width and mis-speculation distributions: how wide the
   speculative forward passes actually run, and how much prepared work
   each deviation throws away. *)
let h_chunk_width =
  Telemetry.Metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
    "batcher.chunk_width"

let h_discarded =
  Telemetry.Metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
    "batcher.discarded_per_misspeculation"

let bump = Telemetry.Counter.add

let global_stats () =
  {
    queries = Telemetry.Counter.get g_queries;
    batches = Telemetry.Counter.get g_batches;
    prepared = Telemetry.Counter.get g_prepared;
    buffer_hits = Telemetry.Counter.get g_buffer_hits;
    discarded = Telemetry.Counter.get g_discarded;
  }

let reset_global_stats () =
  Telemetry.Counter.reset g_queries;
  Telemetry.Counter.reset g_batches;
  Telemetry.Counter.reset g_prepared;
  Telemetry.Counter.reset g_buffer_hits;
  Telemetry.Counter.reset g_discarded;
  Telemetry.Histogram.reset h_chunk_width;
  Telemetry.Histogram.reset h_discarded

let zero_stats =
  { queries = 0; batches = 0; prepared = 0; buffer_hits = 0; discarded = 0 }

let add_stats a b =
  {
    queries = a.queries + b.queries;
    batches = a.batches + b.batches;
    prepared = a.prepared + b.prepared;
    buffer_hits = a.buffer_hits + b.buffer_hits;
    discarded = a.discarded + b.discarded;
  }

let create ?cache ~width oracle =
  if width < 1 then invalid_arg "Batcher.create: width < 1";
  let cache = match cache with Some _ as c -> c | None -> Oracle.cache oracle in
  { oracle; cache; width; buf = [] }

let width t = t.width

let drop_buffer t =
  match t.buf with
  | [] -> ()
  | l ->
      let n = List.length l in
      bump g_discarded n;
      Telemetry.Histogram.observe h_discarded (float_of_int n);
      t.buf <- []

(* Resolve a chunk of candidates without metering: cache hits first, the
   misses in one batched forward pass, results stored under their keys. *)
let prepare t chunk =
  bump g_batches 1;
  bump g_prepared (Array.length chunk);
  Telemetry.Histogram.observe h_chunk_width
    (float_of_int (Array.length chunk));
  let resolved = Array.make (Array.length chunk) None in
  let hits = Array.make (Array.length chunk) false in
  (match t.cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i cand ->
          resolved.(i) <- Score_cache.find_counted c cand.key;
          hits.(i) <- resolved.(i) <> None)
        chunk);
  let missing = ref [] in
  for i = Array.length chunk - 1 downto 0 do
    if resolved.(i) = None then missing := i :: !missing
  done;
  let missing = Array.of_list !missing in
  if Array.length missing > 0 then begin
    let outs =
      Telemetry.Trace.span "batcher.prepare" ~cat:"oracle"
        ~args:(fun () ->
          [
            ("chunk", Telemetry.Trace.Int (Array.length chunk));
            ("forwarded", Telemetry.Trace.Int (Array.length missing));
          ])
        (fun () ->
          Oracle.eval_batch t.oracle
            (Array.map (fun i -> chunk.(i).input ()) missing))
    in
    Array.iteri
      (fun j i ->
        resolved.(i) <- Some outs.(j);
        match t.cache with
        | Some c -> Score_cache.add c chunk.(i).key outs.(j)
        | None -> ())
      missing
  end;
  t.buf <-
    Array.to_list
      (Array.mapi
         (fun i cand ->
           {
             skey = cand.key;
             score = Option.get resolved.(i);
             shit = hits.(i);
             spos = i;
           })
         chunk)

let no_speculation : int -> candidate option = fun _ -> None

let query t ?(speculate = no_speculation) cand =
  (match t.buf with
  | { skey; _ } :: _ when skey = cand.key -> bump g_buffer_hits 1
  | _ ->
      drop_buffer t;
      let chunk = ref [ cand ] and filled = ref 1 and stop = ref false in
      while (not !stop) && !filled < t.width do
        match speculate (!filled - 1) with
        | None -> stop := true
        | Some c ->
            chunk := c :: !chunk;
            incr filled
      done;
      prepare t (Array.of_list (List.rev !chunk)));
  match t.buf with
  | [] -> assert false
  | { skey = _; score; shit; spos } :: rest ->
      (* Metering happens here — at consumption, never at preparation —
         so the counter advances in the attacker's true query order and
         Budget_exhausted fires at the sequential path's exact index.
         The slot's hit flag and chunk position ride along as journal
         provenance. *)
      Oracle.meter
        ~kind:(Score_cache.key_kind cand.key)
        ~ckey:cand.key ~hit:shit ~chunk:spos t.oracle;
      bump g_queries 1;
      t.buf <- rest;
      score

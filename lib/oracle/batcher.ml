(* Speculative candidate batching over a metered oracle.

   Attackers are sequential decision processes: candidate [j+1] may
   depend on the answer to candidate [j].  Posing candidates one by one
   keeps accounting trivial but wastes the batched forward pass.  The
   batcher closes the gap speculatively: when the attacker asks for a
   candidate, it also asks the attacker (via [speculate]) which
   candidates it WOULD pose next if nothing interesting happens, resolves
   the whole chunk in one unmetered batched forward pass, and buffers the
   results.  Subsequent queries are served from the buffer as long as the
   requested key matches the buffered head; any deviation (the attacker
   reacted to an answer) discards the buffer and rebuilds it from the
   attacker's true state.

   Accounting is exact by construction, not by rollback: the forward
   passes are speculative and unmetered ({!Oracle.eval_batch}), while the
   query counter is charged at consumption time only, one query per
   served candidate, in the exact order the attacker poses them.  Query
   counts, budget-exhaustion indices, success flags and synthesizer
   traces are therefore bit-identical to the sequential path at every
   batch width — mis-speculation costs wall-clock, never queries. *)

type candidate = { key : Score_cache.key; input : unit -> Tensor.t }

type t = {
  oracle : Oracle.t;
  cache : Score_cache.t option;
  width : int;
  mutable buf : (Score_cache.key * Tensor.t) list; (* head = next expected *)
}

type stats = {
  queries : int;
  batches : int;
  prepared : int;
  buffer_hits : int;
  discarded : int;
}

(* Global counters, aggregated across every batcher (and every domain —
   attacks under the pool run concurrently, hence atomics). *)
let g_queries = Atomic.make 0
let g_batches = Atomic.make 0
let g_prepared = Atomic.make 0
let g_buffer_hits = Atomic.make 0
let g_discarded = Atomic.make 0
let bump c n = ignore (Atomic.fetch_and_add c n)

let global_stats () =
  {
    queries = Atomic.get g_queries;
    batches = Atomic.get g_batches;
    prepared = Atomic.get g_prepared;
    buffer_hits = Atomic.get g_buffer_hits;
    discarded = Atomic.get g_discarded;
  }

let reset_global_stats () =
  Atomic.set g_queries 0;
  Atomic.set g_batches 0;
  Atomic.set g_prepared 0;
  Atomic.set g_buffer_hits 0;
  Atomic.set g_discarded 0

let zero_stats =
  { queries = 0; batches = 0; prepared = 0; buffer_hits = 0; discarded = 0 }

let add_stats a b =
  {
    queries = a.queries + b.queries;
    batches = a.batches + b.batches;
    prepared = a.prepared + b.prepared;
    buffer_hits = a.buffer_hits + b.buffer_hits;
    discarded = a.discarded + b.discarded;
  }

let create ?cache ~width oracle =
  if width < 1 then invalid_arg "Batcher.create: width < 1";
  let cache = match cache with Some _ as c -> c | None -> Oracle.cache oracle in
  { oracle; cache; width; buf = [] }

let width t = t.width

let drop_buffer t =
  match t.buf with
  | [] -> ()
  | l ->
      bump g_discarded (List.length l);
      t.buf <- []

(* Resolve a chunk of candidates without metering: cache hits first, the
   misses in one batched forward pass, results stored under their keys. *)
let prepare t chunk =
  bump g_batches 1;
  bump g_prepared (Array.length chunk);
  let resolved = Array.make (Array.length chunk) None in
  (match t.cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i cand -> resolved.(i) <- Score_cache.find_counted c cand.key)
        chunk);
  let missing = ref [] in
  for i = Array.length chunk - 1 downto 0 do
    if resolved.(i) = None then missing := i :: !missing
  done;
  let missing = Array.of_list !missing in
  if Array.length missing > 0 then begin
    let outs =
      Oracle.eval_batch t.oracle
        (Array.map (fun i -> chunk.(i).input ()) missing)
    in
    Array.iteri
      (fun j i ->
        resolved.(i) <- Some outs.(j);
        match t.cache with
        | Some c -> Score_cache.add c chunk.(i).key outs.(j)
        | None -> ())
      missing
  end;
  t.buf <-
    Array.to_list
      (Array.mapi (fun i cand -> (cand.key, Option.get resolved.(i))) chunk)

let no_speculation : int -> candidate option = fun _ -> None

let query t ?(speculate = no_speculation) cand =
  (match t.buf with
  | (k, _) :: _ when k = cand.key -> bump g_buffer_hits 1
  | _ ->
      drop_buffer t;
      let chunk = ref [ cand ] and filled = ref 1 and stop = ref false in
      while (not !stop) && !filled < t.width do
        match speculate (!filled - 1) with
        | None -> stop := true
        | Some c ->
            chunk := c :: !chunk;
            incr filled
      done;
      prepare t (Array.of_list (List.rev !chunk)));
  match t.buf with
  | [] -> assert false
  | (_, s) :: rest ->
      (* Metering happens here — at consumption, never at preparation —
         so the counter advances in the attacker's true query order and
         Budget_exhausted fires at the sequential path's exact index. *)
      Oracle.meter t.oracle;
      bump g_queries 1;
      t.buf <- rest;
      s

type key =
  | Clean
  | Corner of { row : int; col : int; corner : int }
  | Custom of string

let key_kind = function
  | Clean -> "clean"
  | Corner _ -> "corner"
  | Custom _ -> "custom"

(* Canonical string form, used as the journal's provenance key.  Custom
   keys pass through verbatim — the space layers already build them in
   a canonical "rgb:..."/"pairs:..."/"patch:..." format. *)
(* String concatenation, not Printf: this renders once per charged
   query when the provenance journal is open. *)
let key_to_string = function
  | Clean -> "clean"
  | Corner { row; col; corner } ->
      "corner:" ^ string_of_int row ^ "," ^ string_of_int col ^ ","
      ^ string_of_int corner
  | Custom s -> s

(* Process-wide mirrors of the per-instance counters below: each cache
   instance is owned by one domain (per-image ownership), but the
   consolidated telemetry view sums across all instances and domains,
   hence registry counters. *)
let m_hits = Telemetry.Metrics.counter "cache.hits"
let m_misses = Telemetry.Metrics.counter "cache.misses"
let m_evictions = Telemetry.Metrics.counter "cache.evictions"

type t = {
  table : (key, Tensor.t) Hashtbl.t;
  order : key Queue.t;  (* insertion order; head = eviction candidate *)
  capacity : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable payload : int;  (* floats resident across all entries *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Score_cache.create: capacity < 1"
  | _ -> ());
  {
    table = Hashtbl.create 64;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
    payload = 0;
  }

let evict_overflow t =
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.table > cap do
        match Queue.take_opt t.order with
        | None -> assert false (* every resident entry is queued *)
        | Some oldest -> (
            match Hashtbl.find_opt t.table oldest with
            | None -> () (* already displaced by a re-insert *)
            | Some v ->
                Hashtbl.remove t.table oldest;
                t.payload <- t.payload - Tensor.numel v;
                t.evictions <- t.evictions + 1;
                Telemetry.Counter.incr m_evictions)
      done

let find_or_add t key ~compute =
  match Hashtbl.find_opt t.table key with
  | Some s ->
      t.hits <- t.hits + 1;
      Telemetry.Counter.incr m_hits;
      s
  | None ->
      t.misses <- t.misses + 1;
      Telemetry.Counter.incr m_misses;
      let s = compute () in
      Hashtbl.replace t.table key s;
      Queue.add key t.order;
      t.payload <- t.payload + Tensor.numel s;
      evict_overflow t;
      s

let find t key = Hashtbl.find_opt t.table key

let find_counted t key =
  match Hashtbl.find_opt t.table key with
  | Some s ->
      t.hits <- t.hits + 1;
      Telemetry.Counter.incr m_hits;
      Some s
  | None -> None

let add t key s =
  if not (Hashtbl.mem t.table key) then begin
    t.misses <- t.misses + 1;
    Telemetry.Counter.incr m_misses;
    Hashtbl.replace t.table key s;
    Queue.add key t.order;
    t.payload <- t.payload + Tensor.numel s;
    evict_overflow t
  end

let mem t key = Hashtbl.mem t.table key
let length t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.payload <- 0

(* Payload floats are 8 bytes each; ~64 bytes/entry covers the boxed
   tensor, hashtable bucket and order-queue cell.  An estimate is enough:
   the number is observability, not an allocator contract. *)
let entry_overhead = 64

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
    bytes = (t.payload * 8) + (Hashtbl.length t.table * entry_overhead);
  }

let zero_stats = { hits = 0; misses = 0; evictions = 0; entries = 0; bytes = 0 }

let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    entries = a.entries + b.entries;
    bytes = a.bytes + b.bytes;
  }

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then None
  else Some (float_of_int s.hits /. float_of_int looked)

type store = t array

let store ?capacity n =
  if n < 0 then invalid_arg "Score_cache.store: negative size";
  Array.init n (fun _ -> create ?capacity ())

let image_cache s i =
  if i < 0 || i >= Array.length s then
    invalid_arg
      (Printf.sprintf "Score_cache.image_cache: index %d outside [0, %d)" i
         (Array.length s));
  s.(i)

let store_size = Array.length
let store_stats s = Array.fold_left (fun acc c -> add_stats acc (stats c)) zero_stats s

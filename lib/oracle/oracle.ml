type mode = Score | Decision

type t = {
  fn : Tensor.t -> Tensor.t;
  fn_batch : (Tensor.t array -> Tensor.t array) option;
  oracle_name : string;
  classes : int;
  backend_kind : string;  (* "boxed" / "f32" / "fn" — journal provenance *)
  mutable count : int;
  mutable limit : int option;
  mutable memo : Score_cache.t option;
  mutable qmode : mode;
  (* Cached handle on the dimensional series
     [oracle.queries.by{backend=...,mode=...}]: re-resolved on
     [set_mode] so the hot metering path stays one atomic incr. *)
  mutable m_by : Telemetry.Counter.t;
}

exception Budget_exhausted of int

(* Process-wide query metering: the total plus a per-key-kind split
   (clean/corner/custom for keyed queries through the cache/batcher
   layers, unkeyed for direct [scores] calls).  The split does not
   change accounting — it is a registry mirror of the same counter
   increments. *)
let m_q_total = Telemetry.Metrics.counter "oracle.queries.total"
let m_q_clean = Telemetry.Metrics.counter "oracle.queries.clean"
let m_q_corner = Telemetry.Metrics.counter "oracle.queries.corner"
let m_q_custom = Telemetry.Metrics.counter "oracle.queries.custom"
let m_q_unkeyed = Telemetry.Metrics.counter "oracle.queries.unkeyed"
let m_q_decision = Telemetry.Metrics.counter "oracle.queries.decision"
let m_batch_forwards = Telemetry.Metrics.counter "oracle.batch_forwards"

let kind_counter = function
  | Some "clean" -> m_q_clean
  | Some "corner" -> m_q_corner
  | Some "custom" -> m_q_custom
  | Some _ | None -> m_q_unkeyed

let mode_label = function Score -> "score" | Decision -> "decision"

let by_counter ~backend qmode =
  Telemetry.Metrics.counter
    ~labels:[ ("backend", backend); ("mode", mode_label qmode) ]
    "oracle.queries.by"

let of_fn ?budget ?batch_fn ?(name = "fn") ~num_classes fn =
  if num_classes <= 0 then invalid_arg "Oracle.of_fn: num_classes <= 0";
  {
    fn;
    fn_batch = batch_fn;
    oracle_name = name;
    classes = num_classes;
    backend_kind = "fn";
    count = 0;
    limit = budget;
    memo = None;
    qmode = Score;
    m_by = by_counter ~backend:"fn" Score;
  }

let of_network ?budget ?(backend = Nn.Backend.Boxed) ?pool net =
  (* Backend selection: [Boxed] keeps the layer engine's own batched
     path (the reference — nothing new between the oracle and the
     network); [F32] compiles the network once into a float32 Bigarray
     plan and scores every batch through it.  Query accounting is
     backend-independent by construction — the meter sits above this
     function. *)
  let scores_nchw =
    match backend with
    | Nn.Backend.Boxed -> fun batch -> Nn.Network.scores_batch net batch
    | Nn.Backend.F32 ->
        let plan = Nn.Backend.F32_engine.compile net in
        fun batch -> Nn.Backend.F32_engine.scores_batch ?pool plan batch
  in
  let fn_batch xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let s = Tensor.shape xs.(0) in
      if Array.length s <> 3 then
        invalid_arg "Oracle.of_network: batch entries must be CHW images";
      let image = s.(0) * s.(1) * s.(2) in
      let batch = Tensor.zeros [| n; s.(0); s.(1); s.(2) |] in
      Array.iteri
        (fun i x ->
          if Tensor.shape x <> s then
            invalid_arg "Oracle.of_network: mixed shapes in one batch";
          Array.blit x.Tensor.data 0 batch.Tensor.data (i * image) image)
        xs;
      let out = scores_nchw batch in
      let classes = Tensor.dim out 1 in
      Array.init n (fun i ->
          Tensor.init [| classes |] (fun j ->
              Tensor.get_flat out ((i * classes) + j)))
    end
  in
  let fn =
    match backend with
    | Nn.Backend.Boxed -> Nn.Network.scores net
    | Nn.Backend.F32 -> fun x -> (fn_batch [| x |]).(0)
  in
  {
    fn;
    fn_batch = Some fn_batch;
    oracle_name = net.Nn.Network.name;
    classes = net.Nn.Network.num_classes;
    backend_kind = Nn.Backend.kind_name backend;
    count = 0;
    limit = budget;
    memo = None;
    qmode = Score;
    m_by = by_counter ~backend:(Nn.Backend.kind_name backend) Score;
  }

(* The single funnel every charged query passes through.  [kind] is the
   per-key-kind counter split; [ckey]/[hit]/[chunk] are journal
   provenance (the cache key, whether the score came from the memo
   layer, the batcher slot position) — consulted only when the journal
   sink is open, so the disabled path costs one extra atomic load. *)
let meter ?kind ?ckey ?hit ?chunk t =
  (match t.limit with
  | Some b when t.count >= b -> raise (Budget_exhausted b)
  | _ -> ());
  t.count <- t.count + 1;
  Telemetry.Counter.incr m_q_total;
  Telemetry.Counter.incr (kind_counter kind);
  Telemetry.Counter.incr t.m_by;
  if t.qmode = Decision then Telemetry.Counter.incr m_q_decision;
  if Telemetry.Journal.enabled () then
    Telemetry.Journal.record
      ~key:
        (match ckey with
        | Some k -> Score_cache.key_to_string k
        | None -> "unkeyed")
      ~kind:(Option.value kind ~default:"unkeyed")
      ~mode:(mode_label t.qmode)
      ~hit:(Option.value hit ~default:false)
      ?chunk ~backend:t.backend_kind ()

let validated t s =
  if Tensor.numel s <> t.classes then
    invalid_arg
      (Printf.sprintf "Oracle(%s): scoring function returned %d scores, expected %d"
         t.oracle_name (Tensor.numel s) t.classes);
  s

let scores t x =
  meter t;
  validated t (t.fn x)

(* The metering-above-cache invariant lives here: the query is charged
   (and Budget_exhausted raised) before the cache is consulted, so hits
   and misses are indistinguishable to the query accounting.  The
   journal's hit flag comes from an uncounted membership probe, gated
   on the sink being open — it never touches the hit/miss statistics
   the cache reports. *)
let scores_memo t cache ~key ~input =
  let hit = Telemetry.Journal.enabled () && Score_cache.mem cache key in
  meter ~kind:(Score_cache.key_kind key) ~ckey:key ~hit t;
  Score_cache.find_or_add cache key ~compute:(fun () ->
      validated t (t.fn (input ())))

(* Unmetered batched forward pass: the speculative half of the batched
   query path.  Falls back to mapping [fn] when the scoring function has
   no batched form (toy oracles), which keeps the accounting semantics
   testable independently of the GEMM engine. *)
let eval_batch t xs =
  Telemetry.Counter.incr m_batch_forwards;
  Telemetry.Trace.span "oracle.eval_batch" ~cat:"oracle"
    ~args:(fun () -> [ ("n", Telemetry.Trace.Int (Array.length xs)) ])
    (fun () ->
      match t.fn_batch with
      | Some fb -> Array.map (validated t) (fb xs)
      | None -> Array.map (fun x -> validated t (t.fn x)) xs)

let scores_batch t ?cache ~keys ~inputs ~consume () =
  let n = Array.length inputs in
  if Array.length keys <> n then
    invalid_arg "Oracle.scores_batch: keys and inputs must have equal length";
  (* Speculative phase: resolve every slot's score vector without
     touching the query counter.  Cache hits leave the batch before the
     forward pass; misses are evaluated in one batched call and stored. *)
  let resolved = Array.make n None in
  let hits = Array.make n false in
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i key ->
          match key with
          | None -> ()
          | Some k ->
              resolved.(i) <- Score_cache.find_counted c k;
              hits.(i) <- resolved.(i) <> None)
        keys);
  let missing = ref [] in
  for i = n - 1 downto 0 do
    if resolved.(i) = None then missing := i :: !missing
  done;
  let missing = Array.of_list !missing in
  if Array.length missing > 0 then begin
    let outs = eval_batch t (Array.map (fun i -> inputs.(i) ()) missing) in
    Array.iteri
      (fun j i ->
        resolved.(i) <- Some outs.(j);
        match (cache, keys.(i)) with
        | Some c, Some k -> Score_cache.add c k outs.(j)
        | _ -> ())
      missing
  end;
  (* Accounting phase: charge slots strictly in submission order.  A
     budget exhausted at slot [j] raises after slots [0, j) were consumed
     and charged — the same query index as the sequential path; results
     for the remaining slots are discarded (speculation cost wall-clock,
     never queries). *)
  let consumed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !consumed < n do
    let i = !consumed in
    meter
      ?kind:(Option.map Score_cache.key_kind keys.(i))
      ?ckey:keys.(i) ~hit:hits.(i) ~chunk:i t;
    consumed := i + 1;
    continue_ := consume i (Option.get resolved.(i))
  done;
  !consumed

let classify t x = Tensor.argmax (scores t x)
let score_of t x c = Tensor.get_flat (scores t x) c

(* Label-only (top-1) query: meters exactly like [scores] — same counter
   increment, same [Budget_exhausted] at the same query index — but
   reveals only the predicted label.  The threat-model switch for the
   score-based attack stack is [observe] below; [decide] is the direct
   decision-based query for code written against labels from the start. *)
let decide t x = Tensor.argmax (scores t x)
let mode t = t.qmode

let set_mode t m =
  t.qmode <- m;
  t.m_by <- by_counter ~backend:t.backend_kind m

let backend_name t = t.backend_kind

let one_hot ~classes label =
  Tensor.init [| classes |] (fun j -> if j = label then 1.0 else 0.0)

(* The observation point of the threat model.  Caches, the batcher and
   the metering layer all carry full score tensors internally — that
   keeps accounting and cache keys bit-identical across modes — and
   attacks pass every resolved score vector through [observe] before
   acting on it.  In [Score] mode this is the identity; in [Decision]
   mode the vector collapses to the one-hot of its argmax, so the only
   information that survives is the predicted label.  Downstream,
   score-based conditions degrade gracefully: on one-hot vectors
   [Score_diff] evaluates to exactly the label-flip indicator (1.0 when
   the prediction moved off the clean argmax, 0.0 otherwise). *)
let observe t s =
  match t.qmode with
  | Score -> s
  | Decision -> one_hot ~classes:t.classes (Tensor.argmax s)
let queries t = t.count
let reset t = t.count <- 0
let budget t = t.limit
let set_budget t b = t.limit <- b

let remaining t =
  Option.map (fun b -> max 0 (b - t.count)) t.limit

let exhausted t =
  match t.limit with Some b -> t.count >= b | None -> false

let set_cache t c = t.memo <- c
let cache t = t.memo

(* Clones DROP the attached cache (as well as the count): a cache is
   per-image, per-owner mutable state, and the whole point of cloning is
   to fan the oracle out across domains — sharing the table would alias
   one unsynchronized Hashtbl across workers.  The query mode is
   PRESERVED (the [with] copy snapshots it): the mode is part of the
   threat-model identity of the oracle, not per-image state, and a
   worker clone answering score vectors while its parent is label-only
   would silently break the differential guarantees.  The copy is still
   independent — flipping the clone's mode later never touches the
   parent. *)
let clone t = { t with count = 0; memo = None }

let num_classes t = t.classes
let name t = t.oracle_name
let unmetered_classify t x = Tensor.argmax (t.fn x)
let unmetered_scores t x = t.fn x

type t = {
  fn : Tensor.t -> Tensor.t;
  oracle_name : string;
  classes : int;
  mutable count : int;
  mutable limit : int option;
  mutable memo : Score_cache.t option;
}

exception Budget_exhausted of int

let of_fn ?budget ?(name = "fn") ~num_classes fn =
  if num_classes <= 0 then invalid_arg "Oracle.of_fn: num_classes <= 0";
  {
    fn;
    oracle_name = name;
    classes = num_classes;
    count = 0;
    limit = budget;
    memo = None;
  }

let of_network ?budget net =
  {
    fn = Nn.Network.scores net;
    oracle_name = net.Nn.Network.name;
    classes = net.Nn.Network.num_classes;
    count = 0;
    limit = budget;
    memo = None;
  }

let meter t =
  (match t.limit with
  | Some b when t.count >= b -> raise (Budget_exhausted b)
  | _ -> ());
  t.count <- t.count + 1

let validated t s =
  if Tensor.numel s <> t.classes then
    invalid_arg
      (Printf.sprintf "Oracle(%s): scoring function returned %d scores, expected %d"
         t.oracle_name (Tensor.numel s) t.classes);
  s

let scores t x =
  meter t;
  validated t (t.fn x)

(* The metering-above-cache invariant lives here: the query is charged
   (and Budget_exhausted raised) before the cache is consulted, so hits
   and misses are indistinguishable to the query accounting. *)
let scores_memo t cache ~key ~input =
  meter t;
  Score_cache.find_or_add cache key ~compute:(fun () ->
      validated t (t.fn (input ())))

let classify t x = Tensor.argmax (scores t x)
let score_of t x c = Tensor.get_flat (scores t x) c
let queries t = t.count
let reset t = t.count <- 0
let budget t = t.limit
let set_budget t b = t.limit <- b

let remaining t =
  Option.map (fun b -> max 0 (b - t.count)) t.limit

let exhausted t =
  match t.limit with Some b -> t.count >= b | None -> false

let set_cache t c = t.memo <- c
let cache t = t.memo

(* Clones DROP the attached cache (as well as the count): a cache is
   per-image, per-owner mutable state, and the whole point of cloning is
   to fan the oracle out across domains — sharing the table would alias
   one unsynchronized Hashtbl across workers. *)
let clone t = { t with count = 0; memo = None }

let num_classes t = t.classes
let name t = t.oracle_name
let unmetered_classify t x = Tensor.argmax (t.fn x)
let unmetered_scores t x = t.fn x

type t = {
  fn : Tensor.t -> Tensor.t;
  oracle_name : string;
  classes : int;
  mutable count : int;
  mutable limit : int option;
}

exception Budget_exhausted of int

let of_fn ?budget ?(name = "fn") ~num_classes fn =
  if num_classes <= 0 then invalid_arg "Oracle.of_fn: num_classes <= 0";
  { fn; oracle_name = name; classes = num_classes; count = 0; limit = budget }

let of_network ?budget net =
  {
    fn = Nn.Network.scores net;
    oracle_name = net.Nn.Network.name;
    classes = net.Nn.Network.num_classes;
    count = 0;
    limit = budget;
  }

let scores t x =
  (match t.limit with
  | Some b when t.count >= b -> raise (Budget_exhausted b)
  | _ -> ());
  t.count <- t.count + 1;
  let s = t.fn x in
  if Tensor.numel s <> t.classes then
    invalid_arg
      (Printf.sprintf "Oracle(%s): scoring function returned %d scores, expected %d"
         t.oracle_name (Tensor.numel s) t.classes);
  s

let classify t x = Tensor.argmax (scores t x)
let score_of t x c = Tensor.get_flat (scores t x) c
let queries t = t.count
let reset t = t.count <- 0
let budget t = t.limit
let set_budget t b = t.limit <- b

let remaining t =
  Option.map (fun b -> max 0 (b - t.count)) t.limit

let exhausted t =
  match t.limit with Some b -> t.count >= b | None -> false

let clone t = { t with count = 0 }
let num_classes t = t.classes
let name t = t.oracle_name
let unmetered_classify t x = Tensor.argmax (t.fn x)
let unmetered_scores t x = t.fn x

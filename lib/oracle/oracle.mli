(** Black-box, query-metered access to a classifier.

    The paper's setting is black-box with a hard query budget (online
    classification APIs meter queries).  Attack and synthesis code may
    only observe a classifier through this module: every call to
    {!scores} / {!classify} increments the query counter and, when a
    budget is set, raises {!Budget_exhausted} once the budget is spent.

    The oracle returns the full softmax score vector, matching the paper's
    [N(x) in R^c] (score-based black-box access). *)

type t

exception Budget_exhausted of int
(** Carries the budget that was exhausted. *)

val of_network : ?budget:int -> Nn.Network.t -> t

val of_fn :
  ?budget:int -> ?name:string -> num_classes:int ->
  (Tensor.t -> Tensor.t) -> t
(** Wrap an arbitrary scoring function (tests, toy classifiers).  The
    function must return a score vector of length [num_classes]. *)

val scores : t -> Tensor.t -> Tensor.t
(** One metered query.  Raises {!Budget_exhausted} if the budget is
    already spent (the query is not forwarded). *)

val classify : t -> Tensor.t -> int
(** [argmax (scores t x)] — also one metered query. *)

val score_of : t -> Tensor.t -> int -> float
(** [score_of t x c] is [(scores t x).(c)] — one metered query. *)

val queries : t -> int
(** Queries posed since creation or the last {!reset}. *)

val reset : t -> unit

val budget : t -> int option
val set_budget : t -> int option -> unit

val remaining : t -> int option
(** [None] when unlimited. *)

val exhausted : t -> bool

val clone : t -> t
(** A fresh metered handle onto the same scoring function: same name,
    classes and budget, but an independent query counter starting at 0.
    This is the sanctioned way to fan an oracle out across domains — the
    counter is plain mutable state, so domains must never share one
    handle.  Clones meter their budgets independently; parallel
    evaluation of budgeted oracles is therefore per-clone, not global
    (see {!Oppsla.Score.evaluate_parallel}). *)

val num_classes : t -> int
val name : t -> string

val unmetered_classify : t -> Tensor.t -> int
(** Classification that does NOT count as a query.  Reserved for
    experiment bookkeeping (e.g. filtering misclassified test images, as
    the paper does before attacking); never use it inside an attack. *)

val unmetered_scores : t -> Tensor.t -> Tensor.t
(** Unmetered score vector.  Same restrictions as {!unmetered_classify},
    plus one sanctioned use: the sketch reads the clean scores [N(x)] this
    way, because the attacker learned them when it established that the
    image is correctly classified. *)

(** Black-box, query-metered access to a classifier.

    The paper's setting is black-box with a hard query budget (online
    classification APIs meter queries).  Attack and synthesis code may
    only observe a classifier through this module: every call to
    {!scores} / {!classify} increments the query counter and, when a
    budget is set, raises {!Budget_exhausted} once the budget is spent.

    The oracle returns the full softmax score vector, matching the paper's
    [N(x) in R^c] (score-based black-box access).

    {b Caching.}  An oracle may carry an attached {!Score_cache.t}
    ({!set_cache}) memoizing the score vectors of one base image's
    perturbations.  The cache sits strictly {e under} the metering layer:
    {!scores_memo} charges the counter and enforces the budget {e before}
    the lookup, so query accounting is bit-identical with and without a
    cache — caching trades forward passes, never queries. *)

type t

type mode = Score | Decision
(** The query threat model.  [Score] is the paper's setting: every query
    reveals the full score vector [N(x) in R^c].  [Decision] is the
    harder label-only (top-1) setting: a query still costs exactly one
    unit of budget, but only the predicted label is observable.  The
    mode changes what {!observe} reveals, never what a query costs. *)

exception Budget_exhausted of int
(** Carries the budget that was exhausted. *)

val of_network :
  ?budget:int ->
  ?backend:Nn.Backend.kind ->
  ?pool:Domain_pool.Pool.t ->
  Nn.Network.t ->
  t
(** Network-backed oracle.  Batched queries ({!eval_batch},
    {!scores_batch}, {!Batcher}) run through one im2col+GEMM forward
    pass for the whole chunk.  [?backend] (default [Boxed]) selects the
    tensor engine: [Boxed] is {!Nn.Network.scores_batch} itself, [F32]
    compiles the network once into the float32 Bigarray plan
    ({!Nn.Backend.F32_engine}) — identical argmax/success/query
    behaviour within {!Nn.Backend.score_tol} per score.  [?pool] (f32
    only) lets the GEMM dispatch row panels onto an idle domain pool;
    query accounting is independent of both knobs. *)

val of_fn :
  ?budget:int ->
  ?batch_fn:(Tensor.t array -> Tensor.t array) ->
  ?name:string -> num_classes:int ->
  (Tensor.t -> Tensor.t) -> t
(** Wrap an arbitrary scoring function (tests, toy classifiers).  The
    function must return a score vector of length [num_classes].
    Without [batch_fn], batched queries fall back to mapping the
    single-image function — accounting semantics are identical either
    way, only wall-clock differs. *)

val scores : t -> Tensor.t -> Tensor.t
(** One metered query.  Raises {!Budget_exhausted} if the budget is
    already spent (the query is not forwarded). *)

val classify : t -> Tensor.t -> int
(** [argmax (scores t x)] — also one metered query. *)

val decide : t -> Tensor.t -> int
(** Label-only (top-1) query: one metered query — same counter
    increment, same {!Budget_exhausted} at the same query index as
    {!scores} — that reveals only the predicted label.  Use this when
    writing decision-based attack code directly; score-based attack code
    is switched to the label-only threat model wholesale via {!set_mode}
    [Decision] + {!observe} instead. *)

val mode : t -> mode

val set_mode : t -> mode -> unit
(** Switch the query threat model.  Affects only {!observe}; metering,
    caching and batching are mode-blind, so query accounting is
    bit-identical across modes by construction. *)

val observe : t -> Tensor.t -> Tensor.t
(** The observation point of the threat model: attacks pass every
    resolved score vector through [observe] before acting on it.
    Identity in [Score] mode; in [Decision] mode the vector collapses to
    the one-hot of its argmax, so only the predicted label survives.  On
    one-hot vectors the sketch DSL's [Score_diff] condition evaluates to
    exactly the label-flip indicator (1.0 when the prediction moved off
    the clean argmax, 0.0 otherwise), which is how score-based
    conditions degrade gracefully to label-flip predicates.  Caches and
    the batcher store raw score tensors internally in both modes — keys
    and accounting never depend on the mode. *)

val score_of : t -> Tensor.t -> int -> float
(** [score_of t x c] is [(scores t x).(c)] — one metered query. *)

val meter :
  ?kind:string -> ?ckey:Score_cache.key -> ?hit:bool -> ?chunk:int -> t -> unit
(** The metering half of {!scores} on its own: raise {!Budget_exhausted}
    if the budget is spent, otherwise charge one query.  Exposed so
    caching layers can keep metering {e above} the cache; never call it
    without answering the query it charges for.  [kind] (a
    {!Score_cache.key_kind} label) only routes the telemetry per-kind
    counter [oracle.queries.<kind>]; it never affects accounting.

    [ckey], [hit] and [chunk] are query-journal provenance — the cache
    key behind the charge, whether the memo layer already held the
    answer, and the batcher slot position.  They are only consulted
    when the journal sink is open and never affect accounting: a
    journaled run charges the same queries at the same indices as a
    bare one (the [journal] bench asserts this). *)

val scores_memo :
  t ->
  Score_cache.t ->
  key:Score_cache.key ->
  input:(unit -> Tensor.t) ->
  Tensor.t
(** One metered query answered through a cache.  Meters exactly like
    {!scores} — same counter increment, same {!Budget_exhausted} at the
    same query index — then returns the cached score vector for [key],
    calling [input] to construct the query tensor only on a miss.  The
    caller owns the key discipline: [key] must uniquely identify the
    perturbed input within the cache's base image (see
    {!Score_cache.key}).  The returned tensor is shared with the cache;
    treat it as immutable. *)

val eval_batch : t -> Tensor.t array -> Tensor.t array
(** Unmetered batched forward pass — the {e speculative} half of the
    batched query path.  Deliberately not a query: callers
    ({!scores_batch}, {!Batcher}) must meter each slot at consumption
    time, in submission order, so speculation can never perturb query
    accounting.  Never call it from attack code directly. *)

val scores_batch :
  t ->
  ?cache:Score_cache.t ->
  keys:Score_cache.key option array ->
  inputs:(unit -> Tensor.t) array ->
  consume:(int -> Tensor.t -> bool) ->
  unit ->
  int
(** One speculative chunk of queries with sequential accounting.

    First every slot's score vector is resolved without touching the
    query counter: slots whose [key] is resident in [cache] leave the
    batch (a counted hit), the rest are evaluated in one {!eval_batch}
    call and stored under their keys ([None] keys bypass the cache).
    Then slots are walked strictly in submission order: each is charged
    one query — raising {!Budget_exhausted} at exactly the query index
    the sequential path would — and handed to [consume], which returns
    [false] to stop (e.g. on attack success).  Returns the number of
    slots consumed; results past the stopping slot are discarded, so
    only [stop + 1] queries are ever charged. *)

val queries : t -> int
(** Queries posed since creation or the last {!reset}. *)

val reset : t -> unit

val budget : t -> int option
val set_budget : t -> int option -> unit

val remaining : t -> int option
(** [None] when unlimited. *)

val exhausted : t -> bool

val set_cache : t -> Score_cache.t option -> unit
(** Attach (or detach, with [None]) a per-image score cache.  The cache
    must belong to the one base image this handle is about to attack —
    attaching it is how per-image cache slots are threaded through code
    whose signatures only carry an oracle (e.g.
    {!Evalharness.Attackers.t}). *)

val cache : t -> Score_cache.t option
(** The attached cache, if any.  {!Oppsla.Sketch.attack} and the
    baselines consult this when no explicit cache is passed. *)

val clone : t -> t
(** A fresh metered handle onto the same scoring function: same name,
    classes and budget, but an independent query counter starting at 0
    and {b no attached cache}.  This is the sanctioned way to fan an
    oracle out across domains — the counter is plain mutable state, so
    domains must never share one handle, and a {!Score_cache.t} is plain
    mutable state too, so a clone deliberately {e drops} it rather than
    aliasing one unsynchronized table across workers
    ({!Oppsla.Score.evaluate_parallel} re-attaches the correct per-image
    slot explicitly).  Clones meter their budgets independently; parallel
    evaluation of budgeted oracles is therefore per-clone, not global
    (see {!Oppsla.Score.evaluate_parallel}).

    The clone contract for the query {!mode} is the opposite of the
    cache's: the mode is {b preserved}.  A cache is per-image mutable
    working state (dropped); the mode is the threat-model identity of
    the oracle (kept), so a worker clone observes exactly what its
    parent would.  The copy is independent — {!set_mode} on the clone
    never touches the parent. *)

val num_classes : t -> int
val name : t -> string

val backend_name : t -> string
(** The scoring engine behind this oracle — ["boxed"] / ["f32"] for
    network oracles, ["fn"] for closures — as recorded in journal
    provenance and the [oracle.queries.by{backend=...,mode=...}]
    dimensional series.  Metering is backend-independent; this is
    observability only. *)

val unmetered_classify : t -> Tensor.t -> int
(** Classification that does NOT count as a query.  Reserved for
    experiment bookkeeping (e.g. filtering misclassified test images, as
    the paper does before attacking); never use it inside an attack. *)

val unmetered_scores : t -> Tensor.t -> Tensor.t
(** Unmetered score vector.  Same restrictions as {!unmetered_classify},
    plus one sanctioned use: the sketch reads the clean scores [N(x)] this
    way, because the attacker learned them when it established that the
    image is correctly classified. *)

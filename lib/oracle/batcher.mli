(** Speculative candidate batching with query-identical accounting.

    A [Batcher.t] sits between a sequential attacker and a metered
    {!Oracle.t}.  Each {!query} names the candidate the attacker is
    posing NOW (by its {!Score_cache.key} identity) plus, optionally, a
    [speculate] callback enumerating the candidates it would pose next
    if nothing interesting happens.  The batcher resolves up to [width]
    candidates in one unmetered batched forward pass
    ({!Oracle.eval_batch}; cache hits are excluded from the batch first)
    and buffers the results; while subsequent queries match the buffered
    heads they are served — and metered — one at a time from the buffer.
    A query whose key differs from the buffered head (the attacker
    changed course after an answer) discards the buffer and rebuilds
    from the true state.

    {b The speculative-batching invariant.}  Forward passes are
    speculative and free of accounting; the query counter is charged
    only at consumption, one query per served candidate, in the exact
    order posed.  If success or budget exhaustion lands at candidate [j]
    of a chunk, results after [j] are discarded and exactly [j+1]
    queries were charged — query counts, success flags,
    [Budget_exhausted] indices and synthesizer traces are bit-identical
    to the sequential path at every batch width.  Mis-speculation costs
    wall-clock only.  [test/test_batch_eval.ml] and
    [test/diff_runner.ml --batch 1|16] enforce this.

    Candidate keys must uniquely identify the perturbed input within the
    attacked image, exactly as cache keys must ({!Score_cache.key}); the
    same keys serve both purposes. *)

type candidate = {
  key : Score_cache.key;  (** identity of the perturbed input *)
  input : unit -> Tensor.t;  (** builds the input; called only on miss *)
}

type t

val create : ?cache:Score_cache.t -> width:int -> Oracle.t -> t
(** [create ~width oracle]: a batcher posing chunks of up to [width]
    candidates.  Uses [cache] (default: the oracle's attached cache, see
    {!Oracle.set_cache}) to exclude already-known candidates from the
    forward pass and to store newly computed ones.  Width 1 degenerates
    to the sequential path ([speculate] is never called).  Raises
    [Invalid_argument] if [width < 1]. *)

val query : t -> ?speculate:(int -> candidate option) -> candidate -> Tensor.t
(** One metered query, answered from the buffer when possible.
    [speculate i] (called only when a new chunk must be built) returns
    the [i]-th candidate the attacker would pose after this one under
    the assumption that no answer changes its course, or [None] to stop
    filling; it must not mutate attacker state.  Meters exactly like
    {!Oracle.scores} — same counter increment, same {!Budget_exhausted}
    at the same query index. *)

val width : t -> int

(** {1 Statistics}

    Counters are global (atomic, summed across all batchers and
    domains); [Runner]/[Workbench] reset them per run and report them
    next to cache and pool statistics. *)

type stats = {
  queries : int;  (** metered queries served *)
  batches : int;  (** chunks resolved (batched forward passes + probes) *)
  prepared : int;  (** candidates resolved across all chunks *)
  buffer_hits : int;  (** queries served from an existing buffer *)
  discarded : int;  (** buffered results thrown away on mis-speculation *)
}

val global_stats : unit -> stats
val reset_global_stats : unit -> unit
val zero_stats : stats
val add_stats : stats -> stats -> stats

(** Per-image memoization of oracle score vectors.

    The synthesizer's cost model is oracle {e queries}, but its wall-clock
    cost is forward passes: every Metropolis-Hastings candidate program
    re-runs one-pixel attacks on the same training images over the same
    finite perturbation space (8 RGB corners at every location), so
    identical [(image, location, corner)] forward passes are recomputed
    thousands of times per synthesis run.  A [Score_cache.t] memoizes the
    score vector of each distinct perturbed input of {e one} base image,
    so repeated evaluation of the fixed candidate space costs one forward
    pass per distinct perturbation instead of one per query.

    {b The metering-above-cache invariant.}  The cache sits {e under} the
    metering layer, never above it: {!Oracle.scores_memo} charges the
    query counter (and raises [Budget_exhausted]) {e before} the lookup,
    on hits and misses alike.  Query counts, success flags, budget
    exhaustion points and synthesizer traces are therefore bit-identical
    whether a cache is used or not — the cache buys wall-clock, never
    queries.  A differential suite ([test/test_cache_eval.ml] and
    [test/diff_runner.ml --cache on|off]) enforces this.

    {b Ownership rules.}
    - One cache belongs to one [(oracle function, base image)] pair.
      Sharing a cache across images, or across different classifiers,
      silently returns wrong scores — use a {!store} (one cache per
      sample index) when evaluating a batch.
    - A cache is mutable and unsynchronized: at any instant at most one
      domain may touch it.  Per-image caches under
      {!Oppsla.Score.evaluate_parallel} satisfy this by construction
      (each image is attacked by exactly one domain per map call, and the
      pool's map barrier orders the hand-off between calls); {!Oracle.clone}
      drops any attached cache so clones can never alias one table across
      domains.  No locks are ever taken on the read path.

    Returned tensors are shared, not copied: a hit returns the same
    [Tensor.t] the miss stored.  Callers must treat score vectors as
    immutable (all in-repo callers do). *)

type key =
  | Clean  (** the unperturbed base image's scores, [N(x)] *)
  | Corner of { row : int; col : int; corner : int }
      (** a one-pixel corner perturbation — the sketch's finite space
          (see {!Oppsla.Sketch.cache_key}) *)
  | Custom of string
      (** escape hatch for perturbations outside the corner space
          (SuOPA's continuous colors, Sparse-RS pixel sets).  Producers
          must prefix their encodings distinctly so key spaces cannot
          collide. *)

val key_kind : key -> string
(** ["clean"], ["corner"] or ["custom"] — the label the telemetry layer
    files per-key-kind query counters under
    ([oracle.queries.<kind>]). *)

val key_to_string : key -> string
(** Canonical string form — the query journal's provenance key:
    ["clean"], ["corner:<row>,<col>,<corner>"], or the [Custom]
    payload verbatim (the space layers build those canonically). *)

type t

type stats = {
  hits : int;
  misses : int;  (** each miss is one forward pass actually computed *)
  evictions : int;  (** entries dropped by a bounded cache (0 if unbounded) *)
  entries : int;  (** resident entries *)
  bytes : int;  (** approximate resident size (payload + table overhead) *)
}

val create : ?capacity:int -> unit -> t
(** An empty cache.  [capacity] bounds the number of resident entries
    (oldest-inserted evicted first); omitted means unbounded, which is
    the right default — a full 16x16 corner space is 2049 entries of one
    score vector each.  Raises [Invalid_argument] if [capacity < 1]. *)

val find_or_add : t -> key -> compute:(unit -> Tensor.t) -> Tensor.t
(** [find_or_add t key ~compute] returns the cached vector for [key], or
    calls [compute] exactly once, stores its result, and returns it.
    [compute] is not called on a hit — lazy construction of the perturbed
    input belongs inside it. *)

val find : t -> key -> Tensor.t option
(** Silent probe: no statistics are touched. *)

val find_counted : t -> key -> Tensor.t option
(** Probe counted as a hit when present (a miss is only counted when the
    computed vector is stored with {!add}).  The batched oracle path uses
    this pair instead of {!find_or_add} because its lookups and fills are
    separated by one batched forward pass over all missing slots. *)

val add : t -> key -> Tensor.t -> unit
(** Store a computed vector, counted as a miss.  A no-op if [key] is
    already resident (the first stored vector wins, matching
    {!find_or_add}). *)

val mem : t -> key -> bool
val length : t -> int

val clear : t -> unit
(** Drop every entry (not counted as evictions); statistics other than
    [entries]/[bytes] are kept. *)

val stats : t -> stats

val zero_stats : stats
val add_stats : stats -> stats -> stats
(** Pointwise sum — aggregate per-image caches into a run-level figure. *)

val hit_rate : stats -> float option
(** [hits / (hits + misses)], or [None] before any lookup. *)

(** {1 Stores: one cache per sample index}

    Batch evaluators ({!Oppsla.Score.evaluate},
    {!Oppsla.Score.evaluate_parallel}, {!Evalharness.Runner.run}) take a
    [store] sized to their sample array: slot [i] memoizes image [i].
    The store is created eagerly (no lazy table mutation during a
    parallel phase), so the per-domain ownership rule above reduces to
    per-image ownership. *)

type store

val store : ?capacity:int -> int -> store
(** [store n]: [n] empty caches (optionally each bounded to [capacity]
    entries).  Raises [Invalid_argument] if [n < 0]. *)

val image_cache : store -> int -> t
(** The cache for sample index [i].  Raises [Invalid_argument] out of
    bounds. *)

val store_size : store -> int

val store_stats : store -> stats
(** {!add_stats} over every slot. *)

(** Neural-network layers with explicit forward and backward passes.

    Each layer is a mutable value: [forward] caches whatever the matching
    [backward] call needs (inputs, pooling switches, normalization
    statistics), and [backward] both returns the gradient with respect to
    the layer input and accumulates parameter gradients into the layer's
    {!Param.t} records.

    The composite layers ({!residual}, {!inception}) embed sub-layer
    stacks, which is how the ResNet-, GoogLeNet- and DenseNet-style
    architectures in {!Zoo} are expressed.

    Note on normalization: the paper's classifiers use batch normalization.
    Training here is per-sample (no batch dimension), so {!channel_norm}
    normalizes each channel over its spatial extent with learnable scale
    and shift — the per-sample analogue of batch norm with identical
    train/inference behaviour.  DESIGN.md records this substitution. *)

type t

(** {1 Constructors} *)

val conv2d :
  Prng.t -> ?stride:int -> ?pad:int -> in_c:int -> out_c:int -> k:int -> unit -> t
(** He-initialized 2-D convolution over CHW tensors. *)

val dense : Prng.t -> in_dim:int -> out_dim:int -> unit -> t
(** He-initialized fully connected layer over rank-1 tensors. *)

val relu : unit -> t
val max_pool : ?stride:int -> size:int -> unit -> t
val avg_pool : ?stride:int -> size:int -> unit -> t
val global_avg_pool : unit -> t
val flatten : unit -> t

val channel_norm : channels:int -> t
(** Per-channel spatial normalization with learnable gamma/beta (see the
    module comment). *)

val residual : ?projection:t -> t list -> t
(** [residual body] computes [x + body x].  When the body changes the
    shape, supply [?projection] (typically a 1x1 convolution) to map the
    skip connection onto the body's output shape. *)

val inception : t list list -> t
(** [inception branches] runs each branch (a layer stack) on the input and
    concatenates the branch outputs along the channel axis. *)

val sequential : t list -> t
(** A layer stack usable anywhere a single layer is (used to build
    residual bodies and dense blocks). *)

val dense_block : Prng.t -> in_c:int -> growth:int -> layers:int -> unit -> t
(** DenseNet-style block: each step runs conv3x3 (producing [growth]
    channels) on the concatenation of all previous feature maps and
    appends its output. *)

(** {1 Execution} *)

val forward : ?train:bool -> t -> Tensor.t -> Tensor.t
(** [forward ~train layer x].  With [~train:true] (default [false]) the
    layer caches what [backward] needs; with [~train:false] the caches
    are neither read nor written. *)

val forward_batch : t -> Tensor.t -> Tensor.t
(** Inference over a batch: NCHW in (then [|n; features|] from the first
    {!flatten} on), one GEMM per convolution via
    {!Tensor.conv2d_gemm_batch} with the im2col scratch matrix shared
    across the batch.  Image [i] of the result is bit-equal to the
    corresponding single-image GEMM forward regardless of the batch
    width, and the training caches are never touched. *)

val clear_caches : t -> unit
(** Drop all cached forward-pass intermediates (recursively).  Training
    retains the last forward's inputs per layer; call this when switching
    a trained network to inference so attack workloads don't carry that
    dead weight. *)

val children : t -> t list
(** The top-level stages of a {!sequential} stack ([[layer]] for any
    other layer) — lets benchmarks time a network layer by layer without
    access to the representation. *)

val norm_eps : float
(** The variance floor used by {!channel_norm} (1e-5).  Exposed so plan
    compilers ({!Backend}) normalize with the identical constant. *)

(** One-level structural view of a layer: its kind plus the current
    parameter tensors, without training caches.  Composite layers expose
    their sub-layers as [t]s so consumers recurse via {!view}.  This is
    what plan compilers ({!Backend.Make}) translate into backend
    kernels. *)
type view =
  | V_conv of { stride : int; pad : int; weight : Tensor.t; bias : Tensor.t }
  | V_dense of { weight : Tensor.t; bias : Tensor.t }
  | V_relu
  | V_max_pool of { size : int; stride : int }
  | V_avg_pool of { size : int; stride : int }
  | V_global_avg_pool
  | V_flatten
  | V_norm of { gamma : Tensor.t; beta : Tensor.t }
  | V_residual of { body : t; projection : t option }
  | V_inception of t list  (** branch stacks *)
  | V_seq of t list
  | V_dense_block of t list  (** the per-step conv stacks *)

val view : t -> view
(** Parameter tensors in the view are the layer's live [Param.t] values
    (not copies): compile plans after training, or recompile when the
    parameters change. *)

val backward : t -> Tensor.t -> Tensor.t
(** [backward layer dout] must follow a [forward ~train:true] on the same
    layer.  Returns [dx] and accumulates parameter gradients. *)

val params : t -> Param.t list
(** All trainable parameters, in a deterministic order. *)

val describe : t -> string
(** One-line structural summary, e.g. ["conv2d(3->8,k3,s1,p1)"]. *)

val output_shape : t -> int array -> int array
(** [output_shape layer input_shape] computes the shape produced by
    [forward] on an input of [input_shape] without running any floats
    through the layer.  Raises [Invalid_argument] on incompatible
    shapes. *)

(** Plan compiler over pluggable tensor backends.

    [Make (B)] translates a {!Network.t} once into a list of [B] kernel
    steps (weights converted to backend storage at compile time,
    conv→norm→relu fused into the conv epilogue when [B.fuse]) and runs
    whole batches through it.  The boxed instance is bit-identical to
    {!Network.scores_batch}; the f32 instance matches under the
    tolerance policy: identical argmax, success and query counts, and
    per-logit deviation at most {!score_tol}. *)

val score_tol : float
(** Per-score absolute tolerance (1e-4) for cross-backend differentials
    on softmax outputs of non-[exact] backends. *)

(** Backend selection token, threaded from the CLI ([--backend
    boxed|f32]) through Workbench and Oracle. *)
type kind = Boxed | F32

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

module Make (B : Tensor_sig.S) : sig
  type plan

  val backend_name : string
  val exact : bool
  (** Mirrors [B.name] / [B.exact]. *)

  val compile : Network.t -> plan
  (** Translate the network's current parameters into backend storage.
      The plan snapshots weights: recompile after any parameter
      update. *)

  val logits_batch : ?pool:Domain_pool.Pool.t -> plan -> Tensor.t -> Tensor.t
  (** NCHW batch in, [[|n; classes|]] logits out.  [?pool] lets the
      backend dispatch GEMM row panels onto an idle domain pool (safe to
      pass a pool that is mid-[map]: the backend falls back inline). *)

  val scores_batch : ?pool:Domain_pool.Pool.t -> plan -> Tensor.t -> Tensor.t
  (** Softmax of each {!logits_batch} row. *)
end

module Boxed_engine : module type of Make (Tensor_boxed)
module F32_engine : module type of Make (Tensor_f32)

(** Trainable parameters.

    A parameter couples a value tensor with a same-shaped gradient
    accumulator.  Layers expose their parameters through [Layer.params] so
    that optimizers can walk a network without knowing its structure. *)

type t = { name : string; value : Tensor.t; grad : Tensor.t }

val create : string -> Tensor.t -> t
(** [create name value] allocates a zero gradient of the same shape. *)

val zero_grad : t -> unit
(** Reset the gradient accumulator to zero. *)

val accumulate : t -> Tensor.t -> unit
(** [accumulate p g] adds [g] into [p.grad].  Raises
    [Tensor.Shape_mismatch] if shapes disagree. *)

val count : t -> int
(** Number of scalar entries in the value. *)

(* Layers cache forward-pass intermediates in mutable fields; [backward]
   consumes the cache of the preceding [forward ~train:true].  The cache is
   [option]-typed so a backward without a prior training forward fails
   loudly instead of silently using stale data. *)

type conv = {
  stride : int;
  pad : int;
  cw : Param.t;
  cb : Param.t;
  mutable conv_x : Tensor.t option;
}

type dense_rec = {
  dw : Param.t;
  db : Param.t;
  mutable dense_x : Tensor.t option;
}

type norm = {
  gamma : Param.t;
  beta : Param.t;
  mutable norm_cache : (Tensor.t * float array * float array) option;
      (* input, per-channel mean, per-channel 1/sqrt(var+eps) *)
}

type t =
  | Conv of conv
  | Dense of dense_rec
  | Relu of { mutable relu_x : Tensor.t option }
  | Max_pool of {
      msize : int;
      mstride : int;
      mutable mcache : (int array * int array) option; (* x shape, switches *)
    }
  | Avg_pool of {
      asize : int;
      astride : int;
      mutable acache : int array option; (* x shape *)
    }
  | Global_avg_pool of { mutable gcache : int array option }
  | Flatten of { mutable fcache : int array option }
  | Norm of norm
  | Residual of { body : t; projection : t option }
  | Inception of {
      branches : t list;
      mutable icache : int list option; (* per-branch output channels *)
    }
  | Seq of t list
  | Dense_block of { block_in_c : int; growth : int; convs : t list }

let norm_eps = 1e-5

(* Constructors *)

let conv2d g ?(stride = 1) ?(pad = 0) ~in_c ~out_c ~k () =
  let sigma = sqrt (2. /. float_of_int (in_c * k * k)) in
  let w = Tensor.randn g ~sigma [| out_c; in_c; k; k |] in
  let name = Printf.sprintf "conv%dx%d_%d_%d" k k in_c out_c in
  Conv
    {
      stride;
      pad;
      cw = Param.create (name ^ ".w") w;
      cb = Param.create (name ^ ".b") (Tensor.zeros [| out_c |]);
      conv_x = None;
    }

let dense g ~in_dim ~out_dim () =
  let sigma = sqrt (2. /. float_of_int in_dim) in
  let w = Tensor.randn g ~sigma [| out_dim; in_dim |] in
  let name = Printf.sprintf "dense_%d_%d" in_dim out_dim in
  Dense
    {
      dw = Param.create (name ^ ".w") w;
      db = Param.create (name ^ ".b") (Tensor.zeros [| out_dim |]);
      dense_x = None;
    }

let relu () = Relu { relu_x = None }

let max_pool ?stride ~size () =
  let stride = match stride with None -> size | Some s -> s in
  Max_pool { msize = size; mstride = stride; mcache = None }

let avg_pool ?stride ~size () =
  let stride = match stride with None -> size | Some s -> s in
  Avg_pool { asize = size; astride = stride; acache = None }

let global_avg_pool () = Global_avg_pool { gcache = None }
let flatten () = Flatten { fcache = None }

let channel_norm ~channels =
  Norm
    {
      gamma = Param.create "norm.gamma" (Tensor.ones [| channels |]);
      beta = Param.create "norm.beta" (Tensor.zeros [| channels |]);
      norm_cache = None;
    }

let sequential layers = Seq layers
let residual ?projection body = Residual { body = Seq body; projection }
let inception branches = Inception { branches = List.map (fun b -> Seq b) branches; icache = None }

let dense_block g ~in_c ~growth ~layers () =
  let convs =
    List.init layers (fun i ->
        let c = in_c + (i * growth) in
        Seq [ conv2d g ~pad:1 ~in_c:c ~out_c:growth ~k:3 (); relu () ])
  in
  Dense_block { block_in_c = in_c; growth; convs }

(* Cache helpers *)

let need name = function
  | Some v -> v
  | None -> failwith ("Layer.backward(" ^ name ^ "): no cached forward pass")

(* Forward *)

let rec forward ?(train = false) layer x =
  match layer with
  | Conv c ->
      if train then c.conv_x <- Some x;
      Tensor.conv2d ~stride:c.stride ~pad:c.pad x ~weight:c.cw.value
        ~bias:(Some c.cb.value)
  | Dense d ->
      if train then d.dense_x <- Some x;
      let y = Tensor.matvec d.dw.value x in
      Tensor.add y d.db.value
  | Relu r ->
      if train then r.relu_x <- Some x;
      Tensor.relu x
  | Max_pool p ->
      let y, switches = Tensor.max_pool2d ~stride:p.mstride ~size:p.msize x in
      if train then p.mcache <- Some (Tensor.shape x, switches);
      y
  | Avg_pool p ->
      if train then p.acache <- Some (Tensor.shape x);
      Tensor.avg_pool2d ~stride:p.astride ~size:p.asize x
  | Global_avg_pool p ->
      if train then p.gcache <- Some (Tensor.shape x);
      Tensor.global_avg_pool x
  | Flatten f ->
      if train then f.fcache <- Some (Tensor.shape x);
      Tensor.flatten x
  | Norm n -> forward_norm ~train n x
  | Residual { body; projection } ->
      let skip =
        match projection with None -> x | Some p -> forward ~train p x
      in
      Tensor.add (forward ~train body x) skip
  | Inception i ->
      let outs = List.map (fun b -> forward ~train b x) i.branches in
      if train then i.icache <- Some (List.map (fun o -> Tensor.dim o 0) outs);
      Tensor.concat_channels outs
  | Seq layers -> List.fold_left (fun acc l -> forward ~train l acc) x layers
  | Dense_block b ->
      List.fold_left
        (fun feat conv ->
          let y = forward ~train conv feat in
          Tensor.concat_channels [ feat; y ])
        x b.convs

and forward_norm ~train n x =
  if Tensor.ndim x <> 3 then
    invalid_arg "Layer.channel_norm: expected a CHW tensor";
  let c = Tensor.dim x 0 and h = Tensor.dim x 1 and w = Tensor.dim x 2 in
  let m = float_of_int (h * w) in
  let mu = Array.make c 0. and inv_std = Array.make c 0. in
  let y = Tensor.zeros [| c; h; w |] in
  (* Hot inference path: offsets are in bounds by construction. *)
  let xd = x.Tensor.data and yd = y.Tensor.data in
  for ch = 0 to c - 1 do
    let off = ch * h * w in
    let acc = ref 0. in
    for i = 0 to (h * w) - 1 do
      acc := !acc +. Array.unsafe_get xd (off + i)
    done;
    let mean = !acc /. m in
    let vacc = ref 0. in
    for i = 0 to (h * w) - 1 do
      let d = Array.unsafe_get xd (off + i) -. mean in
      vacc := !vacc +. (d *. d)
    done;
    let istd = 1. /. sqrt ((!vacc /. m) +. norm_eps) in
    mu.(ch) <- mean;
    inv_std.(ch) <- istd;
    let gam = Tensor.get_flat n.gamma.value ch
    and bet = Tensor.get_flat n.beta.value ch in
    for i = 0 to (h * w) - 1 do
      let xhat = (Array.unsafe_get xd (off + i) -. mean) *. istd in
      Array.unsafe_set yd (off + i) ((gam *. xhat) +. bet)
    done
  done;
  if train then n.norm_cache <- Some (x, mu, inv_std);
  y

(* Batched forward.

   Inference over a whole candidate batch at once: NCHW in, and from the
   first [Flatten] on, [|n; features|].  Each image's result is bit-equal
   to [forward ~train:false] via the GEMM path — every kernel used below
   accumulates per output element in an order independent of the batch
   width.  This path NEVER touches the training caches, so attack
   workloads retain no input tensors between queries. *)

let rec forward_batch layer x =
  match layer with
  | Conv c ->
      (* Per-layer conv timing: one span per batched GEMM forward, the
         breakdown the trace viewer groups the hot path by.  Disabled
         path is one branch; args (shapes) are built lazily. *)
      Telemetry.Trace.span "conv2d_gemm_batch" ~cat:"tensor"
        ~args:(fun () ->
          let s = Tensor.shape c.cw.value in
          [
            ("n", Telemetry.Trace.Int (Tensor.dim x 0));
            ("in_c", Telemetry.Trace.Int s.(1));
            ("out_c", Telemetry.Trace.Int s.(0));
            ("k", Telemetry.Trace.Int s.(2));
            ("stride", Telemetry.Trace.Int c.stride);
            ("pad", Telemetry.Trace.Int c.pad);
          ])
        (fun () ->
          Tensor.conv2d_gemm_batch ~stride:c.stride ~pad:c.pad x
            ~weight:c.cw.value ~bias:(Some c.cb.value))
  | Dense d ->
      Telemetry.Trace.span "dense_batch" ~cat:"tensor"
        ~args:(fun () ->
          [
            ("n", Telemetry.Trace.Int (Tensor.dim x 0));
            ("in_dim", Telemetry.Trace.Int (Tensor.dim d.dw.value 1));
            ("out_dim", Telemetry.Trace.Int (Tensor.dim d.dw.value 0));
          ])
      @@ fun () -> Tensor.dense_batch x ~weight:d.dw.value ~bias:d.db.value
  | Relu _ -> Tensor.relu x
  | Max_pool p ->
      check_nchw x;
      Tensor.max_pool2d_batch ~stride:p.mstride ~size:p.msize x
  | Avg_pool p ->
      check_nchw x;
      Tensor.avg_pool2d_batch ~stride:p.astride ~size:p.asize x
  | Global_avg_pool _ ->
      check_nchw x;
      Tensor.global_avg_pool_batch x
  | Flatten _ ->
      let n = Tensor.dim x 0 in
      Tensor.reshape x [| n; Tensor.numel x / n |]
  | Norm n -> forward_norm_batch n x
  | Residual { body; projection } ->
      let skip =
        match projection with None -> x | Some p -> forward_batch p x
      in
      Tensor.add (forward_batch body x) skip
  | Inception i ->
      Tensor.concat_channels_batch
        (List.map (fun b -> forward_batch b x) i.branches)
  | Seq layers -> List.fold_left (fun acc l -> forward_batch l acc) x layers
  | Dense_block b ->
      List.fold_left
        (fun feat conv ->
          let y = forward_batch conv feat in
          Tensor.concat_channels_batch [ feat; y ])
        x b.convs

and check_nchw x =
  if Tensor.ndim x <> 4 then
    invalid_arg "Layer.forward_batch: expected an NCHW tensor"

(* Same per-plane reductions as [forward_norm], plane by plane; the
   kernel lives in {!Tensor.channel_norm_batch} so every tensor backend
   normalizes with the identical arithmetic. *)
and forward_norm_batch n x =
  if Tensor.ndim x <> 4 then
    invalid_arg "Layer.channel_norm: expected an NCHW tensor";
  Tensor.channel_norm_batch ~gamma:n.gamma.value ~beta:n.beta.value
    ~eps:norm_eps x

(* Cache management *)

let rec clear_caches = function
  | Conv c -> c.conv_x <- None
  | Dense d -> d.dense_x <- None
  | Relu r -> r.relu_x <- None
  | Max_pool p -> p.mcache <- None
  | Avg_pool p -> p.acache <- None
  | Global_avg_pool p -> p.gcache <- None
  | Flatten f -> f.fcache <- None
  | Norm n -> n.norm_cache <- None
  | Residual { body; projection } ->
      clear_caches body;
      Option.iter clear_caches projection
  | Inception i ->
      i.icache <- None;
      List.iter clear_caches i.branches
  | Seq layers -> List.iter clear_caches layers
  | Dense_block b -> List.iter clear_caches b.convs

let children = function Seq layers -> layers | layer -> [ layer ]

(* Structural view for plan compilers (see {!Backend}): exposes each
   layer's kind and current parameter tensors without the training
   caches or the representation itself. *)

type view =
  | V_conv of { stride : int; pad : int; weight : Tensor.t; bias : Tensor.t }
  | V_dense of { weight : Tensor.t; bias : Tensor.t }
  | V_relu
  | V_max_pool of { size : int; stride : int }
  | V_avg_pool of { size : int; stride : int }
  | V_global_avg_pool
  | V_flatten
  | V_norm of { gamma : Tensor.t; beta : Tensor.t }
  | V_residual of { body : t; projection : t option }
  | V_inception of t list
  | V_seq of t list
  | V_dense_block of t list

let view = function
  | Conv c ->
      V_conv
        { stride = c.stride; pad = c.pad; weight = c.cw.value; bias = c.cb.value }
  | Dense d -> V_dense { weight = d.dw.value; bias = d.db.value }
  | Relu _ -> V_relu
  | Max_pool p -> V_max_pool { size = p.msize; stride = p.mstride }
  | Avg_pool p -> V_avg_pool { size = p.asize; stride = p.astride }
  | Global_avg_pool _ -> V_global_avg_pool
  | Flatten _ -> V_flatten
  | Norm n -> V_norm { gamma = n.gamma.value; beta = n.beta.value }
  | Residual { body; projection } -> V_residual { body; projection }
  | Inception i -> V_inception i.branches
  | Seq layers -> V_seq layers
  | Dense_block b -> V_dense_block b.convs

(* Backward *)

let rec backward layer dout =
  match layer with
  | Conv c ->
      let x = need "conv2d" c.conv_x in
      let dx, dw, db =
        Tensor.conv2d_backward ~stride:c.stride ~pad:c.pad ~x
          ~weight:c.cw.value dout
      in
      Param.accumulate c.cw dw;
      Param.accumulate c.cb db;
      dx
  | Dense d ->
      let x = need "dense" d.dense_x in
      Param.accumulate d.dw (Tensor.outer dout x);
      Param.accumulate d.db dout;
      Tensor.matvec_t d.dw.value dout
  | Relu r ->
      let x = need "relu" r.relu_x in
      Tensor.map2 (fun xv g -> if xv > 0. then g else 0.) x dout
  | Max_pool p ->
      let x_shape, switches = need "max_pool" p.mcache in
      Tensor.max_pool2d_backward ~x_shape ~switches dout
  | Avg_pool p ->
      let x_shape = need "avg_pool" p.acache in
      Tensor.avg_pool2d_backward ~stride:p.astride ~size:p.asize ~x_shape dout
  | Global_avg_pool p ->
      let x_shape = need "global_avg_pool" p.gcache in
      Tensor.global_avg_pool_backward ~x_shape dout
  | Flatten f ->
      let x_shape = need "flatten" f.fcache in
      Tensor.reshape dout x_shape
  | Norm n -> backward_norm n dout
  | Residual { body; projection } ->
      let dbody = backward body dout in
      let dskip =
        match projection with None -> dout | Some p -> backward p dout
      in
      Tensor.add dbody dskip
  | Inception i ->
      let channels = need "inception" i.icache in
      let pieces = Tensor.split_channels dout channels in
      let dxs = List.map2 backward i.branches pieces in
      List.fold_left Tensor.add (List.hd dxs) (List.tl dxs)
  | Seq layers ->
      List.fold_left (fun d l -> backward l d) dout (List.rev layers)
  | Dense_block b ->
      (* feat_{i+1} = concat (feat_i, conv_i feat_i); peel in reverse. *)
      let n = List.length b.convs in
      let dfeat = ref dout in
      let convs_rev = List.rev b.convs in
      List.iteri
        (fun j conv ->
          let i = n - 1 - j in
          let c_in = b.block_in_c + (i * b.growth) in
          match Tensor.split_channels !dfeat [ c_in; b.growth ] with
          | [ d_direct; d_y ] ->
              let d_through = backward conv d_y in
              dfeat := Tensor.add d_direct d_through
          | _ -> assert false)
        convs_rev;
      !dfeat

and backward_norm n dout =
  let x, mu, inv_std =
    match n.norm_cache with
    | Some v -> v
    | None -> failwith "Layer.backward(channel_norm): no cached forward pass"
  in
  let c = Tensor.dim x 0 and h = Tensor.dim x 1 and w = Tensor.dim x 2 in
  let m = float_of_int (h * w) in
  let dx = Tensor.zeros [| c; h; w |] in
  let dgamma = Tensor.zeros [| c |] and dbeta = Tensor.zeros [| c |] in
  for ch = 0 to c - 1 do
    let off = ch * h * w in
    let mean = mu.(ch) and istd = inv_std.(ch) in
    let gam = Tensor.get_flat n.gamma.value ch in
    (* Accumulate sum(dxhat) and sum(dxhat * xhat) for the channel. *)
    let s1 = ref 0. and s2 = ref 0. and dg = ref 0. and db = ref 0. in
    for i = 0 to (h * w) - 1 do
      let g = Tensor.get_flat dout (off + i) in
      let xhat = (Tensor.get_flat x (off + i) -. mean) *. istd in
      let dxhat = g *. gam in
      s1 := !s1 +. dxhat;
      s2 := !s2 +. (dxhat *. xhat);
      dg := !dg +. (g *. xhat);
      db := !db +. g
    done;
    Tensor.set_flat dgamma ch !dg;
    Tensor.set_flat dbeta ch !db;
    for i = 0 to (h * w) - 1 do
      let g = Tensor.get_flat dout (off + i) in
      let xhat = (Tensor.get_flat x (off + i) -. mean) *. istd in
      let dxhat = g *. gam in
      let v = istd *. (dxhat -. (!s1 /. m) -. (xhat *. !s2 /. m)) in
      Tensor.set_flat dx (off + i) v
    done
  done;
  Param.accumulate n.gamma dgamma;
  Param.accumulate n.beta dbeta;
  dx

(* Parameters *)

let rec params = function
  | Conv c -> [ c.cw; c.cb ]
  | Dense d -> [ d.dw; d.db ]
  | Norm n -> [ n.gamma; n.beta ]
  | Relu _ | Max_pool _ | Avg_pool _ | Global_avg_pool _ | Flatten _ -> []
  | Residual { body; projection } ->
      params body
      @ (match projection with None -> [] | Some p -> params p)
  | Inception i -> List.concat_map params i.branches
  | Seq layers -> List.concat_map params layers
  | Dense_block b -> List.concat_map params b.convs

(* Description *)

let rec describe = function
  | Conv c ->
      let s = Tensor.shape c.cw.value in
      Printf.sprintf "conv2d(%d->%d,k%d,s%d,p%d)" s.(1) s.(0) s.(2) c.stride
        c.pad
  | Dense d ->
      let s = Tensor.shape d.dw.value in
      Printf.sprintf "dense(%d->%d)" s.(1) s.(0)
  | Relu _ -> "relu"
  | Max_pool p -> Printf.sprintf "max_pool(%d,s%d)" p.msize p.mstride
  | Avg_pool p -> Printf.sprintf "avg_pool(%d,s%d)" p.asize p.astride
  | Global_avg_pool _ -> "global_avg_pool"
  | Flatten _ -> "flatten"
  | Norm n -> Printf.sprintf "channel_norm(%d)" (Tensor.numel n.gamma.value)
  | Residual { body; projection } ->
      let proj =
        match projection with
        | None -> ""
        | Some p -> ", proj=" ^ describe p
      in
      Printf.sprintf "residual(%s%s)" (describe body) proj
  | Inception i ->
      let bs = List.map describe i.branches in
      Printf.sprintf "inception(%s)" (String.concat " | " bs)
  | Seq layers -> "[" ^ String.concat "; " (List.map describe layers) ^ "]"
  | Dense_block b ->
      Printf.sprintf "dense_block(in=%d,growth=%d,layers=%d)" b.block_in_c
        b.growth (List.length b.convs)

(* Static shape inference *)

let conv_out_dim size k stride pad = ((size + (2 * pad) - k) / stride) + 1

let rec output_shape layer in_shape =
  match layer with
  | Conv c ->
      if Array.length in_shape <> 3 then
        invalid_arg "Layer.output_shape: conv2d expects CHW input";
      let s = Tensor.shape c.cw.value in
      if in_shape.(0) <> s.(1) then
        invalid_arg
          (Printf.sprintf "Layer.output_shape: conv2d expects %d channels, got %d"
             s.(1) in_shape.(0));
      let oh = conv_out_dim in_shape.(1) s.(2) c.stride c.pad
      and ow = conv_out_dim in_shape.(2) s.(3) c.stride c.pad in
      if oh <= 0 || ow <= 0 then
        invalid_arg "Layer.output_shape: conv2d output would be empty";
      [| s.(0); oh; ow |]
  | Dense d ->
      let s = Tensor.shape d.dw.value in
      if Array.length in_shape <> 1 || in_shape.(0) <> s.(1) then
        invalid_arg "Layer.output_shape: dense input mismatch";
      [| s.(0) |]
  | Relu _ -> Array.copy in_shape
  | Max_pool p ->
      [|
        in_shape.(0);
        conv_out_dim in_shape.(1) p.msize p.mstride 0;
        conv_out_dim in_shape.(2) p.msize p.mstride 0;
      |]
  | Avg_pool p ->
      [|
        in_shape.(0);
        conv_out_dim in_shape.(1) p.asize p.astride 0;
        conv_out_dim in_shape.(2) p.asize p.astride 0;
      |]
  | Global_avg_pool _ -> [| in_shape.(0) |]
  | Flatten _ -> [| Array.fold_left ( * ) 1 in_shape |]
  | Norm _ -> Array.copy in_shape
  | Residual { body; projection } ->
      let out = output_shape body in_shape in
      let skip =
        match projection with
        | None -> in_shape
        | Some p -> output_shape p in_shape
      in
      if out <> skip then
        invalid_arg "Layer.output_shape: residual body/skip shape mismatch";
      out
  | Inception i ->
      let outs = List.map (fun b -> output_shape b in_shape) i.branches in
      let first = List.hd outs in
      List.iter
        (fun o ->
          if o.(1) <> first.(1) || o.(2) <> first.(2) then
            invalid_arg "Layer.output_shape: inception branch spatial mismatch")
        outs;
      [|
        List.fold_left (fun acc o -> acc + o.(0)) 0 outs; first.(1); first.(2);
      |]
  | Seq layers -> List.fold_left (fun s l -> output_shape l s) in_shape layers
  | Dense_block b ->
      [|
        b.block_in_c + (List.length b.convs * b.growth);
        in_shape.(1);
        in_shape.(2);
      |]

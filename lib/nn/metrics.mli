(** Classification quality metrics beyond plain accuracy. *)

type confusion = private {
  classes : int;
  counts : int array array;  (** [counts.(truth).(predicted)] *)
}

val confusion_matrix : Network.t -> (Tensor.t * int) array -> confusion
(** Raises [Invalid_argument] on an empty sample set or out-of-range
    labels. *)

val accuracy_of_confusion : confusion -> float
val per_class_accuracy : confusion -> float array
(** Recall per true class; [nan] for classes with no samples. *)

val most_confused : confusion -> (int * int * int) option
(** [(truth, predicted, count)] of the largest off-diagonal entry, or
    [None] when classification is perfect. *)

val top_k_accuracy : k:int -> Network.t -> (Tensor.t * int) array -> float
(** Fraction of samples whose true class is among the [k] highest
    logits.  Raises [Invalid_argument] if [k < 1]. *)

val pp_confusion : ?class_names:string array -> Format.formatter -> confusion -> unit
(** Fixed-width matrix with optional row labels. *)

(** Save and load network weights.

    The format is a plain text, line-oriented container: a header, then one
    record per parameter (name, element count, whitespace-separated
    decimals printed with ["%.17g"] so values round-trip exactly).
    Architecture is *not* stored — the loader fills the parameters of an
    already-constructed network, so the model zoo remains the single source
    of truth for structure. *)

exception Format_error of string
(** Raised on malformed files or on any mismatch (network name, parameter
    count, parameter name or size) between the file and the target
    network. *)

val write : out_channel -> Network.t -> unit
val read : in_channel -> Network.t -> unit

val save : string -> Network.t -> unit
(** [save path net] writes the weights to [path]. *)

val load : string -> Network.t -> unit
(** [load path net] reads weights from [path] into [net].  Raises
    {!Format_error} on mismatch and [Sys_error] if the file is missing. *)

(** Cross-entropy training loop. *)

type report = {
  epoch : int;
  train_loss : float;
  train_acc : float;
  test_acc : float option;
}

type config = {
  epochs : int;
  batch_size : int;
  optimizer : Optimizer.t;
  lr_decay : float;  (** multiply the learning rate by this after each epoch *)
  augment : Augment.policy;  (** per-sample training augmentation *)
  log : report -> unit;  (** called once per epoch *)
}

val default_config : ?log:(report -> unit) -> unit -> config
(** 8 epochs, batch 16, SGD momentum 0.9 / lr 0.05 / weight decay 1e-4,
    decay 0.85, no augmentation, silent log. *)

val fit :
  ?config:config ->
  ?test:(Tensor.t * int) array ->
  Prng.t ->
  Network.t ->
  (Tensor.t * int) array ->
  report list
(** [fit g net train] trains in place and returns the per-epoch reports in
    chronological order.  Shuffling uses [g]; with equal seeds the run is
    fully deterministic. *)

val evaluate_loss : Network.t -> (Tensor.t * int) array -> float
(** Mean cross-entropy over a sample set (inference mode). *)

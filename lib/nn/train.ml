type report = {
  epoch : int;
  train_loss : float;
  train_acc : float;
  test_acc : float option;
}

type config = {
  epochs : int;
  batch_size : int;
  optimizer : Optimizer.t;
  lr_decay : float;
  augment : Augment.policy;
  log : report -> unit;
}

let default_config ?(log = fun _ -> ()) () =
  {
    epochs = 8;
    batch_size = 16;
    optimizer = Optimizer.sgd ~momentum:0.9 ~weight_decay:1e-4 ~lr:0.05 ();
    lr_decay = 0.85;
    augment = Augment.none;
    log;
  }

let evaluate_loss net samples =
  if Array.length samples = 0 then invalid_arg "Train.evaluate_loss: no samples";
  let total =
    Array.fold_left
      (fun acc (x, label) ->
        acc +. Tensor.cross_entropy (Network.logits net x) label)
      0. samples
  in
  total /. float_of_int (Array.length samples)

let fit ?config ?test g net train =
  let config = match config with Some c -> c | None -> default_config () in
  if Array.length train = 0 then invalid_arg "Train.fit: empty training set";
  let params = Network.params net in
  let n = Array.length train in
  let reports = ref [] in
  for epoch = 1 to config.epochs do
    let order = Prng.permutation g n in
    let loss_sum = ref 0. and correct = ref 0 in
    let i = ref 0 in
    while !i < n do
      let batch_end = min n (!i + config.batch_size) in
      let batch_n = batch_end - !i in
      List.iter Param.zero_grad params;
      for j = !i to batch_end - 1 do
        let x, label = train.(order.(j)) in
        let x =
          if config.augment = Augment.none then x
          else Augment.apply g config.augment x
        in
        let logits = Network.forward_train net x in
        loss_sum := !loss_sum +. Tensor.cross_entropy logits label;
        if Tensor.argmax logits = label then incr correct;
        let dlogits =
          Tensor.scale
            (1. /. float_of_int batch_n)
            (Tensor.cross_entropy_grad logits label)
        in
        ignore (Network.backward net dlogits)
      done;
      Optimizer.step config.optimizer params;
      i := batch_end
    done;
    Optimizer.set_lr config.optimizer
      (Optimizer.lr config.optimizer *. config.lr_decay);
    let report =
      {
        epoch;
        train_loss = !loss_sum /. float_of_int n;
        train_acc = float_of_int !correct /. float_of_int n;
        test_acc = Option.map (Network.accuracy net) test;
      }
    in
    config.log report;
    reports := report :: !reports
  done;
  (* Training leaves each layer's last forward-pass intermediates cached
     (inputs, switches, norm stats) — dead weight for the inference-only
     attack workloads that follow. *)
  Network.clear_caches net;
  List.rev !reports

type state = {
  mutable m : Tensor.t; (* momentum / first moment *)
  mutable v : Tensor.t; (* second moment (adam only) *)
}

type kind =
  | Sgd of { momentum : float }
  | Adam of { beta1 : float; beta2 : float; eps : float; mutable steps : int }

type t = {
  kind : kind;
  weight_decay : float;
  mutable rate : float;
  (* Keyed by physical identity of the parameter's value tensor. *)
  mutable slots : (Param.t * state) list;
}

let sgd ?(momentum = 0.9) ?(weight_decay = 0.) ~lr () =
  { kind = Sgd { momentum }; weight_decay; rate = lr; slots = [] }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ?(weight_decay = 0.)
    ~lr () =
  { kind = Adam { beta1; beta2; eps; steps = 0 }; weight_decay; rate = lr;
    slots = [] }

let slot t (p : Param.t) =
  match List.find_opt (fun (q, _) -> q == p) t.slots with
  | Some (_, s) -> s
  | None ->
      let s =
        {
          m = Tensor.zeros (Tensor.shape p.value);
          v = Tensor.zeros (Tensor.shape p.value);
        }
      in
      t.slots <- (p, s) :: t.slots;
      s

let step t params =
  (match t.kind with Adam a -> a.steps <- a.steps + 1 | Sgd _ -> ());
  List.iter
    (fun (p : Param.t) ->
      if t.weight_decay > 0. then
        Tensor.axpy ~alpha:t.weight_decay p.value p.grad;
      let s = slot t p in
      match t.kind with
      | Sgd { momentum } ->
          (* m <- momentum*m + grad; value <- value - lr*m *)
          Tensor.scale_inplace momentum s.m;
          Tensor.add_inplace s.m p.grad;
          Tensor.axpy ~alpha:(-.t.rate) s.m p.value
      | Adam { beta1; beta2; eps; steps } ->
          Tensor.scale_inplace beta1 s.m;
          Tensor.axpy ~alpha:(1. -. beta1) p.grad s.m;
          Tensor.scale_inplace beta2 s.v;
          let g2 = Tensor.mul p.grad p.grad in
          Tensor.axpy ~alpha:(1. -. beta2) g2 s.v;
          let bc1 = 1. -. (beta1 ** float_of_int steps)
          and bc2 = 1. -. (beta2 ** float_of_int steps) in
          let n = Tensor.numel p.value in
          for i = 0 to n - 1 do
            let mhat = Tensor.get_flat s.m i /. bc1 in
            let vhat = Tensor.get_flat s.v i /. bc2 in
            Tensor.set_flat p.value i
              (Tensor.get_flat p.value i
              -. (t.rate *. mhat /. (sqrt vhat +. eps)))
          done)
    params

let set_lr t lr = t.rate <- lr
let lr t = t.rate

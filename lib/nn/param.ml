type t = { name : string; value : Tensor.t; grad : Tensor.t }

let create name value = { name; value; grad = Tensor.zeros (Tensor.shape value) }
let zero_grad p = Tensor.fill p.grad 0.
let accumulate p g = Tensor.add_inplace p.grad g
let count p = Tensor.numel p.value

type policy = {
  hflip_prob : float;
  max_shift : int;
  brightness_jitter : float;
  contrast_jitter : float;
}

let none =
  { hflip_prob = 0.; max_shift = 0; brightness_jitter = 0.; contrast_jitter = 0. }

let standard =
  {
    hflip_prob = 0.5;
    max_shift = 2;
    brightness_jitter = 0.1;
    contrast_jitter = 0.1;
  }

let check name img =
  if Tensor.ndim img <> 3 then
    invalid_arg ("Augment." ^ name ^ ": expected a CHW tensor")

let clamp01 v = if v < 0. then 0. else if v > 1. then 1. else v

let hflip img =
  check "hflip" img;
  let c = Tensor.dim img 0 and h = Tensor.dim img 1 and w = Tensor.dim img 2 in
  Tensor.init [| c; h; w |] (fun i ->
      let ch = i / (h * w) in
      let rest = i mod (h * w) in
      let y = rest / w and x = rest mod w in
      Tensor.get img [| ch; y; w - 1 - x |])

let shift ~dy ~dx img =
  check "shift" img;
  let c = Tensor.dim img 0 and h = Tensor.dim img 1 and w = Tensor.dim img 2 in
  Tensor.init [| c; h; w |] (fun i ->
      let ch = i / (h * w) in
      let rest = i mod (h * w) in
      let y = (rest / w) - dy and x = (rest mod w) - dx in
      if y >= 0 && y < h && x >= 0 && x < w then Tensor.get img [| ch; y; x |]
      else 0.)

let brightness b img =
  check "brightness" img;
  Tensor.map (fun v -> clamp01 (v +. b)) img

let contrast f img =
  check "contrast" img;
  let m = Tensor.mean img in
  Tensor.map (fun v -> clamp01 (m +. (f *. (v -. m)))) img

let apply g policy img =
  let img =
    if policy.hflip_prob > 0. && Prng.uniform g < policy.hflip_prob then
      hflip img
    else img
  in
  let img =
    if policy.max_shift > 0 then begin
      let dy = Prng.int_in g (-policy.max_shift) policy.max_shift in
      let dx = Prng.int_in g (-policy.max_shift) policy.max_shift in
      if dy = 0 && dx = 0 then img else shift ~dy ~dx img
    end
    else img
  in
  let img =
    if policy.brightness_jitter > 0. then
      brightness
        (Prng.float_in g (-.policy.brightness_jitter) policy.brightness_jitter)
        img
    else img
  in
  if policy.contrast_jitter > 0. then
    contrast
      (Prng.float_in g (1. -. policy.contrast_jitter)
         (1. +. policy.contrast_jitter))
      img
  else img

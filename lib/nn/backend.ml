(* Plan compiler: translate a trained [Network.t] once into a flat list
   of backend kernel steps — weights converted to backend storage up
   front via [B.of_tensor], conv→norm→relu collapsed into the fused
   conv epilogue where the backend allows ([B.fuse]) and the layer graph
   has the adjacency — then run the plan on whole batches without
   touching the [Layer] representation again.

   [Make (Tensor_boxed)] reproduces [Network.scores_batch] bit-for-bit
   (same kernels, same order); [Make (Tensor_f32)] is the float32
   Bigarray engine, equal under the tolerance policy ([score_tol]). *)

let score_tol = 1e-4

type kind = Boxed | F32

let kind_name = function Boxed -> "boxed" | F32 -> "f32"

let kind_of_string = function
  | "boxed" -> Some Boxed
  | "f32" -> Some F32
  | _ -> None

let all_kinds = [ Boxed; F32 ]

module Make (B : Tensor_sig.S) = struct
  type step =
    | Conv of {
        stride : int;
        pad : int;
        weight : B.t;
        bias : B.t;
        norm : (B.t * B.t * float) option;
        relu : bool;
      }
    | Dense of { weight : B.t; bias : B.t }
    | Relu
    | Max_pool of { size : int; stride : int }
    | Avg_pool of { size : int; stride : int }
    | Global_avg_pool
    | Flatten
    | Norm of { gamma : B.t; beta : B.t }
    | Residual of { body : step list; projection : step list option }
    | Inception of step list list
    | Dense_block of step list list

  type plan = { net_name : string; steps : step list }

  let backend_name = B.name
  let exact = B.exact

  let rec steps_of_layer l =
    match Layer.view l with
    | Layer.V_seq layers -> List.concat_map steps_of_layer layers
    | Layer.V_conv { stride; pad; weight; bias } ->
        [
          Conv
            {
              stride;
              pad;
              weight = B.of_tensor weight;
              bias = B.of_tensor bias;
              norm = None;
              relu = false;
            };
        ]
    | Layer.V_dense { weight; bias } ->
        [ Dense { weight = B.of_tensor weight; bias = B.of_tensor bias } ]
    | Layer.V_relu -> [ Relu ]
    | Layer.V_max_pool { size; stride } -> [ Max_pool { size; stride } ]
    | Layer.V_avg_pool { size; stride } -> [ Avg_pool { size; stride } ]
    | Layer.V_global_avg_pool -> [ Global_avg_pool ]
    | Layer.V_flatten -> [ Flatten ]
    | Layer.V_norm { gamma; beta } ->
        [ Norm { gamma = B.of_tensor gamma; beta = B.of_tensor beta } ]
    | Layer.V_residual { body; projection } ->
        [
          Residual
            {
              body = steps_of_layer body;
              projection = Option.map steps_of_layer projection;
            };
        ]
    | Layer.V_inception branches ->
        [ Inception (List.map steps_of_layer branches) ]
    | Layer.V_dense_block convs ->
        [ Dense_block (List.map steps_of_layer convs) ]

  (* Fusion: conv;norm;relu / conv;norm / conv;relu collapse into the
     conv step's epilogue.  Only when the backend opts in — the result
     must equal the unfused composition exactly, a property
     [test_backend] pins per backend. *)
  let rec fuse_list = function
    | Conv ({ norm = None; relu = false; _ } as c)
      :: Norm { gamma; beta }
      :: Relu :: tl ->
        Conv { c with norm = Some (gamma, beta, Layer.norm_eps); relu = true }
        :: fuse_list tl
    | Conv ({ norm = None; relu = false; _ } as c) :: Norm { gamma; beta } :: tl
      ->
        Conv { c with norm = Some (gamma, beta, Layer.norm_eps) } :: fuse_list tl
    | Conv ({ relu = false; _ } as c) :: Relu :: tl ->
        Conv { c with relu = true } :: fuse_list tl
    | s :: tl -> fuse_step s :: fuse_list tl
    | [] -> []

  and fuse_step = function
    | Residual { body; projection } ->
        Residual
          { body = fuse_list body; projection = Option.map fuse_list projection }
    | Inception branches -> Inception (List.map fuse_list branches)
    | Dense_block convs -> Dense_block (List.map fuse_list convs)
    | s -> s

  let compile (net : Network.t) =
    let steps = steps_of_layer net.Network.stack in
    let steps = if B.fuse then fuse_list steps else steps in
    { net_name = net.Network.name; steps }

  let rec run ?pool steps x =
    List.fold_left (fun acc s -> run_step ?pool s acc) x steps

  and run_step ?pool s x =
    match s with
    | Conv { stride; pad; weight; bias; norm; relu } ->
        B.conv2d_batch ?pool ~stride ~pad ~weight ~bias ?norm ~relu x
    | Dense { weight; bias } -> B.dense_batch ~weight ~bias x
    | Relu -> B.relu x
    | Max_pool { size; stride } -> B.max_pool2d_batch ~stride ~size x
    | Avg_pool { size; stride } -> B.avg_pool2d_batch ~stride ~size x
    | Global_avg_pool -> B.global_avg_pool_batch x
    | Flatten ->
        let s = B.shape x in
        let n = s.(0) and total = Array.fold_left ( * ) 1 s in
        B.reshape x [| n; total / n |]
    | Norm { gamma; beta } ->
        B.channel_norm_batch ~gamma ~beta ~eps:Layer.norm_eps x
    | Residual { body; projection } ->
        let skip =
          match projection with None -> x | Some p -> run ?pool p x
        in
        B.add (run ?pool body x) skip
    | Inception branches ->
        B.concat_channels_batch (List.map (fun b -> run ?pool b x) branches)
    | Dense_block convs ->
        List.fold_left
          (fun feat conv ->
            B.concat_channels_batch [ feat; run ?pool conv feat ])
          x convs

  let forward ?pool plan x =
    Telemetry.Trace.span "backend.forward_batch" ~cat:"tensor"
      ~args:(fun () ->
        [
          ("backend", Telemetry.Trace.Str B.name);
          ("net", Telemetry.Trace.Str plan.net_name);
        ])
      (fun () -> run ?pool plan.steps x)

  let logits_batch ?pool plan xs =
    B.to_tensor (forward ?pool plan (B.of_tensor xs))

  let scores_batch ?pool plan xs =
    B.to_tensor (B.softmax_rows (forward ?pool plan (B.of_tensor xs)))
end

module Boxed_engine = Make (Tensor_boxed)
module F32_engine = Make (Tensor_f32)

(** Training-time data augmentation for CHW color images.

    The paper's classifiers are trained with standard augmentation
    (flips, shifts, color jitter); this module provides the same
    transforms for the synthetic datasets.  All transforms keep values in
    [0, 1] and never change the tensor shape. *)

type policy = {
  hflip_prob : float;  (** horizontal mirror probability *)
  max_shift : int;  (** uniform shift in [-max_shift, max_shift] per axis,
                        zero-padded *)
  brightness_jitter : float;
      (** additive offset drawn from [[-b, b]]; 0 disables *)
  contrast_jitter : float;
      (** multiplicative factor drawn from [[1-c, 1+c]] around the mean;
          0 disables *)
}

val none : policy
(** The identity policy. *)

val standard : policy
(** hflip 0.5, shift 2, brightness 0.1, contrast 0.1 — the usual
    CIFAR-style recipe. *)

val hflip : Tensor.t -> Tensor.t
val shift : dy:int -> dx:int -> Tensor.t -> Tensor.t
val brightness : float -> Tensor.t -> Tensor.t
(** [brightness b img] adds [b] and clamps. *)

val contrast : float -> Tensor.t -> Tensor.t
(** [contrast f img] scales deviations from the image mean by [f] and
    clamps. *)

val apply : Prng.t -> policy -> Tensor.t -> Tensor.t
(** Sample and apply one random augmentation per the policy. *)

exception Format_error of string

let magic = "oppsla-weights v1"

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let write oc net =
  let params = Network.params net in
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "network %s\n" net.Network.name;
  Printf.fprintf oc "params %d\n" (List.length params);
  List.iter
    (fun (p : Param.t) ->
      Printf.fprintf oc "%s %d\n" p.name (Param.count p);
      let n = Tensor.numel p.value in
      for i = 0 to n - 1 do
        if i > 0 then output_char oc ' ';
        Printf.fprintf oc "%.17g" (Tensor.get_flat p.value i)
      done;
      output_char oc '\n')
    params

let input_line_exn ic what =
  try input_line ic with End_of_file -> fail "unexpected end of file (%s)" what

let read ic net =
  let header = input_line_exn ic "magic" in
  if header <> magic then fail "bad magic: %S" header;
  (match String.split_on_char ' ' (input_line_exn ic "network name") with
  | [ "network"; name ] ->
      if name <> net.Network.name then
        fail "weights are for network %S, not %S" name net.Network.name
  | _ -> fail "malformed network line");
  let params = Network.params net in
  (match String.split_on_char ' ' (input_line_exn ic "param count") with
  | [ "params"; n ] ->
      let n = try int_of_string n with Failure _ -> fail "bad param count" in
      if n <> List.length params then
        fail "file has %d params, network has %d" n (List.length params)
  | _ -> fail "malformed params line");
  List.iter
    (fun (p : Param.t) ->
      (match String.split_on_char ' ' (input_line_exn ic "param header") with
      | [ name; count ] ->
          if name <> p.name then
            fail "expected param %S, file has %S" p.name name;
          let count =
            try int_of_string count with Failure _ -> fail "bad size for %S" name
          in
          if count <> Param.count p then
            fail "param %S: file has %d values, tensor needs %d" name count
              (Param.count p)
      | _ -> fail "malformed param header");
      let line = input_line_exn ic ("values of " ^ p.name) in
      let values =
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s ->
               try float_of_string s
               with Failure _ -> fail "bad float %S in %S" s p.name)
      in
      if List.length values <> Param.count p then
        fail "param %S: %d values on line, expected %d" p.name
          (List.length values) (Param.count p);
      List.iteri (fun i v -> Tensor.set_flat p.value i v) values)
    params

let save path net =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc net)

let load path net =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic net)

(* Input sizes must be divisible by 4: each architecture downsamples twice
   with stride-2 max pooling before the final flatten+dense head.  The
   heads are dense (not global-average-pooled) on purpose: a single-pixel
   perturbation must be able to reach the logits with enough magnitude for
   one-pixel attacks to exist, mirroring the brittleness of the paper's
   full-size classifiers. *)

let check_size name image_size =
  if image_size < 8 || image_size mod 4 <> 0 then
    invalid_arg
      (Printf.sprintf "Zoo.%s: image_size must be >= 8 and divisible by 4" name)

let head g ~channels ~image_size ~num_classes =
  let spatial = image_size / 4 in
  [
    Layer.flatten ();
    Layer.dense g ~in_dim:(channels * spatial * spatial) ~out_dim:num_classes ();
  ]

let vgg_tiny g ~image_size ~num_classes =
  check_size "vgg_tiny" image_size;
  Network.create ~name:"vgg_tiny" ~input_shape:[| 3; image_size; image_size |]
    ~num_classes
    ([
       Layer.conv2d g ~pad:1 ~in_c:3 ~out_c:8 ~k:3 ();
       Layer.channel_norm ~channels:8;
       Layer.relu ();
       Layer.max_pool ~size:2 ();
       Layer.conv2d g ~pad:1 ~in_c:8 ~out_c:16 ~k:3 ();
       Layer.channel_norm ~channels:16;
       Layer.relu ();
       Layer.max_pool ~size:2 ();
       Layer.conv2d g ~pad:1 ~in_c:16 ~out_c:16 ~k:3 ();
       Layer.relu ();
     ]
    @ head g ~channels:16 ~image_size ~num_classes)

let resnet_tiny g ~image_size ~num_classes =
  check_size "resnet_tiny" image_size;
  let block_same =
    Layer.residual
      [
        Layer.conv2d g ~pad:1 ~in_c:8 ~out_c:8 ~k:3 ();
        Layer.relu ();
        Layer.conv2d g ~pad:1 ~in_c:8 ~out_c:8 ~k:3 ();
      ]
  in
  let block_widen =
    Layer.residual
      ~projection:(Layer.conv2d g ~in_c:8 ~out_c:16 ~k:1 ())
      [
        Layer.conv2d g ~pad:1 ~in_c:8 ~out_c:16 ~k:3 ();
        Layer.relu ();
        Layer.conv2d g ~pad:1 ~in_c:16 ~out_c:16 ~k:3 ();
      ]
  in
  Network.create ~name:"resnet_tiny"
    ~input_shape:[| 3; image_size; image_size |] ~num_classes
    ([
       Layer.conv2d g ~pad:1 ~in_c:3 ~out_c:8 ~k:3 ();
       Layer.relu ();
       Layer.max_pool ~size:2 ();
       block_same;
       Layer.relu ();
       block_widen;
       Layer.relu ();
       Layer.max_pool ~size:2 ();
     ]
    @ head g ~channels:16 ~image_size ~num_classes)

let googlenet_tiny g ~image_size ~num_classes =
  check_size "googlenet_tiny" image_size;
  let module1 =
    Layer.inception
      [
        [ Layer.conv2d g ~in_c:8 ~out_c:4 ~k:1 () ];
        [ Layer.conv2d g ~pad:1 ~in_c:8 ~out_c:4 ~k:3 () ];
        [ Layer.conv2d g ~pad:2 ~in_c:8 ~out_c:4 ~k:5 () ];
      ]
  in
  let module2 =
    Layer.inception
      [
        [ Layer.conv2d g ~in_c:12 ~out_c:6 ~k:1 () ];
        [ Layer.conv2d g ~pad:1 ~in_c:12 ~out_c:6 ~k:3 () ];
        [ Layer.conv2d g ~pad:2 ~in_c:12 ~out_c:4 ~k:5 () ];
      ]
  in
  Network.create ~name:"googlenet_tiny"
    ~input_shape:[| 3; image_size; image_size |] ~num_classes
    ([
       Layer.conv2d g ~pad:1 ~in_c:3 ~out_c:8 ~k:3 ();
       Layer.relu ();
       Layer.max_pool ~size:2 ();
       module1;
       Layer.relu ();
       Layer.max_pool ~size:2 ();
       module2;
       Layer.relu ();
     ]
    @ head g ~channels:16 ~image_size ~num_classes)

let densenet_tiny g ~image_size ~num_classes =
  check_size "densenet_tiny" image_size;
  Network.create ~name:"densenet_tiny"
    ~input_shape:[| 3; image_size; image_size |] ~num_classes
    ([
       Layer.conv2d g ~pad:1 ~in_c:3 ~out_c:8 ~k:3 ();
       Layer.relu ();
       Layer.max_pool ~size:2 ();
       Layer.dense_block g ~in_c:8 ~growth:4 ~layers:3 ();
       Layer.channel_norm ~channels:20;
       Layer.relu ();
       (* Transition: 1x1 compression then downsample. *)
       Layer.conv2d g ~in_c:20 ~out_c:16 ~k:1 ();
       Layer.relu ();
       Layer.max_pool ~size:2 ();
     ]
    @ head g ~channels:16 ~image_size ~num_classes)

let resnet50_tiny g ~image_size ~num_classes =
  check_size "resnet50_tiny" image_size;
  let bottleneck ~in_c ~mid ~out_c ~project =
    let body =
      [
        Layer.conv2d g ~in_c ~out_c:mid ~k:1 ();
        Layer.relu ();
        Layer.conv2d g ~pad:1 ~in_c:mid ~out_c:mid ~k:3 ();
        Layer.relu ();
        Layer.conv2d g ~in_c:mid ~out_c ~k:1 ();
      ]
    in
    if project then
      Layer.residual ~projection:(Layer.conv2d g ~in_c ~out_c ~k:1 ()) body
    else Layer.residual body
  in
  Network.create ~name:"resnet50_tiny"
    ~input_shape:[| 3; image_size; image_size |] ~num_classes
    ([
       Layer.conv2d g ~pad:1 ~in_c:3 ~out_c:8 ~k:3 ();
       Layer.relu ();
       Layer.max_pool ~size:2 ();
       bottleneck ~in_c:8 ~mid:4 ~out_c:16 ~project:true;
       Layer.relu ();
       bottleneck ~in_c:16 ~mid:8 ~out_c:16 ~project:false;
       Layer.relu ();
       Layer.max_pool ~size:2 ();
     ]
    @ head g ~channels:16 ~image_size ~num_classes)

let names =
  [ "vgg_tiny"; "resnet_tiny"; "googlenet_tiny"; "densenet_tiny"; "resnet50_tiny" ]

let by_name = function
  | "vgg_tiny" -> Some vgg_tiny
  | "resnet_tiny" -> Some resnet_tiny
  | "googlenet_tiny" -> Some googlenet_tiny
  | "densenet_tiny" -> Some densenet_tiny
  | "resnet50_tiny" -> Some resnet50_tiny
  | _ -> None

type confusion = { classes : int; counts : int array array }

let confusion_matrix net samples =
  if Array.length samples = 0 then
    invalid_arg "Metrics.confusion_matrix: empty sample set";
  let classes = net.Network.num_classes in
  let counts = Array.make_matrix classes classes 0 in
  Array.iter
    (fun (x, truth) ->
      if truth < 0 || truth >= classes then
        invalid_arg
          (Printf.sprintf "Metrics.confusion_matrix: label %d out of range"
             truth);
      let predicted = Network.classify net x in
      counts.(truth).(predicted) <- counts.(truth).(predicted) + 1)
    samples;
  { classes; counts }

let accuracy_of_confusion { classes; counts } =
  let correct = ref 0 and total = ref 0 in
  for t = 0 to classes - 1 do
    for p = 0 to classes - 1 do
      total := !total + counts.(t).(p);
      if t = p then correct := !correct + counts.(t).(p)
    done
  done;
  float_of_int !correct /. float_of_int !total

let per_class_accuracy { classes; counts } =
  Array.init classes (fun t ->
      let row_total = Array.fold_left ( + ) 0 counts.(t) in
      if row_total = 0 then nan
      else float_of_int counts.(t).(t) /. float_of_int row_total)

let most_confused { classes; counts } =
  let best = ref None in
  for t = 0 to classes - 1 do
    for p = 0 to classes - 1 do
      if t <> p && counts.(t).(p) > 0 then
        match !best with
        | Some (_, _, c) when c >= counts.(t).(p) -> ()
        | _ -> best := Some (t, p, counts.(t).(p))
    done
  done;
  !best

let top_k_accuracy ~k net samples =
  if k < 1 then invalid_arg "Metrics.top_k_accuracy: k < 1";
  if Array.length samples = 0 then
    invalid_arg "Metrics.top_k_accuracy: empty sample set";
  let hits = ref 0 in
  Array.iter
    (fun (x, truth) ->
      let logits = Network.logits net x in
      let truth_score = Tensor.get_flat logits truth in
      (* The true class is in the top k iff fewer than k classes score
         strictly higher. *)
      let higher = ref 0 in
      for c = 0 to Tensor.numel logits - 1 do
        if Tensor.get_flat logits c > truth_score then incr higher
      done;
      if !higher < k then incr hits)
    samples;
  float_of_int !hits /. float_of_int (Array.length samples)

let pp_confusion ?class_names fmt { classes; counts } =
  let name t =
    match class_names with
    | Some names when t < Array.length names -> names.(t)
    | Some _ | None -> Printf.sprintf "class %d" t
  in
  let label_width =
    let widest = ref 0 in
    for t = 0 to classes - 1 do
      widest := max !widest (String.length (name t))
    done;
    !widest
  in
  Format.fprintf fmt "%*s" label_width "";
  for p = 0 to classes - 1 do
    Format.fprintf fmt " %4d" p
  done;
  Format.pp_print_newline fmt ();
  for t = 0 to classes - 1 do
    Format.fprintf fmt "%*s" label_width (name t);
    for p = 0 to classes - 1 do
      Format.fprintf fmt " %4d" counts.(t).(p)
    done;
    Format.pp_print_newline fmt ()
  done

(** Image classifiers: a named stack of layers mapping a CHW image to a
    class-score vector.

    This is the concrete implementation of the paper's classifier
    [N : [0,1]^(d1 x d2 x 3) -> R^c].  Attack code never touches this module
    directly; it goes through {!Oracle} (black-box access with query
    accounting). *)

type t = {
  name : string;
  input_shape : int array; (* [| 3; h; w |] *)
  num_classes : int;
  stack : Layer.t;
}

val create :
  name:string -> input_shape:int array -> num_classes:int -> Layer.t list -> t
(** Validates at construction time (via {!Layer.output_shape}) that the
    stack maps [input_shape] to [[| num_classes |]]; raises
    [Invalid_argument] otherwise, naming the offending layer. *)

val logits : t -> Tensor.t -> Tensor.t
(** Inference-mode forward pass (no caches retained). *)

val scores : t -> Tensor.t -> Tensor.t
(** [softmax (logits t x)]: the paper's score vector [N(x)]. *)

val classify : t -> Tensor.t -> int
(** [argmax (logits t x)]. *)

val forward_train : t -> Tensor.t -> Tensor.t
(** Caching forward pass for training. *)

val backward : t -> Tensor.t -> Tensor.t
(** Backpropagate a logits-gradient; accumulates parameter gradients. *)

val params : t -> Param.t list
val param_count : t -> int

val accuracy : t -> (Tensor.t * int) array -> float
(** Fraction of (image, label) pairs classified correctly. *)

val describe : t -> string
(** Multi-line architecture summary. *)

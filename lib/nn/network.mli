(** Image classifiers: a named stack of layers mapping a CHW image to a
    class-score vector.

    This is the concrete implementation of the paper's classifier
    [N : [0,1]^(d1 x d2 x 3) -> R^c].  Attack code never touches this module
    directly; it goes through {!Oracle} (black-box access with query
    accounting). *)

type t = {
  name : string;
  input_shape : int array; (* [| 3; h; w |] *)
  num_classes : int;
  stack : Layer.t;
}

val create :
  name:string -> input_shape:int array -> num_classes:int -> Layer.t list -> t
(** Validates at construction time (via {!Layer.output_shape}) that the
    stack maps [input_shape] to [[| num_classes |]]; raises
    [Invalid_argument] otherwise, naming the offending layer. *)

val logits : t -> Tensor.t -> Tensor.t
(** Inference-mode forward pass (no caches retained).  Delegates to
    {!logits_batch} at width 1, so single-image and batched inference
    share one engine. *)

val scores : t -> Tensor.t -> Tensor.t
(** [softmax (logits t x)]: the paper's score vector [N(x)]. *)

val classify : t -> Tensor.t -> int
(** [argmax (logits t x)]. *)

val logits_batch : t -> Tensor.t -> Tensor.t
(** [logits_batch t xs] for [xs : [|n; c; h; w|]] is [[|n; classes|]]:
    one im2col+GEMM forward pass for the whole batch, sharing the patch
    scratch matrix across images.  Row [i] is bit-equal to
    [logits t] of image [i] for every batch width. *)

val scores_batch : t -> Tensor.t -> Tensor.t
(** [softmax] of each {!logits_batch} row ([[|n; classes|]]), row [i]
    bit-equal to [scores t] of image [i]. *)

val logits_direct : t -> Tensor.t -> Tensor.t
(** Legacy single-image forward pass over the direct (non-GEMM)
    convolution loops — the baseline the batched engine is benchmarked
    and differentially tested against. *)

val scores_direct : t -> Tensor.t -> Tensor.t
(** [softmax (logits_direct t x)]. *)

val clear_caches : t -> unit
(** Drop every layer's cached training intermediates (see
    {!Layer.clear_caches}); called by {!Train.fit} before handing a
    trained network to inference-only workloads. *)

val forward_train : t -> Tensor.t -> Tensor.t
(** Caching forward pass for training. *)

val backward : t -> Tensor.t -> Tensor.t
(** Backpropagate a logits-gradient; accumulates parameter gradients. *)

val params : t -> Param.t list
val param_count : t -> int

val accuracy : t -> (Tensor.t * int) array -> float
(** Fraction of (image, label) pairs classified correctly. *)

val describe : t -> string
(** Multi-line architecture summary. *)

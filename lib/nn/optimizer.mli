(** First-order optimizers over {!Param.t} lists.

    The usual protocol per minibatch: zero all gradients, accumulate
    per-sample gradients via the layers' backward passes, then call
    {!step} once (gradients are averaged by the caller, see {!Train}). *)

type t

val sgd : ?momentum:float -> ?weight_decay:float -> lr:float -> unit -> t
(** Stochastic gradient descent with classical momentum and decoupled L2
    weight decay.  Defaults: [momentum = 0.9], [weight_decay = 0.]. *)

val adam :
  ?beta1:float -> ?beta2:float -> ?eps:float -> ?weight_decay:float ->
  lr:float -> unit -> t
(** Adam (Kingma & Ba, 2015) with bias correction.  Defaults:
    [beta1 = 0.9], [beta2 = 0.999], [eps = 1e-8], [weight_decay = 0.]. *)

val step : t -> Param.t list -> unit
(** Apply one update using the gradients currently stored in each param.
    Optimizer state (momentum / moment estimates) is keyed by the physical
    identity of each parameter, so the same optimizer value must be reused
    across steps. *)

val set_lr : t -> float -> unit
(** Adjust the learning rate (for schedules). *)

val lr : t -> float

type t = {
  name : string;
  input_shape : int array;
  num_classes : int;
  stack : Layer.t;
}

let create ~name ~input_shape ~num_classes layers =
  let stack = Layer.sequential layers in
  let out =
    try Layer.output_shape stack input_shape
    with Invalid_argument msg ->
      invalid_arg (Printf.sprintf "Network.create(%s): %s" name msg)
  in
  if out <> [| num_classes |] then
    invalid_arg
      (Printf.sprintf
         "Network.create(%s): stack produces shape [%s], expected [%d]" name
         (String.concat "; " (Array.to_list (Array.map string_of_int out)))
         num_classes);
  { name; input_shape = Array.copy input_shape; num_classes; stack }

(* Legacy single-image path: direct scalar convolution loops.  Kept as
   the baseline the batched GEMM engine is benchmarked and differentially
   tested against. *)
let logits_direct t x = Layer.forward ~train:false t.stack x
let scores_direct t x = Tensor.softmax (logits_direct t x)

let logits_batch t xs =
  if Tensor.ndim xs <> 4 then
    invalid_arg "Network.logits_batch: expected an NCHW batch";
  Telemetry.Trace.span "network.forward_batch" ~cat:"nn"
    ~args:(fun () ->
      [
        ("net", Telemetry.Trace.Str t.name);
        ("n", Telemetry.Trace.Int (Tensor.dim xs 0));
      ])
    (fun () -> Layer.forward_batch t.stack xs)

(* Row-wise softmax with the exact operation order of [Tensor.softmax]
   (max, exp-shift, sum, scale by 1/z) so each row is bit-equal to the
   single-image score vector. *)
let scores_batch t xs = Tensor.softmax_rows (logits_batch t xs)

(* Single-image inference delegates to the batched engine at width 1, so
   the whole system exercises one forward-pass implementation. *)
let batch_of_one x =
  if Tensor.ndim x <> 3 then
    invalid_arg "Network: single-image inference expects a CHW image";
  let s = Tensor.shape x in
  Tensor.reshape x [| 1; s.(0); s.(1); s.(2) |]

let logits t x =
  Tensor.reshape (logits_batch t (batch_of_one x)) [| t.num_classes |]

let scores t x =
  Tensor.reshape (scores_batch t (batch_of_one x)) [| t.num_classes |]

let classify t x = Tensor.argmax (logits t x)
let clear_caches t = Layer.clear_caches t.stack
let forward_train t x = Layer.forward ~train:true t.stack x
let backward t dlogits = Layer.backward t.stack dlogits
let params t = Layer.params t.stack

let param_count t =
  List.fold_left (fun acc p -> acc + Param.count p) 0 (params t)

let accuracy t samples =
  if Array.length samples = 0 then invalid_arg "Network.accuracy: no samples";
  let correct = ref 0 in
  Array.iter
    (fun (x, label) -> if classify t x = label then incr correct)
    samples;
  float_of_int !correct /. float_of_int (Array.length samples)

let describe t =
  Printf.sprintf "%s: input=[%s] classes=%d params=%d\n  %s" t.name
    (String.concat "; "
       (Array.to_list (Array.map string_of_int t.input_shape)))
    t.num_classes (param_count t)
    (Layer.describe t.stack)

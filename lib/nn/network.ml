type t = {
  name : string;
  input_shape : int array;
  num_classes : int;
  stack : Layer.t;
}

let create ~name ~input_shape ~num_classes layers =
  let stack = Layer.sequential layers in
  let out =
    try Layer.output_shape stack input_shape
    with Invalid_argument msg ->
      invalid_arg (Printf.sprintf "Network.create(%s): %s" name msg)
  in
  if out <> [| num_classes |] then
    invalid_arg
      (Printf.sprintf
         "Network.create(%s): stack produces shape [%s], expected [%d]" name
         (String.concat "; " (Array.to_list (Array.map string_of_int out)))
         num_classes);
  { name; input_shape = Array.copy input_shape; num_classes; stack }

let logits t x = Layer.forward ~train:false t.stack x
let scores t x = Tensor.softmax (logits t x)
let classify t x = Tensor.argmax (logits t x)
let forward_train t x = Layer.forward ~train:true t.stack x
let backward t dlogits = Layer.backward t.stack dlogits
let params t = Layer.params t.stack

let param_count t =
  List.fold_left (fun acc p -> acc + Param.count p) 0 (params t)

let accuracy t samples =
  if Array.length samples = 0 then invalid_arg "Network.accuracy: no samples";
  let correct = ref 0 in
  Array.iter
    (fun (x, label) -> if classify t x = label then incr correct)
    samples;
  float_of_int !correct /. float_of_int (Array.length samples)

let describe t =
  Printf.sprintf "%s: input=[%s] classes=%d params=%d\n  %s" t.name
    (String.concat "; "
       (Array.to_list (Array.map string_of_int t.input_shape)))
    t.num_classes (param_count t)
    (Layer.describe t.stack)

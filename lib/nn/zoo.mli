(** Model zoo: the five classifier architectures used in the paper's
    evaluation, scaled to the synthetic datasets (see DESIGN.md §2).

    Each constructor is a tiny but architecturally faithful analogue of
    its namesake:
    - {!vgg_tiny}: plain conv + channel-norm stacks (VGG-16-BN);
    - {!resnet_tiny}: residual blocks with identity and projection skips
      (ResNet18);
    - {!googlenet_tiny}: inception modules with parallel 1x1/3x3/5x5
      branches (GoogLeNet);
    - {!densenet_tiny}: densely connected blocks (DenseNet121);
    - {!resnet50_tiny}: bottleneck (1x1 -> 3x3 -> 1x1) residual blocks
      (ResNet50).

    All constructors take the RNG used for weight initialization, the
    square input image size, and the class count, so the same architecture
    can serve both dataset regimes. *)

val vgg_tiny : Prng.t -> image_size:int -> num_classes:int -> Network.t
val resnet_tiny : Prng.t -> image_size:int -> num_classes:int -> Network.t
val googlenet_tiny : Prng.t -> image_size:int -> num_classes:int -> Network.t
val densenet_tiny : Prng.t -> image_size:int -> num_classes:int -> Network.t
val resnet50_tiny : Prng.t -> image_size:int -> num_classes:int -> Network.t

val by_name :
  string -> (Prng.t -> image_size:int -> num_classes:int -> Network.t) option
(** Look up a constructor by its network name (e.g. ["vgg_tiny"]). *)

val names : string list
(** All zoo architecture names, in a stable order. *)

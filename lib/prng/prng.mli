(** Deterministic pseudo-random number generation.

    Every source of randomness in this repository flows through this module
    so that experiments are reproducible bit-for-bit.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit counter-based
    generator with a strong output mixer.  It is splittable, which lets us
    derive independent named streams (e.g. one for dataset generation, one
    for network initialization, one for the synthesizer) from a single root
    seed without any cross-stream correlation in practice. *)

type t
(** A mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of the rest of [g]'s stream. *)

val named_stream : t -> string -> t
(** [named_stream g name] derives a generator from [g]'s root whose stream
    depends only on [g]'s original seed and [name] (not on how many numbers
    were drawn from [g]).  Use it to give subsystems stable, order-independent
    randomness. *)

val copy : t -> t
(** [copy g] duplicates the current state; both generators then produce the
    same future stream. *)

val save : t -> string
(** [save g] serializes the complete generator identity (current position
    and root seed) to a single printable token, for embedding in
    checkpoint files.  [restore (save g)] produces a generator whose
    future stream — including streams later derived via {!named_stream} —
    is bit-identical to [g]'s. *)

val restore : string -> t
(** Inverse of {!save}.  Raises [Invalid_argument] on a token that [save]
    did not produce. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits64 : t -> int64
(** Alias of {!next_int64}. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  Raises [Invalid_argument] if
    [n <= 0].  Uses rejection sampling, so it is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.  Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)].  [x] must be positive. *)

val uniform : t -> float
(** [uniform g] is uniform in [\[0, 1)]. *)

val float_in : t -> float -> float -> float
(** [float_in g lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val normal : t -> ?mu:float -> ?sigma:float -> unit -> float
(** [normal g ~mu ~sigma ()] samples a Gaussian via the Box-Muller
    transform.  Defaults: [mu = 0.], [sigma = 1.]. *)

val choice : t -> 'a array -> 'a
(** [choice g a] picks a uniform element.  Raises [Invalid_argument] on an
    empty array. *)

val choice_list : t -> 'a list -> 'a
(** [choice_list g l] picks a uniform element.  Raises [Invalid_argument] on
    an empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val shuffle : t -> 'a array -> 'a array
(** Pure variant of {!shuffle_in_place}: the input array is not modified. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement g k a] draws [k] distinct elements.  Raises
    [Invalid_argument] if [k < 0] or [k > Array.length a]. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform permutation of [0 .. n-1]. *)

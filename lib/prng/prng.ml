(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast Splittable
   Pseudorandom Number Generators", OOPSLA 2014.  The state is a single
   64-bit counter advanced by the golden-gamma constant; outputs are
   produced by a variant of the MurmurHash3 finalizer. *)

type t = { mutable state : int64; root : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = seed; root = seed }
let of_int seed = create (Int64.of_int seed)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let bits64 = next_int64

let split g =
  let seed = next_int64 g in
  (* A second mix decorrelates the child stream from the parent outputs. *)
  create (mix64 seed)

(* Hash a string with FNV-1a folded into the root seed, so the derived
   stream depends only on (root, name). *)
let named_stream g name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  create (mix64 (Int64.logxor g.root !h))

let copy g = { state = g.state; root = g.root }

(* Serialization for checkpoint files: the full generator identity is the
   (state, root) pair, printed as fixed-width hex behind a format tag so a
   future layout change can be detected instead of misparsed. *)
let save g = Printf.sprintf "splitmix64:%016Lx:%016Lx" g.state g.root

let restore s =
  let fail () = invalid_arg ("Prng.restore: malformed state " ^ String.escaped s) in
  match String.split_on_char ':' s with
  | [ "splitmix64"; state; root ]
    when String.length state = 16 && String.length root = 16 -> (
      let parse h =
        match Int64.of_string_opt ("0x" ^ h) with
        | Some v -> v
        | None -> fail ()
      in
      { state = parse state; root = parse root })
  | _ -> fail ()

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits keeps the draw exactly uniform. *)
  let bound = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (next_int64 g) 2 in
    let v = Int64.rem bits bound in
    if Int64.sub bits v > Int64.sub (Int64.sub Int64.max_int bound) 1L then
      draw ()
    else Int64.to_int v
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let uniform g =
  (* 53 uniformly random mantissa bits in [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float g x =
  if x <= 0. then invalid_arg "Prng.float: bound must be positive";
  uniform g *. x

let float_in g lo hi = lo +. (uniform g *. (hi -. lo))
let bool g = Int64.logand (next_int64 g) 1L = 1L

let normal g ?(mu = 0.) ?(sigma = 1.) () =
  let rec nonzero () =
    let u = uniform g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform g in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let choice g a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int g (Array.length a))

let choice_list g l =
  match l with
  | [] -> invalid_arg "Prng.choice_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle g a =
  let b = Array.copy a in
  shuffle_in_place g b;
  b

let sample_without_replacement g k a =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  let b = Array.copy a in
  for i = 0 to k - 1 do
    let j = int_in g i (n - 1) in
    let tmp = b.(i) in
    b.(i) <- b.(j);
    b.(j) <- tmp
  done;
  Array.sub b 0 k

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place g a;
  a

(** Procedural image datasets.

    The paper evaluates on CIFAR-10 and an 11-class ImageNet subset;
    neither can be loaded in this environment (see DESIGN.md §2), so we
    generate synthetic stand-ins.  Each class is a parametric pattern
    family (stripes, disks, checkerboards, ...) rendered with
    class-specific colors; instances vary by random phase, position,
    frequency and hue jitter, carry Gaussian pixel noise, and sometimes a
    faint overlay of another class's pattern.  The result is a dataset
    that small CNNs learn to ~85-95% accuracy while retaining
    boundary-adjacent images — the population one-pixel attacks feed on.

    All images are CHW tensors with values in [0, 1].  Generation is
    deterministic given the spec and seed. *)

type spec = {
  name : string;
  image_size : int;
  num_classes : int;
  class_names : string array;
  noise_sigma : float;
  distractor_prob : float;  (** probability of a faint cross-class overlay *)
}

val synth_cifar : spec
(** 10 classes, 16x16, CIFAR-10 stand-in. *)

val synth_imagenet : spec
(** 11 classes, 24x24, named after the paper's ImageNet training classes
    (great white shark, tiger shark, hammerhead, ...).  The image is 1.5x
    the CIFAR stand-in's side, preserving the paper's "much larger search
    space" regime (4608 vs 2048 location-perturbation pairs) at tractable
    cost. *)

val generate : spec -> Prng.t -> class_id:int -> Tensor.t
(** Render one instance of [class_id].  Raises [Invalid_argument] if the
    class is out of range. *)

val labelled : spec -> Prng.t -> class_id:int -> Tensor.t * int

val class_set : spec -> seed:int -> class_id:int -> n:int -> (Tensor.t * int) array
(** [n] instances of one class — the paper's per-class training sets.
    Depends only on [(spec, seed, class_id, n)]. *)

val balanced_set : spec -> seed:int -> per_class:int -> (Tensor.t * int) array
(** [per_class] instances of every class, grouped by class. *)

val train_test :
  spec -> seed:int -> train_per_class:int -> test_per_class:int ->
  (Tensor.t * int) array * (Tensor.t * int) array
(** Disjoint balanced train and test sets (the test stream is a distinct
    named PRNG stream, so enlarging the train set never changes test
    images). *)

val hsv_to_rgb : h:float -> s:float -> v:float -> float * float * float
(** Standard HSV to RGB conversion; [h] wraps modulo 1. *)

type spec = {
  name : string;
  image_size : int;
  num_classes : int;
  class_names : string array;
  noise_sigma : float;
  distractor_prob : float;
}

let synth_cifar =
  {
    name = "synth_cifar";
    image_size = 16;
    num_classes = 10;
    class_names =
      [|
        "airplane"; "automobile"; "bird"; "cat"; "deer"; "dog"; "frog";
        "horse"; "ship"; "truck";
      |];
    noise_sigma = 0.20;
    distractor_prob = 0.55;
  }

let synth_imagenet =
  {
    name = "synth_imagenet";
    image_size = 24;
    num_classes = 11;
    class_names =
      [|
        "great_white_shark"; "tiger_shark"; "hammerhead"; "electric_ray";
        "stingray"; "cock"; "hen"; "house_finch"; "junco"; "bulbul"; "jay";
      |];
    noise_sigma = 0.20;
    distractor_prob = 0.55;
  }

let hsv_to_rgb ~h ~s ~v =
  let h = h -. Float.of_int (int_of_float (Float.floor h)) in
  let h = if h < 0. then h +. 1. else h in
  let i = int_of_float (h *. 6.) mod 6 in
  let f = (h *. 6.) -. Float.of_int (int_of_float (h *. 6.)) in
  let p = v *. (1. -. s) in
  let q = v *. (1. -. (s *. f)) in
  let t = v *. (1. -. (s *. (1. -. f))) in
  match i with
  | 0 -> (v, t, p)
  | 1 -> (q, v, p)
  | 2 -> (p, v, t)
  | 3 -> (p, q, v)
  | 4 -> (t, p, v)
  | _ -> (v, p, q)

(* A pattern instance is a scalar mask over the image: 0 selects the
   background color, 1 the foreground.  Each class is assigned one pattern
   family; instance parameters are drawn per image. *)

type mask = y:float -> x:float -> float
(* Coordinates are normalized to [0, 1). *)

let smoothstep edge0 edge1 v =
  if v <= edge0 then 0.
  else if v >= edge1 then 1.
  else begin
    let t = (v -. edge0) /. (edge1 -. edge0) in
    t *. t *. (3. -. (2. *. t))
  end

let stripes g ~angle : mask =
  let freq = Prng.float_in g 2.5 4.5 in
  let phase = Prng.float g 1. in
  let ca = cos angle and sa = sin angle in
  fun ~y ~x ->
    let t = (ca *. x) +. (sa *. y) in
    0.5 +. (0.5 *. sin (2. *. Float.pi *. ((freq *. t) +. phase)))

let disk g : mask =
  let cx = Prng.float_in g 0.35 0.65 and cy = Prng.float_in g 0.35 0.65 in
  let r = Prng.float_in g 0.18 0.32 in
  fun ~y ~x ->
    let d = sqrt (((x -. cx) ** 2.) +. ((y -. cy) ** 2.)) in
    1. -. smoothstep (r -. 0.06) (r +. 0.06) d

let ring g : mask =
  let cx = Prng.float_in g 0.4 0.6 and cy = Prng.float_in g 0.4 0.6 in
  let r = Prng.float_in g 0.22 0.34 in
  let w = Prng.float_in g 0.05 0.1 in
  fun ~y ~x ->
    let d = sqrt (((x -. cx) ** 2.) +. ((y -. cy) ** 2.)) in
    1. -. smoothstep (w -. 0.03) (w +. 0.03) (Float.abs (d -. r))

let checkerboard g : mask =
  let cells = Float.of_int (Prng.int_in g 3 5) in
  let ox = Prng.float g 1. and oy = Prng.float g 1. in
  fun ~y ~x ->
    let cx = int_of_float (((x +. ox) *. cells) *. 2.) in
    let cy = int_of_float (((y +. oy) *. cells) *. 2.) in
    if (cx + cy) mod 2 = 0 then 1. else 0.

let blob g : mask =
  let cx = Prng.float_in g 0.2 0.8 and cy = Prng.float_in g 0.2 0.8 in
  let sigma = Prng.float_in g 0.12 0.22 in
  fun ~y ~x ->
    let d2 = ((x -. cx) ** 2.) +. ((y -. cy) ** 2.) in
    exp (-.d2 /. (2. *. sigma *. sigma))

let double_blob g : mask =
  let b1 = blob g and b2 = blob g in
  fun ~y ~x -> Float.min 1. (b1 ~y ~x +. b2 ~y ~x)

let sinusoid_product g : mask =
  let fy = Prng.float_in g 1.5 3.5 and fx = Prng.float_in g 1.5 3.5 in
  let py = Prng.float g 1. and px = Prng.float g 1. in
  fun ~y ~x ->
    let sy = sin (2. *. Float.pi *. ((fy *. y) +. py)) in
    let sx = sin (2. *. Float.pi *. ((fx *. x) +. px)) in
    0.5 +. (0.5 *. sy *. sx)

let cross g : mask =
  let cx = Prng.float_in g 0.3 0.7 and cy = Prng.float_in g 0.3 0.7 in
  let w = Prng.float_in g 0.08 0.15 in
  fun ~y ~x ->
    let near_v = 1. -. smoothstep (w -. 0.03) (w +. 0.03) (Float.abs (x -. cx)) in
    let near_h = 1. -. smoothstep (w -. 0.03) (w +. 0.03) (Float.abs (y -. cy)) in
    Float.max near_v near_h

let half_plane g : mask =
  let slope = Prng.float_in g (-1.2) 1.2 in
  let b = Prng.float_in g 0.2 0.8 in
  fun ~y ~x -> smoothstep (-0.06) 0.06 (y -. ((slope *. (x -. 0.5)) +. b))

let triangle g : mask =
  let cx = Prng.float_in g 0.35 0.65 and cy = Prng.float_in g 0.4 0.7 in
  let s = Prng.float_in g 0.25 0.4 in
  fun ~y ~x ->
    (* Upward triangle: inside when below the apex lines and above base. *)
    let dx = Float.abs (x -. cx) in
    let top = cy -. s and base = cy +. (s /. 2.) in
    if y > base || y < top then 0.
    else begin
      let frac = (y -. top) /. (base -. top) in
      if dx <= frac *. s *. 0.8 then 1. else 0.
    end

let pattern_for_class g class_id =
  match class_id mod 11 with
  | 0 -> stripes g ~angle:0.
  | 1 -> stripes g ~angle:(Float.pi /. 2.)
  | 2 -> stripes g ~angle:(Float.pi /. 4.)
  | 3 -> disk g
  | 4 -> checkerboard g
  | 5 -> ring g
  | 6 -> blob g
  | 7 -> sinusoid_product g
  | 8 -> cross g
  | 9 -> half_plane g
  | 10 -> double_blob g
  | _ -> triangle g (* unreachable: [mod 11] is in [0, 10] *)

let class_colors spec g class_id =
  let base_hue = Float.of_int class_id /. Float.of_int spec.num_classes in
  let hue = base_hue +. Prng.float_in g (-0.10) 0.10 in
  let fg = hsv_to_rgb ~h:hue ~s:(Prng.float_in g 0.6 0.9)
      ~v:(Prng.float_in g 0.7 0.95)
  in
  let bg = hsv_to_rgb ~h:(hue +. 0.5) ~s:(Prng.float_in g 0.2 0.45)
      ~v:(Prng.float_in g 0.25 0.5)
  in
  (fg, bg)

let clamp01 v = if v < 0. then 0. else if v > 1. then 1. else v

let generate spec g ~class_id =
  if class_id < 0 || class_id >= spec.num_classes then
    invalid_arg
      (Printf.sprintf "Dataset.generate(%s): class %d out of range [0, %d)"
        spec.name class_id spec.num_classes);
  let n = spec.image_size in
  let mask = pattern_for_class g class_id in
  let (fr, fgc, fb), (br, bgc, bb) = class_colors spec g class_id in
  let distractor =
    if Prng.uniform g < spec.distractor_prob then begin
      let other =
        (class_id + 1 + Prng.int g (spec.num_classes - 1)) mod spec.num_classes
      in
      let dmask = pattern_for_class g other in
      let strength = Prng.float_in g 0.25 0.5 in
      Some (dmask, strength)
    end
    else None
  in
  let img = Tensor.zeros [| 3; n; n |] in
  let inv = 1. /. Float.of_int n in
  for iy = 0 to n - 1 do
    for ix = 0 to n - 1 do
      let y = (Float.of_int iy +. 0.5) *. inv
      and x = (Float.of_int ix +. 0.5) *. inv in
      let m = mask ~y ~x in
      let m =
        match distractor with
        | None -> m
        | Some (dmask, strength) ->
            (* Blend a faint second structure in: pushes some instances
               toward another class's decision region. *)
            clamp01 (m +. (strength *. (dmask ~y ~x -. 0.5)))
      in
      let pixel ch fg bg =
        let v =
          bg +. (m *. (fg -. bg)) +. Prng.normal g ~sigma:spec.noise_sigma ()
        in
        Tensor.set img [| ch; iy; ix |] (clamp01 v)
      in
      pixel 0 fr br;
      pixel 1 fgc bgc;
      pixel 2 fb bb
    done
  done;
  img

let labelled spec g ~class_id = (generate spec g ~class_id, class_id)

let class_set spec ~seed ~class_id ~n =
  let root = Prng.of_int seed in
  let g =
    Prng.named_stream root
      (Printf.sprintf "%s/class%d" spec.name class_id)
  in
  Array.init n (fun _ -> labelled spec g ~class_id)

let balanced_set spec ~seed ~per_class =
  Array.concat
    (List.init spec.num_classes (fun class_id ->
         class_set spec ~seed ~class_id ~n:per_class))

let train_test spec ~seed ~train_per_class ~test_per_class =
  let train = balanced_set spec ~seed ~per_class:train_per_class in
  (* A distinct stream: test images never overlap train images, and are
     stable under changes to [train_per_class]. *)
  let test = balanced_set spec ~seed:(seed + 1000003) ~per_class:test_per_class in
  (train, test)

(* Aggregated test runner: `dune runtest`. *)

let () =
  Alcotest.run "oppsla"
    [
      ("prng", Test_prng.suite);
      ("telemetry", Test_telemetry.suite);
      ("exporter", Test_exporter.suite);
      ("journal", Test_journal.suite);
      ("tensor", Test_tensor.suite);
      ("backend", Test_backend.suite);
      ("nn", Test_nn.suite);
      ("dataset", Test_dataset.suite);
      ("oracle", Test_oracle.suite);
      ("geometry", Test_geometry.suite);
      ("pair_queue", Test_pair_queue.suite);
      ("condition_dsl", Test_condition_dsl.suite);
      ("gen", Test_gen.suite);
      ("sketch", Test_sketch.suite);
      ("synthesizer", Test_synth.suite);
      ("islands", Test_islands.suite);
      ("baselines", Test_baselines.suite);
      ("scenarios", Test_scenarios.suite);
      ("evalharness", Test_evalharness.suite);
      ("traceprof", Test_traceprof.suite);
      ("parallel_eval", Test_parallel_eval.suite);
      ("cache_eval", Test_cache_eval.suite);
      ("batch_eval", Test_batch_eval.suite);
      ("stats", Test_stats.suite);
      ("curves", Test_curves.suite);
      ("report", Test_report.suite);
      ("image", Test_image.suite);
      ("augment_metrics", Test_augment_metrics.suite);
      ("analysis", Test_analysis.suite);
      ("extensions", Test_extensions.suite);
      ("integration", Test_integration.suite);
    ]

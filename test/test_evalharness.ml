(* Tests for the evaluation harness: parallel map, runner statistics,
   report rendering and attacker plumbing. *)

module Parallel = Evalharness.Parallel
module Runner = Evalharness.Runner
module Report = Evalharness.Report
module Attackers = Evalharness.Attackers

(* Parallel *)

let parallel_matches_sequential () =
  let xs = Array.init 37 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "same results" (Array.map f xs)
    (Parallel.map ~domains:4 f xs)

let parallel_sequential_fallback () =
  let xs = Array.init 5 Fun.id in
  Alcotest.(check (array int)) "domains=1" (Array.map succ xs)
    (Parallel.map ~domains:1 succ xs)

let parallel_empty () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map ~domains:4 succ [||])

let parallel_propagates_exceptions () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Parallel.map ~domains:2
            (fun x -> if x = 3 then failwith "boom" else x)
            (Array.init 8 Fun.id));
       false
     with Failure _ -> true)

let parallel_order_preserved () =
  (* Work of uneven cost must still land at the right indices. *)
  let xs = Array.init 16 Fun.id in
  let f x =
    let n = if x mod 2 = 0 then 10000 else 10 in
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc + i) mod 97
    done;
    (x, !acc)
  in
  let results = Parallel.map ~domains:3 f xs in
  Array.iteri
    (fun i (x, _) -> Alcotest.(check int) "index" i x)
    results

(* Runner statistics *)

let record ~success ~queries =
  { Runner.true_class = 0; success; queries }

let success_rates () =
  let records =
    [|
      record ~success:true ~queries:5;
      record ~success:true ~queries:50;
      record ~success:false ~queries:100;
      record ~success:true ~queries:200;
    |]
  in
  Alcotest.(check (float 1e-9)) "at 10" 0.25 (Runner.success_rate_at records 10);
  Alcotest.(check (float 1e-9)) "at 50" 0.5 (Runner.success_rate_at records 50);
  Alcotest.(check (float 1e-9)) "at 1000" 0.75
    (Runner.success_rate_at records 1000);
  Alcotest.(check (float 1e-9)) "overall" 0.75 (Runner.success_rate records)

let success_rate_empty () =
  Alcotest.(check (float 1e-9)) "empty" 0. (Runner.success_rate_at [||] 10)

let avg_and_median () =
  let records =
    [|
      record ~success:true ~queries:10;
      record ~success:false ~queries:999;
      record ~success:true ~queries:20;
      record ~success:true ~queries:90;
    |]
  in
  Alcotest.(check (option (float 1e-9))) "avg over successes" (Some 40.)
    (Runner.avg_queries records);
  Alcotest.(check (option (float 1e-9))) "odd median" (Some 20.)
    (Runner.median_queries records);
  let even =
    [| record ~success:true ~queries:10; record ~success:true ~queries:20 |]
  in
  Alcotest.(check (option (float 1e-9))) "even median" (Some 15.)
    (Runner.median_queries even);
  Alcotest.(check (option (float 1e-9))) "no successes" None
    (Runner.avg_queries [| record ~success:false ~queries:7 |])

(* Report *)

let table_renders () =
  let s =
    Report.table ~headers:[ "a"; "long header" ]
      ~rows:[ [ "1"; "2" ]; [ "wide cell"; "x" ] ]
  in
  Alcotest.(check bool) "has header" true (Helpers.contains s "long header");
  Alcotest.(check bool) "has cell" true (Helpers.contains s "wide cell");
  (* All lines are equally wide (box alignment). *)
  let widths =
    String.split_on_char '\n' s |> List.map String.length |> List.sort_uniq compare
  in
  Alcotest.(check int) "uniform width" 1 (List.length widths)

let table_ragged_raises () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Report.table ~headers:[ "a"; "b" ] ~rows:[ [ "only one" ] ]);
       false
     with Invalid_argument _ -> true)

let formatting_helpers () =
  Alcotest.(check string) "none" "-" (Report.float_opt None);
  Alcotest.(check string) "some" "12.35" (Report.float_opt (Some 12.345));
  Alcotest.(check string) "percent" "59.0%" (Report.percent 0.59)

(* Attackers *)

let oppsla_routes_by_class () =
  (* Program for class 0 checks the whole space; class 1 has a program
     too; class 2 is missing -> error. *)
  let programs =
    [|
      Oppsla.Condition.const_false_program;
      Oppsla.Condition.const_false_program;
    |]
  in
  let attacker = Attackers.oppsla ~programs in
  let oracle = Helpers.mean_threshold_oracle () in
  let image = Helpers.flat_image ~size:4 0.49 in
  let r =
    attacker.Attackers.run (Prng.of_int 1) oracle ~goal:Oppsla.Sketch.Untargeted
      ~max_queries:10 ~batch:1 ~image ~true_class:0
  in
  Alcotest.(check bool) "class 0 works" true (r.Oppsla.Sketch.adversarial <> None);
  Alcotest.(check bool) "missing class raises" true
    (try
       ignore
         (attacker.Attackers.run (Prng.of_int 1) oracle
            ~goal:Oppsla.Sketch.Untargeted ~max_queries:10 ~batch:1 ~image
            ~true_class:5);
       false
     with Invalid_argument _ -> true)

let attacker_names () =
  Alcotest.(check string) "oppsla" "OPPSLA"
    (Attackers.oppsla ~programs:[||]).Attackers.name;
  Alcotest.(check string) "sketch false" "Sketch+False"
    Attackers.sketch_false.Attackers.name;
  Alcotest.(check string) "sparse-rs" "Sparse-RS"
    Attackers.sparse_rs.Attackers.name;
  Alcotest.(check string) "suopa" "SuOPA" (Attackers.su_opa ()).Attackers.name

let suite =
  [
    Alcotest.test_case "parallel matches sequential" `Quick
      parallel_matches_sequential;
    Alcotest.test_case "parallel sequential fallback" `Quick
      parallel_sequential_fallback;
    Alcotest.test_case "parallel empty" `Quick parallel_empty;
    Alcotest.test_case "parallel propagates exceptions" `Quick
      parallel_propagates_exceptions;
    Alcotest.test_case "parallel preserves order" `Quick
      parallel_order_preserved;
    Alcotest.test_case "success rates" `Quick success_rates;
    Alcotest.test_case "success rate empty" `Quick success_rate_empty;
    Alcotest.test_case "avg and median" `Quick avg_and_median;
    Alcotest.test_case "table renders" `Quick table_renders;
    Alcotest.test_case "table ragged raises" `Quick table_ragged_raises;
    Alcotest.test_case "formatting helpers" `Quick formatting_helpers;
    Alcotest.test_case "oppsla routes by class" `Quick oppsla_routes_by_class;
    Alcotest.test_case "attacker names" `Quick attacker_names;
  ]

(* Standalone differential checker, wired into the `runtest` alias under
   OCAMLRUNPARAM=b at every combination of --domains 1/4, --cache on/off,
   --batch 1/16, --trace on/off and --observe on/off, plus an
   --islands 4 sub-grid (see test/dune).

   --trace on opens a real Chrome-trace sink for the whole run and
   computes every reference under [Telemetry.Trace.without], so each
   check differences a traced run against an untraced one in the same
   process — telemetry must be observation-only, with query accounting
   and synthesis traces bit-identical either way.

   Scenario axes (the decision-oracle / perturbation-space matrix):
   --oracle score|decision and --space pixel|kpixel[:K]|patch[:HxW]
   select a single attack-level scenario cell, differenced through the
   full Runner/cache/batcher stack — the reference is always the
   1-domain, uncached, batch-1 run of the same attacker on the same
   corpus, and per-image (queries, success) records must be
   bit-identical under this invocation's --domains/--cache/--batch
   settings (with a warm-store rerun when the cache is on).
   --sample-grid N instead samples ~N cells across the full
   {score, decision} x {pixel, kpixel, patch} x {1, 4 domains} x
   {cache off, on} x {batch 1, 16} cross-product, stratified so every
   oracle x space combination is hit; the (domains, cache, batch)
   coordinates are drawn deterministically from the named PRNG stream
   "diff/scenario-grid", so the sampled grid is reproducible yet stays
   inside the wall-clock budget.  Sample-grid runs also difference
   Score.evaluate and the island model under a decision-mode oracle.

   Backend axis: --backend boxed|f32 runs the tensor-backend
   differential instead — raw scores under the tolerance policy (boxed
   plan bit-identical to the layer engine; f32 within
   [Nn.Backend.score_tol] per logit with argmax identity) and attack
   records through the full Runner stack against the boxed sequential
   reference, at this invocation's --domains/--cache/--batch
   coordinates.

   --profile on runs the profiler differential instead: the same
   Sparse-RS corpus bare and then with the Runtime_events profiler
   attached, asserting bit-identical per-image (queries, success)
   records and that the observer actually polled the event ring.

   --observe on additionally runs the full live observatory around the
   whole grid: an HTTP metrics server on an ephemeral port plus the
   background runtime sampler ticking every 20 ms.  Both only read the
   registry, so every differential below must still hold bit-identically
   while they run; at the end the runner fetches /metrics and /healthz
   from its own server and asserts a valid, non-stalled response.

   For randomized programs, images and training-set sizes it asserts that
   Score.evaluate_parallel over a pool of the requested width returns
   bit-identical query accounting to the sequential Score.evaluate, and
   that the synthesizer's accepted-program trace is evaluator-independent.
   With --cache on, the uncached sequential evaluation stays the
   reference and the cached sequential (cold and warm store) and cached
   parallel evaluations are checked against it — the memo layer must be
   invisible to query accounting.  The reference always runs at batch
   width 1 (the sequential path); --batch sets the speculative chunk
   width of every checked run, so a width-16 run is differenced against
   the width-1 ground truth.  Exits non-zero (with a backtrace, courtesy
   of OCAMLRUNPARAM=b) on the first divergence. *)

module Parallel = Evalharness.Parallel
module Runner = Evalharness.Runner
module Attackers = Evalharness.Attackers
module Score = Oppsla.Score
module Space = Oppsla.Space
module Synthesizer = Oppsla.Synthesizer

let size = 4

let mean_threshold_oracle () =
  Oracle.of_fn ~name:"mean-threshold" ~num_classes:2 (fun x ->
      let m = Tensor.mean x in
      let p1 = 1. /. (1. +. exp (-.(40. *. (m -. 0.5)))) in
      Tensor.of_array [| 2 |] [| 1. -. p1; p1 |])

let training_set g n =
  Array.init n (fun i ->
      match i mod 3 with
      | 0 -> (Tensor.create [| 3; size; size |] (0.45 +. Prng.float g 0.1), 0)
      | 1 -> (Tensor.create [| 3; size; size |] 0.30, 0)
      | _ -> (Tensor.rand_uniform g ~lo:0.35 ~hi:0.65 [| 3; size; size |], 0))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let check_identical ctx (seq : Score.evaluation) (par : Score.evaluation) =
  if seq.Score.avg_queries <> par.Score.avg_queries then
    fail "%s: avg_queries %.17g <> %.17g" ctx seq.Score.avg_queries
      par.Score.avg_queries;
  if seq.Score.total_queries <> par.Score.total_queries then
    fail "%s: total_queries %d <> %d" ctx seq.Score.total_queries
      par.Score.total_queries;
  if seq.Score.successes <> par.Score.successes then
    fail "%s: successes %d <> %d" ctx seq.Score.successes par.Score.successes;
  if
    Array.map (fun e -> (e.Score.queries, e.Score.success)) seq.per_image
    <> Array.map (fun e -> (e.Score.queries, e.Score.success)) par.per_image
  then fail "%s: per-image query counts diverged" ctx

(* Scenario differentials: decision-based oracles and k-pixel / patch
   perturbation spaces, driven through the full Runner stack. *)

let decision_oracle () =
  let o = mean_threshold_oracle () in
  Oracle.set_mode o Oracle.Decision;
  o

(* A small fixed corpus labelled by the clean-image prediction, so every
   attack starts from an unflipped image and success means a genuine
   label flip. *)
let scenario_samples () =
  let g = Prng.of_int 913 in
  let probe = mean_threshold_oracle () in
  Array.init 6 (fun i ->
      let x =
        match i mod 3 with
        | 0 -> Tensor.create [| 3; size; size |] (0.45 +. Prng.float g 0.1)
        | 1 -> Tensor.create [| 3; size; size |] 0.30
        | _ -> Tensor.rand_uniform g ~lo:0.35 ~hi:0.65 [| 3; size; size |]
      in
      (x, Oracle.decide probe x))

let mode_name = function
  | Oracle.Score -> "score"
  | Oracle.Decision -> "decision"

(* One scenario cell: Sparse-RS over [space], observing through
   [oracle_mode], with the cell's (domains, cache, batch) coordinates
   differenced against the 1-domain uncached batch-1 reference.  With
   the cache on, the warm store is rerun and must reproduce the same
   records — the memo layer stays invisible to query accounting in both
   oracle modes. *)
let scenario_check ~domains ~cache ~batch ~oracle_mode ~space =
  let samples = scenario_samples () in
  let attacker =
    let base = Attackers.sparse_rs_space space in
    match oracle_mode with
    | Oracle.Score -> base
    | Oracle.Decision -> Attackers.decision base
  in
  let oracle_factory () = mean_threshold_oracle () in
  let max_queries = 60 in
  let strip rs =
    Array.map (fun r -> (r.Runner.queries, r.Runner.success)) rs
  in
  let ctx kind =
    Printf.sprintf
      "scenario %s/%s (domains %d, cache %b, batch %d, %s)"
      (mode_name oracle_mode) (Space.to_string space) domains cache batch kind
  in
  let reference =
    strip
      (Runner.run ~domains:1 ~batch:1 ~seed:5 ~max_queries attacker
         ~oracle_factory samples)
  in
  let caches =
    if cache then Some (Score_cache.store (Array.length samples)) else None
  in
  let checked =
    strip
      (Runner.run ~domains ?caches ~batch ~seed:5 ~max_queries attacker
         ~oracle_factory samples)
  in
  if reference <> checked then
    fail "%s: per-image (queries, success) diverged" (ctx "checked");
  (match caches with
  | Some _ ->
      let warm =
        strip
          (Runner.run ~domains ?caches ~batch ~seed:5 ~max_queries attacker
             ~oracle_factory samples)
      in
      if reference <> warm then
        fail "%s: per-image (queries, success) diverged" (ctx "warm store")
  | None -> ());
  (* The cell must have attacked something: an all-zero-query corpus
     would mean the differential tested nothing. *)
  if Array.for_all (fun (q, _) -> q = 0) reference then
    fail "%s: no queries were spent" (ctx "reference")

(* Decision-mode evaluation differential: Score.evaluate with a
   label-only oracle must stay bit-identical across cache and pool, just
   like the score-mode trials in the main grid. *)
let decision_evaluate_check ~pool ~batch =
  let gen_config = { Oppsla.Gen.d1 = size; d2 = size } in
  for trial = 0 to 3 do
    let g = Prng.of_int (8191 + trial) in
    let samples = training_set (Prng.split g) (1 + Prng.int g 8) in
    let program = Oppsla.Gen.random_program gen_config g in
    let ctx kind = Printf.sprintf "decision evaluate trial %d (%s)" trial kind in
    let reference = Score.evaluate ~batch:1 (decision_oracle ()) program samples in
    let caches = Some (Score_cache.store (Array.length samples)) in
    let cold = Score.evaluate ?caches ~batch (decision_oracle ()) program samples in
    check_identical (ctx "cached sequential, cold") reference cold;
    let warm = Score.evaluate ?caches ~batch (decision_oracle ()) program samples in
    check_identical (ctx "cached sequential, warm") reference warm;
    let par =
      Score.evaluate_parallel ~batch ~pool (decision_oracle ()) program samples
    in
    check_identical (ctx "parallel") reference par
  done

(* Decision-mode island differential: the archipelago trace must be
   pool/batch-invariant under a label-only oracle too. *)
let decision_islands_check ~pool ~batch =
  let training = training_set (Prng.of_int 23) 5 in
  let icfg =
    {
      Oppsla.Islands.default_config with
      Oppsla.Islands.islands = 4;
      rounds = 3;
      migration_period = 2;
      max_queries_per_image = Some 64;
    }
  in
  let run ~use_pool cfg =
    Oppsla.Islands.synthesize ~config:cfg
      ?pool:(if use_pool then Some pool else None)
      (Prng.of_int 23) (decision_oracle ()) ~training
  in
  let ref_out = run ~use_pool:false { icfg with Oppsla.Islands.batch = 1 } in
  let par_out = run ~use_pool:true { icfg with Oppsla.Islands.batch } in
  if ref_out.Oppsla.Islands.synth_queries <> par_out.Oppsla.Islands.synth_queries
  then
    fail "decision islands: query spend diverged (%d <> %d)"
      ref_out.Oppsla.Islands.synth_queries par_out.Oppsla.Islands.synth_queries;
  if
    ref_out.Oppsla.Islands.best_avg_queries
    <> par_out.Oppsla.Islands.best_avg_queries
    || not
         (Oppsla.Condition.equal_program ref_out.Oppsla.Islands.best
            par_out.Oppsla.Islands.best)
  then fail "decision islands: best program diverged";
  List.iter2
    (fun (x : Oppsla.Islands.entry) (y : Oppsla.Islands.entry) ->
      if
        x.Oppsla.Islands.accepted <> y.Oppsla.Islands.accepted
        || x.Oppsla.Islands.avg_queries <> y.Oppsla.Islands.avg_queries
        || x.Oppsla.Islands.queries_total <> y.Oppsla.Islands.queries_total
      then
        fail "decision islands: trace diverged at round %d island %d"
          x.Oppsla.Islands.round x.Oppsla.Islands.island)
    ref_out.Oppsla.Islands.trace par_out.Oppsla.Islands.trace

(* Backend differential: the pluggable tensor backend must be invisible
   to query accounting and, on raw scores, obey the tolerance policy —
   the boxed engine's compiled plan is asserted bit-identical to the
   layer-walking engine, while the f32 engine must agree on every
   argmax and keep each logit within [Nn.Backend.score_tol].  The
   attack-record arm then runs the same Sparse-RS corpus through a
   Runner on the checked backend at this cell's (domains, cache, batch)
   coordinates against the boxed batch-1 sequential reference:
   per-image (queries, success) records must be bit-identical, because
   metering sits above the scoring engine and both backends agree on
   every decision the attack observes. *)

let backend_net () =
  let g = Prng.of_int 321 in
  let width = 8 and classes = 4 in
  Nn.Network.create ~name:"diff_backend"
    ~input_shape:[| 3; size; size |] ~num_classes:classes
    [
      Nn.Layer.conv2d g ~pad:1 ~in_c:3 ~out_c:width ~k:3 ();
      Nn.Layer.channel_norm ~channels:width;
      Nn.Layer.relu ();
      Nn.Layer.conv2d g ~pad:1 ~in_c:width ~out_c:width ~k:3 ();
      Nn.Layer.relu ();
      Nn.Layer.flatten ();
      Nn.Layer.dense g ~in_dim:(width * size * size) ~out_dim:classes ();
    ]

let backend_check ~domains ~cache ~batch ~backend =
  let net = backend_net () in
  let samples =
    let g = Prng.of_int 515 in
    Array.init 6 (fun _ ->
        let x = Tensor.rand_uniform (Prng.split g) [| 3; size; size |] in
        (x, Nn.Network.classify net x))
  in
  let classes = 4 in
  let pack1 x =
    let xb = Tensor.zeros [| 1; 3; size; size |] in
    Array.blit x.Tensor.data 0 xb.Tensor.data 0 (Tensor.numel x);
    xb
  in
  let engine_scores =
    match backend with
    | Nn.Backend.Boxed ->
        let plan = Nn.Backend.Boxed_engine.compile net in
        fun x -> Nn.Backend.Boxed_engine.scores_batch plan (pack1 x)
    | Nn.Backend.F32 ->
        let plan = Nn.Backend.F32_engine.compile net in
        fun x -> Nn.Backend.F32_engine.scores_batch plan (pack1 x)
  in
  let bname = Nn.Backend.kind_name backend in
  let argmax t off =
    let best = ref 0 in
    for c = 1 to classes - 1 do
      if Tensor.get_flat t (off + c) > Tensor.get_flat t (off + !best) then
        best := c
    done;
    !best
  in
  Array.iteri
    (fun i (x, _) ->
      let sb = Nn.Network.scores net x in
      let se = engine_scores x in
      (match backend with
      | Nn.Backend.Boxed ->
          (* Same-backend: the compiled plan is the same float64 kernels
             in the same order — bit-equality, not tolerance. *)
          for c = 0 to classes - 1 do
            if Tensor.get_flat se c <> Tensor.get_flat sb c then
              fail
                "backend %s: image %d class %d: plan score %.17g <> layer \
                 score %.17g (must be bit-identical)"
                bname i c (Tensor.get_flat se c) (Tensor.get_flat sb c)
          done
      | Nn.Backend.F32 ->
          for c = 0 to classes - 1 do
            let d =
              abs_float (Tensor.get_flat se c -. Tensor.get_flat sb c)
            in
            if d > Nn.Backend.score_tol then
              fail
                "backend %s: image %d class %d: |score delta| %.3e exceeds \
                 tolerance %.0e"
                bname i c d Nn.Backend.score_tol
          done);
      if argmax se 0 <> argmax sb 0 then
        fail "backend %s: image %d: argmax diverged" bname i)
    samples;
  (* Attack-record arm. *)
  let attacker = Attackers.sparse_rs_space Space.Pixel in
  let max_queries = 60 in
  let strip rs =
    Array.map (fun r -> (r.Runner.queries, r.Runner.success)) rs
  in
  let reference =
    strip
      (Runner.run ~domains:1 ~batch:1 ~seed:9 ~max_queries attacker
         ~oracle_factory:(fun () -> Oracle.of_network net)
         samples)
  in
  let caches =
    if cache then Some (Score_cache.store (Array.length samples)) else None
  in
  let checked =
    strip
      (Runner.run ~domains ?caches ~batch ~seed:9 ~max_queries attacker
         ~oracle_factory:(fun () -> Oracle.of_network ~backend net)
         samples)
  in
  if reference <> checked then
    fail
      "backend %s (domains %d, cache %b, batch %d): per-image (queries, \
       success) diverged from the boxed sequential reference"
      bname domains cache batch;
  (match caches with
  | Some _ ->
      let warm =
        strip
          (Runner.run ~domains ?caches ~batch ~seed:9 ~max_queries attacker
             ~oracle_factory:(fun () -> Oracle.of_network ~backend net)
             samples)
      in
      if reference <> warm then
        fail
          "backend %s (domains %d, cache %b, batch %d): warm-store records \
           diverged"
          bname domains cache batch
  | None -> ());
  if Array.for_all (fun (q, _) -> q = 0) reference then
    fail "backend %s: no queries were spent" bname

(* Journal differential: the query-provenance journal must prove the
   metering invariant offline.  The cell runs the same Sparse-RS corpus
   twice — the 1-domain uncached batch-1 boxed reference, then this
   invocation's (domains, cache, batch, backend) coordinates — each arm
   writing its own journal, and the offline auditor must find the
   per-image charge sequences bit-identical.  This is the same
   invariant the live differentials check, proved from the journal
   files alone (no re-execution): what tools/audit.exe does across
   processes, run in-process here.  With [keep], the two journals are
   left at PREFIX.ref.jsonl / PREFIX.chk.jsonl so a dune cell can chain
   the real tools/audit.exe binary over them. *)
let journal_check ~domains ~cache ~batch ~backend ~keep =
  let net = backend_net () in
  let samples =
    let g = Prng.of_int 515 in
    Array.init 6 (fun _ ->
        let x = Tensor.rand_uniform (Prng.split g) [| 3; size; size |] in
        (x, Nn.Network.classify net x))
  in
  let attacker = Attackers.sparse_rs_space Space.Pixel in
  let max_queries = 60 in
  let bname = Nn.Backend.kind_name backend in
  let journaled path ~run_id f =
    Telemetry.Journal.set_run_id run_id;
    Telemetry.Journal.to_file path;
    Fun.protect ~finally:Telemetry.Journal.close f
  in
  let ref_path, chk_path =
    match keep with
    | Some prefix -> (prefix ^ ".ref.jsonl", prefix ^ ".chk.jsonl")
    | None ->
        ( Filename.temp_file "oppsla_diff_journal_ref" ".jsonl",
          Filename.temp_file "oppsla_diff_journal_chk" ".jsonl" )
  in
  journaled ref_path ~run_id:"diff-ref" (fun () ->
      ignore
        (Runner.run ~domains:1 ~batch:1 ~seed:9 ~max_queries attacker
           ~oracle_factory:(fun () -> Oracle.of_network net)
           samples));
  let caches =
    if cache then Some (Score_cache.store (Array.length samples)) else None
  in
  journaled chk_path ~run_id:"diff-chk" (fun () ->
      ignore
        (Runner.run ~domains ?caches ~batch ~seed:9 ~max_queries attacker
           ~oracle_factory:(fun () -> Oracle.of_network ~backend net)
           samples));
  let load p =
    match Evalharness.Audit.load_strict p with
    | j -> j
    | exception Evalharness.Audit.Invalid m ->
        fail "diff_runner: journal %s failed audit: %s" p m
  in
  let jr = load ref_path and jc = load chk_path in
  if jr.Evalharness.Audit.records = [] then
    fail "diff_runner: reference journal is empty (the cell tested nothing)";
  let c = Evalharness.Audit.compare_journals jr jc in
  if not (Evalharness.Audit.identical c) then begin
    prerr_string (Evalharness.Audit.render ~left:ref_path ~right:chk_path c);
    fail
      "diff_runner: journal charge sequences diverged (domains %d, cache %b, \
       batch %d, backend %s)"
      domains cache batch bname
  end;
  if keep = None then begin
    Sys.remove ref_path;
    Sys.remove chk_path
  end;
  Printf.printf
    "diff_runner: journal charge sequences bit-identical offline (domains \
     %d, cache %s, batch %d, backend %s, %d vs %d records)%s\n"
    domains
    (if cache then "on" else "off")
    batch bname c.Evalharness.Audit.left_total c.Evalharness.Audit.right_total
    (match keep with
    | Some p -> Printf.sprintf " — kept %s.{ref,chk}.jsonl" p
    | None -> "")

(* Profiler differential: the Runtime_events profiler must be
   observation-only.  The same Sparse-RS corpus runs twice at this
   invocation's (domains, cache, batch) coordinates — bare, then with
   the profiler's cursor and observer systhread live — and the
   per-image (queries, success) records must be bit-identical.  The
   profiled arm must also really have observed the run: at least one
   consumer poll must have drained the ring. *)
let profile_check ~domains ~cache ~batch =
  if Telemetry.Profiler.running () then
    fail "diff_runner: profiler already attached before the profile cell";
  let net = backend_net () in
  let samples =
    let g = Prng.of_int 515 in
    Array.init 6 (fun _ ->
        let x = Tensor.rand_uniform (Prng.split g) [| 3; size; size |] in
        (x, Nn.Network.classify net x))
  in
  let attacker = Attackers.sparse_rs_space Space.Pixel in
  let max_queries = 60 in
  let run () =
    let caches =
      if cache then Some (Score_cache.store (Array.length samples)) else None
    in
    Array.map
      (fun r -> (r.Runner.queries, r.Runner.success))
      (Runner.run ~domains ?caches ~batch ~seed:9 ~max_queries attacker
         ~oracle_factory:(fun () -> Oracle.of_network net)
         samples)
  in
  let reference = run () in
  let polls () =
    Telemetry.Counter.get (Telemetry.Metrics.counter "profiler.polls.total")
  in
  let polls_before = polls () in
  let p = Telemetry.Profiler.start () in
  let profiled =
    Fun.protect ~finally:(fun () -> Telemetry.Profiler.stop p) run
  in
  if reference <> profiled then
    fail
      "diff_runner: per-image (queries, success) diverged with the profiler \
       attached (domains %d, cache %b, batch %d — the profiler must be \
       observation-only)"
      domains cache batch;
  if polls () <= polls_before then
    fail "diff_runner: the profiled arm never polled the event ring";
  if Array.for_all (fun (q, _) -> q = 0) reference then
    fail "diff_runner: profile cell spent no queries (tested nothing)";
  Printf.printf
    "diff_runner: profiler observation-only, records bit-identical (domains \
     %d, cache %s, batch %d, %d ring polls)\n"
    domains
    (if cache then "on" else "off")
    batch
    (polls () - polls_before)

(* Stall injection: --stall-selftest forks this executable with
   --stall-inject, which arms a fatal (exit 3) stall watchdog with a
   short timeout, journals a charge, beats once and wedges.  The parent
   asserts the child exited 3 and left a complete post-mortem bundle:
   info.json naming the stall and the wedged loop, a flight-recorder
   ring dump containing the last heartbeat's span context, a registry
   snapshot, and a journal tail whose records still parse and checksum. *)

let inject_run_id = "stall-selftest"
let inject_loop = "stall.inject"

let stall_inject () =
  let _obs =
    Telemetry.Obs.start
      {
        Telemetry.Obs.default with
        Telemetry.Obs.stall_timeout_s = Some 0.4;
        snapshot_interval_s = 0.05;
        journal = Some "stall_inject_journal.jsonl";
        run_id = Some inject_run_id;
      }
  in
  Telemetry.Journal.with_site "stall/inject" (fun () ->
      Telemetry.Journal.with_image 7 (fun () ->
          Telemetry.Journal.record ~key:"corner:1,2,3" ~kind:"corner"
            ~mode:"score" ~hit:false ~backend:"boxed" ()));
  let wd = Telemetry.Watchdog.loop inject_loop in
  Telemetry.Watchdog.with_loop wd (fun () ->
      Telemetry.Watchdog.beat ~image:7 ~iteration:1 ~queries:1 wd;
      (* Wedge: the sampler must abort this sleep with exit 3. *)
      Unix.sleepf 30.);
  fail "diff_runner: stall injection was never aborted"

let stall_selftest () =
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process exe
      [| exe; "--stall-inject" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 3 -> ()
  | Unix.WEXITED n ->
      fail "diff_runner: stall injection exited %d (wanted the stall exit 3)" n
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      fail "diff_runner: stall injection died on signal %d" s);
  let bundle = Filename.concat "_artifacts" ("postmortem-" ^ inject_run_id) in
  let read name =
    let path = Filename.concat bundle name in
    if not (Sys.file_exists path) then
      fail "diff_runner: post-mortem bundle is missing %s" path;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let contains_sub ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let info = read "info.json" in
  if not (contains_sub ~sub:{|"reason": "stall"|} info) then
    fail "diff_runner: info.json does not record the stall reason: %s" info;
  if not (contains_sub ~sub:inject_loop info) then
    fail "diff_runner: info.json does not name the wedged loop: %s" info;
  if not (contains_sub ~sub:"stall_inject_journal.jsonl" info) then
    fail "diff_runner: info.json does not point at the journal: %s" info;
  let ring = read "ring.jsonl" in
  if not (contains_sub ~sub:"watchdog.beat" ring) then
    fail "diff_runner: ring dump has no heartbeat events";
  if
    not
      (contains_sub ~sub:(Printf.sprintf {|"loop": "%s"|} inject_loop) ring
      && contains_sub ~sub:{|"image": 7|} ring)
  then
    fail
      "diff_runner: ring dump is missing the last heartbeat's span context \
       (loop + image)";
  let registry = read "registry.json" in
  if String.length registry = 0 then
    fail "diff_runner: registry.json snapshot is empty";
  let tail = read "journal_tail.jsonl" in
  let lines =
    String.split_on_char '\n' tail |> List.filter (fun l -> l <> "")
  in
  if lines = [] then fail "diff_runner: journal tail is empty";
  List.iter
    (fun line ->
      match Evalharness.Audit.parse_record line with
      | r ->
          if r.Evalharness.Audit.site <> "stall/inject" then
            fail "diff_runner: journal tail record has site %S"
              r.Evalharness.Audit.site
      | exception Evalharness.Audit.Invalid m ->
          fail "diff_runner: journal tail record failed audit: %s" m)
    lines;
  let gc = read "gc.json" in
  if not (contains_sub ~sub:{|"quick_stat"|} gc) then
    fail "diff_runner: gc.json has no quick_stat snapshot: %s" gc;
  if not (contains_sub ~sub:{|"minor_collections"|} gc) then
    fail "diff_runner: gc.json quick_stat is missing minor_collections: %s" gc;
  if not (contains_sub ~sub:{|"pauses"|} gc) then
    fail "diff_runner: gc.json is missing the profiler pause table: %s" gc;
  (* The injector configures no trace sink, so the tail must exist but
     carry no events — a missing file would mean dump skipped it. *)
  let trace_tail = read "trace_tail.jsonl" in
  if String.trim trace_tail <> "" then
    fail "diff_runner: trace tail should be empty without a trace sink: %s"
      trace_tail;
  (* Clean up the wreckage the child left in the working directory. *)
  List.iter
    (fun f -> if Sys.file_exists f then Sys.remove f)
    [
      Filename.concat bundle "info.json";
      Filename.concat bundle "ring.jsonl";
      Filename.concat bundle "registry.json";
      Filename.concat bundle "journal_tail.jsonl";
      Filename.concat bundle "gc.json";
      Filename.concat bundle "trace_tail.jsonl";
      "stall_inject_journal.jsonl.tmp";
    ];
  (try Unix.rmdir bundle with Unix.Unix_error _ -> ());
  (try Unix.rmdir "_artifacts" with Unix.Unix_error _ -> ());
  print_endline
    "diff_runner: stall injection exited 3 with a complete post-mortem \
     bundle (ring heartbeat context + parsing journal tail + registry + \
     info + gc snapshot + empty trace tail)"

(* Stratified sample of the scenario cross-product: every oracle x space
   combination gets [n / 6] cells (at least one), with the (domains,
   cache, batch) coordinates drawn from a named PRNG stream so the
   sampled grid is deterministic across runs and machines. *)
let scenario_grid ~pool n =
  let combos =
    [
      (Oracle.Score, Space.Pixel);
      (Oracle.Score, Space.Kpixel 2);
      (Oracle.Score, Space.Patch { h = 2; w = 2 });
      (Oracle.Decision, Space.Pixel);
      (Oracle.Decision, Space.Kpixel 2);
      (Oracle.Decision, Space.Patch { h = 2; w = 2 });
    ]
  in
  let g = Prng.named_stream (Prng.of_int 2026) "diff/scenario-grid" in
  let per_combo = max 1 (n / List.length combos) in
  let cells = ref 0 in
  List.iter
    (fun (oracle_mode, space) ->
      for _ = 1 to per_combo do
        let domains = if Prng.bool g then 1 else 4 in
        let cache = Prng.bool g in
        let batch = if Prng.bool g then 1 else 16 in
        scenario_check ~domains ~cache ~batch ~oracle_mode ~space;
        incr cells;
        Printf.printf
          "diff_runner: scenario cell %s/%s bit-identical (domains %d, \
           cache %s, batch %d)\n"
          (mode_name oracle_mode) (Space.to_string space) domains
          (if cache then "on" else "off")
          batch
      done)
    combos;
  decision_evaluate_check ~pool ~batch:16;
  decision_islands_check ~pool ~batch:16;
  Printf.printf
    "diff_runner: %d sampled scenario cells + decision-mode evaluation \
     and island differentials bit-identical\n"
    !cells

let () =
  let omode = ref Oracle.Score in
  let space = ref Space.Pixel in
  let grid = ref 0 in
  let bknd = ref None in
  let jrnl = ref false in
  let jkeep = ref None in
  let prof = ref false in
  let stall = ref `None in
  let rec parse domains cache batch trace observe islands = function
    | "--domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 -> parse d cache batch trace observe islands rest
        | _ -> fail "diff_runner: bad --domains %s" n)
    | "--cache" :: v :: rest -> (
        match v with
        | "on" -> parse domains true batch trace observe islands rest
        | "off" -> parse domains false batch trace observe islands rest
        | _ -> fail "diff_runner: bad --cache %s (expected on|off)" v)
    | "--batch" :: n :: rest -> (
        match int_of_string_opt n with
        | Some b when b >= 1 -> parse domains cache b trace observe islands rest
        | _ -> fail "diff_runner: bad --batch %s" n)
    | "--trace" :: v :: rest -> (
        match v with
        | "on" -> parse domains cache batch true observe islands rest
        | "off" -> parse domains cache batch false observe islands rest
        | _ -> fail "diff_runner: bad --trace %s (expected on|off)" v)
    | "--observe" :: v :: rest -> (
        match v with
        | "on" -> parse domains cache batch trace true islands rest
        | "off" -> parse domains cache batch trace false islands rest
        | _ -> fail "diff_runner: bad --observe %s (expected on|off)" v)
    | "--islands" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k >= 1 -> parse domains cache batch trace observe k rest
        | _ -> fail "diff_runner: bad --islands %s" n)
    | "--oracle" :: v :: rest -> (
        match v with
        | "score" ->
            omode := Oracle.Score;
            parse domains cache batch trace observe islands rest
        | "decision" ->
            omode := Oracle.Decision;
            parse domains cache batch trace observe islands rest
        | _ -> fail "diff_runner: bad --oracle %s (expected score|decision)" v)
    | "--space" :: v :: rest -> (
        match Space.of_string v with
        | Some s ->
            space := s;
            parse domains cache batch trace observe islands rest
        | None -> fail "diff_runner: bad --space %s" v)
    | "--backend" :: v :: rest -> (
        match Nn.Backend.kind_of_string v with
        | Some k ->
            bknd := Some k;
            parse domains cache batch trace observe islands rest
        | None -> fail "diff_runner: bad --backend %s (expected boxed|f32)" v)
    | "--journal" :: v :: rest -> (
        match v with
        | "on" ->
            jrnl := true;
            parse domains cache batch trace observe islands rest
        | "off" ->
            jrnl := false;
            parse domains cache batch trace observe islands rest
        | _ -> fail "diff_runner: bad --journal %s (expected on|off)" v)
    | "--journal-keep" :: p :: rest ->
        jkeep := Some p;
        parse domains cache batch trace observe islands rest
    | "--profile" :: v :: rest -> (
        match v with
        | "on" ->
            prof := true;
            parse domains cache batch trace observe islands rest
        | "off" ->
            prof := false;
            parse domains cache batch trace observe islands rest
        | _ -> fail "diff_runner: bad --profile %s (expected on|off)" v)
    | "--stall-selftest" :: rest ->
        stall := `Selftest;
        parse domains cache batch trace observe islands rest
    | "--stall-inject" :: rest ->
        stall := `Inject;
        parse domains cache batch trace observe islands rest
    | "--sample-grid" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k >= 1 ->
            grid := k;
            parse domains cache batch trace observe islands rest
        | _ -> fail "diff_runner: bad --sample-grid %s" n)
    | [] -> (domains, cache, batch, trace, observe, islands)
    | a :: _ -> fail "diff_runner: unknown argument %s" a
  in
  let domains, cache, batch, trace, observe, islands =
    parse 4 false Oppsla.Sketch.default_batch false false 1
      (List.tl (Array.to_list Sys.argv))
  in
  (match !stall with
  | `Inject -> stall_inject ()
  | `Selftest ->
      stall_selftest ();
      exit 0
  | `None -> ());
  if !jrnl then begin
    journal_check ~domains ~cache ~batch
      ~backend:(Option.value !bknd ~default:Nn.Backend.Boxed)
      ~keep:!jkeep;
    exit 0
  end;
  if !prof then begin
    profile_check ~domains ~cache ~batch;
    exit 0
  end;
  let scenario_mode =
    !grid > 0 || !omode <> Oracle.Score || !space <> Space.Pixel
  in
  (* With --observe on, the metrics server and runtime sampler run live
     around the whole grid.  Both are read-only consumers of the
     registry; the differentials below verify they stay that way. *)
  let observatory =
    if observe then begin
      let server = Telemetry.Http_server.start ~stall_after_s:60. ~port:0 () in
      let sampler =
        Telemetry.Sampler.start
          {
            Telemetry.Sampler.interval_s = 0.02;
            snapshot_path = None;
            stall_after_s = 60.;
            abort_on_stall = false;
          }
      in
      Some (server, sampler)
    end
    else None
  in
  (* With --trace on, checked runs emit real trace events while every
     reference is computed with the sink masked: a live on-vs-off
     differential inside one process. *)
  let trace_file =
    if trace then begin
      let f = Filename.temp_file "oppsla_diff_trace" ".json" in
      Telemetry.Trace.to_file f;
      Some f
    end
    else None
  in
  let untraced f = if trace then Telemetry.Trace.without f else f () in
  let store_for samples =
    if cache then Some (Score_cache.store (Array.length samples)) else None
  in
  let gen_config = { Oppsla.Gen.d1 = size; d2 = size } in
  Parallel.Pool.with_pool ~domains (fun pool ->
      match !bknd with
      | Some backend ->
          (* Backend mode: one cross-backend cell at this invocation's
             --domains/--cache/--batch coordinates. *)
          backend_check ~domains ~cache ~batch ~backend;
          Printf.printf
            "diff_runner: backend %s records bit-identical, scores within \
             tolerance (domains %d, cache %s, batch %d)\n"
            (Nn.Backend.kind_name backend)
            domains
            (if cache then "on" else "off")
            batch
      | None ->
      if scenario_mode then
        (* Scenario mode: --sample-grid runs the stratified cross-product
           sample; --oracle/--space alone run one cell at this
           invocation's --domains/--cache/--batch coordinates. *)
        if !grid > 0 then scenario_grid ~pool !grid
        else begin
          scenario_check ~domains ~cache ~batch ~oracle_mode:!omode
            ~space:!space;
          Printf.printf
            "diff_runner: scenario %s/%s bit-identical (domains %d, cache \
             %s, batch %d)\n"
            (mode_name !omode) (Space.to_string !space) domains
            (if cache then "on" else "off")
            batch
        end
      else begin
      (* Evaluation differential.  The uncached sequential run is always
         the reference. *)
      for trial = 0 to 11 do
        let g = Prng.of_int ((domains * 7919) + trial) in
        let samples = training_set (Prng.split g) (1 + Prng.int g 8) in
        let program = Oppsla.Gen.random_program gen_config g in
        let max_queries =
          if Prng.bool g then None else Some (1 + Prng.int g 80)
        in
        let ctx kind =
          Printf.sprintf "trial %d (domains %d, cache %b, batch %d, %s)"
            trial domains cache batch kind
        in
        (* The reference is always the uncached sequential path at batch
           width 1: every other configuration must reproduce it. *)
        let reference =
          untraced (fun () ->
              Score.evaluate ?max_queries ~batch:1 (mean_threshold_oracle ())
                program samples)
        in
        (match store_for samples with
        | Some _ as caches ->
            (* Cold store, then the same store warm (every lookup hits),
               then a parallel run on a fresh store. *)
            let cold =
              Score.evaluate ?max_queries ?caches ~batch
                (mean_threshold_oracle ()) program samples
            in
            check_identical (ctx "cached sequential, cold") reference cold;
            let warm =
              Score.evaluate ?max_queries ?caches ~batch
                (mean_threshold_oracle ()) program samples
            in
            check_identical (ctx "cached sequential, warm") reference warm
        | None -> ());
        let par =
          Score.evaluate_parallel ?max_queries ~batch
            ?caches:(store_for samples) ~pool (mean_threshold_oracle ())
            program samples
        in
        check_identical (ctx "parallel") reference par
      done;
      (* Synthesizer trace differential. *)
      let training = training_set (Prng.of_int 42) 5 in
      let config =
        {
          Synthesizer.default_config with
          max_iters = 6;
          max_queries_per_image = Some 64;
        }
      in
      let seq =
        untraced (fun () ->
            Synthesizer.synthesize
              ~config:{ config with Synthesizer.batch = 1 }
              (Prng.of_int 11) (mean_threshold_oracle ()) ~training)
      in
      let config = { config with Synthesizer.batch } in
      let par =
        Synthesizer.synthesize ~config ~pool ?caches:(store_for training)
          (Prng.of_int 11) (mean_threshold_oracle ()) ~training
      in
      let check_traces a_name (a : Synthesizer.outcome)
          (b : Synthesizer.outcome) =
        if a.Synthesizer.synth_queries <> b.Synthesizer.synth_queries then
          fail "synthesizer (%s): query spend diverged (%d <> %d)" a_name
            a.Synthesizer.synth_queries b.Synthesizer.synth_queries;
        List.iter2
          (fun (x : Synthesizer.iteration) (y : Synthesizer.iteration) ->
            if
              x.Synthesizer.accepted <> y.Synthesizer.accepted
              || x.Synthesizer.avg_queries <> y.Synthesizer.avg_queries
              || not
                   (Oppsla.Condition.equal_program x.Synthesizer.program
                      y.Synthesizer.program)
            then
              fail "synthesizer (%s): trace diverged at iteration %d" a_name
                x.Synthesizer.index)
          a.Synthesizer.trace b.Synthesizer.trace
      in
      check_traces "parallel" seq par;
      if cache then begin
        let cached_seq =
          Synthesizer.synthesize ~config ?caches:(store_for training)
            (Prng.of_int 11) (mean_threshold_oracle ()) ~training
        in
        check_traces "cached sequential" seq cached_seq
      end;
      (* Island-model differential: with --islands K > 1, the whole
         archipelago trace must be invariant under the same axes.  The
         reference is the sequential batch-1 run (no pool, no cache);
         the checked run applies this grid point's pool, cache and batch
         settings.  Early stopping stays off here — its determinism has
         its own suite in test_islands.ml — so every proposal is scored
         exactly on both arms. *)
      if islands > 1 then begin
        let training = training_set (Prng.of_int 23) 5 in
        let icfg =
          {
            Oppsla.Islands.default_config with
            Oppsla.Islands.islands;
            rounds = 4;
            migration_period = 2;
            max_queries_per_image = Some 64;
          }
        in
        let run ~use_pool cfg =
          Oppsla.Islands.synthesize ~config:cfg
            ?pool:(if use_pool then Some pool else None)
            ?caches:(if use_pool then store_for training else None)
            (Prng.of_int 23) (mean_threshold_oracle ()) ~training
        in
        let ref_out =
          untraced (fun () ->
              run ~use_pool:false { icfg with Oppsla.Islands.batch = 1 })
        in
        let par_out = run ~use_pool:true { icfg with Oppsla.Islands.batch } in
        if ref_out.Oppsla.Islands.synth_queries
           <> par_out.Oppsla.Islands.synth_queries
        then
          fail "islands: query spend diverged (%d <> %d)"
            ref_out.Oppsla.Islands.synth_queries
            par_out.Oppsla.Islands.synth_queries;
        if
          ref_out.Oppsla.Islands.best_avg_queries
          <> par_out.Oppsla.Islands.best_avg_queries
          || not
               (Oppsla.Condition.equal_program ref_out.Oppsla.Islands.best
                  par_out.Oppsla.Islands.best)
        then fail "islands: best program diverged";
        if
          List.length ref_out.Oppsla.Islands.trace
          <> List.length par_out.Oppsla.Islands.trace
        then fail "islands: trace length diverged";
        List.iter2
          (fun (x : Oppsla.Islands.entry) (y : Oppsla.Islands.entry) ->
            if
              x.Oppsla.Islands.round <> y.Oppsla.Islands.round
              || x.Oppsla.Islands.island <> y.Oppsla.Islands.island
              || x.Oppsla.Islands.accepted <> y.Oppsla.Islands.accepted
              || x.Oppsla.Islands.avg_queries <> y.Oppsla.Islands.avg_queries
              || x.Oppsla.Islands.queries_total
                 <> y.Oppsla.Islands.queries_total
              || not
                   (Oppsla.Condition.equal_program x.Oppsla.Islands.program
                      y.Oppsla.Islands.program)
            then
              fail "islands: trace diverged at round %d island %d"
                x.Oppsla.Islands.round x.Oppsla.Islands.island)
          ref_out.Oppsla.Islands.trace par_out.Oppsla.Islands.trace
      end;
      (match trace_file with
      | None -> ()
      | Some f ->
          Telemetry.Trace.close ();
          (* The traced arm must actually have emitted events — an empty
             trace would mean the differential tested nothing. *)
          let ic = open_in f in
          let lines = ref 0 in
          (try
             while true do
               ignore (input_line ic);
               incr lines
             done
           with End_of_file -> close_in ic);
          if !lines <= 2 then
            fail "diff_runner: --trace on produced an empty trace (%d lines)"
              !lines;
          Sys.remove f);
      (match observatory with
      | None -> ()
      | Some (server, sampler) ->
          (* The observed arm must have actually been observable: a valid
             Prometheus exposition and a non-stalled health verdict from
             the live server, and at least one sampler tick. *)
          let port = Telemetry.Http_server.port server in
          let status, body = Telemetry.Http_server.fetch ~port "/metrics" in
          if status <> 200 then
            fail "diff_runner: GET /metrics returned %d" status;
          if String.length body = 0 then
            fail "diff_runner: GET /metrics returned an empty body";
          let contains_sub ~sub s =
            let n = String.length sub and m = String.length s in
            let rec go i =
              i + n <= m && (String.sub s i n = sub || go (i + 1))
            in
            n = 0 || go 0
          in
          if not (contains_sub ~sub:"# TYPE" body) then
            fail "diff_runner: /metrics body is not a Prometheus exposition";
          let hstatus, hbody = Telemetry.Http_server.fetch ~port "/healthz" in
          if hstatus <> 200 then
            fail "diff_runner: GET /healthz returned %d (%s)" hstatus hbody;
          if not (contains_sub ~sub:{|"status": "ok"|} hbody) then
            fail "diff_runner: /healthz did not report ok: %s" hbody;
          Telemetry.Sampler.stop sampler;
          Telemetry.Http_server.stop server;
          if
            Telemetry.Counter.get
              (Telemetry.Metrics.counter "sampler.samples")
            = 0
          then fail "diff_runner: sampler never ticked");
      Printf.printf
        "diff_runner: sequential and %d-domain evaluation bit-identical \
         with cache %s at batch width %d, trace %s, observe %s, islands \
         %d (12 evaluation trials + synthesis trace%s)\n"
        domains
        (if cache then "on" else "off")
        batch
        (if trace then "on" else "off")
        (if observe then "on" else "off")
        islands
        (if islands > 1 then " + island-model trace" else "")
      end)

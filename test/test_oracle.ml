(* Tests for the query-metered oracle. *)

let image = Helpers.flat_image ~size:4 0.6

let counting () =
  let o = Helpers.mean_threshold_oracle () in
  Alcotest.(check int) "starts at 0" 0 (Oracle.queries o);
  ignore (Oracle.scores o image);
  ignore (Oracle.classify o image);
  ignore (Oracle.score_of o image 0);
  Alcotest.(check int) "three queries" 3 (Oracle.queries o)

let classify_bright_dark () =
  let o = Helpers.mean_threshold_oracle () in
  Alcotest.(check int) "bright is class 1" 1
    (Oracle.classify o (Helpers.flat_image ~size:4 0.9));
  Alcotest.(check int) "dark is class 0" 0
    (Oracle.classify o (Helpers.flat_image ~size:4 0.1))

let budget_enforced () =
  let o = Helpers.mean_threshold_oracle ~budget:2 () in
  ignore (Oracle.scores o image);
  ignore (Oracle.scores o image);
  Alcotest.(check bool) "exhausted" true (Oracle.exhausted o);
  Alcotest.check_raises "third query raises" (Oracle.Budget_exhausted 2)
    (fun () -> ignore (Oracle.scores o image))

let remaining_budget () =
  let o = Helpers.mean_threshold_oracle ~budget:5 () in
  Alcotest.(check (option int)) "full budget" (Some 5) (Oracle.remaining o);
  ignore (Oracle.scores o image);
  Alcotest.(check (option int)) "one spent" (Some 4) (Oracle.remaining o);
  let unlimited = Helpers.mean_threshold_oracle () in
  Alcotest.(check (option int)) "unlimited" None (Oracle.remaining unlimited)

let reset_counter () =
  let o = Helpers.mean_threshold_oracle ~budget:2 () in
  ignore (Oracle.scores o image);
  ignore (Oracle.scores o image);
  Oracle.reset o;
  Alcotest.(check int) "counter reset" 0 (Oracle.queries o);
  ignore (Oracle.scores o image);
  Alcotest.(check int) "usable again" 1 (Oracle.queries o)

let set_budget_dynamic () =
  let o = Helpers.mean_threshold_oracle () in
  Oracle.set_budget o (Some 1);
  ignore (Oracle.scores o image);
  Alcotest.check_raises "budget applies" (Oracle.Budget_exhausted 1)
    (fun () -> ignore (Oracle.scores o image));
  Oracle.set_budget o None;
  ignore (Oracle.scores o image);
  Alcotest.(check int) "lifted" 2 (Oracle.queries o)

let unmetered_does_not_count () =
  let o = Helpers.mean_threshold_oracle ~budget:1 () in
  ignore (Oracle.unmetered_classify o image);
  ignore (Oracle.unmetered_scores o image);
  Alcotest.(check int) "not counted" 0 (Oracle.queries o)

let of_fn_validates_classes () =
  Alcotest.(check bool) "num_classes <= 0 raises" true
    (try
       ignore (Oracle.of_fn ~num_classes:0 (fun _ -> Tensor.zeros [| 0 |]));
       false
     with Invalid_argument _ -> true);
  let bad =
    Oracle.of_fn ~num_classes:3 (fun _ -> Tensor.zeros [| 2 |])
  in
  Alcotest.(check bool) "wrong vector length raises" true
    (try
       ignore (Oracle.scores bad image);
       false
     with Invalid_argument _ -> true)

let clone_independent_and_cacheless () =
  let o = Helpers.mean_threshold_oracle ~budget:5 () in
  ignore (Oracle.scores o image);
  Oracle.set_cache o (Some (Score_cache.create ()));
  let c = Oracle.clone o in
  Alcotest.(check int) "clone counter starts at 0" 0 (Oracle.queries c);
  Alcotest.(check (option int)) "clone inherits the budget" (Some 5)
    (Oracle.budget c);
  (* A clone is meant to cross a domain boundary, so it must not alias
     the parent's unsynchronized memo table. *)
  Alcotest.(check bool) "clone drops the cache" true (Oracle.cache c = None);
  Alcotest.(check bool) "parent keeps the cache" true
    (Oracle.cache o <> None);
  ignore (Oracle.scores c image);
  Alcotest.(check int) "counters are independent" 1 (Oracle.queries o)

let decision_mode_observe () =
  let o = Helpers.mean_threshold_oracle () in
  let bright = Helpers.flat_image ~size:4 0.9 in
  Alcotest.(check int) "decide = argmax" 1 (Oracle.decide o bright);
  Alcotest.(check int) "decide is metered" 1 (Oracle.queries o);
  let s = Oracle.scores o bright in
  Alcotest.(check bool) "score-mode observe is the identity" true
    (Oracle.observe o s == s);
  Oracle.set_mode o Oracle.Decision;
  let h = Oracle.observe o s in
  Alcotest.(check (float 1e-9)) "winner collapses to 1" 1.0
    (Tensor.get_flat h 1);
  Alcotest.(check (float 1e-9)) "loser collapses to 0" 0.0
    (Tensor.get_flat h 0)

(* The clone contract for decision mode, pinned: the cache (per-image
   mutable working state) is dropped, the counter restarts, the budget
   is kept — and the mode (the threat-model identity of the oracle) is
   PRESERVED, as an independent copy. *)
let clone_mode_contract () =
  let o = Helpers.mean_threshold_oracle ~budget:5 () in
  Oracle.set_mode o Oracle.Decision;
  Oracle.set_cache o (Some (Score_cache.create ()));
  ignore (Oracle.scores o image);
  let c = Oracle.clone o in
  Alcotest.(check bool) "clone preserves Decision mode" true
    (Oracle.mode c = Oracle.Decision);
  Alcotest.(check bool) "clone still drops the cache" true
    (Oracle.cache c = None);
  Alcotest.(check int) "clone still resets the counter" 0 (Oracle.queries c);
  Alcotest.(check (option int)) "clone still keeps the budget" (Some 5)
    (Oracle.budget c);
  (* The copy is independent in both directions. *)
  Oracle.set_mode c Oracle.Score;
  Alcotest.(check bool) "flipping the clone leaves the parent" true
    (Oracle.mode o = Oracle.Decision);
  Oracle.set_mode c Oracle.Decision;
  Oracle.set_mode o Oracle.Score;
  Alcotest.(check bool) "flipping the parent leaves the clone" true
    (Oracle.mode c = Oracle.Decision);
  Alcotest.(check bool) "score-mode clone stays in score mode" true
    (Oracle.mode (Oracle.clone o) = Oracle.Score)

let of_network_metadata () =
  let net =
    Nn.Zoo.vgg_tiny (Prng.of_int 3) ~image_size:16 ~num_classes:10
  in
  let o = Oracle.of_network net in
  Alcotest.(check int) "classes" 10 (Oracle.num_classes o);
  Alcotest.(check string) "name" "vgg_tiny" (Oracle.name o)

let suite =
  [
    Alcotest.test_case "query counting" `Quick counting;
    Alcotest.test_case "classify bright/dark" `Quick classify_bright_dark;
    Alcotest.test_case "budget enforced" `Quick budget_enforced;
    Alcotest.test_case "remaining budget" `Quick remaining_budget;
    Alcotest.test_case "reset" `Quick reset_counter;
    Alcotest.test_case "set_budget" `Quick set_budget_dynamic;
    Alcotest.test_case "unmetered calls" `Quick unmetered_does_not_count;
    Alcotest.test_case "of_fn validation" `Quick of_fn_validates_classes;
    Alcotest.test_case "clone: fresh counter, no cache" `Quick
      clone_independent_and_cacheless;
    Alcotest.test_case "decision mode: decide and observe" `Quick
      decision_mode_observe;
    Alcotest.test_case "clone: mode preserved, independent" `Quick
      clone_mode_contract;
    Alcotest.test_case "of_network metadata" `Quick of_network_metadata;
  ]

(* Tests for PPM encoding and image composition. *)

let sample =
  Tensor.init [| 3; 2; 3 |] (fun i -> float_of_int (i mod 7) /. 7.)

let roundtrip () =
  let back = Image.of_ppm (Image.to_ppm sample) in
  Alcotest.(check (array int)) "shape" [| 3; 2; 3 |] (Tensor.shape back);
  (* 8-bit quantization: within 1/255 elementwise. *)
  Alcotest.(check bool) "close" true (Tensor.equal ~eps:(1. /. 255.) sample back)

let roundtrip_exact_on_quantized () =
  (* Values already on the 8-bit grid round-trip exactly. *)
  let img = Tensor.init [| 3; 4; 4 |] (fun i -> float_of_int (i mod 256) /. 255.) in
  let back = Image.of_ppm (Image.to_ppm img) in
  Alcotest.(check bool) "exact" true (Tensor.equal ~eps:1e-9 img back)

let file_roundtrip () =
  let path = Filename.temp_file "oppsla_img" ".ppm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Image.write_ppm path sample;
      let back = Image.read_ppm path in
      Alcotest.(check bool) "close" true
        (Tensor.equal ~eps:(1. /. 255.) sample back))

let header_format () =
  let ppm = Image.to_ppm sample in
  Alcotest.(check bool) "P6 header" true (String.length ppm > 2 && String.sub ppm 0 2 = "P6");
  Alcotest.(check bool) "mentions dims" true (Helpers.contains ppm "3 2")

let rejects_malformed () =
  let expect_fail s =
    Alcotest.(check bool) ("rejects " ^ String.escaped (String.sub s 0 (min 12 (String.length s)))) true
      (try
         ignore (Image.of_ppm s);
         false
       with Image.Format_error _ -> true)
  in
  expect_fail "";
  expect_fail "P5\n2 2\n255\nxxxx";
  expect_fail "P6\n2 2\n65535\n";
  expect_fail "P6\n2 2\n255\nab" (* truncated *);
  expect_fail "P6\n-1 2\n255\n"

let comment_in_header () =
  let ppm = "P6\n# a comment\n1 1\n255\nABC" in
  let img = Image.of_ppm ppm in
  Alcotest.(check (float 1e-6)) "red byte" (float_of_int (Char.code 'A') /. 255.)
    (Tensor.get img [| 0; 0; 0 |])

let rejects_non_color () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Image.to_ppm (Tensor.zeros [| 1; 2; 2 |]));
       false
     with Invalid_argument _ -> true)

let upscale_nearest () =
  let img = Tensor.init [| 3; 1; 2 |] float_of_int in
  let big = Image.upscale ~factor:3 img in
  Alcotest.(check (array int)) "shape" [| 3; 3; 6 |] (Tensor.shape big);
  Alcotest.(check (float 0.)) "block value" (Tensor.get img [| 0; 0; 1 |])
    (Tensor.get big [| 0; 2; 5 |]);
  Alcotest.(check (float 0.)) "other block" (Tensor.get img [| 0; 0; 0 |])
    (Tensor.get big [| 0; 0; 2 |])

let side_by_side_layout () =
  let a = Tensor.create [| 3; 2; 2 |] 0.25 in
  let b = Tensor.create [| 3; 2; 3 |] 0.75 in
  let panel = Image.side_by_side ~gap:1 ~gap_value:0. [ a; b ] in
  Alcotest.(check (array int)) "shape" [| 3; 2; 6 |] (Tensor.shape panel);
  Alcotest.(check (float 0.)) "left" 0.25 (Tensor.get panel [| 0; 0; 0 |]);
  Alcotest.(check (float 0.)) "gap" 0. (Tensor.get panel [| 0; 0; 2 |]);
  Alcotest.(check (float 0.)) "right" 0.75 (Tensor.get panel [| 0; 0; 3 |])

let side_by_side_validates () =
  let a = Tensor.zeros [| 3; 2; 2 |] and b = Tensor.zeros [| 3; 3; 2 |] in
  Alcotest.(check bool) "height mismatch raises" true
    (try
       ignore (Image.side_by_side [ a; b ]);
       false
     with Invalid_argument _ -> true)

let highlight_ring () =
  let original = Tensor.create [| 3; 5; 5 |] 0.5 in
  let modified = Tensor.copy original in
  (* One-pixel change at the centre. *)
  Tensor.set modified [| 0; 2; 2 |] 1.;
  let marked = Image.highlight_diff original modified in
  (* The changed pixel keeps its adversarial value. *)
  Alcotest.(check (float 0.)) "pixel kept" 1. (Tensor.get marked [| 0; 2; 2 |]);
  (* Its neighbours are painted red. *)
  Alcotest.(check (float 0.)) "ring red" 1. (Tensor.get marked [| 0; 1; 1 |]);
  Alcotest.(check (float 0.)) "ring green 0" 0. (Tensor.get marked [| 1; 1; 1 |]);
  (* Far pixels untouched. *)
  Alcotest.(check (float 0.)) "far untouched" 0.5
    (Tensor.get marked [| 0; 4; 4 |])

let qcheck_roundtrip_quantized =
  QCheck.Test.make ~name:"ppm roundtrip within quantization" ~count:50
    QCheck.(pair small_int (pair (int_range 1 6) (int_range 1 6)))
    (fun (seed, (h, w)) ->
      let img = Tensor.rand_uniform (Prng.of_int seed) [| 3; h; w |] in
      Tensor.equal ~eps:(1. /. 255.) img (Image.of_ppm (Image.to_ppm img)))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick roundtrip;
    Alcotest.test_case "roundtrip exact on grid" `Quick
      roundtrip_exact_on_quantized;
    Alcotest.test_case "file roundtrip" `Quick file_roundtrip;
    Alcotest.test_case "header format" `Quick header_format;
    Alcotest.test_case "rejects malformed" `Quick rejects_malformed;
    Alcotest.test_case "comment in header" `Quick comment_in_header;
    Alcotest.test_case "rejects non-color" `Quick rejects_non_color;
    Alcotest.test_case "upscale nearest" `Quick upscale_nearest;
    Alcotest.test_case "side by side layout" `Quick side_by_side_layout;
    Alcotest.test_case "side by side validates" `Quick side_by_side_validates;
    Alcotest.test_case "highlight ring" `Quick highlight_ring;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_quantized;
  ]

(* Tests for the baseline attacks: Sketch+False, Sparse-RS, SuOPA and
   Sketch+Random. *)

module C = Oppsla.Condition
module Sketch = Oppsla.Sketch

let size = 4
let full_space = 8 * size * size
let attackable = Helpers.flat_image ~size 0.49
let hopeless = Helpers.flat_image ~size 0.30
let oracle () = Helpers.mean_threshold_oracle ()

(* Sketch+False *)

let fixed_program_is_const_false () =
  let b1, b2, b3, b4 = C.conditions Baselines.Fixed.program in
  List.iter
    (fun c ->
      Alcotest.(check bool) "const false" true (C.equal c (C.Const false)))
    [ b1; b2; b3; b4 ]

let fixed_equals_sketch_with_false () =
  let a = Baselines.Fixed.attack (oracle ()) ~image:attackable ~true_class:0 in
  let b =
    Sketch.attack (oracle ()) C.const_false_program ~image:attackable
      ~true_class:0
  in
  Alcotest.(check int) "same queries" b.Sketch.queries a.Sketch.queries;
  Alcotest.(check bool) "same success" (b.Sketch.adversarial <> None)
    (a.Sketch.adversarial <> None)

(* Sparse-RS *)

let sparse_rs_finds_easy_target () =
  (* Half the corners flip the 0.49 image at any location, so random
     search succeeds fast. *)
  let r =
    Baselines.Sparse_rs.attack (Prng.of_int 1) (oracle ()) ~image:attackable
      ~true_class:0
  in
  (match r.Sketch.adversarial with
  | None -> Alcotest.fail "expected success"
  | Some (pair, img') ->
      Alcotest.(check int) "flips" 1
        (Oracle.unmetered_classify (oracle ()) img');
      ignore pair);
  Alcotest.(check bool) "few queries" true (r.Sketch.queries <= 16)

let sparse_rs_respects_budget () =
  let config = Baselines.Sparse_rs.default_config ~max_queries:9 in
  let r =
    Baselines.Sparse_rs.attack ~config (Prng.of_int 2) (oracle ())
      ~image:hopeless ~true_class:0
  in
  Alcotest.(check int) "stopped at cap" 9 r.Sketch.queries;
  Alcotest.(check bool) "failed" true (r.Sketch.adversarial = None)

let sparse_rs_respects_oracle_budget () =
  let o = Helpers.mean_threshold_oracle ~budget:5 () in
  let r =
    Baselines.Sparse_rs.attack (Prng.of_int 3) o ~image:hopeless ~true_class:0
  in
  Alcotest.(check int) "oracle budget" 5 r.Sketch.queries

let sparse_rs_deterministic () =
  let run () =
    Baselines.Sparse_rs.attack (Prng.of_int 4) (oracle ()) ~image:attackable
      ~true_class:0
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same queries" a.Sketch.queries b.Sketch.queries

let sparse_rs_never_exceeds_default () =
  let r =
    Baselines.Sparse_rs.attack (Prng.of_int 5) (oracle ()) ~image:hopeless
      ~true_class:0
  in
  Alcotest.(check int) "default cap is the space size" full_space
    r.Sketch.queries

(* SuOPA *)

let su_opa_population_validated () =
  let config = { (Baselines.Su_opa.default_config ~max_queries:100) with population = 3 } in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Baselines.Su_opa.attack ~config (Prng.of_int 1) (oracle ())
            ~image:attackable ~true_class:0);
       false
     with Invalid_argument _ -> true)

let su_opa_spends_budget_on_hopeless () =
  let config =
    { (Baselines.Su_opa.default_config ~max_queries:50) with population = 8 }
  in
  let r =
    Baselines.Su_opa.attack ~config (Prng.of_int 2) (oracle ()) ~image:hopeless
      ~true_class:0
  in
  Alcotest.(check int) "whole budget" 50 r.Sketch.queries;
  Alcotest.(check bool) "failed" true (r.Sketch.adversarial = None)

let su_opa_finds_easy_target () =
  let config =
    { (Baselines.Su_opa.default_config ~max_queries:2000) with population = 10 }
  in
  let r =
    Baselines.Su_opa.attack ~config (Prng.of_int 3) (oracle ())
      ~image:attackable ~true_class:0
  in
  match r.Sketch.adversarial with
  | None -> Alcotest.fail "expected success"
  | Some (_, img') ->
      Alcotest.(check int) "flips" 1 (Oracle.unmetered_classify (oracle ()) img');
      (* Batch semantics: success is only declared once a whole batch has
         been scored, so at least the initial population was queried. *)
      Alcotest.(check bool) "at least the population" true
        (r.Sketch.queries >= 10)

let su_opa_deterministic () =
  let run () =
    let config =
      { (Baselines.Su_opa.default_config ~max_queries:500) with population = 10 }
    in
    Baselines.Su_opa.attack ~config (Prng.of_int 4) (oracle ())
      ~image:attackable ~true_class:0
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same queries" a.Sketch.queries b.Sketch.queries

let su_opa_minimum_queries_is_population () =
  (* Success cannot be declared before the whole initial population is
     scored, unless an initial candidate already succeeds; on a hopeless
     image with a budget equal to the population, exactly the population
     is spent. *)
  let config =
    { (Baselines.Su_opa.default_config ~max_queries:12) with population = 12 }
  in
  let r =
    Baselines.Su_opa.attack ~config (Prng.of_int 5) (oracle ()) ~image:hopeless
      ~true_class:0
  in
  Alcotest.(check int) "population queries" 12 r.Sketch.queries

(* Sketch+Random *)

let random_search_picks_best () =
  let evaluated = ref [] in
  let evaluator program _samples =
    let avg = 100. -. float_of_int (List.length !evaluated) in
    evaluated := (program, avg) :: !evaluated;
    {
      Oppsla.Score.avg_queries = avg;
      successes = 1;
      attempts = 1;
      total_queries = 7;
      per_image = [| { Oppsla.Score.queries = 7; success = true } |];
    }
  in
  let out =
    Baselines.Random_search.synthesize ~samples:10 ~evaluator (Prng.of_int 6)
      (oracle ())
      ~training:[| (attackable, 0) |]
  in
  (* The evaluator returns decreasing averages, so the last program wins. *)
  Alcotest.(check (float 0.)) "lowest avg" 91. out.Baselines.Random_search.best_avg_queries;
  Alcotest.(check int) "synth queries summed" 70
    out.Baselines.Random_search.synth_queries;
  match !evaluated with
  | (last, _) :: _ ->
      Alcotest.(check bool) "best is argmin" true
        (C.equal_program last out.Baselines.Random_search.best)
  | [] -> Alcotest.fail "no evaluations"

let random_search_validates () =
  Alcotest.(check bool) "empty training raises" true
    (try
       ignore
         (Baselines.Random_search.synthesize (Prng.of_int 1) (oracle ())
            ~training:[||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "samples <= 0 raises" true
    (try
       ignore
         (Baselines.Random_search.synthesize ~samples:0 (Prng.of_int 1)
            (oracle ())
            ~training:[| (attackable, 0) |]);
       false
     with Invalid_argument _ -> true)

let random_search_end_to_end () =
  let out =
    Baselines.Random_search.synthesize ~samples:5 ~max_queries_per_image:64
      (Prng.of_int 7) (oracle ())
      ~training:[| (attackable, 0); (Helpers.flat_image ~size 0.52, 1) |]
  in
  (* Both images succeed in one query under any program here. *)
  Alcotest.(check (float 1e-9)) "avg" 1. out.Baselines.Random_search.best_avg_queries

let suite =
  [
    Alcotest.test_case "fixed program is const false" `Quick
      fixed_program_is_const_false;
    Alcotest.test_case "fixed equals sketch" `Quick fixed_equals_sketch_with_false;
    Alcotest.test_case "sparse-rs finds easy target" `Quick
      sparse_rs_finds_easy_target;
    Alcotest.test_case "sparse-rs respects budget" `Quick
      sparse_rs_respects_budget;
    Alcotest.test_case "sparse-rs respects oracle budget" `Quick
      sparse_rs_respects_oracle_budget;
    Alcotest.test_case "sparse-rs deterministic" `Quick sparse_rs_deterministic;
    Alcotest.test_case "sparse-rs default cap" `Quick
      sparse_rs_never_exceeds_default;
    Alcotest.test_case "su-opa population validated" `Quick
      su_opa_population_validated;
    Alcotest.test_case "su-opa spends budget" `Quick
      su_opa_spends_budget_on_hopeless;
    Alcotest.test_case "su-opa finds easy target" `Quick
      su_opa_finds_easy_target;
    Alcotest.test_case "su-opa deterministic" `Quick su_opa_deterministic;
    Alcotest.test_case "su-opa minimum queries" `Quick
      su_opa_minimum_queries_is_population;
    Alcotest.test_case "random search picks best" `Quick
      random_search_picks_best;
    Alcotest.test_case "random search validates" `Quick random_search_validates;
    Alcotest.test_case "random search end to end" `Quick
      random_search_end_to_end;
  ]

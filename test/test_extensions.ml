(* Tests for the extensions beyond the paper's core setting: targeted
   attacks and the naive reference queue. *)

module C = Oppsla.Condition
module Sketch = Oppsla.Sketch
module Pair = Oppsla.Pair
module Location = Oppsla.Location
module PQ = Oppsla.Pair_queue
module PQN = Oppsla.Pair_queue_naive

(* A 3-class toy classifier: scores proportional to the per-channel
   means (red / green / blue). *)
let channel_oracle () =
  Oracle.of_fn ~name:"channel-means" ~num_classes:3 (fun x ->
      let c = Tensor.dim x 0 and h = Tensor.dim x 1 and w = Tensor.dim x 2 in
      assert (c = 3);
      let mean ch =
        let acc = ref 0. in
        for i = 0 to (h * w) - 1 do
          acc := !acc +. Tensor.get_flat x ((ch * h * w) + i)
        done;
        !acc /. float_of_int (h * w)
      in
      Tensor.softmax (Tensor.of_array [| 3 |] [| mean 0; mean 1; mean 2 |]))

(* 2x2 image dominated by red: one pixel painted a pure color flips the
   winner to that color's class. *)
let reddish =
  let img = Tensor.zeros [| 3; 2; 2 |] in
  for i = 0 to 3 do
    Tensor.set_flat img i 0.30;          (* red *)
    Tensor.set_flat img (4 + i) 0.20;    (* green *)
    Tensor.set_flat img (8 + i) 0.28     (* blue *)
  done;
  img

let targeted_attack_reaches_target () =
  let oracle = channel_oracle () in
  Alcotest.(check int) "clean class is red" 0
    (Oracle.unmetered_classify oracle reddish);
  List.iter
    (fun target ->
      let r =
        Sketch.attack ~goal:(Sketch.Targeted target) oracle
          C.const_false_program ~image:reddish ~true_class:0
      in
      match r.Sketch.adversarial with
      | None -> Alcotest.failf "no targeted example for class %d" target
      | Some (_, adv) ->
          Alcotest.(check int) "prediction is the target" target
            (Oracle.unmetered_classify oracle adv))
    [ 1; 2 ]

let targeted_needs_more_or_equal_queries () =
  (* The targeted success set is a subset of the untargeted one, so with
     the same program the targeted attack can never need fewer queries. *)
  let oracle = channel_oracle () in
  let untargeted =
    Sketch.attack oracle C.const_false_program ~image:reddish ~true_class:0
  in
  List.iter
    (fun target ->
      let targeted =
        Sketch.attack ~goal:(Sketch.Targeted target) (channel_oracle ())
          C.const_false_program ~image:reddish ~true_class:0
      in
      Alcotest.(check bool) "subset property" true
        (targeted.Sketch.queries >= untargeted.Sketch.queries))
    [ 1; 2 ]

let targeted_impossible_exhausts () =
  (* Target = the true class: "success" would require predicting the true
     class, but candidates only count when the goal test passes; since
     every perturbed image that still predicts class 0 *does* satisfy
     Targeted 0, the first query succeeds trivially.  The interesting
     impossible case is a class that can never win: use the
     mean-threshold oracle where class 1 is unreachable from a dark
     image. *)
  let oracle = Helpers.mean_threshold_oracle () in
  let image = Helpers.flat_image ~size:4 0.30 in
  let r =
    Sketch.attack ~goal:(Sketch.Targeted 1) oracle C.const_false_program
      ~image ~true_class:0
  in
  Alcotest.(check bool) "no success" true (r.Sketch.adversarial = None);
  Alcotest.(check int) "full enumeration" (8 * 4 * 4) r.Sketch.queries

let success_exists_targeted () =
  let oracle = channel_oracle () in
  Alcotest.(check bool) "green reachable" true
    (Sketch.success_exists ~goal:(Sketch.Targeted 1) oracle ~image:reddish
       ~true_class:0);
  let dark_oracle = Helpers.mean_threshold_oracle () in
  Alcotest.(check bool) "bright class unreachable" false
    (Sketch.success_exists ~goal:(Sketch.Targeted 1) dark_oracle
       ~image:(Helpers.flat_image ~size:4 0.30) ~true_class:0)

let targeted_score_evaluate () =
  let e =
    Oppsla.Score.evaluate ~goal:(Sketch.Targeted 2) (channel_oracle ())
      C.const_false_program
      [| (reddish, 0) |]
  in
  Alcotest.(check int) "one success" 1 e.Oppsla.Score.successes

let targeted_synthesis_runs () =
  let cfg =
    {
      Oppsla.Synthesizer.default_config with
      max_iters = 3;
      goal = Sketch.Targeted 2;
      max_queries_per_image = Some 16;
    }
  in
  let out =
    Oppsla.Synthesizer.synthesize ~config:cfg (Prng.of_int 5)
      (channel_oracle ())
      ~training:[| (reddish, 0) |]
  in
  Alcotest.(check bool) "finite avg" true
    (out.Oppsla.Synthesizer.final_avg_queries < 1e6)

(* Few-pixel Sparse-RS *)

let multi_pixel_validates () =
  Alcotest.(check bool) "k = 0 raises" true
    (try
       ignore
         (Baselines.Sparse_rs.attack_multi ~k:0 (Prng.of_int 1)
            (Helpers.mean_threshold_oracle ())
            ~image:(Helpers.flat_image ~size:4 0.4) ~true_class:0);
       false
     with Invalid_argument _ -> true)

let multi_pixel_beats_single () =
  (* Brightness 0.45 on a 4x4 image: one white pixel moves the mean by
     3*0.55/48 = 0.034 (not enough to cross 0.5), two white pixels by
     0.069 (enough).  So k=1 must fail and k=2 can succeed. *)
  let image = Helpers.flat_image ~size:4 0.45 in
  let single =
    Baselines.Sparse_rs.attack (Prng.of_int 3)
      (Helpers.mean_threshold_oracle ())
      ~image ~true_class:0
  in
  Alcotest.(check bool) "k=1 impossible" true
    (single.Sketch.adversarial = None);
  let config = Baselines.Sparse_rs.default_config ~max_queries:2000 in
  let multi =
    Baselines.Sparse_rs.attack_multi ~config ~k:2 (Prng.of_int 3)
      (Helpers.mean_threshold_oracle ())
      ~image ~true_class:0
  in
  match multi.Baselines.Sparse_rs.adversarial with
  | None -> Alcotest.fail "k=2 should succeed"
  | Some (pairs, adv) ->
      Alcotest.(check int) "two pixels" 2 (List.length pairs);
      (match pairs with
      | [ a; b ] ->
          Alcotest.(check bool) "distinct locations" false
            (Location.equal a.Pair.loc b.Pair.loc)
      | _ -> Alcotest.fail "wrong arity");
      Alcotest.(check int) "flips" 1
        (Oracle.unmetered_classify (Helpers.mean_threshold_oracle ()) adv)

let multi_pixel_respects_budget () =
  let config = Baselines.Sparse_rs.default_config ~max_queries:11 in
  let r =
    Baselines.Sparse_rs.attack_multi ~config ~k:3 (Prng.of_int 4)
      (Helpers.mean_threshold_oracle ())
      ~image:(Helpers.flat_image ~size:4 0.2) ~true_class:0
  in
  Alcotest.(check int) "budget" 11 r.Baselines.Sparse_rs.queries

(* Naive queue equivalence *)

let naive_full_space_matches () =
  let image = Tensor.rand_uniform (Prng.of_int 9) [| 3; 4; 4 |] in
  let a = PQ.full_space ~d1:4 ~d2:4 ~image in
  let b = PQN.full_space ~d1:4 ~d2:4 ~image in
  Alcotest.(check bool) "same order" true (PQ.to_list a = PQN.to_list b)

type op = Pop | Push_back of int | Remove of int | First of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Pop);
        (3, map (fun i -> Push_back i) (int_bound 31));
        (2, map (fun i -> Remove i) (int_bound 31));
        (2, map (fun i -> First i) (int_bound 3));
      ])

let arbitrary_ops = QCheck.make QCheck.Gen.(list_size (int_range 1 50) op_gen)

let qcheck_naive_equivalence =
  QCheck.Test.make ~name:"indexed and naive queues agree" ~count:200
    arbitrary_ops (fun ops ->
      let d2 = 2 in
      let all = List.init 32 (fun id -> Pair.of_id ~d2 id) in
      let a = PQ.init ~d1:2 ~d2 all and b = PQN.init ~d1:2 ~d2 all in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | Pop ->
              let x = PQ.pop a and y = PQN.pop b in
              if x <> y then ok := false
          | Push_back id ->
              let p = Pair.of_id ~d2 id in
              if PQ.mem a p <> PQN.mem b p then ok := false
              else if PQ.mem a p then begin
                PQ.push_back a p;
                PQN.push_back b p
              end
          | Remove id ->
              let p = Pair.of_id ~d2 id in
              if PQ.mem a p then begin
                PQ.remove a p;
                PQN.remove b p
              end
          | First li ->
              let loc = Location.of_index ~d2 li in
              if PQ.first_with_location a loc <> PQN.first_with_location b loc
              then ok := false);
          if PQ.to_list a <> PQN.to_list b then ok := false)
        ops;
      !ok)

let suite =
  [
    Alcotest.test_case "targeted attack reaches target" `Quick
      targeted_attack_reaches_target;
    Alcotest.test_case "targeted needs >= queries" `Quick
      targeted_needs_more_or_equal_queries;
    Alcotest.test_case "targeted impossible exhausts" `Quick
      targeted_impossible_exhausts;
    Alcotest.test_case "success_exists targeted" `Quick success_exists_targeted;
    Alcotest.test_case "targeted score evaluate" `Quick targeted_score_evaluate;
    Alcotest.test_case "targeted synthesis" `Quick targeted_synthesis_runs;
    Alcotest.test_case "multi-pixel validates" `Quick multi_pixel_validates;
    Alcotest.test_case "multi-pixel beats single" `Quick
      multi_pixel_beats_single;
    Alcotest.test_case "multi-pixel respects budget" `Quick
      multi_pixel_respects_budget;
    Alcotest.test_case "naive full_space matches" `Quick
      naive_full_space_matches;
    QCheck_alcotest.to_alcotest qcheck_naive_equivalence;
  ]

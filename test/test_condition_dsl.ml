(* Tests for the condition language: evaluation semantics and the
   concrete syntax (lexer/parser/printer). *)

module C = Oppsla.Condition
module Dsl = Oppsla.Dsl
module Location = Oppsla.Location
module Pair = Oppsla.Pair

(* A hand-built context: 4x4 image, pixel (1,2) = (0.2, 0.4, 0.9),
   perturbation = white, clean score of the true class 0.8, perturbed
   0.5. *)
let ctx =
  let image = Tensor.create [| 3; 4; 4 |] 0.5 in
  Tensor.set image [| 0; 1; 2 |] 0.2;
  Tensor.set image [| 1; 1; 2 |] 0.4;
  Tensor.set image [| 2; 1; 2 |] 0.9;
  {
    C.d1 = 4;
    d2 = 4;
    image;
    true_class = 1;
    (* 0.75 and 0.5 are exactly representable, so score_diff is exactly
       0.25 (comparisons below rely on this). *)
    clean_scores = Tensor.of_array [| 3 |] [| 0.125; 0.75; 0.125 |];
    pair = Pair.make ~loc:(Location.make ~row:1 ~col:2) ~corner:7;
    perturbed_scores = Tensor.of_array [| 3 |] [| 0.25; 0.5; 0.25 |];
  }

let eval_funcs () =
  let check name expected func =
    Alcotest.(check (float 1e-9)) name expected (C.eval_func func ctx)
  in
  check "max orig" 0.9 (C.Max C.Orig);
  check "min orig" 0.2 (C.Min C.Orig);
  check "avg orig" 0.5 (C.Avg C.Orig);
  check "max pert" 1. (C.Max C.Pert);
  check "min pert" 1. (C.Min C.Pert);
  check "avg pert" 1. (C.Avg C.Pert);
  check "score diff" 0.25 C.Score_diff;
  (* (1,2) in a 4x4 image: center (1.5,1.5), Linf distance 0.5. *)
  check "center" 0.5 C.Center

let eval_cmp () =
  let cond cmp threshold = C.Cmp { func = C.Score_diff; cmp; threshold } in
  Alcotest.(check bool) "lt true" true (C.eval (cond C.Lt 0.4) ctx);
  Alcotest.(check bool) "lt false" false (C.eval (cond C.Lt 0.2) ctx);
  Alcotest.(check bool) "gt true" true (C.eval (cond C.Gt 0.2) ctx);
  Alcotest.(check bool) "gt strict" false (C.eval (cond C.Gt 0.25) ctx);
  Alcotest.(check bool) "lt strict" false (C.eval (cond C.Lt 0.25) ctx)

let eval_const () =
  Alcotest.(check bool) "true" true (C.eval (C.Const true) ctx);
  Alcotest.(check bool) "false" false (C.eval (C.Const false) ctx)

let const_false_program () =
  let b1, b2, b3, b4 = C.conditions C.const_false_program in
  List.iter
    (fun c -> Alcotest.(check bool) "all false" false (C.eval c ctx))
    [ b1; b2; b3; b4 ]

let program_array_roundtrip () =
  let p = C.const_false_program in
  Alcotest.(check bool) "roundtrip" true
    (C.equal_program p (C.program_of_array (C.program_to_array p)));
  Alcotest.(check bool) "wrong arity raises" true
    (try
       ignore (C.program_of_array [| C.Const true |]);
       false
     with Invalid_argument _ -> true)

(* Parsing *)

let parse_ok src expected =
  match Dsl.parse_condition src with
  | Ok c -> Alcotest.(check bool) src true (C.equal c expected)
  | Error e -> Alcotest.failf "%s" (Dsl.describe_error src e)

let parse_conditions () =
  parse_ok "max(orig) > 0.5"
    (C.Cmp { func = C.Max C.Orig; cmp = C.Gt; threshold = 0.5 });
  parse_ok "min(pert) < .25"
    (C.Cmp { func = C.Min C.Pert; cmp = C.Lt; threshold = 0.25 });
  parse_ok "avg ( orig ) < 1e-3"
    (C.Cmp { func = C.Avg C.Orig; cmp = C.Lt; threshold = 1e-3 });
  parse_ok "score_diff > -0.5"
    (C.Cmp { func = C.Score_diff; cmp = C.Gt; threshold = -0.5 });
  parse_ok "center < 8" (C.Cmp { func = C.Center; cmp = C.Lt; threshold = 8. });
  parse_ok "true" (C.Const true);
  parse_ok "false" (C.Const false)

let parse_program_with_labels () =
  let p =
    Dsl.parse_program_exn
      "B1: score_diff < 0.21; B2: max(orig) > 0.19; B3: score_diff > 0.25; \
       B4: center < 8"
  in
  Alcotest.(check bool) "b2" true
    (C.equal p.C.b2 (C.Cmp { func = C.Max C.Orig; cmp = C.Gt; threshold = 0.19 }))

let parse_program_without_labels () =
  let p = Dsl.parse_program_exn "true; false; center > 1; score_diff < 0" in
  Alcotest.(check bool) "b1" true (C.equal p.C.b1 (C.Const true));
  Alcotest.(check bool) "b4" true
    (C.equal p.C.b4 (C.Cmp { func = C.Score_diff; cmp = C.Lt; threshold = 0. }))

let parse_program_newline_separated () =
  let p = Dsl.parse_program_exn "B1: true\nB2: false\nB3: true\nB4: false" in
  Alcotest.(check bool) "b3" true (C.equal p.C.b3 (C.Const true))

let parse_error_cases () =
  let expect_error src =
    match Dsl.parse_program src with
    | Ok _ -> Alcotest.failf "expected failure on %S" src
    | Error e ->
        (* describe_error must render without raising and mention the
           offset. *)
        let msg = Dsl.describe_error src e in
        Alcotest.(check bool) "position in range" true
          (e.Dsl.position >= 0 && e.Dsl.position <= String.length src);
        Alcotest.(check bool) "describes" true (String.length msg > 0)
  in
  List.iter expect_error
    [
      "";
      "true; true; true";
      "true; true; true; true; true";
      "mox(orig) > 1; true; true; true";
      "max(blue) > 1; true; true; true";
      "max(orig) >= 1; true; true; true";
      "max(orig) > foo; true; true; true";
      "max(orig > 1; true; true; true";
      "B2: true; B1: true; B3: true; B4: true";
      "true; true; true; true extra";
      "score_diff 0.5; true; true; true";
      "center < 1 2; true; true; true";
    ]

let error_position_points_at_problem () =
  let src = "B1: true; B2: wrong(orig) > 1; B3: true; B4: true" in
  match Dsl.parse_program src with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e ->
      Alcotest.(check int) "points at 'wrong'" (String.index src 'w')
        e.Dsl.position

let print_parse_roundtrip_example () =
  let p =
    Dsl.parse_program_exn
      "B1: score_diff < 0.21; B2: max(orig) > 0.19; B3: score_diff > 0.25; \
       B4: center < 8"
  in
  let p' = Dsl.parse_program_exn (Dsl.print_program p) in
  Alcotest.(check bool) "roundtrip" true (C.equal_program p p')

let qcheck_roundtrip =
  let config = { Oppsla.Gen.d1 = 16; d2 = 16 } in
  QCheck.Test.make ~name:"print/parse roundtrip on random programs"
    ~count:300 QCheck.small_int (fun seed ->
      let g = Prng.of_int seed in
      let p = Oppsla.Gen.random_program config g in
      let p' = Dsl.parse_program_exn (Dsl.print_program p) in
      C.equal_program p p')

let qcheck_roundtrip_with_consts =
  QCheck.Test.make ~name:"roundtrip with const conditions" ~count:50
    QCheck.(pair bool bool) (fun (a, b) ->
      let p =
        C.program_of_array [| C.Const a; C.Const b; C.Const a; C.Const b |]
      in
      C.equal_program p (Dsl.parse_program_exn (Dsl.print_program p)))

let suite =
  [
    Alcotest.test_case "eval funcs" `Quick eval_funcs;
    Alcotest.test_case "eval cmp" `Quick eval_cmp;
    Alcotest.test_case "eval const" `Quick eval_const;
    Alcotest.test_case "const false program" `Quick const_false_program;
    Alcotest.test_case "program array roundtrip" `Quick program_array_roundtrip;
    Alcotest.test_case "parse conditions" `Quick parse_conditions;
    Alcotest.test_case "parse labeled program" `Quick parse_program_with_labels;
    Alcotest.test_case "parse unlabeled program" `Quick
      parse_program_without_labels;
    Alcotest.test_case "parse newline separated" `Quick
      parse_program_newline_separated;
    Alcotest.test_case "parse errors" `Quick parse_error_cases;
    Alcotest.test_case "error position" `Quick error_position_points_at_problem;
    Alcotest.test_case "print/parse roundtrip" `Quick
      print_parse_roundtrip_example;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_with_consts;
  ]

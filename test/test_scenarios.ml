(* Properties of the scenario matrix: decision-based (label-only)
   oracles and the k-pixel / patch perturbation spaces.  These pin the
   invariants the scenario-differential grid in diff_runner relies on:
   mode-blind metering, order-insensitive set keys, in-bounds patch
   candidates and the degradation of score-based conditions to
   label-flip predicates. *)

module Space = Oppsla.Space
module Location = Oppsla.Location
module Gen = Oppsla.Gen
module Condition = Oppsla.Condition

(* (1) Decision-oracle metering charges exactly one query per call —
   cache hits included — and the budget trips at exactly the query
   index the score-mode path would trip at. *)
let qcheck_decision_metering =
  QCheck.Test.make
    ~name:"decision metering: one query per call, cache hits included"
    ~count:200 QCheck.small_int (fun seed ->
      let g = Prng.of_int seed in
      let calls = 1 + Prng.int g 16 in
      let o = Helpers.mean_threshold_oracle () in
      Oracle.set_mode o Oracle.Decision;
      let cache = Score_cache.create () in
      let image = Tensor.rand_uniform g ~lo:0.2 ~hi:0.8 [| 3; 4; 4 |] in
      (* The same key every time: every call after the first is a cache
         hit, and each must still cost one query. *)
      let key = Score_cache.Custom "pairs:3,7" in
      for _ = 1 to calls do
        ignore (Oracle.scores_memo o cache ~key ~input:(fun () -> image))
      done;
      let metered = Oracle.queries o = calls in
      Oracle.set_budget o (Some calls);
      let trips =
        try
          ignore (Oracle.scores_memo o cache ~key ~input:(fun () -> image));
          false
        with Oracle.Budget_exhausted b -> b = calls
      in
      metered && trips)

(* (2) k-pixel [pairs:] cache keys are a pure function of the set — any
   permutation of the same pixel set produces the identical key. *)
let qcheck_kpixel_key_order_insensitive =
  QCheck.Test.make ~name:"kpixel set keys are order-insensitive" ~count:300
    QCheck.small_int (fun seed ->
      let g = Prng.of_int (seed + 1) in
      let d1 = 2 + Prng.int g 7 and d2 = 2 + Prng.int g 7 in
      let config = { Gen.d1; d2 } in
      let k = 1 + Prng.int g (min 5 (d1 * d2)) in
      let pairs = Gen.random_pixel_set config g ~k in
      let arr = Array.of_list pairs in
      for i = Array.length arr - 1 downto 1 do
        let j = Prng.int g (i + 1) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t
      done;
      Space.set_key ~d2 pairs = Space.set_key ~d2 (Array.to_list arr))

(* (3) Patch candidates never leave the image: for arbitrary image and
   patch shapes, every anchor's cells are in bounds (and the anchor list
   is empty exactly when the patch cannot fit), so [perturb_patch]
   accepts every enumerated anchor. *)
let qcheck_patch_candidates_in_bounds =
  QCheck.Test.make ~name:"patch candidates stay inside the image" ~count:300
    QCheck.small_int (fun seed ->
      let g = Prng.of_int (seed + 2) in
      let d1 = 1 + Prng.int g 8 and d2 = 1 + Prng.int g 8 in
      let h = 1 + Prng.int g 5 and w = 1 + Prng.int g 5 in
      let anchors = Location.patch_anchors ~d1 ~d2 ~h ~w in
      let fits = h <= d1 && w <= d2 in
      let enumeration_ok =
        if fits then List.length anchors = (d1 - h + 1) * (d2 - w + 1)
        else anchors = []
      in
      let cells_ok =
        List.for_all
          (fun anchor ->
            List.for_all
              (Location.in_bounds ~d1 ~d2)
              (Location.patch_cells ~anchor ~h ~w))
          anchors
      in
      let perturb_ok =
        match anchors with
        | [] -> true
        | _ ->
            let image = Tensor.create [| 3; d1; d2 |] 0.5 in
            let anchor = List.nth anchors (Prng.int g (List.length anchors)) in
            let x' =
              Space.perturb_patch image ~anchor ~h ~w ~corner:(Prng.int g 8)
            in
            Tensor.shape x' = Tensor.shape image
      in
      enumeration_ok && cells_ok && perturb_ok)

(* (4) The label-flip predicate (Score_diff > 1/2 on decision-mode
   observations) agrees with the argmax of the raw score oracle: the
   one-hot collapse loses scores but never the label. *)
let qcheck_label_flip_agrees_with_argmax =
  QCheck.Test.make ~name:"label-flip predicate = argmax of score oracle"
    ~count:300 QCheck.small_int (fun seed ->
      let g = Prng.of_int (seed + 3) in
      let size = 4 in
      let o = Helpers.mean_threshold_oracle () in
      let image = Tensor.rand_uniform g ~lo:0.3 ~hi:0.7 [| 3; size; size |] in
      let clean_raw = Oracle.scores o image in
      let true_class = Tensor.argmax clean_raw in
      let pair = Gen.random_pair { Gen.d1 = size; d2 = size } g in
      let pert_raw = Oracle.scores o (Oppsla.Sketch.perturb image pair) in
      Oracle.set_mode o Oracle.Decision;
      let ctx =
        {
          Condition.d1 = size;
          d2 = size;
          image;
          true_class;
          clean_scores = Oracle.observe o clean_raw;
          pair;
          perturbed_scores = Oracle.observe o pert_raw;
        }
      in
      let flip_predicate =
        Condition.eval
          (Condition.Cmp
             { func = Condition.Score_diff; cmp = Condition.Gt; threshold = 0.5 })
          ctx
      in
      let flipped = Tensor.argmax pert_raw <> true_class in
      flip_predicate = flipped
      && Tensor.argmax (Oracle.observe o pert_raw) = Tensor.argmax pert_raw)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_decision_metering;
    QCheck_alcotest.to_alcotest qcheck_kpixel_key_order_insensitive;
    QCheck_alcotest.to_alcotest qcheck_patch_candidates_in_bounds;
    QCheck_alcotest.to_alcotest qcheck_label_flip_agrees_with_argmax;
  ]

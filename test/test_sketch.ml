(* Tests for Algorithm 1 (the one-pixel attack sketch).

   Most tests run against the mean-threshold toy classifier from
   [Helpers]: class 1 iff the image mean exceeds 0.5.  Its geometry is
   exact: perturbing pixel (i,j) of a flat image of brightness v to
   corner (r,g,b) moves the mean by (r+g+b-3v) / (3*size^2), so we can
   predict precisely which images are attackable and by which corners. *)

module C = Oppsla.Condition
module Sketch = Oppsla.Sketch
module Pair = Oppsla.Pair
module Location = Oppsla.Location

let size = 4
let full_space = 8 * size * size

(* Brightness 0.49: class 0; corners with r+g+b >= 2 flip it.
   Brightness 0.30: class 0; no corner can flip it. *)
let attackable = Helpers.flat_image ~size 0.49
let hopeless = Helpers.flat_image ~size 0.30

let oracle () = Helpers.mean_threshold_oracle ()

let perturb_changes_three_values () =
  let img = Helpers.flat_image ~size 0.2 in
  let pair = Pair.make ~loc:(Location.make ~row:1 ~col:2) ~corner:7 in
  let img' = Sketch.perturb img pair in
  Alcotest.(check (float 0.)) "original untouched" 0.2
    (Tensor.get img [| 0; 1; 2 |]);
  Alcotest.(check (float 0.)) "red written" 1. (Tensor.get img' [| 0; 1; 2 |]);
  Alcotest.(check (float 0.)) "green written" 1. (Tensor.get img' [| 1; 1; 2 |]);
  Alcotest.(check (float 0.)) "blue written" 1. (Tensor.get img' [| 2; 1; 2 |]);
  let diff = ref 0 in
  for i = 0 to Tensor.numel img - 1 do
    if Tensor.get_flat img i <> Tensor.get_flat img' i then incr diff
  done;
  Alcotest.(check int) "exactly three values changed" 3 !diff

let success_exists_ground_truth () =
  Alcotest.(check bool) "0.49 attackable" true
    (Sketch.success_exists (oracle ()) ~image:attackable ~true_class:0);
  Alcotest.(check bool) "0.30 hopeless" false
    (Sketch.success_exists (oracle ()) ~image:hopeless ~true_class:0)

let const_false_first_query_succeeds () =
  (* On a flat 0.49 image the farthest corner from every pixel is white
     (distance 1.53 vs 1.47 for black), and white flips the class, so
     the fixed prioritization succeeds on its very first query, at the
     center-most location. *)
  let r =
    Sketch.attack (oracle ()) C.const_false_program ~image:attackable
      ~true_class:0
  in
  Alcotest.(check int) "one query" 1 r.Sketch.queries;
  match r.Sketch.adversarial with
  | None -> Alcotest.fail "expected success"
  | Some (pair, adversarial) ->
      Alcotest.(check int) "white corner" 7 pair.Pair.corner;
      Alcotest.(check (float 1e-9)) "center-most location" 0.5
        (Location.center_distance ~d1:size ~d2:size pair.Pair.loc);
      Alcotest.(check int) "flips the class" 1
        (Oracle.unmetered_classify (oracle ()) adversarial)

let const_false_bright_image () =
  (* Brightness 0.51, class 1: black is the farthest corner and flips. *)
  let image = Helpers.flat_image ~size 0.51 in
  let r =
    Sketch.attack (oracle ()) C.const_false_program ~image ~true_class:1
  in
  Alcotest.(check int) "one query" 1 r.Sketch.queries;
  match r.Sketch.adversarial with
  | None -> Alcotest.fail "expected success"
  | Some (pair, _) -> Alcotest.(check int) "black corner" 0 pair.Pair.corner

let hopeless_exhausts_space () =
  let r =
    Sketch.attack (oracle ()) C.const_false_program ~image:hopeless
      ~true_class:0
  in
  Alcotest.(check bool) "no adversarial" true (r.Sketch.adversarial = None);
  Alcotest.(check int) "full enumeration" full_space r.Sketch.queries

(* The queue-reordering logic must neither skip nor double-query pairs:
   on a hopeless image EVERY program spends exactly the full space. *)
let qcheck_exhaustive_for_all_programs =
  let config = Helpers.gen_config ~size in
  QCheck.Test.make ~name:"any program enumerates the whole space" ~count:60
    QCheck.small_int (fun seed ->
      let g = Prng.of_int seed in
      let program = Oppsla.Gen.random_program config g in
      let r =
        Sketch.attack (oracle ()) program ~image:hopeless ~true_class:0
      in
      r.Sketch.adversarial = None && r.Sketch.queries = full_space)

let eager_program_exhausts_too () =
  (* All-true conditions exercise the eager phase heavily. *)
  let program =
    C.program_of_array
      [| C.Const true; C.Const true; C.Const true; C.Const true |]
  in
  let r = Sketch.attack (oracle ()) program ~image:hopeless ~true_class:0 in
  Alcotest.(check int) "still full enumeration" full_space r.Sketch.queries

(* Success never depends on the program (Section 3: every instantiation
   explores the same space). *)
let qcheck_success_program_independent =
  let config = Helpers.gen_config ~size in
  QCheck.Test.make ~name:"success is program-independent" ~count:60
    QCheck.small_int (fun seed ->
      let g = Prng.of_int seed in
      let program = Oppsla.Gen.random_program config g in
      let r =
        Sketch.attack (oracle ()) program ~image:attackable ~true_class:0
      in
      match r.Sketch.adversarial with
      | None -> false
      | Some (pair, _) ->
          (* Any returned pair must genuinely flip the class, and the
             count stays within the space. *)
          let img' = Sketch.perturb attackable pair in
          Oracle.unmetered_classify (oracle ()) img' = 1
          && r.Sketch.queries >= 1
          && r.Sketch.queries <= full_space)

let max_queries_respected () =
  let r =
    Sketch.attack ~max_queries:10 (oracle ()) C.const_false_program
      ~image:hopeless ~true_class:0
  in
  Alcotest.(check int) "capped" 10 r.Sketch.queries;
  Alcotest.(check bool) "failed" true (r.Sketch.adversarial = None)

let max_queries_zero () =
  let r =
    Sketch.attack ~max_queries:0 (oracle ()) C.const_false_program
      ~image:attackable ~true_class:0
  in
  Alcotest.(check int) "no queries" 0 r.Sketch.queries;
  Alcotest.(check bool) "failed" true (r.Sketch.adversarial = None)

let oracle_budget_respected () =
  let o = Helpers.mean_threshold_oracle ~budget:7 () in
  let r =
    Sketch.attack o C.const_false_program ~image:hopeless ~true_class:0
  in
  Alcotest.(check int) "stopped at budget" 7 r.Sketch.queries;
  Alcotest.(check bool) "failed" true (r.Sketch.adversarial = None)

let deterministic () =
  let run () =
    Sketch.attack (oracle ())
      (Oppsla.Dsl.parse_program_exn
         "B1: avg(orig) < 0.6; B2: max(pert) > 0.5; B3: score_diff > 0.01; \
          B4: center < 2")
      ~image:attackable ~true_class:0
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same queries" a.Sketch.queries b.Sketch.queries;
  Alcotest.(check bool) "same outcome" true
    (match (a.Sketch.adversarial, b.Sketch.adversarial) with
    | Some (p, _), Some (q, _) -> Pair.equal p q
    | None, None -> true
    | Some _, None | None, Some _ -> false)

(* A B1 condition that always holds pushes all same-corner neighbours of
   a failed pair to the back, changing the visit order but nothing
   else. *)
let reordering_changes_order_not_totals () =
  let always_b1 =
    C.program_of_array
      [| C.Const true; C.Const false; C.Const false; C.Const false |]
  in
  let base =
    Sketch.attack (oracle ()) C.const_false_program ~image:hopeless
      ~true_class:0
  in
  let reordered =
    Sketch.attack (oracle ()) always_b1 ~image:hopeless ~true_class:0
  in
  Alcotest.(check int) "same total" base.Sketch.queries reordered.Sketch.queries

(* Rigged non-flat image: exactly one location is attackable (a pixel at
   0.5-epsilon in an otherwise hopeless image would not isolate by
   location since the mean is global; instead rig an oracle keyed to one
   pixel). *)
let pinpoint_oracle () =
  (* Class flips iff pixel (2,1) is exactly white. *)
  Oracle.of_fn ~name:"pinpoint" ~num_classes:2 (fun x ->
      let r = Tensor.get x [| 0; 2; 1 |]
      and g = Tensor.get x [| 1; 2; 1 |]
      and b = Tensor.get x [| 2; 2; 1 |] in
      if r = 1. && g = 1. && b = 1. then Tensor.of_array [| 2 |] [| 0.; 1. |]
      else Tensor.of_array [| 2 |] [| 1.; 0. |])

let finds_the_needle () =
  let image = Helpers.flat_image ~size 0.3 in
  let r =
    Sketch.attack (pinpoint_oracle ()) C.const_false_program ~image
      ~true_class:0
  in
  match r.Sketch.adversarial with
  | None -> Alcotest.fail "expected to find the unique adversarial pair"
  | Some (pair, _) ->
      Alcotest.(check bool) "right location" true
        (Location.equal pair.Pair.loc (Location.make ~row:2 ~col:1));
      Alcotest.(check int) "white" 7 pair.Pair.corner

let qcheck_needle_found_by_all_programs =
  let config = Helpers.gen_config ~size in
  QCheck.Test.make ~name:"every program finds a unique needle" ~count:40
    QCheck.small_int (fun seed ->
      let g = Prng.of_int seed in
      let program = Oppsla.Gen.random_program config g in
      let image = Helpers.flat_image ~size 0.3 in
      let r =
        Sketch.attack (pinpoint_oracle ()) program ~image ~true_class:0
      in
      match r.Sketch.adversarial with
      | Some (pair, _) ->
          Location.equal pair.Pair.loc (Location.make ~row:2 ~col:1)
          && pair.Pair.corner = 7
      | None -> false)

let suite =
  [
    Alcotest.test_case "perturb changes three values" `Quick
      perturb_changes_three_values;
    Alcotest.test_case "success_exists ground truth" `Quick
      success_exists_ground_truth;
    Alcotest.test_case "const false first query" `Quick
      const_false_first_query_succeeds;
    Alcotest.test_case "const false bright image" `Quick
      const_false_bright_image;
    Alcotest.test_case "hopeless exhausts space" `Quick hopeless_exhausts_space;
    Alcotest.test_case "eager program exhausts too" `Quick
      eager_program_exhausts_too;
    Alcotest.test_case "max_queries respected" `Quick max_queries_respected;
    Alcotest.test_case "max_queries zero" `Quick max_queries_zero;
    Alcotest.test_case "oracle budget respected" `Quick oracle_budget_respected;
    Alcotest.test_case "deterministic" `Quick deterministic;
    Alcotest.test_case "reordering preserves totals" `Quick
      reordering_changes_order_not_totals;
    Alcotest.test_case "finds the needle" `Quick finds_the_needle;
    QCheck_alcotest.to_alcotest qcheck_exhaustive_for_all_programs;
    QCheck_alcotest.to_alcotest qcheck_success_program_independent;
    QCheck_alcotest.to_alcotest qcheck_needle_found_by_all_programs;
  ]

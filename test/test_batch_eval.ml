(* The batched-inference differential suite.

   Two contracts are enforced here.  First, the im2col+GEMM engine is a
   pure reformulation: matmul agrees with the naive triple loop exactly,
   conv2d_gemm / conv2d_gemm_batch agree with the direct conv2d
   bit-for-bit, and Network.scores_batch row [i] equals the single-image
   Network.scores of image [i] element-for-element.  Second, speculative
   candidate batching is invisible to accounting: forward passes are
   unmetered, queries are charged one at a time at consumption, and every
   attack observable — query counts, success flags, adversarial pairs,
   per-query traces, Budget_exhausted indices — is bit-identical at every
   batch width. *)

module Sketch = Oppsla.Sketch
module C = Oppsla.Condition

let size = 4

(* {1 Kernels} *)

let matmul_golden () =
  let a = Tensor.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Tensor.of_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  Alcotest.(check (array (float 0.)))
    "2x3 * 3x2" [| 58.; 64.; 139.; 154. |] (Tensor.matmul a b).Tensor.data;
  Alcotest.(check (list int))
    "result shape" [ 2; 2 ]
    (Array.to_list (Tensor.shape (Tensor.matmul a b)));
  let raises f =
    try
      ignore (f ());
      false
    with Tensor.Shape_mismatch _ -> true
  in
  let bad = Tensor.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check bool) "matmul inner mismatch" true
    (raises (fun () -> Tensor.matmul a bad));
  Alcotest.(check bool) "matmul_nt inner mismatch" true
    (raises (fun () -> Tensor.matmul_nt a bad));
  Alcotest.(check bool) "matvec mismatch" true
    (raises (fun () -> Tensor.matvec a (Tensor.of_array [| 2 |] [| 1.; 2. |])))

(* The blocked/tiled GEMM must agree exactly with the textbook triple
   loop: every output element accumulates in ascending-k order whatever
   the tiling, so there is no tolerance here. *)
let matmul_matches_naive () =
  let g = Prng.of_int 7 in
  List.iter
    (fun (m, k, n) ->
      let a = Tensor.randn g [| m; k |] in
      let b = Tensor.randn g [| k; n |] in
      let naive =
        Tensor.init [| m; n |] (fun o ->
            let i = o / n and j = o mod n in
            let acc = ref 0. in
            for p = 0 to k - 1 do
              acc :=
                !acc
                +. (Tensor.get_flat a ((i * k) + p)
                   *. Tensor.get_flat b ((p * n) + j))
            done;
            !acc)
      in
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "matmul %dx%dx%d = naive" m k n)
        naive.Tensor.data
        (Tensor.matmul a b).Tensor.data)
    (* Sizes straddling the 4x4 register tile and the column blocking:
       remainders in every dimension, plus a k large enough to force
       multiple j-blocks. *)
    [ (1, 1, 1); (3, 5, 7); (4, 4, 4); (6, 9, 5); (17, 33, 19); (2, 700, 70) ]

let matmul_nt_rows_are_matvec () =
  let g = Prng.of_int 8 in
  let m = 5 and k = 11 and n = 6 in
  let a = Tensor.randn g [| m; k |] in
  let b = Tensor.randn g [| n; k |] in
  let out = Tensor.matmul_nt a b in
  for i = 0 to m - 1 do
    let row =
      Tensor.init [| k |] (fun p -> Tensor.get_flat a ((i * k) + p))
    in
    let mv = Tensor.matvec b row in
    for j = 0 to n - 1 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "row %d col %d" i j)
        (Tensor.get_flat mv j)
        (Tensor.get_flat out ((i * n) + j))
    done
  done

let im2col_batch_blocks () =
  let g = Prng.of_int 9 in
  let n = 3 and c = 2 and h = 5 and w = 4 in
  let batch = Tensor.randn g [| n; c; h; w |] in
  let image = c * h * w in
  List.iter
    (fun (stride, pad, kh, kw) ->
      let big = Tensor.im2col_batch ~stride ~pad ~kh ~kw batch in
      let rows = Tensor.dim big 0 and total = Tensor.dim big 1 in
      let cols = total / n in
      Alcotest.(check int) "patch rows" (c * kh * kw) rows;
      for img = 0 to n - 1 do
        let x =
          Tensor.init [| c; h; w |] (fun o ->
              Tensor.get_flat batch ((img * image) + o))
        in
        let one = Tensor.im2col ~stride ~pad ~kh ~kw x in
        Alcotest.(check int) "column block width" cols (Tensor.dim one 1);
        for r = 0 to rows - 1 do
          for o = 0 to cols - 1 do
            Alcotest.(check (float 0.))
              (Printf.sprintf "s%d p%d img %d (%d,%d)" stride pad img r o)
              (Tensor.get_flat one ((r * cols) + o))
              (Tensor.get_flat big ((r * total) + (img * cols) + o))
          done
        done
      done)
    [ (1, 0, 3, 3); (1, 1, 3, 3); (2, 1, 3, 3); (1, 2, 2, 2) ]

let conv_gemm_agrees () =
  let g = Prng.of_int 10 in
  let n = 3 and in_c = 2 and h = 6 and w = 5 and out_c = 4 in
  let image = in_c * h * w in
  let batch = Tensor.randn g [| n; in_c; h; w |] in
  List.iter
    (fun (stride, pad, k, with_bias) ->
      let weight = Tensor.randn g [| out_c; in_c; k; k |] in
      let bias =
        if with_bias then Some (Tensor.randn g [| out_c |]) else None
      in
      let name =
        Printf.sprintf "k%d s%d p%d bias:%b" k stride pad with_bias
      in
      let batched =
        Tensor.conv2d_gemm_batch ~stride ~pad batch ~weight ~bias
      in
      let ostride = Tensor.numel batched / n in
      for img = 0 to n - 1 do
        let x =
          Tensor.init [| in_c; h; w |] (fun o ->
              Tensor.get_flat batch ((img * image) + o))
        in
        let direct = Tensor.conv2d ~stride ~pad x ~weight ~bias in
        let gemm = Tensor.conv2d_gemm ~stride ~pad x ~weight ~bias in
        Alcotest.(check (array (float 0.)))
          (name ^ ": gemm = direct") direct.Tensor.data gemm.Tensor.data;
        Alcotest.(check (array (float 0.)))
          (Printf.sprintf "%s: batched image %d = direct" name img)
          direct.Tensor.data
          (Array.sub batched.Tensor.data (img * ostride) ostride)
      done)
    [
      (1, 0, 3, true);
      (1, 1, 3, true);
      (1, 1, 3, false);
      (2, 1, 3, true);
      (1, 2, 2, true);
      (2, 0, 1, false);
    ]

(* {1 Network engine} *)

(* Property test: on a real (randomly initialised) conv net, row [i] of
   scores_batch is element-for-element equal to the single-image scores
   of image [i], for every batch width tried. *)
let qcheck_scores_batch_matches_single =
  QCheck.Test.make ~name:"Network.scores_batch = per-image scores" ~count:25
    QCheck.(pair (int_range 0 9999) (int_range 1 5))
    (fun (seed, n) ->
      let g = Prng.of_int seed in
      let net = Nn.Zoo.vgg_tiny (Prng.split g) ~image_size:8 ~num_classes:4 in
      let image = 3 * 8 * 8 in
      let batch = Tensor.rand_uniform g [| n; 3; 8; 8 |] in
      let out = Nn.Network.scores_batch net batch in
      let classes = Tensor.dim out 1 in
      let ok = ref (classes = 4) in
      for i = 0 to n - 1 do
        let x =
          Tensor.init [| 3; 8; 8 |] (fun o ->
              Tensor.get_flat batch ((i * image) + o))
        in
        let single = Nn.Network.scores net x in
        for j = 0 to classes - 1 do
          if
            Tensor.get_flat single j
            <> Tensor.get_flat out ((i * classes) + j)
          then ok := false
        done
      done;
      !ok)

(* {1 Batcher mechanics} *)

let counting_oracle ?budget calls =
  Oracle.of_fn ?budget ~name:"counting" ~num_classes:2 (fun x ->
      incr calls;
      let m = Tensor.mean x in
      Tensor.of_array [| 2 |] [| 1. -. m; m |])

let cand v =
  {
    Batcher.key = Score_cache.Custom (string_of_int v);
    input = (fun () -> Tensor.create [| 2; 2 |] (float_of_int v /. 10.));
  }

let batcher_metering_and_speculation () =
  Batcher.reset_global_stats ();
  let calls = ref 0 in
  let oracle = counting_oracle calls in
  let t = Batcher.create ~width:4 oracle in
  let plan = [| cand 1; cand 2; cand 3 |] in
  let speculate i = if i < 2 then Some plan.(i + 1) else None in
  (* First query builds a 3-candidate chunk: one batched forward pass,
     three scoring-function calls, ONE metered query. *)
  let s1 = Batcher.query t ~speculate plan.(0) in
  Alcotest.(check (float 0.)) "answer for candidate 1" 0.1
    (Tensor.get_flat s1 1);
  Alcotest.(check int) "forwards are speculative" 3 !calls;
  Alcotest.(check int) "one metered query" 1 (Oracle.queries oracle);
  (* Second query is served from the buffer: no new forward. *)
  let s2 = Batcher.query t ~speculate plan.(1) in
  Alcotest.(check (float 0.)) "answer for candidate 2" 0.2
    (Tensor.get_flat s2 1);
  Alcotest.(check int) "no new forward" 3 !calls;
  Alcotest.(check int) "two metered queries" 2 (Oracle.queries oracle);
  (* Changing course discards the rest of the buffer (candidate 3) and
     rebuilds from the new head. *)
  let s9 = Batcher.query t (cand 9) in
  Alcotest.(check (float 0.)) "answer after mis-speculation" 0.9
    (Tensor.get_flat s9 1);
  Alcotest.(check int) "rebuild evaluates the new head" 4 !calls;
  Alcotest.(check int) "three metered queries" 3 (Oracle.queries oracle);
  let s = Batcher.global_stats () in
  Alcotest.(check int) "stats: queries" 3 s.Batcher.queries;
  Alcotest.(check int) "stats: chunks" 2 s.Batcher.batches;
  Alcotest.(check int) "stats: prepared" 4 s.Batcher.prepared;
  Alcotest.(check int) "stats: buffer hits" 1 s.Batcher.buffer_hits;
  Alcotest.(check int) "stats: discarded" 1 s.Batcher.discarded

let batcher_cache_excludes_hits () =
  let calls = ref 0 in
  let oracle = counting_oracle calls in
  let cache = Score_cache.create () in
  (* Pre-resolve candidate 2: the forward pass must skip it. *)
  ignore
    (Score_cache.find_or_add cache (cand 2).Batcher.key ~compute:(fun () ->
         Tensor.of_array [| 2 |] [| 0.8; 0.2 |]));
  let t = Batcher.create ~cache ~width:4 oracle in
  let plan = [| cand 1; cand 2; cand 3 |] in
  let speculate i = if i < 2 then Some plan.(i + 1) else None in
  ignore (Batcher.query t ~speculate plan.(0));
  Alcotest.(check int) "cache hit left the forward pass" 2 !calls;
  let s2 = Batcher.query t ~speculate plan.(1) in
  Alcotest.(check (float 0.)) "cached answer served" 0.2
    (Tensor.get_flat s2 1);
  Alcotest.(check int) "no extra forward" 2 !calls;
  Alcotest.(check int) "hits are still metered" 2 (Oracle.queries oracle);
  (* Newly computed slots were stored for later reuse. *)
  Alcotest.(check bool) "misses were cached" true
    (Score_cache.mem cache (cand 1).Batcher.key
    && Score_cache.mem cache (cand 3).Batcher.key)

(* Budget exhaustion fires at exactly the sequential query index even
   when the answer is already sitting in the buffer: the speculative
   forward pass resolved candidate 3 for free, but consuming it is the
   third query against a budget of 2. *)
let batcher_budget_exact_index () =
  let calls = ref 0 in
  let oracle = counting_oracle ~budget:2 calls in
  let t = Batcher.create ~width:4 oracle in
  let plan = [| cand 1; cand 2; cand 3; cand 4 |] in
  let speculate i = if i < 3 then Some plan.(i + 1) else None in
  ignore (Batcher.query t ~speculate plan.(0));
  Alcotest.(check int) "whole chunk resolved speculatively" 4 !calls;
  ignore (Batcher.query t ~speculate plan.(1));
  Alcotest.(check int) "budget spent" 2 (Oracle.queries oracle);
  Alcotest.(check bool) "third consumption raises at index 2" true
    (try
       ignore (Batcher.query t ~speculate plan.(2));
       false
     with Oracle.Budget_exhausted 2 -> true);
  Alcotest.(check int) "no forward after exhaustion" 4 !calls

let batcher_width_one_never_speculates () =
  let calls = ref 0 in
  let speculated = ref 0 in
  let t = Batcher.create ~width:1 (counting_oracle calls) in
  let speculate _ =
    incr speculated;
    Some (cand 2)
  in
  ignore (Batcher.query t ~speculate (cand 1));
  ignore (Batcher.query t ~speculate (cand 2));
  Alcotest.(check int) "width 1 is the sequential path" 0 !speculated;
  Alcotest.(check int) "one forward per query" 2 !calls;
  Alcotest.(check bool) "width < 1 rejected" true
    (try
       ignore (Batcher.create ~width:0 (counting_oracle calls));
       false
     with Invalid_argument _ -> true)

(* {1 Attack-level width identity} *)

let check_result name (seq : Sketch.result) (b : Sketch.result) =
  Alcotest.(check int) (name ^ ": queries") seq.Sketch.queries b.Sketch.queries;
  match (seq.Sketch.adversarial, b.Sketch.adversarial) with
  | None, None -> ()
  | Some (p_seq, x_seq), Some (p_b, x_b) ->
      Alcotest.(check bool)
        (name ^ ": same adversarial pair")
        true
        (Oppsla.Pair.equal p_seq p_b);
      Alcotest.(check (array (float 0.)))
        (name ^ ": same adversarial tensor")
        x_seq.Tensor.data x_b.Tensor.data
  | _ -> Alcotest.fail (name ^ ": success flag diverged")

(* Sketch at widths 2/4/16 vs the sequential width 1: result AND the
   full per-query (index, pair, scores) trace, across random programs,
   random caps and a tight oracle budget (so exhaustion points are
   exercised too). *)
let sketch_width_identity () =
  let gen_config = Helpers.gen_config ~size in
  for trial = 0 to 7 do
    let g = Prng.of_int (300 + trial) in
    let image =
      Tensor.rand_uniform (Prng.split g) ~lo:0.35 ~hi:0.65 [| 3; size; size |]
    in
    let program = Oppsla.Gen.random_program gen_config g in
    let max_queries = if Prng.bool g then None else Some (1 + Prng.int g 40) in
    let budget = if trial mod 3 = 0 then Some (1 + Prng.int g 20) else None in
    let trace batch =
      let log = ref [] in
      let r =
        Sketch.attack ?max_queries ~batch
          ~on_query:(fun i pair scores ->
            log := (i, pair, Array.copy scores.Tensor.data) :: !log)
          (Helpers.mean_threshold_oracle ?budget ())
          program ~image ~true_class:0
      in
      (r, List.rev !log)
    in
    let seq, seq_log = trace 1 in
    List.iter
      (fun batch ->
        let b, b_log = trace batch in
        let name = Printf.sprintf "sketch trial %d width %d" trial batch in
        check_result name seq b;
        Alcotest.(check int) (name ^ ": trace length")
          (List.length seq_log) (List.length b_log);
        List.iter2
          (fun (i_seq, p_seq, s_seq) (i_b, p_b, s_b) ->
            Alcotest.(check int) (name ^ ": query index") i_seq i_b;
            Alcotest.(check bool) (name ^ ": queried pair") true
              (Oppsla.Pair.equal p_seq p_b);
            Alcotest.(check (array (float 0.)))
              (name ^ ": score vector") s_seq s_b)
          seq_log b_log)
      [ 2; 4; 16 ]
  done

(* Sketch width identity on a real network oracle: the batched path runs
   the im2col+GEMM engine while width 1 answers image by image, so this
   closes the loop between the two halves of the suite. *)
let sketch_width_identity_on_network () =
  let g = Prng.of_int 77 in
  let net = Nn.Zoo.vgg_tiny (Prng.split g) ~image_size:8 ~num_classes:3 in
  let image = Tensor.rand_uniform g [| 3; 8; 8 |] in
  let program = Oppsla.Gen.random_program (Helpers.gen_config ~size:8) g in
  let run batch =
    Sketch.attack ~batch ~max_queries:48
      (Oracle.of_network net)
      program ~image ~true_class:0
  in
  let seq = run 1 in
  List.iter
    (fun batch ->
      check_result (Printf.sprintf "network width %d" batch) seq (run batch))
    [ 4; 16 ]

let baselines_width_identity () =
  let g = Prng.of_int 400 in
  let image =
    Tensor.rand_uniform (Prng.split g) ~lo:0.42 ~hi:0.58 [| 3; size; size |]
  in
  let fixed batch =
    Baselines.Fixed.attack ~batch
      (Helpers.mean_threshold_oracle ())
      ~image ~true_class:0
  in
  check_result "fixed" (fixed 1) (fixed 16);
  let su_opa batch =
    let config = { Baselines.Su_opa.population = 6; f = 0.5; max_queries = 80 } in
    Baselines.Su_opa.attack ~config ~batch (Prng.of_int 13)
      (Helpers.mean_threshold_oracle ())
      ~image ~true_class:0
  in
  check_result "su_opa" (su_opa 1) (su_opa 16);
  let sparse_rs batch =
    let config = { Baselines.Sparse_rs.max_queries = 96; min_explore = 0.1 } in
    Baselines.Sparse_rs.attack ~config ~batch (Prng.of_int 5)
      (Helpers.mean_threshold_oracle ())
      ~image ~true_class:0
  in
  check_result "sparse_rs" (sparse_rs 1) (sparse_rs 16)

let suite =
  [
    Alcotest.test_case "matmul golden values and shape guards" `Quick
      matmul_golden;
    Alcotest.test_case "matmul = naive triple loop (exact)" `Quick
      matmul_matches_naive;
    Alcotest.test_case "matmul_nt rows = matvec" `Quick
      matmul_nt_rows_are_matvec;
    Alcotest.test_case "im2col_batch column blocks = per-image im2col" `Quick
      im2col_batch_blocks;
    Alcotest.test_case "conv2d_gemm/_batch = direct conv2d (exact)" `Quick
      conv_gemm_agrees;
    QCheck_alcotest.to_alcotest qcheck_scores_batch_matches_single;
    Alcotest.test_case "batcher: metering, speculation, mis-speculation"
      `Quick batcher_metering_and_speculation;
    Alcotest.test_case "batcher: cache hits leave the forward pass" `Quick
      batcher_cache_excludes_hits;
    Alcotest.test_case "batcher: Budget_exhausted at the exact index" `Quick
      batcher_budget_exact_index;
    Alcotest.test_case "batcher: width 1 degenerates to sequential" `Quick
      batcher_width_one_never_speculates;
    Alcotest.test_case "sketch: widths 2/4/16 = width 1 (results + traces)"
      `Quick sketch_width_identity;
    Alcotest.test_case "sketch: width identity on a conv-net oracle" `Quick
      sketch_width_identity_on_network;
    Alcotest.test_case "baselines: width 16 = width 1" `Quick
      baselines_width_identity;
  ]

(* Tests for Rgb, Location and Pair: the geometry of the perturbation
   space. *)

module Rgb = Oppsla.Rgb
module Location = Oppsla.Location
module Pair = Oppsla.Pair

let corners_enumeration () =
  Alcotest.(check int) "eight corners" 8 (Array.length Rgb.corners);
  (* Bit layout: bit 2 = red, bit 1 = green, bit 0 = blue. *)
  Alcotest.(check (float 0.)) "corner 4 red" 1. (Rgb.corner 4).Rgb.r;
  Alcotest.(check (float 0.)) "corner 4 green" 0. (Rgb.corner 4).Rgb.g;
  Alcotest.(check (float 0.)) "corner 0 black" 0. (Rgb.corner 0).Rgb.r;
  Alcotest.(check (float 0.)) "corner 7 white" 1. (Rgb.corner 7).Rgb.b

let corner_bounds () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rgb.corner 8);
       false
     with Invalid_argument _ -> true)

let corner_index_roundtrip () =
  for k = 0 to 7 do
    Alcotest.(check (option int)) "roundtrip" (Some k)
      (Rgb.corner_index (Rgb.corner k))
  done;
  Alcotest.(check (option int)) "non-corner" None
    (Rgb.corner_index { Rgb.r = 0.5; g = 0.; b = 0. })

let l1_distance_props () =
  let black = Rgb.corner 0 and white = Rgb.corner 7 in
  Alcotest.(check (float 1e-9)) "opposite corners" 3.
    (Rgb.l1_distance black white);
  Alcotest.(check (float 1e-9)) "self distance" 0.
    (Rgb.l1_distance white white);
  let p = { Rgb.r = 0.25; g = 0.5; b = 1. } in
  Alcotest.(check (float 1e-9)) "mixed" 1.75 (Rgb.l1_distance p black)

let corners_by_distance_order () =
  (* From a dark pixel, white must come first and black last. *)
  let order = Rgb.corners_by_distance { Rgb.r = 0.1; g = 0.1; b = 0.1 } in
  Alcotest.(check int) "farthest is white" 7 order.(0);
  Alcotest.(check int) "closest is black" 0 order.(7)

let qcheck_corners_by_distance_permutation =
  QCheck.Test.make ~name:"corners_by_distance is a permutation" ~count:200
    QCheck.(triple (float_range 0. 1.) (float_range 0. 1.) (float_range 0. 1.))
    (fun (r, g, b) ->
      let order = Rgb.corners_by_distance { Rgb.r; g; b } in
      let sorted = Array.copy order in
      Array.sort compare sorted;
      sorted = Array.init 8 Fun.id)

let qcheck_corners_by_distance_monotone =
  QCheck.Test.make ~name:"corners_by_distance decreases" ~count:200
    QCheck.(triple (float_range 0. 1.) (float_range 0. 1.) (float_range 0. 1.))
    (fun (r, g, b) ->
      let p = { Rgb.r; g; b } in
      let order = Rgb.corners_by_distance p in
      let d k = Rgb.l1_distance p (Rgb.corner k) in
      let ok = ref true in
      for i = 0 to 6 do
        if d order.(i) < d order.(i + 1) -. 1e-12 then ok := false
      done;
      !ok)

let image_io () =
  let img = Tensor.zeros [| 3; 4; 4 |] in
  let p = { Rgb.r = 0.2; g = 0.4; b = 0.6 } in
  Rgb.write_to_image img ~row:1 ~col:2 p;
  let q = Rgb.of_image img ~row:1 ~col:2 in
  Alcotest.(check bool) "roundtrip" true (Rgb.equal p q);
  Alcotest.(check (float 0.)) "untouched elsewhere" 0.
    (Tensor.get img [| 0; 0; 0 |])

let channel_stats () =
  let p = { Rgb.r = 0.1; g = 0.5; b = 0.9 } in
  Alcotest.(check (float 1e-9)) "max" 0.9 (Rgb.max_val p);
  Alcotest.(check (float 1e-9)) "min" 0.1 (Rgb.min_val p);
  Alcotest.(check (float 1e-9)) "avg" 0.5 (Rgb.avg_val p)

(* Locations *)

let linf_distance () =
  let a = Location.make ~row:2 ~col:3 and b = Location.make ~row:5 ~col:1 in
  Alcotest.(check int) "linf" 3 (Location.linf_distance a b);
  Alcotest.(check int) "self" 0 (Location.linf_distance a a)

let center_distance_odd () =
  (* 5x5: center is (2,2). *)
  Alcotest.(check (float 1e-9)) "center" 0.
    (Location.center_distance ~d1:5 ~d2:5 (Location.make ~row:2 ~col:2));
  Alcotest.(check (float 1e-9)) "corner" 2.
    (Location.center_distance ~d1:5 ~d2:5 (Location.make ~row:0 ~col:0))

let center_distance_even () =
  (* 4x4: continuous center is (1.5, 1.5). *)
  Alcotest.(check (float 1e-9)) "near center" 0.5
    (Location.center_distance ~d1:4 ~d2:4 (Location.make ~row:1 ~col:1));
  Alcotest.(check (float 1e-9)) "corner" 1.5
    (Location.center_distance ~d1:4 ~d2:4 (Location.make ~row:0 ~col:0))

let neighbors_counts () =
  let count ~row ~col =
    List.length (Location.neighbors ~d1:4 ~d2:4 (Location.make ~row ~col))
  in
  Alcotest.(check int) "interior" 8 (count ~row:1 ~col:1);
  Alcotest.(check int) "edge" 5 (count ~row:0 ~col:1);
  Alcotest.(check int) "corner" 3 (count ~row:0 ~col:0)

let neighbors_at_distance_one () =
  let l = Location.make ~row:2 ~col:2 in
  List.iter
    (fun n ->
      Alcotest.(check int) "distance 1" 1 (Location.linf_distance l n))
    (Location.neighbors ~d1:5 ~d2:5 l)

let all_locations () =
  let locs = Location.all ~d1:3 ~d2:4 in
  Alcotest.(check int) "count" 12 (List.length locs);
  Alcotest.(check bool) "row-major start" true
    (Location.equal (List.hd locs) (Location.make ~row:0 ~col:0))

let by_center_distance_sorted () =
  let locs = Location.by_center_distance ~d1:5 ~d2:5 in
  Alcotest.(check int) "count" 25 (Array.length locs);
  Alcotest.(check bool) "center first" true
    (Location.equal locs.(0) (Location.make ~row:2 ~col:2));
  for i = 0 to Array.length locs - 2 do
    Alcotest.(check bool) "non-decreasing" true
      (Location.center_distance ~d1:5 ~d2:5 locs.(i)
      <= Location.center_distance ~d1:5 ~d2:5 locs.(i + 1))
  done

let index_roundtrip () =
  for row = 0 to 3 do
    for col = 0 to 4 do
      let l = Location.make ~row ~col in
      Alcotest.(check bool) "roundtrip" true
        (Location.equal l (Location.of_index ~d2:5 (Location.index ~d2:5 l)))
    done
  done

(* Pairs *)

let pair_id_roundtrip () =
  for row = 0 to 2 do
    for col = 0 to 2 do
      for corner = 0 to 7 do
        let p = Pair.make ~loc:(Location.make ~row ~col) ~corner in
        Alcotest.(check bool) "roundtrip" true
          (Pair.equal p (Pair.of_id ~d2:3 (Pair.id ~d2:3 p)))
      done
    done
  done

let pair_ids_dense () =
  let seen = Hashtbl.create 72 in
  for row = 0 to 2 do
    for col = 0 to 2 do
      for corner = 0 to 7 do
        let id = Pair.id ~d2:3 (Pair.make ~loc:(Location.make ~row ~col) ~corner) in
        Alcotest.(check bool) "in range" true (id >= 0 && id < 72);
        Alcotest.(check bool) "unique" false (Hashtbl.mem seen id);
        Hashtbl.add seen id ()
      done
    done
  done

let pair_validation () =
  Alcotest.(check bool) "bad corner raises" true
    (try
       ignore (Pair.make ~loc:(Location.make ~row:0 ~col:0) ~corner:8);
       false
     with Invalid_argument _ -> true)

let pair_count () =
  Alcotest.(check int) "8 d1 d2" (8 * 16 * 16) (Pair.count ~d1:16 ~d2:16)

let suite =
  [
    Alcotest.test_case "corner enumeration" `Quick corners_enumeration;
    Alcotest.test_case "corner bounds" `Quick corner_bounds;
    Alcotest.test_case "corner index roundtrip" `Quick corner_index_roundtrip;
    Alcotest.test_case "l1 distance" `Quick l1_distance_props;
    Alcotest.test_case "corners_by_distance order" `Quick
      corners_by_distance_order;
    Alcotest.test_case "image io" `Quick image_io;
    Alcotest.test_case "channel stats" `Quick channel_stats;
    Alcotest.test_case "linf distance" `Quick linf_distance;
    Alcotest.test_case "center distance odd" `Quick center_distance_odd;
    Alcotest.test_case "center distance even" `Quick center_distance_even;
    Alcotest.test_case "neighbor counts" `Quick neighbors_counts;
    Alcotest.test_case "neighbors at distance 1" `Quick
      neighbors_at_distance_one;
    Alcotest.test_case "all locations" `Quick all_locations;
    Alcotest.test_case "by_center_distance sorted" `Quick
      by_center_distance_sorted;
    Alcotest.test_case "location index roundtrip" `Quick index_roundtrip;
    Alcotest.test_case "pair id roundtrip" `Quick pair_id_roundtrip;
    Alcotest.test_case "pair ids dense" `Quick pair_ids_dense;
    Alcotest.test_case "pair validation" `Quick pair_validation;
    Alcotest.test_case "pair count" `Quick pair_count;
    QCheck_alcotest.to_alcotest qcheck_corners_by_distance_permutation;
    QCheck_alcotest.to_alcotest qcheck_corners_by_distance_monotone;
  ]

(* Tests for the tensor library: shape discipline, elementwise ops,
   linear algebra, convolution/pooling (against numerical gradients), and
   softmax/losses. *)

let approx ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_tensor ?(eps = 1e-6) msg expected actual =
  Alcotest.(check bool) msg true (Tensor.equal ~eps expected actual)

(* Construction and shapes *)

let construction () =
  let t = Tensor.create [| 2; 3 |] 1.5 in
  Alcotest.(check int) "numel" 6 (Tensor.numel t);
  Alcotest.(check (array int)) "shape" [| 2; 3 |] (Tensor.shape t);
  Alcotest.(check (float 0.)) "value" 1.5 (Tensor.get t [| 1; 2 |]);
  Alcotest.(check int) "ndim" 2 (Tensor.ndim t);
  Alcotest.(check int) "dim 1" 3 (Tensor.dim t 1)

let of_array_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tensor.of_array [| 2; 2 |] [| 1.; 2.; 3. |]);
       false
     with Tensor.Shape_mismatch _ -> true)

let reshape_shares_data () =
  let t = Tensor.init [| 2; 3 |] float_of_int in
  let r = Tensor.reshape t [| 3; 2 |] in
  Tensor.set r [| 0; 0 |] 42.;
  Alcotest.(check (float 0.)) "aliased" 42. (Tensor.get t [| 0; 0 |])

let reshape_bad () =
  let t = Tensor.zeros [| 2; 3 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tensor.reshape t [| 7 |]);
       false
     with Tensor.Shape_mismatch _ -> true)

let flat_index_checks () =
  let t = Tensor.init [| 2; 3; 4 |] float_of_int in
  Alcotest.(check int) "row major" ((1 * 12) + (2 * 4) + 3)
    (Tensor.flat_index t [| 1; 2; 3 |]);
  Alcotest.(check bool) "oob raises" true
    (try
       ignore (Tensor.flat_index t [| 0; 3; 0 |]);
       false
     with Invalid_argument _ -> true)

(* Elementwise *)

let elementwise_ops () =
  let a = Tensor.of_array [| 3 |] [| 1.; -2.; 3. |] in
  let b = Tensor.of_array [| 3 |] [| 4.; 5.; -6. |] in
  check_tensor "add" (Tensor.of_array [| 3 |] [| 5.; 3.; -3. |]) (Tensor.add a b);
  check_tensor "sub" (Tensor.of_array [| 3 |] [| -3.; -7.; 9. |]) (Tensor.sub a b);
  check_tensor "mul" (Tensor.of_array [| 3 |] [| 4.; -10.; -18. |]) (Tensor.mul a b);
  check_tensor "scale" (Tensor.of_array [| 3 |] [| 2.; -4.; 6. |]) (Tensor.scale 2. a);
  check_tensor "neg" (Tensor.of_array [| 3 |] [| -1.; 2.; -3. |]) (Tensor.neg a);
  check_tensor "relu" (Tensor.of_array [| 3 |] [| 1.; 0.; 3. |]) (Tensor.relu a);
  check_tensor "clip"
    (Tensor.of_array [| 3 |] [| 1.; -1.; 2. |])
    (Tensor.clip ~lo:(-1.) ~hi:2. a)

let shape_mismatch_binary () =
  let a = Tensor.zeros [| 2 |] and b = Tensor.zeros [| 3 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tensor.add a b);
       false
     with Tensor.Shape_mismatch _ -> true)

let inplace_ops () =
  let a = Tensor.of_array [| 2 |] [| 1.; 2. |] in
  let b = Tensor.of_array [| 2 |] [| 10.; 20. |] in
  Tensor.add_inplace a b;
  check_tensor "add_inplace" (Tensor.of_array [| 2 |] [| 11.; 22. |]) a;
  Tensor.axpy ~alpha:2. b a;
  check_tensor "axpy" (Tensor.of_array [| 2 |] [| 31.; 62. |]) a;
  Tensor.scale_inplace 0.5 a;
  check_tensor "scale_inplace" (Tensor.of_array [| 2 |] [| 15.5; 31. |]) a;
  Tensor.fill a 0.;
  check_tensor "fill" (Tensor.zeros [| 2 |]) a

(* Reductions *)

let reductions () =
  let t = Tensor.of_array [| 4 |] [| 1.; -2.; 3.; 2. |] in
  Alcotest.(check (float 1e-9)) "sum" 4. (Tensor.sum t);
  Alcotest.(check (float 1e-9)) "mean" 1. (Tensor.mean t);
  Alcotest.(check (float 1e-9)) "max" 3. (Tensor.max_val t);
  Alcotest.(check (float 1e-9)) "min" (-2.) (Tensor.min_val t);
  Alcotest.(check int) "argmax" 2 (Tensor.argmax t);
  Alcotest.(check (float 1e-9)) "l1" 8. (Tensor.l1_norm t);
  Alcotest.(check (float 1e-9)) "linf" 3. (Tensor.linf_norm t);
  Alcotest.(check (float 1e-9)) "sq_norm" 18. (Tensor.sq_norm t)

let argmax_first_occurrence () =
  let t = Tensor.of_array [| 3 |] [| 5.; 5.; 1. |] in
  Alcotest.(check int) "first max" 0 (Tensor.argmax t)

(* Linear algebra *)

let matmul_known () =
  let a = Tensor.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Tensor.of_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  check_tensor "product"
    (Tensor.of_array [| 2; 2 |] [| 58.; 64.; 139.; 154. |])
    (Tensor.matmul a b)

let matvec_agrees_with_matmul () =
  let g = Prng.of_int 17 in
  let a = Tensor.randn g [| 4; 5 |] and x = Tensor.randn g [| 5 |] in
  let via_matmul =
    Tensor.flatten (Tensor.matmul a (Tensor.reshape x [| 5; 1 |]))
  in
  check_tensor ~eps:1e-9 "matvec" via_matmul (Tensor.matvec a x)

let matvec_t_is_transpose () =
  let g = Prng.of_int 18 in
  let a = Tensor.randn g [| 4; 5 |] and y = Tensor.randn g [| 4 |] in
  check_tensor ~eps:1e-9 "matvec_t"
    (Tensor.matvec (Tensor.transpose a) y)
    (Tensor.matvec_t a y)

let outer_known () =
  let y = Tensor.of_array [| 2 |] [| 1.; 2. |] in
  let x = Tensor.of_array [| 3 |] [| 3.; 4.; 5. |] in
  check_tensor "outer"
    (Tensor.of_array [| 2; 3 |] [| 3.; 4.; 5.; 6.; 8.; 10. |])
    (Tensor.outer y x)

let transpose_involutive () =
  let g = Prng.of_int 19 in
  let a = Tensor.randn g [| 3; 7 |] in
  check_tensor ~eps:0. "double transpose" a (Tensor.transpose (Tensor.transpose a))

let dot_symmetric () =
  let g = Prng.of_int 20 in
  let a = Tensor.randn g [| 9 |] and b = Tensor.randn g [| 9 |] in
  Alcotest.(check (float 1e-9)) "commutes" (Tensor.dot a b) (Tensor.dot b a)

(* Convolution *)

let conv_identity_kernel () =
  (* A 1x1 kernel of weight 1 on one channel is the identity. *)
  let g = Prng.of_int 21 in
  let x = Tensor.randn g [| 1; 5; 5 |] in
  let w = Tensor.of_array [| 1; 1; 1; 1 |] [| 1. |] in
  check_tensor ~eps:0. "identity" x (Tensor.conv2d x ~weight:w ~bias:None)

let conv_known_values () =
  (* 2x2 mean filter over a 3x3 ramp. *)
  let x = Tensor.init [| 1; 3; 3 |] float_of_int in
  let w = Tensor.create [| 1; 1; 2; 2 |] 0.25 in
  let y = Tensor.conv2d x ~weight:w ~bias:None in
  Alcotest.(check (array int)) "shape" [| 1; 2; 2 |] (Tensor.shape y);
  check_tensor "means"
    (Tensor.of_array [| 1; 2; 2 |] [| 2.; 3.; 5.; 6. |])
    y

let conv_bias_and_stride () =
  let x = Tensor.ones [| 1; 4; 4 |] in
  let w = Tensor.ones [| 1; 1; 2; 2 |] in
  let bias = Tensor.of_array [| 1 |] [| 10. |] in
  let y = Tensor.conv2d ~stride:2 x ~weight:w ~bias:(Some bias) in
  Alcotest.(check (array int)) "shape" [| 1; 2; 2 |] (Tensor.shape y);
  check_tensor "values" (Tensor.create [| 1; 2; 2 |] 14.) y

let conv_padding () =
  (* Padded 3x3 sum filter over an image with a single lit center pixel:
     the center is inside every window, so each output cell equals its
     value. *)
  let x = Tensor.zeros [| 1; 3; 3 |] in
  Tensor.set x [| 0; 1; 1 |] 5.;
  let w = Tensor.ones [| 1; 1; 3; 3 |] in
  let y = Tensor.conv2d ~pad:1 x ~weight:w ~bias:None in
  Alcotest.(check (array int)) "same spatial size" [| 1; 3; 3 |]
    (Tensor.shape y);
  check_tensor "padded" (Tensor.create [| 1; 3; 3 |] 5.) y

let conv_channel_mixing () =
  (* Two input channels summed by a 1x1 kernel. *)
  let x =
    Tensor.of_array [| 2; 1; 2 |] [| 1.; 2.; 10.; 20. |]
  in
  let w = Tensor.of_array [| 1; 2; 1; 1 |] [| 1.; 1. |] in
  check_tensor "sum of channels"
    (Tensor.of_array [| 1; 1; 2 |] [| 11.; 22. |])
    (Tensor.conv2d x ~weight:w ~bias:None)

(* Numerical gradient checking for the backward passes. *)

let numeric_grad f x =
  let eps = 1e-5 in
  let n = Tensor.numel x in
  let grad = Tensor.zeros (Tensor.shape x) in
  for i = 0 to n - 1 do
    let v = Tensor.get_flat x i in
    Tensor.set_flat x i (v +. eps);
    let fp = f x in
    Tensor.set_flat x i (v -. eps);
    let fm = f x in
    Tensor.set_flat x i v;
    Tensor.set_flat grad i ((fp -. fm) /. (2. *. eps))
  done;
  grad

let conv_backward_matches_numeric () =
  let g = Prng.of_int 22 in
  let x = Tensor.randn g [| 2; 4; 4 |] in
  let w = Tensor.randn g [| 3; 2; 3; 3 |] in
  (* Loss = sum of outputs; then dout = ones and the analytic gradients
     must match finite differences of the loss. *)
  let loss x w = Tensor.sum (Tensor.conv2d ~pad:1 x ~weight:w ~bias:None) in
  let dout = Tensor.ones [| 3; 4; 4 |] in
  let dx, dw, db = Tensor.conv2d_backward ~pad:1 ~x ~weight:w dout in
  let ndx = numeric_grad (fun x -> loss x w) x in
  let ndw = numeric_grad (fun w -> loss x w) w in
  check_tensor ~eps:1e-3 "dx" ndx dx;
  check_tensor ~eps:1e-3 "dw" ndw dw;
  (* dbias of a sum loss is the number of output positions. *)
  check_tensor ~eps:1e-9 "db" (Tensor.create [| 3 |] 16.) db

let im2col_known () =
  (* 2x2 image, 2x2 kernel, no padding: a single column holding the
     whole image in row-major patch order. *)
  let x = Tensor.of_array [| 1; 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let cols = Tensor.im2col ~kh:2 ~kw:2 x in
  Alcotest.(check (array int)) "shape" [| 4; 1 |] (Tensor.shape cols);
  check_tensor "contents" (Tensor.of_array [| 4; 1 |] [| 1.; 2.; 3.; 4. |]) cols

let conv_gemm_matches_direct () =
  let g = Prng.of_int 27 in
  List.iter
    (fun (stride, pad) ->
      let x = Tensor.randn g [| 3; 6; 6 |] in
      let w = Tensor.randn g [| 4; 3; 3; 3 |] in
      let bias = Some (Tensor.randn g [| 4 |]) in
      check_tensor ~eps:1e-9
        (Printf.sprintf "stride %d pad %d" stride pad)
        (Tensor.conv2d ~stride ~pad x ~weight:w ~bias)
        (Tensor.conv2d_gemm ~stride ~pad x ~weight:w ~bias))
    [ (1, 0); (1, 1); (2, 0); (2, 1); (3, 2) ]

let max_pool_forward () =
  let x =
    Tensor.of_array [| 1; 4; 4 |]
      [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10.; 11.; 12.; 13.; 14.; 15.; 16. |]
  in
  let y, switches = Tensor.max_pool2d ~size:2 x in
  check_tensor "pooled" (Tensor.of_array [| 1; 2; 2 |] [| 6.; 8.; 14.; 16. |]) y;
  Alcotest.(check (array int)) "switches" [| 5; 7; 13; 15 |] switches

let max_pool_backward () =
  let x = Tensor.init [| 1; 4; 4 |] float_of_int in
  let _, switches = Tensor.max_pool2d ~size:2 x in
  let dout = Tensor.of_array [| 1; 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let dx = Tensor.max_pool2d_backward ~x_shape:[| 1; 4; 4 |] ~switches dout in
  Alcotest.(check (float 0.)) "routed to argmax" 4. (Tensor.get dx [| 0; 3; 3 |]);
  Alcotest.(check (float 0.)) "zero elsewhere" 0. (Tensor.get dx [| 0; 0; 0 |]);
  Alcotest.(check (float 1e-9)) "mass conserved" 10. (Tensor.sum dx)

let avg_pool_roundtrip () =
  let g = Prng.of_int 23 in
  let x = Tensor.randn g [| 2; 4; 4 |] in
  let y = Tensor.avg_pool2d ~size:2 x in
  Alcotest.(check (float 1e-9)) "mean preserved" (Tensor.mean x) (Tensor.mean y);
  let dout = Tensor.ones [| 2; 2; 2 |] in
  let dx = Tensor.avg_pool2d_backward ~size:2 ~x_shape:[| 2; 4; 4 |] dout in
  check_tensor "uniform gradient" (Tensor.create [| 2; 4; 4 |] 0.25) dx

let global_avg_pool_ops () =
  let x = Tensor.init [| 2; 2; 2 |] float_of_int in
  let y = Tensor.global_avg_pool x in
  check_tensor "channel means" (Tensor.of_array [| 2 |] [| 1.5; 5.5 |]) y;
  let dx =
    Tensor.global_avg_pool_backward ~x_shape:[| 2; 2; 2 |]
      (Tensor.of_array [| 2 |] [| 4.; 8. |])
  in
  check_tensor "spread"
    (Tensor.of_array [| 2; 2; 2 |] [| 1.; 1.; 1.; 1.; 2.; 2.; 2.; 2. |])
    dx

(* Softmax and losses *)

let softmax_properties () =
  let t = Tensor.of_array [| 3 |] [| 1.; 2.; 3. |] in
  let s = Tensor.softmax t in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (Tensor.sum s);
  Alcotest.(check bool) "monotone" true
    (Tensor.get_flat s 0 < Tensor.get_flat s 1
    && Tensor.get_flat s 1 < Tensor.get_flat s 2)

let softmax_shift_invariant () =
  let t = Tensor.of_array [| 3 |] [| 1.; 2.; 3. |] in
  check_tensor ~eps:1e-12 "shift invariant" (Tensor.softmax t)
    (Tensor.softmax (Tensor.add_scalar 100. t))

let softmax_overflow_safe () =
  let t = Tensor.of_array [| 2 |] [| 1000.; 1001. |] in
  let s = Tensor.softmax t in
  Alcotest.(check bool) "finite" true
    (Float.is_finite (Tensor.get_flat s 0) && Float.is_finite (Tensor.get_flat s 1))

let log_softmax_consistent () =
  let g = Prng.of_int 24 in
  let t = Tensor.randn g [| 5 |] in
  check_tensor ~eps:1e-9 "log softmax = log . softmax"
    (Tensor.map log (Tensor.softmax t))
    (Tensor.log_softmax t)

let cross_entropy_known () =
  let t = Tensor.of_array [| 2 |] [| 0.; 0. |] in
  Alcotest.(check (float 1e-9)) "uniform" (log 2.) (Tensor.cross_entropy t 0)

let cross_entropy_grad_numeric () =
  let g = Prng.of_int 25 in
  let t = Tensor.randn g [| 4 |] in
  let analytic = Tensor.cross_entropy_grad (Tensor.copy t) 2 in
  let numeric = numeric_grad (fun t -> Tensor.cross_entropy t 2) t in
  check_tensor ~eps:1e-4 "matches numeric" numeric analytic

let cross_entropy_bad_label () =
  let t = Tensor.zeros [| 3 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tensor.cross_entropy t 5);
       false
     with Invalid_argument _ -> true)

(* Concat / split *)

let concat_split_roundtrip () =
  let g = Prng.of_int 26 in
  let a = Tensor.randn g [| 2; 3; 3 |] in
  let b = Tensor.randn g [| 1; 3; 3 |] in
  let c = Tensor.randn g [| 4; 3; 3 |] in
  let joined = Tensor.concat_channels [ a; b; c ] in
  Alcotest.(check (array int)) "shape" [| 7; 3; 3 |] (Tensor.shape joined);
  match Tensor.split_channels joined [ 2; 1; 4 ] with
  | [ a'; b'; c' ] ->
      check_tensor ~eps:0. "a" a a';
      check_tensor ~eps:0. "b" b b';
      check_tensor ~eps:0. "c" c c'
  | _ -> Alcotest.fail "wrong number of pieces"

let split_bad_counts () =
  let t = Tensor.zeros [| 3; 2; 2 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tensor.split_channels t [ 1; 1 ]);
       false
     with Invalid_argument _ -> true)

(* QCheck properties *)

let small_shape =
  QCheck.Gen.(
    map (fun (a, b) -> [| a; b |]) (pair (int_range 1 5) (int_range 1 5)))

let arbitrary_tensor =
  QCheck.make
    QCheck.Gen.(
      small_shape >>= fun shape ->
      let n = shape.(0) * shape.(1) in
      map
        (fun l -> Tensor.of_array shape (Array.of_list l))
        (list_repeat n (float_range (-10.) 10.)))

let qcheck_map_identity =
  QCheck.Test.make ~name:"map id = id" ~count:100 arbitrary_tensor (fun t ->
      Tensor.equal t (Tensor.map Fun.id t))

let qcheck_add_comm =
  QCheck.Test.make ~name:"scale distributes over add" ~count:100
    arbitrary_tensor (fun t ->
      Tensor.equal ~eps:1e-9
        (Tensor.scale 2. t)
        (Tensor.add t t))

let qcheck_flatten_preserves_sum =
  QCheck.Test.make ~name:"flatten preserves sum" ~count:100 arbitrary_tensor
    (fun t -> approx ~eps:1e-9 (Tensor.sum t) (Tensor.sum (Tensor.flatten t)))

let qcheck_softmax_normalized =
  QCheck.Test.make ~name:"softmax sums to one" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (float_range (-20.) 20.))
    (fun l ->
      let t = Tensor.of_array [| List.length l |] (Array.of_list l) in
      approx ~eps:1e-9 1. (Tensor.sum (Tensor.softmax t)))

let suite =
  [
    Alcotest.test_case "construction" `Quick construction;
    Alcotest.test_case "of_array mismatch" `Quick of_array_mismatch;
    Alcotest.test_case "reshape shares data" `Quick reshape_shares_data;
    Alcotest.test_case "reshape bad" `Quick reshape_bad;
    Alcotest.test_case "flat_index" `Quick flat_index_checks;
    Alcotest.test_case "elementwise ops" `Quick elementwise_ops;
    Alcotest.test_case "binary shape mismatch" `Quick shape_mismatch_binary;
    Alcotest.test_case "inplace ops" `Quick inplace_ops;
    Alcotest.test_case "reductions" `Quick reductions;
    Alcotest.test_case "argmax first occurrence" `Quick argmax_first_occurrence;
    Alcotest.test_case "matmul known" `Quick matmul_known;
    Alcotest.test_case "matvec vs matmul" `Quick matvec_agrees_with_matmul;
    Alcotest.test_case "matvec_t is transpose" `Quick matvec_t_is_transpose;
    Alcotest.test_case "outer known" `Quick outer_known;
    Alcotest.test_case "transpose involutive" `Quick transpose_involutive;
    Alcotest.test_case "dot symmetric" `Quick dot_symmetric;
    Alcotest.test_case "conv identity kernel" `Quick conv_identity_kernel;
    Alcotest.test_case "conv known values" `Quick conv_known_values;
    Alcotest.test_case "conv bias and stride" `Quick conv_bias_and_stride;
    Alcotest.test_case "conv padding" `Quick conv_padding;
    Alcotest.test_case "conv channel mixing" `Quick conv_channel_mixing;
    Alcotest.test_case "conv backward numeric" `Slow conv_backward_matches_numeric;
    Alcotest.test_case "im2col known" `Quick im2col_known;
    Alcotest.test_case "conv gemm matches direct" `Quick
      conv_gemm_matches_direct;
    Alcotest.test_case "max pool forward" `Quick max_pool_forward;
    Alcotest.test_case "max pool backward" `Quick max_pool_backward;
    Alcotest.test_case "avg pool roundtrip" `Quick avg_pool_roundtrip;
    Alcotest.test_case "global avg pool" `Quick global_avg_pool_ops;
    Alcotest.test_case "softmax properties" `Quick softmax_properties;
    Alcotest.test_case "softmax shift invariant" `Quick softmax_shift_invariant;
    Alcotest.test_case "softmax overflow safe" `Quick softmax_overflow_safe;
    Alcotest.test_case "log softmax consistent" `Quick log_softmax_consistent;
    Alcotest.test_case "cross entropy known" `Quick cross_entropy_known;
    Alcotest.test_case "cross entropy grad numeric" `Quick
      cross_entropy_grad_numeric;
    Alcotest.test_case "cross entropy bad label" `Quick cross_entropy_bad_label;
    Alcotest.test_case "concat/split roundtrip" `Quick concat_split_roundtrip;
    Alcotest.test_case "split bad counts" `Quick split_bad_counts;
    QCheck_alcotest.to_alcotest qcheck_map_identity;
    QCheck_alcotest.to_alcotest qcheck_add_comm;
    QCheck_alcotest.to_alcotest qcheck_flatten_preserves_sum;
    QCheck_alcotest.to_alcotest qcheck_softmax_normalized;
  ]

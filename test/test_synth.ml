(* Tests for the score function and the Metropolis-Hastings synthesizer
   (Algorithm 2), run against the exact mean-threshold toy classifier. *)

module C = Oppsla.Condition
module Score = Oppsla.Score
module Synthesizer = Oppsla.Synthesizer

let size = 4
let full_space = 8 * size * size

(* Two attackable images and one hopeless one. *)
let training =
  [|
    (Helpers.flat_image ~size 0.49, 0);
    (Helpers.flat_image ~size 0.52, 1);
    (Helpers.flat_image ~size 0.30, 0);
  |]

let oracle () = Helpers.mean_threshold_oracle ()

let score_function_shape () =
  Alcotest.(check (float 1e-12)) "zero queries" 1. (Score.score ~beta:0.1 0.);
  Alcotest.(check bool) "decreasing" true
    (Score.score ~beta:0.1 10. > Score.score ~beta:0.1 20.);
  Alcotest.(check bool) "positive" true (Score.score ~beta:0.1 1e6 >= 0.)

let acceptance_ratio_shape () =
  Alcotest.(check (float 1e-12)) "equal" 1.
    (Score.acceptance_ratio ~beta:0.1 ~current:50. ~proposal:50.);
  Alcotest.(check bool) "improvement > 1" true
    (Score.acceptance_ratio ~beta:0.1 ~current:50. ~proposal:40. > 1.);
  Alcotest.(check bool) "worsening < 1" true
    (Score.acceptance_ratio ~beta:0.1 ~current:50. ~proposal:60. < 1.);
  (* Consistency with the score function itself. *)
  let beta = 0.05 and a = 33. and b = 47. in
  Alcotest.(check (float 1e-12)) "matches S'/S"
    (Score.score ~beta b /. Score.score ~beta a)
    (Score.acceptance_ratio ~beta ~current:a ~proposal:b)

let evaluate_counts () =
  let e = Score.evaluate (oracle ()) C.const_false_program training in
  Alcotest.(check int) "attempts" 3 e.Score.attempts;
  Alcotest.(check int) "successes" 2 e.Score.successes;
  (* Both attackable images succeed on the first query (see
     test_sketch); the hopeless one spends the full space. *)
  Alcotest.(check (float 1e-9)) "avg over successes" 1. e.Score.avg_queries;
  Alcotest.(check int) "total includes failures" (2 + full_space)
    e.Score.total_queries

let evaluate_respects_cap () =
  let e =
    Score.evaluate ~max_queries:5 (oracle ()) C.const_false_program training
  in
  Alcotest.(check int) "total capped" (2 + 5) e.Score.total_queries

let evaluate_no_successes () =
  let e =
    Score.evaluate (oracle ()) C.const_false_program
      [| (Helpers.flat_image ~size 0.30, 0) |]
  in
  Alcotest.(check int) "no successes" 0 e.Score.successes;
  Alcotest.(check (float 0.)) "penalty" Score.no_success_penalty
    e.Score.avg_queries

(* Synthesizer *)

let config iters =
  {
    Synthesizer.default_config with
    max_iters = iters;
    max_queries_per_image = Some 64;
  }

let trace_well_formed () =
  let out =
    Synthesizer.synthesize ~config:(config 10) (Prng.of_int 3) (oracle ())
      ~training
  in
  let trace = out.Synthesizer.trace in
  Alcotest.(check int) "initial + iterations" 11 (List.length trace);
  List.iteri
    (fun i (it : Synthesizer.iteration) ->
      Alcotest.(check int) "indices in order" i it.Synthesizer.index)
    trace;
  (* Cumulative synthesis queries are non-decreasing and end at the
     reported total. *)
  let rec check_monotone = function
    | (a : Synthesizer.iteration) :: (b : Synthesizer.iteration) :: rest ->
        Alcotest.(check bool) "monotone" true
          (a.synth_queries_total <= b.synth_queries_total);
        check_monotone (b :: rest)
    | _ -> ()
  in
  check_monotone trace;
  let last = List.nth trace (List.length trace - 1) in
  Alcotest.(check int) "total matches" out.Synthesizer.synth_queries
    last.Synthesizer.synth_queries_total

let initial_iteration_accepted () =
  let out =
    Synthesizer.synthesize ~config:(config 3) (Prng.of_int 4) (oracle ())
      ~training
  in
  match out.Synthesizer.trace with
  | first :: _ ->
      Alcotest.(check bool) "iteration 0 accepted" true
        first.Synthesizer.accepted
  | [] -> Alcotest.fail "empty trace"

let final_is_last_accepted () =
  let out =
    Synthesizer.synthesize ~config:(config 15) (Prng.of_int 5) (oracle ())
      ~training
  in
  let last_accepted =
    List.fold_left
      (fun acc (it : Synthesizer.iteration) ->
        if it.Synthesizer.accepted then Some it.Synthesizer.program else acc)
      None out.Synthesizer.trace
  in
  match last_accepted with
  | Some p ->
      Alcotest.(check bool) "chain position" true
        (C.equal_program p out.Synthesizer.final)
  | None -> Alcotest.fail "no accepted iteration"

let best_not_worse_than_final () =
  let out =
    Synthesizer.synthesize ~config:(config 15) (Prng.of_int 6) (oracle ())
      ~training
  in
  Alcotest.(check bool) "best <= final" true
    (out.Synthesizer.best_avg_queries <= out.Synthesizer.final_avg_queries)

let deterministic_given_seed () =
  let run () =
    Synthesizer.synthesize ~config:(config 8) (Prng.of_int 7) (oracle ())
      ~training
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same final program" true
    (C.equal_program a.Synthesizer.final b.Synthesizer.final);
  Alcotest.(check int) "same query spend" a.Synthesizer.synth_queries
    b.Synthesizer.synth_queries

let max_synth_queries_stops_early () =
  let cfg = { (config 1000) with max_synth_queries = Some 200 } in
  let out =
    Synthesizer.synthesize ~config:cfg (Prng.of_int 8) (oracle ()) ~training
  in
  Alcotest.(check bool) "stopped early" true
    (List.length out.Synthesizer.trace < 1001);
  (* It overshoots by at most one evaluation. *)
  Alcotest.(check bool) "bounded overshoot" true
    (out.Synthesizer.synth_queries <= 200 + ((2 * 64) + full_space))

let custom_evaluator_used () =
  let calls = ref 0 in
  let evaluator _program samples =
    incr calls;
    {
      Score.avg_queries = 5.;
      successes = Array.length samples;
      attempts = Array.length samples;
      total_queries = 10;
      per_image =
        Array.map
          (fun _ -> { Score.queries = 5; success = true })
          samples;
    }
  in
  let cfg = { (config 4) with evaluator = Some evaluator } in
  let out =
    Synthesizer.synthesize ~config:cfg (Prng.of_int 9) (oracle ()) ~training
  in
  Alcotest.(check int) "evaluator called per candidate" 5 !calls;
  Alcotest.(check int) "queries from evaluations" 50
    out.Synthesizer.synth_queries

let empty_training_raises () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Synthesizer.synthesize (Prng.of_int 1) (oracle ()) ~training:[||]);
       false
     with Invalid_argument _ -> true)

let on_iteration_hook_called () =
  let seen = ref 0 in
  let cfg = { (config 5) with on_iteration = (fun _ -> incr seen) } in
  ignore (Synthesizer.synthesize ~config:cfg (Prng.of_int 10) (oracle ()) ~training);
  Alcotest.(check int) "hook fired" 6 !seen

(* --- PAC early stopping --- *)

(* A corpus with enough spread that bad proposals visibly burn queries.
   Flat images are useless here — when feasible they fall to the very
   first candidate regardless of the program — so most images plant one
   special pixel (see [Helpers.special_pixel_image]) whose winning
   corner sits deep in the default search order.  Programs that edit
   the queue shift how deep, giving per-program averages anywhere from
   ~3 to ~22 queries on this corpus.  Two flat images keep the easy
   1-query case represented. *)
let pac_training =
  [|
    (Helpers.special_pixel_image ~size ~base:0.52 ~v:0.10 ~row:3 ~col:3, 0);
    (Helpers.special_pixel_image ~size ~base:0.48 ~v:0.90 ~row:3 ~col:3, 1);
    (Helpers.special_pixel_image ~size ~base:0.52 ~v:0.10 ~row:0 ~col:3, 0);
    (Helpers.special_pixel_image ~size ~base:0.48 ~v:0.90 ~row:3 ~col:0, 1);
    (Helpers.special_pixel_image ~size ~base:0.53 ~v:0.05 ~row:2 ~col:3, 0);
    (Helpers.special_pixel_image ~size ~base:0.47 ~v:0.95 ~row:3 ~col:2, 1);
    (Helpers.flat_image ~size 0.49, 0);
    (Helpers.flat_image ~size 0.52, 1);
  |]

let aggressive_pac = { Score.default_pac with min_images = 2; stage = 1 }

(* With threshold = infinity nothing can be pruned, and the staged
   evaluator must reproduce the exact evaluator bit for bit, whatever
   visiting order the permutation picked. *)
let qcheck_pac_complete_is_exact =
  QCheck.Test.make ~name:"evaluate_pac completion is bit-exact" ~count:40
    QCheck.small_int (fun seed ->
      let g = Prng.of_int (seed + 101) in
      let gen_config = Helpers.gen_config ~size in
      let program = Oppsla.Gen.random_program gen_config g in
      let order = Prng.permutation g (Array.length pac_training) in
      let exact =
        Score.evaluate ~max_queries:128 (oracle ()) program pac_training
      in
      match
        Score.evaluate_pac ~max_queries:128 ~pac:aggressive_pac
          ~threshold:infinity ~order (oracle ()) program pac_training
      with
      | Score.Complete e ->
          e.Score.avg_queries = exact.Score.avg_queries
          && e.Score.total_queries = exact.Score.total_queries
          && e.Score.successes = exact.Score.successes
          && Array.for_all2
               (fun (a : Score.image_eval) (b : Score.image_eval) ->
                 a.Score.queries = b.Score.queries
                 && a.Score.success = b.Score.success)
               e.Score.per_image exact.Score.per_image
      | Score.Pruned _ -> false)

let pac_prunes_against_low_threshold () =
  (* Any candidate looks hopeless against an unbeatable incumbent, so
     the certified bound must fire and spend less than a full pass. *)
  let g = Prng.of_int 5 in
  let program = Oppsla.Gen.random_program (Helpers.gen_config ~size) g in
  let order = Prng.permutation g (Array.length pac_training) in
  let full = Score.evaluate ~max_queries:128 (oracle ()) program pac_training in
  match
    Score.evaluate_pac ~max_queries:128 ~pac:aggressive_pac ~threshold:0.5
      ~order (oracle ()) program pac_training
  with
  | Score.Complete _ -> Alcotest.fail "expected pruning against threshold 0.5"
  | Score.Pruned p ->
      Alcotest.(check bool) "spent less than full evaluation" true
        (p.Score.queries_spent < full.Score.total_queries);
      Alcotest.(check bool) "bound exceeds threshold" true
        (p.Score.lower_bound > 0.5);
      Alcotest.(check bool) "saw at least min_images" true
        (p.Score.images_seen >= aggressive_pac.Score.min_images)

let pac_rejects_bad_order () =
  let program = C.const_false_program in
  let bad_order = [| 0; 0; 1; 2; 3; 4; 5; 6 |] in
  Alcotest.(check bool) "duplicate order rejected" true
    (try
       ignore
         (Score.evaluate_pac ~max_queries:128 ~pac:Score.default_pac
            ~threshold:infinity ~order:bad_order (oracle ()) program
            pac_training);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "missing range rejected" true
    (try
       ignore
         (Score.evaluate_pac ~pac:Score.default_pac ~threshold:infinity
            ~order:(Array.init 8 (fun i -> i))
            (oracle ()) program pac_training);
       false
     with Invalid_argument _ -> true)

(* The headline soundness property: on a seeded corpus, every proposal
   the synthesizer prunes is one the full evaluation would have scored
   strictly worse than the incumbent of that iteration — early stopping
   only ever kills candidates exact scoring would not have kept. *)
let pac_never_prunes_keepers () =
  let cfg =
    {
      Synthesizer.default_config with
      max_iters = 40;
      max_queries_per_image = Some 128;
      early_stop = Some aggressive_pac;
    }
  in
  let out =
    Synthesizer.synthesize ~config:cfg (Prng.of_int 21) (oracle ())
      ~training:pac_training
  in
  let pruned_total = ref 0 in
  let incumbent = ref nan in
  List.iter
    (fun (it : Synthesizer.iteration) ->
      if it.Synthesizer.index = 0 then incumbent := it.Synthesizer.avg_queries
      else if it.Synthesizer.pruned then begin
        incr pruned_total;
        Alcotest.(check bool) "pruned implies rejected" false
          it.Synthesizer.accepted;
        let full =
          Score.evaluate ~max_queries:128 (oracle ()) it.Synthesizer.program
            pac_training
        in
        Alcotest.(check bool)
          (Printf.sprintf
             "iteration %d: full avg %.3f must beat incumbent %.3f to be \
              wrongly pruned"
             it.Synthesizer.index full.Score.avg_queries !incumbent)
          true
          (full.Score.avg_queries > !incumbent)
      end
      else if it.Synthesizer.accepted then
        incumbent := it.Synthesizer.avg_queries)
    out.Synthesizer.trace;
  (* The property must not hold vacuously. *)
  Alcotest.(check bool) "at least one proposal was pruned" true
    (!pruned_total > 0)

(* The --no-early-stop escape hatch: early_stop = None must reproduce
   the scores this synthesizer produced before PAC pruning existed.
   The golden numbers were recorded on the pre-PR code at this exact
   configuration (seed 7, 8 iterations, cap 64, 3-image corpus). *)
let no_early_stop_matches_pre_pac_golden () =
  let out =
    Synthesizer.synthesize ~config:(config 8) (Prng.of_int 7) (oracle ())
      ~training
  in
  Alcotest.(check int) "pre-PR query spend" 594 out.Synthesizer.synth_queries;
  Alcotest.(check (float 0.)) "pre-PR final average" 1.
    out.Synthesizer.final_avg_queries;
  Alcotest.(check string) "pre-PR final program"
    "B1: max(pert) < 0.17598642404620646; B2: min(orig) > \
     0.96032900810871424; B3: min(orig) < 0.41503141680443933; B4: \
     min(orig) > 0.87961369762781705"
    (Oppsla.Dsl.print_program out.Synthesizer.final);
  List.iter
    (fun (it : Synthesizer.iteration) ->
      Alcotest.(check bool) "nothing pruned" false it.Synthesizer.pruned)
    out.Synthesizer.trace

let early_stop_deterministic_and_cheaper () =
  let cfg early_stop =
    {
      Synthesizer.default_config with
      max_iters = 40;
      max_queries_per_image = Some 128;
      early_stop;
    }
  in
  let run es =
    Synthesizer.synthesize ~config:(cfg es) (Prng.of_int 21) (oracle ())
      ~training:pac_training
  in
  let a = run (Some aggressive_pac) and b = run (Some aggressive_pac) in
  Alcotest.(check int) "deterministic spend" a.Synthesizer.synth_queries
    b.Synthesizer.synth_queries;
  Alcotest.(check bool) "same final" true
    (C.equal_program a.Synthesizer.final b.Synthesizer.final);
  let exact = run None in
  Alcotest.(check bool) "early stopping saves queries" true
    (a.Synthesizer.synth_queries < exact.Synthesizer.synth_queries)

let suite =
  [
    Alcotest.test_case "score shape" `Quick score_function_shape;
    Alcotest.test_case "acceptance ratio" `Quick acceptance_ratio_shape;
    Alcotest.test_case "evaluate counts" `Quick evaluate_counts;
    Alcotest.test_case "evaluate respects cap" `Quick evaluate_respects_cap;
    Alcotest.test_case "evaluate no successes" `Quick evaluate_no_successes;
    Alcotest.test_case "trace well formed" `Quick trace_well_formed;
    Alcotest.test_case "initial iteration accepted" `Quick
      initial_iteration_accepted;
    Alcotest.test_case "final is last accepted" `Quick final_is_last_accepted;
    Alcotest.test_case "best <= final" `Quick best_not_worse_than_final;
    Alcotest.test_case "deterministic" `Quick deterministic_given_seed;
    Alcotest.test_case "max synth queries" `Quick max_synth_queries_stops_early;
    Alcotest.test_case "custom evaluator" `Quick custom_evaluator_used;
    Alcotest.test_case "empty training raises" `Quick empty_training_raises;
    Alcotest.test_case "on_iteration hook" `Quick on_iteration_hook_called;
    QCheck_alcotest.to_alcotest qcheck_pac_complete_is_exact;
    Alcotest.test_case "pac prunes against low threshold" `Quick
      pac_prunes_against_low_threshold;
    Alcotest.test_case "pac rejects bad order" `Quick pac_rejects_bad_order;
    Alcotest.test_case "pac never prunes keepers" `Quick
      pac_never_prunes_keepers;
    Alcotest.test_case "no-early-stop matches pre-PR golden" `Quick
      no_early_stop_matches_pre_pac_golden;
    Alcotest.test_case "early stop deterministic and cheaper" `Quick
      early_stop_deterministic_and_cheaper;
  ]

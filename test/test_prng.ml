(* Tests for the SplitMix64 generator. *)


let determinism () =
  let a = Prng.of_int 7 and b = Prng.of_int 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let different_seeds () =
  let a = Prng.of_int 7 and b = Prng.of_int 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let copy_shares_future () =
  let a = Prng.of_int 3 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copies agree" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let split_independent () =
  let a = Prng.of_int 5 in
  let child = Prng.split a in
  let x = Prng.next_int64 child and y = Prng.next_int64 a in
  Alcotest.(check bool) "child differs from parent" true (x <> y)

let named_stream_position_independent () =
  (* The named stream depends only on the root seed and the name, not on
     how much the parent has been consumed. *)
  let a = Prng.of_int 11 and b = Prng.of_int 11 in
  for _ = 1 to 17 do
    ignore (Prng.next_int64 b)
  done;
  let sa = Prng.named_stream a "data" and sb = Prng.named_stream b "data" in
  for _ = 1 to 20 do
    Alcotest.(check int64) "streams agree" (Prng.next_int64 sa)
      (Prng.next_int64 sb)
  done

let named_stream_distinct_names () =
  let root = Prng.of_int 11 in
  let x = Prng.next_int64 (Prng.named_stream root "alpha") in
  let y = Prng.next_int64 (Prng.named_stream root "beta") in
  Alcotest.(check bool) "different names differ" true (x <> y)

let int_bounds () =
  let g = Prng.of_int 1 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "in [0, 7)" true (v >= 0 && v < 7)
  done

let int_invalid () =
  let g = Prng.of_int 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let int_in_bounds () =
  let g = Prng.of_int 2 in
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-3) 4 in
    Alcotest.(check bool) "in [-3, 4]" true (v >= -3 && v <= 4)
  done

let int_covers_range () =
  let g = Prng.of_int 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let uniform_range () =
  let g = Prng.of_int 4 in
  for _ = 1 to 1000 do
    let v = Prng.uniform g in
    Alcotest.(check bool) "in [0, 1)" true (v >= 0. && v < 1.)
  done

let uniform_mean () =
  let g = Prng.of_int 5 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.uniform g
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let normal_moments () =
  let g = Prng.of_int 6 in
  let n = 20000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let v = Prng.normal g ~mu:2. ~sigma:3. () in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.) < 0.1);
  Alcotest.(check bool) "var near 9" true (Float.abs (var -. 9.) < 0.5)

let float_in_range () =
  let g = Prng.of_int 8 in
  for _ = 1 to 500 do
    let v = Prng.float_in g (-2.) 3. in
    Alcotest.(check bool) "in [-2, 3)" true (v >= -2. && v < 3.)
  done

let choice_singleton () =
  let g = Prng.of_int 9 in
  Alcotest.(check int) "only element" 42 (Prng.choice g [| 42 |]);
  Alcotest.(check int) "only list element" 7 (Prng.choice_list g [ 7 ])

let choice_empty () =
  let g = Prng.of_int 9 in
  Alcotest.check_raises "empty array"
    (Invalid_argument "Prng.choice: empty array") (fun () ->
      ignore (Prng.choice g [||]))

let permutation_props () =
  let g = Prng.of_int 10 in
  let p = Prng.permutation g 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 50 Fun.id) sorted

let sample_distinct () =
  let g = Prng.of_int 12 in
  let a = Array.init 30 Fun.id in
  let s = Prng.sample_without_replacement g 10 a in
  Alcotest.(check int) "10 samples" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

let sample_invalid () =
  let g = Prng.of_int 12 in
  Alcotest.check_raises "too many"
    (Invalid_argument "Prng.sample_without_replacement") (fun () ->
      ignore (Prng.sample_without_replacement g 4 [| 1; 2 |]))

let qcheck_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (small_list int))
    (fun (seed, l) ->
      let g = Prng.of_int seed in
      let a = Array.of_list l in
      let b = Prng.shuffle g a in
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"int_in stays in bounds" ~count:500
    QCheck.(triple small_int small_signed_int small_nat)
    (fun (seed, lo, span) ->
      let g = Prng.of_int seed in
      let hi = lo + span in
      let v = Prng.int_in g lo hi in
      v >= lo && v <= hi)

let save_restore_roundtrip () =
  let g = Prng.of_int 97 in
  for _ = 1 to 23 do
    ignore (Prng.next_int64 g)
  done;
  let g' = Prng.restore (Prng.save g) in
  for _ = 1 to 20 do
    Alcotest.(check int64) "restored stream" (Prng.next_int64 g)
      (Prng.next_int64 g')
  done;
  (* The root survives the round-trip too: named streams derived from
     the restored generator match the original's. *)
  let a = Prng.named_stream g "x" and b = Prng.named_stream g' "x" in
  Alcotest.(check int64) "restored root" (Prng.next_int64 a)
    (Prng.next_int64 b)

let restore_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try
           ignore (Prng.restore s);
           false
         with Invalid_argument _ -> true))
    [
      "";
      "splitmix64";
      "splitmix64:00:11";
      "splitmix64:zzzzzzzzzzzzzzzz:0000000000000000";
      "mt19937:0000000000000000:0000000000000000";
    ]

let suite =
  [
    Alcotest.test_case "determinism" `Quick determinism;
    Alcotest.test_case "save/restore round-trip" `Quick save_restore_roundtrip;
    Alcotest.test_case "restore rejects garbage" `Quick
      restore_rejects_garbage;
    Alcotest.test_case "different seeds" `Quick different_seeds;
    Alcotest.test_case "copy shares future" `Quick copy_shares_future;
    Alcotest.test_case "split independence" `Quick split_independent;
    Alcotest.test_case "named stream position independence" `Quick
      named_stream_position_independent;
    Alcotest.test_case "named stream distinct names" `Quick
      named_stream_distinct_names;
    Alcotest.test_case "int bounds" `Quick int_bounds;
    Alcotest.test_case "int invalid bound" `Quick int_invalid;
    Alcotest.test_case "int_in bounds" `Quick int_in_bounds;
    Alcotest.test_case "int covers range" `Quick int_covers_range;
    Alcotest.test_case "uniform range" `Quick uniform_range;
    Alcotest.test_case "uniform mean" `Quick uniform_mean;
    Alcotest.test_case "normal moments" `Quick normal_moments;
    Alcotest.test_case "float_in range" `Quick float_in_range;
    Alcotest.test_case "choice singleton" `Quick choice_singleton;
    Alcotest.test_case "choice empty" `Quick choice_empty;
    Alcotest.test_case "permutation properties" `Quick permutation_props;
    Alcotest.test_case "sample without replacement distinct" `Quick
      sample_distinct;
    Alcotest.test_case "sample without replacement invalid" `Quick
      sample_invalid;
    QCheck_alcotest.to_alcotest qcheck_shuffle_permutation;
    QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
  ]


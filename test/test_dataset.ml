(* Tests for the procedural datasets. *)

let specs = [ Dataset.synth_cifar; Dataset.synth_imagenet ]

let image_ranges () =
  List.iter
    (fun (spec : Dataset.spec) ->
      let g = Prng.of_int 1 in
      for class_id = 0 to spec.num_classes - 1 do
        let img = Dataset.generate spec g ~class_id in
        Alcotest.(check (array int))
          "CHW shape"
          [| 3; spec.image_size; spec.image_size |]
          (Tensor.shape img);
        Alcotest.(check bool) "within [0,1]" true
          (Tensor.min_val img >= 0. && Tensor.max_val img <= 1.)
      done)
    specs

let deterministic () =
  List.iter
    (fun (spec : Dataset.spec) ->
      let a = Dataset.generate spec (Prng.of_int 7) ~class_id:3 in
      let b = Dataset.generate spec (Prng.of_int 7) ~class_id:3 in
      Alcotest.(check bool) "same seed, same image" true (Tensor.equal a b))
    specs

let distinct_instances () =
  let g = Prng.of_int 7 in
  let a = Dataset.generate Dataset.synth_cifar g ~class_id:3 in
  let b = Dataset.generate Dataset.synth_cifar g ~class_id:3 in
  Alcotest.(check bool) "instances vary" false (Tensor.equal a b)

let invalid_class () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dataset.generate Dataset.synth_cifar (Prng.of_int 1) ~class_id:10);
       false
     with Invalid_argument _ -> true)

let class_names_sized () =
  List.iter
    (fun (spec : Dataset.spec) ->
      Alcotest.(check int) "one name per class" spec.num_classes
        (Array.length spec.class_names))
    specs

let class_set_labels () =
  let set =
    Dataset.class_set Dataset.synth_cifar ~seed:11 ~class_id:4 ~n:6
  in
  Alcotest.(check int) "size" 6 (Array.length set);
  Array.iter
    (fun (_, label) -> Alcotest.(check int) "label" 4 label)
    set

let class_set_stable () =
  let a = Dataset.class_set Dataset.synth_cifar ~seed:11 ~class_id:4 ~n:3 in
  let b = Dataset.class_set Dataset.synth_cifar ~seed:11 ~class_id:4 ~n:3 in
  Array.iteri
    (fun i (x, _) ->
      Alcotest.(check bool) "stable" true (Tensor.equal x (fst b.(i))))
    a

let class_set_prefix_stable () =
  (* Growing a class set keeps the existing images unchanged. *)
  let small = Dataset.class_set Dataset.synth_cifar ~seed:11 ~class_id:2 ~n:3 in
  let large = Dataset.class_set Dataset.synth_cifar ~seed:11 ~class_id:2 ~n:6 in
  Array.iteri
    (fun i (x, _) ->
      Alcotest.(check bool) "prefix preserved" true
        (Tensor.equal x (fst large.(i))))
    small

let balanced_set_composition () =
  let spec = Dataset.synth_cifar in
  let set = Dataset.balanced_set spec ~seed:3 ~per_class:2 in
  Alcotest.(check int) "size" (2 * spec.num_classes) (Array.length set);
  let counts = Array.make spec.num_classes 0 in
  Array.iter (fun (_, c) -> counts.(c) <- counts.(c) + 1) set;
  Array.iter (fun n -> Alcotest.(check int) "balanced" 2 n) counts

let train_test_disjoint_streams () =
  let train, test =
    Dataset.train_test Dataset.synth_cifar ~seed:5 ~train_per_class:2
      ~test_per_class:2
  in
  Array.iter
    (fun (tr, _) ->
      Array.iter
        (fun (te, _) ->
          Alcotest.(check bool) "train and test differ" false
            (Tensor.equal tr te))
        test)
    train

let test_stable_under_train_size () =
  let _, test_a =
    Dataset.train_test Dataset.synth_cifar ~seed:5 ~train_per_class:2
      ~test_per_class:2
  in
  let _, test_b =
    Dataset.train_test Dataset.synth_cifar ~seed:5 ~train_per_class:7
      ~test_per_class:2
  in
  Array.iteri
    (fun i (x, _) ->
      Alcotest.(check bool) "test unchanged" true
        (Tensor.equal x (fst test_b.(i))))
    test_a

let hsv_known_values () =
  let check name (r, g, b) (r', g', b') =
    Alcotest.(check (float 1e-9)) (name ^ " r") r r';
    Alcotest.(check (float 1e-9)) (name ^ " g") g g';
    Alcotest.(check (float 1e-9)) (name ^ " b") b b'
  in
  check "red" (1., 0., 0.) (Dataset.hsv_to_rgb ~h:0. ~s:1. ~v:1.);
  check "green" (0., 1., 0.) (Dataset.hsv_to_rgb ~h:(1. /. 3.) ~s:1. ~v:1.);
  check "blue" (0., 0., 1.) (Dataset.hsv_to_rgb ~h:(2. /. 3.) ~s:1. ~v:1.);
  check "white" (1., 1., 1.) (Dataset.hsv_to_rgb ~h:0.42 ~s:0. ~v:1.);
  check "black" (0., 0., 0.) (Dataset.hsv_to_rgb ~h:0.42 ~s:1. ~v:0.)

let hsv_wraps () =
  let r, g, b = Dataset.hsv_to_rgb ~h:1.25 ~s:0.7 ~v:0.8 in
  let r', g', b' = Dataset.hsv_to_rgb ~h:0.25 ~s:0.7 ~v:0.8 in
  Alcotest.(check (float 1e-9)) "r wraps" r' r;
  Alcotest.(check (float 1e-9)) "g wraps" g' g;
  Alcotest.(check (float 1e-9)) "b wraps" b' b

let qcheck_hsv_in_range =
  QCheck.Test.make ~name:"hsv_to_rgb stays in [0,1]" ~count:300
    QCheck.(triple (float_range (-2.) 2.) (float_range 0. 1.) (float_range 0. 1.))
    (fun (h, s, v) ->
      let r, g, b = Dataset.hsv_to_rgb ~h ~s ~v in
      let ok x = x >= 0. && x <= 1. in
      ok r && ok g && ok b)

let qcheck_generate_in_range =
  QCheck.Test.make ~name:"generated pixels stay in [0,1]" ~count:25
    QCheck.(pair small_int (int_bound 9))
    (fun (seed, class_id) ->
      let img =
        Dataset.generate Dataset.synth_cifar (Prng.of_int seed) ~class_id
      in
      Tensor.min_val img >= 0. && Tensor.max_val img <= 1.)

let classes_distinguishable () =
  (* Mean color differs between far-apart classes on average: a crude
     sanity check that classes carry signal. *)
  let spec = Dataset.synth_cifar in
  let mean_of class_id =
    let g = Prng.of_int 99 in
    let n = 20 in
    let sum = ref 0. in
    for _ = 1 to n do
      sum := !sum +. Tensor.mean (Dataset.generate spec g ~class_id)
    done;
    !sum /. float_of_int n
  in
  (* Not a strict separation claim; just that generation isn't collapsing
     to identical statistics for every class. *)
  let m0 = mean_of 0 and m5 = mean_of 5 in
  Alcotest.(check bool) "class statistics differ" true
    (Float.abs (m0 -. m5) > 0.005)

let suite =
  [
    Alcotest.test_case "image ranges" `Quick image_ranges;
    Alcotest.test_case "deterministic" `Quick deterministic;
    Alcotest.test_case "distinct instances" `Quick distinct_instances;
    Alcotest.test_case "invalid class" `Quick invalid_class;
    Alcotest.test_case "class names sized" `Quick class_names_sized;
    Alcotest.test_case "class_set labels" `Quick class_set_labels;
    Alcotest.test_case "class_set stable" `Quick class_set_stable;
    Alcotest.test_case "class_set prefix stable" `Quick class_set_prefix_stable;
    Alcotest.test_case "balanced_set composition" `Quick
      balanced_set_composition;
    Alcotest.test_case "train/test disjoint" `Quick train_test_disjoint_streams;
    Alcotest.test_case "test stable under train size" `Quick
      test_stable_under_train_size;
    Alcotest.test_case "hsv known values" `Quick hsv_known_values;
    Alcotest.test_case "hsv wraps" `Quick hsv_wraps;
    Alcotest.test_case "classes distinguishable" `Quick classes_distinguishable;
    QCheck_alcotest.to_alcotest qcheck_hsv_in_range;
    QCheck_alcotest.to_alcotest qcheck_generate_in_range;
  ]

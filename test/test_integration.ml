(* Integration tests: the full pipeline on a real (but tiny) trained
   network, plus workbench artifact caching. *)

module Workbench = Evalharness.Workbench

(* A fast workbench configuration: a couple of epochs on little data,
   caching into a temp directory that is wiped afterwards. *)
let with_workbench f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oppsla_test_%d" (Unix.getpid ()))
  in
  let config =
    {
      Workbench.default_config with
      artifacts_dir = Some dir;
      train_per_class = 16;
      test_per_class = 3;
      synth_per_class = 3;
      epochs = 4;
      seed = 7;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f config)

let classifier_pipeline () =
  with_workbench (fun config ->
      let c = Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny" in
      Alcotest.(check bool) "better than chance" true (c.Workbench.test_accuracy > 0.15);
      Alcotest.(check int) "10 synth sets" 10
        (Array.length c.Workbench.synth_sets);
      (* Every test image really is correctly classified. *)
      Array.iter
        (fun (x, label) ->
          Alcotest.(check int) "correct" label
            (Nn.Network.classify c.Workbench.net x))
        c.Workbench.test;
      (* Weights were cached; a reload produces identical logits. *)
      let c2 = Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny" in
      match c.Workbench.test with
      | [||] -> ()
      | test ->
          let x, _ = test.(0) in
          Alcotest.(check bool) "cache roundtrip" true
            (Tensor.equal
               (Nn.Network.logits c.Workbench.net x)
               (Nn.Network.logits c2.Workbench.net x)))

let attack_on_real_network () =
  with_workbench (fun config ->
      let c = Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny" in
      match c.Workbench.test with
      | [||] -> Alcotest.fail "no attackable images"
      | test ->
          let image, true_class = test.(0) in
          let oracle = Workbench.oracle_factory c () in
          let r =
            Oppsla.Sketch.attack oracle Oppsla.Condition.const_false_program
              ~image ~true_class
          in
          Alcotest.(check bool) "bounded queries" true
            (r.Oppsla.Sketch.queries >= 1
            && r.Oppsla.Sketch.queries <= 8 * 16 * 16);
          Alcotest.(check int) "oracle counted the same" r.Oppsla.Sketch.queries
            (Oracle.queries oracle);
          (match r.Oppsla.Sketch.adversarial with
          | Some (_, adv) ->
              Alcotest.(check bool) "really adversarial" true
                (Oracle.unmetered_classify oracle adv <> true_class)
          | None -> ());
          (* Deterministic attack on a deterministic network. *)
          let r2 =
            Oppsla.Sketch.attack
              (Workbench.oracle_factory c ())
              Oppsla.Condition.const_false_program ~image ~true_class
          in
          Alcotest.(check int) "repeatable" r.Oppsla.Sketch.queries
            r2.Oppsla.Sketch.queries)

let program_cache_roundtrip () =
  with_workbench (fun config ->
      let c = Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny" in
      let params =
        {
          Workbench.default_synth_params with
          iters = 2;
          synth_max_queries_per_image = 128;
        }
      in
      let a = Workbench.synthesize_programs ~params config c in
      Alcotest.(check int) "one program per class" 10 (Array.length a);
      (* Second call must hit the DSL cache and return equal programs. *)
      let b = Workbench.synthesize_programs ~params config c in
      Array.iteri
        (fun i p ->
          Alcotest.(check bool)
            (Printf.sprintf "class %d identical" i)
            true
            (Oppsla.Condition.equal_program p b.(i)))
        a)

let parallel_evaluator_agrees_with_sequential () =
  with_workbench (fun config ->
      let c = Workbench.load_classifier config Dataset.synth_cifar "vgg_tiny" in
      let samples =
        Array.sub c.Workbench.test 0 (min 6 (Array.length c.Workbench.test))
      in
      let program = Oppsla.Condition.const_false_program in
      let par =
        Workbench.parallel_evaluator ~domains:2 ~max_queries:256 c program
          samples
      in
      let seq =
        Oppsla.Score.evaluate ~max_queries:256
          (Workbench.oracle_factory c ())
          program samples
      in
      Alcotest.(check int) "same successes" seq.Oppsla.Score.successes
        par.Oppsla.Score.successes;
      Alcotest.(check int) "same totals" seq.Oppsla.Score.total_queries
        par.Oppsla.Score.total_queries;
      Alcotest.(check (float 1e-9)) "same average" seq.Oppsla.Score.avg_queries
        par.Oppsla.Score.avg_queries)

let suite =
  [
    Alcotest.test_case "classifier pipeline" `Slow classifier_pipeline;
    Alcotest.test_case "attack on real network" `Slow attack_on_real_network;
    Alcotest.test_case "program cache roundtrip" `Slow program_cache_roundtrip;
    Alcotest.test_case "parallel evaluator agrees" `Slow
      parallel_evaluator_agrees_with_sequential;
  ]

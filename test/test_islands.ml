(* Replay-determinism suite for island-model synthesis (ROADMAP item 3).

   Every claim Islands makes is a determinism claim, so every test here
   is an equality on full traces: bit-identical elite traces and query
   counts across domain-pool widths and K = 1/2/4, kill-and-resume
   convergence to the uninterrupted trace, checkpoint write/read
   round-trips, clear rejection of damaged or foreign checkpoint files,
   and a committed golden checkpoint that pins the on-disk format. *)

module C = Oppsla.Condition
module Islands = Oppsla.Islands
module Pool = Evalharness.Parallel.Pool

let size = 4

(* Four attackable images of varying margin and one hopeless one. *)
let training =
  [|
    (Helpers.flat_image ~size 0.49, 0);
    (Helpers.flat_image ~size 0.52, 1);
    (Helpers.flat_image ~size 0.47, 0);
    (Helpers.flat_image ~size 0.54, 1);
    (Helpers.flat_image ~size 0.30, 0);
  |]

let oracle () = Helpers.mean_threshold_oracle ()

let config ?(islands = 2) ?(rounds = 6) ?checkpoint ?(checkpoint_every = 2)
    ?(on_round = fun _ -> ()) () =
  {
    Islands.default_config with
    islands;
    rounds;
    migration_period = 2;
    max_queries_per_image = Some 64;
    checkpoint;
    checkpoint_every;
    on_round;
  }

let run ?(domains = 1) ?(seed = 11) ?(resume = false) config =
  if domains > 1 then
    Pool.with_pool ~domains (fun pool ->
        Islands.synthesize ~config ~pool ~resume (Prng.of_int seed) (oracle ())
          ~training)
  else Islands.synthesize ~config ~resume (Prng.of_int seed) (oracle ()) ~training

let entry_equal (a : Islands.entry) (b : Islands.entry) =
  a.Islands.round = b.Islands.round
  && a.Islands.island = b.Islands.island
  && C.equal_program a.Islands.program b.Islands.program
  && a.Islands.avg_queries = b.Islands.avg_queries
  && a.Islands.accepted = b.Islands.accepted
  && a.Islands.pruned = b.Islands.pruned
  && a.Islands.queries_total = b.Islands.queries_total

let outcomes_equal (a : Islands.outcome) (b : Islands.outcome) =
  a.Islands.synth_queries = b.Islands.synth_queries
  && a.Islands.best_avg_queries = b.Islands.best_avg_queries
  && C.equal_program a.Islands.best b.Islands.best
  && a.Islands.migrations = b.Islands.migrations
  && List.length a.Islands.trace = List.length b.Islands.trace
  && List.for_all2 entry_equal a.Islands.trace b.Islands.trace

let with_tmp f =
  let file = Filename.temp_file "oppsla_islands" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () -> f file)

(* --- replay determinism --- *)

let qcheck_replay_across_widths =
  QCheck.Test.make ~name:"islands: trace identical at domains 1 vs 4, K=1/2/4"
    ~count:6
    QCheck.(pair small_int (oneofl [ 1; 2; 4 ]))
    (fun (seed, k) ->
      let cfg () = config ~islands:k ~rounds:4 () in
      let seq = run ~domains:1 ~seed (cfg ()) in
      let par = run ~domains:4 ~seed (cfg ()) in
      outcomes_equal seq par)

let same_seed_same_trace () =
  let a = run (config ()) and b = run (config ()) in
  Alcotest.(check bool) "identical reruns" true (outcomes_equal a b)

let trace_shape () =
  let out = run (config ~islands:3 ~rounds:5 ()) in
  (* One seed entry per island plus one step per island per round,
     chronological, islands in index order within a round. *)
  Alcotest.(check int) "entries" (3 * (5 + 1))
    (List.length out.Islands.trace);
  let expected = ref [] in
  for r = 0 to 5 do
    for k = 0 to 2 do
      expected := (r, k) :: !expected
    done
  done;
  List.iter2
    (fun (r, k) (e : Islands.entry) ->
      Alcotest.(check int) "round order" r e.Islands.round;
      Alcotest.(check int) "island order" k e.Islands.island)
    (List.rev !expected) out.Islands.trace;
  Alcotest.(check int) "rounds completed" 5 out.Islands.rounds_completed;
  Alcotest.(check (option int)) "not resumed" None out.Islands.resumed_at;
  (* The cross-island query total in the last entry is the outcome's. *)
  let last = List.nth out.Islands.trace (List.length out.Islands.trace - 1) in
  Alcotest.(check int) "query total" out.Islands.synth_queries
    last.Islands.queries_total

let best_is_archipelago_min () =
  let out = run (config ~islands:4 ()) in
  let min_avg =
    Array.fold_left
      (fun acc (r : Islands.island_report) ->
        Float.min acc r.Islands.best_avg_queries)
      infinity out.Islands.islands
  in
  Alcotest.(check (float 0.)) "best is min over islands" min_avg
    out.Islands.best_avg_queries;
  Array.iteri
    (fun k (r : Islands.island_report) ->
      Alcotest.(check int) "report index" k r.Islands.island;
      Alcotest.(check bool) "best <= final" true
        (r.Islands.best_avg_queries <= r.Islands.final_avg_queries))
    out.Islands.islands

(* --- kill and resume --- *)

let kill_and_resume_converges () =
  with_tmp @@ fun file ->
  let uninterrupted = run (config ()) in
  (* Kill after round 3 completes; the last checkpoint on disk is from
     round 2 (checkpoint_every = 2). *)
  let killed = ref false in
  (try
     ignore
       (run
          (config ~checkpoint:file
             ~on_round:(fun r -> if r = 3 then raise Exit)
             ()))
   with Exit -> killed := true);
  Alcotest.(check bool) "was killed" true !killed;
  let info = Islands.checkpoint_info file in
  Alcotest.(check int) "checkpoint from round 2" 2
    info.Islands.info_rounds_done;
  let resumed = run ~resume:true (config ~checkpoint:file ()) in
  Alcotest.(check (option int)) "resumed at 2" (Some 2)
    resumed.Islands.resumed_at;
  Alcotest.(check bool) "resumed trace equals uninterrupted" true
    (outcomes_equal uninterrupted resumed);
  (* Completion wrote a final checkpoint; resuming from it is a no-op
     continuation that still reproduces the same outcome. *)
  let info = Islands.checkpoint_info file in
  Alcotest.(check int) "final checkpoint at last round" 6
    info.Islands.info_rounds_done;
  let noop = run ~resume:true (config ~checkpoint:file ()) in
  Alcotest.(check bool) "no-op resume equals uninterrupted" true
    (outcomes_equal uninterrupted noop)

let resume_across_widths () =
  with_tmp @@ fun file ->
  let uninterrupted = run ~domains:1 (config ~islands:4 ()) in
  (try
     ignore
       (run ~domains:1
          (config ~islands:4 ~checkpoint:file
             ~on_round:(fun r -> if r = 2 then raise Exit)
             ()))
   with Exit -> ());
  (* Resume on a 4-domain pool: the pool only fans per-image attacks, so
     the resumed trace must still match the sequential uninterrupted run. *)
  let resumed = run ~domains:4 ~resume:true (config ~islands:4 ~checkpoint:file ()) in
  Alcotest.(check bool) "resume on a wider pool converges" true
    (outcomes_equal uninterrupted resumed)

(* --- checkpoint format --- *)

let expect_checkpoint_error name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Checkpoint_error")
  | exception Islands.Checkpoint_error _ -> ()

let roundtrip_info () =
  with_tmp @@ fun file ->
  let out = run (config ~islands:3 ~rounds:4 ~checkpoint:file ()) in
  let info = Islands.checkpoint_info file in
  Alcotest.(check int) "islands" 3 info.Islands.info_islands;
  Alcotest.(check int) "training" 5 info.Islands.info_training;
  Alcotest.(check int) "rounds" 4 info.Islands.info_rounds_done;
  Alcotest.(check int) "queries" out.Islands.synth_queries
    info.Islands.info_synth_queries;
  Alcotest.(check int) "trace length" (List.length out.Islands.trace)
    info.Islands.info_trace_length

let read_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file file s =
  let oc = open_out_bin file in
  output_string oc s;
  close_out oc

let corrupted_rejected () =
  with_tmp @@ fun file ->
  ignore (run (config ~checkpoint:file ()));
  let s = read_file file in
  (* Flip one byte in the middle of the file. *)
  let b = Bytes.of_string s in
  let i = Bytes.length b / 2 in
  Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
  write_file file (Bytes.to_string b);
  expect_checkpoint_error "corrupted" (fun () -> Islands.checkpoint_info file);
  expect_checkpoint_error "corrupted resume" (fun () ->
      run ~resume:true (config ~checkpoint:file ()))

let truncated_rejected () =
  with_tmp @@ fun file ->
  ignore (run (config ~checkpoint:file ()));
  let s = read_file file in
  write_file file (String.sub s 0 (String.length s - 10));
  expect_checkpoint_error "truncated" (fun () -> Islands.checkpoint_info file)

let version_mismatch_rejected () =
  with_tmp @@ fun file ->
  write_file file "oppsla-islands-checkpoint v99\nislands 2\n";
  (match Islands.checkpoint_info file with
  | _ -> Alcotest.fail "expected Checkpoint_error"
  | exception Islands.Checkpoint_error m ->
      Alcotest.(check bool) "message names the version" true
        (Helpers.contains m "version"));
  write_file file "just some text\n";
  expect_checkpoint_error "not a checkpoint" (fun () ->
      Islands.checkpoint_info file)

let missing_file_rejected () =
  expect_checkpoint_error "missing file" (fun () ->
      run ~resume:true (config ~checkpoint:"/nonexistent/oppsla.ckpt" ()));
  Alcotest.(check bool) "resume without checkpoint path raises" true
    (try
       ignore (run ~resume:true (config ()));
       false
     with Invalid_argument _ -> true)

let config_mismatch_rejected () =
  with_tmp @@ fun file ->
  ignore (run (config ~islands:2 ~checkpoint:file ()));
  expect_checkpoint_error "different K" (fun () ->
      run ~resume:true (config ~islands:4 ~checkpoint:file ()));
  expect_checkpoint_error "different seed" (fun () ->
      run ~seed:999 ~resume:true (config ~islands:2 ~checkpoint:file ()))

(* The committed golden checkpoint pins the v1 on-disk format: any
   serialization drift (field order, float formatting, program syntax,
   checksum) shows up as a byte difference against this file. *)
let golden_format_stable () =
  with_tmp @@ fun file ->
  ignore
    (run ~seed:42 (config ~islands:2 ~rounds:4 ~checkpoint:file ()));
  let fresh = read_file file in
  let golden_path =
    (* dune runs the test from its own directory; a manual `dune exec`
       from the repo root finds the committed file one level down. *)
    if Sys.file_exists "islands_golden_v1.ckpt" then "islands_golden_v1.ckpt"
    else "test/islands_golden_v1.ckpt"
  in
  let golden = read_file golden_path in
  Alcotest.(check int) "golden byte length" (String.length golden)
    (String.length fresh);
  Alcotest.(check bool) "golden bytes identical" true (fresh = golden)

(* --- early stopping inside islands stays deterministic --- *)

let early_stop_deterministic () =
  let es = Some { Oppsla.Score.default_pac with min_images = 2; stage = 1 } in
  let cfg () = { (config ~islands:2 ~rounds:5 ()) with early_stop = es } in
  let a = run (cfg ()) and b = run ~domains:4 (cfg ()) in
  Alcotest.(check bool) "early-stopped islands replay across widths" true
    (outcomes_equal a b)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_replay_across_widths;
    Alcotest.test_case "same seed same trace" `Quick same_seed_same_trace;
    Alcotest.test_case "trace shape" `Quick trace_shape;
    Alcotest.test_case "best is archipelago min" `Quick best_is_archipelago_min;
    Alcotest.test_case "kill and resume converges" `Quick
      kill_and_resume_converges;
    Alcotest.test_case "resume across pool widths" `Quick resume_across_widths;
    Alcotest.test_case "checkpoint round-trip info" `Quick roundtrip_info;
    Alcotest.test_case "corrupted checkpoint rejected" `Quick
      corrupted_rejected;
    Alcotest.test_case "truncated checkpoint rejected" `Quick
      truncated_rejected;
    Alcotest.test_case "version mismatch rejected" `Quick
      version_mismatch_rejected;
    Alcotest.test_case "missing checkpoint rejected" `Quick
      missing_file_rejected;
    Alcotest.test_case "config mismatch rejected" `Quick
      config_mismatch_rejected;
    Alcotest.test_case "golden checkpoint format stable" `Quick
      golden_format_stable;
    Alcotest.test_case "early stop deterministic" `Quick
      early_stop_deterministic;
  ]

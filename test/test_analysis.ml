(* Tests for program-portfolio and attack-trace analysis. *)

module C = Oppsla.Condition
module Analysis = Oppsla.Analysis
module Dsl = Oppsla.Dsl

let program_a =
  Dsl.parse_program_exn
    "B1: score_diff < 0.2; B2: max(orig) > 0.1; B3: score_diff > 0.3; B4: center < 4"

let program_b =
  Dsl.parse_program_exn
    "B1: center > 1; B2: min(pert) < 0.5; B3: avg(orig) > 0.2; B4: center < 2"

let func_histogram_counts () =
  let h = Analysis.func_histogram [ program_a; program_b ] in
  Alcotest.(check (option int)) "score_diff twice" (Some 2)
    (List.assoc_opt "score_diff" h);
  Alcotest.(check (option int)) "center three times" (Some 3)
    (List.assoc_opt "center" h);
  Alcotest.(check (option int)) "min(pert) once" (Some 1)
    (List.assoc_opt "min(pert)" h);
  (* Sorted by decreasing count. *)
  match h with
  | (top, n) :: _ ->
      Alcotest.(check string) "center leads" "center" top;
      Alcotest.(check int) "count" 3 n
  | [] -> Alcotest.fail "empty histogram"

let func_histogram_consts () =
  let h = Analysis.func_histogram [ C.const_false_program ] in
  Alcotest.(check (option int)) "consts counted" (Some 4)
    (List.assoc_opt "const" h)

let slot_histogram_per_position () =
  let slots = Analysis.slot_histogram [ program_a; program_b ] in
  Alcotest.(check int) "four slots" 4 (Array.length slots);
  (* B4 of both programs is center. *)
  Alcotest.(check (option int)) "b4 all center" (Some 2)
    (List.assoc_opt "center" slots.(3))

let portfolio_description () =
  let s = Analysis.describe_portfolio [| program_a; program_b |] in
  Alcotest.(check bool) "mentions classes" true (Helpers.contains s "class 0");
  Alcotest.(check bool) "mentions histogram" true
    (Helpers.contains s "function usage:")

let traced_attack_records_all_queries () =
  let oracle = Helpers.mean_threshold_oracle () in
  let image = Helpers.flat_image ~size:4 0.30 in
  let result, steps =
    Analysis.traced_attack oracle C.const_false_program ~image ~true_class:0
  in
  Alcotest.(check int) "one step per query" result.Oppsla.Sketch.queries
    (List.length steps);
  (* Indices are 1..n in order. *)
  List.iteri
    (fun i (s : Analysis.step) ->
      Alcotest.(check int) "ordered" (i + 1) s.Analysis.index)
    steps;
  (* On the mean-threshold oracle every true-class score is a valid
     probability. *)
  List.iter
    (fun (s : Analysis.step) ->
      Alcotest.(check bool) "score in [0,1]" true
        (s.Analysis.true_class_score >= 0. && s.Analysis.true_class_score <= 1.))
    steps

let traced_attack_success_prefix () =
  let oracle = Helpers.mean_threshold_oracle () in
  let image = Helpers.flat_image ~size:4 0.49 in
  let result, steps =
    Analysis.traced_attack oracle C.const_false_program ~image ~true_class:0
  in
  Alcotest.(check bool) "succeeded" true (result.Oppsla.Sketch.adversarial <> None);
  Alcotest.(check int) "trace covers the successful query"
    result.Oppsla.Sketch.queries (List.length steps)

let center_profile_and_locations () =
  let oracle = Helpers.mean_threshold_oracle () in
  let image = Helpers.flat_image ~size:4 0.30 in
  let _, steps =
    Analysis.traced_attack oracle C.const_false_program ~image ~true_class:0
  in
  let profile = Analysis.center_distance_profile ~d1:4 ~d2:4 steps in
  Alcotest.(check int) "one entry per step" (List.length steps)
    (Array.length profile);
  (* The fixed prioritization starts at the centre-most location. *)
  Alcotest.(check (float 1e-9)) "starts central" 0.5 profile.(0);
  Alcotest.(check int) "all 16 locations probed" 16
    (Analysis.unique_locations steps)

let suite =
  [
    Alcotest.test_case "func histogram" `Quick func_histogram_counts;
    Alcotest.test_case "func histogram consts" `Quick func_histogram_consts;
    Alcotest.test_case "slot histogram" `Quick slot_histogram_per_position;
    Alcotest.test_case "portfolio description" `Quick portfolio_description;
    Alcotest.test_case "traced attack records queries" `Quick
      traced_attack_records_all_queries;
    Alcotest.test_case "traced attack success prefix" `Quick
      traced_attack_success_prefix;
    Alcotest.test_case "center profile and locations" `Quick
      center_profile_and_locations;
  ]

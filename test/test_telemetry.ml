(* Tests for the telemetry subsystem: registry semantics, domain-safety
   of the metric primitives, trace emission, and the null-sink identity
   that lets instrumentation live on hot paths.

   The registry is process-global, so every metric here uses a fresh
   "test.*" name — tests must not collide with the production metrics
   (oracle.*, cache.*, ...) that other suites bump as a side effect. *)

let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "test.%s.%d" prefix !n

(* {1 Registry} *)

let counter_semantics () =
  let name = fresh "counter" in
  let c = Telemetry.Metrics.counter name in
  Alcotest.(check int) "starts at 0" 0 (Telemetry.Counter.get c);
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Telemetry.Counter.get c);
  let c' = Telemetry.Metrics.counter name in
  Telemetry.Counter.incr c';
  Alcotest.(check int) "same name, same counter" 43 (Telemetry.Counter.get c);
  Telemetry.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Telemetry.Counter.get c)

let gauge_semantics () =
  let g = Telemetry.Metrics.gauge (fresh "gauge") in
  Alcotest.(check (float 0.)) "starts at 0" 0. (Telemetry.Gauge.get g);
  Telemetry.Gauge.set g 2.5;
  Alcotest.(check (float 0.)) "set" 2.5 (Telemetry.Gauge.get g)

let kind_clash_rejected () =
  let name = fresh "clash" in
  ignore (Telemetry.Metrics.counter name);
  (try
     ignore (Telemetry.Metrics.histogram name);
     Alcotest.fail "histogram under a counter's name should raise"
   with Invalid_argument _ -> ());
  try
    ignore (Telemetry.Metrics.gauge name);
    Alcotest.fail "gauge under a counter's name should raise"
  with Invalid_argument _ -> ()

let histogram_semantics () =
  let h =
    Telemetry.Metrics.histogram ~buckets:[| 1.; 2.; 4. |] (fresh "hist")
  in
  List.iter (Telemetry.Histogram.observe h) [ 0.5; 1.; 1.5; 3.; 100. ];
  let s = Telemetry.Histogram.snapshot h in
  (* Bucket semantics are "le": v <= upper lands in the first matching
     bucket, anything past the last bound overflows. *)
  Alcotest.(check (array (float 0.))) "bounds" [| 1.; 2.; 4. |]
    s.Telemetry.Histogram.uppers;
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1 |]
    s.Telemetry.Histogram.counts;
  Alcotest.(check int) "overflow" 1 s.Telemetry.Histogram.overflow;
  Alcotest.(check int) "total count" 5 s.Telemetry.Histogram.count;
  Alcotest.(check (float 1e-9)) "sum" 106. s.Telemetry.Histogram.sum;
  Telemetry.Histogram.reset h;
  let s = Telemetry.Histogram.snapshot h in
  Alcotest.(check int) "reset count" 0 s.Telemetry.Histogram.count;
  Alcotest.(check int) "reset overflow" 0 s.Telemetry.Histogram.overflow

let histogram_rejects_bad_buckets () =
  (try
     ignore (Telemetry.Metrics.histogram ~buckets:[||] (fresh "bad"));
     Alcotest.fail "empty bucket array should raise"
   with Invalid_argument _ -> ());
  try
    ignore (Telemetry.Metrics.histogram ~buckets:[| 2.; 1. |] (fresh "bad"));
    Alcotest.fail "non-ascending bounds should raise"
  with Invalid_argument _ -> ()

let dump_json_contains_registered () =
  let cname = fresh "json_counter" in
  let c = Telemetry.Metrics.counter cname in
  Telemetry.Counter.add c 7;
  let hname = fresh "json_hist" in
  let h = Telemetry.Metrics.histogram ~buckets:[| 1.; 2. |] hname in
  Telemetry.Histogram.observe h 1.5;
  let json = Telemetry.Metrics.dump_json () in
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec scan i =
      i + m <= n && (String.sub json i m = sub || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "counter dumped" true
    (contains (Printf.sprintf "%S: 7" cname));
  Alcotest.(check bool) "histogram dumped" true
    (contains (Printf.sprintf "%S: {\"count\": 1" hname));
  Alcotest.(check bool) "bucket bound dumped" true
    (contains "{\"le\": 1, \"count\": 0}")

(* {1 Domain-safety} *)

(* 4 domains hammer one counter and one histogram concurrently; every
   increment must survive (atomicity), and the histogram's buckets must
   account for every observation. *)
let concurrent_bumps () =
  let c = Telemetry.Metrics.counter (fresh "conc_counter") in
  let h =
    Telemetry.Metrics.histogram ~buckets:[| 1.; 2.; 4.; 8. |]
      (fresh "conc_hist")
  in
  let per_domain = 10_000 and domains = 4 in
  let worker d =
    Domain.spawn (fun () ->
        for i = 0 to per_domain - 1 do
          Telemetry.Counter.incr c;
          Telemetry.Histogram.observe h (float_of_int ((i + d) mod 10))
        done)
  in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost counter increments" (domains * per_domain)
    (Telemetry.Counter.get c);
  let s = Telemetry.Histogram.snapshot h in
  Alcotest.(check int) "no lost observations" (domains * per_domain)
    s.Telemetry.Histogram.count;
  Alcotest.(check int) "buckets account for every observation"
    s.Telemetry.Histogram.count
    (Array.fold_left ( + ) s.Telemetry.Histogram.overflow
       s.Telemetry.Histogram.counts)

(* {1 Tracing} *)

(* Minimal field extraction for the emitted JSONL — enough to check
   names, timestamps and durations without a JSON parser. *)
let field_string line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  let n = String.length line and m = String.length pat in
  let rec scan i = if i + m > n then None else if String.sub line i m = pat then Some (i + m) else scan (i + 1) in
  Option.map
    (fun start ->
      let stop = String.index_from line start '"' in
      String.sub line start (stop - start))
    (scan 0)

let field_float line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let n = String.length line and m = String.length pat in
  let rec scan i = if i + m > n then None else if String.sub line i m = pat then Some (i + m) else scan (i + 1) in
  Option.map
    (fun start ->
      let stop = ref start in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string (String.sub line start (!stop - start)))
    (scan 0)

let with_trace_file f =
  let path = Filename.temp_file "oppsla_test_trace" ".json" in
  Telemetry.Trace.to_file path;
  let finish () =
    Telemetry.Trace.close ();
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    Sys.remove path;
    List.rev !lines
  in
  match f () with
  | () -> finish ()
  | exception e ->
      ignore (finish ());
      raise e

let span_nesting_and_ordering () =
  let lines =
    with_trace_file (fun () ->
        Telemetry.Trace.span "outer" ~cat:"test" (fun () ->
            Telemetry.Trace.span "inner" ~cat:"test"
              ~args:(fun () -> [ ("k", Telemetry.Trace.Int 3) ])
              (fun () -> ignore (Sys.opaque_identity (ref 0)));
            Telemetry.Trace.instant "mark" ~cat:"test"))
  in
  Alcotest.(check string) "array opened" "[" (List.hd lines);
  Alcotest.(check string) "array closed" "{}]" (List.nth lines (List.length lines - 1));
  let events =
    List.filter (fun l -> String.length l > 2 && l.[0] = '{') lines
  in
  let named name =
    match
      List.find_opt (fun l -> field_string l "name" = Some name) events
    with
    | Some l -> l
    | None -> Alcotest.failf "no %S event in trace" name
  in
  let outer = named "outer" and inner = named "inner" and mark = named "mark" in
  Alcotest.(check (option string)) "complete events" (Some "X")
    (field_string outer "ph");
  Alcotest.(check (option string)) "instant event" (Some "i")
    (field_string mark "ph");
  Alcotest.(check bool) "inner args emitted" true
    (field_float inner "k" = Some 3.);
  (* Completion order: inner finishes (and is emitted) before outer. *)
  let index l = Option.get (List.find_index (( = ) l) events) in
  Alcotest.(check bool) "inner emitted before outer" true
    (index inner < index outer);
  (* Containment on the trace timeline. *)
  let ts l = Option.get (field_float l "ts")
  and dur l = Option.get (field_float l "dur") in
  Alcotest.(check bool) "inner starts inside outer" true
    (ts inner >= ts outer);
  Alcotest.(check bool) "inner ends inside outer" true
    (ts inner +. dur inner <= ts outer +. dur outer +. 1e-6)

let span_reraises_and_still_emits () =
  let lines =
    with_trace_file (fun () ->
        try
          Telemetry.Trace.span "boom" ~cat:"test" (fun () ->
              failwith "expected")
        with Failure _ -> ())
  in
  Alcotest.(check bool) "event emitted despite the raise" true
    (List.exists (fun l -> field_string l "name" = Some "boom") lines)

let null_sink_is_identity () =
  Alcotest.(check bool) "tracing disabled by default" false
    (Telemetry.Trace.enabled ());
  let args_evaluated = ref false in
  let r =
    Telemetry.Trace.span "off"
      ~args:(fun () ->
        args_evaluated := true;
        [])
      (fun () -> 17)
  in
  Alcotest.(check int) "span returns the body's value" 17 r;
  Alcotest.(check bool) "args closure never evaluated when disabled" false
    !args_evaluated;
  Telemetry.Trace.instant "off-instant";
  (* Exceptions pass through untouched on the disabled path. *)
  Alcotest.check_raises "raises pass through" (Failure "x") (fun () ->
      Telemetry.Trace.span "off" (fun () -> failwith "x"))

let without_masks_and_restores () =
  let lines =
    with_trace_file (fun () ->
        Alcotest.(check bool) "enabled inside sink" true
          (Telemetry.Trace.enabled ());
        Telemetry.Trace.without (fun () ->
            Alcotest.(check bool) "masked" false (Telemetry.Trace.enabled ());
            Telemetry.Trace.span "hidden" (fun () -> ()));
        Alcotest.(check bool) "restored" true (Telemetry.Trace.enabled ());
        Telemetry.Trace.span "visible" (fun () -> ()))
  in
  Alcotest.(check bool) "masked span not emitted" false
    (List.exists (fun l -> field_string l "name" = Some "hidden") lines);
  Alcotest.(check bool) "span after restore emitted" true
    (List.exists (fun l -> field_string l "name" = Some "visible") lines)

(* {1 Quantiles} *)

let quantile_empty_is_nan () =
  let h = Telemetry.Metrics.histogram ~buckets:[| 1.; 2. |] (fresh "qempty") in
  Alcotest.(check bool) "empty histogram yields nan" true
    (Float.is_nan (Telemetry.Histogram.quantile h 0.5))

let quantile_rejects_out_of_range () =
  let h = Telemetry.Metrics.histogram ~buckets:[| 1. |] (fresh "qrange") in
  Telemetry.Histogram.observe h 0.5;
  List.iter
    (fun q ->
      try
        ignore (Telemetry.Histogram.quantile h q);
        Alcotest.failf "quantile %g should raise" q
      with Invalid_argument _ -> ())
    [ -0.01; 1.01; Float.nan ]

let quantile_interpolation () =
  (* 10 observations, all in the (2, 4] bucket: the cumulative count
     first reaches q*10 in that bucket for every q, so quantiles
     interpolate linearly across [2, 4]. *)
  let h =
    Telemetry.Metrics.histogram ~buckets:[| 2.; 4.; 8. |] (fresh "qinterp")
  in
  for _ = 1 to 10 do
    Telemetry.Histogram.observe h 3.
  done;
  Alcotest.(check (float 1e-9)) "p50 is the bucket midpoint" 3.
    (Telemetry.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p100 is the bucket's upper bound" 4.
    (Telemetry.Histogram.quantile h 1.);
  (* q = 0 needs the smallest cumulative rank (>= 0), reached already by
     the first bucket with any mass — interpolating to its lower edge. *)
  Alcotest.(check (float 1e-9)) "p0 is the bucket's lower edge" 2.
    (Telemetry.Histogram.quantile h 0.)

let quantile_first_bucket_lower_edge_is_zero () =
  let h = Telemetry.Metrics.histogram ~buckets:[| 10.; 20. |] (fresh "qzero") in
  for _ = 1 to 4 do
    Telemetry.Histogram.observe h 5.
  done;
  (* All mass in the first bucket, lower edge 0: p50 lands mid-bucket. *)
  Alcotest.(check (float 1e-9)) "p50 interpolates from 0" 5.
    (Telemetry.Histogram.quantile h 0.5)

let quantile_single_bucket () =
  (* Degenerate one-bucket histogram: every quantile interpolates
     inside [0, bound] by rank. *)
  let h = Telemetry.Metrics.histogram ~buckets:[| 8. |] (fresh "qsingle") in
  for _ = 1 to 4 do
    Telemetry.Histogram.observe h 1.
  done;
  Alcotest.(check (float 1e-9)) "p100 is the bound" 8.
    (Telemetry.Histogram.quantile h 1.);
  Alcotest.(check (float 1e-9)) "p50 interpolates from 0" 4.
    (Telemetry.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p0 is the lower edge" 0.
    (Telemetry.Histogram.quantile h 0.)

let quantile_all_overflow () =
  (* Every observation past the last bound: the registry kept no exact
     values, so every quantile (including p0) clamps to that bound. *)
  let h = Telemetry.Metrics.histogram ~buckets:[| 1.; 2. |] (fresh "qover") in
  List.iter (Telemetry.Histogram.observe h) [ 10.; 100.; 1000. ];
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%g clamps to the last bound" q)
        2.
        (Telemetry.Histogram.quantile h q))
    [ 0.; 0.5; 0.99; 1. ]

let quantile_overflow_clamps () =
  let h = Telemetry.Metrics.histogram ~buckets:[| 1.; 2. |] (fresh "qclamp") in
  Telemetry.Histogram.observe h 0.5;
  Telemetry.Histogram.observe h 1000.;
  Telemetry.Histogram.observe h 2000.;
  (* Two of three observations overflowed: upper quantiles clamp to the
     last finite bound, since the registry keeps no values past it. *)
  Alcotest.(check (float 1e-9)) "p99 clamps to the last bound" 2.
    (Telemetry.Histogram.quantile h 0.99)

(* {1 Runtime profiler} *)

(* Allocate enough to force minor collections regardless of the heap
   configuration, then force one so the test never races the
   allocator. *)
let churn () =
  let r = ref [] in
  for i = 0 to 200_000 do
    r := (i, float_of_int i) :: !r;
    if i mod 20_000 = 0 then r := []
  done;
  ignore (Sys.opaque_identity !r);
  Gc.minor ()

let profiler_records_pauses () =
  let p = Telemetry.Profiler.start ~interval_s:0.005 () in
  Alcotest.(check bool) "running" true (Telemetry.Profiler.running ());
  (try
     ignore (Telemetry.Profiler.start ());
     Alcotest.fail "second concurrent profiler should raise"
   with Invalid_argument _ -> ());
  churn ();
  Telemetry.Profiler.stop p;
  Telemetry.Profiler.stop p;  (* idempotent *)
  Alcotest.(check bool) "stopped" false (Telemetry.Profiler.running ());
  Alcotest.(check bool) "active_seconds > 0" true
    (Telemetry.Profiler.active_seconds () > 0.);
  let summary = Telemetry.Profiler.summary () in
  Alcotest.(check bool) "saw minor pauses" true
    (List.exists
       (fun s ->
         s.Telemetry.Profiler.kind = "minor"
         && s.Telemetry.Profiler.pauses > 0)
       summary);
  List.iter
    (fun (s : Telemetry.Profiler.gc_stat) ->
      Alcotest.(check bool) "total_s >= 0" true (s.Telemetry.Profiler.total_s >= 0.);
      Alcotest.(check bool) "p50 <= p99" true
        (s.Telemetry.Profiler.p50_s <= s.Telemetry.Profiler.p99_s))
    summary

let profiler_emits_gc_trace_events () =
  let lines =
    with_trace_file (fun () ->
        let p = Telemetry.Profiler.start ~interval_s:0.005 () in
        (* First churn lands before the clock calibration event is
           necessarily consumed; the sleep lets a poll calibrate, so
           the second churn's pauses must reach the trace. *)
        churn ();
        Thread.delay 0.05;
        churn ();
        Telemetry.Profiler.stop p)
  in
  Alcotest.(check bool) "gc.minor events in trace" true
    (List.exists (fun l -> field_string l "name" = Some "gc.minor") lines)

(* {1 Watchdog} *)

let watchdog_snapshot_and_stall () =
  let name = fresh "wd" in
  let wd = Telemetry.Watchdog.loop name in
  Alcotest.(check bool) "same name, same slot" true
    (wd == Telemetry.Watchdog.loop name);
  let find statuses =
    match
      List.find_opt
        (fun (s : Telemetry.Watchdog.status) -> s.Telemetry.Watchdog.name = name)
        statuses
    with
    | Some s -> s
    | None -> Alcotest.failf "slot %s missing from snapshot" name
  in
  let s = find (Telemetry.Watchdog.snapshot ()) in
  Alcotest.(check int) "inactive before enter" 0 s.Telemetry.Watchdog.active;
  Alcotest.(check int) "no beats yet" 0 s.Telemetry.Watchdog.beats;
  Alcotest.(check (option int)) "no image yet" None s.Telemetry.Watchdog.image;
  Telemetry.Watchdog.enter wd;
  Telemetry.Watchdog.beat ~image:7 ~queries:123 wd;
  let beat_us = Telemetry.Clock.now_us () in
  (* Pinning now_us makes idle arithmetic deterministic: 5 simulated
     seconds after the beat the loop is stalled for any threshold < 5. *)
  let later = beat_us +. 5e6 in
  let s = find (Telemetry.Watchdog.snapshot ~now_us:later ()) in
  Alcotest.(check int) "active after enter" 1 s.Telemetry.Watchdog.active;
  Alcotest.(check int) "one beat" 1 s.Telemetry.Watchdog.beats;
  Alcotest.(check (option int)) "image reported" (Some 7)
    s.Telemetry.Watchdog.image;
  Alcotest.(check (option int)) "queries reported" (Some 123)
    s.Telemetry.Watchdog.queries;
  Alcotest.(check (option int)) "iteration still unset" None
    s.Telemetry.Watchdog.iteration;
  Alcotest.(check bool) "idle accounts the simulated gap" true
    (s.Telemetry.Watchdog.idle_s >= 5.0 && s.Telemetry.Watchdog.idle_s < 6.0);
  let stalled_names ~stall_after_s ~now_us =
    List.map
      (fun (s : Telemetry.Watchdog.status) -> s.Telemetry.Watchdog.name)
      (Telemetry.Watchdog.stalled ~now_us ~stall_after_s ())
  in
  Alcotest.(check bool) "stalled past the threshold" true
    (List.mem name (stalled_names ~stall_after_s:4. ~now_us:later));
  Alcotest.(check bool) "not stalled within the threshold" false
    (List.mem name (stalled_names ~stall_after_s:6. ~now_us:later));
  Telemetry.Watchdog.beat wd;
  Alcotest.(check bool) "a beat clears the stall" false
    (List.mem name
       (stalled_names ~stall_after_s:4.
          ~now_us:(Telemetry.Clock.now_us () +. 1.)));
  Telemetry.Watchdog.leave wd;
  Alcotest.(check bool) "inactive loops never stall" false
    (List.mem name (stalled_names ~stall_after_s:0. ~now_us:(later +. 1e9)))

let watchdog_with_loop_is_exception_safe () =
  let name = fresh "wd_exn" in
  let wd = Telemetry.Watchdog.loop name in
  (try Telemetry.Watchdog.with_loop wd (fun () -> failwith "boom")
   with Failure _ -> ());
  let status =
    List.find
      (fun (s : Telemetry.Watchdog.status) -> s.Telemetry.Watchdog.name = name)
      (Telemetry.Watchdog.snapshot ())
  in
  Alcotest.(check int) "leave ran despite the raise" 0
    status.Telemetry.Watchdog.active

(* {1 Sampler} *)

let sampler_ticks_and_snapshots () =
  let path = Filename.temp_file "oppsla_test_sampler" ".jsonl" in
  let before =
    Telemetry.Counter.get (Telemetry.Metrics.counter "sampler.samples")
  in
  let s =
    Telemetry.Sampler.start
      {
        Telemetry.Sampler.interval_s = 0.01;
        snapshot_path = Some path;
        stall_after_s = 60.;
        abort_on_stall = false;
      }
  in
  Telemetry.Sampler.sample_now s;
  Telemetry.Sampler.stop s;
  Telemetry.Sampler.stop s (* idempotent *);
  let after =
    Telemetry.Counter.get (Telemetry.Metrics.counter "sampler.samples")
  in
  (* start takes an immediate tick, sample_now another, stop a final
     one: at least three. *)
  Alcotest.(check bool) "at least three ticks" true (after - before >= 3);
  Alcotest.(check bool) "uptime gauge set" true
    (Telemetry.Gauge.get (Telemetry.Metrics.gauge "process.uptime_seconds")
    > 0.);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check bool) "one JSONL snapshot per tick" true
    (List.length !lines >= 3);
  List.iter
    (fun l ->
      Alcotest.(check bool) "snapshot line carries the registry" true
        (String.length l > 2
        && l.[0] = '{'
        && l.[String.length l - 1] = '}'))
    !lines

(* {1 Obs flag parsing} *)

let obs_flag_parsing () =
  let args = [ "--trace"; "t.json"; "--metrics=m.json"; "positional" ] in
  Alcotest.(check (option string)) "space-separated spelling"
    (Some "t.json")
    (Telemetry.Obs.find_flag args ~flag:"--trace");
  Alcotest.(check (option string)) "equals spelling" (Some "m.json")
    (Telemetry.Obs.find_flag args ~flag:"--metrics");
  Alcotest.(check (option string)) "absent flag" None
    (Telemetry.Obs.find_flag args ~flag:"--snapshot");
  Alcotest.(check (list string)) "strip removes both spellings"
    [ "positional" ]
    (Telemetry.Obs.strip_flags args ~flags:[ "--trace"; "--metrics" ]);
  Alcotest.(check (list string)) "strip leaves unrelated flags" args
    (Telemetry.Obs.strip_flags args ~flags:[ "--snapshot" ])

(* {1 Properties} *)

(* Whatever is observed, bucket counts (including overflow) always sum to
   the total observation count, and the sum telemetry matches a direct
   fold over the observations. *)
let qcheck_histogram_conservation =
  QCheck.Test.make ~name:"histogram buckets sum to observation count"
    ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 5) (float_range 0.1 10.))
        (small_list (float_range (-100.) 100.)))
    (fun (bounds, values) ->
      let bounds = List.sort_uniq compare bounds in
      let h =
        Telemetry.Metrics.histogram
          ~buckets:(Array.of_list bounds)
          (fresh "prop")
      in
      List.iter (Telemetry.Histogram.observe h) values;
      let s = Telemetry.Histogram.snapshot h in
      let bucket_total =
        Array.fold_left ( + ) s.Telemetry.Histogram.overflow
          s.Telemetry.Histogram.counts
      in
      s.Telemetry.Histogram.count = List.length values
      && bucket_total = s.Telemetry.Histogram.count
      && s.Telemetry.Histogram.sum = List.fold_left ( +. ) 0. values)

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick counter_semantics;
    Alcotest.test_case "gauge semantics" `Quick gauge_semantics;
    Alcotest.test_case "kind clash rejected" `Quick kind_clash_rejected;
    Alcotest.test_case "histogram semantics" `Quick histogram_semantics;
    Alcotest.test_case "histogram validates buckets" `Quick
      histogram_rejects_bad_buckets;
    Alcotest.test_case "dump_json" `Quick dump_json_contains_registered;
    Alcotest.test_case "concurrent bumps (4 domains)" `Quick concurrent_bumps;
    Alcotest.test_case "span nesting and ordering" `Quick
      span_nesting_and_ordering;
    Alcotest.test_case "span re-raises and still emits" `Quick
      span_reraises_and_still_emits;
    Alcotest.test_case "null sink is identity" `Quick null_sink_is_identity;
    Alcotest.test_case "without masks and restores" `Quick
      without_masks_and_restores;
    Alcotest.test_case "quantile of empty histogram" `Quick
      quantile_empty_is_nan;
    Alcotest.test_case "quantile rejects out-of-range q" `Quick
      quantile_rejects_out_of_range;
    Alcotest.test_case "quantile interpolation" `Quick quantile_interpolation;
    Alcotest.test_case "quantile first-bucket lower edge" `Quick
      quantile_first_bucket_lower_edge_is_zero;
    Alcotest.test_case "quantile clamps past the last bound" `Quick
      quantile_overflow_clamps;
    Alcotest.test_case "quantile of single-bucket histogram" `Quick
      quantile_single_bucket;
    Alcotest.test_case "quantile with all observations overflowed" `Quick
      quantile_all_overflow;
    Alcotest.test_case "profiler records GC pauses" `Quick
      profiler_records_pauses;
    Alcotest.test_case "profiler emits GC trace events" `Quick
      profiler_emits_gc_trace_events;
    Alcotest.test_case "watchdog snapshot and stall" `Quick
      watchdog_snapshot_and_stall;
    Alcotest.test_case "watchdog with_loop is exception-safe" `Quick
      watchdog_with_loop_is_exception_safe;
    Alcotest.test_case "sampler ticks and snapshots" `Quick
      sampler_ticks_and_snapshots;
    Alcotest.test_case "obs flag parsing" `Quick obs_flag_parsing;
    QCheck_alcotest.to_alcotest qcheck_histogram_conservation;
  ]

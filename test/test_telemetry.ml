(* Tests for the telemetry subsystem: registry semantics, domain-safety
   of the metric primitives, trace emission, and the null-sink identity
   that lets instrumentation live on hot paths.

   The registry is process-global, so every metric here uses a fresh
   "test.*" name — tests must not collide with the production metrics
   (oracle.*, cache.*, ...) that other suites bump as a side effect. *)

let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "test.%s.%d" prefix !n

(* {1 Registry} *)

let counter_semantics () =
  let name = fresh "counter" in
  let c = Telemetry.Metrics.counter name in
  Alcotest.(check int) "starts at 0" 0 (Telemetry.Counter.get c);
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Telemetry.Counter.get c);
  let c' = Telemetry.Metrics.counter name in
  Telemetry.Counter.incr c';
  Alcotest.(check int) "same name, same counter" 43 (Telemetry.Counter.get c);
  Telemetry.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Telemetry.Counter.get c)

let gauge_semantics () =
  let g = Telemetry.Metrics.gauge (fresh "gauge") in
  Alcotest.(check (float 0.)) "starts at 0" 0. (Telemetry.Gauge.get g);
  Telemetry.Gauge.set g 2.5;
  Alcotest.(check (float 0.)) "set" 2.5 (Telemetry.Gauge.get g)

let kind_clash_rejected () =
  let name = fresh "clash" in
  ignore (Telemetry.Metrics.counter name);
  (try
     ignore (Telemetry.Metrics.histogram name);
     Alcotest.fail "histogram under a counter's name should raise"
   with Invalid_argument _ -> ());
  try
    ignore (Telemetry.Metrics.gauge name);
    Alcotest.fail "gauge under a counter's name should raise"
  with Invalid_argument _ -> ()

let histogram_semantics () =
  let h =
    Telemetry.Metrics.histogram ~buckets:[| 1.; 2.; 4. |] (fresh "hist")
  in
  List.iter (Telemetry.Histogram.observe h) [ 0.5; 1.; 1.5; 3.; 100. ];
  let s = Telemetry.Histogram.snapshot h in
  (* Bucket semantics are "le": v <= upper lands in the first matching
     bucket, anything past the last bound overflows. *)
  Alcotest.(check (array (float 0.))) "bounds" [| 1.; 2.; 4. |]
    s.Telemetry.Histogram.uppers;
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1 |]
    s.Telemetry.Histogram.counts;
  Alcotest.(check int) "overflow" 1 s.Telemetry.Histogram.overflow;
  Alcotest.(check int) "total count" 5 s.Telemetry.Histogram.count;
  Alcotest.(check (float 1e-9)) "sum" 106. s.Telemetry.Histogram.sum;
  Telemetry.Histogram.reset h;
  let s = Telemetry.Histogram.snapshot h in
  Alcotest.(check int) "reset count" 0 s.Telemetry.Histogram.count;
  Alcotest.(check int) "reset overflow" 0 s.Telemetry.Histogram.overflow

let histogram_rejects_bad_buckets () =
  (try
     ignore (Telemetry.Metrics.histogram ~buckets:[||] (fresh "bad"));
     Alcotest.fail "empty bucket array should raise"
   with Invalid_argument _ -> ());
  try
    ignore (Telemetry.Metrics.histogram ~buckets:[| 2.; 1. |] (fresh "bad"));
    Alcotest.fail "non-ascending bounds should raise"
  with Invalid_argument _ -> ()

let dump_json_contains_registered () =
  let cname = fresh "json_counter" in
  let c = Telemetry.Metrics.counter cname in
  Telemetry.Counter.add c 7;
  let hname = fresh "json_hist" in
  let h = Telemetry.Metrics.histogram ~buckets:[| 1.; 2. |] hname in
  Telemetry.Histogram.observe h 1.5;
  let json = Telemetry.Metrics.dump_json () in
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec scan i =
      i + m <= n && (String.sub json i m = sub || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "counter dumped" true
    (contains (Printf.sprintf "%S: 7" cname));
  Alcotest.(check bool) "histogram dumped" true
    (contains (Printf.sprintf "%S: {\"count\": 1" hname));
  Alcotest.(check bool) "bucket bound dumped" true
    (contains "{\"le\": 1, \"count\": 0}")

(* {1 Domain-safety} *)

(* 4 domains hammer one counter and one histogram concurrently; every
   increment must survive (atomicity), and the histogram's buckets must
   account for every observation. *)
let concurrent_bumps () =
  let c = Telemetry.Metrics.counter (fresh "conc_counter") in
  let h =
    Telemetry.Metrics.histogram ~buckets:[| 1.; 2.; 4.; 8. |]
      (fresh "conc_hist")
  in
  let per_domain = 10_000 and domains = 4 in
  let worker d =
    Domain.spawn (fun () ->
        for i = 0 to per_domain - 1 do
          Telemetry.Counter.incr c;
          Telemetry.Histogram.observe h (float_of_int ((i + d) mod 10))
        done)
  in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost counter increments" (domains * per_domain)
    (Telemetry.Counter.get c);
  let s = Telemetry.Histogram.snapshot h in
  Alcotest.(check int) "no lost observations" (domains * per_domain)
    s.Telemetry.Histogram.count;
  Alcotest.(check int) "buckets account for every observation"
    s.Telemetry.Histogram.count
    (Array.fold_left ( + ) s.Telemetry.Histogram.overflow
       s.Telemetry.Histogram.counts)

(* {1 Tracing} *)

(* Minimal field extraction for the emitted JSONL — enough to check
   names, timestamps and durations without a JSON parser. *)
let field_string line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  let n = String.length line and m = String.length pat in
  let rec scan i = if i + m > n then None else if String.sub line i m = pat then Some (i + m) else scan (i + 1) in
  Option.map
    (fun start ->
      let stop = String.index_from line start '"' in
      String.sub line start (stop - start))
    (scan 0)

let field_float line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let n = String.length line and m = String.length pat in
  let rec scan i = if i + m > n then None else if String.sub line i m = pat then Some (i + m) else scan (i + 1) in
  Option.map
    (fun start ->
      let stop = ref start in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string (String.sub line start (!stop - start)))
    (scan 0)

let with_trace_file f =
  let path = Filename.temp_file "oppsla_test_trace" ".json" in
  Telemetry.Trace.to_file path;
  let finish () =
    Telemetry.Trace.close ();
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    Sys.remove path;
    List.rev !lines
  in
  match f () with
  | () -> finish ()
  | exception e ->
      ignore (finish ());
      raise e

let span_nesting_and_ordering () =
  let lines =
    with_trace_file (fun () ->
        Telemetry.Trace.span "outer" ~cat:"test" (fun () ->
            Telemetry.Trace.span "inner" ~cat:"test"
              ~args:(fun () -> [ ("k", Telemetry.Trace.Int 3) ])
              (fun () -> ignore (Sys.opaque_identity (ref 0)));
            Telemetry.Trace.instant "mark" ~cat:"test"))
  in
  Alcotest.(check string) "array opened" "[" (List.hd lines);
  Alcotest.(check string) "array closed" "{}]" (List.nth lines (List.length lines - 1));
  let events =
    List.filter (fun l -> String.length l > 2 && l.[0] = '{') lines
  in
  let named name =
    match
      List.find_opt (fun l -> field_string l "name" = Some name) events
    with
    | Some l -> l
    | None -> Alcotest.failf "no %S event in trace" name
  in
  let outer = named "outer" and inner = named "inner" and mark = named "mark" in
  Alcotest.(check (option string)) "complete events" (Some "X")
    (field_string outer "ph");
  Alcotest.(check (option string)) "instant event" (Some "i")
    (field_string mark "ph");
  Alcotest.(check bool) "inner args emitted" true
    (field_float inner "k" = Some 3.);
  (* Completion order: inner finishes (and is emitted) before outer. *)
  let index l = Option.get (List.find_index (( = ) l) events) in
  Alcotest.(check bool) "inner emitted before outer" true
    (index inner < index outer);
  (* Containment on the trace timeline. *)
  let ts l = Option.get (field_float l "ts")
  and dur l = Option.get (field_float l "dur") in
  Alcotest.(check bool) "inner starts inside outer" true
    (ts inner >= ts outer);
  Alcotest.(check bool) "inner ends inside outer" true
    (ts inner +. dur inner <= ts outer +. dur outer +. 1e-6)

let span_reraises_and_still_emits () =
  let lines =
    with_trace_file (fun () ->
        try
          Telemetry.Trace.span "boom" ~cat:"test" (fun () ->
              failwith "expected")
        with Failure _ -> ())
  in
  Alcotest.(check bool) "event emitted despite the raise" true
    (List.exists (fun l -> field_string l "name" = Some "boom") lines)

let null_sink_is_identity () =
  Alcotest.(check bool) "tracing disabled by default" false
    (Telemetry.Trace.enabled ());
  let args_evaluated = ref false in
  let r =
    Telemetry.Trace.span "off"
      ~args:(fun () ->
        args_evaluated := true;
        [])
      (fun () -> 17)
  in
  Alcotest.(check int) "span returns the body's value" 17 r;
  Alcotest.(check bool) "args closure never evaluated when disabled" false
    !args_evaluated;
  Telemetry.Trace.instant "off-instant";
  (* Exceptions pass through untouched on the disabled path. *)
  Alcotest.check_raises "raises pass through" (Failure "x") (fun () ->
      Telemetry.Trace.span "off" (fun () -> failwith "x"))

let without_masks_and_restores () =
  let lines =
    with_trace_file (fun () ->
        Alcotest.(check bool) "enabled inside sink" true
          (Telemetry.Trace.enabled ());
        Telemetry.Trace.without (fun () ->
            Alcotest.(check bool) "masked" false (Telemetry.Trace.enabled ());
            Telemetry.Trace.span "hidden" (fun () -> ()));
        Alcotest.(check bool) "restored" true (Telemetry.Trace.enabled ());
        Telemetry.Trace.span "visible" (fun () -> ()))
  in
  Alcotest.(check bool) "masked span not emitted" false
    (List.exists (fun l -> field_string l "name" = Some "hidden") lines);
  Alcotest.(check bool) "span after restore emitted" true
    (List.exists (fun l -> field_string l "name" = Some "visible") lines)

(* {1 Properties} *)

(* Whatever is observed, bucket counts (including overflow) always sum to
   the total observation count, and the sum telemetry matches a direct
   fold over the observations. *)
let qcheck_histogram_conservation =
  QCheck.Test.make ~name:"histogram buckets sum to observation count"
    ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 5) (float_range 0.1 10.))
        (small_list (float_range (-100.) 100.)))
    (fun (bounds, values) ->
      let bounds = List.sort_uniq compare bounds in
      let h =
        Telemetry.Metrics.histogram
          ~buckets:(Array.of_list bounds)
          (fresh "prop")
      in
      List.iter (Telemetry.Histogram.observe h) values;
      let s = Telemetry.Histogram.snapshot h in
      let bucket_total =
        Array.fold_left ( + ) s.Telemetry.Histogram.overflow
          s.Telemetry.Histogram.counts
      in
      s.Telemetry.Histogram.count = List.length values
      && bucket_total = s.Telemetry.Histogram.count
      && s.Telemetry.Histogram.sum = List.fold_left ( +. ) 0. values)

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick counter_semantics;
    Alcotest.test_case "gauge semantics" `Quick gauge_semantics;
    Alcotest.test_case "kind clash rejected" `Quick kind_clash_rejected;
    Alcotest.test_case "histogram semantics" `Quick histogram_semantics;
    Alcotest.test_case "histogram validates buckets" `Quick
      histogram_rejects_bad_buckets;
    Alcotest.test_case "dump_json" `Quick dump_json_contains_registered;
    Alcotest.test_case "concurrent bumps (4 domains)" `Quick concurrent_bumps;
    Alcotest.test_case "span nesting and ordering" `Quick
      span_nesting_and_ordering;
    Alcotest.test_case "span re-raises and still emits" `Quick
      span_reraises_and_still_emits;
    Alcotest.test_case "null sink is identity" `Quick null_sink_is_identity;
    Alcotest.test_case "without masks and restores" `Quick
      without_masks_and_restores;
    QCheck_alcotest.to_alcotest qcheck_histogram_conservation;
  ]

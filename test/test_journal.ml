(* Tests for the query-provenance journal and its offline auditor:
   the record round-trip property (parse after render is the
   identity), FNV-1a checksum golden values and tamper detection,
   file framing (header/footer/atomic finalize), the domain-local
   charge-site context, and journal comparison semantics.

   The journal sink is process-global, so every test that opens one
   closes it before returning (Fun.protect) — no other suite in this
   binary journals. *)

module J = Telemetry.Journal
module A = Evalharness.Audit

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* {1 FNV-1a goldens}

   Published FNV-1a 64-bit test vectors, so the checksum the records
   carry is the real FNV-1a and not a lookalike. *)

let fnv_goldens () =
  let check input expected =
    Alcotest.(check string) (String.escaped input) expected (J.fnv64_hex input)
  in
  check "" "cbf29ce484222325";
  check "a" "af63dc4c8601ec8c";
  check "foobar" "85944171f73967e8"

(* {1 Record round-trip}

   parse_record (render_record r) = r for arbitrary field contents.
   Strings draw from printable ASCII plus the escaped trio (quote,
   backslash, newline): control characters below 0x20 render as
   [\u00xx], which the auditor's dependency-free parser decodes to a
   ['?'] marker rather than carrying a UTF-8 table — fine for an
   audit, not an identity. *)

let gen_field_char =
  QCheck.Gen.frequency
    [
      (12, QCheck.Gen.map Char.chr (QCheck.Gen.int_range 32 126));
      (1, QCheck.Gen.oneofl [ '"'; '\\'; '\n' ]);
    ]

let gen_field = QCheck.Gen.string_size ~gen:gen_field_char (QCheck.Gen.int_range 0 24)

let gen_record =
  QCheck.Gen.(
    gen_field >>= fun site ->
    gen_field >>= fun key ->
    gen_field >>= fun kind ->
    gen_field >>= fun mode ->
    gen_field >>= fun backend ->
    int_range 0 100_000 >>= fun seq ->
    int_range (-1) 5_000 >>= fun image ->
    int_range (-1) 64 >>= fun chunk ->
    bool >>= fun hit ->
    return
      { A.seq; site; image; key; kind; mode; hit; chunk; backend })

let print_record (r : A.record) =
  Printf.sprintf
    "{seq=%d; site=%S; image=%d; key=%S; kind=%S; mode=%S; hit=%b; chunk=%d; \
     backend=%S}"
    r.A.seq r.A.site r.A.image r.A.key r.A.kind r.A.mode r.A.hit r.A.chunk
    r.A.backend

let render (r : A.record) =
  J.render_record ~seq:r.A.seq ~site:r.A.site ~image:r.A.image ~key:r.A.key
    ~kind:r.A.kind ~mode:r.A.mode ~hit:r.A.hit ~chunk:r.A.chunk
    ~backend:r.A.backend

let qcheck_round_trip =
  QCheck.Test.make ~name:"parse_record (render_record r) = r" ~count:300
    (QCheck.make ~print:print_record gen_record)
    (fun r ->
      let line = render r in
      A.verify_checksum line && A.parse_record line = r)

(* {1 Checksum tamper detection}

   Substituting any single character of the checksummed prefix must be
   caught: each FNV-1a step [h <- (h lxor c) * prime] is a bijection
   for fixed [c] (odd multiplier, xor), so a one-character change
   always reaches a different final hash — no lucky collisions for the
   property to trip over. *)

let qcheck_tamper_detected =
  QCheck.Test.make ~name:"one-byte tamper breaks the checksum" ~count:300
    QCheck.(
      pair (QCheck.make ~print:print_record gen_record) (int_range 0 10_000))
    (fun (r, pos_seed) ->
      let line = render r in
      (* Only the prefix before the fnv field (the last one) is
         checksummed; tampering anywhere in it must be detected. *)
      let limit =
        let marker = {|, "fnv": "|} in
        let rec find i =
          if i < 0 then
            QCheck.Test.fail_report "no fnv marker in rendered record"
          else if
            i + String.length marker <= String.length line
            && String.sub line i (String.length marker) = marker
          then i
          else find (i - 1)
        in
        find (String.length line - String.length marker)
      in
      let pos = pos_seed mod limit in
      let c = line.[pos] in
      let c' = if c = 'x' then 'y' else 'x' in
      let tampered = Bytes.of_string line in
      Bytes.set tampered pos c';
      let tampered = Bytes.to_string tampered in
      (not (A.verify_checksum tampered))
      &&
      match A.parse_record tampered with
      | _ -> false
      | exception A.Invalid _ -> true)

(* {1 File framing} *)

let with_temp_journal records f =
  let path = Filename.temp_file "oppsla_test_journal" ".jsonl" in
  J.set_run_id "test-journal";
  J.to_file path;
  Fun.protect ~finally:J.close (fun () ->
      List.iter
        (fun (site, image, key, kind, mode, hit, backend) ->
          J.with_site site (fun () ->
              J.with_image image (fun () ->
                  J.record ~key ~kind ~mode ~hit ~backend ())))
        records);
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let sample_records =
  [
    ("sketch", 0, "pixel:1,2,3", "pixel", "score", false, "boxed");
    ("sketch", 0, "pixel:4,5,6", "pixel", "score", true, "boxed");
    ("islands/2", 1, "patch:0,0", "patch", "decision", false, "f32");
  ]

let file_round_trip () =
  with_temp_journal sample_records (fun path ->
      let j = A.load_strict path in
      Alcotest.(check string) "run id" "test-journal" j.A.run_id;
      Alcotest.(check int) "version" 1 j.A.version;
      Alcotest.(check bool) "complete" true j.A.complete;
      Alcotest.(check int) "record count" (List.length sample_records)
        (List.length j.A.records);
      List.iteri
        (fun i ((site, image, key, kind, mode, hit, backend), r) ->
          Alcotest.(check int) "seq is file order" i r.A.seq;
          Alcotest.(check string) "site" site r.A.site;
          Alcotest.(check int) "image" image r.A.image;
          Alcotest.(check string) "key" key r.A.key;
          Alcotest.(check string) "kind" kind r.A.kind;
          Alcotest.(check string) "mode" mode r.A.mode;
          Alcotest.(check bool) "hit" hit r.A.hit;
          Alcotest.(check string) "backend" backend r.A.backend)
        (List.combine sample_records j.A.records);
      (* Atomic finalize: no .tmp file survives a clean close. *)
      Alcotest.(check bool) "tmp gone" false (Sys.file_exists (path ^ ".tmp")))

let truncated_footer () =
  with_temp_journal sample_records (fun path ->
      let s = read_file path in
      let lines = String.split_on_char '\n' s in
      let without_footer =
        lines
        |> List.filter (fun l -> not (contains_sub ~sub:"journal_end" l))
        |> String.concat "\n"
      in
      write_file path without_footer;
      let j = A.load path in
      Alcotest.(check bool) "truncated journal loads as incomplete" false
        j.A.complete;
      Alcotest.(check int) "records still readable"
        (List.length sample_records)
        (List.length j.A.records);
      match A.load_strict path with
      | _ -> Alcotest.fail "load_strict accepted a footerless journal"
      | exception A.Invalid _ -> ())

let tampered_file_rejected () =
  with_temp_journal sample_records (fun path ->
      let s = read_file path in
      (* Corrupt one byte inside the first record's key field. *)
      let i =
        match String.index_opt s '\n' with
        | Some nl -> (
            let marker = {|"key": "|} in
            let rec find j =
              if j + String.length marker > String.length s then
                Alcotest.fail "no key field found"
              else if String.sub s j (String.length marker) = marker then
                j + String.length marker
              else find (j + 1)
            in
            find nl)
        | None -> Alcotest.fail "journal has no header line"
      in
      let b = Bytes.of_string s in
      Bytes.set b i (if Bytes.get b i = 'Z' then 'Q' else 'Z');
      write_file path (Bytes.to_string b);
      match A.load path with
      | _ -> Alcotest.fail "auditor accepted a tampered record"
      | exception A.Invalid msg ->
          Alcotest.(check bool) "error names the checksum" true
            (contains_sub ~sub:"checksum" msg))

(* {1 Charge-site context} *)

let site_context () =
  Alcotest.(check string) "default is unattributed" "unattributed" (J.site ());
  J.with_site "outer" (fun () ->
      Alcotest.(check string) "with_site sets" "outer" (J.site ());
      J.with_default_site "inner" (fun () ->
          Alcotest.(check string) "default does not override" "outer"
            (J.site ()));
      J.with_site "forced" (fun () ->
          Alcotest.(check string) "with_site overrides" "forced" (J.site ())));
  J.with_default_site "fallback" (fun () ->
      Alcotest.(check string) "default fills unattributed" "fallback"
        (J.site ()));
  Alcotest.(check string) "context restored" "unattributed" (J.site ());
  Alcotest.(check int) "image default" (-1) (J.image ());
  J.with_image 9 (fun () ->
      Alcotest.(check int) "with_image sets" 9 (J.image ()));
  Alcotest.(check int) "image restored" (-1) (J.image ())

(* {1 Comparison semantics} *)

let journal_of records =
  {
    A.path = "<mem>";
    run_id = "t";
    version = 1;
    records;
    complete = true;
  }

let rec_ ~seq ~image ~key ?(hit = false) ?(backend = "boxed") () =
  {
    A.seq;
    site = "s";
    image;
    key;
    kind = "pixel";
    mode = "score";
    hit;
    chunk = -1;
    backend;
  }

let comparison_ignores_metadata () =
  (* Same per-image charge identities; different seq interleaving, hit
     flags and backends — the auditor must call them identical. *)
  let left =
    journal_of
      [
        rec_ ~seq:0 ~image:0 ~key:"a" ();
        rec_ ~seq:1 ~image:1 ~key:"b" ();
        rec_ ~seq:2 ~image:0 ~key:"c" ();
      ]
  in
  let right =
    journal_of
      [
        rec_ ~seq:0 ~image:1 ~key:"b" ~hit:true ~backend:"f32" ();
        rec_ ~seq:1 ~image:0 ~key:"a" ~backend:"f32" ();
        rec_ ~seq:2 ~image:0 ~key:"c" ~hit:true ~backend:"f32" ();
      ]
  in
  let c = A.compare_journals left right in
  Alcotest.(check bool) "identical" true (A.identical c);
  Alcotest.(check int) "images" 2 c.A.images

let comparison_catches_divergence () =
  let left =
    journal_of [ rec_ ~seq:0 ~image:0 ~key:"a" (); rec_ ~seq:1 ~image:0 ~key:"b" () ]
  in
  let right =
    journal_of [ rec_ ~seq:0 ~image:0 ~key:"a" (); rec_ ~seq:1 ~image:0 ~key:"X" () ]
  in
  let c = A.compare_journals left right in
  Alcotest.(check bool) "not identical" false (A.identical c);
  (match c.A.mismatches with
  | [ m ] ->
      Alcotest.(check int) "image" 0 m.A.m_image;
      Alcotest.(check int) "index" 1 m.A.m_index
  | ms -> Alcotest.fail (Printf.sprintf "%d mismatches" (List.length ms)));
  (* A missing trailing record is also a mismatch, not a silent pass. *)
  let short = journal_of [ rec_ ~seq:0 ~image:0 ~key:"a" () ] in
  let c = A.compare_journals left short in
  Alcotest.(check bool) "shorter right diverges" false (A.identical c)

let suite =
  [
    Alcotest.test_case "fnv-1a goldens" `Quick fnv_goldens;
    QCheck_alcotest.to_alcotest qcheck_round_trip;
    QCheck_alcotest.to_alcotest qcheck_tamper_detected;
    Alcotest.test_case "file round-trip" `Quick file_round_trip;
    Alcotest.test_case "truncated footer" `Quick truncated_footer;
    Alcotest.test_case "tampered file rejected" `Quick tampered_file_rejected;
    Alcotest.test_case "charge-site context" `Quick site_context;
    Alcotest.test_case "comparison ignores metadata" `Quick
      comparison_ignores_metadata;
    Alcotest.test_case "comparison catches divergence" `Quick
      comparison_catches_divergence;
  ]

(* Tests for the sketch's indexed pair queue, including a model-based
   property test against a naive list implementation. *)

module Location = Oppsla.Location
module Pair = Oppsla.Pair
module Pair_queue = Oppsla.Pair_queue
module Rgb = Oppsla.Rgb

let mk row col corner = Pair.make ~loc:(Location.make ~row ~col) ~corner

let init_and_order () =
  let order = [ mk 0 0 0; mk 1 1 3; mk 0 1 7 ] in
  let q = Pair_queue.init ~d1:2 ~d2:2 order in
  Alcotest.(check int) "length" 3 (Pair_queue.length q);
  Alcotest.(check bool) "front" true
    (match Pair_queue.pop q with
    | Some p -> Pair.equal p (mk 0 0 0)
    | None -> false);
  Alcotest.(check bool) "second" true
    (match Pair_queue.pop q with
    | Some p -> Pair.equal p (mk 1 1 3)
    | None -> false);
  Alcotest.(check int) "remaining" 1 (Pair_queue.length q)

let init_rejects_duplicates () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pair_queue.init ~d1:2 ~d2:2 [ mk 0 0 0; mk 0 0 0 ]);
       false
     with Invalid_argument _ -> true)

let init_rejects_out_of_bounds () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pair_queue.init ~d1:2 ~d2:2 [ mk 5 0 0 ]);
       false
     with Invalid_argument _ -> true)

let pop_empty () =
  let q = Pair_queue.init ~d1:2 ~d2:2 [] in
  Alcotest.(check bool) "None" true (Pair_queue.pop q = None);
  Alcotest.(check bool) "is_empty" true (Pair_queue.is_empty q)

let push_back_moves_to_tail () =
  let q = Pair_queue.init ~d1:2 ~d2:2 [ mk 0 0 0; mk 0 1 1; mk 1 0 2 ] in
  Pair_queue.push_back q (mk 0 0 0);
  let contents = Pair_queue.to_list q in
  Alcotest.(check bool) "moved to tail" true
    (Pair.equal (List.nth contents 2) (mk 0 0 0));
  Alcotest.(check int) "length unchanged" 3 (Pair_queue.length q)

let push_back_absent_raises () =
  let q = Pair_queue.init ~d1:2 ~d2:2 [ mk 0 0 0 ] in
  Alcotest.(check bool) "raises" true
    (try
       Pair_queue.push_back q (mk 1 1 1);
       false
     with Invalid_argument _ -> true)

let remove_and_mem () =
  let q = Pair_queue.init ~d1:2 ~d2:2 [ mk 0 0 0; mk 0 1 1 ] in
  Alcotest.(check bool) "mem before" true (Pair_queue.mem q (mk 0 1 1));
  Pair_queue.remove q (mk 0 1 1);
  Alcotest.(check bool) "mem after" false (Pair_queue.mem q (mk 0 1 1));
  Alcotest.(check int) "length" 1 (Pair_queue.length q);
  Alcotest.(check bool) "double remove raises" true
    (try
       Pair_queue.remove q (mk 0 1 1);
       false
     with Invalid_argument _ -> true)

let first_with_location_order () =
  let q =
    Pair_queue.init ~d1:2 ~d2:2 [ mk 0 0 5; mk 0 1 1; mk 0 0 2; mk 0 0 7 ]
  in
  (* Front-most pair at (0,0) is corner 5. *)
  Alcotest.(check bool) "corner 5 first" true
    (match Pair_queue.first_with_location q (Location.make ~row:0 ~col:0) with
    | Some p -> Pair.equal p (mk 0 0 5)
    | None -> false);
  (* After pushing it to the back, corner 2 becomes front-most. *)
  Pair_queue.push_back q (mk 0 0 5);
  Alcotest.(check bool) "corner 2 after reorder" true
    (match Pair_queue.first_with_location q (Location.make ~row:0 ~col:0) with
    | Some p -> Pair.equal p (mk 0 0 2)
    | None -> false);
  Alcotest.(check bool) "no member at (1,1)" true
    (Pair_queue.first_with_location q (Location.make ~row:1 ~col:1) = None)

(* full_space structure *)

let full_space_complete () =
  let image = Tensor.rand_uniform (Prng.of_int 4) [| 3; 4; 4 |] in
  let q = Pair_queue.full_space ~d1:4 ~d2:4 ~image in
  Alcotest.(check int) "all pairs" (8 * 16) (Pair_queue.length q);
  let contents = Pair_queue.to_list q in
  let ids = List.map (Pair.id ~d2:4) contents in
  Alcotest.(check int) "distinct" (8 * 16)
    (List.length (List.sort_uniq compare ids))

let full_space_block_structure () =
  (* Block k (of d1*d2 pairs) holds each location's k-th farthest corner;
     blocks are ordered farthest first. *)
  let image = Tensor.rand_uniform (Prng.of_int 5) [| 3; 3; 3 |] in
  let q = Pair_queue.full_space ~d1:3 ~d2:3 ~image in
  let contents = Array.of_list (Pair_queue.to_list q) in
  Array.iteri
    (fun i (p : Pair.t) ->
      let k = i / 9 in
      let orig =
        Rgb.of_image image ~row:p.Pair.loc.Location.row
          ~col:p.Pair.loc.Location.col
      in
      let expected_corner = (Rgb.corners_by_distance orig).(k) in
      Alcotest.(check int)
        (Printf.sprintf "position %d has rank-%d corner" i k)
        expected_corner p.Pair.corner)
    contents

let full_space_center_first () =
  (* Within the first block, locations are ordered center-out. *)
  let image = Tensor.rand_uniform (Prng.of_int 6) [| 3; 5; 5 |] in
  let q = Pair_queue.full_space ~d1:5 ~d2:5 ~image in
  match Pair_queue.to_list q with
  | first :: _ ->
      Alcotest.(check bool) "center location first" true
        (Location.equal first.Pair.loc (Location.make ~row:2 ~col:2))
  | [] -> Alcotest.fail "empty queue"

(* Model-based property test: a random sequence of operations behaves
   like a reference list implementation. *)

type op = Pop | Push_back of int | Remove of int | First_with_loc of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Pop);
        (3, map (fun i -> Push_back i) (int_bound 31));
        (2, map (fun i -> Remove i) (int_bound 31));
        (2, map (fun i -> First_with_loc i) (int_bound 3));
      ])

let op_print = function
  | Pop -> "Pop"
  | Push_back i -> Printf.sprintf "Push_back %d" i
  | Remove i -> Printf.sprintf "Remove %d" i
  | First_with_loc i -> Printf.sprintf "First_with_loc %d" i

let arbitrary_ops =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map op_print l))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

(* d1 = d2 = 2: ids 0..31; locations 0..3. *)
let model_agrees ops =
  let d2 = 2 in
  let all = List.init 32 (fun id -> Pair.of_id ~d2 id) in
  let q = Pair_queue.init ~d1:2 ~d2 all in
  let model = ref all in
  let ok = ref true in
  let check_eq () =
    if Pair_queue.to_list q <> !model then ok := false
  in
  List.iter
    (fun op ->
      (match op with
      | Pop -> (
          let popped = Pair_queue.pop q in
          match (!model, popped) with
          | [], None -> ()
          | m :: rest, Some p when Pair.equal m p -> model := rest
          | _ -> ok := false)
      | Push_back id ->
          let p = Pair.of_id ~d2 id in
          if List.exists (Pair.equal p) !model then begin
            Pair_queue.push_back q p;
            model := List.filter (fun x -> not (Pair.equal x p)) !model @ [ p ]
          end
      | Remove id ->
          let p = Pair.of_id ~d2 id in
          if List.exists (Pair.equal p) !model then begin
            Pair_queue.remove q p;
            model := List.filter (fun x -> not (Pair.equal x p)) !model
          end
      | First_with_loc li ->
          let loc = Location.of_index ~d2 li in
          let expected =
            List.find_opt (fun (p : Pair.t) -> Location.equal p.loc loc) !model
          in
          let got = Pair_queue.first_with_location q loc in
          let same =
            match (expected, got) with
            | None, None -> true
            | Some a, Some b -> Pair.equal a b
            | _ -> false
          in
          if not same then ok := false);
      check_eq ())
    ops;
  !ok

let qcheck_model =
  QCheck.Test.make ~name:"queue agrees with list model" ~count:300
    arbitrary_ops model_agrees

let suite =
  [
    Alcotest.test_case "init and order" `Quick init_and_order;
    Alcotest.test_case "init rejects duplicates" `Quick init_rejects_duplicates;
    Alcotest.test_case "init rejects out of bounds" `Quick
      init_rejects_out_of_bounds;
    Alcotest.test_case "pop empty" `Quick pop_empty;
    Alcotest.test_case "push_back moves to tail" `Quick push_back_moves_to_tail;
    Alcotest.test_case "push_back absent raises" `Quick push_back_absent_raises;
    Alcotest.test_case "remove and mem" `Quick remove_and_mem;
    Alcotest.test_case "first_with_location order" `Quick
      first_with_location_order;
    Alcotest.test_case "full_space complete" `Quick full_space_complete;
    Alcotest.test_case "full_space block structure" `Quick
      full_space_block_structure;
    Alcotest.test_case "full_space center first" `Quick full_space_center_first;
    QCheck_alcotest.to_alcotest qcheck_model;
  ]

(* Tests for random program generation and AST mutation. *)

module C = Oppsla.Condition
module Gen = Oppsla.Gen

let config = { Gen.d1 = 16; d2 = 16 }

let threshold_in_range (c : C.t) =
  match c with
  | C.Const _ -> true
  | C.Cmp { func; threshold; _ } -> (
      match func with
      | C.Max _ | C.Min _ | C.Avg _ -> threshold >= 0. && threshold <= 1.
      | C.Score_diff -> threshold >= -1. && threshold <= 1.
      | C.Center -> threshold >= 0. && threshold <= 8.)

let config_from_image () =
  let image = Tensor.zeros [| 3; 12; 20 |] in
  let c = Gen.config_for_image image in
  Alcotest.(check int) "d1" 12 c.Gen.d1;
  Alcotest.(check int) "d2" 20 c.Gen.d2;
  Alcotest.(check bool) "rejects non-image" true
    (try
       ignore (Gen.config_for_image (Tensor.zeros [| 12; 20 |]));
       false
     with Invalid_argument _ -> true)

let random_program_no_consts () =
  let g = Prng.of_int 31 in
  for _ = 1 to 50 do
    Array.iter
      (fun c ->
        match c with
        | C.Const _ -> Alcotest.fail "grammar excludes consts"
        | C.Cmp _ -> ())
      (C.program_to_array (Gen.random_program config g))
  done

let deterministic_generation () =
  let p = Gen.random_program config (Prng.of_int 77) in
  let q = Gen.random_program config (Prng.of_int 77) in
  Alcotest.(check bool) "same seed same program" true (C.equal_program p q)

let qcheck_thresholds_in_range =
  QCheck.Test.make ~name:"generated thresholds within function ranges"
    ~count:300 QCheck.small_int (fun seed ->
      let g = Prng.of_int seed in
      Array.for_all threshold_in_range
        (C.program_to_array (Gen.random_program config g)))

let qcheck_mutation_well_typed =
  QCheck.Test.make ~name:"mutations stay well-typed" ~count:300
    QCheck.small_int (fun seed ->
      (* A function-node mutation keeps the sibling threshold, so after a
         chain of mutations a threshold may sit outside its function's
         natural range; that is still well-typed (everything is a float
         comparison).  The property we check is therefore that evaluation
         never raises, whatever the mutation history. *)
      let g = Prng.of_int seed in
      let p = ref (Gen.random_program config g) in
      let ok = ref true in
      for _ = 1 to 20 do
        p := Gen.mutate config g !p;
        let ctx =
          {
            C.d1 = 16;
            d2 = 16;
            image = Tensor.create [| 3; 16; 16 |] 0.5;
            true_class = 0;
            clean_scores = Tensor.of_array [| 2 |] [| 0.6; 0.4 |];
            pair =
              Oppsla.Pair.make
                ~loc:(Oppsla.Location.make ~row:3 ~col:4)
                ~corner:2;
            perturbed_scores = Tensor.of_array [| 2 |] [| 0.5; 0.5 |];
          }
        in
        let b1, b2, b3, b4 = C.conditions !p in
        List.iter
          (fun c -> ignore (C.eval c ctx))
          [ b1; b2; b3; b4 ]
      done;
      !ok)

let qcheck_mutation_changes_at_most_whole_program =
  QCheck.Test.make ~name:"single mutation changes structure predictably"
    ~count:300 QCheck.small_int (fun seed ->
      let g = Prng.of_int seed in
      let p = Gen.random_program config g in
      let p' = Gen.mutate config g p in
      let a = C.program_to_array p and b = C.program_to_array p' in
      let changed = ref 0 in
      Array.iteri (fun i c -> if not (C.equal c b.(i)) then incr changed) a;
      (* A non-root mutation touches exactly one condition; a root
         mutation may change up to four. *)
      !changed <= 4)

let mutation_eventually_hits_every_slot () =
  (* Over many mutations of a fixed program, every condition position
     must change at least once (the node choice is uniform). *)
  let g = Prng.of_int 13 in
  let base = Gen.random_program config g in
  let base_arr = C.program_to_array base in
  let touched = Array.make 4 false in
  for _ = 1 to 300 do
    let m = C.program_to_array (Gen.mutate config g base) in
    Array.iteri
      (fun i c -> if not (C.equal c base_arr.(i)) then touched.(i) <- true)
      m
  done;
  Array.iteri
    (fun i t -> Alcotest.(check bool) (Printf.sprintf "slot %d" i) true t)
    touched

let mutation_on_const_program () =
  (* Mutating the Sketch+False program must regenerate grammar-valid
     conditions rather than crash on the missing children. *)
  let g = Prng.of_int 14 in
  let p = ref C.const_false_program in
  for _ = 1 to 100 do
    p := Gen.mutate config g !p
  done;
  (* After enough mutations every slot should have left Const-land. *)
  Alcotest.(check bool) "consts eventually replaced" true
    (Array.exists
       (fun c -> match c with C.Cmp _ -> true | C.Const _ -> false)
       (C.program_to_array !p))

(* PR 4 pulled the slot draw out of [Gen.mutate] so the synthesizer can
   classify proposals without a second draw; until now the equivalence
   was only asserted indirectly through the telemetry differentials.
   Directly: drawing the slot first and calling [mutate_slot] must yield
   the same program AND leave the generator at the same stream position
   (identical subsequent draw sequence) as one [mutate] call. *)
let qcheck_mutate_slot_preserves_draw_order =
  QCheck.Test.make ~name:"mutate_slot preserves mutate's draw sequence"
    ~count:300 QCheck.small_int (fun seed ->
      let g1 = Prng.of_int seed and g2 = Prng.of_int seed in
      let p = Gen.random_program config (Prng.of_int (seed + 7919)) in
      let a = Gen.mutate config g1 p in
      let b =
        let slot = Prng.int g2 13 in
        Gen.mutate_slot config g2 p ~slot
      in
      let rec draws g n =
        if n = 0 then []
        else
          let v = Prng.next_int64 g in
          v :: draws g (n - 1)
      in
      C.equal_program a b && draws g1 8 = draws g2 8)

let suite =
  [
    Alcotest.test_case "config from image" `Quick config_from_image;
    Alcotest.test_case "random programs avoid consts" `Quick
      random_program_no_consts;
    Alcotest.test_case "deterministic generation" `Quick
      deterministic_generation;
    Alcotest.test_case "mutation hits every slot" `Quick
      mutation_eventually_hits_every_slot;
    Alcotest.test_case "mutation on const program" `Quick
      mutation_on_const_program;
    QCheck_alcotest.to_alcotest qcheck_thresholds_in_range;
    QCheck_alcotest.to_alcotest qcheck_mutation_well_typed;
    QCheck_alcotest.to_alcotest qcheck_mutation_changes_at_most_whole_program;
    QCheck_alcotest.to_alcotest qcheck_mutate_slot_preserves_draw_order;
  ]

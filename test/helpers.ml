(* Shared test utilities. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  nn = 0 || scan 0

(* A deterministic toy "classifier" over [d x d] color images with two
   classes: class 1 iff the mean of all channel values exceeds the
   threshold.  The margin is linear in the mean, so one-pixel attacks have
   a simple, fully predictable geometry: flipping any pixel moves the mean
   by (delta_r + delta_g + delta_b) / (3 d^2). *)
let mean_threshold_oracle ?budget ?(threshold = 0.5) ?(sharpness = 40.) () =
  Oracle.of_fn ?budget ~name:"mean-threshold" ~num_classes:2 (fun x ->
      let m = Tensor.mean x in
      let z = sharpness *. (m -. threshold) in
      let p1 = 1. /. (1. +. exp (-.z)) in
      Tensor.of_array [| 2 |] [| 1. -. p1; p1 |])

(* A constant oracle: never changes its mind, so no adversarial example
   exists. *)
let constant_oracle ?budget ~num_classes ~winner () =
  Oracle.of_fn ?budget ~name:"constant" ~num_classes (fun _ ->
      Tensor.init [| num_classes |] (fun c -> if c = winner then 1. else 0.))

(* A uniform image of the given side and brightness. *)
let flat_image ~size v = Tensor.create [| 3; size; size |] v

(* A flat image with one off-value pixel.  Against the mean-threshold
   oracle a feasible flat image always falls to the first candidate the
   attack tries (the farthest-corner heuristic IS the max-delta move),
   so query counts carry no information.  Planting a single special
   pixel whose farthest corner is the only first-block winner pushes
   the success deep into the search order, and how deep now depends on
   the program's queue edits — which is what scoring is supposed to
   measure. *)
let special_pixel_image ~size ~base ~v ~row ~col =
  let img = flat_image ~size base in
  for c = 0 to 2 do
    Tensor.set img [| c; row; col |] v
  done;
  img

(* Count how many corner pairs flip the mean-threshold oracle for a flat
   image: used to cross-check attack success sets. *)
let gen_config ~size = { Oppsla.Gen.d1 = size; d2 = size }

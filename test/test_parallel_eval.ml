(* The parallel-execution differential suite.

   The paper's cost model is oracle queries, so the parallel evaluator is
   only admissible if it is *bit-identical* to the sequential one: same
   per-image query counts and success flags, same float average, at every
   domain count.  These tests lock that contract down, plus the
   Parallel.Pool lifecycle/exception semantics the evaluator rests on.
   The same differential check also runs as a standalone executable
   (diff_runner.ml) wired into the `runtest` alias with --domains 1/4. *)

module Parallel = Evalharness.Parallel
module Score = Oppsla.Score
module Synthesizer = Oppsla.Synthesizer
module C = Oppsla.Condition

let size = 4

(* A mixed training set: attackable flat images near the oracle's
   threshold, a hopeless dark image, and noisy images whose attack cost
   varies with the program under evaluation. *)
let training_set g n =
  Array.init n (fun i ->
      match i mod 4 with
      | 0 -> (Helpers.flat_image ~size (0.45 +. Prng.float g 0.1), 0)
      | 1 -> (Helpers.flat_image ~size 0.30, 0)
      | 2 ->
          (Tensor.rand_uniform g ~lo:0.35 ~hi:0.65 [| 3; size; size |], 0)
      | _ ->
          (Tensor.rand_uniform g ~lo:0.4 ~hi:0.6 [| 3; size; size |], 1))

let check_identical name (seq : Score.evaluation) (par : Score.evaluation) =
  Alcotest.(check (float 0.))
    (name ^ ": avg_queries bit-identical")
    seq.Score.avg_queries par.Score.avg_queries;
  Alcotest.(check int) (name ^ ": successes") seq.Score.successes
    par.Score.successes;
  Alcotest.(check int) (name ^ ": attempts") seq.Score.attempts
    par.Score.attempts;
  Alcotest.(check int) (name ^ ": total_queries") seq.Score.total_queries
    par.Score.total_queries;
  Alcotest.(check (list (pair int bool)))
    (name ^ ": per-image queries and flags")
    (Array.to_list
       (Array.map (fun e -> (e.Score.queries, e.Score.success)) seq.per_image))
    (Array.to_list
       (Array.map (fun e -> (e.Score.queries, e.Score.success)) par.per_image))

(* Differential test: randomized programs, images and domain counts. *)

let differential_evaluation () =
  let gen_config = Helpers.gen_config ~size in
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          for trial = 0 to 7 do
            let g = Prng.of_int ((domains * 1000) + trial) in
            let samples = training_set (Prng.split g) (1 + Prng.int g 9) in
            let program = Oppsla.Gen.random_program gen_config g in
            let max_queries =
              if Prng.bool g then None else Some (1 + Prng.int g 100)
            in
            let seq =
              Score.evaluate ?max_queries
                (Helpers.mean_threshold_oracle ())
                program samples
            in
            let par =
              Score.evaluate_parallel ?max_queries ~pool
                (Helpers.mean_threshold_oracle ())
                program samples
            in
            check_identical
              (Printf.sprintf "domains=%d trial=%d" domains trial)
              seq par
          done))
    [ 1; 2; 4; 8 ]

let evaluate_parallel_clones_oracle () =
  (* The caller's oracle handle is never queried: each image attacks its
     own clone, so the shared counter cannot race. *)
  let oracle = Helpers.mean_threshold_oracle () in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let e =
        Score.evaluate_parallel ~pool oracle C.const_false_program
          (training_set (Prng.of_int 1) 6)
      in
      Alcotest.(check bool) "queries were posed" true (e.Score.total_queries > 0);
      Alcotest.(check int) "caller handle unmetered" 0 (Oracle.queries oracle))

(* Determinism regression: the synthesizer's accepted-program trace must
   not depend on which evaluator backs it. *)

let synthesizer_pool_matches_sequential () =
  let training = training_set (Prng.of_int 42) 5 in
  let config =
    {
      Synthesizer.default_config with
      max_iters = 8;
      max_queries_per_image = Some 64;
    }
  in
  let run pool =
    Synthesizer.synthesize ~config ?pool (Prng.of_int 11)
      (Helpers.mean_threshold_oracle ())
      ~training
  in
  let seq = run None in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let par = run (Some pool) in
      Alcotest.(check int) "same trace length"
        (List.length seq.Synthesizer.trace)
        (List.length par.Synthesizer.trace);
      List.iter2
        (fun (a : Synthesizer.iteration) (b : Synthesizer.iteration) ->
          Alcotest.(check int) "same index" a.Synthesizer.index
            b.Synthesizer.index;
          Alcotest.(check bool) "same acceptance" a.Synthesizer.accepted
            b.Synthesizer.accepted;
          Alcotest.(check (float 0.)) "same avg" a.Synthesizer.avg_queries
            b.Synthesizer.avg_queries;
          Alcotest.(check int) "same cumulative queries"
            a.Synthesizer.synth_queries_total b.Synthesizer.synth_queries_total;
          Alcotest.(check bool) "same program" true
            (C.equal_program a.Synthesizer.program b.Synthesizer.program))
        seq.Synthesizer.trace par.Synthesizer.trace;
      Alcotest.(check bool) "same final program" true
        (C.equal_program seq.Synthesizer.final par.Synthesizer.final);
      Alcotest.(check int) "same synthesis spend" seq.Synthesizer.synth_queries
        par.Synthesizer.synth_queries)

let explicit_evaluator_beats_pool () =
  let calls = ref 0 in
  let evaluator _program samples =
    incr calls;
    {
      Score.avg_queries = 3.;
      successes = 1;
      attempts = Array.length samples;
      total_queries = 3;
      per_image =
        Array.map (fun _ -> { Score.queries = 3; success = true }) samples;
    }
  in
  let config =
    {
      Synthesizer.default_config with
      max_iters = 2;
      evaluator = Some evaluator;
    }
  in
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      ignore
        (Synthesizer.synthesize ~config ~pool (Prng.of_int 3)
           (Helpers.mean_threshold_oracle ())
           ~training:(training_set (Prng.of_int 2) 3)));
  Alcotest.(check int) "custom evaluator used" 3 !calls

(* Pool lifecycle and scheduling properties. *)

let qcheck_pool_map_matches_array_map =
  QCheck.Test.make ~name:"Pool.map equals Array.map"
    ~count:40
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (domains, items) ->
      let xs = Array.of_list items in
      let f x = (x * 31) + (x mod 7) in
      Parallel.Pool.with_pool ~domains (fun pool ->
          Parallel.Pool.map pool f xs = Array.map f xs))

let pool_map_edge_sizes () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||]
        (Parallel.Pool.map pool succ [||]);
      Alcotest.(check (array int)) "singleton" [| 8 |]
        (Parallel.Pool.map pool succ [| 7 |]);
      (* The pool survives many batches (the persistent hot path). *)
      for i = 1 to 50 do
        let xs = Array.init i Fun.id in
        Alcotest.(check (array int))
          (Printf.sprintf "batch %d" i)
          (Array.map succ xs)
          (Parallel.Pool.map pool succ xs)
      done)

let pool_reraises_worker_exception () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun bad ->
          match
            Parallel.Pool.map pool
              (fun x -> if x = bad then failwith "boom" else x)
              (Array.init 16 Fun.id)
          with
          | _ -> Alcotest.fail "expected Failure"
          | exception Failure msg ->
              Alcotest.(check string)
                (Printf.sprintf "original exception for item %d" bad)
                "boom" msg)
        [ 0; 7; 15 ];
      (* The pool stays usable after a failed job. *)
      Alcotest.(check (array int)) "pool survives failure"
        (Array.init 8 succ)
        (Parallel.Pool.map pool succ (Array.init 8 Fun.id)))

let pool_first_exception_wins () =
  (* All items raise; the caller must see exactly one of the original
     exceptions (the first one raised, in wall-clock order), never a
     wrapper or a "missing result" artifact. *)
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      match
        Parallel.Pool.map pool
          (fun x -> failwith (Printf.sprintf "item-%d" x))
          (Array.init 32 Fun.id)
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
          Alcotest.(check bool)
            (Printf.sprintf "an original item exception (%s)" msg)
            true
            (String.length msg > 5 && String.sub msg 0 5 = "item-"))

let shutdown_rejects_new_work () =
  let pool = Parallel.Pool.create ~domains:3 () in
  Alcotest.(check (array int)) "works before shutdown" [| 1; 2 |]
    (Parallel.Pool.map pool succ [| 0; 1 |]);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool;
  (* idempotent *)
  Alcotest.(check bool) "rejects instead of hanging" true
    (try
       ignore (Parallel.Pool.map pool succ [| 0; 1 |]);
       false
     with Invalid_argument _ -> true)

let pool_stats_accounting () =
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      ignore (Parallel.Pool.map pool succ (Array.init 10 Fun.id));
      ignore (Parallel.Pool.map pool succ (Array.init 5 Fun.id));
      let s = Parallel.Pool.stats pool in
      Alcotest.(check int) "jobs" 2 s.Parallel.Pool.jobs;
      Alcotest.(check int) "tasks" 15 s.Parallel.Pool.tasks;
      Alcotest.(check int) "domains" 2 s.Parallel.Pool.domains;
      Alcotest.(check bool) "steals bounded by tasks" true
        (s.Parallel.Pool.steals <= s.Parallel.Pool.tasks);
      Alcotest.(check bool) "busy time recorded" true
        (s.Parallel.Pool.busy_seconds >= 0.))

(* The legacy one-shot Parallel.map: the exception contract that used to
   be maskable (a worker-domain exception surfaced as Fun.Finally_raised
   via Domain.join, or items silently missing) is now explicit. *)

let legacy_map_preserves_original_exception () =
  List.iter
    (fun domains ->
      match
        Parallel.map ~domains
          (fun x -> if x >= 6 then failwith "original" else x)
          (Array.init 8 Fun.id)
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "unwrapped at domains=%d" domains)
            "original" msg)
    [ 1; 2; 4; 8 ]

let suite =
  [
    Alcotest.test_case "differential: parallel = sequential" `Quick
      differential_evaluation;
    Alcotest.test_case "evaluate_parallel clones the oracle" `Quick
      evaluate_parallel_clones_oracle;
    Alcotest.test_case "synthesizer: pool trace = sequential trace" `Quick
      synthesizer_pool_matches_sequential;
    Alcotest.test_case "explicit evaluator beats pool" `Quick
      explicit_evaluator_beats_pool;
    QCheck_alcotest.to_alcotest qcheck_pool_map_matches_array_map;
    Alcotest.test_case "pool map edge sizes" `Quick pool_map_edge_sizes;
    Alcotest.test_case "pool re-raises worker exception" `Quick
      pool_reraises_worker_exception;
    Alcotest.test_case "pool first exception wins" `Quick
      pool_first_exception_wins;
    Alcotest.test_case "shutdown rejects new work" `Quick
      shutdown_rejects_new_work;
    Alcotest.test_case "pool stats accounting" `Quick pool_stats_accounting;
    Alcotest.test_case "legacy map preserves original exception" `Quick
      legacy_map_preserves_original_exception;
  ]
